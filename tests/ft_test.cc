#include <gtest/gtest.h>

#include "ft/checkpoint.h"
#include "ft/recovery_model.h"
#include "tests/test_topologies.h"

namespace ppa {
namespace {

using ::ppa::testing::MakeChain;

TEST(CheckpointStoreTest, LatestWinsAndCoveredBatch) {
  CheckpointStore store;
  EXPECT_EQ(store.Latest(0), nullptr);
  EXPECT_EQ(store.CoveredBatch(0), 0);
  store.Put(TaskCheckpoint{0, 5, "v1", 100, TimePoint::FromMicros(1)});
  store.Put(TaskCheckpoint{1, 3, "x", 10, TimePoint::FromMicros(1)});
  ASSERT_NE(store.Latest(0), nullptr);
  EXPECT_EQ(store.Latest(0)->blob, "v1");
  EXPECT_EQ(store.CoveredBatch(0), 5);
  store.Put(TaskCheckpoint{0, 9, "v2", 120, TimePoint::FromMicros(2)});
  EXPECT_EQ(store.Latest(0)->blob, "v2");
  EXPECT_EQ(store.CoveredBatch(0), 9);
  EXPECT_EQ(store.size(), 2u);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
}

RecoveryCostModel SimpleModel() {
  RecoveryCostModel m;
  m.replay_rate_tuples_per_sec = 1000.0;
  m.state_load_rate_tuples_per_sec = 10000.0;
  m.task_restart_delay = Duration::Seconds(1.0);
  m.replica_activation_delay = Duration::Millis(100);
  m.sync_handshake_delay = Duration::Millis(500);
  m.replica_resend_rate_tuples_per_sec = 10000.0;
  return m;
}

TEST(RecoveryModelTest, ActiveReplicaLatencyIsActivationPlusResend) {
  Topology t = MakeChain(2, 2, 2, PartitionScheme::kOneToOne,
                         PartitionScheme::kOneToOne);
  TaskRecoverySpec spec;
  spec.task = t.op(1).tasks[0];
  spec.kind = RecoveryKind::kActiveReplica;
  spec.resend_tuples = 5000;
  RecoverySchedule s = ComputeRecoverySchedule(t, {spec}, SimpleModel());
  // 100 ms activation + 5000/10000 s resend = 0.6 s.
  EXPECT_NEAR(s.completion.at(spec.task).seconds(), 0.6, 1e-9);
}

TEST(RecoveryModelTest, CheckpointLatencyIncludesLoadAndReplay) {
  Topology t = MakeChain(2, 2, 2, PartitionScheme::kOneToOne,
                         PartitionScheme::kOneToOne);
  TaskRecoverySpec spec;
  spec.task = t.op(1).tasks[0];
  spec.kind = RecoveryKind::kCheckpoint;
  spec.state_tuples = 20000;  // 2 s load.
  spec.replay_tuples = 3000;  // 3 s replay.
  RecoverySchedule s = ComputeRecoverySchedule(t, {spec}, SimpleModel());
  // restart 1 s + load 2 s + replay 3 s.
  EXPECT_NEAR(s.completion.at(spec.task).seconds(), 6.0, 1e-9);
}

TEST(RecoveryModelTest, CorrelatedFailureCascadesDownstream) {
  Topology t = MakeChain(2, 2, 2, PartitionScheme::kOneToOne,
                         PartitionScheme::kOneToOne);
  const TaskId src = t.op(0).tasks[0];
  const TaskId mid = t.op(1).tasks[0];
  const TaskId sink = t.op(2).tasks[0];
  RecoveryCostModel m = SimpleModel();
  std::vector<TaskRecoverySpec> specs;
  for (TaskId task : {src, mid, sink}) {
    TaskRecoverySpec spec;
    spec.task = task;
    spec.kind = RecoveryKind::kCheckpoint;
    spec.replay_tuples = 1000;  // 1 s each.
    specs.push_back(spec);
  }
  RecoverySchedule s = ComputeRecoverySchedule(t, specs, m);
  // src: restart 1 + replay 1 = 2.
  EXPECT_NEAR(s.completion.at(src).seconds(), 2.0, 1e-9);
  // mid waits for src + handshake: max(1, 2.5) + 1 = 3.5.
  EXPECT_NEAR(s.completion.at(mid).seconds(), 3.5, 1e-9);
  // sink waits for mid: max(1, 4.0) + 1 = 5.0.
  EXPECT_NEAR(s.completion.at(sink).seconds(), 5.0, 1e-9);
  EXPECT_NEAR(s.MaxLatency().seconds(), 5.0, 1e-9);
  EXPECT_NEAR(s.MaxLatencyOf({src, mid}).seconds(), 3.5, 1e-9);
}

TEST(RecoveryModelTest, AliveUpstreamDoesNotDelayDownstream) {
  Topology t = MakeChain(2, 2, 2, PartitionScheme::kOneToOne,
                         PartitionScheme::kOneToOne);
  const TaskId sink = t.op(2).tasks[0];
  TaskRecoverySpec spec;
  spec.task = sink;
  spec.kind = RecoveryKind::kCheckpoint;
  spec.replay_tuples = 1000;
  RecoverySchedule s = ComputeRecoverySchedule(t, {spec}, SimpleModel());
  // No failed upstream: restart 1 + replay 1.
  EXPECT_NEAR(s.completion.at(sink).seconds(), 2.0, 1e-9);
}

TEST(RecoveryModelTest, ActiveReplicaBreaksTheCascade) {
  // If the middle task has an active replica, the sink's checkpoint
  // recovery does not wait for a slow middle recovery.
  Topology t = MakeChain(2, 2, 2, PartitionScheme::kOneToOne,
                         PartitionScheme::kOneToOne);
  const TaskId mid = t.op(1).tasks[0];
  const TaskId sink = t.op(2).tasks[0];
  RecoveryCostModel m = SimpleModel();

  TaskRecoverySpec mid_active;
  mid_active.task = mid;
  mid_active.kind = RecoveryKind::kActiveReplica;
  mid_active.resend_tuples = 0;
  TaskRecoverySpec sink_cp;
  sink_cp.task = sink;
  sink_cp.kind = RecoveryKind::kCheckpoint;
  sink_cp.replay_tuples = 1000;
  RecoverySchedule with_active =
      ComputeRecoverySchedule(t, {mid_active, sink_cp}, m);

  TaskRecoverySpec mid_cp = mid_active;
  mid_cp.kind = RecoveryKind::kCheckpoint;
  mid_cp.replay_tuples = 10000;  // 10 s.
  RecoverySchedule with_passive =
      ComputeRecoverySchedule(t, {mid_cp, sink_cp}, m);

  EXPECT_LT(with_active.completion.at(sink).seconds(),
            with_passive.completion.at(sink).seconds());
}

TEST(RecoveryModelTest, SourceReplayHasNoStateLoad) {
  Topology t = MakeChain(2, 2, 2, PartitionScheme::kOneToOne,
                         PartitionScheme::kOneToOne);
  TaskRecoverySpec spec;
  spec.task = t.op(0).tasks[0];
  spec.kind = RecoveryKind::kSourceReplay;
  spec.replay_tuples = 2000;
  spec.state_tuples = 999999;  // Must be ignored.
  RecoverySchedule s = ComputeRecoverySchedule(t, {spec}, SimpleModel());
  EXPECT_NEAR(s.completion.at(spec.task).seconds(), 3.0, 1e-9);
}

TEST(RecoveryModelTest, EmptySpecListYieldsEmptySchedule) {
  Topology t = MakeChain(2, 2, 2, PartitionScheme::kOneToOne,
                         PartitionScheme::kOneToOne);
  RecoverySchedule s = ComputeRecoverySchedule(t, {}, SimpleModel());
  EXPECT_TRUE(s.completion.empty());
  EXPECT_EQ(s.MaxLatency(), Duration::Zero());
}

}  // namespace
}  // namespace ppa
