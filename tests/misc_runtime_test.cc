#include <memory>

#include <gtest/gtest.h>

#include "backend/sim_backend.h"
#include "common/logging.h"
#include "engine/operators.h"
#include "runtime/streaming_job.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace {

Topology MakeMiscTopology() {
  TopologyBuilder b;
  OperatorId src = b.AddOperator("src", 2);
  OperatorId mid = b.AddOperator("mid", 2, InputCorrelation::kIndependent,
                                 0.5);
  OperatorId sink = b.AddOperator("sink", 1, InputCorrelation::kIndependent,
                                  0.5);
  b.Connect(src, mid, PartitionScheme::kOneToOne);
  b.Connect(mid, sink, PartitionScheme::kMerge);
  b.SetSourceRate(src, 40.0);
  auto t = b.Build();
  PPA_CHECK(t.ok());
  return *std::move(t);
}

std::unique_ptr<StreamingJob> MakeMiscJob(backend::ExecutionBackend* loop, FtMode mode) {
  JobConfig cfg;
  cfg.ft_mode = mode;
  cfg.batch_interval = Duration::Seconds(1);
  cfg.detection_interval = Duration::Seconds(2);
  cfg.checkpoint_interval = Duration::Seconds(4);
  cfg.num_worker_nodes = 5;
  cfg.num_standby_nodes = 2;
  cfg.stagger_checkpoints = false;
  auto job = std::make_unique<StreamingJob>(MakeMiscTopology(), cfg, JobRuntimeDeps(loop));
  PPA_CHECK_OK(job->BindSource(0, [] {
    return std::make_unique<SyntheticSource>(10, 32, 7);
  }));
  for (OperatorId op : {1, 2}) {
    PPA_CHECK_OK(job->BindOperator(op, [] {
      return std::make_unique<SlidingWindowAggregateOperator>(4, 0.5);
    }));
  }
  return job;
}

TEST(FtModeNoneTest, FailedTasksStayDeadAndOutputDegrades) {
  backend::SimBackend loop;
  auto job = MakeMiscJob(&loop, FtMode::kNone);
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10.5));
  const size_t records_before = job->sink_records().size();
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(2)));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40));
  EXPECT_FALSE(job->primary(2)->alive());
  EXPECT_TRUE(job->recovery_reports().empty());
  // kNone still clears the detection queue so the job is not "recovering".
  EXPECT_TRUE(job->AllRecovered());
  // The sink stalls forever on the dead upstream: no records after the
  // failure (no tentative mode, no recovery).
  EXPECT_EQ(job->sink_records().size(), records_before);
}

TEST(StreamingJobTest, CorrelatedFailureSparesSourcesByDefault) {
  backend::SimBackend loop;
  auto job = MakeMiscJob(&loop, FtMode::kCheckpoint);
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(8.5));
  PPA_CHECK_OK(job->InjectCorrelatedFailure(/*include_sources=*/false));
  // Source tasks 0 and 1 live on nodes that host no non-source primaries
  // (round-robin over 5 workers), so they survive.
  EXPECT_TRUE(job->primary(0)->alive());
  EXPECT_TRUE(job->primary(1)->alive());
  EXPECT_FALSE(job->primary(2)->alive());
  EXPECT_FALSE(job->primary(3)->alive());
  EXPECT_FALSE(job->primary(4)->alive());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40));
  EXPECT_TRUE(job->AllRecovered());
}

TEST(StreamingJobTest, CheckpointsSkipDeadTasksAndResumeAfterRecovery) {
  backend::SimBackend loop;
  auto job = MakeMiscJob(&loop, FtMode::kCheckpoint);
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(9));
  const int64_t checkpoints_before = job->CheckpointCount(2);
  EXPECT_GT(checkpoints_before, 0);
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(2)));
  // During the outage (detection at 10 s, recovery shortly after), the
  // 12 s checkpoint tick may fire while dead and must be skipped, but
  // later ticks resume.
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40));
  EXPECT_TRUE(job->AllRecovered());
  EXPECT_GT(job->CheckpointCount(2), checkpoints_before);
}

TEST(StreamingJobTest, ObservedTopologyRequiresStart) {
  backend::SimBackend loop;
  auto job = MakeMiscJob(&loop, FtMode::kPpa);
  EXPECT_EQ(job->ObservedTopology().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(StreamingJobTest, DoubleStartRejected) {
  backend::SimBackend loop;
  auto job = MakeMiscJob(&loop, FtMode::kCheckpoint);
  PPA_CHECK_OK(job->Start());
  EXPECT_EQ(job->Start().code(), StatusCode::kFailedPrecondition);
}

TEST(LoggingTest, LevelGate) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are swallowed (no crash, no output check
  // possible here; exercise the path).
  PPA_LOG(Info) << "suppressed";
  PPA_LOG(Error) << "emitted (expected in test output)";
  SetLogLevel(original);
}

TEST(LoggingTest, CheckOkPassesThroughOkStatus) {
  PPA_CHECK_OK(OkStatus());  // Must not abort.
  SUCCEED();
}

}  // namespace
}  // namespace ppa
