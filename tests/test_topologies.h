#ifndef PPA_TESTS_TEST_TOPOLOGIES_H_
#define PPA_TESTS_TEST_TOPOLOGIES_H_

#include "common/logging.h"
#include "topology/topology.h"

namespace ppa {
namespace testing {

/// Fig. 2 of the paper: two source operators feeding one downstream task
/// through merge edges. Rates chosen to reproduce the worked example:
/// lambda(t11)=1, lambda(t12)=2, lambda(t21)=3, lambda(t22)=2, so that when
/// t22 fails the downstream output loss is 1/4 (independent) or 2/5
/// (correlated).
struct Fig2Topology {
  Topology topo;
  OperatorId o1, o2, o3;
  TaskId t11, t12, t21, t22, t31;
};

inline Fig2Topology MakeFig2(InputCorrelation correlation) {
  TopologyBuilder b;
  Fig2Topology f;
  f.o1 = b.AddOperator("O1", 2);
  f.o2 = b.AddOperator("O2", 2);
  f.o3 = b.AddOperator("O3", 1, correlation);
  b.Connect(f.o1, f.o3, PartitionScheme::kMerge);
  b.Connect(f.o2, f.o3, PartitionScheme::kMerge);
  b.SetSourceRate(f.o1, 3.0).SetSourceRate(f.o2, 5.0);
  b.SetTaskWeight(f.o1, 0, 1.0).SetTaskWeight(f.o1, 1, 2.0);
  b.SetTaskWeight(f.o2, 0, 3.0).SetTaskWeight(f.o2, 1, 2.0);
  auto built = b.Build();
  PPA_CHECK(built.ok()) << built.status();
  f.topo = *std::move(built);
  f.t11 = f.topo.op(f.o1).tasks[0];
  f.t12 = f.topo.op(f.o1).tasks[1];
  f.t21 = f.topo.op(f.o2).tasks[0];
  f.t22 = f.topo.op(f.o2).tasks[1];
  f.t31 = f.topo.op(f.o3).tasks[0];
  return f;
}

/// A Fig. 1-style topology: O1 and O2 (4 tasks each) feed O3 (4 tasks)
/// one-to-one; O3 feeds O4 (2 tasks) full. With O3 independent there are 16
/// MC-trees; with O3 a join there are 8.
struct Fig1Topology {
  Topology topo;
  OperatorId o1, o2, o3, o4;
};

inline Fig1Topology MakeFig1(InputCorrelation o3_correlation) {
  TopologyBuilder b;
  Fig1Topology f;
  f.o1 = b.AddOperator("O1", 4);
  f.o2 = b.AddOperator("O2", 4);
  f.o3 = b.AddOperator("O3", 4, o3_correlation);
  f.o4 = b.AddOperator("O4", 2);
  b.Connect(f.o1, f.o3, PartitionScheme::kOneToOne);
  b.Connect(f.o2, f.o3, PartitionScheme::kOneToOne);
  b.Connect(f.o3, f.o4, PartitionScheme::kFull);
  auto built = b.Build();
  PPA_CHECK(built.ok()) << built.status();
  f.topo = *std::move(built);
  return f;
}

/// A simple linear chain src(n0) -> mid(n1) -> sink(n2) with the given
/// schemes.
inline Topology MakeChain(int n0, int n1, int n2, PartitionScheme s01,
                          PartitionScheme s12,
                          double source_rate = 1000.0) {
  TopologyBuilder b;
  OperatorId src = b.AddOperator("src", n0);
  OperatorId mid = b.AddOperator("mid", n1);
  OperatorId sink = b.AddOperator("sink", n2);
  b.Connect(src, mid, s01);
  b.Connect(mid, sink, s12);
  b.SetSourceRate(src, source_rate);
  auto built = b.Build();
  PPA_CHECK(built.ok()) << built.status();
  return *std::move(built);
}

}  // namespace testing
}  // namespace ppa

#endif  // PPA_TESTS_TEST_TOPOLOGIES_H_
