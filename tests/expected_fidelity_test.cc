#include <gtest/gtest.h>

#include "common/random.h"
#include "fidelity/expected.h"
#include "fidelity/metrics.h"
#include "planner/expected_fidelity_planner.h"
#include "planner/structure_aware_planner.h"
#include "tests/test_topologies.h"
#include "topology/random_topology.h"

namespace ppa {
namespace {

using ::ppa::testing::Fig2Topology;
using ::ppa::testing::MakeFig2;

TEST(TaskImportanceTest, MatchesSingleFailureDamage) {
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  const auto importance = TaskImportance(f.topo);
  ASSERT_EQ(importance.size(), 5u);
  // The sink is the most damaging task (OF drops to 0).
  EXPECT_DOUBLE_EQ(importance[static_cast<size_t>(f.t31)], 1.0);
  // t21 carries rate 3 of 8.
  EXPECT_NEAR(importance[static_cast<size_t>(f.t21)], 3.0 / 8.0, 1e-12);
  EXPECT_NEAR(importance[static_cast<size_t>(f.t11)], 1.0 / 8.0, 1e-12);
}

TEST(ExpectedFidelityTest, SingleFailureModelArithmetic) {
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  std::vector<double> p(5, 0.1);  // 50% chance of one failure overall.
  TaskSet none(5);
  auto expected = ExpectedFidelitySingleFailure(f.topo, none, p);
  ASSERT_TRUE(expected.ok());
  // 0.5 * 1 (no failure) + 0.1 * sum over t of OF(fail t).
  double manual = 0.5;
  for (TaskId t = 0; t < 5; ++t) {
    manual += 0.1 * SingleFailureOutputFidelity(f.topo, t);
  }
  EXPECT_NEAR(*expected, manual, 1e-12);

  // Replicating the sink removes its (total) damage.
  TaskSet sink_only(5);
  sink_only.Add(f.t31);
  auto with_sink = ExpectedFidelitySingleFailure(f.topo, sink_only, p);
  ASSERT_TRUE(with_sink.ok());
  EXPECT_NEAR(*with_sink - *expected, 0.1 * 1.0, 1e-12);
}

TEST(ExpectedFidelityTest, Validation) {
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  TaskSet none(5);
  EXPECT_FALSE(
      ExpectedFidelitySingleFailure(f.topo, none, {0.1, 0.2}).ok());
  EXPECT_FALSE(ExpectedFidelitySingleFailure(f.topo, none,
                                             {0.5, 0.5, 0.5, 0.5, 0.5})
                   .ok());  // Sums to 2.5.
  EXPECT_FALSE(ExpectedFidelitySingleFailure(f.topo, none,
                                             {-0.1, 0, 0, 0, 0})
                   .ok());
  EXPECT_FALSE(ExpectedFidelityIndependent(f.topo, none,
                                           {0.1, 0.1, 0.1, 0.1, 0.1}, 0)
                   .ok());
}

TEST(ExpectedFidelityTest, MonteCarloConvergesToExactOnRareFailures) {
  // With small independent probabilities, multi-failures are negligible
  // and the Monte-Carlo estimate approaches the single-failure model.
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  std::vector<double> p(5, 0.02);
  TaskSet none(5);
  auto exact = ExpectedFidelitySingleFailure(f.topo, none, p);
  auto mc = ExpectedFidelityIndependent(f.topo, none, p, 20000, 7);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(mc.ok());
  EXPECT_NEAR(*mc, *exact, 0.01);
}

TEST(ExpectedFidelityTest, ReplicationNeverHurts) {
  Fig2Topology f = MakeFig2(InputCorrelation::kCorrelated);
  std::vector<double> p(5, 0.15);
  TaskSet none(5);
  TaskSet some(5);
  some.Add(f.t31);
  some.Add(f.t21);
  auto base = ExpectedFidelityIndependent(f.topo, none, p, 4000, 3);
  auto better = ExpectedFidelityIndependent(f.topo, some, p, 4000, 3);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(better.ok());
  EXPECT_GT(*better, *base);
}

TEST(ExpectedFidelityPlannerTest, OptimalForSingleFailureObjective) {
  // The planner's top-R-gain plan maximizes the single-failure objective:
  // compare against all subsets on the small Fig. 2 topology.
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  std::vector<double> p = {0.05, 0.1, 0.15, 0.05, 0.1};
  ExpectedFidelityPlanner planner(p);
  for (int budget : {1, 2, 3}) {
    auto plan = planner.Plan({f.topo, budget});
    ASSERT_TRUE(plan.ok());
    auto objective =
        ExpectedFidelitySingleFailure(f.topo, plan->replicated, p);
    ASSERT_TRUE(objective.ok());
    // Exhaustive check.
    double best = 0;
    for (uint64_t mask = 0; mask < 32; ++mask) {
      if (__builtin_popcountll(mask) > budget) {
        continue;
      }
      TaskSet candidate(5);
      for (int i = 0; i < 5; ++i) {
        if (mask & (1u << i)) {
          candidate.Add(i);
        }
      }
      auto value = ExpectedFidelitySingleFailure(f.topo, candidate, p);
      ASSERT_TRUE(value.ok());
      best = std::max(best, *value);
    }
    EXPECT_NEAR(*objective, best, 1e-12) << "budget " << budget;
  }
}

TEST(ExpectedFidelityPlannerTest, DichotomyAgainstCorrelatedPlanner) {
  // The paper's core planning insight, condensed: for independent single
  // failures the structure-agnostic ranking is optimal, but its plans are
  // (often far) worse than the structure-aware planner's under the
  // correlated worst case.
  Rng rng(99);
  RandomTopologyOptions opts;
  opts.min_operators = 5;
  opts.max_operators = 8;
  opts.min_parallelism = 1;
  opts.max_parallelism = 4;
  double expected_wins = 0, sa_worstcase_wins = 0;
  int trials = 0;
  for (int i = 0; i < 15; ++i) {
    auto topo = GenerateRandomTopology(opts, &rng);
    ASSERT_TRUE(topo.ok());
    const int budget = std::max(2, topo->num_tasks() / 4);
    std::vector<double> p(static_cast<size_t>(topo->num_tasks()),
                          0.5 / topo->num_tasks());
    ExpectedFidelityPlanner expected_planner(p);
    StructureAwarePlanner sa;
    auto e_plan = expected_planner.Plan({*topo, budget});
    auto sa_plan = sa.Plan({*topo, budget});
    ASSERT_TRUE(e_plan.ok());
    ASSERT_TRUE(sa_plan.ok());
    auto e_obj =
        ExpectedFidelitySingleFailure(*topo, e_plan->replicated, p);
    auto sa_obj =
        ExpectedFidelitySingleFailure(*topo, sa_plan->replicated, p);
    ASSERT_TRUE(e_obj.ok());
    ASSERT_TRUE(sa_obj.ok());
    expected_wins += *e_obj >= *sa_obj - 1e-12 ? 1 : 0;
    sa_worstcase_wins +=
        sa_plan->output_fidelity >= e_plan->output_fidelity - 1e-12 ? 1 : 0;
    ++trials;
  }
  // The expected-fidelity planner is optimal for its objective on every
  // topology; SA wins (or ties) the correlated worst case on most.
  EXPECT_EQ(expected_wins, trials);
  EXPECT_GE(sa_worstcase_wins, trials * 0.8);
}

}  // namespace
}  // namespace ppa
