#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "backend/sim_backend.h"
#include "engine/operators.h"
#include "runtime/streaming_job.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace {

Topology MakeReconTopology() {
  TopologyBuilder b;
  OperatorId src = b.AddOperator("src", 2);
  OperatorId mid = b.AddOperator("mid", 2, InputCorrelation::kIndependent,
                                 0.5);
  OperatorId sink = b.AddOperator("sink", 1, InputCorrelation::kIndependent,
                                  0.5);
  b.Connect(src, mid, PartitionScheme::kOneToOne);
  b.Connect(mid, sink, PartitionScheme::kMerge);
  b.SetSourceRate(src, 40.0);
  auto t = b.Build();
  PPA_CHECK(t.ok());
  return *std::move(t);
}

std::unique_ptr<StreamingJob> MakeReconJob(backend::ExecutionBackend* loop) {
  JobConfig cfg;
  cfg.ft_mode = FtMode::kPpa;
  cfg.batch_interval = Duration::Seconds(1);
  cfg.detection_interval = Duration::Seconds(2);
  cfg.checkpoint_interval = Duration::Seconds(4);
  cfg.num_worker_nodes = 5;
  cfg.num_standby_nodes = 2;
  cfg.stagger_checkpoints = false;
  cfg.window_batches = 5;
  auto job = std::make_unique<StreamingJob>(MakeReconTopology(), cfg, JobRuntimeDeps(loop));
  PPA_CHECK_OK(job->BindSource(0, [] {
    return std::make_unique<SyntheticSource>(20, 64, 7);
  }));
  for (OperatorId op : {1, 2}) {
    PPA_CHECK_OK(job->BindOperator(op, [] {
      return std::make_unique<SlidingWindowAggregateOperator>(5, 0.5);
    }));
  }
  return job;
}

TEST(ReconciliationTest, RequiresRecoveryAndDegradation) {
  backend::SimBackend loop;
  auto job = MakeReconJob(&loop);
  EXPECT_EQ(job->ReconcileTentativeOutputs().status().code(),
            StatusCode::kFailedPrecondition);  // Not started.
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10));
  // No failure: nothing to reconcile.
  EXPECT_EQ(job->ReconcileTentativeOutputs().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ReconciliationTest, CorrectsTheTentativeWindowExactly) {
  // Failure-free oracle.
  backend::SimBackend clean_loop;
  auto clean = MakeReconJob(&clean_loop);
  PPA_CHECK_OK(clean->Start());
  clean_loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40));

  backend::SimBackend loop;
  auto job = MakeReconJob(&loop);
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10.5));
  // Fail mid[0]'s node: passive recovery, tentative outputs meanwhile.
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(2)));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40));
  ASSERT_TRUE(job->AllRecovered());
  // The tentative phase produced degraded sink output.
  bool any_tentative = false;
  for (const SinkRecord& r : job->sink_records()) {
    any_tentative |= r.tentative;
  }
  ASSERT_TRUE(any_tentative);

  auto report = job->ReconcileTentativeOutputs();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->reprocessed_tuples, 0);
  EXPECT_GT(report->missed_outputs, 0)
      << "tentative output lost the failed task's contribution";
  EXPECT_LE(report->from_batch, report->to_batch);

  // The corrected records are exactly the failure-free run's records for
  // the degraded batches.
  auto key_of = [](const Tuple& t) {
    return std::to_string(t.batch) + "|" + t.key + "|" +
           std::to_string(t.value);
  };
  std::multiset<std::string> expected;
  for (const SinkRecord& r : clean->sink_records()) {
    if (r.tuple.batch >= report->from_batch &&
        r.tuple.batch <= report->to_batch) {
      expected.insert(key_of(r.tuple));
    }
  }
  std::multiset<std::string> corrected;
  for (const SinkRecord& r : report->corrected) {
    EXPECT_TRUE(r.correction);
    corrected.insert(key_of(r.tuple));
  }
  EXPECT_EQ(corrected, expected);

  // Corrections were appended to the job's record stream, flagged.
  int64_t corrections_in_stream = 0;
  for (const SinkRecord& r : job->sink_records()) {
    corrections_in_stream += r.correction;
  }
  EXPECT_EQ(corrections_in_stream,
            static_cast<int64_t>(report->corrected.size()));

  // Reconciling twice is an error (window already corrected).
  EXPECT_EQ(job->ReconcileTentativeOutputs().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ReconciliationTest, ReportsCostProportionalToWindow) {
  backend::SimBackend loop;
  auto job = MakeReconJob(&loop);
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10.5));
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(2)));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40));
  ASSERT_TRUE(job->AllRecovered());
  auto report = job->ReconcileTentativeOutputs();
  ASSERT_TRUE(report.ok());
  // The shadow run reprocesses (warm-up + degraded span) batches through
  // all three stages; the warm-up is clipped at batch 0, so the span is at
  // most to_batch + 1 batches of ~40 source tuples each (plus the smaller
  // downstream stages: mid ~40, sink ~20 per batch).
  const int64_t degraded_span = report->to_batch - report->from_batch + 1;
  EXPECT_GT(report->reprocessed_tuples, degraded_span * 40);
  EXPECT_LE(report->reprocessed_tuples, (report->to_batch + 1) * 100);
}

}  // namespace
}  // namespace ppa
