#include <memory>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "backend/sim_backend.h"
#include "engine/operators.h"
#include "runtime/scenario.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace {

using ::testing::HasSubstr;

Topology MakeScenarioTopology() {
  TopologyBuilder b;
  OperatorId src = b.AddOperator("src", 2);
  OperatorId mid = b.AddOperator("mid", 2, InputCorrelation::kIndependent,
                                 0.5);
  OperatorId sink = b.AddOperator("sink", 1, InputCorrelation::kIndependent,
                                  0.5);
  b.Connect(src, mid, PartitionScheme::kOneToOne);
  b.Connect(mid, sink, PartitionScheme::kMerge);
  b.SetSourceRate(src, 40.0);
  auto t = b.Build();
  PPA_CHECK(t.ok());
  return *std::move(t);
}

std::unique_ptr<StreamingJob> MakeScenarioJob(backend::ExecutionBackend* loop) {
  JobConfig cfg;
  cfg.ft_mode = FtMode::kPpa;
  cfg.batch_interval = Duration::Seconds(1);
  cfg.detection_interval = Duration::Seconds(2);
  cfg.checkpoint_interval = Duration::Seconds(4);
  cfg.num_worker_nodes = 5;
  cfg.num_standby_nodes = 3;
  cfg.stagger_checkpoints = false;
  cfg.window_batches = 5;
  auto job = std::make_unique<StreamingJob>(MakeScenarioTopology(), cfg,
                                            JobRuntimeDeps(loop));
  PPA_CHECK_OK(job->BindSource(0, [] {
    return std::make_unique<SyntheticSource>(20, 64, 7);
  }));
  for (OperatorId op : {1, 2}) {
    PPA_CHECK_OK(job->BindOperator(op, [] {
      return std::make_unique<SlidingWindowAggregateOperator>(5, 0.5);
    }));
  }
  return job;
}

TEST(FindTaskByLabelTest, ResolvesAndRejects) {
  Topology topo = MakeScenarioTopology();
  auto mid1 = FindTaskByLabel(topo, "mid[1]");
  ASSERT_TRUE(mid1.ok());
  EXPECT_EQ(topo.TaskLabel(*mid1), "mid[1]");
  EXPECT_EQ(FindTaskByLabel(topo, "nope[0]").status().code(),
            StatusCode::kNotFound);
}

TEST(ScenarioParserTest, ParsesAllEventKinds) {
  Topology topo = MakeScenarioTopology();
  auto events = ParseScenario(topo, R"(
# drill
at 10 fail-node 2
at 12.5 fail-domain 7
at 20 fail-correlated with-sources
at 30 apply-plan mid[0] sink[0]
at 40 reconcile
)");
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_EQ(events->size(), 5u);
  EXPECT_EQ((*events)[0].kind, ScenarioEvent::Kind::kNodeFailure);
  EXPECT_EQ((*events)[0].node, 2);
  EXPECT_EQ((*events)[1].at.micros(), 12500000);
  EXPECT_EQ((*events)[2].kind, ScenarioEvent::Kind::kCorrelatedFailure);
  EXPECT_TRUE((*events)[2].include_sources);
  EXPECT_EQ((*events)[3].plan.size(), 2u);
  EXPECT_EQ((*events)[4].kind, ScenarioEvent::Kind::kReconcile);
}

TEST(ScenarioParserTest, ErrorsCarryLineNumbers) {
  Topology topo = MakeScenarioTopology();
  EXPECT_THAT(ParseScenario(topo, "at ten fail-node 1").status().message(),
              HasSubstr("line 1"));
  EXPECT_THAT(
      ParseScenario(topo, "at 1 explode").status().message(),
      HasSubstr("unknown event"));
  EXPECT_THAT(
      ParseScenario(topo, "at 1 apply-plan ghost[9]").status().message(),
      HasSubstr("ghost[9]"));
  EXPECT_THAT(ParseScenario(topo, "at 1 fail-correlated softly")
                  .status()
                  .message(),
              HasSubstr("unknown option"));
}

TEST(ScenarioRunnerTest, ExecutesTimelineEndToEnd) {
  backend::SimBackend loop;
  auto job = MakeScenarioJob(&loop);
  PPA_CHECK_OK(job->Start());
  auto events = ParseScenario(job->topology(), R"(
at 8.5  apply-plan mid[1]
at 12.5 fail-node 2      # mid[0]'s node: passive recovery + punctures
at 40   reconcile
)");
  ASSERT_TRUE(events.ok()) << events.status();
  ScenarioRunner runner(job.get());
  PPA_CHECK_OK(runner.Run(*std::move(events)));
  EXPECT_FALSE(runner.finished());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
  EXPECT_TRUE(runner.finished());
  ASSERT_EQ(runner.outcomes().size(), 3u);
  EXPECT_TRUE(runner.FirstError().ok()) << runner.FirstError();
  // The drill took effect: a recovery happened and corrections exist.
  EXPECT_EQ(job->recovery_reports().size(), 1u);
  bool corrections = false;
  for (const SinkRecord& r : job->sink_records()) {
    corrections |= r.correction;
  }
  EXPECT_TRUE(corrections);
  // The plan event installed a replica for mid[1].
  EXPECT_NE(job->replica(3), nullptr);
}

TEST(ScenarioParserTest, ParsesReviveVerbs) {
  Topology topo = MakeScenarioTopology();
  auto events = ParseScenario(topo, R"(
at 5 revive-node 3
at 6 revive-domain 42
)");
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].kind, ScenarioEvent::Kind::kReviveNode);
  EXPECT_EQ((*events)[0].node, 3);
  EXPECT_EQ((*events)[1].kind, ScenarioEvent::Kind::kReviveDomain);
  EXPECT_EQ((*events)[1].domain, 42);
}

std::vector<ScenarioEvent> AllKindsTimeline() {
  std::vector<ScenarioEvent> events(7);
  events[0].at = Duration::Seconds(1);
  events[0].kind = ScenarioEvent::Kind::kNodeFailure;
  events[0].node = 2;
  events[1].at = Duration::Seconds(2.5);
  events[1].kind = ScenarioEvent::Kind::kDomainFailure;
  events[1].domain = 42;
  events[2].at = Duration::Seconds(3);
  events[2].kind = ScenarioEvent::Kind::kCorrelatedFailure;
  events[2].include_sources = true;
  events[3].at = Duration::Seconds(4);
  events[3].kind = ScenarioEvent::Kind::kApplyPlan;
  events[3].plan = {1, 3, 4};
  events[4].at = Duration::Seconds(5);
  events[4].kind = ScenarioEvent::Kind::kReconcile;
  events[5].at = Duration::Seconds(6);
  events[5].kind = ScenarioEvent::Kind::kReviveNode;
  events[5].node = 2;
  events[6].at = Duration::Seconds(7);
  events[6].kind = ScenarioEvent::Kind::kReviveDomain;
  events[6].domain = 42;
  return events;
}

TEST(ScenarioJsonTest, RoundTripsEveryEventKind) {
  const std::vector<ScenarioEvent> events = AllKindsTimeline();
  auto parsed = ParseScenarioJson(ScenarioToJson(events).Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, events);
}

TEST(ScenarioJsonTest, GoldenWireFormat) {
  std::vector<ScenarioEvent> events(1);
  events[0].at = Duration::Micros(12500000);
  events[0].kind = ScenarioEvent::Kind::kApplyPlan;
  events[0].plan = {1, 3};
  EXPECT_EQ(ScenarioToJson(events).Serialize(),
            "[{\"at_us\":12500000,\"kind\":\"apply-plan\",\"plan\":[1,3]}]");
}

TEST(ScenarioJsonTest, RejectsMalformedEvents) {
  EXPECT_EQ(ParseScenarioJson("{}").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseScenarioJson("[{\"at_us\":1}]").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_THAT(
      ParseScenarioJson("[{\"at_us\":1,\"kind\":\"explode\"}]")
          .status()
          .message(),
      HasSubstr("event 0"));
  EXPECT_EQ(ParseScenarioJson("[{\"at_us\":1,\"kind\":\"fail-node\"}]")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ScenarioRunnerTest, EmptyFirstRunStillClaimsTheRunner) {
  backend::SimBackend loop;
  auto job = MakeScenarioJob(&loop);
  PPA_CHECK_OK(job->Start());
  ScenarioRunner runner(job.get());
  EXPECT_TRUE(runner.finished());  // Nothing scheduled yet.
  PPA_CHECK_OK(runner.Run({}));
  EXPECT_TRUE(runner.finished());
  // A runner drives exactly one timeline, even an empty one.
  std::vector<ScenarioEvent> events(1);
  events[0].kind = ScenarioEvent::Kind::kReconcile;
  EXPECT_EQ(runner.Run(std::move(events)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ScenarioRunnerTest, RevivedNodeCanFailAgain) {
  backend::SimBackend loop;
  auto job = MakeScenarioJob(&loop);
  PPA_CHECK_OK(job->Start());
  auto events = ParseScenario(job->topology(), R"(
at 8  fail-node 2
at 20 revive-node 2
at 30 fail-node 2
)");
  ASSERT_TRUE(events.ok()) << events.status();
  ScenarioRunner runner(job.get());
  PPA_CHECK_OK(runner.Run(*std::move(events)));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(50));
  ASSERT_TRUE(runner.finished());
  EXPECT_TRUE(runner.FirstError().ok()) << runner.FirstError();
  EXPECT_EQ(job->recovery_reports().size(), 2u);
  EXPECT_EQ(job->trace().CountOf(obs::TraceEventKind::kNodeRevived), 1);
}

TEST(ScenarioRunnerTest, RecordsEventFailures) {
  backend::SimBackend loop;
  auto job = MakeScenarioJob(&loop);
  PPA_CHECK_OK(job->Start());
  ScenarioRunner runner(job.get());
  std::vector<ScenarioEvent> events(1);
  events[0].at = Duration::Seconds(5);
  events[0].kind = ScenarioEvent::Kind::kNodeFailure;
  events[0].node = 999;  // Invalid.
  PPA_CHECK_OK(runner.Run(std::move(events)));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10));
  ASSERT_TRUE(runner.finished());
  EXPECT_EQ(runner.FirstError().code(), StatusCode::kInvalidArgument);
  // Double-scheduling rejected.
  EXPECT_EQ(runner.Run({}).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ppa
