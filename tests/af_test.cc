// Tests for src/af/: the bounded-error recovery policy layer (DESIGN.md
// §17) — RecoveryMode flag spelling, ErrorBudget skip gating in each of
// its declared forms, DivergenceTracker accounting, the certified
// output-loss bound, JobConfig validation of mode/ft combinations, and
// the end-to-end contract: an approx job persists strictly fewer
// checkpoint bytes than the exact run and behaves identically on the
// sim and threaded backends.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "af/divergence.h"
#include "af/error_budget.h"
#include "backend/sim_backend.h"
#include "backend/threaded_backend.h"
#include "common/logging.h"
#include "engine/operators.h"
#include "fidelity/metrics.h"
#include "runtime/config.h"
#include "runtime/job_deps.h"
#include "runtime/streaming_job.h"
#include "topology/topology.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace {

using ::testing::HasSubstr;

// --- RecoveryMode spelling --------------------------------------------------

TEST(RecoveryModeTest, StringRoundTrip) {
  for (af::RecoveryMode mode :
       {af::RecoveryMode::kPpa, af::RecoveryMode::kApprox,
        af::RecoveryMode::kHybrid}) {
    auto parsed = af::RecoveryModeFromString(af::RecoveryModeToString(mode));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, mode);
  }
}

TEST(RecoveryModeTest, RejectsUnknownNames) {
  auto bad = af::RecoveryModeFromString("exactly-once");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_THAT(std::string(bad.status().message()),
              HasSubstr("ppa|approx|hybrid"));
  EXPECT_FALSE(af::RecoveryModeFromString("").ok());
  EXPECT_FALSE(af::RecoveryModeFromString("Approx").ok());
}

// --- ErrorBudgetSpec validation ---------------------------------------------

TEST(ErrorBudgetSpecTest, DefaultsAreValid) {
  EXPECT_TRUE(af::ErrorBudgetSpec{}.Validate().ok());
}

TEST(ErrorBudgetSpecTest, RejectsDegenerateForms) {
  af::ErrorBudgetSpec spec;
  spec.task_divergence_records = 0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);

  spec = af::ErrorBudgetSpec{};
  spec.job_divergence_records = -1;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);

  spec = af::ErrorBudgetSpec{};
  spec.task_divergence_rate = -0.5;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);

  spec = af::ErrorBudgetSpec{};
  spec.max_certified_loss = 1.5;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  spec.max_certified_loss = -0.1;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  // The boundaries themselves are legal: loss 0 forbids any divergence
  // certificate, loss 1 never binds.
  spec.max_certified_loss = 0.0;
  EXPECT_TRUE(spec.Validate().ok());
  spec.max_certified_loss = 1.0;
  EXPECT_TRUE(spec.Validate().ok());
}

// --- ErrorBudget skip gate --------------------------------------------------

TEST(ErrorBudgetTest, AbsoluteTaskFormBinds) {
  af::ErrorBudgetSpec spec;
  spec.task_divergence_records = 100;
  spec.job_divergence_records = 1'000'000;
  af::ErrorBudget budget(spec);
  af::Divergence task;
  task.records = 100;
  EXPECT_TRUE(budget.AllowSkip(task, 1.0, task)) << "at the cap is allowed";
  task.records = 101;
  EXPECT_FALSE(budget.AllowSkip(task, 1.0, task));
}

TEST(ErrorBudgetTest, RateFormBindsOnlyWhenEnabled) {
  af::ErrorBudgetSpec spec;
  spec.task_divergence_records = 1'000'000;
  spec.job_divergence_records = 1'000'000;
  spec.task_divergence_rate = 0.0;  // disabled
  af::Divergence task;
  task.records = 5000;
  EXPECT_TRUE(af::ErrorBudget(spec).AllowSkip(task, 1.0, task));
  spec.task_divergence_rate = 100.0;  // 100 rec/s over a 1 s window
  EXPECT_FALSE(af::ErrorBudget(spec).AllowSkip(task, 1.0, task));
  // The same drift over a long enough window is within rate.
  EXPECT_TRUE(af::ErrorBudget(spec).AllowSkip(task, 60.0, task));
}

TEST(ErrorBudgetTest, JobFormBindsAcrossTasks) {
  af::ErrorBudgetSpec spec;
  spec.task_divergence_records = 1'000;
  spec.job_divergence_records = 1'500;
  af::ErrorBudget budget(spec);
  af::Divergence task;
  task.records = 900;  // within the task form
  af::Divergence job = task;
  af::Divergence other;
  other.records = 700;
  job.Add(other);  // 1600 at risk job-wide
  EXPECT_FALSE(budget.AllowSkip(task, 1.0, job));
  job.records = 1'500;
  EXPECT_TRUE(budget.AllowSkip(task, 1.0, job));
}

// --- DivergenceTracker ------------------------------------------------------

TEST(DivergenceTrackerTest, AccumulatesClearsAndAnchors) {
  af::DivergenceTracker tracker;
  const TimePoint t0 = TimePoint::Zero();
  tracker.Reset(3, t0);
  EXPECT_EQ(tracker.num_tasks(), 3);
  tracker.Observe(1, /*records=*/10, /*bytes=*/640, /*weight=*/0.5);
  tracker.Observe(1, /*records=*/6, /*bytes=*/384, /*weight=*/0.5);
  EXPECT_EQ(tracker.OfTask(1).records, 16);
  EXPECT_EQ(tracker.OfTask(1).bytes, 1024);
  EXPECT_DOUBLE_EQ(tracker.OfTask(1).weighted, 8.0);
  EXPECT_EQ(tracker.OfTask(0).records, 0) << "other tasks untouched";
  EXPECT_EQ(tracker.OfTask(2).records, 0);

  const TimePoint t5 = t0 + Duration::Seconds(5);
  EXPECT_DOUBLE_EQ(tracker.ElapsedSeconds(1, t5), 5.0);
  tracker.Clear(1, t5);
  EXPECT_EQ(tracker.OfTask(1).records, 0);
  EXPECT_DOUBLE_EQ(tracker.ElapsedSeconds(1, t5 + Duration::Seconds(2)), 2.0)
      << "Clear re-anchors the rate window";
}

// --- CertifiedLossBound -----------------------------------------------------

Topology MakeAfTopology() {
  TopologyBuilder b;
  OperatorId src = b.AddOperator("src", 2);
  OperatorId mid =
      b.AddOperator("mid", 2, InputCorrelation::kIndependent, 0.5);
  OperatorId sink =
      b.AddOperator("sink", 1, InputCorrelation::kIndependent, 0.5);
  b.Connect(src, mid, PartitionScheme::kOneToOne);
  b.Connect(mid, sink, PartitionScheme::kMerge);
  b.SetSourceRate(src, 40.0);
  auto t = b.Build();
  PPA_CHECK(t.ok()) << t.status();
  return *std::move(t);
}

TEST(CertifiedLossBoundTest, MatchesFidelityComplementAndClamps) {
  Topology topo = MakeAfTopology();
  TaskSet none(topo.num_tasks());
  EXPECT_DOUBLE_EQ(af::CertifiedLossBound(topo, none), 0.0);

  TaskSet one(topo.num_tasks());
  one.Add(2);  // first mid task
  const double loss_one = af::CertifiedLossBound(topo, one);
  EXPECT_DOUBLE_EQ(loss_one, 1.0 - ComputeOutputFidelity(topo, one));
  EXPECT_GT(loss_one, 0.0);
  EXPECT_LT(loss_one, 1.0);

  TaskSet both(topo.num_tasks());
  both.Add(2);
  both.Add(3);
  EXPECT_GE(af::CertifiedLossBound(topo, both), loss_one)
      << "losing more tasks never certifies a smaller loss";

  TaskSet all(topo.num_tasks());
  for (TaskId t = 0; t < topo.num_tasks(); ++t) {
    all.Add(t);
  }
  EXPECT_DOUBLE_EQ(af::CertifiedLossBound(topo, all), 1.0);
}

// --- JobConfig validation of mode/ft pairings -------------------------------

TEST(JobConfigAfTest, ApproxRequiresCheckpointBearingFt) {
  JobConfig cfg = JobConfig::CheckpointDefaults();
  cfg.recovery_mode = af::RecoveryMode::kApprox;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.ft_mode = FtMode::kPpa;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.ft_mode = FtMode::kSourceReplay;
  auto status = cfg.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_THAT(std::string(status.message()), HasSubstr("checkpoint-bearing"));
  cfg.ft_mode = FtMode::kActiveReplication;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.ft_mode = FtMode::kNone;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(JobConfigAfTest, HybridRequiresPpa) {
  JobConfig cfg = JobConfig::PpaDefaults();
  cfg.recovery_mode = af::RecoveryMode::kHybrid;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.ft_mode = FtMode::kCheckpoint;
  auto status = cfg.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_THAT(std::string(status.message()), HasSubstr("ft_mode=ppa"));
}

TEST(JobConfigAfTest, BudgetValidatedOnlyWhenModeIsNotExact) {
  JobConfig cfg = JobConfig::CheckpointDefaults();
  cfg.error_budget.max_certified_loss = 2.0;  // invalid spec ...
  EXPECT_TRUE(cfg.Validate().ok()) << "... is inert under exact recovery";
  cfg.recovery_mode = af::RecoveryMode::kApprox;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
}

// --- End to end: approx vs exact on a real job ------------------------------

struct AfRunResult {
  int64_t checkpoint_bytes = 0;
  int64_t checkpoints_skipped = 0;
  std::vector<SinkRecord> records;
};

JobConfig MakeAfJobConfig(af::RecoveryMode mode) {
  JobConfig cfg;
  cfg.ft_mode = FtMode::kCheckpoint;
  cfg.batch_interval = Duration::Seconds(1);
  cfg.detection_interval = Duration::Seconds(2);
  cfg.checkpoint_interval = Duration::Seconds(3);
  cfg.num_worker_nodes = 5;
  cfg.num_standby_nodes = 3;
  cfg.stagger_checkpoints = false;
  cfg.recovery_mode = mode;
  // Loose budget: every gated checkpoint within a 3 s interval may skip.
  cfg.error_budget.task_divergence_records = 1'000'000;
  cfg.error_budget.job_divergence_records = 10'000'000;
  cfg.error_budget.max_certified_loss = 1.0;
  return cfg;
}

AfRunResult RunAfDrill(backend::ExecutionBackend* be, af::RecoveryMode mode) {
  Topology topo = MakeAfTopology();
  StreamingJob job(topo, MakeAfJobConfig(mode), JobRuntimeDeps(be));
  PPA_CHECK_OK(job.BindSource(0, [] {
    return std::make_unique<SyntheticSource>(20, 64, 7);
  }));
  for (OperatorId op : {1, 2}) {
    PPA_CHECK_OK(job.BindOperator(op, [] {
      return std::make_unique<SlidingWindowAggregateOperator>(5, 0.5);
    }));
  }
  PPA_CHECK_OK(job.Start());
  be->RunUntil(TimePoint::Zero() + Duration::Seconds(45));
  AfRunResult result;
  result.checkpoint_bytes = job.CheckpointBytesWritten();
  result.checkpoints_skipped = job.CheckpointsSkipped();
  result.records = job.sink_records();
  return result;
}

TEST(AfEndToEndTest, ApproxPersistsStrictlyFewerBytesThanExact) {
  backend::SimBackend exact_be;
  AfRunResult exact = RunAfDrill(&exact_be, af::RecoveryMode::kPpa);
  backend::SimBackend approx_be;
  AfRunResult approx = RunAfDrill(&approx_be, af::RecoveryMode::kApprox);

  EXPECT_GT(exact.checkpoint_bytes, 0);
  EXPECT_EQ(exact.checkpoints_skipped, 0)
      << "exact recovery never thins the chain";
  EXPECT_GT(approx.checkpoints_skipped, 0);
  EXPECT_LT(approx.checkpoint_bytes, exact.checkpoint_bytes);

  // Without failures the sink stream is identical: thinning only changes
  // what would be forfeited on recovery, not live output.
  ASSERT_EQ(approx.records.size(), exact.records.size());
  for (size_t i = 0; i < approx.records.size(); ++i) {
    EXPECT_EQ(approx.records[i].tuple, exact.records[i].tuple);
  }
}

TEST(AfEndToEndTest, ApproxRunIsIdenticalOnSimAndThreads) {
  backend::SimBackend sim;
  AfRunResult golden = RunAfDrill(&sim, af::RecoveryMode::kApprox);
  backend::ThreadedBackend threads;
  AfRunResult real = RunAfDrill(&threads, af::RecoveryMode::kApprox);

  EXPECT_GT(golden.records.size(), 0u);
  EXPECT_EQ(real.checkpoint_bytes, golden.checkpoint_bytes);
  EXPECT_EQ(real.checkpoints_skipped, golden.checkpoints_skipped);
  ASSERT_EQ(real.records.size(), golden.records.size());
  for (size_t i = 0; i < real.records.size(); ++i) {
    EXPECT_EQ(real.records[i].tuple, golden.records[i].tuple);
  }
}

TEST(AfEndToEndTest, DeterministicAcrossRepeatedSimRuns) {
  backend::SimBackend a, b;
  AfRunResult first = RunAfDrill(&a, af::RecoveryMode::kApprox);
  AfRunResult second = RunAfDrill(&b, af::RecoveryMode::kApprox);
  EXPECT_EQ(first.checkpoint_bytes, second.checkpoint_bytes);
  EXPECT_EQ(first.checkpoints_skipped, second.checkpoints_skipped);
  ASSERT_EQ(first.records.size(), second.records.size());
  for (size_t i = 0; i < first.records.size(); ++i) {
    EXPECT_EQ(first.records[i].tuple, second.records[i].tuple);
  }
}

}  // namespace
}  // namespace ppa
