// Tests for the observability subsystem (src/obs/): metric semantics,
// histogram percentile math, trace ordering, timeline derivation, JSON
// export shape, and the two properties the runtime integration must hold:
// recording is deterministic, and disabling it does not change the
// simulation.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backend/sim_backend.h"
#include "engine/operators.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "runtime/streaming_job.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace {

using obs::TraceEvent;
using obs::TraceEventKind;

TEST(MetricsTest, CounterSemantics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(MetricsTest, GaugeTracksEnvelope) {
  obs::Gauge g;
  EXPECT_EQ(g.samples(), 0);
  g.Set(5.0);
  g.Set(-3.0);
  g.Set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.min(), -3.0);
  EXPECT_DOUBLE_EQ(g.max(), 5.0);
  EXPECT_EQ(g.samples(), 3);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  obs::Histogram h({10.0, 100.0});
  h.Record(5.0);
  h.Record(10.0);   // inclusive upper bound -> first bucket
  h.Record(50.0);
  h.Record(1000.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 1065.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 1065.0 / 4);
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 2);
  EXPECT_EQ(h.bucket_counts()[1], 1);
  EXPECT_EQ(h.bucket_counts()[2], 1);
}

TEST(MetricsTest, PercentilesOnKnownDistribution) {
  // Decile buckets, one sample at each integer 1..100: percentile p
  // interpolates to exactly p (clamped to the observed extremes).
  std::vector<double> bounds;
  for (double b = 10.0; b <= 100.0; b += 10.0) {
    bounds.push_back(b);
  }
  obs::Histogram h(bounds);
  for (int v = 1; v <= 100; ++v) {
    h.Record(static_cast<double>(v));
  }
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);    // observed min
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);  // observed max
}

TEST(MetricsTest, PercentileOfEmptyAndSingleton) {
  obs::Histogram h({1.0, 10.0});
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  h.Record(7.0);
  // One sample: every percentile collapses onto it (lo==hi clamp).
  EXPECT_DOUBLE_EQ(h.Percentile(1), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 7.0);
}

TEST(MetricsTest, DefaultBoundsAreExactRoundNumbers) {
  // 1-2-5 decades from 1e-3 to 5e9. The edges are built from an exact
  // integer power of ten, so each one must equal the decimal literal
  // bit-for-bit — no accumulated floating-point drift across decades.
  const std::vector<double> bounds = obs::Histogram::DefaultBounds();
  ASSERT_EQ(bounds.size(), 39u);
  EXPECT_EQ(bounds[0], 0.001);
  EXPECT_EQ(bounds[1], 0.002);
  EXPECT_EQ(bounds[2], 0.005);
  EXPECT_EQ(bounds[3], 0.01);
  EXPECT_EQ(bounds[8], 0.5);
  EXPECT_EQ(bounds[9], 1.0);
  EXPECT_EQ(bounds[10], 2.0);
  EXPECT_EQ(bounds[11], 5.0);
  EXPECT_EQ(bounds[17], 500.0);
  EXPECT_EQ(bounds[36], 1e9);
  EXPECT_EQ(bounds[37], 2e9);
  EXPECT_EQ(bounds[38], 5e9);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(MetricsTest, RegistryHandlesAreStableAndKindScoped) {
  obs::MetricsRegistry registry;
  obs::Counter* c1 = registry.counter("x.events");
  obs::Counter* c2 = registry.counter("x.events");
  EXPECT_EQ(c1, c2);
  // The same name in a different kind is a distinct metric.
  obs::Gauge* g = registry.gauge("x.events");
  obs::Histogram* h = registry.histogram("x.events");
  c1->Increment(3);
  g->Set(1.5);
  h->Record(2.0);
  EXPECT_EQ(registry.counter("x.events")->value(), 3);
  EXPECT_EQ(registry.gauge("x.events")->samples(), 1);
  EXPECT_EQ(registry.histogram("x.events")->count(), 1);
}

TEST(MetricsTest, NullSafeHelpersIgnoreNullptr) {
  obs::Add(static_cast<obs::Counter*>(nullptr));
  obs::Set(static_cast<obs::Gauge*>(nullptr), 1.0);
  obs::Observe(static_cast<obs::Histogram*>(nullptr), 1.0);
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter("c");
  obs::Add(c, 2);
  EXPECT_EQ(c->value(), 2);
}

TEST(MetricsTest, SingleBucketHistogramSaturates) {
  // One finite bucket plus the overflow: everything at or below the
  // bound lands in bucket 0, and percentiles clamp to the observed
  // extremes instead of interpolating past them.
  obs::Histogram h({10.0});
  ASSERT_EQ(h.bucket_counts().size(), 2u);
  for (int i = 0; i < 100; ++i) {
    h.Record(10.0);
  }
  EXPECT_EQ(h.bucket_counts()[0], 100);
  EXPECT_EQ(h.bucket_counts()[1], 0);
  EXPECT_DOUBLE_EQ(h.Percentile(1), 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 10.0);
}

TEST(MetricsTest, ValueAboveLastBoundGoesToOverflow) {
  obs::Histogram h({1.0, 10.0});
  h.Record(10.5);
  h.Record(1e12);
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 0);
  EXPECT_EQ(h.bucket_counts()[1], 0);
  EXPECT_EQ(h.bucket_counts()[2], 2);
  // The overflow bucket has no upper bound; percentiles stay within the
  // observed range rather than inventing one.
  EXPECT_DOUBLE_EQ(h.min(), 10.5);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  EXPECT_LE(h.Percentile(99), 1e12);
  EXPECT_GE(h.Percentile(1), 10.5);
}

TEST(MetricsTest, RecordingOrderDoesNotChangeTheHistogram) {
  // Accumulation is a commutative fold: the same multiset of samples
  // must produce identical stats, buckets, and percentiles no matter
  // the arrival order (parallel-runner cells feed histograms in
  // submission order, so this is what keeps reports deterministic).
  obs::Histogram ascending({10.0, 50.0, 100.0});
  obs::Histogram descending({10.0, 50.0, 100.0});
  for (int v = 1; v <= 100; ++v) {
    ascending.Record(static_cast<double>(v));
    descending.Record(static_cast<double>(101 - v));
  }
  EXPECT_EQ(ascending.count(), descending.count());
  EXPECT_DOUBLE_EQ(ascending.sum(), descending.sum());
  EXPECT_DOUBLE_EQ(ascending.min(), descending.min());
  EXPECT_DOUBLE_EQ(ascending.max(), descending.max());
  ASSERT_EQ(ascending.bucket_counts(), descending.bucket_counts());
  for (double p : {1.0, 50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(ascending.Percentile(p), descending.Percentile(p));
  }
  EXPECT_EQ(obs::HistogramToJson(ascending).Serialize(),
            obs::HistogramToJson(descending).Serialize());
}

TEST(FlightRecorderTest, RingWrapKeepsTheNewestEvents) {
  obs::FlightRecorder recorder(4);
  ASSERT_TRUE(recorder.enabled());
  EXPECT_EQ(recorder.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    recorder.ring().Record(TimePoint::Zero() + Duration::Seconds(i),
                           TraceEventKind::kTaskFailed, i, 0);
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  // The retained tail is the newest four, oldest first.
  const auto& events = recorder.ring().events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().task, 6);
  EXPECT_EQ(events.back().task, 9);
}

TEST(FlightRecorderTest, MirrorRecordsEvenWithTheTraceDisabled) {
  // The always-on property: the main trace is off (observability
  // disabled), yet its mirror — the flight-recorder ring — still sees
  // every Record call.
  obs::FlightRecorder recorder(8);
  obs::TraceLog trace;
  trace.set_enabled(false);
  trace.set_mirror(&recorder.ring());
  trace.Record(TimePoint::Zero(), TraceEventKind::kNodeFailure, -1, 2);
  trace.Record(TimePoint::Zero() + Duration::Seconds(1),
               TraceEventKind::kTaskFailed, 5, 2);
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.ring().events()[1].task, 5);
}

TEST(FlightRecorderTest, ZeroCapacityDisablesRecording) {
  obs::FlightRecorder recorder(0);
  EXPECT_FALSE(recorder.enabled());
  recorder.ring().Record(TimePoint::Zero(), TraceEventKind::kNodeFailure);
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  // The dump degrades to a valid empty record, not an error.
  JsonValue dump = obs::FlightRecordToJson(recorder);
  EXPECT_EQ(dump.Find("recorded")->AsInt(), 0);
  EXPECT_EQ(dump.Find("events")->size(), 0u);
}

TEST(FlightRecorderTest, DumpIsByteIdenticalForIdenticalRuns) {
  auto feed = [](obs::FlightRecorder* recorder) {
    for (int i = 0; i < 7; ++i) {
      recorder->ring().Record(TimePoint::Zero() + Duration::Seconds(i),
                              TraceEventKind::kCheckpointBegin, i % 3, i,
                              i * 2, i * 3);
    }
  };
  obs::FlightRecorder a(4);
  obs::FlightRecorder b(4);
  feed(&a);
  feed(&b);
  const JsonValue dump_a = obs::FlightRecordToJson(a);
  const JsonValue dump_b = obs::FlightRecordToJson(b);
  EXPECT_EQ(dump_a.Serialize(), dump_b.Serialize());
  // Shape: capacity/dropped/recorded plus the retained tail.
  EXPECT_EQ(dump_a.Find("capacity")->AsInt(), 4);
  EXPECT_EQ(dump_a.Find("dropped")->AsInt(), 3);
  EXPECT_EQ(dump_a.Find("recorded")->AsInt(), 7);
  EXPECT_EQ(dump_a.Find("events")->size(), 4u);
}

TEST(TraceTest, SameInstantEventsKeepInsertionOrder) {
  obs::TraceLog trace;
  const TimePoint t = TimePoint::Zero() + Duration::Seconds(1);
  trace.Record(t, TraceEventKind::kNodeFailure, -1, 3, 2);
  trace.Record(t, TraceEventKind::kTaskFailed, 5, 3);
  trace.Record(t, TraceEventKind::kTaskFailed, 6, 3);
  ASSERT_EQ(trace.size(), 3u);
  const auto& events = trace.events();
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_EQ(events[0].kind, TraceEventKind::kNodeFailure);
  EXPECT_EQ(events[1].task, 5);
  EXPECT_EQ(events[2].task, 6);
  EXPECT_EQ(trace.CountOf(TraceEventKind::kTaskFailed), 2);
  const TraceEvent* first = trace.FirstOf(TraceEventKind::kTaskFailed);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->task, 5);
  EXPECT_EQ(trace.FirstOf(TraceEventKind::kCheckpointBegin), nullptr);
}

TEST(TraceTest, DisabledLogDropsEvents) {
  obs::TraceLog trace;
  trace.set_enabled(false);
  trace.Record(TimePoint::Zero(), TraceEventKind::kNodeFailure);
  EXPECT_EQ(trace.size(), 0u);
  trace.set_enabled(true);
  trace.Record(TimePoint::Zero(), TraceEventKind::kNodeFailure);
  EXPECT_EQ(trace.size(), 1u);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceTest, CapacityEvictsOldestFirst) {
  obs::TraceLog trace;
  EXPECT_EQ(trace.capacity(), 0u);  // Unbounded by default.
  trace.set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    trace.Record(TimePoint::Zero() + Duration::Seconds(i),
                 TraceEventKind::kTaskFailed, i, 0);
  }
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.dropped(), 2u);
  // Oldest two evicted; sequence numbers keep their global order.
  EXPECT_EQ(trace.events().front().task, 2);
  EXPECT_EQ(trace.events().front().seq, 2u);
  EXPECT_EQ(trace.events().back().task, 4);
  // Shrinking below the current size evicts immediately.
  trace.set_capacity(1);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.dropped(), 4u);
  EXPECT_EQ(trace.events().front().task, 4);
  // Back to unbounded: nothing is evicted any more.
  trace.set_capacity(0);
  trace.Record(TimePoint::Zero() + Duration::Seconds(9),
               TraceEventKind::kTaskFailed, 9, 0);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.dropped(), 4u);
  trace.Clear();
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TimelineTest, BuildsEpisodesPerFailure) {
  obs::TraceLog trace;
  const TimePoint t0 = TimePoint::Zero();
  auto at = [&](double s) { return t0 + Duration::Seconds(s); };
  // Task 4: full episode. Task 7: fails, never caught up (open episode).
  trace.Record(at(10), TraceEventKind::kTaskFailed, 4, 1);
  trace.Record(at(10), TraceEventKind::kTaskFailed, 7, 1);
  trace.Record(at(12), TraceEventKind::kRecoveryStart, 4, -1,
               /*kind=*/1, 2500000);
  trace.Record(at(14.5), TraceEventKind::kRecoveryDone, 4, -1, 1);
  trace.Record(at(16), TraceEventKind::kTaskCaughtUp, 4, -1, 16);
  // Second failure of task 4 -> second episode.
  trace.Record(at(20), TraceEventKind::kTaskFailed, 4, 2);

  auto timelines = obs::BuildRecoveryTimelines(trace);
  ASSERT_EQ(timelines.size(), 3u);
  const obs::RecoveryTimeline& full = timelines[0];
  EXPECT_EQ(full.task, 4);
  EXPECT_TRUE(full.detected);
  EXPECT_TRUE(full.restored);
  EXPECT_TRUE(full.caught_up);
  EXPECT_EQ(full.recovery_kind, 1);
  EXPECT_DOUBLE_EQ(full.RestoreLatency().seconds(), 4.5);
  EXPECT_DOUBLE_EQ(full.RecoveryLatency().seconds(), 2.5);
  const obs::RecoveryTimeline& open = timelines[1];
  EXPECT_EQ(open.task, 7);
  EXPECT_FALSE(open.detected);
  EXPECT_DOUBLE_EQ(open.RestoreLatency().seconds(), 0.0);
  EXPECT_EQ(timelines[2].task, 4);
  EXPECT_FALSE(timelines[2].restored);
}

TEST(TimelineTest, ExtractsTentativeWindows) {
  obs::TraceLog trace;
  const TimePoint t0 = TimePoint::Zero();
  auto at = [&](double s) { return t0 + Duration::Seconds(s); };
  trace.Record(at(5), TraceEventKind::kTentativeWindowBegin, -1, -1, 5);
  trace.Record(at(9), TraceEventKind::kTentativeWindowEnd, -1, -1, 9);
  trace.Record(at(20), TraceEventKind::kTentativeWindowBegin, -1, -1, 20);
  auto windows = obs::ExtractTentativeWindows(trace);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_TRUE(windows[0].closed);
  EXPECT_DOUBLE_EQ(windows[0].begin.seconds(), 5.0);
  EXPECT_DOUBLE_EQ(windows[0].end.seconds(), 9.0);
  EXPECT_EQ(windows[0].first_batch, 5);
  EXPECT_EQ(windows[0].last_batch, 9);
  EXPECT_FALSE(windows[1].closed);
  EXPECT_EQ(windows[1].last_batch, -1);
}

TEST(ExportTest, JsonShape) {
  obs::MetricsRegistry registry;
  registry.counter("sink.records")->Increment(12);
  registry.gauge("buffer.tuples")->Set(3.0);
  registry.histogram("checkpoint.duration_us")->Record(100.0);
  obs::TraceLog trace;
  trace.Record(TimePoint::Zero() + Duration::Seconds(1),
               TraceEventKind::kTaskFailed, 2, 0);
  const std::string json =
      obs::RunProfileToJson(registry, trace, [](int64_t task) {
        return "task-" + std::to_string(task);
      }).Serialize();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"sink.records\":12"), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint.duration_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery_timelines\""), std::string::npos);
  EXPECT_NE(json.find("\"tentative_windows\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("task-2"), std::string::npos);
}

/// src(2) -> mid(2) -> sink(1) job used by the integration tests below.
struct JobHarness {
  explicit JobHarness(bool observability) {
    TopologyBuilder b;
    OperatorId src = b.AddOperator("src", 2);
    OperatorId mid =
        b.AddOperator("mid", 2, InputCorrelation::kIndependent, 0.5);
    OperatorId sink =
        b.AddOperator("sink", 1, InputCorrelation::kIndependent, 0.5);
    b.Connect(src, mid, PartitionScheme::kOneToOne);
    b.Connect(mid, sink, PartitionScheme::kMerge);
    b.SetSourceRate(src, 40.0);
    auto topo = b.Build();
    PPA_CHECK(topo.ok());

    JobConfig cfg;
    cfg.ft_mode = FtMode::kPpa;
    cfg.batch_interval = Duration::Seconds(1);
    cfg.detection_interval = Duration::Seconds(2);
    cfg.checkpoint_interval = Duration::Seconds(5);
    cfg.replica_sync_interval = Duration::Seconds(2);
    cfg.num_worker_nodes = 5;
    cfg.num_standby_nodes = 5;
    cfg.window_batches = 5;
    cfg.stagger_checkpoints = false;
    cfg.observability = observability;

    job = std::make_unique<StreamingJob>(*std::move(topo), cfg, JobRuntimeDeps(&loop));
    PPA_CHECK_OK(job->BindSource(0, [] {
      return std::make_unique<SyntheticSource>(20, 64, 7);
    }));
    for (OperatorId op : {1, 2}) {
      PPA_CHECK_OK(job->BindOperator(op, [] {
        return std::make_unique<SlidingWindowAggregateOperator>(5, 0.5);
      }));
    }
    TaskSet active(job->topology().num_tasks());
    active.Add(3);  // mid[1] gets a replica; mid[0] (task 2) stays
                    // passive-only, so its failure degrades the sink.
    PPA_CHECK_OK(job->SetActiveReplicaSet(active));
    PPA_CHECK_OK(job->Start());
  }

  /// Runs to 60 s with a node failure at 10.5 s that kills the passive
  /// mid[0], forcing tentative outputs while it recovers.
  void RunFailureScenario() {
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10.5));
    PPA_CHECK_OK(job->InjectNodeFailure(2));
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
  }

  backend::SimBackend loop;
  std::unique_ptr<StreamingJob> job;
};

TEST(ObsIntegrationTest, TraceIsDeterministicAcrossIdenticalRuns) {
  JobHarness a(/*observability=*/true);
  JobHarness b(/*observability=*/true);
  a.RunFailureScenario();
  b.RunFailureScenario();
  ASSERT_FALSE(a.job->trace().events().empty());
  ASSERT_EQ(a.job->trace().size(), b.job->trace().size());
  EXPECT_EQ(a.job->trace().events(), b.job->trace().events());
  // The metrics snapshots serialize identically too, and so do the
  // profiled spans and the fidelity timeseries.
  EXPECT_EQ(obs::MetricsToJson(a.job->metrics()).Serialize(),
            obs::MetricsToJson(b.job->metrics()).Serialize());
  EXPECT_EQ(obs::SpansToJson(a.job->spans(), nullptr).Serialize(),
            obs::SpansToJson(b.job->spans(), nullptr).Serialize());
  EXPECT_EQ(
      obs::FidelityTimeseriesToJson(a.job->fidelity_timeseries(), nullptr)
          .Serialize(),
      obs::FidelityTimeseriesToJson(b.job->fidelity_timeseries(), nullptr)
          .Serialize());
}

TEST(ObsIntegrationTest, ObservabilityDoesNotPerturbSimulation) {
  JobHarness on(/*observability=*/true);
  JobHarness off(/*observability=*/false);
  on.RunFailureScenario();
  off.RunFailureScenario();
  // Identical simulation output with recording on and off.
  ASSERT_EQ(on.job->sink_records().size(), off.job->sink_records().size());
  for (size_t i = 0; i < on.job->sink_records().size(); ++i) {
    EXPECT_EQ(on.job->sink_records()[i].tuple,
              off.job->sink_records()[i].tuple);
    EXPECT_EQ(on.job->sink_records()[i].tentative,
              off.job->sink_records()[i].tentative);
    // Latency lineage is part of the simulation itself, so batches carry
    // identical ingest stamps whether or not observability records them.
    EXPECT_EQ(on.job->sink_records()[i].ingest_at,
              off.job->sink_records()[i].ingest_at);
  }
  EXPECT_EQ(on.job->recovery_reports().size(),
            off.job->recovery_reports().size());
  EXPECT_EQ(on.job->frontier(), off.job->frontier());
  // And the disabled run recorded nothing.
  EXPECT_EQ(off.job->trace().size(), 0u);
  EXPECT_TRUE(off.job->metrics().counters().empty());
  EXPECT_TRUE(off.job->metrics().histograms().empty());
  EXPECT_EQ(off.job->spans().size(), 0u);
  EXPECT_TRUE(off.job->fidelity_timeseries().empty());
}

TEST(ObsIntegrationTest, FailureRunProducesConsistentProfile) {
  JobHarness h(/*observability=*/true);
  h.RunFailureScenario();
  const obs::TraceLog& trace = h.job->trace();

  // The failure shows up as node + task events in causal order.
  const TraceEvent* node_failure =
      trace.FirstOf(TraceEventKind::kNodeFailure);
  ASSERT_NE(node_failure, nullptr);
  EXPECT_DOUBLE_EQ(node_failure->at.seconds(), 10.5);
  const TraceEvent* task_failed = trace.FirstOf(TraceEventKind::kTaskFailed);
  ASSERT_NE(task_failed, nullptr);
  EXPECT_GT(task_failed->seq, node_failure->seq);

  // Every recovery episode completes: detected, restored, caught up.
  auto timelines = obs::BuildRecoveryTimelines(trace);
  ASSERT_FALSE(timelines.empty());
  for (const obs::RecoveryTimeline& tl : timelines) {
    EXPECT_TRUE(tl.detected);
    EXPECT_TRUE(tl.restored);
    EXPECT_TRUE(tl.caught_up);
    EXPECT_GE(tl.RecoveryLatency().micros(), 0);
    EXPECT_GE(tl.RestoreLatency().micros(),
              tl.RecoveryLatency().micros());
  }

  // Tentative-window bounds match the raw sink trace events.
  auto windows = obs::ExtractTentativeWindows(trace);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_TRUE(windows[0].closed);
  const TraceEvent* first_tentative =
      trace.FirstOf(TraceEventKind::kSinkBatchTentative);
  ASSERT_NE(first_tentative, nullptr);
  EXPECT_EQ(windows[0].begin, first_tentative->at);
  EXPECT_EQ(windows[0].first_batch, first_tentative->a);
  EXPECT_LT(windows[0].begin, windows[0].end);

  // Checkpoint metrics flow into the named histogram.
  const auto& histograms = h.job->metrics().histograms();
  auto it = histograms.find("checkpoint.duration_us");
  ASSERT_NE(it, histograms.end());
  EXPECT_GT(it->second->count(), 0);
  EXPECT_GE(it->second->Percentile(99), it->second->Percentile(50));
}

}  // namespace
}  // namespace ppa
