// Tests for the Chrome/Perfetto trace exporter (src/obs/chrome_trace.*)
// and the span profiler it renders: an exact golden-JSON test of the
// Trace Event Format mapping, span nesting self/total accounting, and an
// end-to-end correlated-failure run checked against the observability
// acceptance criteria (tentative window in the trace, per-sink stable vs
// tentative latency histograms, and a fidelity timeseries with at least
// one sample per tentative sink batch).

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backend/sim_backend.h"
#include "engine/operators.h"
#include "obs/chrome_trace.h"
#include "obs/export.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "report/experiment_report.h"
#include "runtime/streaming_job.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace {

using obs::SpanCategory;
using obs::TraceEventKind;

TEST(ChromeTraceTest, EmptyTraceIsValidAndStable) {
  EXPECT_EQ(obs::EmptyChromeTrace().Serialize(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

// Pins the exact Trace Event Format serialization: metadata first, then
// spans (ph "X"), then closed tentative windows, then instants (ph "i"),
// all with microsecond timestamps and the pid/tid track layout
// (0 = job, 1 = cluster, 2 = tasks).
TEST(ChromeTraceTest, GoldenJson) {
  const TimePoint t0 = TimePoint::Zero();
  obs::TraceLog trace;
  trace.Record(t0 + Duration::Seconds(1), TraceEventKind::kNodeFailure,
               /*task=*/-1, /*node=*/3, /*a=*/2);
  trace.Record(t0 + Duration::Seconds(2),
               TraceEventKind::kTentativeWindowBegin, -1, -1, /*a=*/5);
  trace.Record(t0 + Duration::Seconds(4),
               TraceEventKind::kTentativeWindowEnd, -1, -1, /*a=*/7);

  obs::SpanProfiler spans;
  spans.Begin(t0, SpanCategory::kSimRun);
  spans.Record(SpanCategory::kCheckpoint, /*task=*/2,
               t0 + Duration::Micros(1500000),
               t0 + Duration::Micros(1600000));
  spans.End(t0 + Duration::Seconds(5));

  const std::string json =
      obs::ChromeTraceToJson(trace, &spans, [](int64_t task) {
        return "task-" + std::to_string(task);
      }).Serialize();

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"job\"}},"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"cluster\"}},"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
      "\"args\":{\"name\":\"tasks\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"control\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":3,"
      "\"args\":{\"name\":\"node 3\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":2,"
      "\"args\":{\"name\":\"task-2\"}},"
      "{\"name\":\"sim-run\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":5000000,\"pid\":0,\"tid\":0,"
      "\"args\":{\"self_us\":4900000,\"depth\":0}},"
      "{\"name\":\"checkpoint\",\"cat\":\"span\",\"ph\":\"X\","
      "\"ts\":1500000,\"dur\":100000,\"pid\":2,\"tid\":2,"
      "\"args\":{\"self_us\":100000,\"depth\":1}},"
      "{\"name\":\"tentative-window\",\"cat\":\"window\",\"ph\":\"X\","
      "\"ts\":2000000,\"dur\":2000000,\"pid\":0,\"tid\":0,"
      "\"args\":{\"first_batch\":5,\"last_batch\":7}},"
      "{\"name\":\"node-failure\",\"cat\":\"trace\",\"ph\":\"i\","
      "\"ts\":1000000,\"pid\":1,\"tid\":3,\"s\":\"t\","
      "\"args\":{\"seq\":0,\"node\":3,\"a\":2,\"b\":0}},"
      "{\"name\":\"tentative-window-begin\",\"cat\":\"trace\","
      "\"ph\":\"i\",\"ts\":2000000,\"pid\":0,\"tid\":0,\"s\":\"t\","
      "\"args\":{\"seq\":1,\"a\":5,\"b\":0}},"
      "{\"name\":\"tentative-window-end\",\"cat\":\"trace\",\"ph\":\"i\","
      "\"ts\":4000000,\"pid\":0,\"tid\":0,\"s\":\"t\","
      "\"args\":{\"seq\":2,\"a\":7,\"b\":0}}"
      "]}";
  EXPECT_EQ(json, expected);
}

TEST(SpanProfilerTest, NestedSelfTimesSumToRootTotal) {
  const TimePoint t0 = TimePoint::Zero();
  auto at = [&](int64_t us) { return t0 + Duration::Micros(us); };
  obs::SpanProfiler p;
  p.Begin(at(0), SpanCategory::kSimRun);
  p.Begin(at(1000000), SpanCategory::kBatchProcess, /*task=*/1);
  p.Record(SpanCategory::kCheckpoint, /*task=*/1, at(1200000), at(1500000));
  p.End(at(2000000));
  p.Record(SpanCategory::kRecovery, /*task=*/2, at(2000000), at(2250000));
  p.End(at(3000000));

  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.open_depth(), 0u);
  EXPECT_EQ(p.spans()[1].depth, 1);
  EXPECT_EQ(p.spans()[2].depth, 2);
  EXPECT_EQ(p.spans()[2].parent, 1);
  EXPECT_EQ(p.spans()[3].parent, 0);

  const std::vector<obs::SpanStats> stats = p.AggregateByCategory();
  ASSERT_EQ(stats.size(), obs::kNumSpanCategories);
  const auto& sim = stats[static_cast<size_t>(SpanCategory::kSimRun)];
  const auto& batch =
      stats[static_cast<size_t>(SpanCategory::kBatchProcess)];
  const auto& cp = stats[static_cast<size_t>(SpanCategory::kCheckpoint)];
  const auto& rec = stats[static_cast<size_t>(SpanCategory::kRecovery)];
  EXPECT_EQ(sim.total, Duration::Micros(3000000));
  EXPECT_EQ(sim.self, Duration::Micros(1750000));
  EXPECT_EQ(batch.total, Duration::Micros(1000000));
  EXPECT_EQ(batch.self, Duration::Micros(700000));
  EXPECT_EQ(cp.self, Duration::Micros(300000));
  EXPECT_EQ(rec.self, Duration::Micros(250000));

  // The root's total accounts for every microsecond exactly once: it
  // equals the sum of self time over all categories.
  Duration self_sum = Duration::Zero();
  for (const obs::SpanStats& s : stats) {
    self_sum += s.self;
  }
  EXPECT_EQ(self_sum, sim.total);
}

TEST(SpanProfilerTest, DisabledProfilerRecordsNothing) {
  obs::SpanProfiler p;
  p.set_enabled(false);
  p.Begin(TimePoint::Zero(), SpanCategory::kSimRun);
  p.Record(SpanCategory::kCheckpoint, 1, TimePoint::Zero(),
           TimePoint::Zero() + Duration::Seconds(1));
  p.End(TimePoint::Zero() + Duration::Seconds(2));
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.open_depth(), 0u);
}

/// src(2) -> mid(2) -> sink(1) job mirroring the obs_test harness: PPA
/// mode, one replica on mid[1], and a node failure that kills the
/// passive-only mid[0] so the sink degrades to tentative output.
struct JobHarness {
  JobHarness() {
    TopologyBuilder b;
    OperatorId src = b.AddOperator("src", 2);
    OperatorId mid =
        b.AddOperator("mid", 2, InputCorrelation::kIndependent, 0.5);
    OperatorId sink =
        b.AddOperator("sink", 1, InputCorrelation::kIndependent, 0.5);
    b.Connect(src, mid, PartitionScheme::kOneToOne);
    b.Connect(mid, sink, PartitionScheme::kMerge);
    b.SetSourceRate(src, 40.0);
    auto topo = b.Build();
    PPA_CHECK(topo.ok());

    JobConfig cfg;
    cfg.ft_mode = FtMode::kPpa;
    cfg.batch_interval = Duration::Seconds(1);
    cfg.detection_interval = Duration::Seconds(2);
    cfg.checkpoint_interval = Duration::Seconds(5);
    cfg.replica_sync_interval = Duration::Seconds(2);
    cfg.num_worker_nodes = 5;
    cfg.num_standby_nodes = 5;
    cfg.window_batches = 5;
    cfg.stagger_checkpoints = false;
    cfg.observability = true;

    job = std::make_unique<StreamingJob>(*std::move(topo), cfg, JobRuntimeDeps(&loop));
    PPA_CHECK_OK(job->BindSource(0, [] {
      return std::make_unique<SyntheticSource>(20, 64, 7);
    }));
    for (OperatorId op : {1, 2}) {
      PPA_CHECK_OK(job->BindOperator(op, [] {
        return std::make_unique<SlidingWindowAggregateOperator>(5, 0.5);
      }));
    }
    TaskSet active(job->topology().num_tasks());
    active.Add(3);
    PPA_CHECK_OK(job->SetActiveReplicaSet(active));
    PPA_CHECK_OK(job->Start());
  }

  void RunFailureScenario() {
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10.5));
    PPA_CHECK_OK(job->InjectNodeFailure(2));
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
  }

  backend::SimBackend loop;
  std::unique_ptr<StreamingJob> job;
};

TEST(ChromeTraceIntegrationTest, FailureRunMeetsAcceptanceCriteria) {
  JobHarness h;
  h.RunFailureScenario();

  // (a) The exported trace is Perfetto-shaped and shows the tentative
  // window as a duration event alongside the profiled spans.
  const std::string json = JobChromeTraceToJson(*h.job).Serialize();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_NE(json.find("\"tentative-window\""), std::string::npos);
  EXPECT_NE(json.find("\"sim-run\""), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint\""), std::string::npos);
  EXPECT_NE(json.find("\"batch-process\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery\""), std::string::npos);

  // The profiled span categories cover the run: simulation root,
  // steady-state batch work, checkpoints, and the injected recovery.
  const auto stats = h.job->spans().AggregateByCategory();
  EXPECT_EQ(stats[static_cast<size_t>(SpanCategory::kSimRun)].count, 2);
  EXPECT_GT(stats[static_cast<size_t>(SpanCategory::kBatchProcess)].count,
            0);
  EXPECT_GT(stats[static_cast<size_t>(SpanCategory::kCheckpoint)].count, 0);
  EXPECT_GT(stats[static_cast<size_t>(SpanCategory::kRecovery)].count, 0);
  EXPECT_EQ(h.job->spans().open_depth(), 0u);

  // (b) Per-sink stable vs tentative end-to-end latency histograms are
  // populated (task 4 is the single sink task).
  const auto& histograms = h.job->metrics().histograms();
  for (const char* name :
       {"sink.latency_stable_s", "sink.latency_tentative_s",
        "sink.t4.latency_stable_s", "sink.t4.latency_tentative_s"}) {
    auto it = histograms.find(name);
    ASSERT_NE(it, histograms.end()) << name;
    EXPECT_GT(it->second->count(), 0) << name;
    EXPECT_GE(it->second->min(), 0.0) << name;
  }
  // Lineage depth: every sink batch crossed src -> mid -> sink.
  auto hops = histograms.find("sink.lineage_hops");
  ASSERT_NE(hops, histograms.end());
  EXPECT_GT(hops->second->count(), 0);
  EXPECT_DOUBLE_EQ(hops->second->max(), 3.0);
  EXPECT_GE(hops->second->min(), 1.0);
  for (const SinkRecord& r : h.job->sink_records()) {
    EXPECT_GE(r.Latency().micros(), 0);
  }

  // (c) The fidelity timeseries has at least one sample per tentative
  // sink batch, dips below OF = 1 while degraded, and closes at OF = 1.
  const obs::FidelityTimeseries& fidelity = h.job->fidelity_timeseries();
  const int64_t tentative_batches =
      h.job->trace().CountOf(TraceEventKind::kSinkBatchTentative);
  ASSERT_GT(tentative_batches, 0);
  int64_t tentative_samples = 0;
  bool degraded_sample = false;
  for (const obs::FidelitySample& s : fidelity.samples()) {
    if (s.tentative) {
      ++tentative_samples;
    }
    if (s.tentative && s.output_fidelity < 1.0) {
      degraded_sample = true;
      EXPECT_GT(s.failed_tasks, 0);
    }
  }
  EXPECT_GE(tentative_samples, tentative_batches);
  EXPECT_TRUE(degraded_sample);
  EXPECT_LT(fidelity.MinOutputFidelity(), 1.0);
  ASSERT_FALSE(fidelity.samples().empty());
  const obs::FidelitySample& last = fidelity.samples().back();
  EXPECT_FALSE(last.tentative);
  EXPECT_DOUBLE_EQ(last.output_fidelity, 1.0);
  EXPECT_EQ(last.failed_tasks, 0);

  // The run profile carries the new sections for report consumers.
  const std::string profile = JobProfileToJson(*h.job).Serialize();
  EXPECT_NE(profile.find("\"span_aggregate\""), std::string::npos);
  EXPECT_NE(profile.find("\"spans\""), std::string::npos);
  EXPECT_NE(profile.find("\"fidelity_timeseries\""), std::string::npos);
  EXPECT_NE(profile.find("\"sink.latency_tentative_s\""),
            std::string::npos);
}

}  // namespace
}  // namespace ppa
