#include <cstdio>
#include <fstream>
#include <memory>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "backend/sim_backend.h"
#include "engine/operators.h"
#include "planner/greedy_planner.h"
#include "report/experiment_report.h"
#include "report/json.h"
#include "tests/test_topologies.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace {

using ::ppa::testing::MakeFig2;
using ::testing::HasSubstr;

TEST(JsonTest, ScalarsSerialize) {
  EXPECT_EQ(JsonValue().Serialize(), "null");
  EXPECT_EQ(JsonValue(true).Serialize(), "true");
  EXPECT_EQ(JsonValue(false).Serialize(), "false");
  EXPECT_EQ(JsonValue(42).Serialize(), "42");
  EXPECT_EQ(JsonValue(int64_t{-7}).Serialize(), "-7");
  EXPECT_EQ(JsonValue("hi").Serialize(), "\"hi\"");
  EXPECT_EQ(JsonValue(0.5).Serialize(), "0.5");
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).Serialize(),
            "null");
  EXPECT_EQ(JsonValue(std::nan("")).Serialize(), "null");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd\te").Serialize(),
            "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(JsonValue(std::string("\x01")).Serialize(), "\"\\u0001\"");
}

TEST(JsonTest, ObjectsPreserveOrderAndOverwrite) {
  JsonValue obj = JsonValue::Object();
  obj.Set("b", 1).Set("a", 2).Set("b", 3);
  EXPECT_EQ(obj.Serialize(), "{\"b\":3,\"a\":2}");
  EXPECT_EQ(obj.size(), 2u);
}

TEST(JsonTest, NestingAndPretty) {
  JsonValue root = JsonValue::Object();
  JsonValue arr = JsonValue::Array();
  arr.Append(1).Append("two").Append(JsonValue::Object().Set("k", false));
  root.Set("items", std::move(arr));
  EXPECT_EQ(root.Serialize(), "{\"items\":[1,\"two\",{\"k\":false}]}");
  const std::string pretty = root.Pretty();
  EXPECT_THAT(pretty, HasSubstr("\"items\": ["));
  EXPECT_THAT(pretty, HasSubstr("\n  "));
  EXPECT_EQ(JsonValue::Object().Serialize(), "{}");
  EXPECT_EQ(JsonValue::Array().Serialize(), "[]");
}

TEST(ReportTest, TopologyAndPlanJson) {
  testing::Fig2Topology f = MakeFig2(InputCorrelation::kCorrelated);
  const std::string topo_json = TopologyToJson(f.topo).Serialize();
  EXPECT_THAT(topo_json, HasSubstr("\"name\":\"O3\""));
  EXPECT_THAT(topo_json, HasSubstr("\"correlation\":\"correlated\""));
  EXPECT_THAT(topo_json, HasSubstr("\"scheme\":\"merge\""));
  EXPECT_THAT(topo_json, HasSubstr("\"num_tasks\":5"));

  GreedyPlanner planner;
  auto plan = planner.Plan({f.topo, 2});
  ASSERT_TRUE(plan.ok());
  const std::string plan_json = PlanToJson(f.topo, *plan).Serialize();
  EXPECT_THAT(plan_json, HasSubstr("\"resource_usage\":2"));
  EXPECT_THAT(plan_json, HasSubstr("O3[0]"));
}

TEST(ReportTest, JobSummaryCoversRecoveries) {
  auto workload = MakeSyntheticRecoveryWorkload(100, 5);
  ASSERT_TRUE(workload.ok());
  backend::SimBackend loop;
  JobConfig cfg;
  cfg.ft_mode = FtMode::kCheckpoint;
  cfg.detection_interval = Duration::Seconds(2);
  cfg.checkpoint_interval = Duration::Seconds(5);
  cfg.num_worker_nodes = 19;
  cfg.num_standby_nodes = 15;
  StreamingJob job(workload->topo, cfg, JobRuntimeDeps(&loop));
  PPA_CHECK_OK(BindSyntheticRecoveryWorkload(*workload, &job));
  auto nodes = PlaceSyntheticRecoveryWorkload(*workload, &job);
  PPA_CHECK_OK(nodes.status());
  PPA_CHECK_OK(job.Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10.5));
  PPA_CHECK_OK(job.InjectNodeFailure((*nodes)[0]));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40));

  JsonValue summary = JobSummaryToJson(job);
  const std::string json = summary.Serialize();
  EXPECT_THAT(json, HasSubstr("\"ft_mode\":\"checkpoint\""));
  EXPECT_THAT(json, HasSubstr("\"recoveries\":[{"));
  EXPECT_THAT(json, HasSubstr("\"kind\":\"checkpoint\""));
  EXPECT_THAT(json, HasSubstr("\"processed_tuples\""));
  EXPECT_THAT(json, HasSubstr("\"checkpoints\""));
}

TEST(ReportTest, WriteJsonFileRoundTrip) {
  JsonValue root = JsonValue::Object();
  root.Set("answer", 42);
  const std::string path = ::testing::TempDir() + "/ppa_report_test.json";
  ASSERT_TRUE(WriteJsonFile(path, root).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_THAT(contents, HasSubstr("\"answer\": 42"));
  std::remove(path.c_str());
  EXPECT_FALSE(WriteJsonFile("/nonexistent-dir/x.json", root).ok());
}

}  // namespace
}  // namespace ppa
