#include <memory>

#include <gtest/gtest.h>

#include "backend/sim_backend.h"
#include "engine/operators.h"
#include "engine/task_runtime.h"
#include "ft/checkpoint.h"
#include "runtime/streaming_job.h"
#include "tests/test_topologies.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace {

using ::ppa::testing::MakeChain;

std::vector<Tuple> Batch(int64_t batch, int count) {
  std::vector<Tuple> out;
  for (int i = 0; i < count; ++i) {
    Tuple t;
    t.key = "k" + std::to_string(i);
    t.value = batch * 10 + i;
    t.batch = batch;
    t.seq = (static_cast<uint64_t>(batch) << 24) + static_cast<uint64_t>(i);
    t.producer = 0;
    out.push_back(std::move(t));
  }
  return out;
}

TEST(DeltaSnapshotTest, OperatorBasePlusDeltasEqualsFull) {
  SlidingWindowAggregateOperator primary(4, 1.0);
  SlidingWindowAggregateOperator restored(4, 1.0);

  // Base snapshot after 3 batches.
  for (int64_t b = 0; b < 3; ++b) {
    BatchContext ctx(b, 0, 1);
    primary.ProcessBatch(&ctx, Batch(b, 3));
  }
  auto base = primary.SnapshotState();
  ASSERT_TRUE(base.ok());
  // Two deltas: batches 3-4 and 5-7 (window slides; early slices evict).
  std::vector<std::string> deltas;
  for (const auto& range : {std::pair<int64_t, int64_t>{3, 5},
                            std::pair<int64_t, int64_t>{5, 8}}) {
    for (int64_t b = range.first; b < range.second; ++b) {
      BatchContext ctx(b, 0, 1);
      primary.ProcessBatch(&ctx, Batch(b, 3));
    }
    int64_t delta_tuples = 0;
    auto delta = primary.SnapshotDelta(&delta_tuples);
    ASSERT_TRUE(delta.ok());
    EXPECT_GT(delta_tuples, 0);
    // Deltas only carry the fresh slices, fewer tuples than a full
    // snapshot of the current window.
    EXPECT_LT(delta_tuples, primary.StateSizeTuples());
    deltas.push_back(*std::move(delta));
  }

  ASSERT_TRUE(restored.RestoreState(*base).ok());
  for (const std::string& delta : deltas) {
    ASSERT_TRUE(restored.ApplyDelta(delta).ok());
  }
  EXPECT_EQ(restored.StateSizeTuples(), primary.StateSizeTuples());
  // Identical continued behaviour.
  BatchContext ca(8, 0, 1), cb(8, 0, 1);
  primary.ProcessBatch(&ca, Batch(8, 2));
  restored.ProcessBatch(&cb, Batch(8, 2));
  ASSERT_EQ(ca.emitted().size(), cb.emitted().size());
  for (size_t i = 0; i < ca.emitted().size(); ++i) {
    EXPECT_EQ(ca.emitted()[i].value, cb.emitted()[i].value);
  }
}

TEST(DeltaSnapshotTest, OutOfOrderDeltaRejected) {
  SlidingWindowAggregateOperator a(4, 1.0), b(4, 1.0);
  BatchContext c0(0, 0, 1);
  a.ProcessBatch(&c0, Batch(0, 2));
  auto base = a.SnapshotState();
  ASSERT_TRUE(base.ok());
  BatchContext c1(1, 0, 1);
  a.ProcessBatch(&c1, Batch(1, 2));
  int64_t n = 0;
  auto delta = a.SnapshotDelta(&n);
  ASSERT_TRUE(delta.ok());
  ASSERT_TRUE(b.RestoreState(*base).ok());
  ASSERT_TRUE(b.ApplyDelta(*delta).ok());
  // Applying the same delta twice is out of order.
  EXPECT_EQ(b.ApplyDelta(*delta).code(), StatusCode::kInvalidArgument);
}

TEST(DeltaSnapshotTest, UnsupportedOperatorsSayNo) {
  PassThroughOperator op;
  EXPECT_FALSE(op.SupportsDeltaSnapshots());
  int64_t n = 0;
  EXPECT_EQ(op.SnapshotDelta(&n).status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(op.ApplyDelta("").code(), StatusCode::kUnimplemented);
}

TEST(DeltaSnapshotTest, TaskRuntimeChainRoundTrip) {
  Topology topo = MakeChain(1, 1, 1, PartitionScheme::kOneToOne,
                            PartitionScheme::kOneToOne);
  const TaskId mid = topo.op(1).tasks[0];
  TaskRuntime a(&topo, mid,
                std::make_unique<SlidingWindowAggregateOperator>(4, 1.0),
                nullptr);
  TaskRuntime b(&topo, mid,
                std::make_unique<SlidingWindowAggregateOperator>(4, 1.0),
                nullptr);
  EXPECT_TRUE(a.SupportsDeltaSnapshots());

  for (int64_t batch = 0; batch < 3; ++batch) {
    a.RunBatch(batch, Batch(batch, 3));
  }
  auto base = a.Snapshot();
  ASSERT_TRUE(base.ok());
  std::vector<std::string> deltas;
  for (int64_t batch = 3; batch < 7; ++batch) {
    a.RunBatch(batch, Batch(batch, 3));
    if (batch % 2 == 0) {
      auto d = a.SnapshotDelta();
      ASSERT_TRUE(d.ok());
      EXPECT_GT(d->state_tuples, 0);
      deltas.push_back(std::move(d->blob));
    }
  }
  // One more unsnapshotted batch: the chain covers up to batch 6.
  ASSERT_TRUE(b.Restore(*base).ok());
  for (const std::string& d : deltas) {
    ASSERT_TRUE(b.ApplyDelta(d).ok());
  }
  EXPECT_EQ(b.next_batch(), 7);
  EXPECT_EQ(b.StateSizeTuples(), a.StateSizeTuples());
  EXPECT_EQ(b.progress_vector(), a.progress_vector());
  EXPECT_EQ(b.BufferedTuples(), a.BufferedTuples());
  // Identical continued behaviour.
  const BatchOutput& oa = a.RunBatch(7, Batch(7, 2));
  const BatchOutput& ob = b.RunBatch(7, Batch(7, 2));
  ASSERT_EQ(oa.tuples.size(), ob.tuples.size());
  for (size_t i = 0; i < oa.tuples.size(); ++i) {
    EXPECT_EQ(oa.tuples[i], ob.tuples[i]);
  }
}

TEST(CheckpointChainTest, StoreSemantics) {
  CheckpointStore store;
  EXPECT_EQ(store.PutDelta(TaskCheckpoint{0, 5, "d", 10, TimePoint::Zero()})
                .code(),
            StatusCode::kFailedPrecondition);
  store.Put(TaskCheckpoint{0, 5, "base", 100, TimePoint::Zero()});
  ASSERT_TRUE(
      store.PutDelta(TaskCheckpoint{0, 8, "d1", 10, TimePoint::Zero()}).ok());
  ASSERT_TRUE(
      store.PutDelta(TaskCheckpoint{0, 11, "d2", 12, TimePoint::Zero()}).ok());
  EXPECT_EQ(store.ChainDeltas(0), 2);
  EXPECT_EQ(store.ChainStateTuples(0), 122);
  EXPECT_EQ(store.CoveredBatch(0), 11);
  EXPECT_TRUE(store.Latest(0)->is_delta);
  ASSERT_NE(store.Chain(0), nullptr);
  EXPECT_EQ(store.Chain(0)->size(), 3u);
  EXPECT_FALSE((*store.Chain(0))[0].is_delta);
  // Regressing delta rejected.
  EXPECT_EQ(store.PutDelta(TaskCheckpoint{0, 7, "bad", 1, TimePoint::Zero()})
                .code(),
            StatusCode::kInvalidArgument);
  // A new full checkpoint resets the chain.
  store.Put(TaskCheckpoint{0, 20, "base2", 90, TimePoint::Zero()});
  EXPECT_EQ(store.ChainDeltas(0), 0);
  EXPECT_EQ(store.CoveredBatch(0), 20);
}

class DeltaJobTest : public ::testing::Test {
 protected:
  static JobConfig Config(bool delta) {
    JobConfig cfg;
    cfg.ft_mode = FtMode::kCheckpoint;
    cfg.batch_interval = Duration::Seconds(1);
    cfg.detection_interval = Duration::Seconds(2);
    cfg.checkpoint_interval = Duration::Seconds(3);
    cfg.num_worker_nodes = 5;
    cfg.num_standby_nodes = 3;
    cfg.stagger_checkpoints = false;
    cfg.delta_checkpoints = delta;
    cfg.max_delta_chain = 4;
    return cfg;
  }

  static std::unique_ptr<StreamingJob> MakeJob(backend::ExecutionBackend* loop, bool delta) {
    TopologyBuilder b;
    OperatorId src = b.AddOperator("src", 2);
    OperatorId mid = b.AddOperator("mid", 2, InputCorrelation::kIndependent,
                                   0.5);
    OperatorId sink = b.AddOperator("sink", 1,
                                    InputCorrelation::kIndependent, 0.5);
    b.Connect(src, mid, PartitionScheme::kOneToOne);
    b.Connect(mid, sink, PartitionScheme::kMerge);
    b.SetSourceRate(src, 40.0);
    auto topo = b.Build();
    PPA_CHECK(topo.ok());
    auto job = std::make_unique<StreamingJob>(*std::move(topo),
                                              Config(delta), JobRuntimeDeps(loop));
    PPA_CHECK_OK(job->BindSource(0, [] {
      return std::make_unique<SyntheticSource>(20, 64, 7);
    }));
    for (OperatorId op : {1, 2}) {
      PPA_CHECK_OK(job->BindOperator(op, [] {
        return std::make_unique<SlidingWindowAggregateOperator>(5, 0.5);
      }));
    }
    return job;
  }
};

TEST_F(DeltaJobTest, ChainsFormAndRecoveryIsExact) {
  backend::SimBackend clean_loop;
  auto clean = MakeJob(&clean_loop, /*delta=*/false);
  PPA_CHECK_OK(clean->Start());
  clean_loop.RunUntil(TimePoint::Zero() + Duration::Seconds(45));

  backend::SimBackend loop;
  auto job = MakeJob(&loop, /*delta=*/true);
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(14.5));
  // Several delta checkpoints have stacked by now.
  EXPECT_GT(job->checkpoint_store().ChainDeltas(2), 0);
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(2)));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(45));
  EXPECT_TRUE(job->AllRecovered());

  // Recovery through the base+delta chain reproduces the failure-free run
  // exactly.
  ASSERT_EQ(job->sink_records().size(), clean->sink_records().size());
  for (size_t i = 0; i < job->sink_records().size(); ++i) {
    EXPECT_EQ(job->sink_records()[i].tuple, clean->sink_records()[i].tuple);
  }
}

TEST_F(DeltaJobTest, FullBaseTakenAfterChainLimit) {
  backend::SimBackend loop;
  auto job = MakeJob(&loop, /*delta=*/true);
  PPA_CHECK_OK(job->Start());
  // 3 s interval, chain limit 4: by t=40 the chain must have been reset by
  // a periodic full base at least once and never exceed the limit.
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40));
  EXPECT_LE(job->checkpoint_store().ChainDeltas(2), 4);
}

TEST_F(DeltaJobTest, DeltaCheckpointsAreCheaper) {
  auto run = [&](bool delta) {
    backend::SimBackend loop;
    auto job = MakeJob(&loop, delta);
    PPA_CHECK_OK(job->Start());
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
    double cost = 0;
    for (TaskId t : {2, 3, 4}) {
      cost += job->CheckpointCostUs(t);
    }
    return cost;
  };
  const double full = run(false);
  const double delta = run(true);
  EXPECT_GT(full, 0);
  EXPECT_LT(delta, full)
      << "delta checkpoints must serialize less state per interval";
}

}  // namespace
}  // namespace ppa
