#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "backend/sim_backend.h"
#include "engine/operators.h"
#include "engine/task_runtime.h"
#include "af/error_budget.h"
#include "ft/checkpoint.h"
#include "obs/metrics.h"
#include "runtime/streaming_job.h"
#include "tests/test_topologies.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace {

using ::ppa::testing::MakeChain;

std::vector<Tuple> Batch(int64_t batch, int count) {
  std::vector<Tuple> out;
  for (int i = 0; i < count; ++i) {
    Tuple t;
    t.key = "k" + std::to_string(i);
    t.value = batch * 10 + i;
    t.batch = batch;
    t.seq = (static_cast<uint64_t>(batch) << 24) + static_cast<uint64_t>(i);
    t.producer = 0;
    out.push_back(std::move(t));
  }
  return out;
}

TEST(DeltaSnapshotTest, OperatorBasePlusDeltasEqualsFull) {
  SlidingWindowAggregateOperator primary(4, 1.0);
  SlidingWindowAggregateOperator restored(4, 1.0);

  // Base snapshot after 3 batches.
  for (int64_t b = 0; b < 3; ++b) {
    BatchContext ctx(b, 0, 1);
    primary.ProcessBatch(&ctx, Batch(b, 3));
  }
  auto base = primary.SnapshotState();
  ASSERT_TRUE(base.ok());
  // Two deltas: batches 3-4 and 5-7 (window slides; early slices evict).
  std::vector<std::string> deltas;
  for (const auto& range : {std::pair<int64_t, int64_t>{3, 5},
                            std::pair<int64_t, int64_t>{5, 8}}) {
    for (int64_t b = range.first; b < range.second; ++b) {
      BatchContext ctx(b, 0, 1);
      primary.ProcessBatch(&ctx, Batch(b, 3));
    }
    int64_t delta_tuples = 0;
    auto delta = primary.SnapshotDelta(&delta_tuples);
    ASSERT_TRUE(delta.ok());
    EXPECT_GT(delta_tuples, 0);
    // Deltas only carry the fresh slices, fewer tuples than a full
    // snapshot of the current window.
    EXPECT_LT(delta_tuples, primary.StateSizeTuples());
    deltas.push_back(*std::move(delta));
  }

  ASSERT_TRUE(restored.RestoreState(*base).ok());
  for (const std::string& delta : deltas) {
    ASSERT_TRUE(restored.ApplyDelta(delta).ok());
  }
  EXPECT_EQ(restored.StateSizeTuples(), primary.StateSizeTuples());
  // Identical continued behaviour.
  BatchContext ca(8, 0, 1), cb(8, 0, 1);
  primary.ProcessBatch(&ca, Batch(8, 2));
  restored.ProcessBatch(&cb, Batch(8, 2));
  ASSERT_EQ(ca.emitted().size(), cb.emitted().size());
  for (size_t i = 0; i < ca.emitted().size(); ++i) {
    EXPECT_EQ(ca.emitted()[i].value, cb.emitted()[i].value);
  }
}

TEST(DeltaSnapshotTest, OutOfOrderDeltaRejected) {
  SlidingWindowAggregateOperator a(4, 1.0), b(4, 1.0);
  BatchContext c0(0, 0, 1);
  a.ProcessBatch(&c0, Batch(0, 2));
  auto base = a.SnapshotState();
  ASSERT_TRUE(base.ok());
  BatchContext c1(1, 0, 1);
  a.ProcessBatch(&c1, Batch(1, 2));
  int64_t n = 0;
  auto delta = a.SnapshotDelta(&n);
  ASSERT_TRUE(delta.ok());
  ASSERT_TRUE(b.RestoreState(*base).ok());
  ASSERT_TRUE(b.ApplyDelta(*delta).ok());
  // Applying the same delta twice is out of order.
  EXPECT_EQ(b.ApplyDelta(*delta).code(), StatusCode::kInvalidArgument);
}

TEST(DeltaSnapshotTest, UnsupportedOperatorsSayNo) {
  PassThroughOperator op;
  EXPECT_FALSE(op.SupportsDeltaSnapshots());
  int64_t n = 0;
  EXPECT_EQ(op.SnapshotDelta(&n).status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(op.ApplyDelta("").code(), StatusCode::kUnimplemented);
}

TEST(DeltaSnapshotTest, TaskRuntimeChainRoundTrip) {
  Topology topo = MakeChain(1, 1, 1, PartitionScheme::kOneToOne,
                            PartitionScheme::kOneToOne);
  const TaskId mid = topo.op(1).tasks[0];
  TaskRuntime a(&topo, mid,
                std::make_unique<SlidingWindowAggregateOperator>(4, 1.0),
                nullptr);
  TaskRuntime b(&topo, mid,
                std::make_unique<SlidingWindowAggregateOperator>(4, 1.0),
                nullptr);
  EXPECT_TRUE(a.SupportsDeltaSnapshots());

  for (int64_t batch = 0; batch < 3; ++batch) {
    a.RunBatch(batch, Batch(batch, 3));
  }
  auto base = a.Snapshot();
  ASSERT_TRUE(base.ok());
  std::vector<std::string> deltas;
  for (int64_t batch = 3; batch < 7; ++batch) {
    a.RunBatch(batch, Batch(batch, 3));
    if (batch % 2 == 0) {
      auto d = a.SnapshotDelta();
      ASSERT_TRUE(d.ok());
      EXPECT_GT(d->state_tuples, 0);
      deltas.push_back(std::move(d->blob));
    }
  }
  // One more unsnapshotted batch: the chain covers up to batch 6.
  ASSERT_TRUE(b.Restore(*base).ok());
  for (const std::string& d : deltas) {
    ASSERT_TRUE(b.ApplyDelta(d).ok());
  }
  EXPECT_EQ(b.next_batch(), 7);
  EXPECT_EQ(b.StateSizeTuples(), a.StateSizeTuples());
  EXPECT_EQ(b.progress_vector(), a.progress_vector());
  EXPECT_EQ(b.BufferedTuples(), a.BufferedTuples());
  // Identical continued behaviour.
  const BatchOutput& oa = a.RunBatch(7, Batch(7, 2));
  const BatchOutput& ob = b.RunBatch(7, Batch(7, 2));
  ASSERT_EQ(oa.tuples.size(), ob.tuples.size());
  for (size_t i = 0; i < oa.tuples.size(); ++i) {
    EXPECT_EQ(oa.tuples[i], ob.tuples[i]);
  }
}

TEST(DeltaSnapshotTest, DeltaSpansSkippedGap) {
  // A skipped checkpoint leaves the snapshot marker untouched, so the
  // next persisted delta spans the whole gap; restoring through it must
  // reproduce the live window exactly.
  SlidingWindowAggregateOperator a(8, 1.0), b(8, 1.0);
  for (int64_t batch = 0; batch < 3; ++batch) {
    BatchContext ctx(batch, 0, 1);
    a.ProcessBatch(&ctx, Batch(batch, 3));
  }
  auto base = a.SnapshotState();
  ASSERT_TRUE(base.ok());
  // Batches 3-4 pass without any snapshot (the skip), then 5-6 arrive
  // and the next delta must carry all four fresh slices.
  for (int64_t batch = 3; batch < 7; ++batch) {
    BatchContext ctx(batch, 0, 1);
    a.ProcessBatch(&ctx, Batch(batch, 3));
  }
  int64_t fresh = 0;
  auto delta = a.SnapshotDelta(&fresh);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(fresh, 4 * 3);
  ASSERT_TRUE(b.RestoreState(*base).ok());
  ASSERT_TRUE(b.ApplyDelta(*delta).ok());
  EXPECT_EQ(b.StateSizeTuples(), a.StateSizeTuples());
  BatchContext ca(7, 0, 1), cb(7, 0, 1);
  a.ProcessBatch(&ca, Batch(7, 2));
  b.ProcessBatch(&cb, Batch(7, 2));
  ASSERT_EQ(ca.emitted().size(), cb.emitted().size());
  for (size_t i = 0; i < ca.emitted().size(); ++i) {
    EXPECT_EQ(ca.emitted()[i].value, cb.emitted()[i].value);
  }
}

TEST(CheckpointChainTest, SkipFrontierAdvancesTrimBatch) {
  CheckpointStore store;
  // Before any blob exists, the frontier alone defines the trim point:
  // an empty-chain approximate restore starts from scratch and
  // fast-forwards to it.
  EXPECT_EQ(store.Chain(0), nullptr);
  store.NoteSkipped(0, 6);
  EXPECT_EQ(store.CoveredBatch(0), 0);
  EXPECT_EQ(store.SkippedFrontier(0), 6);
  EXPECT_EQ(store.TrimBatch(0), 6);
  // A blob persisted behind the frontier does not regress the trim
  // point...
  store.Put(TaskCheckpoint{0, 4, "base", 10, TimePoint::Zero()});
  EXPECT_EQ(store.CoveredBatch(0), 4);
  EXPECT_EQ(store.TrimBatch(0), 6);
  // ...and one past it takes over.
  ASSERT_TRUE(
      store.PutDelta(TaskCheckpoint{0, 9, "d", 2, TimePoint::Zero()}).ok());
  EXPECT_EQ(store.TrimBatch(0), 9);
  // The frontier is monotone: a stale skip note cannot move it back.
  store.NoteSkipped(0, 3);
  EXPECT_EQ(store.SkippedFrontier(0), 6);
  // Other tasks are unaffected.
  EXPECT_EQ(store.SkippedFrontier(1), 0);
  EXPECT_EQ(store.TrimBatch(1), 0);
}

TEST(CheckpointChainTest, ChainDeltaHistogramExactUnderSkips) {
  // Skipped blobs must be invisible to the chain-shape metrics: the
  // chain-delta-length histogram records exactly the persisted deltas
  // replaced at each rebase, and only the skip counter sees the skips.
  obs::MetricsRegistry registry;
  CheckpointStore store;
  store.AttachMetrics(&registry);
  store.Put(TaskCheckpoint{0, 5, "base", 10, TimePoint::Zero()});
  store.NoteSkipped(0, 8);
  ASSERT_TRUE(
      store.PutDelta(TaskCheckpoint{0, 11, "d1", 3, TimePoint::Zero()}).ok());
  store.NoteSkipped(0, 14);
  ASSERT_TRUE(
      store.PutDelta(TaskCheckpoint{0, 17, "d2", 3, TimePoint::Zero()}).ok());
  EXPECT_EQ(store.ChainDeltas(0), 2);
  // Rebase: the replaced chain held exactly 2 deltas, skips not counted.
  store.Put(TaskCheckpoint{0, 20, "base2", 9, TimePoint::Zero()});
  const obs::Histogram* chain_hist =
      registry.histogram("checkpoint.chain_deltas");
  EXPECT_EQ(chain_hist->count(), 1);
  EXPECT_EQ(chain_hist->sum(), 2.0);
  EXPECT_EQ(registry.counter("checkpoint.skipped")->value(), 2);
  EXPECT_EQ(registry.counter("checkpoint.full")->value(), 2);
  EXPECT_EQ(registry.counter("checkpoint.delta")->value(), 2);
}

TEST(CheckpointChainTest, StoreSemantics) {
  CheckpointStore store;
  EXPECT_EQ(store.PutDelta(TaskCheckpoint{0, 5, "d", 10, TimePoint::Zero()})
                .code(),
            StatusCode::kFailedPrecondition);
  store.Put(TaskCheckpoint{0, 5, "base", 100, TimePoint::Zero()});
  ASSERT_TRUE(
      store.PutDelta(TaskCheckpoint{0, 8, "d1", 10, TimePoint::Zero()}).ok());
  ASSERT_TRUE(
      store.PutDelta(TaskCheckpoint{0, 11, "d2", 12, TimePoint::Zero()}).ok());
  EXPECT_EQ(store.ChainDeltas(0), 2);
  EXPECT_EQ(store.ChainStateTuples(0), 122);
  EXPECT_EQ(store.CoveredBatch(0), 11);
  EXPECT_TRUE(store.Latest(0)->is_delta);
  ASSERT_NE(store.Chain(0), nullptr);
  EXPECT_EQ(store.Chain(0)->size(), 3u);
  EXPECT_FALSE((*store.Chain(0))[0].is_delta);
  // Regressing delta rejected.
  EXPECT_EQ(store.PutDelta(TaskCheckpoint{0, 7, "bad", 1, TimePoint::Zero()})
                .code(),
            StatusCode::kInvalidArgument);
  // A new full checkpoint resets the chain.
  store.Put(TaskCheckpoint{0, 20, "base2", 90, TimePoint::Zero()});
  EXPECT_EQ(store.ChainDeltas(0), 0);
  EXPECT_EQ(store.CoveredBatch(0), 20);
}

class DeltaJobTest : public ::testing::Test {
 protected:
  static JobConfig Config(bool delta) {
    JobConfig cfg;
    cfg.ft_mode = FtMode::kCheckpoint;
    cfg.batch_interval = Duration::Seconds(1);
    cfg.detection_interval = Duration::Seconds(2);
    cfg.checkpoint_interval = Duration::Seconds(3);
    cfg.num_worker_nodes = 5;
    cfg.num_standby_nodes = 3;
    cfg.stagger_checkpoints = false;
    cfg.delta_checkpoints = delta;
    cfg.max_delta_chain = 4;
    return cfg;
  }

  static std::unique_ptr<StreamingJob> MakeJob(backend::ExecutionBackend* loop,
                                               bool delta) {
    return MakeJobWithConfig(loop, Config(delta));
  }

  static std::unique_ptr<StreamingJob> MakeJobWithConfig(
      backend::ExecutionBackend* loop, const JobConfig& config) {
    TopologyBuilder b;
    OperatorId src = b.AddOperator("src", 2);
    OperatorId mid = b.AddOperator("mid", 2, InputCorrelation::kIndependent,
                                   0.5);
    OperatorId sink = b.AddOperator("sink", 1,
                                    InputCorrelation::kIndependent, 0.5);
    b.Connect(src, mid, PartitionScheme::kOneToOne);
    b.Connect(mid, sink, PartitionScheme::kMerge);
    b.SetSourceRate(src, 40.0);
    auto topo = b.Build();
    PPA_CHECK(topo.ok());
    auto job = std::make_unique<StreamingJob>(*std::move(topo), config,
                                              JobRuntimeDeps(loop));
    PPA_CHECK_OK(job->BindSource(0, [] {
      return std::make_unique<SyntheticSource>(20, 64, 7);
    }));
    for (OperatorId op : {1, 2}) {
      PPA_CHECK_OK(job->BindOperator(op, [] {
        return std::make_unique<SlidingWindowAggregateOperator>(5, 0.5);
      }));
    }
    return job;
  }
};

TEST_F(DeltaJobTest, ChainsFormAndRecoveryIsExact) {
  backend::SimBackend clean_loop;
  auto clean = MakeJob(&clean_loop, /*delta=*/false);
  PPA_CHECK_OK(clean->Start());
  clean_loop.RunUntil(TimePoint::Zero() + Duration::Seconds(45));

  backend::SimBackend loop;
  auto job = MakeJob(&loop, /*delta=*/true);
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(14.5));
  // Several delta checkpoints have stacked by now.
  EXPECT_GT(job->checkpoint_store().ChainDeltas(2), 0);
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(2)));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(45));
  EXPECT_TRUE(job->AllRecovered());

  // Recovery through the base+delta chain reproduces the failure-free run
  // exactly.
  ASSERT_EQ(job->sink_records().size(), clean->sink_records().size());
  for (size_t i = 0; i < job->sink_records().size(); ++i) {
    EXPECT_EQ(job->sink_records()[i].tuple, clean->sink_records()[i].tuple);
  }
}

TEST_F(DeltaJobTest, FullBaseTakenAfterChainLimit) {
  backend::SimBackend loop;
  auto job = MakeJob(&loop, /*delta=*/true);
  PPA_CHECK_OK(job->Start());
  // 3 s interval, chain limit 4: by t=40 the chain must have been reset by
  // a periodic full base at least once and never exceed the limit.
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40));
  EXPECT_LE(job->checkpoint_store().ChainDeltas(2), 4);
}

TEST_F(DeltaJobTest, PromotedReplicaRebasesChain) {
  // Regression: a promoted replica's snapshot marker dates from its
  // activation, so taking a delta on top of the dead primary's chain
  // could duplicate already-persisted window slices and corrupt the
  // chain for the next restore. The job must rebase with a full
  // snapshot at the promoted task's next checkpoint instead.
  backend::SimBackend loop;
  JobConfig cfg = Config(/*delta=*/true);
  cfg.ft_mode = FtMode::kPpa;
  auto job = MakeJobWithConfig(&loop, cfg);
  TaskSet replicated(5);
  replicated.Add(2);
  PPA_CHECK_OK(job->SetActiveReplicaSet(replicated));
  PPA_CHECK_OK(job->Start());
  // Let delta checkpoints stack, then kill the primary: the replica
  // takes over and keeps checkpointing onto the existing chain.
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(14.5));
  EXPECT_GT(job->checkpoint_store().ChainDeltas(2), 0);
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(2)));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(25.5));
  EXPECT_TRUE(job->AllRecovered());
  // Now kill the promoted primary: restoring through the post-promotion
  // chain must succeed (pre-fix this aborted with "delta slices out of
  // order") and reproduce the failure-free run exactly.
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(2)));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
  EXPECT_TRUE(job->AllRecovered());

  backend::SimBackend clean_loop;
  auto clean = MakeJobWithConfig(&clean_loop, cfg);
  PPA_CHECK_OK(clean->SetActiveReplicaSet(replicated));
  PPA_CHECK_OK(clean->Start());
  clean_loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
  // The sink ran ahead in tentative mode while task 2 was down (its
  // batches there are degraded by design); reconciliation from the
  // restored state must reproduce the failure-free run exactly, which
  // it can only do if the post-promotion chain restored exact state.
  auto report = job->ReconcileTentativeOutputs();
  ASSERT_TRUE(report.ok()) << report.status();
  auto key_of = [](const Tuple& t) {
    return std::to_string(t.batch) + "|" + t.key + "|" +
           std::to_string(t.value);
  };
  std::multiset<std::string> expected;
  for (const SinkRecord& r : clean->sink_records()) {
    if (r.tuple.batch >= report->from_batch &&
        r.tuple.batch <= report->to_batch) {
      expected.insert(key_of(r.tuple));
    }
  }
  std::multiset<std::string> corrected;
  for (const SinkRecord& r : report->corrected) {
    corrected.insert(key_of(r.tuple));
  }
  EXPECT_EQ(corrected, expected);
  // Away from the reconciled span (and past the sink's window tail,
  // which still carries the degraded slices) the live records agree.
  const int64_t kWindowBatches = 5;  // matches the fixture's mid operators
  const int64_t tail = report->to_batch + kWindowBatches;
  std::multiset<std::string> live_job, live_clean;
  for (const SinkRecord& r : job->sink_records()) {
    if (!r.correction &&
        (r.tuple.batch < report->from_batch || r.tuple.batch > tail)) {
      live_job.insert(key_of(r.tuple));
    }
  }
  for (const SinkRecord& r : clean->sink_records()) {
    if (r.tuple.batch < report->from_batch || r.tuple.batch > tail) {
      live_clean.insert(key_of(r.tuple));
    }
  }
  EXPECT_EQ(live_job, live_clean);
}

TEST_F(DeltaJobTest, ThinnedChainRestoreFastForwards) {
  // Approximate mode with a generous budget: checkpoints get skipped,
  // so the chain covers less than the trim frontier. A failure then
  // restores the thinned chain and fast-forwards over the certified
  // gap instead of replaying it.
  backend::SimBackend loop;
  JobConfig cfg = Config(/*delta=*/true);
  cfg.recovery_mode = af::RecoveryMode::kApprox;
  // ~60 records drift per 3 s checkpoint interval on the mid tasks: the
  // budget of 100 makes persists and skips alternate, so the chain is
  // genuinely thinned (persisted deltas spanning skipped gaps).
  cfg.error_budget.task_divergence_records = 100;
  cfg.error_budget.job_divergence_records = 10'000;
  cfg.error_budget.max_certified_loss = 1.0;
  auto job = MakeJobWithConfig(&loop, cfg);
  PPA_CHECK_OK(job->Start());
  // Fail right after a skipped tick so the frontier runs ahead of the
  // persisted coverage.
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(16.5));
  EXPECT_GT(job->CheckpointsSkipped(), 0);
  ASSERT_NE(job->checkpoint_store().Chain(2), nullptr);
  EXPECT_GT(job->checkpoint_store().TrimBatch(2),
            job->checkpoint_store().CoveredBatch(2));
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(2)));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(45));
  EXPECT_TRUE(job->AllRecovered());
  ASSERT_FALSE(job->approx_certificates().empty());
  const af::ApproxCertificate& cert = job->approx_certificates().front();
  EXPECT_EQ(cert.task, 2);
  EXPECT_GT(cert.resumed_batch, cert.restored_batch);
  EXPECT_GT(cert.forfeited.records, 0);
  EXPECT_GE(cert.certified_loss, 0.0);
  EXPECT_LE(cert.certified_loss, cfg.error_budget.max_certified_loss);
  // The sink keeps producing after the approximate resume.
  EXPECT_GT(job->sink_records().size(), 0u);
}

TEST_F(DeltaJobTest, EmptyChainApproxRestoreStartsFresh) {
  // With an effectively unlimited budget every checkpoint is skipped:
  // the failed task has no chain at all and must restore from scratch,
  // fast-forwarding to the skip frontier.
  backend::SimBackend loop;
  JobConfig cfg = Config(/*delta=*/true);
  cfg.recovery_mode = af::RecoveryMode::kApprox;
  cfg.error_budget.task_divergence_records = 100'000'000;
  cfg.error_budget.job_divergence_records = 1'000'000'000;
  cfg.error_budget.max_certified_loss = 1.0;
  auto job = MakeJobWithConfig(&loop, cfg);
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(20.5));
  EXPECT_GT(job->CheckpointsSkipped(), 0);
  EXPECT_EQ(job->checkpoint_store().Chain(2), nullptr);
  EXPECT_EQ(job->CheckpointBytesWritten(), 0);
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(2)));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(45));
  EXPECT_TRUE(job->AllRecovered());
  ASSERT_FALSE(job->approx_certificates().empty());
  const af::ApproxCertificate& cert = job->approx_certificates().front();
  // Reset(0) leaves the runtime at batch 0; everything up to the skip
  // frontier is forfeited.
  EXPECT_EQ(cert.restored_batch, 0);
  EXPECT_GT(cert.resumed_batch, 0);
  EXPECT_GT(cert.forfeited.records, 0);
}

TEST_F(DeltaJobTest, DeltaCheckpointsAreCheaper) {
  auto run = [&](bool delta) {
    backend::SimBackend loop;
    auto job = MakeJob(&loop, delta);
    PPA_CHECK_OK(job->Start());
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
    double cost = 0;
    for (TaskId t : {2, 3, 4}) {
      cost += job->CheckpointCostUs(t);
    }
    return cost;
  };
  const double full = run(false);
  const double delta = run(true);
  EXPECT_GT(full, 0);
  EXPECT_LT(delta, full)
      << "delta checkpoints must serialize less state per interval";
}

}  // namespace
}  // namespace ppa
