#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "engine/operator.h"
#include "engine/operators.h"
#include "engine/router.h"
#include "engine/serde.h"
#include "engine/task_runtime.h"
#include "tests/test_topologies.h"
#include "topology/topology.h"

namespace ppa {
namespace {

using ::ppa::testing::MakeChain;

std::vector<Tuple> MakeTuples(std::initializer_list<std::pair<const char*, int64_t>> kvs,
                              TaskId producer = 0, int64_t batch = 0) {
  std::vector<Tuple> out;
  uint64_t i = 0;
  for (const auto& [k, v] : kvs) {
    Tuple t;
    t.key = k;
    t.value = v;
    t.producer = producer;
    t.batch = batch;
    t.seq = (static_cast<uint64_t>(batch) << 24) + i++;
    out.push_back(std::move(t));
  }
  return out;
}

TEST(SerdeTest, RoundTrip) {
  BinaryWriter w;
  w.PutU64(42);
  w.PutI64(-7);
  w.PutDouble(3.25);
  w.PutString("hello");
  w.PutString("");
  BinaryReader r(w.data());
  EXPECT_EQ(*r.GetU64(), 42u);
  EXPECT_EQ(*r.GetI64(), -7);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.25);
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdeTest, TruncationDetected) {
  BinaryWriter w;
  w.PutU64(1);
  std::string data = w.data();
  data.pop_back();
  BinaryReader r(data);
  EXPECT_EQ(r.GetU64().status().code(), StatusCode::kOutOfRange);
}

TEST(SerdeTest, TruncatedStringDetected) {
  BinaryWriter w;
  w.PutString("hello world");
  std::string data = w.data();
  data.resize(data.size() - 3);
  BinaryReader r(data);
  EXPECT_EQ(r.GetString().status().code(), StatusCode::kOutOfRange);
}

TEST(OperatorsTest, PassThroughForwardsEverything) {
  PassThroughOperator op;
  BatchContext ctx(0, 0, 1);
  op.ProcessBatch(&ctx, MakeTuples({{"a", 1}, {"b", 2}}));
  ASSERT_EQ(ctx.emitted().size(), 2u);
  EXPECT_EQ(ctx.emitted()[0].key, "a");
  EXPECT_EQ(ctx.emitted()[1].value, 2);
  EXPECT_EQ(op.StateSizeTuples(), 0);
}

TEST(OperatorsTest, SelectivityIsDeterministicAndProportional) {
  SelectivityOperator op(0.5);
  std::vector<Tuple> inputs;
  for (int i = 0; i < 10000; ++i) {
    Tuple t;
    t.key = "key" + std::to_string(i);
    t.value = i;
    inputs.push_back(std::move(t));
  }
  BatchContext a(0, 0, 1), b(0, 0, 1);
  op.ProcessBatch(&a, inputs);
  op.ProcessBatch(&b, inputs);
  EXPECT_EQ(a.emitted().size(), b.emitted().size());
  EXPECT_NEAR(static_cast<double>(a.emitted().size()), 5000.0, 300.0);
}

TEST(OperatorsTest, SlidingWindowEvictsOldBatches) {
  SlidingWindowAggregateOperator op(/*window_batches=*/3,
                                    /*selectivity=*/1.0);
  for (int64_t b = 0; b < 10; ++b) {
    BatchContext ctx(b, 0, 1);
    op.ProcessBatch(&ctx, MakeTuples({{"k", 1}, {"k", 1}}, 0, b));
    // Steady state: window holds at most 3 batches x 2 tuples.
    EXPECT_LE(op.StateSizeTuples(), 6);
    if (b >= 2) {
      EXPECT_EQ(op.StateSizeTuples(), 6);
    }
  }
}

TEST(OperatorsTest, SlidingWindowSnapshotRestoreIsExact) {
  SlidingWindowAggregateOperator a(5, 0.5), b(5, 0.5);
  for (int64_t batch = 0; batch < 7; ++batch) {
    BatchContext ctx(batch, 0, 1);
    a.ProcessBatch(&ctx, MakeTuples({{"x", batch}, {"y", batch * 2}}, 0, batch));
  }
  auto snapshot = a.SnapshotState();
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(b.RestoreState(*snapshot).ok());
  EXPECT_EQ(a.StateSizeTuples(), b.StateSizeTuples());
  // Identical future behaviour.
  BatchContext ca(7, 0, 1), cb(7, 0, 1);
  auto inputs = MakeTuples({{"z", 9}}, 0, 7);
  a.ProcessBatch(&ca, inputs);
  b.ProcessBatch(&cb, inputs);
  ASSERT_EQ(ca.emitted().size(), cb.emitted().size());
  for (size_t i = 0; i < ca.emitted().size(); ++i) {
    EXPECT_EQ(ca.emitted()[i].key, cb.emitted()[i].key);
    EXPECT_EQ(ca.emitted()[i].value, cb.emitted()[i].value);
  }
}

TEST(OperatorsTest, WindowedKeyCountCountsAndEvicts) {
  WindowedKeyCountOperator op(2);
  BatchContext c0(0, 0, 1);
  op.ProcessBatch(&c0, MakeTuples({{"a", 1}, {"a", 1}, {"b", 1}}, 0, 0));
  // Counts after batch 0: a=2, b=1.
  std::map<std::string, int64_t> emitted;
  for (const Tuple& t : c0.emitted()) {
    emitted[t.key] = t.value;
  }
  EXPECT_EQ(emitted["a"], 2);
  EXPECT_EQ(emitted["b"], 1);
  BatchContext c1(1, 0, 1);
  op.ProcessBatch(&c1, MakeTuples({{"a", 1}}, 0, 1));
  emitted.clear();
  for (const Tuple& t : c1.emitted()) {
    emitted[t.key] = t.value;
  }
  EXPECT_EQ(emitted["a"], 3);  // Window of 2 batches: 2 + 1.
  // Batch 2 evicts batch 0's contribution.
  BatchContext c2(2, 0, 1);
  op.ProcessBatch(&c2, MakeTuples({{"a", 1}}, 0, 2));
  emitted.clear();
  for (const Tuple& t : c2.emitted()) {
    emitted[t.key] = t.value;
  }
  EXPECT_EQ(emitted["a"], 2);  // Batches 1 and 2 only.
}

TEST(OperatorsTest, KeyCountSnapshotRoundTrip) {
  WindowedKeyCountOperator a(3), b(3);
  for (int64_t batch = 0; batch < 5; ++batch) {
    BatchContext ctx(batch, 0, 1);
    a.ProcessBatch(&ctx, MakeTuples({{"k1", 1}, {"k2", 1}}, 0, batch));
  }
  auto snap = a.SnapshotState();
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(b.RestoreState(*snap).ok());
  BatchContext ca(5, 0, 1), cb(5, 0, 1);
  a.ProcessBatch(&ca, {});
  b.ProcessBatch(&cb, {});
  ASSERT_EQ(ca.emitted().size(), cb.emitted().size());
}

TEST(RouterTest, OneToOneRoutesToAlignedTask) {
  Topology t = MakeChain(3, 3, 3, PartitionScheme::kOneToOne,
                         PartitionScheme::kOneToOne);
  Router router(&t);
  for (TaskId src : t.op(0).tasks) {
    const auto& consumers = router.Consumers(src, 1);
    ASSERT_EQ(consumers.size(), 1u);
    EXPECT_EQ(t.task(consumers[0]).index_in_op, t.task(src).index_in_op);
  }
}

TEST(RouterTest, FullRoutesByKeyConsistently) {
  Topology t = MakeChain(2, 4, 1, PartitionScheme::kFull,
                         PartitionScheme::kMerge);
  Router router(&t);
  Tuple tuple;
  tuple.key = "some-key";
  const TaskId from0 = t.op(0).tasks[0];
  const TaskId from1 = t.op(0).tasks[1];
  // The same key from different producers lands on the same consumer
  // (key partitioning is a property of the stream, not the producer).
  EXPECT_EQ(t.task(router.Route(from0, 1, tuple)).index_in_op,
            t.task(router.Route(from1, 1, tuple)).index_in_op);
  // Different keys spread over consumers.
  std::set<TaskId> seen;
  for (int i = 0; i < 100; ++i) {
    tuple.key = "k" + std::to_string(i);
    seen.insert(router.Route(from0, 1, tuple));
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(RouterTest, NoEdgeYieldsInvalid) {
  Topology t = MakeChain(2, 2, 2, PartitionScheme::kOneToOne,
                         PartitionScheme::kOneToOne);
  Router router(&t);
  Tuple tuple;
  tuple.key = "x";
  EXPECT_EQ(router.Route(t.op(0).tasks[0], 2, tuple), kInvalidTaskId);
  EXPECT_TRUE(router.Consumers(t.op(0).tasks[0], 2).empty());
}

class CountingSource : public SourceFunction {
 public:
  explicit CountingSource(int per_batch) : per_batch_(per_batch) {}
  std::vector<Tuple> NextBatch(int64_t batch, int task) override {
    std::vector<Tuple> out;
    for (int i = 0; i < per_batch_; ++i) {
      Tuple t;
      t.key = "k" + std::to_string(i);
      t.value = batch * 100 + task;
      out.push_back(std::move(t));
    }
    return out;
  }

 private:
  int per_batch_;
};

Topology MakeTinyChain() {
  return MakeChain(1, 1, 1, PartitionScheme::kOneToOne,
                   PartitionScheme::kOneToOne);
}

TEST(TaskRuntimeTest, SourceGeneratesDeterministicSeqs) {
  Topology t = MakeTinyChain();
  TaskRuntime rt(&t, t.op(0).tasks[0], nullptr,
                 std::make_unique<CountingSource>(3));
  const BatchOutput& out = rt.RunBatch(0, {});
  ASSERT_EQ(out.tuples.size(), 3u);
  EXPECT_EQ(out.tuples[0].seq, 0u);
  EXPECT_EQ(out.tuples[1].seq, 1u);
  EXPECT_EQ(out.tuples[0].producer, rt.id());
  const BatchOutput& out1 = rt.RunBatch(1, {});
  EXPECT_EQ(out1.tuples[0].seq, uint64_t{1} << 24);
  EXPECT_EQ(rt.next_batch(), 2);
}

TEST(TaskRuntimeTest, DuplicateEliminationBySeq) {
  Topology t = MakeTinyChain();
  TaskRuntime rt(&t, t.op(1).tasks[0],
                 std::make_unique<PassThroughOperator>(), nullptr);
  auto inputs = MakeTuples({{"a", 1}, {"b", 2}}, /*producer=*/0, /*batch=*/0);
  const BatchOutput& out = rt.RunBatch(0, inputs);
  EXPECT_EQ(out.tuples.size(), 2u);
  // Feed the same tuples again in the next batch: both are dropped.
  const BatchOutput& out1 = rt.RunBatch(1, inputs);
  EXPECT_TRUE(out1.tuples.empty());
  EXPECT_EQ(rt.processed_tuples(), 2);
}

TEST(TaskRuntimeTest, ProgressVectorTracksMaxSeq) {
  Topology t = MakeTinyChain();
  TaskRuntime rt(&t, t.op(1).tasks[0],
                 std::make_unique<PassThroughOperator>(), nullptr);
  rt.RunBatch(0, MakeTuples({{"a", 1}, {"b", 2}}, 0, 0));
  ASSERT_EQ(rt.progress_vector().size(), 1u);
  EXPECT_EQ(rt.progress_vector().at(0), 1u);
}

TEST(TaskRuntimeTest, SnapshotRestoreRoundTrip) {
  Topology t = MakeTinyChain();
  TaskRuntime a(&t, t.op(1).tasks[0],
                std::make_unique<SlidingWindowAggregateOperator>(3, 1.0),
                nullptr);
  for (int64_t b = 0; b < 5; ++b) {
    a.RunBatch(b, MakeTuples({{"x", b}}, 0, b));
  }
  auto snap = a.Snapshot();
  ASSERT_TRUE(snap.ok());

  TaskRuntime b2(&t, t.op(1).tasks[0],
                 std::make_unique<SlidingWindowAggregateOperator>(3, 1.0),
                 nullptr);
  ASSERT_TRUE(b2.Restore(*snap).ok());
  EXPECT_EQ(b2.next_batch(), a.next_batch());
  EXPECT_EQ(b2.StateSizeTuples(), a.StateSizeTuples());
  EXPECT_EQ(b2.progress_vector(), a.progress_vector());
  EXPECT_EQ(b2.BufferedTuples(), a.BufferedTuples());
  // Identical continued behaviour.
  auto next = MakeTuples({{"y", 42}}, 0, 5);
  const BatchOutput& oa = a.RunBatch(5, next);
  const BatchOutput& ob = b2.RunBatch(5, next);
  ASSERT_EQ(oa.tuples.size(), ob.tuples.size());
  for (size_t i = 0; i < oa.tuples.size(); ++i) {
    EXPECT_EQ(oa.tuples[i], ob.tuples[i]);
  }
}

TEST(TaskRuntimeTest, FindBatchAndTrim) {
  Topology t = MakeTinyChain();
  TaskRuntime rt(&t, t.op(0).tasks[0], nullptr,
                 std::make_unique<CountingSource>(2));
  for (int64_t b = 0; b < 5; ++b) {
    rt.RunBatch(b, {});
  }
  EXPECT_NE(rt.FindBatch(0), nullptr);
  EXPECT_NE(rt.FindBatch(4), nullptr);
  EXPECT_EQ(rt.FindBatch(5), nullptr);
  EXPECT_EQ(rt.BufferedTuples(), 10);
  EXPECT_EQ(rt.BufferedTuplesAfter(2), 4);
  rt.TrimOutputBuffer(2);
  EXPECT_EQ(rt.FindBatch(2), nullptr);
  EXPECT_NE(rt.FindBatch(3), nullptr);
  EXPECT_EQ(rt.BufferedTuples(), 4);
}

TEST(TaskRuntimeTest, ResetRegeneratesIdenticalTuples) {
  Topology t = MakeTinyChain();
  TaskRuntime rt(&t, t.op(0).tasks[0], nullptr,
                 std::make_unique<CountingSource>(2));
  std::vector<Tuple> original;
  for (int64_t b = 0; b < 3; ++b) {
    const BatchOutput& out = rt.RunBatch(b, {});
    original.insert(original.end(), out.tuples.begin(), out.tuples.end());
  }
  rt.Reset(0);
  EXPECT_EQ(rt.next_batch(), 0);
  EXPECT_EQ(rt.BufferedTuples(), 0);
  std::vector<Tuple> replayed;
  for (int64_t b = 0; b < 3; ++b) {
    const BatchOutput& out = rt.RunBatch(b, {});
    replayed.insert(replayed.end(), out.tuples.begin(), out.tuples.end());
  }
  ASSERT_EQ(original.size(), replayed.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i], replayed[i]);
  }
}

TEST(TaskRuntimeTest, FailureFlags) {
  Topology t = MakeTinyChain();
  TaskRuntime rt(&t, t.op(0).tasks[0], nullptr,
                 std::make_unique<CountingSource>(1));
  EXPECT_TRUE(rt.alive());
  EXPECT_FALSE(rt.ever_failed());
  rt.MarkFailed();
  EXPECT_FALSE(rt.alive());
  EXPECT_TRUE(rt.ever_failed());
  rt.MarkAlive();
  EXPECT_TRUE(rt.alive());
  EXPECT_TRUE(rt.ever_failed());
}

}  // namespace
}  // namespace ppa
