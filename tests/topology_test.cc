#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_topologies.h"
#include "topology/random_topology.h"
#include "topology/task_set.h"
#include "topology/topology.h"

namespace ppa {
namespace {

using ::ppa::testing::MakeChain;
using ::ppa::testing::MakeFig2;

TEST(TopologyBuilderTest, RejectsEmptyTopology) {
  TopologyBuilder b;
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyBuilderTest, RejectsBadParallelism) {
  TopologyBuilder b;
  b.AddOperator("x", 0);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyBuilderTest, RejectsSelfLoop) {
  TopologyBuilder b;
  OperatorId a = b.AddOperator("a", 2);
  b.Connect(a, a, PartitionScheme::kFull);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyBuilderTest, RejectsCycle) {
  TopologyBuilder b;
  OperatorId a = b.AddOperator("a", 2);
  OperatorId c = b.AddOperator("c", 2);
  b.Connect(a, c, PartitionScheme::kFull);
  b.Connect(c, a, PartitionScheme::kFull);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyBuilderTest, RejectsDuplicateEdge) {
  TopologyBuilder b;
  OperatorId a = b.AddOperator("a", 2);
  OperatorId c = b.AddOperator("c", 2);
  b.Connect(a, c, PartitionScheme::kFull);
  b.Connect(a, c, PartitionScheme::kOneToOne);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyBuilderTest, RejectsIncompatibleOneToOne) {
  TopologyBuilder b;
  OperatorId a = b.AddOperator("a", 2);
  OperatorId c = b.AddOperator("c", 3);
  b.Connect(a, c, PartitionScheme::kOneToOne);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyBuilderTest, RejectsIncompatibleSplit) {
  TopologyBuilder b;
  OperatorId a = b.AddOperator("a", 2);
  OperatorId c = b.AddOperator("c", 3);
  b.Connect(a, c, PartitionScheme::kSplit);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyBuilderTest, RejectsSplitFactorOne) {
  TopologyBuilder b;
  OperatorId a = b.AddOperator("a", 3);
  OperatorId c = b.AddOperator("c", 3);
  b.Connect(a, c, PartitionScheme::kSplit);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyBuilderTest, RejectsIncompatibleMerge) {
  TopologyBuilder b;
  OperatorId a = b.AddOperator("a", 3);
  OperatorId c = b.AddOperator("c", 2);
  b.Connect(a, c, PartitionScheme::kMerge);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyBuilderTest, RejectsDisconnectedOperator) {
  TopologyBuilder b;
  OperatorId a = b.AddOperator("a", 2);
  OperatorId c = b.AddOperator("c", 2);
  b.AddOperator("island", 2);
  b.Connect(a, c, PartitionScheme::kFull);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyBuilderTest, RejectsRateOnNonSource) {
  TopologyBuilder b;
  OperatorId a = b.AddOperator("a", 2);
  OperatorId c = b.AddOperator("c", 2);
  b.Connect(a, c, PartitionScheme::kFull);
  b.SetSourceRate(c, 10.0);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyBuilderTest, RejectsNonPositiveWeight) {
  TopologyBuilder b;
  OperatorId a = b.AddOperator("a", 2);
  OperatorId c = b.AddOperator("c", 2);
  b.Connect(a, c, PartitionScheme::kFull);
  b.SetTaskWeight(a, 0, 0.0);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyTest, ExpandsTasksAndClassifiesSourcesSinks) {
  Topology t = MakeChain(4, 2, 1, PartitionScheme::kMerge,
                         PartitionScheme::kMerge);
  EXPECT_EQ(t.num_operators(), 3);
  EXPECT_EQ(t.num_tasks(), 7);
  ASSERT_EQ(t.source_operators().size(), 1u);
  ASSERT_EQ(t.sink_operators().size(), 1u);
  EXPECT_EQ(t.op(t.source_operators()[0]).name, "src");
  EXPECT_EQ(t.op(t.sink_operators()[0]).name, "sink");
  EXPECT_TRUE(t.IsSourceTask(t.op(0).tasks[0]));
  EXPECT_TRUE(t.IsSinkTask(t.op(2).tasks[0]));
  EXPECT_FALSE(t.IsSourceTask(t.op(1).tasks[0]));
}

TEST(TopologyTest, OneToOneWiring) {
  Topology t = MakeChain(3, 3, 3, PartitionScheme::kOneToOne,
                         PartitionScheme::kOneToOne);
  for (const Substream& s : t.substreams()) {
    EXPECT_EQ(t.task(s.from).index_in_op, t.task(s.to).index_in_op);
  }
  EXPECT_EQ(t.substreams().size(), 6u);
}

TEST(TopologyTest, SplitWiring) {
  TopologyBuilder b;
  OperatorId a = b.AddOperator("a", 2);
  OperatorId c = b.AddOperator("c", 6);
  b.Connect(a, c, PartitionScheme::kSplit);
  auto t = b.Build();
  ASSERT_TRUE(t.ok());
  // Each upstream task feeds 3 downstream tasks; each downstream task has
  // exactly one upstream.
  for (TaskId task : t->op(c).tasks) {
    EXPECT_EQ(t->task(task).in_substreams.size(), 1u);
  }
  for (TaskId task : t->op(a).tasks) {
    EXPECT_EQ(t->task(task).out_substreams.size(), 3u);
  }
}

TEST(TopologyTest, MergeWiring) {
  TopologyBuilder b;
  OperatorId a = b.AddOperator("a", 6);
  OperatorId c = b.AddOperator("c", 2);
  b.Connect(a, c, PartitionScheme::kMerge);
  auto t = b.Build();
  ASSERT_TRUE(t.ok());
  for (TaskId task : t->op(c).tasks) {
    EXPECT_EQ(t->task(task).in_substreams.size(), 3u);
  }
  for (TaskId task : t->op(a).tasks) {
    EXPECT_EQ(t->task(task).out_substreams.size(), 1u);
  }
}

TEST(TopologyTest, FullWiring) {
  Topology t = MakeChain(2, 3, 1, PartitionScheme::kFull,
                         PartitionScheme::kFull);
  EXPECT_EQ(t.substreams().size(), 2u * 3u + 3u * 1u);
}

TEST(TopologyTest, EdgeSchemeLookup) {
  Topology t = MakeChain(2, 4, 2, PartitionScheme::kSplit,
                         PartitionScheme::kMerge);
  auto s01 = t.EdgeScheme(0, 1);
  ASSERT_TRUE(s01.ok());
  EXPECT_EQ(*s01, PartitionScheme::kSplit);
  EXPECT_EQ(t.EdgeScheme(0, 2).status().code(), StatusCode::kNotFound);
}

TEST(TopologyTest, UniformRateDerivation) {
  Topology t = MakeChain(4, 2, 1, PartitionScheme::kMerge,
                         PartitionScheme::kMerge, /*source_rate=*/1000.0);
  // 4 source tasks at 250 each; 2 mid tasks at 500; sink at 1000.
  for (TaskId task : t.op(0).tasks) {
    EXPECT_DOUBLE_EQ(t.task(task).output_rate, 250.0);
  }
  for (TaskId task : t.op(1).tasks) {
    EXPECT_DOUBLE_EQ(t.task(task).output_rate, 500.0);
  }
  EXPECT_DOUBLE_EQ(t.task(t.op(2).tasks[0]).output_rate, 1000.0);
}

TEST(TopologyTest, SelectivityScalesRates) {
  TopologyBuilder b;
  OperatorId src = b.AddOperator("src", 2);
  OperatorId agg = b.AddOperator("agg", 2, InputCorrelation::kIndependent,
                                 /*selectivity=*/0.5);
  b.Connect(src, agg, PartitionScheme::kOneToOne);
  b.SetSourceRate(src, 1000.0);
  auto t = b.Build();
  ASSERT_TRUE(t.ok());
  for (TaskId task : t->op(agg).tasks) {
    EXPECT_DOUBLE_EQ(t->task(task).output_rate, 250.0);
  }
}

TEST(TopologyTest, WeightedRateDerivation) {
  testing::Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  EXPECT_DOUBLE_EQ(f.topo.task(f.t11).output_rate, 1.0);
  EXPECT_DOUBLE_EQ(f.topo.task(f.t12).output_rate, 2.0);
  EXPECT_DOUBLE_EQ(f.topo.task(f.t21).output_rate, 3.0);
  EXPECT_DOUBLE_EQ(f.topo.task(f.t22).output_rate, 2.0);
  EXPECT_DOUBLE_EQ(f.topo.task(f.t31).output_rate, 8.0);
}

TEST(TopologyTest, FullEdgeSplitsByWeight) {
  TopologyBuilder b;
  OperatorId src = b.AddOperator("src", 1);
  OperatorId down = b.AddOperator("down", 2);
  b.Connect(src, down, PartitionScheme::kFull);
  b.SetSourceRate(src, 900.0);
  b.SetTaskWeight(down, 0, 2.0);
  b.SetTaskWeight(down, 1, 1.0);
  auto t = b.Build();
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->task(t->op(down).tasks[0]).output_rate, 600.0);
  EXPECT_DOUBLE_EQ(t->task(t->op(down).tasks[1]).output_rate, 300.0);
}

TEST(TopologyTest, RecomputeRatesAfterSourceChange) {
  Topology t = MakeChain(2, 2, 2, PartitionScheme::kOneToOne,
                         PartitionScheme::kOneToOne, 1000.0);
  ASSERT_TRUE(t.SetSourceRate(0, 2000.0).ok());
  t.RecomputeRates();
  EXPECT_DOUBLE_EQ(t.task(t.op(2).tasks[0]).output_rate, 1000.0);
  EXPECT_EQ(t.SetSourceRate(1, 5.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.SetSourceRate(99, 5.0).code(), StatusCode::kInvalidArgument);
}

TEST(TopologyTest, TaskLabel) {
  Topology t = MakeChain(2, 2, 2, PartitionScheme::kOneToOne,
                         PartitionScheme::kOneToOne);
  EXPECT_EQ(t.TaskLabel(t.op(1).tasks[1]), "mid[1]");
}

TEST(TaskSetTest, BasicOperations) {
  TaskSet s(5);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.Add(2));
  EXPECT_FALSE(s.Add(2));
  EXPECT_TRUE(s.Contains(2));
  EXPECT_EQ(s.size(), 1);
  EXPECT_TRUE(s.Remove(2));
  EXPECT_FALSE(s.Remove(2));
  EXPECT_TRUE(s.empty());
}

TEST(TaskSetTest, SetAlgebra) {
  TaskSet a(4), c(4);
  a.Add(0);
  a.Add(1);
  c.Add(1);
  c.Add(3);
  TaskSet u = a;
  u.UnionWith(c);
  EXPECT_EQ(u.size(), 3);
  EXPECT_EQ(a.CountMissing(c), 1);
  EXPECT_TRUE(a.IsSubsetOf(u));
  EXPECT_FALSE(u.IsSubsetOf(a));
  TaskSet comp = a.Complement();
  EXPECT_EQ(comp.size(), 2);
  EXPECT_TRUE(comp.Contains(2));
  EXPECT_TRUE(comp.Contains(3));
  EXPECT_EQ(TaskSet::All(4).size(), 4);
  EXPECT_EQ(a.ToVector(), (std::vector<TaskId>{0, 1}));
}

TEST(RandomTopologyTest, RespectsOperatorCountRange) {
  Rng rng(1);
  RandomTopologyOptions opts;
  opts.min_operators = 5;
  opts.max_operators = 10;
  for (int i = 0; i < 50; ++i) {
    auto t = GenerateRandomTopology(opts, &rng);
    ASSERT_TRUE(t.ok()) << t.status();
    EXPECT_GE(t->num_operators(), 5);
    EXPECT_LE(t->num_operators(), 10);
    EXPECT_EQ(t->sink_operators().size(), 1u);
  }
}

TEST(RandomTopologyTest, FullKindUsesOnlyFullEdges) {
  Rng rng(2);
  RandomTopologyOptions opts;
  opts.kind = RandomTopologyOptions::Kind::kFull;
  for (int i = 0; i < 20; ++i) {
    auto t = GenerateRandomTopology(opts, &rng);
    ASSERT_TRUE(t.ok());
    for (const StreamEdge& e : t->edges()) {
      EXPECT_EQ(e.scheme, PartitionScheme::kFull);
    }
  }
}

TEST(RandomTopologyTest, StructuredKindAvoidsFullEdges) {
  Rng rng(3);
  RandomTopologyOptions opts;
  opts.kind = RandomTopologyOptions::Kind::kStructured;
  for (int i = 0; i < 20; ++i) {
    auto t = GenerateRandomTopology(opts, &rng);
    ASSERT_TRUE(t.ok());
    for (const StreamEdge& e : t->edges()) {
      EXPECT_NE(e.scheme, PartitionScheme::kFull);
    }
  }
}

TEST(RandomTopologyTest, JoinFractionProducesCorrelatedOps) {
  Rng rng(4);
  RandomTopologyOptions opts;
  opts.join_fraction = 1.0;
  int correlated = 0, multi_input = 0;
  for (int i = 0; i < 30; ++i) {
    auto t = GenerateRandomTopology(opts, &rng);
    ASSERT_TRUE(t.ok());
    for (const OperatorInfo& oi : t->operators()) {
      if (oi.upstream.size() >= 2) {
        ++multi_input;
        if (oi.correlation == InputCorrelation::kCorrelated) {
          ++correlated;
        }
      }
    }
  }
  EXPECT_GT(multi_input, 0);
  EXPECT_EQ(correlated, multi_input);
}

TEST(RandomTopologyTest, ZeroJoinFractionProducesNoJoins) {
  Rng rng(5);
  RandomTopologyOptions opts;
  opts.join_fraction = 0.0;
  for (int i = 0; i < 20; ++i) {
    auto t = GenerateRandomTopology(opts, &rng);
    ASSERT_TRUE(t.ok());
    for (const OperatorInfo& oi : t->operators()) {
      EXPECT_EQ(oi.correlation, InputCorrelation::kIndependent);
    }
  }
}

TEST(RandomTopologyTest, ZipfSkewVariesTaskRates) {
  Rng rng(6);
  RandomTopologyOptions opts;
  opts.skew = RandomTopologyOptions::WorkloadSkew::kZipf;
  opts.zipf_s = 1.0;  // Exaggerated skew for a robust check.
  opts.min_parallelism = 4;
  opts.max_parallelism = 8;
  bool found_skewed = false;
  for (int i = 0; i < 10 && !found_skewed; ++i) {
    auto t = GenerateRandomTopology(opts, &rng);
    ASSERT_TRUE(t.ok());
    for (const OperatorInfo& oi : t->operators()) {
      double lo = 1e18, hi = 0;
      for (TaskId task : oi.tasks) {
        lo = std::min(lo, t->task(task).weight);
        hi = std::max(hi, t->task(task).weight);
      }
      if (hi > lo * 1.2) {
        found_skewed = true;
      }
    }
  }
  EXPECT_TRUE(found_skewed);
}

TEST(RandomTopologyTest, DeterministicGivenSeed) {
  RandomTopologyOptions opts;
  Rng r1(99), r2(99);
  auto a = GenerateRandomTopology(opts, &r1);
  auto b = GenerateRandomTopology(opts, &r2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_operators(), b->num_operators());
  EXPECT_EQ(a->num_tasks(), b->num_tasks());
  ASSERT_EQ(a->edges().size(), b->edges().size());
  for (size_t i = 0; i < a->edges().size(); ++i) {
    EXPECT_EQ(a->edges()[i].from, b->edges()[i].from);
    EXPECT_EQ(a->edges()[i].to, b->edges()[i].to);
    EXPECT_EQ(a->edges()[i].scheme, b->edges()[i].scheme);
  }
}

}  // namespace
}  // namespace ppa
