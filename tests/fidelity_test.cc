#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "fidelity/mc_tree.h"
#include "fidelity/metrics.h"
#include "tests/test_topologies.h"
#include "topology/random_topology.h"

namespace ppa {
namespace {

using ::ppa::testing::Fig1Topology;
using ::ppa::testing::Fig2Topology;
using ::ppa::testing::MakeChain;
using ::ppa::testing::MakeFig1;
using ::ppa::testing::MakeFig2;

TEST(InfoLossTest, NoFailureMeansNoLoss) {
  Fig2Topology f = MakeFig2(InputCorrelation::kCorrelated);
  TaskSet none(f.topo.num_tasks());
  InfoLossResult r = PropagateInfoLoss(f.topo, none);
  for (double loss : r.output_loss) {
    EXPECT_DOUBLE_EQ(loss, 0.0);
  }
  EXPECT_DOUBLE_EQ(r.output_fidelity, 1.0);
}

TEST(InfoLossTest, FailedTaskHasFullLoss) {
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  TaskSet failed(f.topo.num_tasks());
  failed.Add(f.t22);
  InfoLossResult r = PropagateInfoLoss(f.topo, failed);
  EXPECT_DOUBLE_EQ(r.output_loss[static_cast<size_t>(f.t22)], 1.0);
}

// The worked example of Sec. III-A1: with rates 1,2 / 3,2 and t22 failed,
// the downstream loss is 1/4 for an independent-input operator.
TEST(InfoLossTest, PaperExampleIndependent) {
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  TaskSet failed(f.topo.num_tasks());
  failed.Add(f.t22);
  InfoLossResult r = PropagateInfoLoss(f.topo, failed);
  EXPECT_NEAR(r.output_loss[static_cast<size_t>(f.t31)], 0.25, 1e-12);
  EXPECT_NEAR(r.output_fidelity, 0.75, 1e-12);
}

// ... and 2/5 for a correlated-input (join) operator.
TEST(InfoLossTest, PaperExampleCorrelated) {
  Fig2Topology f = MakeFig2(InputCorrelation::kCorrelated);
  TaskSet failed(f.topo.num_tasks());
  failed.Add(f.t22);
  InfoLossResult r = PropagateInfoLoss(f.topo, failed);
  EXPECT_NEAR(r.output_loss[static_cast<size_t>(f.t31)], 0.4, 1e-12);
  EXPECT_NEAR(r.output_fidelity, 0.6, 1e-12);
}

// IC ignores correlation, so on the join topology it must match the
// independent-input result.
TEST(InfoLossTest, InternalCompletenessIgnoresCorrelation) {
  Fig2Topology f = MakeFig2(InputCorrelation::kCorrelated);
  TaskSet failed(f.topo.num_tasks());
  failed.Add(f.t22);
  EXPECT_NEAR(ComputeInternalCompleteness(f.topo, failed), 0.75, 1e-12);
  EXPECT_NEAR(ComputeOutputFidelity(f.topo, failed), 0.6, 1e-12);
}

TEST(InfoLossTest, LossPropagatesThroughChain) {
  Topology t = MakeChain(4, 2, 1, PartitionScheme::kMerge,
                         PartitionScheme::kMerge);
  // Fail one of four equal source tasks: the sink loses 1/4.
  TaskSet failed(t.num_tasks());
  failed.Add(t.op(0).tasks[1]);
  EXPECT_NEAR(ComputeOutputFidelity(t, failed), 0.75, 1e-12);
  // Fail one of the two mid tasks: everything it carried (1/2) is lost.
  TaskSet failed_mid(t.num_tasks());
  failed_mid.Add(t.op(1).tasks[0]);
  EXPECT_NEAR(ComputeOutputFidelity(t, failed_mid), 0.5, 1e-12);
}

TEST(InfoLossTest, SinkFailureZeroesFidelity) {
  Topology t = MakeChain(2, 2, 1, PartitionScheme::kOneToOne,
                         PartitionScheme::kMerge);
  TaskSet failed(t.num_tasks());
  failed.Add(t.op(2).tasks[0]);
  EXPECT_DOUBLE_EQ(ComputeOutputFidelity(t, failed), 0.0);
}

TEST(InfoLossTest, AllFailedZeroFidelity) {
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  EXPECT_DOUBLE_EQ(
      ComputeOutputFidelity(f.topo, TaskSet::All(f.topo.num_tasks())), 0.0);
}

TEST(InfoLossTest, SingleFailureHelperMatchesManual) {
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  TaskSet failed(f.topo.num_tasks());
  failed.Add(f.t21);
  EXPECT_DOUBLE_EQ(SingleFailureOutputFidelity(f.topo, f.t21),
                   ComputeOutputFidelity(f.topo, failed));
}

TEST(PlanObjectiveTest, FullPlanGivesFullFidelity) {
  Fig2Topology f = MakeFig2(InputCorrelation::kCorrelated);
  EXPECT_DOUBLE_EQ(
      PlanOutputFidelity(f.topo, TaskSet::All(f.topo.num_tasks())), 1.0);
}

TEST(PlanObjectiveTest, EmptyPlanGivesZero) {
  Fig2Topology f = MakeFig2(InputCorrelation::kCorrelated);
  EXPECT_DOUBLE_EQ(PlanOutputFidelity(f.topo, TaskSet(f.topo.num_tasks())),
                   0.0);
}

TEST(PlanObjectiveTest, CompleteMcTreePlanHasPositiveFidelity) {
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  TaskSet plan(f.topo.num_tasks());
  plan.Add(f.t21);
  plan.Add(f.t31);
  // {t21, t31} is a complete MC-tree: t21 carries rate 3 of total 8.
  EXPECT_NEAR(PlanOutputFidelity(f.topo, plan), 3.0 / 8.0, 1e-12);
  // An incomplete set (sink missing) is worthless.
  TaskSet partial(f.topo.num_tasks());
  partial.Add(f.t21);
  EXPECT_DOUBLE_EQ(PlanOutputFidelity(f.topo, partial), 0.0);
}

// Property: adding a failure can never increase output fidelity, and the
// IC baseline never reports lower completeness than OF (the correlated
// combination dominates the rate-weighted average).
class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertyTest, MonotoneAndOrdered) {
  Rng rng(GetParam());
  RandomTopologyOptions opts;
  opts.join_fraction = 0.5;
  opts.kind = (GetParam() % 2 == 0) ? RandomTopologyOptions::Kind::kStructured
                                    : RandomTopologyOptions::Kind::kFull;
  auto topo = GenerateRandomTopology(opts, &rng);
  ASSERT_TRUE(topo.ok());
  TaskSet failed(topo->num_tasks());
  double prev_of = ComputeOutputFidelity(*topo, failed);
  for (int step = 0; step < topo->num_tasks(); ++step) {
    // Grow the failure set one random task at a time.
    TaskId t;
    do {
      t = static_cast<TaskId>(rng.NextUint64(
          static_cast<uint64_t>(topo->num_tasks())));
    } while (failed.Contains(t));
    failed.Add(t);
    const double of = ComputeOutputFidelity(*topo, failed);
    const double ic = ComputeInternalCompleteness(*topo, failed);
    EXPECT_LE(of, prev_of + 1e-9) << "failure must not increase OF";
    EXPECT_LE(of, ic + 1e-9) << "OF must lower-bound IC";
    EXPECT_GE(of, -1e-12);
    EXPECT_LE(of, 1.0 + 1e-12);
    prev_of = of;
  }
  EXPECT_NEAR(prev_of, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, MetricsPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{24}));

TEST(McTreeTest, SingleOperatorTopology) {
  TopologyBuilder b;
  b.AddOperator("solo", 3);
  auto t = b.Build();
  ASSERT_TRUE(t.ok());
  auto trees = EnumerateMcTrees(*t);
  ASSERT_TRUE(trees.ok());
  EXPECT_EQ(trees->size(), 3u);
  for (const TaskSet& tree : *trees) {
    EXPECT_EQ(tree.size(), 1);
  }
}

TEST(McTreeTest, ChainHasOneTreePerAlignedPath) {
  Topology t = MakeChain(2, 2, 2, PartitionScheme::kOneToOne,
                         PartitionScheme::kOneToOne);
  auto trees = EnumerateMcTrees(t);
  ASSERT_TRUE(trees.ok());
  EXPECT_EQ(trees->size(), 2u);
  for (const TaskSet& tree : *trees) {
    EXPECT_EQ(tree.size(), 3);
  }
}

TEST(McTreeTest, MergeMultipliesChoices) {
  Topology t = MakeChain(4, 2, 1, PartitionScheme::kMerge,
                         PartitionScheme::kMerge);
  // Sink picks one of 2 mid tasks; each mid picks one of its 2 sources.
  auto trees = EnumerateMcTrees(t);
  ASSERT_TRUE(trees.ok());
  EXPECT_EQ(trees->size(), 4u);
}

// The Fig. 1 discussion: 16 MC-trees when O3 is independent-input, 8 when
// it is a join.
TEST(McTreeTest, Fig1Counts) {
  Fig1Topology ind = MakeFig1(InputCorrelation::kIndependent);
  auto ind_trees = EnumerateMcTrees(ind.topo);
  ASSERT_TRUE(ind_trees.ok());
  EXPECT_EQ(ind_trees->size(), 16u);

  Fig1Topology join = MakeFig1(InputCorrelation::kCorrelated);
  auto join_trees = EnumerateMcTrees(join.topo);
  ASSERT_TRUE(join_trees.ok());
  EXPECT_EQ(join_trees->size(), 8u);
  // Join trees contain one task from each of O1, O2, O3, O4.
  for (const TaskSet& tree : *join_trees) {
    EXPECT_EQ(tree.size(), 4);
  }
}

TEST(McTreeTest, FullTopologyCountIsProductOfParallelisms) {
  Topology t = MakeChain(2, 3, 2, PartitionScheme::kFull,
                         PartitionScheme::kFull);
  auto trees = EnumerateMcTrees(t);
  ASSERT_TRUE(trees.ok());
  EXPECT_EQ(trees->size(), 2u * 3u * 2u);
}

TEST(McTreeTest, EnumerationLimitIsEnforced) {
  Topology t = MakeChain(4, 4, 4, PartitionScheme::kFull,
                         PartitionScheme::kFull);
  McTreeEnumOptions opts;
  opts.max_trees = 10;
  EXPECT_EQ(EnumerateMcTrees(t, opts).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(McTreeTest, PerSinkEnumeration) {
  Fig1Topology f = MakeFig1(InputCorrelation::kIndependent);
  TaskId sink0 = f.topo.op(f.o4).tasks[0];
  auto trees = EnumerateMcTreesForSink(f.topo, sink0);
  ASSERT_TRUE(trees.ok());
  EXPECT_EQ(trees->size(), 8u);
  for (const TaskSet& tree : *trees) {
    EXPECT_TRUE(tree.Contains(sink0));
  }
  // Non-sink task is rejected.
  EXPECT_EQ(
      EnumerateMcTreesForSink(f.topo, f.topo.op(f.o1).tasks[0]).status().code(),
      StatusCode::kInvalidArgument);
}

// Property: replicating exactly the tasks of any single MC-tree yields a
// plan with strictly positive worst-case fidelity, and removing any task
// from the tree drops it back to zero (minimality).
class McTreeMinimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(McTreeMinimalityTest, TreesAreMinimalAndComplete) {
  Rng rng(GetParam() * 977 + 13);
  RandomTopologyOptions opts;
  opts.min_operators = 4;
  opts.max_operators = 6;
  opts.min_parallelism = 1;
  opts.max_parallelism = 4;
  opts.join_fraction = 0.5;
  auto topo = GenerateRandomTopology(opts, &rng);
  ASSERT_TRUE(topo.ok());
  auto trees = EnumerateMcTrees(*topo);
  ASSERT_TRUE(trees.ok());
  ASSERT_FALSE(trees->empty());
  size_t checked = 0;
  for (const TaskSet& tree : *trees) {
    if (++checked > 10) {
      break;  // Bound test cost.
    }
    EXPECT_GT(PlanOutputFidelity(*topo, tree), 0.0);
    for (TaskId t : tree.ToVector()) {
      TaskSet reduced = tree;
      reduced.Remove(t);
      EXPECT_DOUBLE_EQ(PlanOutputFidelity(*topo, reduced), 0.0)
          << "removing " << topo->TaskLabel(t)
          << " should break the MC-tree";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, McTreeMinimalityTest,
                         ::testing::Range(uint64_t{0}, uint64_t{16}));

}  // namespace
}  // namespace ppa
