// Tests of the deterministic parallel experiment engine: the thread pool,
// the submission-order ParallelRunner, RunSpec execution, and the
// serial-vs-parallel bit-identity contract the bench binaries rely on
// (--jobs N must never change any output byte).

#include <atomic>
#include <cmath>
#include <cstdint>
#include <future>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "exp/parallel_runner.h"
#include "exp/run_spec.h"
#include "planner/planner.h"
#include "runtime/config.h"
#include "topology/random_topology.h"

namespace ppa {
namespace {

// --- ThreadPool ----------------------------------------------------------

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&executed] { executed.fetch_add(1); });
    }
  }
  EXPECT_EQ(executed.load(), 200);
}

TEST(ThreadPoolTest, WorkerMaySubmitFollowUpTasks) {
  ThreadPool pool(2);
  std::promise<int> done;
  std::future<int> got = done.get_future();
  pool.Submit([&pool, &done] {
    pool.Submit([&done] { done.set_value(42); });
  });
  EXPECT_EQ(got.get(), 42);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_GE(ThreadPool::DefaultParallelism(), 1);
}

// --- ParallelRunner ------------------------------------------------------

TEST(ParallelRunnerTest, SerialWhenJobsIsOne) {
  exp::ParallelRunner runner;
  EXPECT_EQ(runner.jobs(), 1);
  std::vector<int> out =
      runner.Map<int>(5, [](int i) { return i * i; });
  EXPECT_EQ(out, (std::vector<int>{0, 1, 4, 9, 16}));
}

TEST(ParallelRunnerTest, ReportsWorkerCount) {
  exp::ParallelRunner runner(exp::ParallelRunnerOptions{.jobs = 4});
  EXPECT_EQ(runner.jobs(), 4);
}

TEST(ParallelRunnerTest, ResultsInSubmissionOrderUnderJitter) {
  // Early indices get the largest busy-work, so with 8 workers the last
  // submissions finish first; the result vector must stay index-ordered
  // regardless.
  exp::ParallelRunner runner(exp::ParallelRunnerOptions{.jobs = 8});
  const int count = 64;
  std::vector<int> out = runner.Map<int>(count, [count](int i) {
    double acc = 0;
    for (int k = 0; k < (count - i) * 4000; ++k) {
      acc += std::sqrt(static_cast<double>(k + i));
    }
    return acc >= 0 ? i : -1;
  });
  ASSERT_EQ(out.size(), static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
}

TEST(ParallelRunnerTest, RethrowsWorkerExceptionAndStaysUsable) {
  exp::ParallelRunner runner(exp::ParallelRunnerOptions{.jobs = 4});
  auto faulty = [](int i) -> int {
    if (i == 3) {
      throw std::runtime_error("boom at 3");
    }
    return i;
  };
  EXPECT_THROW(runner.Map<int>(8, faulty), std::runtime_error);
  // The pool survives the unwound Map and keeps producing ordered results.
  std::vector<int> out = runner.Map<int>(6, [](int i) { return i + 10; });
  EXPECT_EQ(out, (std::vector<int>{10, 11, 12, 13, 14, 15}));
}

// --- Seed derivation -----------------------------------------------------

TEST(DeriveSeedTest, DistinctPerIndexAndReproducible) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 256; ++i) {
    const uint64_t s = DeriveSeed(7, i);
    EXPECT_EQ(s, DeriveSeed(7, i));
    EXPECT_TRUE(seen.insert(s).second) << "collision at index " << i;
  }
  EXPECT_NE(DeriveSeed(7, 0), DeriveSeed(8, 0));
}

// --- PlannerKind round-trip ----------------------------------------------

TEST(PlannerKindTest, RoundTripsThroughString) {
  for (PlannerKind kind :
       {PlannerKind::kDynamicProgramming, PlannerKind::kGreedy,
        PlannerKind::kStructureAware, PlannerKind::kExhaustive,
        PlannerKind::kRandom, PlannerKind::kExpectedFidelity}) {
    auto parsed = PlannerKindFromString(PlannerKindToString(kind));
    ASSERT_TRUE(parsed.ok()) << PlannerKindToString(kind);
    EXPECT_EQ(*parsed, kind);
    auto planner = CreatePlanner(kind);
    ASSERT_NE(planner, nullptr);
    EXPECT_EQ(planner->name(), PlannerKindToString(kind));
  }
}

TEST(PlannerKindTest, AcceptsAliasesAndRejectsUnknown) {
  auto sa = PlannerKindFromString("structure-aware");
  ASSERT_TRUE(sa.ok());
  EXPECT_EQ(*sa, PlannerKind::kStructureAware);
  auto expected = PlannerKindFromString("expected-fidelity");
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*expected, PlannerKind::kExpectedFidelity);
  EXPECT_EQ(PlannerKindFromString("nope").status().code(),
            StatusCode::kInvalidArgument);
}

// --- JobConfig validation ------------------------------------------------

TEST(JobConfigTest, DefaultsAndPresetsValidate) {
  EXPECT_TRUE(JobConfig().Validate().ok());
  EXPECT_TRUE(JobConfig::CheckpointDefaults().Validate().ok());
  EXPECT_TRUE(JobConfig::PpaDefaults().Validate().ok());
  EXPECT_EQ(JobConfig::CheckpointDefaults().ft_mode, FtMode::kCheckpoint);
  EXPECT_EQ(JobConfig::PpaDefaults().ft_mode, FtMode::kPpa);
}

TEST(JobConfigTest, RejectsDegenerateValues) {
  auto broken = [](auto mutate) {
    JobConfig config = JobConfig::CheckpointDefaults();
    mutate(&config);
    return config.Validate();
  };
  EXPECT_EQ(broken([](JobConfig* c) { c->batch_interval = Duration::Zero(); })
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(broken([](JobConfig* c) {
              c->detection_interval = Duration::Seconds(-1);
            }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(broken([](JobConfig* c) {
              c->checkpoint_interval = Duration::Zero();
            }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      broken([](JobConfig* c) { c->process_cost_per_tuple_us = -0.5; }).code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(broken([](JobConfig* c) { c->num_worker_nodes = 0; }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(broken([](JobConfig* c) { c->num_standby_nodes = -1; }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(broken([](JobConfig* c) { c->window_batches = 0; }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(broken([](JobConfig* c) { c->max_delta_chain = 0; }).code(),
            StatusCode::kInvalidArgument);
}

// --- RunSpec execution and serial-vs-parallel bit-identity ----------------

std::vector<exp::RunSpec> Fig14StyleSweep() {
  RandomTopologyOptions options;
  options.min_operators = 3;
  options.max_operators = 5;
  options.min_parallelism = 1;
  options.max_parallelism = 3;
  options.join_fraction = 0.4;
  std::vector<exp::RunSpec> specs;
  for (int i = 0; i < 6; ++i) {
    exp::RunSpec spec;
    spec.label = "topo-" + std::to_string(i);
    spec.make_topology = [options](Rng* rng) {
      return GenerateRandomTopology(options, rng);
    };
    spec.config = JobConfig::PpaDefaults();
    spec.planner = PlannerKind::kStructureAware;
    spec.seed = 100;
    spec.run_for_seconds = 8.0;
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(RunSpecTest, ParallelSweepIsBitIdenticalToSerial) {
  const std::vector<exp::RunSpec> specs = Fig14StyleSweep();
  exp::ParallelRunner serial;
  auto serial_results = exp::RunAll(&serial, specs);
  ASSERT_TRUE(serial_results.ok()) << serial_results.status().ToString();

  exp::ParallelRunner parallel(exp::ParallelRunnerOptions{.jobs = 8});
  auto parallel_results = exp::RunAll(&parallel, specs);
  ASSERT_TRUE(parallel_results.ok()) << parallel_results.status().ToString();

  const std::string serial_json =
      exp::RunResultsToJson(*serial_results).Pretty();
  const std::string parallel_json =
      exp::RunResultsToJson(*parallel_results).Pretty();
  EXPECT_EQ(serial_json, parallel_json);
  ASSERT_EQ(serial_results->size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ((*serial_results)[i].label, specs[i].label);
  }
}

TEST(RunSpecTest, ExecuteRunPlansAndRuns) {
  exp::RunSpec spec = Fig14StyleSweep()[0];
  auto result = exp::ExecuteRun(spec, DeriveSeed(spec.seed, 0));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->label, "topo-0");
  EXPECT_GT(result->resource_usage, 0);
  EXPECT_GT(result->output_fidelity, 0.0);
  EXPECT_LE(result->output_fidelity, 1.0);
  EXPECT_GT(result->sink_records, 0u);
}

TEST(RunSpecTest, InvalidConfigIsRejected) {
  exp::RunSpec spec = Fig14StyleSweep()[0];
  spec.config.batch_interval = Duration::Zero();
  auto result = exp::ExecuteRun(spec, 1);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ppa
