#include <algorithm>
#include <string>
#include <vector>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "af/error_budget.h"
#include "chaos/campaign.h"
#include "chaos/chaos_case.h"
#include "chaos/chaos_run.h"
#include "chaos/generator.h"
#include "chaos/minimizer.h"
#include "common/random.h"

namespace ppa {
namespace chaos {
namespace {

using ::testing::HasSubstr;

TEST(GeneratorTest, SameSeedSameCase) {
  auto a = GenerateChaosCase(ChaosIntensity::Medium(), 12345);
  auto b = GenerateChaosCase(ChaosIntensity::Medium(), 12345);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(ChaosCaseToJson(*a).Serialize(), ChaosCaseToJson(*b).Serialize());
}

TEST(GeneratorTest, DifferentSeedsDiverge) {
  auto a = GenerateChaosCase(ChaosIntensity::Medium(), 1);
  auto b = GenerateChaosCase(ChaosIntensity::Medium(), 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(ChaosCaseToJson(*a).Serialize(), ChaosCaseToJson(*b).Serialize());
}

TEST(GeneratorTest, IntensityBoundsEventCount) {
  ChaosIntensity intensity = ChaosIntensity::Low();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    auto c = GenerateChaosCase(intensity, seed);
    ASSERT_TRUE(c.ok()) << c.status();
    EXPECT_GE(static_cast<int>(c->events.size()), intensity.min_events);
    EXPECT_LE(static_cast<int>(c->events.size()), intensity.max_events);
    EXPECT_GT(c->run_for_seconds, 0.0);
    EXPECT_GE(c->budget, 1);
  }
}

TEST(GeneratorTest, IntensityPresetNamesParse) {
  EXPECT_TRUE(ChaosIntensityFromString("low").ok());
  EXPECT_TRUE(ChaosIntensityFromString("medium").ok());
  EXPECT_TRUE(ChaosIntensityFromString("high").ok());
  EXPECT_EQ(ChaosIntensityFromString("extreme").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ChaosCaseJsonTest, RoundTrips) {
  auto generated = GenerateChaosCase(ChaosIntensity::High(), 777);
  ASSERT_TRUE(generated.ok()) << generated.status();
  auto parsed = ParseChaosCaseJson(ChaosCaseToJson(*generated).Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, *generated);
}

TEST(ChaosCaseJsonTest, RoundTripsNonDefaultRecoveryModeFields) {
  auto generated = GenerateChaosCase(ChaosIntensity::Medium(), 99);
  ASSERT_TRUE(generated.ok()) << generated.status();
  ChaosCase tweaked = *generated;
  tweaked.recovery_mode = af::RecoveryMode::kApprox;
  tweaked.af_task_divergence_records = 1234;
  tweaked.af_max_certified_loss = 0.625;
  auto parsed = ParseChaosCaseJson(ChaosCaseToJson(tweaked).Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, tweaked);
  EXPECT_EQ(parsed->recovery_mode, af::RecoveryMode::kApprox);
  EXPECT_EQ(parsed->af_task_divergence_records, 1234);
  EXPECT_DOUBLE_EQ(parsed->af_max_certified_loss, 0.625);
  // Pre-af case files (no recovery_mode key) still parse, as exact mode.
  JsonValue json = ChaosCaseToJson(*generated);
  EXPECT_EQ(generated->recovery_mode, af::RecoveryMode::kPpa);
  auto legacy = ParseChaosCaseJson(json.Serialize());
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  EXPECT_EQ(legacy->recovery_mode, af::RecoveryMode::kPpa);
}

TEST(ChaosCaseJsonTest, RejectsMissingFields) {
  auto missing = ParseChaosCaseJson("{\"seed\":1}");
  ASSERT_FALSE(missing.ok());
  EXPECT_THAT(missing.status().message(), HasSubstr("missing"));
  EXPECT_EQ(ParseChaosCaseJson("[1,2]").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ChaosRunTest, GeneratedCaseExecutesCleanly) {
  auto generated = GenerateChaosCase(ChaosIntensity::Medium(), 42);
  ASSERT_TRUE(generated.ok()) << generated.status();
  auto report = RunChaosCase(*generated);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->seed, 42u);
  EXPECT_EQ(report->events_scheduled, generated->events.size());
  EXPECT_EQ(report->events_executed, generated->events.size());
  EXPECT_GT(report->sink_records, 0u);
  EXPECT_GE(report->end_seconds, generated->run_for_seconds);
  EXPECT_TRUE(report->violations.empty())
      << report->violations[0].invariant << ": "
      << report->violations[0].message;
}

TEST(ChaosRunTest, RejectsBrokenCases) {
  ChaosCase broken;
  broken.topology_spec = "not a spec";
  EXPECT_FALSE(RunChaosCase(broken).ok());
  auto generated = GenerateChaosCase(ChaosIntensity::Low(), 7);
  ASSERT_TRUE(generated.ok());
  ChaosCase negative = *generated;
  negative.run_for_seconds = -1.0;
  EXPECT_EQ(RunChaosCase(negative).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ChaosRunTest, FailingRunAttachesAFlightRecord) {
  // Plant a guaranteed invariant violation (an event targeting a node
  // that does not exist fails event-sanity) and check the report ships
  // the flight-recorder post-mortem alongside the violations.
  auto generated = GenerateChaosCase(ChaosIntensity::Medium(), 11);
  ASSERT_TRUE(generated.ok()) << generated.status();
  ChaosCase failing = *generated;
  ScenarioEvent bad;
  bad.at = Duration::Seconds(1.0);
  bad.kind = ScenarioEvent::Kind::kNodeFailure;
  bad.node = 999;
  failing.events.insert(failing.events.begin(), bad);
  auto report = RunChaosCase(failing);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->violations.empty());
  ASSERT_FALSE(report->flight_record.is_null());
  const JsonValue* events = report->flight_record.Find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->size(), 0u) << "the ring saw the run's trace events";
  ASSERT_NE(report->flight_record.Find("capacity"), nullptr);

  // Passing runs carry no post-mortem: the record stays JSON null and
  // out of the campaign artifact.
  auto clean = RunChaosCase(*generated);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(clean->violations.empty());
  EXPECT_TRUE(clean->flight_record.is_null());
}

TEST(CampaignTest, FailingCaseJsonEmbedsTheFlightRecord) {
  // A hand-assembled campaign report around a real failing run: the
  // serialized artifact must embed the flight record inside the failing
  // case entry (the dump a CI artifact viewer opens first).
  auto generated = GenerateChaosCase(ChaosIntensity::Medium(), 11);
  ASSERT_TRUE(generated.ok()) << generated.status();
  ChaosCase failing = *generated;
  ScenarioEvent bad;
  bad.at = Duration::Seconds(1.0);
  bad.kind = ScenarioEvent::Kind::kNodeFailure;
  bad.node = 999;
  failing.events.insert(failing.events.begin(), bad);
  auto run = RunChaosCase(failing);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_FALSE(run->violations.empty());

  CampaignReport campaign;
  campaign.options.num_seeds = 1;
  CampaignCaseResult result;
  result.index = 0;
  result.seed = 11;
  result.chaos_case = failing;
  result.report = *run;
  campaign.results.push_back(std::move(result));
  campaign.num_failed = 1;
  campaign.num_violations =
      static_cast<int>(campaign.results[0].report.violations.size());

  const JsonValue json = CampaignReportToJson(campaign);
  const JsonValue* cases = json.Find("cases");
  ASSERT_NE(cases, nullptr);
  ASSERT_EQ(cases->size(), 1u);
  const JsonValue* flight = cases->at(0).Find("flight_record");
  ASSERT_NE(flight, nullptr) << "failing case artifact lacks the dump";
  EXPECT_GT(flight->Find("events")->size(), 0u);
}

TEST(CampaignTest, SmokeCampaignPassesAndIsJobCountInvariant) {
  CampaignOptions options;
  options.base_seed = 99;
  options.num_seeds = 6;
  options.intensity = ChaosIntensity::Medium();
  options.jobs = 1;
  auto serial = RunCampaign(options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(serial->num_failed, 0);
  EXPECT_EQ(serial->num_violations, 0);
  ASSERT_EQ(serial->results.size(), 6u);
  for (const CampaignCaseResult& result : serial->results) {
    EXPECT_EQ(result.seed,
              DeriveSeed(options.base_seed,
                         static_cast<uint64_t>(result.index)));
  }
  options.jobs = 3;
  auto parallel = RunCampaign(options);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(CampaignReportToJson(*serial).Serialize(),
            CampaignReportToJson(*parallel).Serialize());
}

TEST(CampaignTest, RejectsBadOptions) {
  CampaignOptions options;
  options.num_seeds = -1;
  EXPECT_EQ(RunCampaign(options).status().code(),
            StatusCode::kInvalidArgument);
  options.num_seeds = 1;
  options.jobs = 0;
  EXPECT_EQ(RunCampaign(options).status().code(),
            StatusCode::kInvalidArgument);
}

/// A planted bug for the minimizer: the "failure" reproduces iff the
/// schedule still contains BOTH the node-1 failure and a reconcile. All
/// other events (and all structure) are noise the minimizer must strip.
CaseOracle PlantedBugOracle(int* calls) {
  return [calls](const ChaosCase& candidate)
             -> StatusOr<std::vector<ChaosViolation>> {
    if (calls != nullptr) {
      ++*calls;
    }
    bool has_failure = false;
    bool has_reconcile = false;
    for (const ScenarioEvent& event : candidate.events) {
      has_failure |= event.kind == ScenarioEvent::Kind::kNodeFailure &&
                     event.node == 1;
      has_reconcile |= event.kind == ScenarioEvent::Kind::kReconcile;
    }
    std::vector<ChaosViolation> violations;
    if (has_failure && has_reconcile) {
      violations.push_back({"planted-bug", "node-1 failure then reconcile"});
    }
    return violations;
  };
}

ChaosCase NoisyFailingCase() {
  ChaosCase chaos_case;
  chaos_case.seed = 1;
  chaos_case.topology_spec =
      "operator src 2 rate=40\n"
      "operator mid 2 selectivity=0.8\n"
      "operator sink 1 selectivity=0.8\n"
      "edge src mid one-to-one\n"
      "edge mid sink merge\n";
  chaos_case.num_worker_nodes = 8;
  chaos_case.num_standby_nodes = 6;
  chaos_case.budget = 2;
  chaos_case.initial_plan = {0, 2};
  chaos_case.run_for_seconds = 300.0;
  // 22 events; only #7 (fail-node 1) and #15 (reconcile) matter.
  for (int i = 0; i < 22; ++i) {
    ScenarioEvent event;
    event.at = Duration::Seconds(10.0 * (i + 1));
    if (i == 7) {
      event.kind = ScenarioEvent::Kind::kNodeFailure;
      event.node = 1;
    } else if (i == 15) {
      event.kind = ScenarioEvent::Kind::kReconcile;
    } else if (i % 3 == 0) {
      event.kind = ScenarioEvent::Kind::kNodeFailure;
      event.node = 2 + (i % 5);
    } else if (i % 3 == 1) {
      event.kind = ScenarioEvent::Kind::kReviveNode;
      event.node = 2 + (i % 5);
    } else {
      event.kind = ScenarioEvent::Kind::kApplyPlan;
      event.plan = {static_cast<TaskId>(i % 4)};
    }
    chaos_case.events.push_back(event);
  }
  return chaos_case;
}

TEST(MinimizerTest, ShrinksPlantedBugToItsEssentialEvents) {
  const ChaosCase failing = NoisyFailingCase();
  ASSERT_GE(failing.events.size(), 20u);
  int calls = 0;
  const CaseOracle oracle = PlantedBugOracle(&calls);
  auto minimized = MinimizeFailingCase(failing, oracle);
  ASSERT_TRUE(minimized.ok()) << minimized.status();
  EXPECT_EQ(minimized->invariant, "planted-bug");
  EXPECT_LE(minimized->minimized.events.size(), 3u)
      << "ddmin must strip the 20 noise events";
  EXPECT_EQ(minimized->oracle_calls, calls)
      << "every oracle call is accounted (baseline included)";

  // The minimized schedule still reproduces the same invariant failure...
  auto replay = oracle(minimized->minimized);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->size(), 1u);
  EXPECT_EQ((*replay)[0].invariant, "planted-bug");
  // ...and both essential events survived.
  bool has_failure = false;
  bool has_reconcile = false;
  for (const ScenarioEvent& event : minimized->minimized.events) {
    has_failure |= event.kind == ScenarioEvent::Kind::kNodeFailure &&
                   event.node == 1;
    has_reconcile |= event.kind == ScenarioEvent::Kind::kReconcile;
  }
  EXPECT_TRUE(has_failure);
  EXPECT_TRUE(has_reconcile);
  // Structure shrinking kicked in too: the oracle ignores structure, so
  // the cluster surplus and run duration must have collapsed.
  EXPECT_LT(minimized->minimized.num_standby_nodes,
            failing.num_standby_nodes);
  EXPECT_LT(minimized->minimized.run_for_seconds, failing.run_for_seconds);
  EXPECT_LT(minimized->minimized.initial_plan.size(),
            failing.initial_plan.size());
}

TEST(MinimizerTest, PassingCaseIsRejected) {
  ChaosCase passing = NoisyFailingCase();
  passing.events.clear();
  auto minimized = MinimizeFailingCase(passing, PlantedBugOracle(nullptr));
  EXPECT_EQ(minimized.status().code(), StatusCode::kInvalidArgument);
}

TEST(MinimizerTest, RespectsOracleBudget) {
  int calls = 0;
  MinimizeOptions options;
  options.max_oracle_calls = 5;
  auto minimized = MinimizeFailingCase(NoisyFailingCase(),
                                       PlantedBugOracle(&calls), options);
  ASSERT_TRUE(minimized.ok()) << minimized.status();
  EXPECT_LE(calls, 6) << "baseline + at most max_oracle_calls candidates";
}

TEST(MinimizerTest, BuiltinOracleShrinksARealFailure) {
  // Plant a real bug via an invariant the runtime cannot satisfy: an
  // event whose node id does not exist resolves to InvalidArgument,
  // which event-sanity reports. The minimizer must isolate that event.
  auto generated = GenerateChaosCase(ChaosIntensity::Medium(), 11);
  ASSERT_TRUE(generated.ok()) << generated.status();
  ChaosCase failing = *generated;
  ScenarioEvent bad;
  bad.at = Duration::Seconds(1.0);
  bad.kind = ScenarioEvent::Kind::kNodeFailure;
  bad.node = 999;
  failing.events.insert(failing.events.begin() + 2, bad);
  auto minimized = MinimizeFailingCase(failing, BuiltinOracle());
  ASSERT_TRUE(minimized.ok()) << minimized.status();
  EXPECT_EQ(minimized->invariant, "event-sanity");
  ASSERT_EQ(minimized->minimized.events.size(), 1u);
  EXPECT_EQ(minimized->minimized.events[0].node, 999);
}

}  // namespace
}  // namespace chaos
}  // namespace ppa
