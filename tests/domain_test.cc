#include <memory>

#include <gtest/gtest.h>

#include "backend/sim_backend.h"
#include "engine/operators.h"
#include "runtime/cluster.h"
#include "runtime/domain_analysis.h"
#include "runtime/streaming_job.h"
#include "tests/test_topologies.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace {

using ::ppa::testing::MakeChain;

TEST(FailureDomainTest, DefaultDomainsAreSingletons) {
  Cluster cluster(3, 2);
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    EXPECT_EQ(cluster.DomainOf(node), node);
    EXPECT_EQ(cluster.NodesInDomain(node), std::vector<int>{node});
  }
}

TEST(FailureDomainTest, AssignmentAndLookup) {
  Cluster cluster(4, 2);
  PPA_CHECK_OK(cluster.AssignDomain(0, 100));
  PPA_CHECK_OK(cluster.AssignDomain(1, 100));
  PPA_CHECK_OK(cluster.AssignDomain(4, 100));
  EXPECT_EQ(cluster.NodesInDomain(100), (std::vector<int>{0, 1, 4}));
  EXPECT_EQ(cluster.AssignDomain(99, 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(FailureDomainTest, ReassignmentMovesNodeBetweenDomains) {
  Cluster cluster(4, 2);
  PPA_CHECK_OK(cluster.AssignDomain(0, 100));
  PPA_CHECK_OK(cluster.AssignDomain(1, 100));
  PPA_CHECK_OK(cluster.AssignDomain(0, 200));
  EXPECT_EQ(cluster.DomainOf(0), 200);
  EXPECT_EQ(cluster.NodesInDomain(100), std::vector<int>{1});
  EXPECT_EQ(cluster.NodesInDomain(200), std::vector<int>{0});
  // The vacated singleton domain (node 0's default) stays empty.
  EXPECT_TRUE(cluster.NodesInDomain(0).empty());
}

TEST(FailureDomainTest, MembershipSurvivesFailureAndRevival) {
  Cluster cluster(3, 1);
  PPA_CHECK_OK(cluster.AssignDomain(0, 7));
  PPA_CHECK_OK(cluster.AssignDomain(2, 7));
  cluster.FailNode(2);
  // Domain membership is static wiring (the rack a node sits in), not
  // liveness: a dead node still belongs to its domain.
  EXPECT_EQ(cluster.NodesInDomain(7), (std::vector<int>{0, 2}));
  EXPECT_FALSE(cluster.NodeAlive(2));
  cluster.ReviveNode(2);
  EXPECT_TRUE(cluster.NodeAlive(2));
  EXPECT_EQ(cluster.NodesInDomain(7), (std::vector<int>{0, 2}));
}

TEST(FailureDomainTest, ReplicaPlacementFallsBackInsideDomainUnderScarcity) {
  Cluster cluster(2, 2);
  Topology topo = MakeChain(1, 1, 1, PartitionScheme::kOneToOne,
                            PartitionScheme::kOneToOne);
  cluster.PlacePrimariesRoundRobin(topo);
  // Every standby shares the primary's domain; out-of-domain placement is
  // impossible, but the replica must still land somewhere.
  PPA_CHECK_OK(cluster.AssignDomain(0, 7));
  PPA_CHECK_OK(cluster.AssignDomain(2, 7));
  PPA_CHECK_OK(cluster.AssignDomain(3, 7));
  PPA_CHECK_OK(cluster.PlaceReplicaAuto(0));
  EXPECT_GE(cluster.NodeOfReplica(0), 2);
}

TEST(FailureDomainTest, ReplicaPlacementAvoidsPrimaryDomain) {
  Cluster cluster(2, 3);
  Topology topo = MakeChain(1, 1, 1, PartitionScheme::kOneToOne,
                            PartitionScheme::kOneToOne);
  cluster.PlacePrimariesRoundRobin(topo);
  // Primary of task 0 is on node 0; standby nodes 2 and 3 share its
  // domain, node 4 does not.
  PPA_CHECK_OK(cluster.AssignDomain(0, 7));
  PPA_CHECK_OK(cluster.AssignDomain(2, 7));
  PPA_CHECK_OK(cluster.AssignDomain(3, 7));
  PPA_CHECK_OK(cluster.PlaceReplicaAuto(0));
  EXPECT_EQ(cluster.NodeOfReplica(0), 4)
      << "the only standby outside the primary's domain must win";
}

std::unique_ptr<StreamingJob> MakeDomainJob(backend::ExecutionBackend* loop) {
  TopologyBuilder b;
  OperatorId src = b.AddOperator("src", 2);
  OperatorId mid = b.AddOperator("mid", 2, InputCorrelation::kIndependent,
                                 0.5);
  OperatorId sink = b.AddOperator("sink", 1, InputCorrelation::kIndependent,
                                  0.5);
  b.Connect(src, mid, PartitionScheme::kOneToOne);
  b.Connect(mid, sink, PartitionScheme::kMerge);
  b.SetSourceRate(src, 40.0);
  auto topo = b.Build();
  PPA_CHECK(topo.ok());
  JobConfig cfg;
  cfg.ft_mode = FtMode::kPpa;
  cfg.batch_interval = Duration::Seconds(1);
  cfg.detection_interval = Duration::Seconds(2);
  cfg.checkpoint_interval = Duration::Seconds(4);
  cfg.num_worker_nodes = 5;
  cfg.num_standby_nodes = 2;
  cfg.stagger_checkpoints = false;
  auto job = std::make_unique<StreamingJob>(*std::move(topo), cfg, JobRuntimeDeps(loop));
  PPA_CHECK_OK(job->BindSource(0, [] {
    return std::make_unique<SyntheticSource>(20, 64, 7);
  }));
  for (OperatorId op : {1, 2}) {
    PPA_CHECK_OK(job->BindOperator(op, [] {
      return std::make_unique<SlidingWindowAggregateOperator>(4, 0.5);
    }));
  }
  return job;
}

TEST(FailureDomainTest, DomainFailureKillsItsNodesTogether) {
  backend::SimBackend loop;
  auto job = MakeDomainJob(&loop);
  // Worker nodes 2 and 3 (hosting mid[0] and mid[1]) share a rack.
  PPA_CHECK_OK(job->cluster().AssignDomain(2, 42));
  PPA_CHECK_OK(job->cluster().AssignDomain(3, 42));
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(8.5));
  PPA_CHECK_OK(job->InjectDomainFailure(42));
  EXPECT_FALSE(job->cluster().NodeAlive(2));
  EXPECT_FALSE(job->cluster().NodeAlive(3));
  EXPECT_FALSE(job->primary(2)->alive());
  EXPECT_FALSE(job->primary(3)->alive());
  EXPECT_TRUE(job->primary(0)->alive());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(30));
  EXPECT_TRUE(job->AllRecovered());
  ASSERT_EQ(job->recovery_reports().size(), 1u);
  EXPECT_EQ(job->recovery_reports()[0].specs.size(), 2u);
}

TEST(FailureDomainTest, UnknownDomainRejected) {
  backend::SimBackend loop;
  auto job = MakeDomainJob(&loop);
  PPA_CHECK_OK(job->Start());
  EXPECT_EQ(job->InjectDomainFailure(777).code(), StatusCode::kNotFound);
}

TEST(FailureDomainTest, CrossDomainReplicaSurvivesRackOutage) {
  backend::SimBackend loop;
  auto job = MakeDomainJob(&loop);
  // Rack 1: worker 2 (mid[0]) and standby 5. Rack 2: standby 6.
  PPA_CHECK_OK(job->cluster().AssignDomain(2, 1));
  PPA_CHECK_OK(job->cluster().AssignDomain(5, 1));
  PPA_CHECK_OK(job->cluster().AssignDomain(6, 2));
  TaskSet plan(5);
  plan.Add(2);  // mid[0]
  PPA_CHECK_OK(job->SetActiveReplicaSet(plan));
  PPA_CHECK_OK(job->Start());
  // Domain-aware placement put the replica on standby 6 (outside rack 1).
  EXPECT_EQ(job->cluster().NodeOfReplica(2), 6);
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(8.5));
  PPA_CHECK_OK(job->InjectDomainFailure(1));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(20));
  ASSERT_EQ(job->recovery_reports().size(), 1u);
  // The replica survived the rack outage, so mid[0] recovered actively.
  for (const TaskRecoverySpec& spec : job->recovery_reports()[0].specs) {
    if (spec.task == 2) {
      EXPECT_EQ(spec.kind, RecoveryKind::kActiveReplica);
    }
  }
  EXPECT_TRUE(job->AllRecovered());
}

TEST(FailureDomainTest, ReviveNodeRestoresEligibility) {
  backend::SimBackend loop;
  auto job = MakeDomainJob(&loop);
  EXPECT_EQ(job->ReviveNode(0).code(), StatusCode::kFailedPrecondition)
      << "revival requires a started job";
  PPA_CHECK_OK(job->Start());
  EXPECT_EQ(job->ReviveNode(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(job->ReviveNode(99).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(job->ReviveNode(0).code(), StatusCode::kFailedPrecondition)
      << "node 0 is alive";
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(8.5));
  PPA_CHECK_OK(job->InjectNodeFailure(2));
  EXPECT_FALSE(job->cluster().NodeAlive(2));
  PPA_CHECK_OK(job->ReviveNode(2));
  EXPECT_TRUE(job->cluster().NodeAlive(2));
  EXPECT_EQ(job->trace().CountOf(obs::TraceEventKind::kNodeRevived), 1);
  // Revival restores node eligibility, never task runtimes: recovery is
  // still in flight for the primaries the failure killed.
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(30));
  EXPECT_TRUE(job->AllRecovered());
}

TEST(FailureDomainTest, ReviveDomainRevivesOnlyDeadNodes) {
  backend::SimBackend loop;
  auto job = MakeDomainJob(&loop);
  PPA_CHECK_OK(job->cluster().AssignDomain(2, 42));
  PPA_CHECK_OK(job->cluster().AssignDomain(3, 42));
  PPA_CHECK_OK(job->Start());
  EXPECT_EQ(job->ReviveDomain(777).code(), StatusCode::kNotFound);
  EXPECT_EQ(job->ReviveDomain(42).code(), StatusCode::kFailedPrecondition)
      << "every node in the domain is alive";
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(8.5));
  PPA_CHECK_OK(job->InjectDomainFailure(42));
  EXPECT_FALSE(job->cluster().NodeAlive(2));
  EXPECT_FALSE(job->cluster().NodeAlive(3));
  PPA_CHECK_OK(job->ReviveDomain(42));
  EXPECT_TRUE(job->cluster().NodeAlive(2));
  EXPECT_TRUE(job->cluster().NodeAlive(3));
  EXPECT_EQ(job->trace().CountOf(obs::TraceEventKind::kNodeRevived), 2);
}

TEST(DomainAnalysisTest, CoverageAndFidelityPerDomain) {
  // src(2) one-to-one mid(2) merge sink(1); primaries round-robin over 3
  // workers: node 0 = {src[0], mid[1]}, node 1 = {src[1], sink}, node 2 =
  // {mid[0]}.
  TopologyBuilder b;
  OperatorId src = b.AddOperator("src", 2);
  OperatorId mid = b.AddOperator("mid", 2, InputCorrelation::kIndependent,
                                 0.5);
  OperatorId sink = b.AddOperator("sink", 1);
  b.Connect(src, mid, PartitionScheme::kOneToOne);
  b.Connect(mid, sink, PartitionScheme::kMerge);
  auto topo = b.Build();
  ASSERT_TRUE(topo.ok());
  (void)src;
  (void)mid;
  (void)sink;
  Cluster cluster(3, 2);
  cluster.PlacePrimariesRoundRobin(*topo);
  // Domain 50 = nodes 0 and 1 (all of src and mid); node 2 (sink) alone.
  PPA_CHECK_OK(cluster.AssignDomain(0, 50));
  PPA_CHECK_OK(cluster.AssignDomain(1, 50));

  TaskSet plan(topo->num_tasks());
  auto no_plan = AnalyzeDomainFailure(*topo, cluster, plan, 50);
  ASSERT_TRUE(no_plan.ok());
  EXPECT_EQ(no_plan->tasks_hosted, 4);  // src[0], src[1], mid[1], sink.
  EXPECT_EQ(no_plan->tasks_covered, 0);
  EXPECT_DOUBLE_EQ(no_plan->fidelity, 0.0);

  // Replicate src[0] (task 0) and the sink (task 4) on standbys outside
  // the domain; with mid[0] surviving on node 2, half the stream rides
  // through a domain-50 outage.
  plan.Add(0);
  plan.Add(4);
  PPA_CHECK_OK(cluster.PlaceReplicaAuto(0));
  PPA_CHECK_OK(cluster.PlaceReplicaAuto(4));
  auto with_plan = AnalyzeDomainFailure(*topo, cluster, plan, 50);
  ASSERT_TRUE(with_plan.ok());
  EXPECT_EQ(with_plan->tasks_covered, 2);
  EXPECT_NEAR(with_plan->fidelity, 0.5, 1e-12);

  // A replica placed INSIDE the failing domain provides no cover.
  Cluster bad(3, 2);
  bad.PlacePrimariesRoundRobin(*topo);
  PPA_CHECK_OK(bad.AssignDomain(0, 50));
  PPA_CHECK_OK(bad.AssignDomain(1, 50));
  PPA_CHECK_OK(bad.AssignDomain(3, 50));
  PPA_CHECK_OK(bad.AssignDomain(4, 50));  // Both standbys in the domain.
  PPA_CHECK_OK(bad.PlaceReplicaAuto(0));
  PPA_CHECK_OK(bad.PlaceReplicaAuto(4));
  auto uncovered = AnalyzeDomainFailure(*topo, bad, plan, 50);
  ASSERT_TRUE(uncovered.ok());
  EXPECT_EQ(uncovered->tasks_covered, 0);
  EXPECT_DOUBLE_EQ(uncovered->fidelity, 0.0);
}

TEST(DomainAnalysisTest, AllDomainsSortedWorstFirst) {
  TopologyBuilder b;
  OperatorId src = b.AddOperator("src", 2);
  OperatorId sink = b.AddOperator("sink", 1);
  b.Connect(src, sink, PartitionScheme::kMerge);
  auto topo = b.Build();
  ASSERT_TRUE(topo.ok());
  Cluster cluster(3, 1);
  cluster.PlacePrimariesRoundRobin(*topo);
  TaskSet plan(topo->num_tasks());
  auto impacts = AnalyzeAllDomains(*topo, cluster, plan);
  ASSERT_TRUE(impacts.ok());
  // Three singleton domains host primaries; the sink's domain is worst
  // (fidelity 0), source domains lose half each.
  ASSERT_EQ(impacts->size(), 3u);
  EXPECT_DOUBLE_EQ((*impacts)[0].fidelity, 0.0);
  EXPECT_EQ((*impacts)[0].domain, 2);  // Node 2 hosts the sink.
  EXPECT_NEAR((*impacts)[1].fidelity, 0.5, 1e-12);
  EXPECT_NEAR((*impacts)[2].fidelity, 0.5, 1e-12);
  for (size_t i = 1; i < impacts->size(); ++i) {
    EXPECT_LE((*impacts)[i - 1].fidelity, (*impacts)[i].fidelity);
  }
}

}  // namespace
}  // namespace ppa
