#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "backend/sim_backend.h"
#include "fidelity/metrics.h"
#include "planner/structure_aware_planner.h"
#include "workloads/accuracy.h"
#include "workloads/incident.h"
#include "workloads/synthetic_recovery.h"
#include "workloads/topk.h"

namespace ppa {
namespace {

JobConfig SmallConfig(FtMode mode, int workers, int standbys) {
  JobConfig cfg;
  cfg.ft_mode = mode;
  cfg.batch_interval = Duration::Seconds(1);
  cfg.detection_interval = Duration::Seconds(2);
  cfg.checkpoint_interval = Duration::Seconds(5);
  cfg.replica_sync_interval = Duration::Seconds(2);
  cfg.num_worker_nodes = workers;
  cfg.num_standby_nodes = standbys;
  cfg.stagger_checkpoints = false;
  return cfg;
}

TEST(SyntheticRecoveryTest, TopologyMatchesFig6) {
  auto w = MakeSyntheticRecoveryWorkload(1000, 10);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->topo.num_operators(), 5);
  EXPECT_EQ(w->topo.num_tasks(), 16 + 8 + 4 + 2 + 1);
  EXPECT_EQ(w->topo.op(w->source).parallelism, 16);
  EXPECT_EQ(w->topo.op(w->o4).parallelism, 1);
  // Every synthetic task drains exactly two upstream tasks.
  for (OperatorId op : {w->o1, w->o2, w->o3, w->o4}) {
    for (TaskId t : w->topo.op(op).tasks) {
      EXPECT_EQ(w->topo.task(t).in_substreams.size(), 2u);
    }
  }
}

TEST(SyntheticRecoveryTest, PlacementPinsSourcesAndSynthetics) {
  auto w = MakeSyntheticRecoveryWorkload(100, 5);
  ASSERT_TRUE(w.ok());
  backend::SimBackend loop;
  JobConfig cfg = SmallConfig(FtMode::kCheckpoint, 19, 15);
  StreamingJob job(w->topo, cfg, JobRuntimeDeps(&loop));
  ASSERT_TRUE(BindSyntheticRecoveryWorkload(*w, &job).ok());
  auto nodes = PlaceSyntheticRecoveryWorkload(*w, &job);
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes->size(), 15u);
  // Source nodes 0-3 are not among the synthetic nodes.
  for (int node : *nodes) {
    EXPECT_GE(node, 4);
  }
  ASSERT_TRUE(job.Start().ok());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(5));
  EXPECT_FALSE(job.sink_records().empty());
}

TEST(SyntheticRecoveryTest, RunsAndRecoversFromCorrelatedFailure) {
  auto w = MakeSyntheticRecoveryWorkload(100, 5);
  ASSERT_TRUE(w.ok());
  backend::SimBackend loop;
  StreamingJob job(w->topo, SmallConfig(FtMode::kCheckpoint, 19, 15), JobRuntimeDeps(&loop));
  ASSERT_TRUE(BindSyntheticRecoveryWorkload(*w, &job).ok());
  ASSERT_TRUE(PlaceSyntheticRecoveryWorkload(*w, &job).ok());
  ASSERT_TRUE(job.Start().ok());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(12.2));
  ASSERT_TRUE(job.InjectCorrelatedFailure().ok());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(90));
  EXPECT_TRUE(job.AllRecovered());
  ASSERT_EQ(job.recovery_reports().size(), 1u);
  EXPECT_EQ(job.recovery_reports()[0].specs.size(), 15u);
}

TEST(WorldCupSourceTest, DeterministicAndZipfSkewed) {
  WorldCupSource::Options opts;
  opts.tuples_per_batch_per_task = 5000;
  WorldCupSource a(opts), b(opts);
  auto ta = a.NextBatch(3, 1);
  auto tb = b.NextBatch(3, 1);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].key, tb[i].key);
  }
  // Popularity skew: url0 much more frequent than url100.
  int url0 = 0, url100 = 0;
  for (const Tuple& t : ta) {
    url0 += t.key == "url0";
    url100 += t.key == "url100";
  }
  EXPECT_GT(url0, url100 * 2);
}

TEST(WorldCupSourceTest, RateWaveModulatesVolume) {
  WorldCupSource::Options opts;
  opts.tuples_per_batch_per_task = 1000;
  opts.rate_wave_amplitude = 0.5;
  opts.rate_wave_period_batches = 20;
  WorldCupSource src(opts);
  // Peak of the wave (quarter period) vs trough (three quarters).
  const size_t peak = src.NextBatch(5, 0).size();
  const size_t trough = src.NextBatch(15, 0).size();
  EXPECT_GT(peak, 1400u);
  EXPECT_LT(trough, 600u);
  // Different tasks are phase-shifted: not all peak together.
  const size_t other = src.NextBatch(5, 4).size();
  EXPECT_NE(other, peak);
  // Determinism still holds.
  WorldCupSource again(opts);
  EXPECT_EQ(again.NextBatch(5, 0).size(), peak);
}

TEST(TopKOperatorTest, EmitsTopKByValue) {
  TopKOperator op(2, 10);
  BatchContext ctx(0, 0, 1);
  std::vector<Tuple> inputs;
  for (const auto& [k, v] : std::vector<std::pair<std::string, int64_t>>{
           {"a", 5}, {"b", 9}, {"c", 7}}) {
    Tuple t;
    t.key = k;
    t.value = v;
    inputs.push_back(std::move(t));
  }
  op.ProcessBatch(&ctx, inputs);
  ASSERT_EQ(ctx.emitted().size(), 2u);
  EXPECT_EQ(ctx.emitted()[0].key, "b");
  EXPECT_EQ(ctx.emitted()[1].key, "c");
}

TEST(TopKOperatorTest, KeepsLatestValueAndEvicts) {
  TopKOperator op(10, 2);
  {
    BatchContext ctx(0, 0, 1);
    Tuple t;
    t.key = "a";
    t.value = 100;
    op.ProcessBatch(&ctx, {t});
  }
  {
    BatchContext ctx(1, 0, 1);
    Tuple t;
    t.key = "a";
    t.value = 5;  // Latest wins, not max.
    op.ProcessBatch(&ctx, {t});
    ASSERT_EQ(ctx.emitted().size(), 1u);
    EXPECT_EQ(ctx.emitted()[0].value, 5);
  }
  {
    // Two empty batches later, "a" is evicted.
    BatchContext c2(2, 0, 1);
    op.ProcessBatch(&c2, {});
    BatchContext c3(3, 0, 1);
    op.ProcessBatch(&c3, {});
    EXPECT_EQ(op.StateSizeTuples(), 0);
  }
}

TEST(TopKWorkloadTest, CleanRunProducesStableTopK) {
  WorldCupSource::Options opts;
  opts.tuples_per_batch_per_task = 500;
  opts.url_population = 500;
  auto w = MakeTopKWorkload(opts, /*count_window_batches=*/10, /*k=*/20);
  ASSERT_TRUE(w.ok());
  backend::SimBackend loop;
  StreamingJob job(w->topo, SmallConfig(FtMode::kCheckpoint, 21, 10), JobRuntimeDeps(&loop));
  ASSERT_TRUE(BindTopKWorkload(*w, &job).ok());
  ASSERT_TRUE(job.Start().ok());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(20));
  // The final batches contain a top-20 dominated by hot urls.
  auto keys = SinkKeySet(job.sink_records(), 15, 19);
  EXPECT_FALSE(keys.empty());
  EXPECT_TRUE(keys.count("url0") == 1);
  EXPECT_TRUE(keys.count("url1") == 1);
}

TEST(TopKWorkloadTest, PpaTentativeAccuracyDegradesGracefully) {
  WorldCupSource::Options opts;
  opts.tuples_per_batch_per_task = 300;
  opts.url_population = 300;
  auto w = MakeTopKWorkload(opts, 10, 20);
  ASSERT_TRUE(w.ok());

  // Slow down passive recovery so the tentative window spans the
  // measurement range (the paper's recoveries take tens of seconds).
  JobConfig ppa_cfg = SmallConfig(FtMode::kPpa, 21, 21);
  ppa_cfg.recovery.replay_rate_tuples_per_sec = 200.0;
  ppa_cfg.recovery.task_restart_delay = Duration::Seconds(5);

  struct Outcome {
    std::vector<SinkRecord> records;
    int64_t tentative_end_batch = 0;
  };
  auto run = [&](int budget) {
    backend::SimBackend loop;
    StreamingJob job(w->topo, ppa_cfg, JobRuntimeDeps(&loop));
    PPA_CHECK_OK(BindTopKWorkload(*w, &job));
    TaskSet plan(w->topo.num_tasks());
    if (budget > 0) {
      StructureAwarePlanner planner;
      auto p = planner.Plan({w->topo, budget});
      PPA_CHECK_OK(p.status());
      plan = p->replicated;
    }
    PPA_CHECK_OK(job.SetActiveReplicaSet(plan));
    PPA_CHECK_OK(job.Start());
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(15.3));
    PPA_CHECK_OK(job.InjectCorrelatedFailure(/*include_sources=*/true));
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
    Outcome outcome;
    outcome.records = job.sink_records();
    PPA_CHECK(job.recovery_reports().size() == 1);
    const RecoveryReport& report = job.recovery_reports()[0];
    // The tentative phase ends when passive recovery completes.
    outcome.tentative_end_batch =
        (report.detection_time + report.PassiveLatency()).micros() /
        ppa_cfg.batch_interval.micros();
    return outcome;
  };

  // Reference: failure-free run.
  backend::SimBackend clean_loop;
  StreamingJob clean(w->topo, SmallConfig(FtMode::kPpa, 21, 21),
                     JobRuntimeDeps(&clean_loop));
  PPA_CHECK_OK(BindTopKWorkload(*w, &clean));
  PPA_CHECK_OK(clean.Start());
  clean_loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));

  const Outcome some = run(w->topo.num_tasks() / 2);
  const Outcome none = run(0);

  // Measurement window: from detection (16 s) until the earliest passive
  // recovery completion of the two runs; only timely outputs count —
  // recovery replay delivers old batches late.
  const int64_t window_end =
      std::min(some.tentative_end_batch, none.tentative_end_batch) - 1;
  ASSERT_GT(window_end, 17);
  const Duration interval = ppa_cfg.batch_interval;
  const double with_plan =
      PerBatchSetAccuracy(FilterTimely(some.records, interval, 0),
                          clean.sink_records(), 17, window_end);
  const double without_plan =
      PerBatchSetAccuracy(FilterTimely(none.records, interval, 0),
                          clean.sink_records(), 17, window_end);
  EXPECT_LE(with_plan, 1.0);
  EXPECT_NEAR(without_plan, 0.0, 1e-9)
      << "with no replicas and every task failed, no tentative output "
         "can be produced";
  EXPECT_GT(with_plan, without_plan)
      << "replicating half the tasks must improve tentative accuracy";
}

TEST(IncidentScheduleTest, DeterministicAndPopulationWeighted) {
  IncidentSchedule::Options opts;
  opts.num_segments = 100;
  opts.num_users = 10000;
  IncidentSchedule a(opts), b(opts);
  int64_t total_pop = 0;
  for (int s = 0; s < opts.num_segments; ++s) {
    EXPECT_EQ(a.Population(s), b.Population(s));
    total_pop += a.Population(s);
  }
  // Rounding keeps the total close to the configured population.
  EXPECT_NEAR(static_cast<double>(total_pop), 10000.0, 200.0);
  // Zipf rank 0 is the most crowded segment.
  EXPECT_GT(a.Population(0), a.Population(opts.num_segments - 1));
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(a.SegmentOfIncident(i), b.SegmentOfIncident(i));
  }
}

TEST(IncidentScheduleTest, IncidentTimingAndJam) {
  IncidentSchedule::Options opts;
  opts.incident_period_batches = 2;
  opts.jam_batches = 4;
  IncidentSchedule sched(opts);
  EXPECT_EQ(sched.IncidentStartingAt(0), 0);
  EXPECT_EQ(sched.IncidentStartingAt(1), -1);
  EXPECT_EQ(sched.IncidentStartingAt(2), 1);
  const int seg = sched.SegmentOfIncident(3);  // Starts at batch 6.
  EXPECT_TRUE(sched.Jammed(seg, 6));
  EXPECT_TRUE(sched.Jammed(seg, 9));
  auto ids = sched.IncidentsIn(0, 6);
  EXPECT_EQ(ids.size(), 4u);  // Incidents 0..3.
}

TEST(IncidentWorkloadTest, CleanRunDetectsScheduledIncidents) {
  IncidentSchedule::Options opts;
  opts.num_segments = 50;
  opts.num_users = 2000;
  opts.incident_period_batches = 2;
  opts.jam_batches = 6;
  IncidentSchedule schedule(opts);
  auto w = MakeIncidentWorkload(opts, /*location_rate_per_task=*/400);
  ASSERT_TRUE(w.ok());
  backend::SimBackend loop;
  StreamingJob job(w->topo, SmallConfig(FtMode::kCheckpoint, 25, 10), JobRuntimeDeps(&loop));
  ASSERT_TRUE(BindIncidentWorkload(*w, &schedule, &job).ok());
  ASSERT_TRUE(job.Start().ok());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(30));
  const auto alarms = SinkKeySet(job.sink_records(), 0, 29);
  EXPECT_FALSE(alarms.empty());
  // Every alarm corresponds to a scheduled incident.
  for (const std::string& alarm : alarms) {
    ASSERT_EQ(alarm.substr(0, 3), "inc");
    const int64_t id = std::stoll(alarm.substr(3));
    EXPECT_GE(id, 0);
    EXPECT_LE(id, 29 / opts.incident_period_batches);
  }
  // A healthy majority of incidents in the steady window is detected.
  const auto expected = schedule.IncidentsIn(5, 25);
  size_t detected = 0;
  for (int64_t id : expected) {
    detected += alarms.count("inc" + std::to_string(id));
  }
  EXPECT_GT(static_cast<double>(detected),
            0.6 * static_cast<double>(expected.size()));
}

TEST(IncidentWorkloadTest, JoinRequiresBothStreams) {
  // Failing every speed task (without replicas) suppresses alarms even
  // though incident reports still flow: the join operator's correlated
  // input makes the lost speed stream fatal once the pre-failure speed
  // observations expire.
  IncidentSchedule::Options opts;
  opts.num_segments = 50;
  opts.num_users = 2000;
  IncidentSchedule schedule(opts);
  auto w = MakeIncidentWorkload(opts, 400);
  ASSERT_TRUE(w.ok());
  JobConfig cfg = SmallConfig(FtMode::kPpa, 25, 10);
  // Keep the speed tasks down for the whole measurement window.
  cfg.recovery.replay_rate_tuples_per_sec = 100.0;
  cfg.recovery.task_restart_delay = Duration::Seconds(20);

  // Reference: failure-free run.
  backend::SimBackend clean_loop;
  StreamingJob clean(w->topo, cfg, JobRuntimeDeps(&clean_loop));
  ASSERT_TRUE(BindIncidentWorkload(*w, &schedule, &clean).ok());
  ASSERT_TRUE(clean.Start().ok());
  clean_loop.RunUntil(TimePoint::Zero() + Duration::Seconds(30));

  backend::SimBackend loop;
  StreamingJob job(w->topo, cfg, JobRuntimeDeps(&loop));
  ASSERT_TRUE(BindIncidentWorkload(*w, &schedule, &job).ok());
  ASSERT_TRUE(job.SetActiveReplicaSet(TaskSet(w->topo.num_tasks())).ok());
  ASSERT_TRUE(job.Start().ok());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10.4));
  // Fail all nodes hosting speed tasks (round-robin may co-host others).
  std::set<int> nodes;
  for (TaskId t : w->topo.op(w->speed).tasks) {
    nodes.insert(job.cluster().NodeOfPrimary(t));
  }
  for (int node : nodes) {
    PPA_CHECK_OK(job.InjectNodeFailure(node));
  }
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(30));

  const auto timely =
      FilterTimely(job.sink_records(), cfg.batch_interval, 2);
  // Every tentative alarm is a real incident (a subset of the clean run's
  // alarms over the same window)...
  const auto tentative_alarms = SinkKeySet(timely, 13, 28);
  const auto clean_alarms = SinkKeySet(clean.sink_records(), 13, 28);
  for (const std::string& alarm : tentative_alarms) {
    EXPECT_EQ(clean_alarms.count(alarm), 1u) << alarm;
  }
  // ... and once the stale speed observations expire (3 batches after the
  // failure), no new alarms can fire: far fewer alarms than clean.
  EXPECT_LT(tentative_alarms.size(), clean_alarms.size());
  const auto late_window = SinkKeySet(timely, 16, 28);
  const auto clean_late = SinkKeySet(clean.sink_records(), 16, 28);
  EXPECT_LT(static_cast<double>(late_window.size()),
            0.5 * static_cast<double>(clean_late.size()) + 1.0);
}

// The strong recovery-correctness property holds on the real query
// pipelines too: a checkpoint-recovered Q1 run is indistinguishable from a
// failure-free one.
TEST(TopKWorkloadTest, CheckpointRecoveryReproducesTopKExactly) {
  WorldCupSource::Options opts;
  opts.tuples_per_batch_per_task = 200;
  opts.url_population = 300;
  auto w = MakeTopKWorkload(opts, 8, 20, TopKParallelism::Reduced());
  ASSERT_TRUE(w.ok());
  auto run = [&](int fail_node) {
    backend::SimBackend loop;
    StreamingJob job(w->topo, SmallConfig(FtMode::kCheckpoint, 12, 6),
                     JobRuntimeDeps(&loop));
    PPA_CHECK_OK(BindTopKWorkload(*w, &job));
    PPA_CHECK_OK(job.Start());
    if (fail_node >= 0) {
      loop.RunUntil(TimePoint::Zero() + Duration::Seconds(12.5));
      PPA_CHECK_OK(job.InjectNodeFailure(fail_node));
    }
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40));
    PPA_CHECK(fail_node < 0 || job.AllRecovered());
    return job.sink_records();
  };
  const auto clean = run(-1);
  ASSERT_FALSE(clean.empty());
  // Fail the node of count[0] (task index 4 under reduced parallelism 4+4).
  const auto failed = run(4 % 12);
  ASSERT_EQ(failed.size(), clean.size());
  for (size_t i = 0; i < failed.size(); ++i) {
    ASSERT_EQ(failed[i].tuple, clean[i].tuple) << "record " << i;
  }
}

// ... and on Q2, including its correlated-input join.
TEST(IncidentWorkloadTest, CheckpointRecoveryReproducesAlarmsExactly) {
  IncidentSchedule::Options opts;
  opts.num_segments = 40;
  opts.num_users = 1500;
  static IncidentSchedule schedule(opts);
  auto w = MakeIncidentWorkload(opts, 200, IncidentParallelism::Reduced());
  ASSERT_TRUE(w.ok());
  auto run = [&](bool fail) {
    backend::SimBackend loop;
    StreamingJob job(w->topo, SmallConfig(FtMode::kCheckpoint, 16, 8),
                     JobRuntimeDeps(&loop));
    PPA_CHECK_OK(BindIncidentWorkload(*w, &schedule, &job));
    PPA_CHECK_OK(job.Start());
    if (fail) {
      loop.RunUntil(TimePoint::Zero() + Duration::Seconds(11.5));
      // Fail the node hosting join[0].
      PPA_CHECK_OK(job.InjectNodeFailure(
          job.cluster().NodeOfPrimary(w->topo.op(w->join).tasks[0])));
    }
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40));
    PPA_CHECK(!fail || job.AllRecovered());
    return job.sink_records();
  };
  const auto clean = run(false);
  const auto failed = run(true);
  ASSERT_EQ(failed.size(), clean.size());
  for (size_t i = 0; i < failed.size(); ++i) {
    ASSERT_EQ(failed[i].tuple, clean[i].tuple) << "record " << i;
  }
}

TEST(AccuracyHelpersTest, PerBatchAndDistinct) {
  auto rec = [](const char* key, int64_t batch) {
    SinkRecord r;
    r.tuple.key = key;
    r.tuple.batch = batch;
    return r;
  };
  std::vector<SinkRecord> ref = {rec("a", 0), rec("b", 0), rec("a", 1),
                                 rec("c", 1)};
  std::vector<SinkRecord> test = {rec("a", 0), rec("x", 0), rec("a", 1),
                                  rec("c", 1)};
  // Batch 0: 1/2, batch 1: 2/2 -> mean 0.75.
  EXPECT_NEAR(PerBatchSetAccuracy(test, ref, 0, 1), 0.75, 1e-12);
  // Distinct over both batches: test hits {a, c} of ref {a, b, c}.
  EXPECT_NEAR(DistinctSetAccuracy(test, ref, 0, 1), 2.0 / 3.0, 1e-12);
  // Empty reference: accuracy defaults to 1.
  EXPECT_DOUBLE_EQ(PerBatchSetAccuracy(test, {}, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(DistinctSetAccuracy(test, {}, 0, 1), 1.0);
}

}  // namespace
}  // namespace ppa
