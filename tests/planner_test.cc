#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "fidelity/metrics.h"
#include "planner/decompose.h"
#include "planner/dp_planner.h"
#include "planner/exhaustive_planner.h"
#include "planner/extract.h"
#include "planner/greedy_planner.h"
#include "planner/planner.h"
#include "planner/structure_aware_planner.h"
#include "planner/units.h"
#include "tests/test_topologies.h"
#include "topology/random_topology.h"

namespace ppa {
namespace {

using ::ppa::testing::Fig2Topology;
using ::ppa::testing::MakeChain;
using ::ppa::testing::MakeFig2;

/// Exhaustive optimum over all task subsets of size <= budget.
double BruteForceBestOf(const Topology& topo, int budget) {
  const int n = topo.num_tasks();
  PPA_CHECK(n <= 20);
  double best = 0.0;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    if (__builtin_popcountll(mask) > budget) {
      continue;
    }
    TaskSet plan(n);
    for (int i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) {
        plan.Add(static_cast<TaskId>(i));
      }
    }
    best = std::max(best, PlanOutputFidelity(topo, plan));
  }
  return best;
}

TEST(GreedyPlannerTest, RespectsBudget) {
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  GreedyPlanner planner;
  for (int budget = 0; budget <= f.topo.num_tasks() + 2; ++budget) {
    auto plan = planner.Plan({f.topo, budget});
    ASSERT_TRUE(plan.ok());
    EXPECT_LE(plan->resource_usage(),
              std::min(budget, f.topo.num_tasks()));
  }
}

TEST(GreedyPlannerTest, RejectsNegativeBudget) {
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  GreedyPlanner planner;
  EXPECT_EQ(planner.Plan({f.topo, -1}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GreedyPlannerTest, PicksMostDamagingTasksFirst) {
  // In Fig. 2 the sink t31 is the most damaging single failure (OF drops to
  // 0), so it must be in every nonempty greedy plan.
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  GreedyPlanner planner;
  auto plan = planner.Plan({f.topo, 1});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->replicated.Contains(f.t31));
}

TEST(GreedyPlannerTest, FullBudgetReachesFullFidelity) {
  Fig2Topology f = MakeFig2(InputCorrelation::kCorrelated);
  GreedyPlanner planner;
  auto plan = planner.Plan({f.topo, f.topo.num_tasks()});
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->output_fidelity, 1.0);
}

TEST(DpPlannerTest, MatchesBruteForceOnFig2) {
  for (InputCorrelation corr : {InputCorrelation::kIndependent,
                                InputCorrelation::kCorrelated}) {
    Fig2Topology f = MakeFig2(corr);
    DpPlanner planner;
    for (int budget = 0; budget <= f.topo.num_tasks(); ++budget) {
      auto plan = planner.Plan({f.topo, budget});
      ASSERT_TRUE(plan.ok());
      EXPECT_NEAR(plan->output_fidelity, BruteForceBestOf(f.topo, budget),
                  1e-12)
          << "budget " << budget << " correlation "
          << InputCorrelationToString(corr);
      EXPECT_LE(plan->resource_usage(), budget);
    }
  }
}

TEST(DpPlannerTest, MatchesBruteForceOnChains) {
  const Topology topologies[] = {
      MakeChain(2, 2, 2, PartitionScheme::kOneToOne,
                PartitionScheme::kOneToOne),
      MakeChain(4, 2, 1, PartitionScheme::kMerge, PartitionScheme::kMerge),
      MakeChain(2, 4, 2, PartitionScheme::kSplit, PartitionScheme::kMerge),
      MakeChain(2, 2, 1, PartitionScheme::kFull, PartitionScheme::kFull),
  };
  DpPlanner planner;
  for (const Topology& topo : topologies) {
    for (int budget : {0, 2, 3, 4, topo.num_tasks()}) {
      auto plan = planner.Plan({topo, budget});
      ASSERT_TRUE(plan.ok());
      EXPECT_NEAR(plan->output_fidelity, BruteForceBestOf(topo, budget),
                  1e-12);
    }
  }
}

TEST(DpPlannerTest, SkewedRatesChangeTheOptimalTree) {
  // With task weights 3:2 on O2, the optimal single-MC-tree plan must pick
  // t21 (rate 3) over t22 (rate 2).
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  DpPlanner planner;
  auto plan = planner.Plan({f.topo, 2});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->replicated.Contains(f.t21));
  EXPECT_TRUE(plan->replicated.Contains(f.t31));
  EXPECT_NEAR(plan->output_fidelity, 3.0 / 8.0, 1e-12);
}

TEST(StructureAwarePlannerTest, RespectsBudgetAndFillsIt) {
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  StructureAwarePlanner planner;
  for (int budget = 0; budget <= f.topo.num_tasks(); ++budget) {
    auto plan = planner.Plan({f.topo, budget});
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan->resource_usage(), budget) << "fill_budget should use "
                                                 "the full budget";
  }
}

TEST(StructureAwarePlannerTest, FindsACompleteTreeWithMinimalBudget) {
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  StructureAwarePlanner planner;
  auto plan = planner.Plan({f.topo, 2});
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->output_fidelity, 0.0);
}

TEST(StructureAwarePlannerTest, NearOptimalOnSmallTopologies) {
  // SA is a heuristic; on these small cases it should be close to DP.
  const Topology topologies[] = {
      MakeChain(4, 2, 1, PartitionScheme::kMerge, PartitionScheme::kMerge),
      MakeChain(2, 4, 2, PartitionScheme::kSplit, PartitionScheme::kMerge),
      MakeChain(2, 2, 1, PartitionScheme::kFull, PartitionScheme::kFull),
  };
  DpPlanner dp;
  StructureAwarePlanner sa;
  for (const Topology& topo : topologies) {
    for (int budget : {3, 4, topo.num_tasks() / 2}) {
      auto dp_plan = dp.Plan({topo, budget});
      auto sa_plan = sa.Plan({topo, budget});
      ASSERT_TRUE(dp_plan.ok());
      ASSERT_TRUE(sa_plan.ok());
      EXPECT_GE(sa_plan->output_fidelity,
                0.6 * dp_plan->output_fidelity - 1e-12);
    }
  }
}

TEST(ExhaustivePlannerTest, MatchesBruteForceHelperAndRefusesBigInputs) {
  Fig2Topology f = MakeFig2(InputCorrelation::kCorrelated);
  ExhaustivePlanner planner;
  for (int budget = 0; budget <= f.topo.num_tasks(); ++budget) {
    auto plan = planner.Plan({f.topo, budget});
    ASSERT_TRUE(plan.ok());
    EXPECT_NEAR(plan->output_fidelity, BruteForceBestOf(f.topo, budget),
                1e-12);
  }
  ExhaustivePlanner tiny(/*max_tasks=*/4);
  EXPECT_EQ(tiny.Plan({f.topo, 2}).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(RandomPlannerTest, DeterministicAndBudgetRespecting) {
  Fig2Topology f = MakeFig2(InputCorrelation::kIndependent);
  RandomPlanner a(7), b(7), c(8);
  auto pa = a.Plan({f.topo, 3});
  auto pb = b.Plan({f.topo, 3});
  auto pc = c.Plan({f.topo, 3});
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  ASSERT_TRUE(pc.ok());
  EXPECT_EQ(pa->replicated.ToVector(), pb->replicated.ToVector());
  EXPECT_EQ(pa->resource_usage(), 3);
  // Different seeds usually pick different sets (5 choose 3 = 10 options).
  EXPECT_EQ(pc->resource_usage(), 3);
}

// DP's optimality holds against the independent exhaustive oracle on
// random topologies (Theorem 1).
class DpOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DpOptimalityTest, DpMatchesExhaustiveOracle) {
  Rng rng(GetParam() * 6151 + 3);
  RandomTopologyOptions opts;
  opts.min_operators = 3;
  opts.max_operators = 5;
  opts.min_parallelism = 1;
  opts.max_parallelism = 3;
  opts.join_fraction = 0.5;
  opts.kind = (GetParam() % 2 == 0) ? RandomTopologyOptions::Kind::kStructured
                                    : RandomTopologyOptions::Kind::kFull;
  opts.skew = RandomTopologyOptions::WorkloadSkew::kZipf;
  opts.zipf_s = 0.5;
  auto topo = GenerateRandomTopology(opts, &rng);
  ASSERT_TRUE(topo.ok());
  if (topo->num_tasks() > 14) {
    GTEST_SKIP() << "exhaustive oracle too slow";
  }
  DpPlanner dp;
  ExhaustivePlanner oracle;
  for (int budget : {2, topo->num_tasks() / 2, topo->num_tasks()}) {
    auto dp_plan = dp.Plan({*topo, budget});
    auto oracle_plan = oracle.Plan({*topo, budget});
    ASSERT_TRUE(dp_plan.ok());
    ASSERT_TRUE(oracle_plan.ok());
    EXPECT_NEAR(dp_plan->output_fidelity, oracle_plan->output_fidelity,
                1e-12)
        << "budget " << budget;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, DpOptimalityTest,
                         ::testing::Range(uint64_t{0}, uint64_t{16}));

TEST(PlannerFactoryTest, CreatesAllKinds) {
  for (PlannerKind kind : {PlannerKind::kDynamicProgramming,
                           PlannerKind::kGreedy,
                           PlannerKind::kStructureAware}) {
    auto planner = CreatePlanner(kind);
    ASSERT_NE(planner, nullptr);
    EXPECT_FALSE(planner->name().empty());
  }
}

// Property sweep over random topologies: DP dominates SA dominates (on
// average) Greedy; all plans respect budgets and report consistent OF.
class PlannerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerPropertyTest, DpDominatesAndPlansAreConsistent) {
  Rng rng(GetParam() * 7919 + 1);
  RandomTopologyOptions opts;
  opts.min_operators = 4;
  opts.max_operators = 6;
  opts.min_parallelism = 1;
  opts.max_parallelism = 3;
  opts.join_fraction = 0.5;
  opts.kind = (GetParam() % 2 == 0) ? RandomTopologyOptions::Kind::kStructured
                                    : RandomTopologyOptions::Kind::kFull;
  auto topo = GenerateRandomTopology(opts, &rng);
  ASSERT_TRUE(topo.ok());
  const int budget = std::max(2, topo->num_tasks() / 2);

  DpPlanner dp;
  GreedyPlanner greedy;
  StructureAwarePlanner sa;
  auto dp_plan = dp.Plan({*topo, budget});
  auto greedy_plan = greedy.Plan({*topo, budget});
  auto sa_plan = sa.Plan({*topo, budget});
  ASSERT_TRUE(dp_plan.ok()) << dp_plan.status();
  ASSERT_TRUE(greedy_plan.ok());
  ASSERT_TRUE(sa_plan.ok()) << sa_plan.status();

  for (const auto* plan : {&*dp_plan, &*greedy_plan, &*sa_plan}) {
    EXPECT_LE(plan->resource_usage(), budget);
    EXPECT_NEAR(plan->output_fidelity,
                PlanOutputFidelity(*topo, plan->replicated), 1e-12);
  }
  EXPECT_GE(dp_plan->output_fidelity, sa_plan->output_fidelity - 1e-9);
  EXPECT_GE(dp_plan->output_fidelity, greedy_plan->output_fidelity - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, PlannerPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{24}));

TEST(PlannerComparisonTest, SaBeatsGreedyOnAverage) {
  // The paper's headline planning result (Fig. 14): with limited budgets,
  // the structure-aware planner achieves much higher OF than the
  // structure-agnostic greedy.
  Rng rng(2024);
  RandomTopologyOptions opts;
  opts.min_operators = 5;
  opts.max_operators = 8;
  opts.min_parallelism = 1;
  opts.max_parallelism = 4;
  GreedyPlanner greedy;
  StructureAwarePlanner sa;
  double sa_total = 0.0, greedy_total = 0.0;
  const int kTrials = 30;
  for (int i = 0; i < kTrials; ++i) {
    auto topo = GenerateRandomTopology(opts, &rng);
    ASSERT_TRUE(topo.ok());
    const int budget = std::max(2, topo->num_tasks() / 5);
    auto sa_plan = sa.Plan({*topo, budget});
    auto greedy_plan = greedy.Plan({*topo, budget});
    ASSERT_TRUE(sa_plan.ok());
    ASSERT_TRUE(greedy_plan.ok());
    sa_total += sa_plan->output_fidelity;
    greedy_total += greedy_plan->output_fidelity;
  }
  EXPECT_GT(sa_total, greedy_total);
}

TEST(DecomposeTest, UniformStructuredTopologyStaysWhole) {
  Topology t = MakeChain(4, 2, 1, PartitionScheme::kMerge,
                         PartitionScheme::kMerge);
  auto subs = DecomposeTopology(t);
  ASSERT_TRUE(subs.ok());
  EXPECT_EQ(subs->size(), 1u);
  EXPECT_FALSE((*subs)[0].is_full);
}

TEST(DecomposeTest, UniformFullTopologyStaysWhole) {
  Topology t = MakeChain(2, 2, 1, PartitionScheme::kFull,
                         PartitionScheme::kFull);
  auto subs = DecomposeTopology(t);
  ASSERT_TRUE(subs.ok());
  EXPECT_EQ(subs->size(), 1u);
  EXPECT_TRUE((*subs)[0].is_full);
}

TEST(DecomposeTest, MixedTopologySplitsAtSchemeChange) {
  // src -merge-> a -full-> b -full-> sink: {b, sink...} full group, {src, a}
  // structured group.
  TopologyBuilder b;
  OperatorId src = b.AddOperator("src", 4);
  OperatorId a = b.AddOperator("a", 2);
  OperatorId c = b.AddOperator("c", 2);
  OperatorId sink = b.AddOperator("sink", 1);
  b.Connect(src, a, PartitionScheme::kMerge);
  b.Connect(a, c, PartitionScheme::kFull);
  b.Connect(c, sink, PartitionScheme::kFull);
  auto topo = b.Build();
  ASSERT_TRUE(topo.ok());
  auto subs = DecomposeTopology(*topo);
  ASSERT_TRUE(subs.ok());
  ASSERT_EQ(subs->size(), 2u);
  // Group seeded from the sink is full and holds sink, c, a; the other is
  // structured and holds src.
  int full_ops = 0, structured_ops = 0;
  for (const SubTopology& sub : *subs) {
    if (sub.is_full) {
      full_ops += sub.extracted.topo.num_operators();
    } else {
      structured_ops += sub.extracted.topo.num_operators();
    }
  }
  EXPECT_EQ(full_ops, 3);
  EXPECT_EQ(structured_ops, 1);
}

TEST(DecomposeTest, EveryOperatorAssignedExactlyOnce) {
  Rng rng(77);
  RandomTopologyOptions opts;
  for (int i = 0; i < 20; ++i) {
    auto topo = GenerateRandomTopology(opts, &rng);
    ASSERT_TRUE(topo.ok());
    auto subs = DecomposeTopology(*topo);
    ASSERT_TRUE(subs.ok());
    std::vector<int> seen(static_cast<size_t>(topo->num_operators()), 0);
    for (const SubTopology& sub : *subs) {
      for (OperatorId op : sub.extracted.parent_op) {
        ++seen[static_cast<size_t>(op)];
      }
    }
    for (int count : seen) {
      EXPECT_EQ(count, 1);
    }
  }
}

TEST(DecomposeTest, SubTopologyTypesMatchTheirInternalEdges) {
  // Invariant: a full sub-topology contains only Full internal edges; a
  // structured one contains none.
  Rng rng(4321);
  RandomTopologyOptions opts;
  opts.join_fraction = 0.4;
  for (int i = 0; i < 30; ++i) {
    opts.kind = (i % 2 == 0) ? RandomTopologyOptions::Kind::kStructured
                             : RandomTopologyOptions::Kind::kFull;
    auto topo = GenerateRandomTopology(opts, &rng);
    ASSERT_TRUE(topo.ok());
    auto subs = DecomposeTopology(*topo);
    ASSERT_TRUE(subs.ok());
    for (const SubTopology& sub : *subs) {
      for (const StreamEdge& e : sub.extracted.topo.edges()) {
        if (sub.is_full) {
          EXPECT_EQ(e.scheme, PartitionScheme::kFull);
        } else {
          EXPECT_NE(e.scheme, PartitionScheme::kFull);
        }
      }
    }
  }
}

TEST(StructureAwarePlannerTest, ZeroAndTinyBudgets) {
  Fig2Topology f = MakeFig2(InputCorrelation::kCorrelated);
  StructureAwareOptions opts;
  opts.fill_budget = false;
  StructureAwarePlanner planner(opts);
  auto zero = planner.Plan({f.topo, 0});
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->resource_usage(), 0);
  EXPECT_DOUBLE_EQ(zero->output_fidelity, 0.0);
  // Budget 1 cannot afford Fig. 2's minimal MC-tree (3 tasks for the
  // join); without top-up nothing is replicated.
  auto one = planner.Plan({f.topo, 1});
  ASSERT_TRUE(one.ok());
  EXPECT_DOUBLE_EQ(one->output_fidelity, 0.0);
  EXPECT_LE(one->resource_usage(), 1);
}

TEST(StructureAwarePlannerTest, IcMetricOptionChangesTheObjective) {
  // On a join topology, the IC-optimizing variant reports/searches the
  // correlation-blind metric; its plan's IC must be at least the OF
  // variant's IC.
  Fig2Topology f = MakeFig2(InputCorrelation::kCorrelated);
  StructureAwarePlanner of_planner;
  StructureAwareOptions ic_opts;
  ic_opts.metric = LossModel::kInternalCompleteness;
  StructureAwarePlanner ic_planner(ic_opts);
  for (int budget : {2, 3}) {
    auto of_plan = of_planner.Plan({f.topo, budget});
    auto ic_plan = ic_planner.Plan({f.topo, budget});
    ASSERT_TRUE(of_plan.ok());
    ASSERT_TRUE(ic_plan.ok());
    EXPECT_GE(PlanInternalCompleteness(f.topo, ic_plan->replicated),
              PlanInternalCompleteness(f.topo, of_plan->replicated) - 1e-9)
        << "budget " << budget;
  }
}

TEST(ExtractTest, BoundarySourceKeepsParentRates) {
  Topology t = MakeChain(4, 2, 1, PartitionScheme::kMerge,
                         PartitionScheme::kMerge, 1000.0);
  // Extract {mid, sink}: mid becomes a source with its parent output rates.
  auto ex = ExtractSubTopology(t, {1, 2});
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(ex->topo.num_operators(), 2);
  ASSERT_EQ(ex->topo.source_operators().size(), 1u);
  for (TaskId lt : ex->topo.op(ex->topo.source_operators()[0]).tasks) {
    const TaskId pt = ex->parent_task[static_cast<size_t>(lt)];
    EXPECT_NEAR(ex->topo.task(lt).output_rate, t.task(pt).output_rate, 1e-9);
  }
  // Severed substreams: the four src->mid links.
  EXPECT_EQ(ex->cut_substreams.size(), 4u);
}

TEST(ExtractTest, MappingsAreInverse) {
  Topology t = MakeChain(2, 4, 2, PartitionScheme::kSplit,
                         PartitionScheme::kMerge);
  auto ex = ExtractSubTopology(t, {0, 1});
  ASSERT_TRUE(ex.ok());
  for (TaskId lt = 0; lt < ex->topo.num_tasks(); ++lt) {
    const TaskId pt = ex->parent_task[static_cast<size_t>(lt)];
    EXPECT_EQ(ex->local_task[static_cast<size_t>(pt)], lt);
  }
}

TEST(ExtractTest, RejectsEmptyAndBadIds) {
  Topology t = MakeChain(2, 2, 2, PartitionScheme::kOneToOne,
                         PartitionScheme::kOneToOne);
  EXPECT_EQ(ExtractSubTopology(t, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ExtractSubTopology(t, {99}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(UnitsTest, SplitsAtMergeIntoSplit) {
  // Fig. 3(a): O1 -merge-> O2 -split-> O3. Boundary between O1 and O2.
  TopologyBuilder b;
  OperatorId o1 = b.AddOperator("O1", 4);
  OperatorId o2 = b.AddOperator("O2", 2);
  OperatorId o3 = b.AddOperator("O3", 4);
  b.Connect(o1, o2, PartitionScheme::kMerge);
  b.Connect(o2, o3, PartitionScheme::kSplit);
  auto topo = b.Build();
  ASSERT_TRUE(topo.ok());
  auto split = SplitStructuredTopology(*topo);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->units.size(), 2u);
  EXPECT_EQ(split->cut_substreams.size(), 4u);
}

TEST(UnitsTest, SplitsAtMergeIntoJoin) {
  // Fig. 3(b): O1 -merge-> O3 (join), O2 -one-to-one-> O3. Boundary between
  // O1 and O3.
  TopologyBuilder b;
  OperatorId o1 = b.AddOperator("O1", 4);
  OperatorId o2 = b.AddOperator("O2", 2);
  OperatorId o3 = b.AddOperator("O3", 2, InputCorrelation::kCorrelated);
  b.Connect(o1, o3, PartitionScheme::kMerge);
  b.Connect(o2, o3, PartitionScheme::kOneToOne);
  auto topo = b.Build();
  ASSERT_TRUE(topo.ok());
  auto split = SplitStructuredTopology(*topo);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->units.size(), 2u);
  // The cut is exactly O1's merge edge.
  for (const Substream& s : split->cut_substreams) {
    EXPECT_EQ(s.from_op, o1);
    EXPECT_EQ(s.to_op, o3);
  }
}

TEST(UnitsTest, PlainChainIsOneUnit) {
  Topology t = MakeChain(2, 4, 2, PartitionScheme::kSplit,
                         PartitionScheme::kMerge);
  // Merge input at the sink but the sink has no split output and a single
  // input stream: no cut.
  auto split = SplitStructuredTopology(t);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->units.size(), 1u);
  EXPECT_TRUE(split->cut_substreams.empty());
}

TEST(UnitsTest, SegmentsCoverUnitsAndScoreInUnitRange) {
  TopologyBuilder b;
  OperatorId o1 = b.AddOperator("O1", 4);
  OperatorId o2 = b.AddOperator("O2", 2);
  OperatorId o3 = b.AddOperator("O3", 4);
  b.Connect(o1, o2, PartitionScheme::kMerge);
  b.Connect(o2, o3, PartitionScheme::kSplit);
  auto topo = b.Build();
  ASSERT_TRUE(topo.ok());
  auto split = SplitStructuredTopology(*topo);
  ASSERT_TRUE(split.ok());
  for (const Unit& unit : split->units) {
    ASSERT_FALSE(unit.segments.empty());
    ASSERT_EQ(unit.segments.size(), unit.segment_of.size());
    for (size_t i = 0; i < unit.segments.size(); ++i) {
      EXPECT_GT(unit.segment_of[i], 0.0);
      EXPECT_LE(unit.segment_of[i], 1.0);
      // Segments are expressed in parent ids and live inside this unit.
      for (TaskId t : unit.segments[i].ToVector()) {
        EXPECT_EQ(split->task_unit[static_cast<size_t>(t)],
                  static_cast<int>(&unit - split->units.data()));
      }
    }
  }
}

}  // namespace
}  // namespace ppa
