#include <vector>

#include <gtest/gtest.h>

#include "sim/event_loop.h"

namespace ppa {
namespace {

TEST(EventLoopTest, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(TimePoint::FromMicros(300), [&] { order.push_back(3); });
  loop.Schedule(TimePoint::FromMicros(100), [&] { order.push_back(1); });
  loop.Schedule(TimePoint::FromMicros(200), [&] { order.push_back(2); });
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.events_processed(), 3);
}

TEST(EventLoopTest, SameInstantIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.Schedule(TimePoint::FromMicros(50), [&order, i] {
      order.push_back(i);
    });
  }
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, NowAdvancesToEventTime) {
  EventLoop loop;
  TimePoint seen;
  loop.Schedule(TimePoint::FromMicros(12345), [&] { seen = loop.now(); });
  loop.RunUntilIdle();
  EXPECT_EQ(seen, TimePoint::FromMicros(12345));
  EXPECT_EQ(loop.now(), TimePoint::FromMicros(12345));
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(TimePoint::FromMicros(100), [&] { ++fired; });
  loop.Schedule(TimePoint::FromMicros(900), [&] { ++fired; });
  loop.RunUntil(TimePoint::FromMicros(500));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), TimePoint::FromMicros(500));
  loop.RunUntil(TimePoint::FromMicros(1000));
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  TimePoint seen;
  loop.Schedule(TimePoint::FromMicros(100), [&] {
    loop.ScheduleAfter(Duration::Micros(50), [&] { seen = loop.now(); });
  });
  loop.RunUntilIdle();
  EXPECT_EQ(seen, TimePoint::FromMicros(150));
}

TEST(EventLoopTest, PastEventsClampToNow) {
  EventLoop loop;
  TimePoint seen;
  loop.Schedule(TimePoint::FromMicros(200), [&] {
    loop.Schedule(TimePoint::FromMicros(10), [&] { seen = loop.now(); });
  });
  loop.RunUntilIdle();
  EXPECT_EQ(seen, TimePoint::FromMicros(200));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  int fired = 0;
  uint64_t id = loop.Schedule(TimePoint::FromMicros(100), [&] { ++fired; });
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));  // Double cancel.
  EXPECT_FALSE(loop.Cancel(9999));
  loop.RunUntilIdle();
  EXPECT_EQ(fired, 0);
}

TEST(EventLoopTest, CancelAfterRunIsRejected) {
  // Regression: cancelling an id whose event already fired used to insert
  // into the cancelled set and return true, which made pending() underflow
  // (queue size minus cancelled count wrapped around as size_t).
  EventLoop loop;
  int fired = 0;
  uint64_t ran = loop.Schedule(TimePoint::FromMicros(100), [&] { ++fired; });
  uint64_t live = loop.Schedule(TimePoint::FromMicros(900), [&] { ++fired; });
  EXPECT_EQ(loop.pending(), 2u);
  loop.RunUntil(TimePoint::FromMicros(500));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_FALSE(loop.Cancel(ran));   // Already executed: not cancellable.
  EXPECT_EQ(loop.pending(), 1u);    // No underflow.
  EXPECT_TRUE(loop.Cancel(live));
  EXPECT_EQ(loop.pending(), 0u);
  loop.RunUntilIdle();
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, PendingExactAcrossCancelAndRun) {
  EventLoop loop;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(
        loop.Schedule(TimePoint::FromMicros(100 * (i + 1)), [] {}));
  }
  EXPECT_EQ(loop.pending(), 6u);
  EXPECT_TRUE(loop.Cancel(ids[2]));
  EXPECT_TRUE(loop.Cancel(ids[4]));
  EXPECT_EQ(loop.pending(), 4u);
  // Fires ids[0] and ids[1]; the cancelled ids[2] is discarded when its
  // deadline pops. ids[3] and ids[5] stay live, ids[4] stays cancelled.
  loop.RunUntil(TimePoint::FromMicros(350));
  EXPECT_EQ(loop.pending(), 2u);
  EXPECT_FALSE(loop.Cancel(ids[0]));
  EXPECT_FALSE(loop.Cancel(ids[2]));  // Cancelled before it fired.
  EXPECT_EQ(loop.pending(), 2u);
  loop.RunUntilIdle();
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.events_processed(), 4);
}

TEST(EventLoopTest, MetricsCountProcessedEventsAndDepth) {
  EventLoop loop;
  obs::MetricsRegistry registry;
  loop.AttachMetrics(&registry);
  loop.Schedule(TimePoint::FromMicros(100), [] {});
  loop.Schedule(TimePoint::FromMicros(200), [] {});
  uint64_t id = loop.Schedule(TimePoint::FromMicros(300), [] {});
  EXPECT_EQ(registry.gauge("sim.queue_depth")->value(), 3.0);
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_EQ(registry.gauge("sim.queue_depth")->value(), 2.0);
  loop.RunUntilIdle();
  EXPECT_EQ(registry.counter("sim.events_processed")->value(), 2);
  EXPECT_EQ(registry.gauge("sim.queue_depth")->value(), 0.0);
}

TEST(EventLoopTest, RecurringEventChain) {
  EventLoop loop;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 10) {
      loop.ScheduleAfter(Duration::Millis(10), tick);
    }
  };
  loop.ScheduleAfter(Duration::Zero(), tick);
  loop.RunUntilIdle();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(loop.now(), TimePoint::FromMicros(90 * 1000));
}

}  // namespace
}  // namespace ppa
