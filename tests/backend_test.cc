// Tests for src/backend/: the BoundedMpscQueue backpressure contract, the
// ThreadedBackend dispatch order, the SimBackend "adapter adds nothing"
// identity, and the cross-backend parity oracle (DESIGN.md §16) — the sim
// run is the golden output the threaded backend must reproduce, including
// under fault injection.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backend/bounded_queue.h"
#include "backend/execution_backend.h"
#include "backend/sim_backend.h"
#include "backend/threaded_backend.h"
#include "chaos/chaos_run.h"
#include "chaos/generator.h"
#include "chaos/invariants.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "engine/operators.h"
#include "exp/parity.h"
#include "exp/run_spec.h"
#include "runtime/job_deps.h"
#include "runtime/streaming_job.h"
#include "sim/event_loop.h"
#include "tests/test_topologies.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace {

// --- factory / flag spelling ---------------------------------------------

TEST(BackendFactory, MakesBothKinds) {
  auto sim = backend::MakeBackend(backend::BackendKind::kSim);
  EXPECT_EQ(sim->kind(), backend::BackendKind::kSim);
  auto threads = backend::MakeBackend(backend::BackendKind::kThreads);
  EXPECT_EQ(threads->kind(), backend::BackendKind::kThreads);
}

TEST(BackendFactory, KindSpellingRoundTrips) {
  for (backend::BackendKind kind :
       {backend::BackendKind::kSim, backend::BackendKind::kThreads}) {
    auto parsed = backend::ParseBackendKind(backend::BackendKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(backend::ParseBackendKind("simulator").ok());
  EXPECT_FALSE(backend::ParseBackendKind("").ok());
}

// --- BoundedMpscQueue -----------------------------------------------------

TEST(BoundedMpscQueue, FifoOrderAndDrainClaimHandshake) {
  backend::BoundedMpscQueue<int> q(8);
  EXPECT_EQ(q.Push(1), backend::PushOutcome::kMustDrain);
  EXPECT_EQ(q.Push(2), backend::PushOutcome::kQueued);
  EXPECT_EQ(q.Push(3), backend::PushOutcome::kQueued);

  int v = 0;
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 3);
  // Empty: the claim is released...
  EXPECT_FALSE(q.Pop(&v));
  // ...so the next push claims it again.
  EXPECT_EQ(q.Push(4), backend::PushOutcome::kMustDrain);
}

TEST(BoundedMpscQueue, BackpressureKeepsTheQueueBounded) {
  constexpr size_t kCapacity = 2;
  constexpr size_t kItems = 200;
  backend::BoundedMpscQueue<int> q(kCapacity);
  ThreadPool producer(1);
  producer.Submit([&q] {
    for (size_t i = 0; i < kItems; ++i) {
      ASSERT_NE(q.Push(static_cast<int>(i)), backend::PushOutcome::kClosed);
    }
  });

  std::vector<int> got;
  while (got.size() < kItems) {
    // The producer blocks whenever the queue is at capacity, so its depth
    // can never exceed kCapacity no matter how far this consumer lags.
    EXPECT_LE(q.size(), kCapacity);
    int v = 0;
    if (q.Pop(&v)) {
      got.push_back(v);
    }
  }
  for (size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(got[i], static_cast<int>(i));
  }
  // The producer task has returned (every push was consumed), so the pool
  // destructor joins without new submissions racing it.
}

TEST(BoundedMpscQueue, MultiProducerDeliversEverythingFifoPerProducer) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  constexpr size_t kTotal =
      static_cast<size_t>(kProducers) * static_cast<size_t>(kPerProducer);
  backend::BoundedMpscQueue<int> q(16);

  // The drain-claim protocol exactly as the threaded backend runs it:
  // whichever push claims the drain submits the single consumer as a pool
  // task, so consumption is serialized while producers run concurrently.
  Mutex mu;
  std::vector<int> got;
  std::atomic<size_t> delivered{0};
  {
    ThreadPool pool(kProducers + 1);
    auto drain = [&q, &mu, &got, &delivered] {
      int v = 0;
      while (q.Pop(&v)) {
        {
          MutexLock lock(&mu);
          got.push_back(v);
        }
        delivered.fetch_add(1);
      }
    };
    for (int p = 0; p < kProducers; ++p) {
      pool.Submit([&q, &pool, &drain, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          if (q.Push(p * kPerProducer + i) ==
              backend::PushOutcome::kMustDrain) {
            pool.Submit(drain);
          }
        }
      });
    }
    // Quiesce before the pool destructor: once every item is delivered no
    // task submits again (Submit during teardown is illegal).
    while (delivered.load() < kTotal) {
    }
  }

  ASSERT_EQ(got.size(), kTotal);
  // FIFO per producer: each producer's values appear in increasing order.
  std::vector<int> next(kProducers, 0);
  for (int v : got) {
    int p = v / kPerProducer;
    int i = v % kPerProducer;
    ASSERT_GE(p, 0);
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(i, next[static_cast<size_t>(p)]) << "producer " << p;
    next[static_cast<size_t>(p)] = i + 1;
  }
}

TEST(BoundedMpscQueue, CloseUnblocksAProducerAndDiscardsQueuedItems) {
  backend::BoundedMpscQueue<int> q(1);
  EXPECT_EQ(q.Push(1), backend::PushOutcome::kMustDrain);

  std::atomic<bool> saw_closed{false};
  {
    ThreadPool producer(1);
    producer.Submit([&q, &saw_closed] {
      // Blocks — the queue is at capacity — until Close() wakes it.
      saw_closed.store(q.Push(2) == backend::PushOutcome::kClosed);
    });
    q.Close();
    // Pool destructor joins the producer task.
  }
  EXPECT_TRUE(saw_closed.load());
  // After Close, pops discard leftovers and report empty; pushes reject.
  int v = 0;
  EXPECT_FALSE(q.Pop(&v));
  EXPECT_EQ(q.Push(3), backend::PushOutcome::kClosed);
}

// --- ThreadedBackend scheduling drills ------------------------------------

TEST(ThreadedBackend, RunsTimersInSimOrderOnOneStrand) {
  backend::ThreadedBackend be;
  // Same-strand callbacks are serialized with happens-before edges through
  // the mailbox, so this plain vector needs no lock.
  std::vector<std::string> order;
  auto record = [&be, &order](std::string label, int64_t want_us) {
    return [&be, &order, label, want_us] {
      EXPECT_EQ(be.now().micros(), want_us) << label;
      order.push_back(label);
    };
  };
  (void)be.ScheduleAfter(Duration::Seconds(5), record("t5", 5000000));
  (void)be.ScheduleAfter(Duration::Seconds(1), record("t1a", 1000000));
  (void)be.ScheduleAfter(Duration::Seconds(3), record("t3", 3000000));
  // Equal firing times run in schedule order (the sim's FIFO tie-break).
  (void)be.ScheduleAfter(Duration::Seconds(1), record("t1b", 1000000));
  EXPECT_EQ(be.pending(), 4u);

  be.RunUntil(TimePoint::Zero() + Duration::Seconds(10));
  EXPECT_EQ(order,
            (std::vector<std::string>{"t1a", "t1b", "t3", "t5"}));
  EXPECT_EQ(be.events_processed(), 4);
  EXPECT_EQ(be.pending(), 0u);
  // Outside callbacks now() is the drive horizon, exactly like the sim.
  EXPECT_EQ(be.now().micros(), 10000000);
}

TEST(ThreadedBackend, CallbacksChainAndRunUntilIdleDrains) {
  backend::ThreadedBackend be;
  std::vector<int> order;
  (void)be.ScheduleAfter(Duration::Seconds(1), [&be, &order] {
    order.push_back(1);
    (void)be.ScheduleAfter(Duration::Seconds(1), [&be, &order] {
      order.push_back(2);
      (void)be.ScheduleAfter(Duration::Seconds(1),
                             [&order] { order.push_back(3); });
    });
  });
  be.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(be.now().micros(), 3000000);
  EXPECT_EQ(be.events_processed(), 3);
}

TEST(ThreadedBackend, NothingRunsPastTheDriveDeadline) {
  backend::ThreadedBackend be;
  std::atomic<bool> ran{false};
  (void)be.ScheduleAfter(Duration::Seconds(10), [&ran] { ran.store(true); });
  be.RunUntil(TimePoint::Zero() + Duration::Seconds(5));
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(be.now().micros(), 5000000);
  EXPECT_EQ(be.pending(), 1u);
  be.RunUntil(TimePoint::Zero() + Duration::Seconds(10));
  EXPECT_TRUE(ran.load());
}

TEST(ThreadedBackend, CancelPreventsExecution) {
  backend::ThreadedBackend be;
  std::atomic<int> fired{0};
  uint64_t keep =
      be.ScheduleAfter(Duration::Seconds(1), [&fired] { ++fired; });
  uint64_t cancelled =
      be.ScheduleAfter(Duration::Seconds(2), [&fired] { fired += 100; });
  EXPECT_TRUE(be.Cancel(cancelled));
  EXPECT_FALSE(be.Cancel(cancelled));  // already gone
  be.RunUntilIdle();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_FALSE(be.Cancel(keep));  // already ran
}

TEST(ThreadedBackend, StopDropsPendingTimersWithoutRunningThem) {
  backend::ThreadedBackend be;
  std::atomic<bool> ran{false};
  (void)be.ScheduleAfter(Duration::Seconds(1), [&ran] { ran.store(true); });
  be.Stop();
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(be.events_processed(), 0);
}

TEST(ThreadedBackend, StrandsRunIndependentlyAndInOrder) {
  backend::ThreadedBackendOptions options;
  options.num_shards = 4;
  backend::ThreadedBackend be(options);
  constexpr int kStrands = 16;
  constexpr int kPerStrand = 32;
  // One vector per strand: same-strand callbacks are serialized, distinct
  // strands write distinct vectors, so no locking is needed.
  std::vector<std::vector<int>> per_strand(kStrands);
  std::vector<uint64_t> strands;
  strands.push_back(0);
  for (int s = 1; s < kStrands; ++s) {
    strands.push_back(be.NewStrand());
  }
  for (int i = 0; i < kPerStrand; ++i) {
    for (int s = 0; s < kStrands; ++s) {
      (void)be.ScheduleAfterOn(
          strands[static_cast<size_t>(s)], Duration::Seconds(i + 1),
          [&per_strand, s, i] {
            per_strand[static_cast<size_t>(s)].push_back(i);
          });
    }
  }
  be.RunUntilIdle();
  EXPECT_EQ(be.events_processed(), kStrands * kPerStrand);
  for (int s = 0; s < kStrands; ++s) {
    ASSERT_EQ(per_strand[static_cast<size_t>(s)].size(),
              static_cast<size_t>(kPerStrand));
    for (int i = 0; i < kPerStrand; ++i) {
      EXPECT_EQ(per_strand[static_cast<size_t>(s)][static_cast<size_t>(i)],
                i);
    }
  }
}

// --- SimBackend adapter identity -------------------------------------------

TEST(SimBackend, ForwardsToTheWrappedLoop) {
  EventLoop loop;
  backend::SimBackend be(&loop);
  std::vector<int> order;
  // Interleave scheduling through the adapter and the raw loop: both feed
  // the same queue and fire in one (time, insertion) order.
  (void)be.ScheduleAfter(Duration::Seconds(2), [&order] { order.push_back(2); });
  (void)loop.ScheduleAfter(Duration::Seconds(1),
                           [&order] { order.push_back(1); });
  (void)be.ScheduleAfter(Duration::Seconds(3), [&order] { order.push_back(3); });
  // Driving the raw loop runs callbacks scheduled through the adapter.
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(2));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // And vice versa.
  be.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(be.now(), loop.now());
  EXPECT_EQ(be.events_processed(), loop.events_processed());
}

// Shared drill used by the byte-identity and parity tests below: the
// fig07/fig08 shape — a windowed chain job, a mid-run failure (one node or
// every worker node), then recovery and a quiet tail.
struct DrillResult {
  std::vector<SinkRecord> records;
  size_t recoveries = 0;
};

Topology MakeDrillTopology() {
  TopologyBuilder b;
  OperatorId src = b.AddOperator("src", 2);
  OperatorId mid =
      b.AddOperator("mid", 2, InputCorrelation::kIndependent, 0.5);
  OperatorId sink =
      b.AddOperator("sink", 1, InputCorrelation::kIndependent, 0.5);
  b.Connect(src, mid, PartitionScheme::kOneToOne);
  b.Connect(mid, sink, PartitionScheme::kMerge);
  b.SetSourceRate(src, 40.0);
  auto t = b.Build();
  PPA_CHECK(t.ok()) << t.status();
  return *std::move(t);
}

JobConfig MakeDrillConfig(FtMode mode) {
  JobConfig cfg;
  cfg.ft_mode = mode;
  cfg.batch_interval = Duration::Seconds(1);
  cfg.detection_interval = Duration::Seconds(2);
  cfg.checkpoint_interval = Duration::Seconds(5);
  cfg.replica_sync_interval = Duration::Seconds(2);
  cfg.num_worker_nodes = 5;
  cfg.num_standby_nodes = 5;
  cfg.window_batches = 5;
  cfg.stagger_checkpoints = false;
  return cfg;
}

/// Runs the drill on an already-constructed backend, driving it through
/// `drive` so the caller chooses adapter-driving vs raw-loop-driving.
template <typename DriveFn>
DrillResult RunDrill(backend::ExecutionBackend* be, FtMode mode,
                     bool correlated, DriveFn drive) {
  Topology topo = MakeDrillTopology();
  StreamingJob job(topo, MakeDrillConfig(mode), JobRuntimeDeps(be));
  PPA_CHECK_OK(job.BindSource(0, [] {
    return std::make_unique<SyntheticSource>(20, 64, 7);
  }));
  for (OperatorId op : {1, 2}) {
    PPA_CHECK_OK(job.BindOperator(op, [] {
      return std::make_unique<SlidingWindowAggregateOperator>(5, 0.5);
    }));
  }
  PPA_CHECK_OK(job.Start());
  drive(TimePoint::Zero() + Duration::Seconds(20));
  if (correlated) {
    // fig08 shape: every worker node that hosts work dies at once.
    for (int node = 0; node < 5; ++node) {
      PPA_CHECK_OK(job.InjectNodeFailure(node));
    }
  } else {
    // fig07 shape: one node dies.
    PPA_CHECK_OK(job.InjectNodeFailure(1));
  }
  drive(TimePoint::Zero() + Duration::Seconds(60));
  DrillResult result;
  result.records = job.sink_records();
  result.recoveries = job.recovery_reports().size();
  return result;
}

bool SameRecordExactly(const SinkRecord& a, const SinkRecord& b) {
  return a.tuple == b.tuple && a.tentative == b.tentative &&
         a.correction == b.correction && a.emitted_at == b.emitted_at &&
         a.ingest_at == b.ingest_at;
}

void ExpectIdenticalOutput(const DrillResult& a, const DrillResult& b) {
  EXPECT_EQ(a.recoveries, b.recoveries);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_TRUE(SameRecordExactly(a.records[i], b.records[i]))
        << "record " << i << " differs";
  }
}

TEST(SimBackend, Fig07DrillIsByteIdenticalToDrivingTheEventLoopDirectly) {
  // Side A: the job sits on a SimBackend, but the test drives the wrapped
  // EventLoop directly — the pre-refactor execution path.
  EventLoop loop;
  backend::SimBackend wrapped(&loop);
  DrillResult direct =
      RunDrill(&wrapped, FtMode::kCheckpoint, /*correlated=*/false,
               [&loop](TimePoint t) { loop.RunUntil(t); });

  // Side B: everything goes through the backend interface.
  backend::SimBackend be;
  DrillResult adapted =
      RunDrill(&be, FtMode::kCheckpoint, /*correlated=*/false,
               [&be](TimePoint t) { be.RunUntil(t); });

  EXPECT_GT(adapted.records.size(), 0u);
  EXPECT_GT(adapted.recoveries, 0u);
  ExpectIdenticalOutput(direct, adapted);
}

TEST(SimBackend, Fig08CorrelatedDrillIsByteIdenticalToEventLoopDirect) {
  EventLoop loop;
  backend::SimBackend wrapped(&loop);
  DrillResult direct =
      RunDrill(&wrapped, FtMode::kActiveReplication, /*correlated=*/true,
               [&loop](TimePoint t) { loop.RunUntil(t); });

  backend::SimBackend be;
  DrillResult adapted =
      RunDrill(&be, FtMode::kActiveReplication, /*correlated=*/true,
               [&be](TimePoint t) { be.RunUntil(t); });

  EXPECT_GT(adapted.records.size(), 0u);
  ExpectIdenticalOutput(direct, adapted);
}

// --- ThreadedBackend vs sim: stable output parity --------------------------

TEST(ThreadedBackend, DrillStableOutputMatchesTheSimExactly) {
  // The same fig07 drill, sim vs threads, compared over the *entire*
  // record stream: a single-strand job is deterministic on the threaded
  // backend, so even tentative records must match the sim run.
  backend::SimBackend sim;
  DrillResult golden =
      RunDrill(&sim, FtMode::kCheckpoint, /*correlated=*/false,
               [&sim](TimePoint t) { sim.RunUntil(t); });

  backend::ThreadedBackend threads;
  DrillResult real =
      RunDrill(&threads, FtMode::kCheckpoint, /*correlated=*/false,
               [&threads](TimePoint t) { threads.RunUntil(t); });

  EXPECT_GT(golden.records.size(), 0u);
  ExpectIdenticalOutput(golden, real);
}

exp::RunSpec ParitySpec(const std::string& label) {
  exp::RunSpec spec;
  spec.label = label;
  spec.make_topology = [](Rng*) -> StatusOr<Topology> {
    return MakeDrillTopology();
  };
  spec.config = MakeDrillConfig(FtMode::kPpa);
  spec.planner = PlannerKind::kStructureAware;
  spec.budget = 2;
  spec.seed = 7;
  spec.run_for_seconds = 45.0;
  return spec;
}

TEST(BackendParity, CleanRunIsIdenticalOnThreads) {
  exp::RunSpec spec = ParitySpec("clean");
  auto report = exp::RunSpecParity(spec, backend::BackendKind::kThreads,
                                   DeriveSeed(spec.seed, 0));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->identical) << report->mismatch;
  EXPECT_GT(report->baseline_stable, 0u);
}

TEST(BackendParity, SingleFailureRecoveryIsIdenticalOnThreads) {
  exp::RunSpec spec = ParitySpec("fig07-style");
  ScenarioEvent fail;
  fail.at = Duration::Seconds(15);
  fail.kind = ScenarioEvent::Kind::kNodeFailure;
  fail.node = 1;
  spec.scenario.push_back(fail);
  auto report = exp::RunSpecParity(spec, backend::BackendKind::kThreads,
                                   DeriveSeed(spec.seed, 0));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->identical) << report->mismatch;
  EXPECT_GT(report->baseline_stable, 0u);
}

TEST(BackendParity, CorrelatedFailureWithReconcileIsIdenticalOnThreads) {
  // fig08/fig10 shape: two upstream nodes die at the same instant (a
  // correlated failure that leaves the sink alive), the degraded batches
  // open a tentative window, and a post-recovery reconcile closes it with
  // corrections.
  exp::RunSpec spec = ParitySpec("fig08-style");
  for (int node : {1, 2}) {
    ScenarioEvent fail;
    fail.at = Duration::Seconds(15);
    fail.kind = ScenarioEvent::Kind::kNodeFailure;
    fail.node = node;
    spec.scenario.push_back(fail);
  }
  ScenarioEvent reconcile;
  reconcile.at = Duration::Seconds(35);
  reconcile.kind = ScenarioEvent::Kind::kReconcile;
  spec.scenario.push_back(reconcile);
  auto report = exp::RunSpecParity(spec, backend::BackendKind::kThreads,
                                   DeriveSeed(spec.seed, 0));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->identical) << report->mismatch;
  EXPECT_GT(report->baseline_total, report->baseline_stable)
      << "the drill should have produced tentative records";
}

// --- chaos smoke: the threaded backend under random fault schedules --------

TEST(BackendParity, ThirtyTwoCaseChaosSmokeOnThreads) {
  // Each case executes its random fault schedule (failures during
  // recovery, revives, plan swaps, reconciles) on the threaded backend
  // while the golden twin and the invariant oracles stay on the sim —
  // exactly-once-stable compares the stable sink stream against the
  // fault-free sim run, so this is the parity contract under chaos.
  const std::vector<const chaos::Invariant*> invariants =
      chaos::BuiltinInvariants();
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    auto chaos_case =
        chaos::GenerateChaosCase(chaos::ChaosIntensity::Medium(), seed);
    ASSERT_TRUE(chaos_case.ok()) << chaos_case.status().ToString();
    auto report = chaos::RunChaosCase(*chaos_case, invariants,
                                      backend::BackendKind::kThreads);
    ASSERT_TRUE(report.ok())
        << "seed " << seed << ": " << report.status().ToString();
    for (const chaos::ChaosViolation& v : report->violations) {
      ADD_FAILURE() << "seed " << seed << ": [" << v.invariant << "] "
                    << v.message;
    }
  }
}

}  // namespace
}  // namespace ppa
