#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "backend/sim_backend.h"
#include "engine/operators.h"
#include "runtime/cluster.h"
#include "runtime/streaming_job.h"
#include "tests/test_topologies.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace {

using ::ppa::testing::MakeChain;

/// src(2) --one-to-one--> mid(2) --merge--> sink(1), sliding-window
/// operators, 20 tuples per source task per batch.
Topology MakeTestTopology() {
  TopologyBuilder b;
  OperatorId src = b.AddOperator("src", 2);
  OperatorId mid = b.AddOperator("mid", 2, InputCorrelation::kIndependent,
                                 0.5);
  OperatorId sink = b.AddOperator("sink", 1, InputCorrelation::kIndependent,
                                  0.5);
  b.Connect(src, mid, PartitionScheme::kOneToOne);
  b.Connect(mid, sink, PartitionScheme::kMerge);
  b.SetSourceRate(src, 40.0);
  auto t = b.Build();
  PPA_CHECK(t.ok());
  return *std::move(t);
}

JobConfig MakeTestConfig(FtMode mode) {
  JobConfig cfg;
  cfg.ft_mode = mode;
  cfg.batch_interval = Duration::Seconds(1);
  cfg.detection_interval = Duration::Seconds(2);
  cfg.checkpoint_interval = Duration::Seconds(5);
  cfg.replica_sync_interval = Duration::Seconds(2);
  cfg.num_worker_nodes = 5;
  cfg.num_standby_nodes = 5;
  cfg.window_batches = 5;
  cfg.stagger_checkpoints = false;
  return cfg;
}

struct RunResult {
  std::vector<SinkRecord> records;
  std::vector<RecoveryReport> reports;
};

/// Runs the test topology for `seconds`, optionally failing `fail_node` at
/// `fail_at_seconds`.
RunResult RunScenario(FtMode mode, int fail_node, double fail_at_seconds,
                      double seconds,
                      const TaskSet* active_set = nullptr) {
  backend::SimBackend loop;
  Topology topo = MakeTestTopology();
  StreamingJob job(std::move(topo), MakeTestConfig(mode), JobRuntimeDeps(&loop));
  PPA_CHECK_OK(job.BindSource(0, [] {
    return std::make_unique<SyntheticSource>(20, 64, 7);
  }));
  for (OperatorId op : {1, 2}) {
    PPA_CHECK_OK(job.BindOperator(op, [] {
      return std::make_unique<SlidingWindowAggregateOperator>(5, 0.5);
    }));
  }
  if (active_set != nullptr) {
    PPA_CHECK_OK(job.SetActiveReplicaSet(*active_set));
  }
  PPA_CHECK_OK(job.Start());
  if (fail_node >= 0) {
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(fail_at_seconds));
    PPA_CHECK_OK(job.InjectNodeFailure(fail_node));
  }
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(seconds));
  RunResult result;
  result.records = job.sink_records();
  result.reports = job.recovery_reports();
  return result;
}

void ExpectSameRecords(const std::vector<SinkRecord>& a,
                       const std::vector<SinkRecord>& b,
                       int64_t from_batch = 0,
                       int64_t to_batch = INT64_MAX) {
  auto filter = [&](const std::vector<SinkRecord>& in) {
    std::vector<Tuple> out;
    for (const SinkRecord& r : in) {
      if (r.tuple.batch >= from_batch && r.tuple.batch <= to_batch) {
        out.push_back(r.tuple);
      }
    }
    return out;
  };
  const std::vector<Tuple> ta = filter(a);
  const std::vector<Tuple> tb = filter(b);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    ASSERT_EQ(ta[i], tb[i]) << "record " << i << " differs";
  }
}

TEST(StreamingJobTest, CleanRunIsDeterministic) {
  RunResult a = RunScenario(FtMode::kCheckpoint, -1, 0, 30);
  RunResult b = RunScenario(FtMode::kCheckpoint, -1, 0, 30);
  EXPECT_FALSE(a.records.empty());
  ExpectSameRecords(a.records, b.records);
  EXPECT_TRUE(a.reports.empty());
  for (const SinkRecord& r : a.records) {
    EXPECT_FALSE(r.tentative);
  }
}

TEST(StreamingJobTest, UnboundOperatorFailsStart) {
  backend::SimBackend loop;
  StreamingJob job(MakeTestTopology(), MakeTestConfig(FtMode::kCheckpoint),
                   JobRuntimeDeps(&loop));
  EXPECT_EQ(job.Start().code(), StatusCode::kFailedPrecondition);
}

TEST(StreamingJobTest, BindValidation) {
  backend::SimBackend loop;
  StreamingJob job(MakeTestTopology(), MakeTestConfig(FtMode::kCheckpoint),
                   JobRuntimeDeps(&loop));
  // Binding an operator factory to a source (and vice versa) is rejected.
  EXPECT_FALSE(job.BindOperator(0, [] {
                    return std::make_unique<PassThroughOperator>();
                  }).ok());
  EXPECT_FALSE(job.BindSource(1, [] {
                    return std::make_unique<SyntheticSource>(1, 4, 1);
                  }).ok());
  EXPECT_FALSE(job.BindOperator(99, nullptr).ok());
}

// The central recovery-correctness property: after a single-node failure
// under checkpoint fault tolerance, the sink's output is eventually
// identical to the failure-free run — the restored state plus upstream
// buffer replay reproduce every batch (no tentative mode: downstream waits
// instead of skipping).
TEST(StreamingJobTest, CheckpointRecoveryReproducesCompleteOutput) {
  RunResult clean = RunScenario(FtMode::kCheckpoint, -1, 0, 40);
  // Node 2 hosts mid[0] under round-robin placement of 5 tasks on 5 nodes.
  RunResult failed = RunScenario(FtMode::kCheckpoint, 2, 10.5, 40);
  ASSERT_EQ(failed.reports.size(), 1u);
  EXPECT_GT(failed.reports[0].TotalLatency(), Duration::Zero());
  ExpectSameRecords(clean.records, failed.records);
  for (const SinkRecord& r : failed.records) {
    EXPECT_FALSE(r.tentative);
  }
}

TEST(StreamingJobTest, CheckpointRecoveryOfSourceTask) {
  RunResult clean = RunScenario(FtMode::kCheckpoint, -1, 0, 40);
  // Node 0 hosts src[0].
  RunResult failed = RunScenario(FtMode::kCheckpoint, 0, 12.5, 40);
  ASSERT_EQ(failed.reports.size(), 1u);
  ExpectSameRecords(clean.records, failed.records);
}

TEST(StreamingJobTest, ActiveReplicaTakeoverIsSeamlessAndFast) {
  RunResult clean = RunScenario(FtMode::kCheckpoint, -1, 0, 40);
  RunResult active = RunScenario(FtMode::kActiveReplication, 2, 10.5, 40);
  ASSERT_EQ(active.reports.size(), 1u);
  ExpectSameRecords(clean.records, active.records);

  RunResult passive = RunScenario(FtMode::kCheckpoint, 2, 10.5, 40);
  ASSERT_EQ(passive.reports.size(), 1u);
  EXPECT_LT(active.reports[0].TotalLatency(),
            passive.reports[0].TotalLatency());
}

TEST(StreamingJobTest, SourceReplayRecoversWindowedState) {
  RunResult clean = RunScenario(FtMode::kSourceReplay, -1, 0, 50);
  RunResult failed = RunScenario(FtMode::kSourceReplay, 2, 10.5, 50);
  ASSERT_EQ(failed.reports.size(), 1u);
  // Storm-style replay rebuilds the sliding windows from the source; after
  // the replayed window has fully slid past the outage, outputs converge
  // to the failure-free run.
  ExpectSameRecords(clean.records, failed.records, /*from_batch=*/35);
}

TEST(StreamingJobTest, PpaProducesTentativeOutputsDuringRecovery) {
  TaskSet active(5);
  active.Add(3);  // mid[1] gets a replica; mid[0] (task 2) is passive-only.
  RunResult clean = RunScenario(FtMode::kPpa, -1, 0, 60, &active);
  RunResult failed = RunScenario(FtMode::kPpa, 2, 10.5, 60, &active);
  ASSERT_EQ(failed.reports.size(), 1u);
  bool any_tentative = false;
  for (const SinkRecord& r : failed.records) {
    any_tentative |= r.tentative;
  }
  EXPECT_TRUE(any_tentative)
      << "tentative outputs must flow while the passive task recovers";
  // After recovery and a full window, outputs converge to the clean run.
  ExpectSameRecords(clean.records, failed.records, /*from_batch=*/45);
}

TEST(StreamingJobTest, CorrelatedFailureRecoversEverything) {
  backend::SimBackend loop;
  StreamingJob job(MakeTestTopology(), MakeTestConfig(FtMode::kCheckpoint),
                   JobRuntimeDeps(&loop));
  PPA_CHECK_OK(job.BindSource(0, [] {
    return std::make_unique<SyntheticSource>(20, 64, 7);
  }));
  for (OperatorId op : {1, 2}) {
    PPA_CHECK_OK(job.BindOperator(op, [] {
      return std::make_unique<SlidingWindowAggregateOperator>(5, 0.5);
    }));
  }
  PPA_CHECK_OK(job.Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(12.5));
  PPA_CHECK_OK(job.InjectCorrelatedFailure());
  EXPECT_FALSE(job.AllRecovered());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
  EXPECT_TRUE(job.AllRecovered());
  ASSERT_EQ(job.recovery_reports().size(), 1u);
  // All three non-source tasks failed together.
  EXPECT_EQ(job.recovery_reports()[0].specs.size(), 3u);
}

TEST(StreamingJobTest, CorrelatedFailureSlowerThanSingleFailure) {
  RunResult single = RunScenario(FtMode::kCheckpoint, 2, 10.5, 40);
  backend::SimBackend loop;
  StreamingJob job(MakeTestTopology(), MakeTestConfig(FtMode::kCheckpoint),
                   JobRuntimeDeps(&loop));
  PPA_CHECK_OK(job.BindSource(0, [] {
    return std::make_unique<SyntheticSource>(20, 64, 7);
  }));
  for (OperatorId op : {1, 2}) {
    PPA_CHECK_OK(job.BindOperator(op, [] {
      return std::make_unique<SlidingWindowAggregateOperator>(5, 0.5);
    }));
  }
  PPA_CHECK_OK(job.Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10.5));
  PPA_CHECK_OK(job.InjectCorrelatedFailure());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40));
  ASSERT_EQ(job.recovery_reports().size(), 1u);
  ASSERT_EQ(single.reports.size(), 1u);
  EXPECT_GT(job.recovery_reports()[0].TotalLatency(),
            single.reports[0].TotalLatency());
}

TEST(StreamingJobTest, ShorterCheckpointIntervalShortensRecovery) {
  JobConfig fast_cfg = MakeTestConfig(FtMode::kCheckpoint);
  fast_cfg.checkpoint_interval = Duration::Seconds(2);
  JobConfig slow_cfg = MakeTestConfig(FtMode::kCheckpoint);
  slow_cfg.checkpoint_interval = Duration::Seconds(15);

  auto run = [](JobConfig cfg) {
    backend::SimBackend loop;
    StreamingJob job(MakeTestTopology(), cfg, JobRuntimeDeps(&loop));
    PPA_CHECK_OK(job.BindSource(0, [] {
      return std::make_unique<SyntheticSource>(200, 64, 7);
    }));
    for (OperatorId op : {1, 2}) {
      PPA_CHECK_OK(job.BindOperator(op, [] {
        return std::make_unique<SlidingWindowAggregateOperator>(5, 0.5);
      }));
    }
    PPA_CHECK_OK(job.Start());
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(17.5));
    PPA_CHECK_OK(job.InjectNodeFailure(2));
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
    PPA_CHECK(job.recovery_reports().size() == 1);
    return job.recovery_reports()[0].TotalLatency();
  };
  EXPECT_LT(run(fast_cfg).seconds(), run(slow_cfg).seconds());
}

TEST(StreamingJobTest, CheckpointCostAccounting) {
  auto run = [](Duration interval) {
    backend::SimBackend loop;
    JobConfig cfg = MakeTestConfig(FtMode::kCheckpoint);
    cfg.checkpoint_interval = interval;
    StreamingJob job(MakeTestTopology(), cfg, JobRuntimeDeps(&loop));
    PPA_CHECK_OK(job.BindSource(0, [] {
      return std::make_unique<SyntheticSource>(100, 64, 7);
    }));
    for (OperatorId op : {1, 2}) {
      PPA_CHECK_OK(job.BindOperator(op, [] {
        return std::make_unique<SlidingWindowAggregateOperator>(5, 0.5);
      }));
    }
    PPA_CHECK_OK(job.Start());
    loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
    double ratio = 0;
    for (TaskId t = 2; t <= 3; ++t) {
      ratio += job.CheckpointCostUs(t) / job.ProcessingCostUs(t);
    }
    return ratio / 2;
  };
  const double fast = run(Duration::Seconds(2));
  const double slow = run(Duration::Seconds(10));
  EXPECT_GT(fast, 0.0);
  EXPECT_GT(slow, 0.0);
  EXPECT_GT(fast, slow) << "shorter intervals must cost more CPU";
}

TEST(StreamingJobTest, FailedRunsAreDeterministicToo) {
  RunResult a = RunScenario(FtMode::kCheckpoint, 2, 10.5, 40);
  RunResult b = RunScenario(FtMode::kCheckpoint, 2, 10.5, 40);
  ExpectSameRecords(a.records, b.records);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  EXPECT_EQ(a.reports[0].TotalLatency().micros(),
            b.reports[0].TotalLatency().micros());
}

TEST(StreamingJobTest, InjectionValidation) {
  backend::SimBackend loop;
  StreamingJob job(MakeTestTopology(), MakeTestConfig(FtMode::kCheckpoint),
                   JobRuntimeDeps(&loop));
  EXPECT_EQ(job.InjectNodeFailure(0).code(),
            StatusCode::kFailedPrecondition);  // Not started.
  PPA_CHECK_OK(job.BindSource(0, [] {
    return std::make_unique<SyntheticSource>(5, 8, 7);
  }));
  for (OperatorId op : {1, 2}) {
    PPA_CHECK_OK(job.BindOperator(op, [] {
      return std::make_unique<SlidingWindowAggregateOperator>(3, 0.5);
    }));
  }
  PPA_CHECK_OK(job.Start());
  EXPECT_EQ(job.InjectNodeFailure(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(job.InjectNodeFailure(999).code(), StatusCode::kInvalidArgument);
  PPA_CHECK_OK(job.InjectNodeFailure(1));
  EXPECT_EQ(job.InjectNodeFailure(1).code(), StatusCode::kFailedPrecondition);
}

TEST(ClusterTest, PlacementAndFailure) {
  Cluster cluster(3, 2);
  EXPECT_EQ(cluster.num_nodes(), 5);
  EXPECT_FALSE(cluster.IsStandby(2));
  EXPECT_TRUE(cluster.IsStandby(3));
  Topology topo = MakeTestTopology();
  cluster.PlacePrimariesRoundRobin(topo);
  EXPECT_EQ(cluster.NodeOfPrimary(0), 0);
  EXPECT_EQ(cluster.NodeOfPrimary(3), 0);  // 3 % 3 workers.
  PPA_CHECK_OK(cluster.PlaceReplicas({1, 2}));
  EXPECT_EQ(cluster.NodeOfReplica(1), 3);
  EXPECT_EQ(cluster.NodeOfReplica(2), 4);
  EXPECT_EQ(cluster.NodeOfReplica(0), -1);
  EXPECT_TRUE(cluster.NodeAlive(0));
  cluster.FailNode(0);
  EXPECT_FALSE(cluster.NodeAlive(0));
  cluster.ReviveNode(0);
  EXPECT_TRUE(cluster.NodeAlive(0));
  EXPECT_EQ(cluster.PrimariesOn(0), (std::vector<TaskId>{0, 3}));
  EXPECT_EQ(cluster.NodesHostingPrimaries(),
            (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(cluster.PlacePrimary(0, 4).code(),
            StatusCode::kInvalidArgument);  // Standby node.
}

}  // namespace
}  // namespace ppa
