#include <memory>

#include <gtest/gtest.h>

#include "backend/sim_backend.h"
#include "engine/operators.h"
#include "planner/structure_aware_planner.h"
#include "runtime/streaming_job.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace {

/// src(2) --merge--> mid(1) --one-to-one--> sink(1).
Topology MakeAdaptTopology() {
  TopologyBuilder b;
  OperatorId src = b.AddOperator("src", 2);
  OperatorId mid = b.AddOperator("mid", 1, InputCorrelation::kIndependent,
                                 0.5);
  OperatorId sink = b.AddOperator("sink", 1, InputCorrelation::kIndependent,
                                  0.5);
  b.Connect(src, mid, PartitionScheme::kMerge);
  b.Connect(mid, sink, PartitionScheme::kOneToOne);
  b.SetSourceRate(src, 100.0);
  auto t = b.Build();
  PPA_CHECK(t.ok());
  return *std::move(t);
}

JobConfig AdaptConfig() {
  JobConfig cfg;
  cfg.ft_mode = FtMode::kPpa;
  cfg.batch_interval = Duration::Seconds(1);
  cfg.detection_interval = Duration::Seconds(2);
  cfg.checkpoint_interval = Duration::Seconds(4);
  cfg.replica_sync_interval = Duration::Seconds(2);
  cfg.num_worker_nodes = 4;
  cfg.num_standby_nodes = 4;
  cfg.stagger_checkpoints = false;
  return cfg;
}

/// Source whose hot task flips from index 0 to index 1 at `flip_batch`.
class ShiftingSource : public SourceFunction {
 public:
  ShiftingSource(int64_t hot, int64_t cold, int64_t flip_batch)
      : hot_(hot), cold_(cold), flip_batch_(flip_batch) {}

  std::vector<Tuple> NextBatch(int64_t batch, int task) override {
    const bool task0_hot = batch < flip_batch_;
    const int64_t count =
        (task == 0) == task0_hot ? hot_ : cold_;
    std::vector<Tuple> out;
    for (int64_t i = 0; i < count; ++i) {
      Tuple t;
      t.key = "k" + std::to_string(i % 17);
      t.value = i;
      out.push_back(std::move(t));
    }
    return out;
  }

 private:
  int64_t hot_;
  int64_t cold_;
  int64_t flip_batch_;
};

std::unique_ptr<StreamingJob> MakeJob(backend::ExecutionBackend* loop,
                                      int64_t flip_batch = 1 << 20) {
  auto job = std::make_unique<StreamingJob>(MakeAdaptTopology(),
                                            AdaptConfig(), JobRuntimeDeps(loop));
  PPA_CHECK_OK(job->BindSource(0, [flip_batch] {
    return std::make_unique<ShiftingSource>(80, 20, flip_batch);
  }));
  for (OperatorId op : {1, 2}) {
    PPA_CHECK_OK(job->BindOperator(op, [] {
      return std::make_unique<SlidingWindowAggregateOperator>(4, 0.5);
    }));
  }
  return job;
}

TEST(AdaptationTest, ApplyBeforeStartIsRejected) {
  backend::SimBackend loop;
  auto job = MakeJob(&loop);
  EXPECT_EQ(job->ApplyActiveReplicaSet(TaskSet(4)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(AdaptationTest, RequiresPpaMode) {
  backend::SimBackend loop;
  JobConfig cfg = AdaptConfig();
  cfg.ft_mode = FtMode::kCheckpoint;
  StreamingJob job(MakeAdaptTopology(), cfg, JobRuntimeDeps(&loop));
  EXPECT_EQ(job.EnablePlanAdaptation(Duration::Seconds(5),
                                     [](const Topology&) {
                                       return TaskSet(4);
                                     })
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(AdaptationTest, EnableValidation) {
  backend::SimBackend loop;
  auto job = MakeJob(&loop);
  EXPECT_EQ(job->EnablePlanAdaptation(Duration::Zero(),
                                      [](const Topology&) {
                                        return TaskSet(4);
                                      })
                .code(),
            StatusCode::kInvalidArgument);
  PPA_CHECK_OK(job->Start());
  EXPECT_EQ(job->EnablePlanAdaptation(Duration::Seconds(5),
                                      [](const Topology&) {
                                        return TaskSet(4);
                                      })
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(AdaptationTest, MidRunActivationCatchesUpAndEnablesTakeover) {
  backend::SimBackend loop;
  auto job = MakeJob(&loop);
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10.5));
  EXPECT_EQ(job->replica(2), nullptr);

  // Activate a replica for mid (task 2) mid-run.
  TaskSet plan(4);
  plan.Add(2);
  PPA_CHECK_OK(job->ApplyActiveReplicaSet(plan));
  TaskRuntime* rep = job->replica(2);
  ASSERT_NE(rep, nullptr);
  // The replica caught up to the primary immediately (checkpoint +
  // buffered-output replay).
  EXPECT_EQ(rep->next_batch(), job->primary(2)->next_batch());
  EXPECT_GE(job->cluster().NodeOfReplica(2),
            job->cluster().num_workers());

  // Keep running: replica stays in lock-step.
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(15.5));
  EXPECT_EQ(job->replica(2)->next_batch(), job->primary(2)->next_batch());

  // A failure of mid's node is now recovered actively.
  const int node = job->cluster().NodeOfPrimary(2);
  PPA_CHECK_OK(job->InjectNodeFailure(node));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(25));
  ASSERT_EQ(job->recovery_reports().size(), 1u);
  bool mid_active = false;
  for (const TaskRecoverySpec& spec : job->recovery_reports()[0].specs) {
    if (spec.task == 2) {
      mid_active = spec.kind == RecoveryKind::kActiveReplica;
    }
  }
  EXPECT_TRUE(mid_active);
}

TEST(AdaptationTest, ActivationPreservesOutputCorrectness) {
  // A failure recovered through a *dynamically* activated replica must
  // still produce output identical to a failure-free run.
  backend::SimBackend clean_loop;
  auto clean = MakeJob(&clean_loop);
  PPA_CHECK_OK(clean->Start());
  clean_loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40));

  backend::SimBackend loop;
  auto job = MakeJob(&loop);
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10.5));
  TaskSet plan(4);
  plan.Add(2);
  PPA_CHECK_OK(job->ApplyActiveReplicaSet(plan));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(14.5));
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(2)));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40));

  ASSERT_EQ(job->sink_records().size(), clean->sink_records().size());
  for (size_t i = 0; i < job->sink_records().size(); ++i) {
    EXPECT_EQ(job->sink_records()[i].tuple, clean->sink_records()[i].tuple);
  }
}

TEST(AdaptationTest, DeactivationReleasesReplica) {
  backend::SimBackend loop;
  auto job = MakeJob(&loop);
  TaskSet initial(4);
  initial.Add(2);
  initial.Add(3);
  PPA_CHECK_OK(job->SetActiveReplicaSet(initial));
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(8.5));
  ASSERT_NE(job->replica(2), nullptr);
  ASSERT_NE(job->replica(3), nullptr);

  TaskSet reduced(4);
  reduced.Add(3);
  PPA_CHECK_OK(job->ApplyActiveReplicaSet(reduced));
  EXPECT_EQ(job->replica(2), nullptr);
  EXPECT_NE(job->replica(3), nullptr);
  EXPECT_EQ(job->cluster().NodeOfReplica(2), -1);

  // A later failure of task 2 is recovered passively.
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(2)));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(30));
  ASSERT_EQ(job->recovery_reports().size(), 1u);
  for (const TaskRecoverySpec& spec : job->recovery_reports()[0].specs) {
    if (spec.task == 2) {
      EXPECT_EQ(spec.kind, RecoveryKind::kCheckpoint);
    }
  }
}

TEST(AdaptationTest, RecoveringTaskKeepsItsReplica) {
  backend::SimBackend loop;
  auto job = MakeJob(&loop);
  TaskSet initial(4);
  initial.Add(2);
  PPA_CHECK_OK(job->SetActiveReplicaSet(initial));
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(8.5));
  // Fail the primary; before detection, try to deactivate its replica.
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(2)));
  PPA_CHECK_OK(job->ApplyActiveReplicaSet(TaskSet(4)));
  EXPECT_NE(job->replica(2), nullptr)
      << "the replica is the recovery path and must not be deactivated";
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(30));
  EXPECT_TRUE(job->AllRecovered());
}

TEST(AdaptationTest, ObservedTopologyTracksRatesAndSelectivity) {
  backend::SimBackend loop;
  auto job = MakeJob(&loop);
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(20.5));
  auto observed = job->ObservedTopology();
  ASSERT_TRUE(observed.ok()) << observed.status();
  // Source task 0 is hot (80/batch), task 1 cold (20/batch).
  const double r0 = observed->task(observed->op(0).tasks[0]).output_rate;
  const double r1 = observed->task(observed->op(0).tasks[1]).output_rate;
  EXPECT_NEAR(r0, 80.0, 8.0);
  EXPECT_NEAR(r1, 20.0, 4.0);
  // Operators emit ~0.5 tuples per input (window aggregate selectivity).
  EXPECT_NEAR(observed->op(1).selectivity, 0.5, 0.05);
  EXPECT_NEAR(observed->op(2).selectivity, 0.5, 0.05);
}

TEST(AdaptationTest, PeriodicAdaptationFollowsTheHotTask) {
  backend::SimBackend loop;
  // Hot task flips from src[0] to src[1] at batch 30.
  auto job = MakeJob(&loop, /*flip_batch=*/30);
  PPA_CHECK_OK(job->EnablePlanAdaptation(
      Duration::Seconds(10), [](const Topology& observed) -> StatusOr<TaskSet> {
        StructureAwarePlanner planner;
        PPA_ASSIGN_OR_RETURN(ReplicationPlan plan,
                             planner.Plan({observed, 3}));
        return plan.replicated;
      }));
  PPA_CHECK_OK(job->Start());

  // After the first adaptations (observing batches < 30), the replicated
  // source task is the hot src[0].
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(25));
  EXPECT_NE(job->replica(0), nullptr);
  EXPECT_EQ(job->replica(1), nullptr);

  // After the flip and another adaptation round, the plan follows the new
  // hot task.
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(55));
  EXPECT_EQ(job->replica(0), nullptr);
  EXPECT_NE(job->replica(1), nullptr);
}

}  // namespace
}  // namespace ppa
