// Property sweeps over the full engine: on randomly generated topologies
// with randomly chosen failure targets, every fault-tolerance mode must
// (a) detect and complete recovery, and (b) in the non-tentative modes,
// eventually reproduce the failure-free run's sink output exactly.

#include <algorithm>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "backend/sim_backend.h"
#include "common/random.h"
#include "engine/operators.h"
#include "runtime/streaming_job.h"
#include "topology/random_topology.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace {

constexpr int64_t kWindow = 4;

JobConfig PropertyConfig(FtMode mode) {
  JobConfig cfg;
  cfg.ft_mode = mode;
  cfg.batch_interval = Duration::Seconds(1);
  cfg.detection_interval = Duration::Seconds(2);
  cfg.checkpoint_interval = Duration::Seconds(3);
  cfg.replica_sync_interval = Duration::Seconds(2);
  cfg.num_worker_nodes = 8;
  cfg.num_standby_nodes = 8;
  cfg.stagger_checkpoints = true;  // Exercise asynchronous checkpoints.
  cfg.window_batches = kWindow;
  return cfg;
}

Topology MakePropertyTopology(uint64_t seed) {
  Rng rng(seed);
  RandomTopologyOptions opts;
  opts.min_operators = 3;
  opts.max_operators = 6;
  opts.min_parallelism = 1;
  opts.max_parallelism = 3;
  opts.join_fraction = 0.3;
  opts.kind = (seed % 2 == 0) ? RandomTopologyOptions::Kind::kStructured
                              : RandomTopologyOptions::Kind::kFull;
  opts.source_rate = 30.0;
  auto topo = GenerateRandomTopology(opts, &rng);
  PPA_CHECK(topo.ok());
  return *std::move(topo);
}

std::unique_ptr<StreamingJob> MakePropertyJob(const Topology& topo,
                                              FtMode mode, backend::ExecutionBackend* loop,
                                              uint64_t seed) {
  auto job = std::make_unique<StreamingJob>(topo, PropertyConfig(mode), JobRuntimeDeps(loop));
  for (const OperatorInfo& oi : topo.operators()) {
    if (oi.upstream.empty()) {
      PPA_CHECK_OK(job->BindSource(oi.id, [seed, id = oi.id] {
        return std::make_unique<SyntheticSource>(30, 32, seed * 131 + id);
      }));
    } else {
      PPA_CHECK_OK(job->BindOperator(oi.id, [sel = oi.selectivity] {
        return std::make_unique<SlidingWindowAggregateOperator>(kWindow,
                                                                sel);
      }));
    }
  }
  return job;
}

struct Sweep {
  uint64_t seed;
  FtMode mode;
};

/// Records as (batch, producer, seq, key, value) rows in canonical order.
std::vector<std::tuple<int64_t, TaskId, uint64_t, std::string, int64_t>>
Canonical(const std::vector<SinkRecord>& records) {
  std::vector<std::tuple<int64_t, TaskId, uint64_t, std::string, int64_t>>
      rows;
  rows.reserve(records.size());
  for (const SinkRecord& r : records) {
    rows.emplace_back(r.tuple.batch, r.tuple.producer, r.tuple.seq,
                      r.tuple.key, r.tuple.value);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class EngineRecoveryPropertyTest : public ::testing::TestWithParam<Sweep> {};

TEST_P(EngineRecoveryPropertyTest, RandomFailureIsSurvivedExactly) {
  const Sweep& sweep = GetParam();
  Topology topo = MakePropertyTopology(sweep.seed);

  // Oracle run.
  backend::SimBackend clean_loop;
  auto clean = MakePropertyJob(topo, sweep.mode, &clean_loop, sweep.seed);
  PPA_CHECK_OK(clean->Start());
  clean_loop.RunUntil(TimePoint::Zero() + Duration::Seconds(50));

  // Failure run: a random node hosting at least one primary.
  backend::SimBackend loop;
  auto job = MakePropertyJob(topo, sweep.mode, &loop, sweep.seed);
  PPA_CHECK_OK(job->Start());
  Rng rng(sweep.seed * 7 + 1);
  TaskId victim = static_cast<TaskId>(
      rng.NextUint64(static_cast<uint64_t>(topo.num_tasks())));
  const double fail_at = 9.0 + static_cast<double>(rng.NextUint64(6));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(fail_at));
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(victim)));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(50));

  EXPECT_TRUE(job->AllRecovered());
  ASSERT_EQ(job->recovery_reports().size(), 1u);
  EXPECT_GT(job->recovery_reports()[0].TotalLatency(), Duration::Zero());

  if (sweep.mode == FtMode::kCheckpoint ||
      sweep.mode == FtMode::kActiveReplication) {
    // Non-tentative modes with full-history recovery reproduce the oracle
    // exactly. Delivery *order* across different sink tasks may differ (a
    // stalled sink catches up after its peers), so compare canonically
    // ordered by (batch, producer, seq).
    ASSERT_EQ(Canonical(job->sink_records()),
              Canonical(clean->sink_records()));
  } else {
    // Source replay: the tail of the run (after the replayed window has
    // slid past the outage) matches the oracle.
    auto tail = [](const std::vector<SinkRecord>& records) {
      std::vector<Tuple> out;
      for (const SinkRecord& r : records) {
        if (r.tuple.batch >= 40) {
          out.push_back(r.tuple);
        }
      }
      return out;
    };
    const auto got = tail(job->sink_records());
    const auto want = tail(clean->sink_records());
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]);
    }
  }
}

std::vector<Sweep> MakeSweeps() {
  std::vector<Sweep> sweeps;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    for (FtMode mode : {FtMode::kCheckpoint, FtMode::kActiveReplication,
                        FtMode::kSourceReplay}) {
      sweeps.push_back(Sweep{seed, mode});
    }
  }
  return sweeps;
}

INSTANTIATE_TEST_SUITE_P(
    RandomTopologies, EngineRecoveryPropertyTest,
    ::testing::ValuesIn(MakeSweeps()),
    [](const ::testing::TestParamInfo<Sweep>& info) {
      std::string mode(FtModeToString(info.param.mode));
      for (char& c : mode) {
        if (c == '-') {
          c = '_';
        }
      }
      return "seed" + std::to_string(info.param.seed) + "_" + mode;
    });

TEST(SequentialFailuresTest, TwoFailuresBothRecoverExactly) {
  Topology topo = MakePropertyTopology(3);
  backend::SimBackend clean_loop;
  auto clean = MakePropertyJob(topo, FtMode::kCheckpoint, &clean_loop, 3);
  PPA_CHECK_OK(clean->Start());
  clean_loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));

  backend::SimBackend loop;
  auto job = MakePropertyJob(topo, FtMode::kCheckpoint, &loop, 3);
  PPA_CHECK_OK(job->Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10.5));
  PPA_CHECK_OK(job->InjectNodeFailure(job->cluster().NodeOfPrimary(0)));
  // Second failure on a different node while the first may still be in
  // flight.
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(13.2));
  const int second = job->cluster().NodeOfPrimary(
      topo.op(topo.sink_operators()[0]).tasks[0]);
  if (job->cluster().NodeAlive(second)) {
    PPA_CHECK_OK(job->InjectNodeFailure(second));
  }
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
  EXPECT_TRUE(job->AllRecovered());
  EXPECT_GE(job->recovery_reports().size(), 1u);
  ASSERT_EQ(Canonical(job->sink_records()),
            Canonical(clean->sink_records()));
}

TEST(SequentialFailuresTest, RepeatedFailureOfTheSameTaskRecovers) {
  Topology topo = MakePropertyTopology(5);
  backend::SimBackend loop;
  auto job = MakePropertyJob(topo, FtMode::kCheckpoint, &loop, 5);
  PPA_CHECK_OK(job->Start());
  const TaskId victim = topo.op(topo.sink_operators()[0]).tasks[0];
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(10.5));
  const int node = job->cluster().NodeOfPrimary(victim);
  PPA_CHECK_OK(job->InjectNodeFailure(node));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(30));
  ASSERT_TRUE(job->AllRecovered());
  // Revive the node and fail it again.
  job->cluster().ReviveNode(node);
  PPA_CHECK_OK(job->InjectNodeFailure(node));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
  EXPECT_TRUE(job->AllRecovered());
  EXPECT_EQ(job->recovery_reports().size(), 2u);
  EXPECT_TRUE(job->primary(victim)->alive());
}

}  // namespace
}  // namespace ppa
