#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/status_or.h"

namespace ppa {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(NotFound("x"), NotFound("x"));
  EXPECT_FALSE(NotFound("x") == NotFound("y"));
  EXPECT_FALSE(NotFound("x") == Internal("x"));
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPrecondition("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhausted("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("").code(), StatusCode::kInternal);
}

Status ReturnIfErrorHelper(const Status& s, bool* reached_end) {
  PPA_RETURN_IF_ERROR(s);
  *reached_end = true;
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  bool reached = false;
  EXPECT_TRUE(ReturnIfErrorHelper(OkStatus(), &reached).ok());
  EXPECT_TRUE(reached);
  reached = false;
  Status s = ReturnIfErrorHelper(Internal("boom"), &reached);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_FALSE(reached);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> AssignOrReturnHelper(StatusOr<int> in) {
  int doubled = 0;
  PPA_ASSIGN_OR_RETURN(doubled, in);
  return doubled * 2;
}

TEST(StatusOrDeathTest, ValueOnErrorDiesThroughLogging) {
  StatusOr<int> v = NotFound("missing blob");
  // The death message must come from common/logging (FATAL with file:line)
  // and embed the carried status.
  EXPECT_DEATH(v.value(),
               "FATAL.*StatusOr::value\\(\\) called on error: "
               "NotFound: missing blob");
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  StatusOr<int> ok = AssignOrReturnHelper(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  StatusOr<int> err = AssignOrReturnHelper(Internal("x"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.NextInt(0, 3));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTest, UniformWhenSZero) {
  ZipfGenerator zipf(10, 0.0);
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(zipf.Pmf(r), 0.1, 1e-12);
  }
}

TEST(ZipfTest, PmfDecreasesWithRank) {
  ZipfGenerator zipf(100, 1.0);
  for (size_t r = 1; r < 100; ++r) {
    EXPECT_GT(zipf.Pmf(r - 1), zipf.Pmf(r));
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfGenerator zipf(1000, 0.5);
  double total = 0.0;
  for (size_t r = 0; r < 1000; ++r) {
    total += zipf.Pmf(r);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, SampleMatchesPmf) {
  ZipfGenerator zipf(5, 1.0);
  Rng rng(42);
  std::vector<int> counts(5, 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[zipf.Sample(&rng)];
  }
  for (size_t r = 0; r < 5; ++r) {
    double freq = static_cast<double>(counts[r]) / kDraws;
    EXPECT_NEAR(freq, zipf.Pmf(r), 0.01) << "rank " << r;
  }
}

TEST(HashTest, StableKnownValues) {
  // FNV-1a 64 reference value for the empty string.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("acb"));
}

TEST(HashTest, Mix64Bijective) {
  std::set<uint64_t> out;
  for (uint64_t i = 0; i < 1000; ++i) {
    out.insert(Mix64(i));
  }
  EXPECT_EQ(out.size(), 1000u);
}

TEST(SimTimeTest, Arithmetic) {
  Duration d = Duration::Seconds(1.5);
  EXPECT_EQ(d.micros(), 1500000);
  EXPECT_EQ((d + Duration::Millis(500)).micros(), 2000000);
  EXPECT_EQ((d - Duration::Millis(500)).micros(), 1000000);
  EXPECT_EQ((d * 2).micros(), 3000000);
  EXPECT_EQ((d / 3).micros(), 500000);
  TimePoint t = TimePoint::Zero() + d;
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
  EXPECT_EQ((t - TimePoint::Zero()).micros(), d.micros());
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(Duration::Millis(1), Duration::Millis(2));
  EXPECT_LE(TimePoint::Zero(), TimePoint::FromMicros(0));
  EXPECT_GT(TimePoint::FromMicros(5), TimePoint::FromMicros(4));
}

TEST(SimTimeTest, ToString) {
  EXPECT_EQ(Duration::Seconds(2.0).ToString(), "2.000000s");
  EXPECT_EQ(TimePoint::FromMicros(1500000).ToString(), "t=1.500000s");
}

}  // namespace
}  // namespace ppa
