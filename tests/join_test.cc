#include <memory>

#include <gtest/gtest.h>

#include "engine/operators.h"

namespace ppa {
namespace {

Tuple T(const char* key, int64_t value) {
  Tuple t;
  t.key = key;
  t.value = value;
  return t;
}

/// Left stream: values < 1000; right stream: values >= 1000.
SymmetricWindowJoinOperator MakeJoin(int64_t window) {
  return SymmetricWindowJoinOperator(
      window, [](const Tuple& t) { return t.value < 1000; });
}

TEST(SymmetricJoinTest, MatchesWithinBatch) {
  auto op = MakeJoin(4);
  BatchContext ctx(0, 0, 1);
  // Left "a"=5 arrives first, right "a"=1002 probes and matches it.
  op.ProcessBatch(&ctx, {T("a", 5), T("a", 1002), T("b", 7)});
  ASSERT_EQ(ctx.emitted().size(), 1u);
  EXPECT_EQ(ctx.emitted()[0].key, "a");
  EXPECT_EQ(ctx.emitted()[0].value, 5 + 1002);
}

TEST(SymmetricJoinTest, MatchesAcrossBatchesWithinWindow) {
  auto op = MakeJoin(4);
  BatchContext c0(0, 0, 1);
  op.ProcessBatch(&c0, {T("x", 1)});
  EXPECT_TRUE(c0.emitted().empty());
  BatchContext c2(2, 0, 1);
  op.ProcessBatch(&c2, {T("x", 1005)});
  ASSERT_EQ(c2.emitted().size(), 1u);
  EXPECT_EQ(c2.emitted()[0].value, 1006);
}

TEST(SymmetricJoinTest, WindowEvictsOldTuples) {
  auto op = MakeJoin(3);
  BatchContext c0(0, 0, 1);
  op.ProcessBatch(&c0, {T("x", 1)});
  // Batch 3: x@0 is 3 batches old (0 <= 3 - 3) -> evicted before probing.
  BatchContext c3(3, 0, 1);
  op.ProcessBatch(&c3, {T("x", 1005)});
  EXPECT_TRUE(c3.emitted().empty());
  EXPECT_EQ(op.StateSizeTuples(), 1);  // Only the right tuple remains.
}

TEST(SymmetricJoinTest, OneToManyEmitsEveryMatch) {
  auto op = MakeJoin(4);
  BatchContext c0(0, 0, 1);
  op.ProcessBatch(&c0, {T("k", 1), T("k", 2), T("k", 3)});
  BatchContext c1(1, 0, 1);
  op.ProcessBatch(&c1, {T("k", 1000)});
  ASSERT_EQ(c1.emitted().size(), 3u);
  EXPECT_EQ(c1.emitted()[0].value, 1001);
  EXPECT_EQ(c1.emitted()[1].value, 1002);
  EXPECT_EQ(c1.emitted()[2].value, 1003);
}

TEST(SymmetricJoinTest, CustomCombiner) {
  SymmetricWindowJoinOperator op(
      4, [](const Tuple& t) { return t.value < 1000; },
      [](int64_t l, int64_t r) { return r - l; });
  BatchContext ctx(0, 0, 1);
  op.ProcessBatch(&ctx, {T("a", 10), T("a", 1010)});
  ASSERT_EQ(ctx.emitted().size(), 1u);
  EXPECT_EQ(ctx.emitted()[0].value, 1000);
}

TEST(SymmetricJoinTest, SnapshotRestoreRoundTrip) {
  auto a = MakeJoin(5);
  auto b = MakeJoin(5);
  for (int64_t batch = 0; batch < 3; ++batch) {
    BatchContext ctx(batch, 0, 1);
    a.ProcessBatch(&ctx, {T("a", batch), T("b", 1000 + batch)});
  }
  auto snap = a.SnapshotState();
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(b.RestoreState(*snap).ok());
  EXPECT_EQ(b.StateSizeTuples(), a.StateSizeTuples());
  // Identical future behaviour.
  BatchContext ca(3, 0, 1), cb(3, 0, 1);
  std::vector<Tuple> probe = {T("a", 1000), T("b", 1)};
  a.ProcessBatch(&ca, probe);
  b.ProcessBatch(&cb, probe);
  ASSERT_EQ(ca.emitted().size(), cb.emitted().size());
  for (size_t i = 0; i < ca.emitted().size(); ++i) {
    EXPECT_EQ(ca.emitted()[i].key, cb.emitted()[i].key);
    EXPECT_EQ(ca.emitted()[i].value, cb.emitted()[i].value);
  }
}

TEST(SymmetricJoinTest, ResetClearsBothSides) {
  auto op = MakeJoin(5);
  BatchContext c0(0, 0, 1);
  op.ProcessBatch(&c0, {T("a", 1), T("b", 1001)});
  EXPECT_EQ(op.StateSizeTuples(), 2);
  op.Reset();
  EXPECT_EQ(op.StateSizeTuples(), 0);
  EXPECT_FALSE(op.SupportsDeltaSnapshots());
}

}  // namespace
}  // namespace ppa
