#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "common/random.h"
#include "fidelity/metrics.h"
#include "tests/test_topologies.h"
#include "topology/random_topology.h"
#include "topology/serialize.h"

namespace ppa {
namespace {

using ::ppa::testing::MakeFig2;

constexpr char kSpec[] = R"(
# Q-like pipeline
operator logs 4 rate=2000
operator events 2 rate=500
operator clean 2 selectivity=0.8
operator join 2 join selectivity=0.5
operator out 1

edge logs clean merge
edge clean join one-to-one
edge events join one-to-one
edge join out merge

weight logs 0 2
)";

TEST(TopologySpecTest, ParsesFullSpec) {
  auto topo = ParseTopologySpec(kSpec);
  ASSERT_TRUE(topo.ok()) << topo.status();
  EXPECT_EQ(topo->num_operators(), 5);
  EXPECT_EQ(topo->num_tasks(), 11);
  const OperatorInfo& join = topo->op(3);
  EXPECT_EQ(join.name, "join");
  EXPECT_EQ(join.correlation, InputCorrelation::kCorrelated);
  EXPECT_DOUBLE_EQ(join.selectivity, 0.5);
  // Source rates applied.
  double logs_rate = 0;
  for (TaskId t : topo->op(0).tasks) {
    logs_rate += topo->task(t).output_rate;
  }
  EXPECT_DOUBLE_EQ(logs_rate, 2000.0);
  // Weight applied: logs[0] gets 2/5 of the rate.
  EXPECT_DOUBLE_EQ(topo->task(topo->op(0).tasks[0]).output_rate, 800.0);
}

TEST(TopologySpecTest, ErrorsCarryLineNumbers) {
  EXPECT_THAT(ParseTopologySpec("operator x").status().message(),
              ::testing::HasSubstr("line 1"));
  EXPECT_THAT(
      ParseTopologySpec("operator x 2\nedge x y full").status().message(),
      ::testing::HasSubstr("line 2"));
  EXPECT_THAT(
      ParseTopologySpec("frobnicate").status().message(),
      ::testing::HasSubstr("unknown directive"));
  EXPECT_THAT(
      ParseTopologySpec("operator x 2\noperator x 3").status().message(),
      ::testing::HasSubstr("duplicate"));
  EXPECT_THAT(ParseTopologySpec("operator x 2 turbo=1").status().message(),
              ::testing::HasSubstr("unknown operator option"));
  EXPECT_THAT(
      ParseTopologySpec("operator x 2\nweight y 0 1").status().message(),
      ::testing::HasSubstr("undeclared"));
  EXPECT_THAT(
      ParseTopologySpec("operator a 2\nedge a a full").status().message(),
      ::testing::HasSubstr("itself"));
}

TEST(TopologySpecTest, RoundTripPreservesStructureAndRates) {
  testing::Fig2Topology f = MakeFig2(InputCorrelation::kCorrelated);
  const std::string spec = ToSpec(f.topo);
  auto parsed = ParseTopologySpec(spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\nspec:\n" << spec;
  ASSERT_EQ(parsed->num_operators(), f.topo.num_operators());
  ASSERT_EQ(parsed->num_tasks(), f.topo.num_tasks());
  for (OperatorId op = 0; op < f.topo.num_operators(); ++op) {
    EXPECT_EQ(parsed->op(op).name, f.topo.op(op).name);
    EXPECT_EQ(parsed->op(op).correlation, f.topo.op(op).correlation);
  }
  for (TaskId t = 0; t < f.topo.num_tasks(); ++t) {
    EXPECT_NEAR(parsed->task(t).output_rate, f.topo.task(t).output_rate,
                1e-9);
  }
}

class SpecRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpecRoundTripTest, RandomTopologiesRoundTrip) {
  Rng rng(GetParam() * 31 + 5);
  RandomTopologyOptions opts;
  opts.join_fraction = 0.5;
  opts.skew = RandomTopologyOptions::WorkloadSkew::kZipf;
  auto topo = GenerateRandomTopology(opts, &rng);
  ASSERT_TRUE(topo.ok());
  auto parsed = ParseTopologySpec(ToSpec(*topo));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->num_tasks(), topo->num_tasks());
  // Equivalent topologies agree on fidelity values for arbitrary failure
  // sets — a strong semantic round-trip check.
  TaskSet failed(topo->num_tasks());
  for (TaskId t = 0; t < topo->num_tasks(); t += 3) {
    failed.Add(t);
  }
  EXPECT_NEAR(ComputeOutputFidelity(*parsed, failed),
              ComputeOutputFidelity(*topo, failed), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, SpecRoundTripTest,
                         ::testing::Range(uint64_t{0}, uint64_t{12}));

TEST(ToDotTest, RendersOperatorsEdgesAndPlan) {
  testing::Fig2Topology f = MakeFig2(InputCorrelation::kCorrelated);
  TaskSet plan(f.topo.num_tasks());
  plan.Add(f.t21);
  plan.Add(f.t31);
  const std::string dot = ToDot(f.topo, &plan);
  EXPECT_THAT(dot, ::testing::HasSubstr("digraph topology"));
  EXPECT_THAT(dot, ::testing::HasSubstr("O1\\nx2"));
  EXPECT_THAT(dot, ::testing::HasSubstr("(join)"));
  EXPECT_THAT(dot, ::testing::HasSubstr("1/2 replicated"));
  EXPECT_THAT(dot, ::testing::HasSubstr("label=\"merge\""));
  EXPECT_THAT(dot, ::testing::HasSubstr("fillcolor=lightblue"));
  // Without a plan, no replication annotations.
  const std::string bare = ToDot(f.topo);
  EXPECT_THAT(bare, ::testing::Not(::testing::HasSubstr("replicated")));
}

}  // namespace
}  // namespace ppa
