#include <memory>
#include <string>
#include <vector>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "chaos/generator.h"
#include "chaos/multi_tenant.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "runtime/cluster.h"
#include "runtime/scenario.h"
#include "service/arbiter.h"
#include "service/cluster_service.h"
#include "service/tenant.h"
#include "backend/sim_backend.h"

namespace ppa {
namespace {

using ::testing::HasSubstr;

constexpr char kChain2[] =
    "operator src 1 rate=20\n"
    "operator sink 1\n"
    "edge src sink one-to-one\n";

constexpr char kChain3[] =
    "operator src 1 rate=20\n"
    "operator mid 1\n"
    "operator sink 1\n"
    "edge src mid one-to-one\n"
    "edge mid sink one-to-one\n";

TimePoint At(double seconds) {
  return TimePoint::Zero() + Duration::Seconds(seconds);
}

// ---------------------------------------------------------------------------
// Arbitration policy.

TEST(ArbiterTest, OrdersByPriorityThenFidelityThenTenant) {
  std::vector<service::ArbitrationClaim> claims;
  claims.push_back({/*tenant=*/2, /*priority=*/1, /*fidelity_at_risk=*/0.5, 1});
  claims.push_back({/*tenant=*/0, /*priority=*/0, /*fidelity_at_risk=*/0.1, 1});
  claims.push_back({/*tenant=*/1, /*priority=*/0, /*fidelity_at_risk=*/0.9, 2});
  claims.push_back({/*tenant=*/3, /*priority=*/1, /*fidelity_at_risk=*/0.5, 1});
  const std::vector<service::ArbitrationClaim> order =
      service::ArbitrationOrder(std::move(claims));
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0].tenant, 1);  // priority 0, most fidelity at risk.
  EXPECT_EQ(order[1].tenant, 0);
  EXPECT_EQ(order[2].tenant, 2);  // priority 1 tie broken by tenant id.
  EXPECT_EQ(order[3].tenant, 3);
}

// ---------------------------------------------------------------------------
// PlaceReplicaAuto determinism (referenced by the cluster.h contract).

TEST(ServiceTest, PlaceReplicaAutoBreaksTiesByLowestNodeId) {
  Cluster cluster(/*num_workers=*/3, /*num_standbys=*/3);
  PPA_CHECK_OK(cluster.PlacePrimary(0, 0));
  PPA_CHECK_OK(cluster.PlacePrimary(1, 1));
  PPA_CHECK_OK(cluster.PlacePrimary(2, 2));
  PPA_CHECK_OK(cluster.PlacePrimary(3, 0));

  // All standbys start equally loaded: ties break toward the lowest id.
  PPA_CHECK_OK(cluster.PlaceReplicaAuto(0));
  EXPECT_EQ(cluster.NodeOfReplica(0), 3);
  PPA_CHECK_OK(cluster.PlaceReplicaAuto(1));
  EXPECT_EQ(cluster.NodeOfReplica(1), 4);
  PPA_CHECK_OK(cluster.PlaceReplicaAuto(2));
  EXPECT_EQ(cluster.NodeOfReplica(2), 5);
  // Every standby holds one replica again: the wrap-around tie also
  // resolves to the lowest node id.
  PPA_CHECK_OK(cluster.PlaceReplicaAuto(3));
  EXPECT_EQ(cluster.NodeOfReplica(3), 3);
}

TEST(ServiceTest, PlaceReplicaAutoHonorsCeilingExceptForReplacement) {
  Cluster cluster(/*num_workers=*/2, /*num_standbys=*/2);
  PlacementConstraints constraints;
  constraints.replica_ceiling = 1;
  cluster.SetConstraints(constraints);
  PPA_CHECK_OK(cluster.PlacePrimary(0, 0));
  PPA_CHECK_OK(cluster.PlacePrimary(1, 1));
  PPA_CHECK_OK(cluster.PlaceReplicaAuto(0));
  EXPECT_EQ(cluster.PlaceReplicaAuto(1).code(),
            StatusCode::kResourceExhausted);
  // Re-placing a task that already holds a replica never counts twice.
  EXPECT_TRUE(cluster.PlaceReplicaAuto(0).ok());
  EXPECT_EQ(cluster.PlacedReplicas(), 1);
}

TEST(ServiceTest, PromoteReplicaToPrimaryMovesPlacementAndFreesSlot) {
  Cluster cluster(/*num_workers=*/2, /*num_standbys=*/2);
  PPA_CHECK_OK(cluster.PlacePrimary(0, 0));
  PPA_CHECK_OK(cluster.PlaceReplicaAuto(0));
  const int standby = cluster.NodeOfReplica(0);
  ASSERT_GE(standby, 2);

  PPA_CHECK_OK(cluster.PromoteReplicaToPrimary(0));
  EXPECT_EQ(cluster.NodeOfPrimary(0), standby);
  EXPECT_EQ(cluster.NodeOfReplica(0), -1);
  EXPECT_EQ(cluster.PlacedReplicas(), 0);
  EXPECT_EQ(cluster.pool().PrimaryLoad(standby), 1);
  EXPECT_EQ(cluster.pool().ReplicaLoad(standby), 0);
  EXPECT_EQ(cluster.pool().PrimaryLoad(0), 0);
  // A second promotion has nothing to promote.
  EXPECT_EQ(cluster.PromoteReplicaToPrimary(0).code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Admission control edge cases.

TEST(ServiceTest, ZeroStandbyClusterRejectsReplicaBudgets) {
  backend::SimBackend loop;
  service::ServiceConfig config;
  config.num_worker_nodes = 2;
  config.num_standby_nodes = 0;
  config.worker_slots_per_node = 2;
  config.standby_slots_per_node = 1;
  service::ClusterService svc(config, &loop);

  service::TenantSpec wants_replicas;
  wants_replicas.topology_spec = kChain2;
  wants_replicas.replica_budget = 1;
  auto rejected = svc.Submit(std::move(wants_replicas));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_THAT(rejected.status().message(), HasSubstr("standby"));

  // Passive-only tenants (budget zero) still fit a standby-less cluster.
  service::TenantSpec passive;
  passive.topology_spec = kChain2;
  passive.replica_budget = 0;
  auto admitted = svc.Submit(std::move(passive));
  ASSERT_TRUE(admitted.ok()) << admitted.status();
  auto phase = svc.PhaseOf(*admitted);
  ASSERT_TRUE(phase.ok());
  EXPECT_EQ(*phase, service::TenantPhase::kRunning);
  EXPECT_EQ(svc.stats().rejected, 1);
  EXPECT_EQ(svc.stats().admitted, 1);
}

TEST(ServiceTest, JobLargerThanClusterIsRejectedNotQueued) {
  backend::SimBackend loop;
  service::ServiceConfig config;
  config.num_worker_nodes = 2;
  config.num_standby_nodes = 1;
  config.worker_slots_per_node = 1;
  service::ClusterService svc(config, &loop);

  service::TenantSpec spec;
  spec.topology_spec = kChain3;  // 3 tasks, capacity 2.
  auto submitted = svc.Submit(std::move(spec));
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(svc.stats().rejected, 1);
  EXPECT_EQ(svc.stats().queued, 0);
  EXPECT_TRUE(svc.TenantIds().empty());
}

TEST(ServiceTest, QueueAdmitsByPriorityThenArrivalAfterEviction) {
  backend::SimBackend loop;
  service::ServiceConfig config;
  config.num_worker_nodes = 1;
  config.num_standby_nodes = 1;
  config.worker_slots_per_node = 2;
  service::ClusterService svc(config, &loop);

  service::TenantSpec a;
  a.topology_spec = kChain2;
  auto a_id = svc.Submit(std::move(a));
  ASSERT_TRUE(a_id.ok()) << a_id.status();

  service::TenantSpec c;
  c.topology_spec = kChain2;
  c.priority = 1;
  auto c_id = svc.Submit(std::move(c));
  ASSERT_TRUE(c_id.ok()) << c_id.status();

  // B arrives after C but outranks it: eviction must admit B first.
  service::TenantSpec b;
  b.topology_spec = kChain2;
  b.priority = 0;
  auto b_id = svc.Submit(std::move(b));
  ASSERT_TRUE(b_id.ok()) << b_id.status();

  EXPECT_EQ(*svc.PhaseOf(*a_id), service::TenantPhase::kRunning);
  EXPECT_EQ(*svc.PhaseOf(*b_id), service::TenantPhase::kQueued);
  EXPECT_EQ(*svc.PhaseOf(*c_id), service::TenantPhase::kQueued);

  PPA_CHECK_OK(svc.Evict(*a_id));
  EXPECT_EQ(*svc.PhaseOf(*a_id), service::TenantPhase::kEvicted);
  EXPECT_EQ(*svc.PhaseOf(*b_id), service::TenantPhase::kRunning);
  EXPECT_EQ(*svc.PhaseOf(*c_id), service::TenantPhase::kQueued);
  EXPECT_EQ(svc.stats().evicted, 1);
}

TEST(ServiceTest, ReviveDomainReadmitsQueuedTenant) {
  backend::SimBackend loop;
  service::ServiceConfig config;
  config.num_worker_nodes = 4;
  config.num_standby_nodes = 1;
  config.worker_slots_per_node = 2;
  service::ClusterService svc(config, &loop);
  PPA_CHECK_OK(svc.AssignDomain(0, 0));
  PPA_CHECK_OK(svc.AssignDomain(1, 0));
  PPA_CHECK_OK(svc.AssignDomain(2, 1));
  PPA_CHECK_OK(svc.AssignDomain(3, 1));
  PPA_CHECK_OK(svc.AssignDomain(4, 2));

  service::TenantSpec a;
  a.topology_spec = kChain2;
  auto a_id = svc.Submit(std::move(a));
  ASSERT_TRUE(a_id.ok()) << a_id.status();

  PPA_CHECK_OK(svc.InjectDomainFailure(1));

  // B only tolerates the failed domain's workers, so it has to wait.
  service::TenantSpec b;
  b.topology_spec = kChain2;
  b.worker_affinity = {2, 3};
  auto b_id = svc.Submit(std::move(b));
  ASSERT_TRUE(b_id.ok()) << b_id.status();
  EXPECT_EQ(*svc.PhaseOf(*b_id), service::TenantPhase::kQueued);

  PPA_CHECK_OK(svc.ReviveDomain(1));
  EXPECT_EQ(*svc.PhaseOf(*b_id), service::TenantPhase::kRunning);
  StreamingJob* job = svc.job(*b_id);
  ASSERT_NE(job, nullptr);
  for (TaskId t = 0; t < 2; ++t) {
    const int node = job->cluster().NodeOfPrimary(t);
    EXPECT_TRUE(node == 2 || node == 3) << "task " << t << " on " << node;
  }
}

// ---------------------------------------------------------------------------
// Standby rebalancing: degradation and re-promotion.

TEST(ServiceTest, StandbyLossDegradesLeastImportantTenantAndReviveRestores) {
  backend::SimBackend loop;
  service::ServiceConfig config;
  config.num_worker_nodes = 2;
  config.num_standby_nodes = 2;
  config.worker_slots_per_node = 2;
  config.standby_slots_per_node = 1;
  service::ClusterService svc(config, &loop);

  service::TenantSpec a;
  a.topology_spec = kChain2;
  a.replica_budget = 1;
  a.priority = 0;
  a.initial_plan = {1};
  auto a_id = svc.Submit(std::move(a));
  ASSERT_TRUE(a_id.ok()) << a_id.status();

  service::TenantSpec b;
  b.topology_spec = kChain2;
  b.replica_budget = 1;
  b.priority = 1;
  b.initial_plan = {1};
  auto b_id = svc.Submit(std::move(b));
  ASSERT_TRUE(b_id.ok()) << b_id.status();

  loop.RunUntil(At(5));
  ASSERT_EQ(svc.job(*b_id)->cluster().NodeOfReplica(1), 3);

  // Losing standby 3 halves the pool: the lower-priority tenant degrades
  // to passive-only fault tolerance.
  PPA_CHECK_OK(svc.InjectNodeFailure(3));
  EXPECT_EQ(*svc.PhaseOf(*a_id), service::TenantPhase::kRunning);
  EXPECT_EQ(*svc.PhaseOf(*b_id), service::TenantPhase::kDegraded);
  EXPECT_EQ(svc.stats().degradations, 1);
  EXPECT_EQ(svc.job(*b_id)->cluster().PlacedReplicas(), 0);

  PPA_CHECK_OK(svc.ReviveNode(3));
  EXPECT_EQ(*svc.PhaseOf(*b_id), service::TenantPhase::kRunning);
  EXPECT_EQ(svc.stats().promotions, 1);
  EXPECT_EQ(svc.job(*b_id)->cluster().NodeOfReplica(1), 3);
}

// ---------------------------------------------------------------------------
// The 16-tenant correlated-failure drill.

service::ServiceConfig DrillConfig() {
  service::ServiceConfig config;
  config.num_worker_nodes = 12;
  config.num_standby_nodes = 8;
  config.worker_slots_per_node = 4;
  config.standby_slots_per_node = 2;
  config.arbitration_slot = Duration::Seconds(2);
  return config;
}

/// Submits the 16 drill tenants: tenant i is a 3-task chain pinned to
/// failure domain i % 4 with priority i / 4 and one active replica.
void SubmitDrillTenants(service::ClusterService* svc) {
  for (int node = 0; node < 20; ++node) {
    PPA_CHECK_OK(svc->AssignDomain(node, node / 3));
  }
  for (int i = 0; i < 16; ++i) {
    const int d = i % 4;
    service::TenantSpec spec;
    spec.topology_spec = kChain3;
    spec.replica_budget = 1;
    spec.priority = i / 4;
    spec.initial_plan = {1};
    spec.worker_affinity = {3 * d, 3 * d + 1, 3 * d + 2};
    auto id = svc->Submit(std::move(spec));
    PPA_CHECK_OK(id.status());
    PPA_CHECK(*id == i);
  }
}

/// Runs the drill to completion and returns the service report bytes.
std::string RunDrillToReport(backend::ExecutionBackend* loop, service::ClusterService* svc) {
  SubmitDrillTenants(svc);
  loop->RunUntil(At(10));
  PPA_CHECK_OK(svc->InjectDomainFailure(0));
  double horizon = 10;
  while (!svc->AllRecovered() && horizon < 400) {
    horizon += 5;
    loop->RunUntil(At(horizon));
  }
  loop->RunUntil(At(horizon + 30));
  return svc->ReportToJson().Serialize();
}

TEST(ServiceDrillTest, DomainFailureArbitratesAcrossFourTenants) {
  backend::SimBackend loop;
  service::ClusterService svc(DrillConfig(), &loop);
  SubmitDrillTenants(&svc);
  EXPECT_EQ(svc.stats().admitted, 16);
  EXPECT_EQ(svc.stats().queued, 0);

  loop.RunUntil(At(10));
  PPA_CHECK_OK(svc.InjectDomainFailure(0));

  // Domain 0 hosts exactly the four tenants pinned to it, one per
  // priority class: the arbiter must rank them 0, 4, 8, 12 with
  // rank-proportional holds.
  ASSERT_EQ(svc.arbitration_log().size(), 1u);
  const service::ArbitrationDecision& decision = svc.arbitration_log().back();
  ASSERT_EQ(decision.order.size(), 4u);
  const int expected_tenants[] = {0, 4, 8, 12};
  for (size_t rank = 0; rank < 4; ++rank) {
    EXPECT_EQ(decision.order[rank].claim.tenant, expected_tenants[rank]);
    EXPECT_EQ(decision.order[rank].claim.priority, static_cast<int>(rank));
    EXPECT_EQ(decision.order[rank].hold,
              Duration::Seconds(2) * static_cast<int64_t>(rank));
  }

  double horizon = 10;
  while (!svc.AllRecovered() && horizon < 400) {
    horizon += 5;
    loop.RunUntil(At(horizon));
  }
  EXPECT_TRUE(svc.AllRecovered());
  loop.RunUntil(At(horizon + 30));

  // The top-ranked tenant recovered immediately; every later rank
  // consumed at least one arbitration hold. Unaffected tenants never
  // entered arbitration.
  EXPECT_EQ(svc.HoldsApplied(0), 0);
  EXPECT_GE(svc.HoldsApplied(4), 1);
  EXPECT_GE(svc.HoldsApplied(8), 1);
  EXPECT_GE(svc.HoldsApplied(12), 1);
  EXPECT_EQ(svc.HoldsApplied(1), 0);
  for (int i = 0; i < 16; ++i) {
    const StreamingJob* job = svc.job(i);
    ASSERT_NE(job, nullptr) << "tenant " << i;
    EXPECT_FALSE(job->sink_records().empty()) << "tenant " << i;
  }
}

TEST(ServiceDrillTest, ReportIsByteIdenticalAcrossRuns) {
  backend::SimBackend loop_a;
  service::ClusterService svc_a(DrillConfig(), &loop_a);
  backend::SimBackend loop_b;
  service::ClusterService svc_b(DrillConfig(), &loop_b);
  EXPECT_EQ(RunDrillToReport(&loop_a, &svc_a),
            RunDrillToReport(&loop_b, &svc_b));
}

TEST(ServiceDrillTest, DrillPassesEveryMultiTenantInvariant) {
  // The same drill expressed as a multi-tenant chaos case: the runner
  // checks per-tenant exactly-once stable output against fault-free
  // goldens plus the service-level budget and arbitration invariants.
  chaos::MultiTenantCase mt_case;
  mt_case.seed = 16;
  mt_case.num_worker_nodes = 12;
  mt_case.num_standby_nodes = 8;
  mt_case.worker_slots_per_node = 4;
  mt_case.standby_slots_per_node = 2;
  mt_case.arbitration_slot_seconds = 2;
  mt_case.window_batches = 10;
  for (int node = 0; node < 20; ++node) {
    mt_case.node_domains.push_back(node / 3);
  }
  for (int i = 0; i < 16; ++i) {
    const int d = i % 4;
    chaos::TenantCase tenant;
    tenant.topology_spec = kChain3;
    tenant.replica_budget = 1;
    tenant.priority = i / 4;
    tenant.initial_plan = {1};
    tenant.worker_affinity = {3 * d, 3 * d + 1, 3 * d + 2};
    mt_case.tenants.push_back(std::move(tenant));
  }
  ScenarioEvent failure;
  failure.at = Duration::Seconds(10);
  failure.kind = ScenarioEvent::Kind::kDomainFailure;
  failure.domain = 0;
  mt_case.events.push_back(failure);
  mt_case.run_for_seconds = 60;

  auto report = chaos::RunMultiTenantCase(mt_case);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->tenants_admitted, 16u);
  EXPECT_EQ(report->tenants_queued, 0u);
  EXPECT_EQ(report->arbitrations, 1u);
  for (const chaos::ChaosViolation& violation : report->violations) {
    ADD_FAILURE() << "[" << violation.invariant << "] " << violation.message;
  }
}

// ---------------------------------------------------------------------------
// Multi-tenant chaos cases.

TEST(MultiTenantCaseTest, JsonRoundTrips) {
  auto generated =
      chaos::GenerateMultiTenantCase(chaos::ChaosIntensity::Medium(), 777);
  ASSERT_TRUE(generated.ok()) << generated.status();
  auto parsed = chaos::ParseMultiTenantCaseJson(
      chaos::MultiTenantCaseToJson(*generated).Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, *generated);
}

TEST(MultiTenantCaseTest, SameSeedSameCase) {
  auto a = chaos::GenerateMultiTenantCase(chaos::ChaosIntensity::Medium(), 9);
  auto b = chaos::GenerateMultiTenantCase(chaos::ChaosIntensity::Medium(), 9);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  auto c = chaos::GenerateMultiTenantCase(chaos::ChaosIntensity::Medium(), 10);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(*a == *c);
}

TEST(MultiTenantCaseTest, GeneratedCaseRunsClean) {
  auto generated =
      chaos::GenerateMultiTenantCase(chaos::ChaosIntensity::Low(), 7);
  ASSERT_TRUE(generated.ok()) << generated.status();
  auto report = chaos::RunMultiTenantCase(*generated);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->seed, 7u);
  EXPECT_EQ(report->events_executed, report->events_scheduled);
  EXPECT_GT(report->sink_records, 0u);
  for (const chaos::ChaosViolation& violation : report->violations) {
    ADD_FAILURE() << "[" << violation.invariant << "] " << violation.message;
  }
}

}  // namespace
}  // namespace ppa
