// ppa_lint: enforces the project's determinism, error-handling, and
// hygiene invariants over the C++ sources. Run from CMake/ctest as
//   ppa_lint --root <repo_root> [relative paths...]
// With no explicit paths it lints src/, tests/, bench/, examples/, and
// tools/. Exits 0 iff no diagnostics fire. See tools/ppa_lint/linter.h for
// the rule list and DESIGN.md §10 for the rationale.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/ppa_lint/linter.h"

namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

/// Repo-relative '/'-separated path string.
std::string RelPath(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

bool IsExcluded(const std::string& rel) {
  // Fixture files are intentionally full of violations.
  return rel.find("testdata/") != std::string::npos ||
         rel.find("build") == 0;
}

int LintOne(const fs::path& file, const fs::path& root, int* files_linted) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::cerr << "ppa_lint: cannot read " << file << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ++*files_linted;
  int failures = 0;
  for (const ppa::lint::Diagnostic& d :
       ppa::lint::LintFile(RelPath(file, root), buf.str())) {
    std::cerr << ppa::lint::FormatDiagnostic(d) << "\n";
    ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list_rules") {
      for (const std::string& rule : ppa::lint::AllRuleNames()) {
        std::cout << rule << "\n";
      }
      return 0;
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--help") {
      std::cout << "usage: ppa_lint [--root <dir>] [--list_rules] "
                   "[paths...]\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    paths = {"src", "tests", "bench", "examples", "tools"};
  }

  int failures = 0;
  int files_linted = 0;
  for (const std::string& p : paths) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    if (fs::is_directory(abs)) {
      std::vector<fs::path> files;
      for (const auto& entry : fs::recursive_directory_iterator(abs)) {
        if (entry.is_regular_file() && HasLintableExtension(entry.path()) &&
            !IsExcluded(RelPath(entry.path(), root))) {
          files.push_back(entry.path());
        }
      }
      // Directory iteration order is OS-dependent; sort for stable output.
      std::sort(files.begin(), files.end());
      for (const fs::path& f : files) {
        failures += LintOne(f, root, &files_linted);
      }
    } else if (fs::is_regular_file(abs)) {
      failures += LintOne(abs, root, &files_linted);
    } else {
      std::cerr << "ppa_lint: no such file or directory: " << abs << "\n";
      return 2;
    }
  }
  if (failures > 0) {
    std::cerr << "ppa_lint: " << failures << " finding(s) in " << files_linted
              << " file(s)\n";
    return 1;
  }
  std::cout << "ppa_lint: OK (" << files_linted << " files)\n";
  return 0;
}
