// Fixture: iteration-order dependence (linted as src/ft/unordered_iteration.cc).
#include <string>
#include <unordered_map>

namespace ppa {

class Store {
 public:
  long Sum() const {
    long total = 0;
    for (const auto& kv : items_) {  // line 11: ranged-for over member
      total += kv.second;
    }
    return total;
  }

 private:
  std::unordered_map<std::string, long> items_;
};

long SumDirect(const std::unordered_map<std::string, long>& m) {
  long total = 0;
  for (const auto& [k, v] : m) {  // not detectable via declaration: by type
    total += v;
  }
  for (const auto& kv :
       std::unordered_map<std::string, long>{{"a", 1}}) {  // line 27: literal
    total += kv.second;
  }
  return total;
}

}  // namespace ppa
