// Fixture: environment reads (linted as src/runtime/env.cc).
#include <cstdlib>

namespace ppa {

const char* Home() {
  return std::getenv("HOME");  // line 7: getenv
}

}  // namespace ppa
