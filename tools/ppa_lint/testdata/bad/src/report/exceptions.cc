// Fixture: exceptions on API boundaries (linted as src/report/exceptions.cc).
#include <stdexcept>

namespace ppa {

int Parse(int x) {
  try {  // line 7: try
    if (x < 0) {
      throw std::runtime_error("negative");  // line 9: throw
    }
  } catch (const std::exception&) {  // line 11: catch
    return -1;
  }
  return x;
}

}  // namespace ppa
