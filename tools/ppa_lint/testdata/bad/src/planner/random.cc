// Fixture: ambient randomness (linted as src/planner/random.cc).
#include <cstdlib>
#include <random>

namespace ppa {

int Roll() {
  std::random_device rd;      // line 8: random_device
  std::mt19937 gen(rd());     // line 9: mt19937
  (void)gen;
  return rand();              // line 11: rand(
}

}  // namespace ppa
