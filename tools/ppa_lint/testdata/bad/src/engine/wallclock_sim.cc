// Fixture: wall-clock reads inside simulated code; the allow() comment
// must silence the suppressible wall-clock rule but NOT
// no-wallclock-in-sim (linted as src/engine/wallclock_sim.cc).
#include <chrono>

namespace ppa {

double Now() {
  // ppa-lint: allow(wall-clock, no-wallclock-in-sim)
  auto t = std::chrono::steady_clock::now();  // line 10
  (void)t;
  return 0.0;
}

}  // namespace ppa
