// Fixture: wall-clock reads (linted as src/engine/wall_clock.cc).
#include <chrono>
#include <ctime>

namespace ppa {

long Now() {
  auto wall = std::chrono::system_clock::now();  // line 8: system_clock
  (void)wall;
  auto mono = std::chrono::steady_clock::now();  // line 10: steady_clock
  (void)mono;
  return time(nullptr);  // line 12: time(
}

}  // namespace ppa
