#ifndef PPA_ENGINE_MISSING_DOC_H_
#define PPA_ENGINE_MISSING_DOC_H_

// Fixture: undocumented public items (linted as src/engine/missing_doc.h).

namespace ppa {

class Widget {  // line 8: class without /// above
 public:
  int size() const { return size_; }

 private:
  int size_ = 0;
};

int CountWidgets();  // line 16: free function without /// above

}  // namespace ppa

#endif  // PPA_ENGINE_MISSING_DOC_H_
