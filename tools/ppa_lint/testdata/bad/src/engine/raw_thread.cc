// Fixture: raw thread spawning (linted as src/engine/raw_thread.cc).
#include <thread>

namespace ppa {

void Spawn() {
  std::thread t([] {});  // line 7: thread
  t.join();
}

}  // namespace ppa
