#ifndef PPA_ENGINE_UNGUARDED_MEMBER_H_
#define PPA_ENGINE_UNGUARDED_MEMBER_H_

// Fixture: a mutex-holding class with one member that is neither
// annotated nor explained (linted as src/engine/unguarded_member.h).

#include "common/thread_annotations.h"

namespace ppa {

/// Counts events across threads.
class Counter {
 public:
  /// Adds one.
  void Increment() PPA_EXCLUDES(mu_);

 private:
  Mutex mu_;
  int count_ PPA_GUARDED_BY(mu_) = 0;
  int total_ = 0;
  // Written once before the threads start; never mutated afterwards.
  int limit_ = 100;
};

}  // namespace ppa

#endif  // PPA_ENGINE_UNGUARDED_MEMBER_H_
