#ifndef PPA_WRONG_GUARD_H_
#define PPA_WRONG_GUARD_H_

// Fixture: guard does not match the path (linted as
// src/engine/guard_mismatch.h, so PPA_ENGINE_GUARD_MISMATCH_H_ is
// expected).

#endif  // PPA_WRONG_GUARD_H_
