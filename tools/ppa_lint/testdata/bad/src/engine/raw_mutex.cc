// Fixture: raw synchronization primitives (linted as
// src/engine/raw_mutex.cc).
#include <mutex>

namespace ppa {

std::mutex mu;  // line 7: mutex

void Critical() {
  std::lock_guard<std::mutex> lock(mu);  // line 10: lock_guard + mutex
}

}  // namespace ppa
