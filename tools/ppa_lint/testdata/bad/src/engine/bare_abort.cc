// Fixture: bare abort outside common/ (linted as src/engine/bare_abort.cc).
#include <cstdlib>

namespace ppa {

void Die(bool bad) {
  if (bad) {
    std::abort();  // line 8: abort(
  }
}

}  // namespace ppa
