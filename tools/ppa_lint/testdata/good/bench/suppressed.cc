// Fixture: every suppressible violation here is suppressed (linted as
// bench/suppressed.cc — outside src/, where inline wall-clock allows
// remain legitimate), so the file must produce zero diagnostics.
// ppa-lint: allow-file(abort)
#include <cstdlib>
#include <ctime>
#include <unordered_map>

namespace ppa {

long Suppressed() {
  long wall = time(nullptr);  // ppa-lint: allow(wall-clock)
  // ppa-lint: allow(wall-clock): the preceding-line form also works.
  long wall2 = time(nullptr);
  std::unordered_map<int, long> m{{1, 2}};
  long total = wall + wall2;
  // ppa-lint: allow(unordered-iteration)
  for (const auto& kv : m) {
    total += kv.second;
  }
  if (total < 0) {
    std::abort();  // covered by the file-wide allow-file(abort) above
  }
  return total;
}

// Mentions of rand or throw inside comments and strings must not fire:
// the scrubber removes them before token matching.
const char* Describe() { return "rand() throw time(nullptr)"; }

}  // namespace ppa
