#ifndef PPA_ENGINE_CLEAN_H_
#define PPA_ENGINE_CLEAN_H_

// Fixture: a lint-clean public header (linted as src/engine/clean.h).
// Every rule's trigger either does not appear or is suppressed.

#include <map>
#include <string>

namespace ppa {

/// A documented public type; iterates a std::map so replay order is
/// deterministic.
class CleanStore {
 public:
  /// Sums every value (deterministic order).
  long Sum() const {
    long total = 0;
    for (const auto& kv : items_) {
      total += kv.second;
    }
    return total;
  }

 private:
  std::map<std::string, long> items_;
};

/// A documented free function.
long CountClean();

/// Factory-style helpers may share one comment group.
CleanStore MakeStore();
CleanStore MakeEmptyStore();

}  // namespace ppa

#endif  // PPA_ENGINE_CLEAN_H_
