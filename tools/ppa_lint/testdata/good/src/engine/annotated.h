#ifndef PPA_ENGINE_ANNOTATED_H_
#define PPA_ENGINE_ANNOTATED_H_

// Fixture: the approved concurrency idiom — annotated ppa primitives,
// every member guarded or explained (linted as src/engine/annotated.h).

#include "common/thread_annotations.h"

namespace ppa {

/// Counts events across threads.
class AnnotatedCounter {
 public:
  /// Adds one.
  void Increment() PPA_EXCLUDES(mu_);

 private:
  Mutex mu_;
  int count_ PPA_GUARDED_BY(mu_) = 0;
  // Set in the constructor, immutable afterwards: no guard needed.
  int limit_ = 100;
};

}  // namespace ppa

#endif  // PPA_ENGINE_ANNOTATED_H_
