#include "tools/ppa_lint/linter.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace ppa {
namespace lint {
namespace {

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Trim(std::string_view s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string_view::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\r");
  return std::string(s.substr(b, e - b + 1));
}

/// A source file split into lines, with comments and string/char literals
/// blanked out of the `code` view (layout preserved: code[i][j] aligns with
/// raw[i][j]), plus the comment text of each line (for suppressions).
struct Scrubbed {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

Scrubbed Scrub(std::string_view content) {
  Scrubbed out;
  std::string raw_line;
  std::string code_line;
  std::string comment_line;

  enum class State {
    kNormal,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kNormal;
  std::string raw_delim;  // ")delim" terminator of a raw string

  auto flush_line = [&] {
    out.raw.push_back(raw_line);
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    raw_line.clear();
    code_line.clear();
    comment_line.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (c == '\n') {
      if (state == State::kLineComment) {
        state = State::kNormal;
      }
      flush_line();
      continue;
    }
    raw_line.push_back(c);
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kNormal:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line.push_back(' ');
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line.push_back(' ');
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim" — the R must not extend an identifier.
          bool is_raw = !code_line.empty() && code_line.back() == 'R' &&
                        (code_line.size() < 2 ||
                         !IsIdentChar(code_line[code_line.size() - 2]));
          if (is_raw) {
            std::string delim;
            size_t j = i + 1;
            while (j < content.size() && content[j] != '(') {
              delim.push_back(content[j]);
              ++j;
            }
            raw_delim = ")" + delim + "\"";
            state = State::kRawString;
          } else {
            state = State::kString;
          }
          code_line.push_back(' ');
        } else if (c == '\'') {
          // Heuristic: a quote after an identifier/digit is a C++14 digit
          // separator (1'000'000), not a character literal.
          if (code_line.empty() || !IsIdentChar(code_line.back())) {
            state = State::kChar;
          }
          code_line.push_back(' ');
        } else {
          code_line.push_back(c);
        }
        break;
      case State::kLineComment:
        code_line.push_back(' ');
        comment_line.push_back(c);
        break;
      case State::kBlockComment:
        code_line.push_back(' ');
        comment_line.push_back(c);
        if (c == '*' && next == '/') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
          state = State::kNormal;
        }
        break;
      case State::kString:
      case State::kChar:
        code_line.push_back(' ');
        if (c == '\\' && next != '\0') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kNormal;
        }
        break;
      case State::kRawString:
        code_line.push_back(' ');
        if (c == ')' &&
            content.substr(i, raw_delim.size()) == raw_delim) {
          for (size_t k = 1; k < raw_delim.size(); ++k) {
            raw_line.push_back(content[i + k]);
            code_line.push_back(' ');
          }
          i += raw_delim.size() - 1;
          state = State::kNormal;
        }
        break;
    }
  }
  flush_line();
  return out;
}

/// Parses "rule-a, rule-b" into a set of rule names.
std::set<std::string> ParseRuleList(std::string_view list) {
  std::set<std::string> rules;
  std::string cur;
  for (char c : list) {
    if (c == ',' || c == ' ' || c == '\t') {
      if (!cur.empty()) {
        rules.insert(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    rules.insert(cur);
  }
  return rules;
}

/// Suppressions extracted from "// ppa-lint: allow(...)" comments: per-line
/// rule sets (a comment suppresses its own line and the next) plus
/// file-wide rules from allow-file(...).
struct Suppressions {
  std::vector<std::set<std::string>> by_line;  // 0-based
  std::set<std::string> file_wide;

  bool Allows(const std::string& rule, int line) const {  // 1-based
    if (file_wide.count(rule) != 0) {
      return true;
    }
    for (int l : {line - 1, line - 2}) {
      if (l >= 0 && l < static_cast<int>(by_line.size()) &&
          by_line[static_cast<size_t>(l)].count(rule) != 0) {
        return true;
      }
    }
    return false;
  }
};

Suppressions FindSuppressions(const Scrubbed& f) {
  Suppressions out;
  out.by_line.resize(f.comments.size());
  for (size_t i = 0; i < f.comments.size(); ++i) {
    const std::string& comment = f.comments[i];
    for (std::string_view marker : {"ppa-lint: allow(", "ppa-lint: allow-file("}) {
      size_t pos = 0;
      while ((pos = comment.find(marker, pos)) != std::string::npos) {
        size_t open = pos + marker.size();
        size_t close = comment.find(')', open);
        if (close == std::string::npos) {
          break;
        }
        std::set<std::string> rules =
            ParseRuleList(std::string_view(comment).substr(open, close - open));
        if (marker == "ppa-lint: allow(") {
          out.by_line[i].insert(rules.begin(), rules.end());
        } else {
          out.file_wide.insert(rules.begin(), rules.end());
        }
        pos = close;
      }
    }
  }
  return out;
}

/// Finds identifier-boundary occurrences of `token` in `line`; returns the
/// position of each match.
std::vector<size_t> FindToken(const std::string& line,
                              const std::string& token) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t end = pos + token.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) {
      hits.push_back(pos);
    }
    pos = end;
  }
  return hits;
}

/// True if the token occurrence at `pos` is a free or std:: call, i.e. not
/// a member access (obj.time(...)) and not a qualified name from another
/// namespace (obs::time(...)).
bool IsFreeOrStdCall(const std::string& line, size_t pos, size_t token_len) {
  size_t after = pos + token_len;
  while (after < line.size() && line[after] == ' ') {
    ++after;
  }
  if (after >= line.size() || line[after] != '(') {
    return false;  // not a call
  }
  if (pos >= 2 && line[pos - 1] == ':' && line[pos - 2] == ':') {
    size_t q = pos - 2;
    size_t qe = q;
    while (q > 0 && IsIdentChar(line[q - 1])) {
      --q;
    }
    return line.substr(q, qe - q) == "std";
  }
  if (pos >= 1 && (line[pos - 1] == '.' ||
                   (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>'))) {
    return false;  // member call
  }
  return true;
}

class FileLinter {
 public:
  FileLinter(const std::string& path, std::string_view content)
      : path_(path), file_(Scrub(content)), supp_(FindSuppressions(file_)) {}

  std::vector<Diagnostic> Run() {
    CheckBannedTokens();
    CheckConcurrencyTokens();
    CheckUnorderedIteration();
    if (EndsWith(path_, ".h")) {
      CheckHeaderGuard();
    }
    if (IsPublicHeader()) {
      CheckDoxygen();
    }
    if (InSrc() && EndsWith(path_, ".h")) {
      CheckGuardedMemberDoc();
    }
    return std::move(diags_);
  }

 private:
  bool InSrc() const { return StartsWith(path_, "src/"); }
  bool InCommon() const { return StartsWith(path_, "src/common/"); }
  bool IsRandomImpl() const { return StartsWith(path_, "src/common/random."); }
  bool IsWallClockShim() const {
    return StartsWith(path_, "src/common/wall_clock.");
  }
  bool IsPublicHeader() const {
    if (!InSrc() || !EndsWith(path_, ".h")) {
      return false;
    }
    size_t second = path_.find('/', 4);
    return second != std::string::npos &&
           path_.find('/', second + 1) == std::string::npos;
  }

  void Report(const std::string& rule, int line, const std::string& message) {
    if (!supp_.Allows(rule, line)) {
      diags_.push_back({path_, line, rule, message});
    }
  }

  /// Reports ignoring allow()/allow-file() comments — for rules whose
  /// violations must never be waved through inline (the only escape hatch
  /// is the path allowlist baked into the rule itself).
  void ReportHard(const std::string& rule, int line,
                  const std::string& message) {
    diags_.push_back({path_, line, rule, message});
  }

  // --- Determinism & error-handling token rules ----------------------------

  void CheckBannedTokens() {
    struct TokenRule {
      const char* rule;
      const char* token;
      bool call_only;  // match only name( / std::name( call syntax
      const char* message;
    };
    static const TokenRule kRules[] = {
        {"wall-clock", "time", true,
         "wall-clock read; use the virtual clock (common/sim_time.h)"},
        {"wall-clock", "clock", true,
         "wall-clock read; use the virtual clock (common/sim_time.h)"},
        {"wall-clock", "gettimeofday", true,
         "wall-clock read; use the virtual clock (common/sim_time.h)"},
        {"wall-clock", "clock_gettime", true,
         "wall-clock read; use the virtual clock (common/sim_time.h)"},
        {"wall-clock", "system_clock", false,
         "wall-clock type; use the virtual clock (common/sim_time.h)"},
        {"wall-clock", "steady_clock", false,
         "wall-clock type; use the virtual clock (common/sim_time.h)"},
        {"wall-clock", "high_resolution_clock", false,
         "wall-clock type; use the virtual clock (common/sim_time.h)"},
        {"random", "rand", true,
         "ambient randomness; use the seeded ppa::Rng (common/random.h)"},
        {"random", "srand", true,
         "ambient randomness; use the seeded ppa::Rng (common/random.h)"},
        {"random", "random_device", false,
         "nondeterministic seed source; use an explicit seed"},
        {"random", "mt19937", false,
         "use the seeded ppa::Rng (common/random.h)"},
        {"random", "mt19937_64", false,
         "use the seeded ppa::Rng (common/random.h)"},
        {"random", "default_random_engine", false,
         "use the seeded ppa::Rng (common/random.h)"},
        {"random", "uniform_int_distribution", false,
         "implementation-defined sequences; use ppa::Rng helpers"},
        {"random", "uniform_real_distribution", false,
         "implementation-defined sequences; use ppa::Rng helpers"},
        {"random", "normal_distribution", false,
         "implementation-defined sequences; use ppa::Rng helpers"},
        {"getenv", "getenv", true,
         "environment read; configuration must be explicit"},
        {"getenv", "secure_getenv", true,
         "environment read; configuration must be explicit"},
        {"exceptions", "throw", false,
         "no exceptions on API boundaries; return ppa::Status (DESIGN.md §9)"},
        {"exceptions", "try", false,
         "no exceptions on API boundaries; return ppa::Status (DESIGN.md §9)"},
        {"exceptions", "catch", false,
         "no exceptions on API boundaries; return ppa::Status (DESIGN.md §9)"},
        {"abort", "abort", true,
         "bare abort(); use PPA_LOG(Fatal)/PPA_CHECK (common/logging.h)"},
    };
    for (size_t i = 0; i < file_.code.size(); ++i) {
      const std::string& line = file_.code[i];
      int lineno = static_cast<int>(i) + 1;
      for (const TokenRule& r : kRules) {
        std::string rule = r.rule;
        if (rule == "random" && IsRandomImpl()) {
          continue;
        }
        if (rule == "exceptions" && !InSrc()) {
          continue;
        }
        if (rule == "abort" && InCommon()) {
          continue;
        }
        for (size_t pos : FindToken(line, r.token)) {
          if (r.call_only && !IsFreeOrStdCall(line, pos, std::strlen(r.token))) {
            continue;
          }
          Report(rule, lineno, std::string(r.token) + ": " + r.message);
        }
      }
      if (!IsRandomImpl() && line.find("#include") != std::string::npos &&
          line.find("<random>") != std::string::npos) {
        Report("random", lineno,
               "<random>: use the seeded ppa::Rng (common/random.h)");
      }
    }
  }

  // --- Concurrency & sim-clock rules (v2) ----------------------------------

  void CheckConcurrencyTokens() {
    // no-raw-mutex / no-raw-thread apply to src/ outside src/common/ (the
    // annotated wrappers themselves live in common/). no-wallclock-in-sim
    // applies to all of src/ except the one sanctioned timing shim, and is
    // deliberately NOT suppressible: an allow() comment on a wall-clock
    // read inside simulated behavior would silently trade away the repo's
    // byte-reproducibility guarantee.
    const bool concurrency = InSrc() && !InCommon();
    const bool simclock = InSrc() && !IsWallClockShim();
    if (!concurrency && !simclock) {
      return;
    }
    struct TokenRule {
      const char* rule;
      const char* token;
      bool call_only;
      const char* message;
    };
    static const TokenRule kConcurrencyRules[] = {
        {"no-raw-mutex", "mutex", false,
         "raw std::mutex escapes -Wthread-safety; use ppa::Mutex "
         "(common/thread_annotations.h)"},
        {"no-raw-mutex", "recursive_mutex", false,
         "raw mutex escapes -Wthread-safety; use ppa::Mutex "
         "(common/thread_annotations.h)"},
        {"no-raw-mutex", "timed_mutex", false,
         "raw mutex escapes -Wthread-safety; use ppa::Mutex "
         "(common/thread_annotations.h)"},
        {"no-raw-mutex", "shared_mutex", false,
         "raw mutex escapes -Wthread-safety; use ppa::Mutex "
         "(common/thread_annotations.h)"},
        {"no-raw-mutex", "lock_guard", false,
         "use ppa::MutexLock (common/thread_annotations.h) so lock scopes "
         "are checked by -Wthread-safety"},
        {"no-raw-mutex", "unique_lock", false,
         "use ppa::MutexLock (common/thread_annotations.h) so lock scopes "
         "are checked by -Wthread-safety"},
        {"no-raw-mutex", "scoped_lock", false,
         "use ppa::MutexLock (common/thread_annotations.h) so lock scopes "
         "are checked by -Wthread-safety"},
        {"no-raw-mutex", "condition_variable", false,
         "use ppa::CondVar (common/thread_annotations.h); its Wait() "
         "declares the required capability"},
        {"no-raw-thread", "thread", false,
         "raw std::thread; run work on ppa::ThreadPool "
         "(common/thread_pool.h) or add an annotated wrapper to common/"},
        {"no-raw-thread", "jthread", false,
         "raw std::jthread; run work on ppa::ThreadPool "
         "(common/thread_pool.h) or add an annotated wrapper to common/"},
        {"no-raw-thread", "async", true,
         "std::async spawns unmanaged threads; run work on "
         "ppa::ThreadPool (common/thread_pool.h)"},
        {"no-raw-thread", "pthread_create", true,
         "raw pthread; run work on ppa::ThreadPool "
         "(common/thread_pool.h) or add an annotated wrapper to common/"},
    };
    static const TokenRule kSimClockRules[] = {
        {"no-wallclock-in-sim", "time", true, ""},
        {"no-wallclock-in-sim", "clock", true, ""},
        {"no-wallclock-in-sim", "gettimeofday", true, ""},
        {"no-wallclock-in-sim", "clock_gettime", true, ""},
        {"no-wallclock-in-sim", "system_clock", false, ""},
        {"no-wallclock-in-sim", "steady_clock", false, ""},
        {"no-wallclock-in-sim", "high_resolution_clock", false, ""},
    };
    static const char* kSimClockMessage =
        "wall-clock read under src/ (not suppressible): simulated behavior "
        "must use the virtual clock (common/sim_time.h); meta-level timing "
        "goes through the allowlisted common/wall_clock.h shim";
    for (size_t i = 0; i < file_.code.size(); ++i) {
      const std::string& line = file_.code[i];
      int lineno = static_cast<int>(i) + 1;
      const bool is_include = line.find("#include") != std::string::npos;
      if (concurrency) {
        // Include lines report once on the header itself; the type tokens
        // inside <mutex>/<thread> would double up.
        if (!is_include) {
          for (const TokenRule& r : kConcurrencyRules) {
            for (size_t pos : FindToken(line, r.token)) {
              if (r.call_only &&
                  !IsFreeOrStdCall(line, pos, std::strlen(r.token))) {
                continue;
              }
              Report(r.rule, lineno, std::string(r.token) + ": " + r.message);
            }
          }
        } else {
          for (const char* header :
               {"<mutex>", "<shared_mutex>", "<condition_variable>"}) {
            if (line.find(header) != std::string::npos) {
              Report("no-raw-mutex", lineno,
                     std::string(header) +
                         ": include common/thread_annotations.h instead");
            }
          }
          for (const char* header : {"<thread>", "<pthread.h>"}) {
            if (line.find(header) != std::string::npos) {
              Report("no-raw-thread", lineno,
                     std::string(header) +
                         ": include common/thread_pool.h instead");
            }
          }
        }
      }
      if (simclock) {
        if (!is_include) {
          for (const TokenRule& r : kSimClockRules) {
            for (size_t pos : FindToken(line, r.token)) {
              if (r.call_only &&
                  !IsFreeOrStdCall(line, pos, std::strlen(r.token))) {
                continue;
              }
              ReportHard(r.rule, lineno,
                         std::string(r.token) + ": " + kSimClockMessage);
            }
          }
        } else {
          for (const char* header : {"<ctime>", "<sys/time.h>"}) {
            if (line.find(header) != std::string::npos) {
              ReportHard("no-wallclock-in-sim", lineno,
                         std::string(header) + ": " + kSimClockMessage);
            }
          }
        }
      }
    }
  }

  // --- unordered-iteration -------------------------------------------------

  void CheckUnorderedIteration() {
    static const char* kUnorderedTypes[] = {"unordered_map", "unordered_set",
                                            "unordered_multimap",
                                            "unordered_multiset",
                                            "flat_hash_map", "flat_hash_set"};
    // Pass 1: names of variables/members declared with an unordered type.
    std::set<std::string> unordered_vars;
    std::string joined;
    for (const std::string& line : file_.code) {
      joined += line;
      joined += '\n';
    }
    for (const char* type : kUnorderedTypes) {
      size_t pos = 0;
      std::string needle = std::string(type) + "<";
      while ((pos = joined.find(needle, pos)) != std::string::npos) {
        size_t j = pos + needle.size();
        int depth = 1;
        while (j < joined.size() && depth > 0) {
          if (joined[j] == '<') {
            ++depth;
          } else if (joined[j] == '>') {
            --depth;
          }
          ++j;
        }
        while (j < joined.size() &&
               (std::isspace(static_cast<unsigned char>(joined[j])) != 0 ||
                joined[j] == '&' || joined[j] == '*')) {
          ++j;
        }
        size_t name_begin = j;
        while (j < joined.size() && IsIdentChar(joined[j])) {
          ++j;
        }
        if (j > name_begin) {
          unordered_vars.insert(joined.substr(name_begin, j - name_begin));
        }
        pos += needle.size();
      }
    }
    // Pass 2: ranged-for statements whose range names an unordered type or
    // one of those variables.
    size_t pos = 0;
    while ((pos = joined.find("for", pos)) != std::string::npos) {
      bool left_ok = pos == 0 || !IsIdentChar(joined[pos - 1]);
      bool right_ok = pos + 3 >= joined.size() || !IsIdentChar(joined[pos + 3]);
      if (!left_ok || !right_ok) {
        pos += 3;
        continue;
      }
      int lineno =
          1 + static_cast<int>(std::count(joined.begin(),
                                          joined.begin() +
                                              static_cast<ptrdiff_t>(pos),
                                          '\n'));
      size_t open = joined.find('(', pos + 3);
      if (open == std::string::npos ||
          Trim(joined.substr(pos + 3, open - pos - 3)) != "") {
        pos += 3;
        continue;
      }
      int depth = 1;
      size_t j = open + 1;
      size_t colon = std::string::npos;
      while (j < joined.size() && depth > 0) {
        char c = joined[j];
        if (c == '(') {
          ++depth;
        } else if (c == ')') {
          --depth;
        } else if (c == ':' && depth == 1 && colon == std::string::npos &&
                   (j == 0 || joined[j - 1] != ':') &&
                   (j + 1 >= joined.size() || joined[j + 1] != ':')) {
          colon = j;
        }
        ++j;
      }
      if (colon != std::string::npos) {
        std::string range = joined.substr(colon + 1, j - 1 - colon - 1);
        bool bad = false;
        for (const char* type : kUnorderedTypes) {
          if (range.find(type) != std::string::npos) {
            bad = true;
          }
        }
        if (!bad) {
          std::string ident;
          for (size_t k = 0; k <= range.size(); ++k) {
            if (k < range.size() && IsIdentChar(range[k])) {
              ident.push_back(range[k]);
            } else if (!ident.empty()) {
              if (unordered_vars.count(ident) != 0) {
                bad = true;
              }
              ident.clear();
            }
          }
        }
        if (bad) {
          Report("unordered-iteration", lineno,
                 "ranged-for over an unordered container: iteration order is "
                 "implementation-defined and breaks deterministic replay; "
                 "iterate a sorted copy or a std::map/std::set");
        }
      }
      pos = j;
    }
  }

  // --- header-guard --------------------------------------------------------

  std::string ExpectedGuard() const {
    std::string rel = path_;
    if (StartsWith(rel, "src/")) {
      rel = rel.substr(4);
    }
    std::string guard = "PPA_";
    for (char c : rel) {
      guard.push_back(
          IsIdentChar(c) && c != '_'
              ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
              : '_');
    }
    guard.push_back('_');
    return guard;
  }

  void CheckHeaderGuard() {
    std::string expected = ExpectedGuard();
    int ifndef_line = 0;
    std::string seen_guard;
    for (size_t i = 0; i < file_.code.size(); ++i) {
      std::string t = Trim(file_.code[i]);
      if (t.empty()) {
        continue;
      }
      if (StartsWith(t, "#ifndef")) {
        ifndef_line = static_cast<int>(i) + 1;
        seen_guard = Trim(t.substr(7));
        size_t sp = seen_guard.find_first_of(" \t");
        if (sp != std::string::npos) {
          seen_guard = seen_guard.substr(0, sp);
        }
      } else if (ifndef_line == 0) {
        Report("header-guard", static_cast<int>(i) + 1,
               "header does not start with an include guard; expected "
               "#ifndef " + expected);
        return;
      }
      break;
    }
    if (ifndef_line == 0) {
      Report("header-guard", 1,
             "header has no include guard; expected #ifndef " + expected);
      return;
    }
    if (seen_guard != expected) {
      Report("header-guard", ifndef_line,
             "include guard " + seen_guard + " does not match the file path; "
             "expected " + expected);
      return;
    }
    std::string define = "#define " + expected;
    bool define_ok = false;
    for (size_t i = static_cast<size_t>(ifndef_line);
         i < file_.code.size() && i < static_cast<size_t>(ifndef_line) + 2;
         ++i) {
      if (StartsWith(Trim(file_.code[i]), define)) {
        define_ok = true;
      }
    }
    if (!define_ok) {
      Report("header-guard", ifndef_line + 1,
             "include guard #ifndef is not followed by " + define);
    }
  }

  // --- doxygen -------------------------------------------------------------

  bool HasDocAbove(int start_line) const {  // 1-based
    for (int i = start_line - 2, steps = 0; i >= 0 && steps < 15;
         --i, ++steps) {
      std::string raw = Trim(file_.raw[static_cast<size_t>(i)]);
      if (StartsWith(raw, "///") || StartsWith(raw, "//!") ||
          EndsWith(raw, "*/")) {
        return true;
      }
      if (raw.empty() || raw[0] == '#' ||
          raw.find('{') != std::string::npos ||
          raw.find('}') != std::string::npos) {
        return false;
      }
      // A plain declaration line: keep walking up — a single /// comment
      // may document a tight group of declarations (e.g. the Status
      // factory helpers).
    }
    return false;
  }

  /// One namespace-scope statement gathered by the scanner.
  struct Stmt {
    int start_line = 0;  // 1-based
    std::string text;
  };

  void EvaluateStmt(const Stmt& stmt, bool has_body) {
    std::string text = Trim(stmt.text);
    if (text.empty()) {
      return;
    }
    // Strip leading template<...> and attribute [[...]] clauses.
    for (bool stripped = true; stripped;) {
      stripped = false;
      text = Trim(text);
      if (StartsWith(text, "template")) {
        size_t open = text.find('<');
        if (open == std::string::npos) {
          return;
        }
        int depth = 1;
        size_t j = open + 1;
        while (j < text.size() && depth > 0) {
          if (text[j] == '<') {
            ++depth;
          } else if (text[j] == '>') {
            --depth;
          }
          ++j;
        }
        text = text.substr(j);
        stripped = true;
      } else if (StartsWith(text, "[[")) {
        size_t close = text.find("]]");
        if (close == std::string::npos) {
          return;
        }
        text = text.substr(close + 2);
        stripped = true;
      }
    }
    std::string first;
    for (char c : text) {
      if (!IsIdentChar(c)) {
        break;
      }
      first.push_back(c);
    }
    static const std::set<std::string> kSkip = {
        "namespace", "using", "typedef", "static_assert", "extern", "friend"};
    if (first.empty() || kSkip.count(first) != 0) {
      return;
    }
    bool is_type = first == "class" || first == "struct" || first == "enum";
    if (is_type && !has_body) {
      return;  // forward declaration
    }
    if (!is_type) {
      size_t paren = text.find('(');
      size_t assign = text.find('=');
      if (paren == std::string::npos ||
          (assign != std::string::npos && assign < paren)) {
        return;  // variable/constant, not a function
      }
      bool macro_like = true;
      for (char c : first) {
        if (std::islower(static_cast<unsigned char>(c)) != 0) {
          macro_like = false;
        }
      }
      if (macro_like && text[first.size()] == '(') {
        return;  // FOO(...) macro invocation
      }
    }
    if (!HasDocAbove(stmt.start_line)) {
      Report("doxygen", stmt.start_line,
             std::string(is_type ? "public type" : "public function") +
                 " is missing a /// comment (DESIGN.md §9)");
    }
  }

  void CheckDoxygen() {
    enum class Scope { kNamespace, kOther };
    std::vector<Scope> scopes;
    Stmt stmt;
    int paren_depth = 0;
    auto at_namespace_scope = [&] {
      return std::all_of(scopes.begin(), scopes.end(),
                         [](Scope s) { return s == Scope::kNamespace; });
    };
    for (size_t i = 0; i < file_.code.size(); ++i) {
      const std::string& line = file_.code[i];
      int lineno = static_cast<int>(i) + 1;
      if (StartsWith(Trim(line), "#")) {
        continue;  // preprocessor
      }
      for (char c : line) {
        if (c == '(') {
          ++paren_depth;
        } else if (c == ')') {
          --paren_depth;
        } else if (c == '{' && paren_depth == 0) {
          bool is_namespace =
              !FindToken(stmt.text, "namespace").empty();
          if (!is_namespace && at_namespace_scope()) {
            EvaluateStmt(stmt, /*has_body=*/true);
          }
          scopes.push_back(is_namespace ? Scope::kNamespace : Scope::kOther);
          stmt = Stmt{};
          continue;
        } else if (c == '}' && paren_depth == 0) {
          if (!scopes.empty()) {
            scopes.pop_back();
          }
          stmt = Stmt{};
          continue;
        } else if (c == ';' && paren_depth == 0) {
          if (at_namespace_scope()) {
            EvaluateStmt(stmt, /*has_body=*/false);
          }
          stmt = Stmt{};
          continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
          if (!stmt.text.empty() && stmt.text.back() != ' ') {
            stmt.text.push_back(' ');
          }
        } else {
          if (stmt.text.empty()) {
            stmt.start_line = lineno;
          }
          stmt.text.push_back(c);
        }
      }
      if (!stmt.text.empty() && stmt.text.back() != ' ') {
        stmt.text.push_back(' ');
      }
    }
  }

  // --- guarded-member-doc --------------------------------------------------

  /// One data-member candidate gathered inside a class body.
  struct MemberDecl {
    int line = 0;  // 1-based line of the declaration's first token
    std::string name;
    bool annotated = false;   // carries PPA_GUARDED_BY / PPA_PT_GUARDED_BY
    bool mutex_like = false;  // is itself a mutex / condvar member
  };

  /// A brace scope; only class/struct scopes accumulate members.
  struct ClassScope {
    bool is_class = false;
    std::string name;
    bool has_mutex = false;
    std::vector<MemberDecl> members;
  };

  /// True when the member's own line or the line above carries a comment.
  bool HasCommentAt(int line) const {  // 1-based
    for (int l : {line - 1, line - 2}) {
      if (l >= 0 && l < static_cast<int>(file_.comments.size()) &&
          !Trim(file_.comments[static_cast<size_t>(l)]).empty()) {
        return true;
      }
    }
    return false;
  }

  /// The first plausible class name after the class/struct keyword
  /// (skipping ALL_CAPS attribute macros like PPA_CAPABILITY).
  static std::string ClassNameOf(const std::string& stmt_text) {
    size_t pos = std::string::npos;
    size_t len = 0;
    for (const char* kw : {"class", "struct"}) {
      std::vector<size_t> hits = FindToken(stmt_text, kw);
      if (!hits.empty() && hits[0] < pos) {
        pos = hits[0];
        len = std::strlen(kw);
      }
    }
    if (pos == std::string::npos) {
      return "<anonymous>";
    }
    std::string cur;
    std::string last;
    for (size_t k = pos + len; k <= stmt_text.size(); ++k) {
      if (k < stmt_text.size() && IsIdentChar(stmt_text[k])) {
        cur.push_back(stmt_text[k]);
        continue;
      }
      if (!cur.empty()) {
        bool has_lower = false;
        for (char c : cur) {
          if (std::islower(static_cast<unsigned char>(c)) != 0) {
            has_lower = true;
          }
        }
        if (has_lower) {
          return cur;
        }
        last = cur;
        cur.clear();
      }
    }
    return last.empty() ? "<anonymous>" : last;
  }

  /// Classifies one class-body statement; records it on `scope` when it
  /// is a (non-static, non-const) data member.
  void RecordMember(ClassScope* scope, const Stmt& stmt) {
    std::string text = Trim(stmt.text);
    if (text.empty()) {
      return;
    }
    MemberDecl m;
    m.line = stmt.start_line;
    m.annotated = text.find("PPA_GUARDED_BY") != std::string::npos ||
                  text.find("PPA_PT_GUARDED_BY") != std::string::npos;
    for (const char* t :
         {"Mutex", "mutex", "shared_mutex", "CondVar", "condition_variable"}) {
      if (!FindToken(text, t).empty()) {
        m.mutex_like = true;
      }
    }
    std::string first;
    for (char c : text) {
      if (!IsIdentChar(c)) {
        break;
      }
      first.push_back(c);
    }
    // Statements that are never unguarded mutable state: nested types,
    // access to other members, immutable/static data, declarations.
    static const std::set<std::string> kSkipFirst = {
        "using",     "typedef",  "friend",   "static",  "constexpr",
        "const",     "enum",     "class",    "struct",  "public",
        "private",   "protected", "template", "virtual", "explicit",
        "operator",  "static_assert"};
    if (first.empty() || kSkipFirst.count(first) != 0 ||
        !FindToken(text, "operator").empty()) {
      return;
    }
    if (m.annotated) {
      scope->has_mutex = scope->has_mutex || m.mutex_like;
      scope->members.push_back(std::move(m));
      return;
    }
    // Split off any default initializer ("= value") at bracket depth 0,
    // then decide function vs data member from the declaration's tail.
    std::string head;
    int depth = 0;
    for (char c : text) {
      if (c == '=' && depth == 0) {
        break;
      }
      if (c == '(' || c == '<' || c == '[') {
        ++depth;
      } else if (c == ')' || c == '>' || c == ']') {
        --depth;
      }
      head.push_back(c);
    }
    head = Trim(head);
    if (head.empty() || !IsIdentChar(head.back())) {
      return;  // "...)": function; "...]": array (out of scope here)
    }
    size_t e = head.size();
    size_t b = e;
    while (b > 0 && IsIdentChar(head[b - 1])) {
      --b;
    }
    std::string tail = head.substr(b, e - b);
    static const std::set<std::string> kFuncTail = {
        "const", "override", "final", "noexcept", "default", "delete", "0"};
    if (kFuncTail.count(tail) != 0) {
      return;  // "...) const" / "= 0" / "= delete": a function
    }
    m.name = tail;
    scope->has_mutex = scope->has_mutex || m.mutex_like;
    scope->members.push_back(std::move(m));
  }

  void EvaluateClass(const ClassScope& scope) {
    if (!scope.has_mutex) {
      return;
    }
    for (const MemberDecl& m : scope.members) {
      if (m.mutex_like || m.annotated || HasCommentAt(m.line)) {
        continue;
      }
      Report("guarded-member-doc", m.line,
             "class " + scope.name + " holds a mutex; member " + m.name +
                 " needs PPA_GUARDED_BY(...) or a comment saying why it "
                 "needs no guard (DESIGN.md §14)");
    }
  }

  void CheckGuardedMemberDoc() {
    std::vector<ClassScope> scopes;
    Stmt stmt;
    int paren_depth = 0;
    auto top_is_class = [&] {
      return !scopes.empty() && scopes.back().is_class;
    };
    for (size_t i = 0; i < file_.code.size(); ++i) {
      const std::string& line = file_.code[i];
      int lineno = static_cast<int>(i) + 1;
      if (StartsWith(Trim(line), "#")) {
        continue;  // preprocessor
      }
      for (char c : line) {
        if (c == '(') {
          ++paren_depth;
        } else if (c == ')') {
          --paren_depth;
        } else if (c == '{' && paren_depth == 0) {
          ClassScope scope;
          if (FindToken(stmt.text, "enum").empty() &&
              (!FindToken(stmt.text, "class").empty() ||
               !FindToken(stmt.text, "struct").empty())) {
            scope.is_class = true;
            scope.name = ClassNameOf(stmt.text);
          }
          scopes.push_back(std::move(scope));
          stmt = Stmt{};
          continue;
        } else if (c == '}' && paren_depth == 0) {
          if (!scopes.empty()) {
            if (scopes.back().is_class) {
              EvaluateClass(scopes.back());
            }
            scopes.pop_back();
          }
          stmt = Stmt{};
          continue;
        } else if (c == ';' && paren_depth == 0) {
          if (top_is_class()) {
            RecordMember(&scopes.back(), stmt);
          }
          stmt = Stmt{};
          continue;
        } else if (c == ':' && paren_depth == 0 && top_is_class()) {
          std::string t = Trim(stmt.text);
          if (t == "public" || t == "private" || t == "protected") {
            stmt = Stmt{};  // access specifier, not part of a declaration
            continue;
          }
        }
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
          if (!stmt.text.empty() && stmt.text.back() != ' ') {
            stmt.text.push_back(' ');
          }
        } else {
          if (stmt.text.empty()) {
            stmt.start_line = lineno;
          }
          stmt.text.push_back(c);
        }
      }
      if (!stmt.text.empty() && stmt.text.back() != ' ') {
        stmt.text.push_back(' ');
      }
    }
  }

  std::string path_;
  Scrubbed file_;
  Suppressions supp_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::string FormatDiagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

const std::vector<std::string>& AllRuleNames() {
  static const std::vector<std::string> kRules = {
      "wall-clock",   "random",       "getenv", "unordered-iteration",
      "exceptions",   "abort",        "header-guard", "doxygen",
      "no-raw-mutex", "no-raw-thread", "no-wallclock-in-sim",
      "guarded-member-doc",
  };
  return kRules;
}

std::vector<Diagnostic> LintFile(const std::string& path,
                                 std::string_view content) {
  return FileLinter(path, content).Run();
}

}  // namespace lint
}  // namespace ppa
