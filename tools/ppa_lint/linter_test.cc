#include "tools/ppa_lint/linter.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ppa {
namespace lint {
namespace {

// Set by CMake to tools/ppa_lint/testdata.
#ifndef PPA_LINT_TESTDATA_DIR
#error "PPA_LINT_TESTDATA_DIR must be defined"
#endif

std::string ReadFixture(const std::string& tree_relative) {
  std::string full = std::string(PPA_LINT_TESTDATA_DIR) + "/" + tree_relative;
  std::ifstream in(full, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open fixture " << full;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Lints a fixture under testdata/<tree>/<path>, using <path> as the
/// repo-relative path (the trees mirror a real repo layout).
std::vector<Diagnostic> LintFixture(const std::string& tree,
                                    const std::string& path) {
  return LintFile(path, ReadFixture(tree + "/" + path));
}

std::set<std::string> Rules(const std::vector<Diagnostic>& diags) {
  std::set<std::string> rules;
  for (const Diagnostic& d : diags) {
    rules.insert(d.rule);
  }
  return rules;
}

bool HasFinding(const std::vector<Diagnostic>& diags, const std::string& rule,
                int line) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.rule == rule && d.line == line;
  });
}

TEST(PpaLintFixtures, WallClock) {
  auto diags = LintFixture("bad", "src/engine/wall_clock.cc");
  // Under src/ every wall-clock read trips both the legacy suppressible
  // rule and the hard sim-determinism rule.
  EXPECT_EQ(Rules(diags),
            (std::set<std::string>{"wall-clock", "no-wallclock-in-sim"}));
  EXPECT_TRUE(HasFinding(diags, "wall-clock", 8));   // system_clock
  EXPECT_TRUE(HasFinding(diags, "wall-clock", 10));  // steady_clock
  EXPECT_TRUE(HasFinding(diags, "wall-clock", 12));  // time(
  EXPECT_TRUE(HasFinding(diags, "no-wallclock-in-sim", 8));
  EXPECT_TRUE(HasFinding(diags, "no-wallclock-in-sim", 12));
}

TEST(PpaLintFixtures, RawMutex) {
  auto diags = LintFixture("bad", "src/engine/raw_mutex.cc");
  EXPECT_EQ(Rules(diags), std::set<std::string>{"no-raw-mutex"});
  EXPECT_TRUE(HasFinding(diags, "no-raw-mutex", 3));   // #include <mutex>
  EXPECT_TRUE(HasFinding(diags, "no-raw-mutex", 7));   // std::mutex
  EXPECT_TRUE(HasFinding(diags, "no-raw-mutex", 10));  // lock_guard
}

TEST(PpaLintFixtures, RawThread) {
  auto diags = LintFixture("bad", "src/engine/raw_thread.cc");
  EXPECT_EQ(Rules(diags), std::set<std::string>{"no-raw-thread"});
  EXPECT_TRUE(HasFinding(diags, "no-raw-thread", 2));  // #include <thread>
  EXPECT_TRUE(HasFinding(diags, "no-raw-thread", 7));  // std::thread
}

TEST(PpaLintFixtures, WallClockInSimIsNotSuppressible) {
  auto diags = LintFixture("bad", "src/engine/wallclock_sim.cc");
  // The allow() comment silences wall-clock but the hard rule survives.
  EXPECT_EQ(Rules(diags), std::set<std::string>{"no-wallclock-in-sim"});
  EXPECT_TRUE(HasFinding(diags, "no-wallclock-in-sim", 10));
}

TEST(PpaLintFixtures, UnguardedMember) {
  auto diags = LintFixture("bad", "src/engine/unguarded_member.h");
  EXPECT_EQ(Rules(diags), std::set<std::string>{"guarded-member-doc"});
  EXPECT_TRUE(HasFinding(diags, "guarded-member-doc", 20));  // total_
  EXPECT_EQ(diags.size(), 1u);  // count_ annotated, limit_ commented
}

TEST(PpaLintFixtures, Random) {
  auto diags = LintFixture("bad", "src/planner/random.cc");
  EXPECT_EQ(Rules(diags), std::set<std::string>{"random"});
  EXPECT_TRUE(HasFinding(diags, "random", 3));   // #include <random>
  EXPECT_TRUE(HasFinding(diags, "random", 8));   // random_device
  EXPECT_TRUE(HasFinding(diags, "random", 9));   // mt19937
  EXPECT_TRUE(HasFinding(diags, "random", 11));  // rand(
}

TEST(PpaLintFixtures, Getenv) {
  auto diags = LintFixture("bad", "src/runtime/env.cc");
  EXPECT_EQ(Rules(diags), std::set<std::string>{"getenv"});
  EXPECT_TRUE(HasFinding(diags, "getenv", 7));
}

TEST(PpaLintFixtures, UnorderedIteration) {
  auto diags = LintFixture("bad", "src/ft/unordered_iteration.cc");
  EXPECT_EQ(Rules(diags), std::set<std::string>{"unordered-iteration"});
  EXPECT_TRUE(HasFinding(diags, "unordered-iteration", 11));  // member
  EXPECT_TRUE(HasFinding(diags, "unordered-iteration", 23));  // parameter
  EXPECT_TRUE(HasFinding(diags, "unordered-iteration", 26));  // literal
}

TEST(PpaLintFixtures, Exceptions) {
  auto diags = LintFixture("bad", "src/report/exceptions.cc");
  EXPECT_EQ(Rules(diags), std::set<std::string>{"exceptions"});
  EXPECT_TRUE(HasFinding(diags, "exceptions", 7));   // try
  EXPECT_TRUE(HasFinding(diags, "exceptions", 9));   // throw
  EXPECT_TRUE(HasFinding(diags, "exceptions", 11));  // catch
}

TEST(PpaLintFixtures, Abort) {
  auto diags = LintFixture("bad", "src/engine/bare_abort.cc");
  EXPECT_EQ(Rules(diags), std::set<std::string>{"abort"});
  EXPECT_TRUE(HasFinding(diags, "abort", 8));
}

TEST(PpaLintFixtures, HeaderGuardMismatch) {
  auto diags = LintFixture("bad", "src/engine/guard_mismatch.h");
  EXPECT_EQ(Rules(diags), std::set<std::string>{"header-guard"});
  EXPECT_TRUE(HasFinding(diags, "header-guard", 1));
}

TEST(PpaLintFixtures, MissingDoxygen) {
  auto diags = LintFixture("bad", "src/engine/missing_doc.h");
  EXPECT_EQ(Rules(diags), std::set<std::string>{"doxygen"});
  EXPECT_TRUE(HasFinding(diags, "doxygen", 8));   // class Widget
  EXPECT_TRUE(HasFinding(diags, "doxygen", 16));  // CountWidgets
}

TEST(PpaLintFixtures, GoodTreeIsClean) {
  for (const char* path : {"src/engine/clean.h", "src/engine/annotated.h",
                           "bench/suppressed.cc"}) {
    auto diags = LintFixture("good", path);
    EXPECT_TRUE(diags.empty())
        << path << ": " << (diags.empty() ? "" : FormatDiagnostic(diags[0]));
  }
}

// --- Inline unit tests ------------------------------------------------------

TEST(PpaLintRules, MemberAndForeignNamespaceCallsAreNotWallClock) {
  auto diags = LintFile("src/obs/trace.cc",
                        "void F(Tracer& t) {\n"
                        "  t.time();\n"
                        "  t->clock();\n"
                        "  mylib::time(3);\n"
                        "}\n");
  EXPECT_TRUE(diags.empty());
}

TEST(PpaLintRules, StdQualifiedTimeIsWallClock) {
  auto diags = LintFile("src/obs/trace.cc", "long t = std::time(nullptr);\n");
  EXPECT_EQ(Rules(diags),
            (std::set<std::string>{"wall-clock", "no-wallclock-in-sim"}));
}

TEST(PpaLintRules, ConcurrencyRulesExemptCommon) {
  std::string body = "#include <mutex>\nstd::mutex mu;\n";
  EXPECT_TRUE(LintFile("src/common/thread_pool.cc", body).empty());
  auto diags = LintFile("src/exp/runner.cc", body);
  EXPECT_EQ(Rules(diags), std::set<std::string>{"no-raw-mutex"});
  EXPECT_EQ(diags.size(), 2u);  // include line + declaration line
}

TEST(PpaLintRules, WallClockShimIsTheOnlySimClockAllowlist) {
  std::string body =
      "// ppa-lint: allow-file(wall-clock)\n"
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(LintFile("src/common/wall_clock.cc", body).empty());
  auto diags = LintFile("src/sim/event_loop.cc", body);
  EXPECT_EQ(Rules(diags), std::set<std::string>{"no-wallclock-in-sim"});
}

TEST(PpaLintRules, GuardedMemberDocRequiresAMutexMember) {
  // Plain structs without a mutex owe no annotations, and a method
  // taking a Mutex* does not make the class mutex-holding.
  std::string header =
      "#ifndef PPA_ENGINE_X_H_\n"
      "#define PPA_ENGINE_X_H_\n"
      "namespace ppa {\n"
      "/// A plain aggregate.\n"
      "struct Snapshot {\n"
      "  int done = 0;\n"
      "  int failed = 0;\n"
      "};\n"
      "}  // namespace ppa\n"
      "#endif\n";
  EXPECT_TRUE(LintFile("src/engine/x.h", header).empty());
}

TEST(PpaLintRules, CommentsAndStringsAreScrubbed) {
  auto diags = LintFile("src/engine/x.cc",
                        "// rand() and throw and time(nullptr)\n"
                        "/* std::mt19937 too */\n"
                        "const char* s = \"getenv(\\\"HOME\\\")\";\n"
                        "const char* r = R\"(abort() catch)\";\n");
  EXPECT_TRUE(diags.empty());
}

TEST(PpaLintRules, DigitSeparatorsDoNotBreakScrubbing) {
  // If 1'000 opened a char literal, the rand() call after it would be
  // scrubbed and missed.
  auto diags = LintFile("src/engine/x.cc",
                        "int n = 1'000'000;\n"
                        "int r = rand();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "random");
  EXPECT_EQ(diags[0].line, 2);
}

TEST(PpaLintRules, RandomAllowedInCommonRandom) {
  EXPECT_TRUE(
      LintFile("src/common/random.cc", "#include <random>\nint r = rand();\n")
          .empty());
  EXPECT_TRUE(LintFile("src/common/random.h",
                       "#ifndef PPA_COMMON_RANDOM_H_\n"
                       "#define PPA_COMMON_RANDOM_H_\n"
                       "/// The engine state.\n"
                       "std::mt19937 gen;\n"
                       "#endif\n")
                  .empty());
}

TEST(PpaLintRules, AbortAllowedInCommon) {
  EXPECT_TRUE(LintFile("src/common/logging.cc", "std::abort();\n").empty());
  ASSERT_FALSE(LintFile("src/engine/x.cc", "std::abort();\n").empty());
}

TEST(PpaLintRules, ExceptionsRuleOnlyAppliesUnderSrc) {
  std::string body = "void F() { try { } catch (...) { } }\n";
  EXPECT_TRUE(LintFile("tests/foo_test.cc", body).empty());
  EXPECT_FALSE(LintFile("src/engine/x.cc", body).empty());
}

TEST(PpaLintRules, HeaderGuardExpectsPathDerivedName) {
  // src/ prefix is stripped; other top-level dirs are kept.
  EXPECT_TRUE(LintFile("src/engine/x.h",
                       "#ifndef PPA_ENGINE_X_H_\n#define PPA_ENGINE_X_H_\n"
                       "#endif\n")
                  .empty());
  EXPECT_TRUE(LintFile("tests/util.h",
                       "#ifndef PPA_TESTS_UTIL_H_\n#define PPA_TESTS_UTIL_H_\n"
                       "#endif\n")
                  .empty());
  auto diags = LintFile("src/engine/x.h",
                        "#ifndef PPA_ENGINE_Y_H_\n#define PPA_ENGINE_Y_H_\n"
                        "#endif\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "header-guard");
}

TEST(PpaLintRules, HeaderWithoutGuardIsFlagged) {
  auto diags = LintFile("src/engine/x.h", "int x;\n");
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].rule, "header-guard");
}

TEST(PpaLintRules, DoxygenGroupCommentCoversAdjacentDeclarations) {
  std::string header =
      "#ifndef PPA_ENGINE_X_H_\n"
      "#define PPA_ENGINE_X_H_\n"
      "namespace ppa {\n"
      "/// Factory helpers.\n"
      "int MakeOne();\n"
      "int MakeTwo();\n"
      "}  // namespace ppa\n"
      "#endif\n";
  EXPECT_TRUE(LintFile("src/engine/x.h", header).empty());
}

TEST(PpaLintRules, DoxygenSkipsForwardDeclarationsAndVariables) {
  std::string header =
      "#ifndef PPA_ENGINE_X_H_\n"
      "#define PPA_ENGINE_X_H_\n"
      "namespace ppa {\n"
      "class Forward;\n"
      "inline constexpr int kLimit = Compute(3);\n"
      "}  // namespace ppa\n"
      "#endif\n";
  EXPECT_TRUE(LintFile("src/engine/x.h", header).empty());
}

TEST(PpaLintRules, DoxygenOnlyAppliesToPublicHeaders) {
  std::string body = "namespace ppa {\nclass Undocumented {};\n}\n";
  EXPECT_TRUE(LintFile("src/engine/x.cc", body).empty());
  EXPECT_TRUE(LintFile("tests/helper.h",
                       "#ifndef PPA_TESTS_HELPER_H_\n"
                       "#define PPA_TESTS_HELPER_H_\n" +
                           body + "#endif\n")
                  .empty());
}

TEST(PpaLintRules, TemplatesAndAttributesDoNotHideDeclarations) {
  std::string header =
      "#ifndef PPA_ENGINE_X_H_\n"
      "#define PPA_ENGINE_X_H_\n"
      "namespace ppa {\n"
      "template <typename T>\n"
      "class Holder {};\n"
      "}  // namespace ppa\n"
      "#endif\n";
  auto diags = LintFile("src/engine/x.h", header);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "doxygen");
  EXPECT_EQ(diags[0].line, 4);
}

TEST(PpaLintRules, UnknownRuleInAllowDoesNotSuppressOthers) {
  auto diags = LintFile("src/engine/x.cc",
                        "int r = rand();  // ppa-lint: allow(wall-clock)\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "random");
}

TEST(PpaLintRules, FormatDiagnosticShape) {
  Diagnostic d{"src/engine/x.cc", 12, "random", "msg"};
  EXPECT_EQ(FormatDiagnostic(d), "src/engine/x.cc:12: [random] msg");
}

TEST(PpaLintRules, AllRuleNamesIsStable) {
  const auto& rules = AllRuleNames();
  EXPECT_EQ(rules.size(), 12u);
  for (const char* rule :
       {"unordered-iteration", "no-raw-mutex", "no-raw-thread",
        "no-wallclock-in-sim", "guarded-member-doc"}) {
    EXPECT_NE(std::find(rules.begin(), rules.end(), rule), rules.end())
        << rule;
  }
}

}  // namespace
}  // namespace lint
}  // namespace ppa
