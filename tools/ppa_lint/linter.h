#ifndef PPA_TOOLS_PPA_LINT_LINTER_H_
#define PPA_TOOLS_PPA_LINT_LINTER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ppa {
namespace lint {

/// One lint finding: a file, a 1-based line, the rule that fired, and a
/// human-readable explanation.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Formats a diagnostic as "file:line: [rule] message" (the exact shape a
/// terminal or CI annotator can parse).
[[nodiscard]] std::string FormatDiagnostic(const Diagnostic& d);

/// Names of every rule ppa_lint enforces, for --list_rules and for
/// validating suppression comments. See DESIGN.md §10 for the rationale of
/// each rule.
[[nodiscard]] const std::vector<std::string>& AllRuleNames();

/// Lints one file. `path` must be the repository-relative path with '/'
/// separators (rule applicability and the expected header-guard name are
/// derived from it); `content` is the file's full text.
///
/// Rules (suppress one occurrence with a trailing or preceding-line
/// comment `// ppa-lint: allow(rule-a, rule-b)`; suppress a rule for a
/// whole file with `// ppa-lint: allow-file(rule)`):
///
///   wall-clock           no wall-clock reads (time(), clock(),
///                        std::chrono::{system,steady,high_resolution}_clock,
///                        gettimeofday, ...): simulations must use the
///                        virtual clock in common/sim_time.h.
///   random               no ambient randomness (rand, srand,
///                        std::random_device, std::mt19937, <random>
///                        distributions) outside src/common/random.*: all
///                        randomness flows through the seeded ppa::Rng.
///   getenv               no environment reads: configuration must be
///                        explicit so runs are reproducible.
///   unordered-iteration  no ranged-for over unordered containers:
///                        iteration order is implementation-defined and
///                        breaks bit-identical replay.
///   exceptions           no throw/try/catch under src/: fallible APIs
///                        return ppa::Status / ppa::StatusOr (DESIGN.md §9).
///   abort                no bare abort() outside src/common/: fatal exits
///                        must go through common/logging (PPA_LOG(Fatal),
///                        PPA_CHECK) so they carry file:line context.
///   header-guard         .h files use an include guard named
///                        PPA_<PATH>_H_ derived from the repo-relative path
///                        (with a leading "src/" stripped).
///   doxygen              namespace-scope classes/structs/enums and free
///                        function declarations in public headers
///                        (src/*/*.h) carry a /// comment.
///
/// Concurrency & determinism rules (v2, DESIGN.md §14):
///
///   no-raw-mutex         no std::mutex / lock_guard / unique_lock /
///                        condition_variable under src/ outside
///                        src/common/: use the capability-annotated
///                        ppa::Mutex / MutexLock / CondVar
///                        (common/thread_annotations.h) so Clang's
///                        -Wthread-safety pass checks the lock discipline.
///   no-raw-thread        no std::thread / std::jthread / std::async /
///                        pthread_create under src/ outside src/common/:
///                        concurrency goes through ppa::ThreadPool (or an
///                        annotated wrapper added to common/).
///   no-wallclock-in-sim  hard ban (NOT suppressible with allow
///                        comments) on wall-clock reads anywhere under
///                        src/ except the allowlisted timing shim
///                        common/wall_clock.*: byte-reproducibility dies
///                        the moment simulated behavior can observe host
///                        time.
///   guarded-member-doc   in src/ headers, a class holding a mutex must
///                        annotate every other data member with
///                        PPA_GUARDED_BY(...) or carry a comment (on or
///                        above the member) saying why it needs no guard.
[[nodiscard]] std::vector<Diagnostic> LintFile(const std::string& path,
                                               std::string_view content);

}  // namespace lint
}  // namespace ppa

#endif  // PPA_TOOLS_PPA_LINT_LINTER_H_
