// Fixture: a leaf header with no project includes.
