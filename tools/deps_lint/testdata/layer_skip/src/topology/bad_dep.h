// Fixture: topology (layer 1) reaching up into planner (layer 4) —
// deps_lint must report a [layer] diagnostic for this tree.
#include "planner/planner.h"
