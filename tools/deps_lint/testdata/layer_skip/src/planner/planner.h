// Fixture: a legal planner header (its own include points down-DAG).
#include "topology/types.h"
