// Fixture: a.h and b.h include each other — deps_lint must report a
// [cycle] diagnostic for this tree.
#include "engine/b.h"
