// Fixture: the other half of the planted include cycle.
#include "engine/a.h"
