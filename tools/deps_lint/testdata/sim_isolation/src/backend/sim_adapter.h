// Legal: the backend module is the one place allowed to wrap the sim.
#include "sim/event_loop.h"
