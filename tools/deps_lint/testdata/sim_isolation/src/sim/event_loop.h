// Stand-in for the real simulator header.
int sim_marker;
