// Planted violation: engine code reaching into the simulator directly.
// Only src/backend/ may include sim/ headers (DESIGN.md §16).
#include "sim/event_loop.h"
