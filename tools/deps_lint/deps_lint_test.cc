#include "tools/deps_lint/deps_lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ppa {
namespace depslint {
namespace {

bool HasRule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

TEST(DepsLintModules, RanksFollowTheLayeringContract) {
  EXPECT_EQ(ModuleRank("common"), 0);
  EXPECT_LT(ModuleRank("topology"), ModuleRank("planner"));
  EXPECT_LT(ModuleRank("sim"), ModuleRank("backend"));
  EXPECT_LT(ModuleRank("backend"), ModuleRank("runtime"));
  EXPECT_LT(ModuleRank("planner"), ModuleRank("exp"));
  EXPECT_LT(ModuleRank("exp"), ModuleRank("service"));
  EXPECT_LT(ModuleRank("service"), ModuleRank("chaos"));
  EXPECT_EQ(ModuleRank("not_a_module"), -1);
}

TEST(DepsLintModules, JsonIsCarvedOutOfReport) {
  EXPECT_EQ(ModuleOf("src/report/json.h"), "json");
  EXPECT_EQ(ModuleOf("src/report/json.cc"), "json");
  EXPECT_EQ(ModuleOf("src/report/experiment_report.h"), "report");
  EXPECT_LT(ModuleRank("json"), ModuleRank("report"));
}

TEST(DepsLintModules, PathsOutsideSrcHaveNoModule) {
  EXPECT_EQ(ModuleOf("bench/driver.h"), "");
  EXPECT_EQ(ModuleOf("tools/deps_lint/deps_lint.h"), "");
}

TEST(DepsLintCheck, DownwardEdgesAreLegal) {
  std::vector<SourceFile> files = {
      {"src/planner/planner.h", "#include \"fidelity/metrics.h\"\n"},
      {"src/chaos/campaign.h", "#include \"service/cluster_service.h\"\n"},
      {"src/obs/trace.h", "#include \"common/status.h\"\n"},
      {"bench/driver.h", "#include \"exp/parallel_runner.h\"\n"},
  };
  EXPECT_TRUE(CheckLayering(files).empty());
}

TEST(DepsLintCheck, UpwardEdgeIsReported) {
  std::vector<SourceFile> files = {
      {"src/topology/types.h", "#include \"planner/planner.h\"\n"},
  };
  auto diags = CheckLayering(files);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "layer");
  EXPECT_EQ(diags[0].file, "src/topology/types.h");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(DepsLintCheck, SameRankSiblingsAreReported) {
  std::vector<SourceFile> files = {
      {"src/sim/event_loop.cc", "#include \"engine/operator.h\"\n"},
  };
  auto diags = CheckLayering(files);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "layer");
}

TEST(DepsLintCheck, SrcMustNotDependOnBinaries) {
  std::vector<SourceFile> files = {
      {"src/exp/runner.cc", "#include \"bench/driver.h\"\n"},
  };
  auto diags = CheckLayering(files);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "layer");
}

TEST(DepsLintCheck, UnknownModuleIsReported) {
  std::vector<SourceFile> files = {
      {"src/newthing/x.cc", "#include \"common/status.h\"\n"},
      {"src/engine/y.cc", "#include \"newthing/x.h\"\n"},
  };
  auto diags = CheckLayering(files);
  EXPECT_EQ(diags.size(), 2u);
  EXPECT_TRUE(HasRule(diags, "unknown-module"));
  EXPECT_FALSE(HasRule(diags, "layer"));
}

TEST(DepsLintCheck, IncludeCycleIsReported) {
  std::vector<SourceFile> files = {
      {"src/engine/a.h", "#include \"engine/b.h\"\n"},
      {"src/engine/b.h", "#include \"engine/a.h\"\n"},
  };
  auto diags = CheckLayering(files);
  ASSERT_EQ(diags.size(), 1u);  // one diagnostic per cycle, not per member
  EXPECT_EQ(diags[0].rule, "cycle");
  EXPECT_NE(diags[0].message.find("src/engine/a.h"), std::string::npos);
  EXPECT_NE(diags[0].message.find("src/engine/b.h"), std::string::npos);
}

TEST(DepsLintCheck, IntraModuleEdgesAreLegalButCyclesAreNot) {
  // The layer rule is silent inside a module; the cycle rule is not.
  std::vector<SourceFile> files = {
      {"src/ft/a.h", "#include \"ft/b.h\"\n"},
      {"src/ft/b.h", "int x;\n"},
  };
  EXPECT_TRUE(CheckLayering(files).empty());
}

TEST(DepsLintCheck, AngleAndCommentedIncludesAreIgnored) {
  std::vector<SourceFile> files = {
      {"src/topology/types.h",
       "#include <vector>\n"
       "// #include \"planner/planner.h\"\n"},
  };
  EXPECT_TRUE(CheckLayering(files).empty());
}

TEST(DepsLintCheck, OnlyBackendMayIncludeSim) {
  // engine (same layer as sim) and runtime (above sim) both get the
  // dedicated sim-isolation diagnostic instead of a generic layer one.
  std::vector<SourceFile> files = {
      {"src/engine/task_runtime.cc", "#include \"sim/event_loop.h\"\n"},
      {"src/ft/checkpoint.cc", "#include \"sim/event_loop.h\"\n"},
      {"src/runtime/job.cc", "#include \"sim/event_loop.h\"\n"},
  };
  auto diags = CheckLayering(files);
  ASSERT_EQ(diags.size(), 3u);
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "sim-isolation") << d.file;
  }
  EXPECT_FALSE(HasRule(diags, "layer"));
}

TEST(DepsLintCheck, BackendAndSimItselfMayIncludeSim) {
  std::vector<SourceFile> files = {
      {"src/backend/sim_backend.h", "#include \"sim/event_loop.h\"\n"},
      {"src/sim/event_loop.cc", "#include \"sim/event_queue.h\"\n"},
      // The rule only applies to src/: tests and benches drive the sim
      // directly when they are testing the sim itself.
      {"bench/sim_probe.cc", "#include \"sim/event_loop.h\"\n"},
  };
  EXPECT_TRUE(CheckLayering(files).empty());
}

TEST(DepsLintModules, ToolOfNamesTheDirectoryUnderTools) {
  EXPECT_EQ(ToolOf("tools/deps_lint/deps_lint.h"), "deps_lint");
  EXPECT_EQ(ToolOf("tools/bench_diff/main.cc"), "bench_diff");
  EXPECT_EQ(ToolOf("src/obs/trace.h"), "");
  EXPECT_EQ(ToolOf("tools/README.md"), "");
}

TEST(DepsLintCheck, CrossToolIncludeIsReported) {
  std::vector<SourceFile> files = {
      {"tools/bench_diff/main.cc",
       "#include \"tools/deps_lint/deps_lint.h\"\n"},
  };
  auto diags = CheckLayering(files);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "tool-isolation");
  EXPECT_EQ(diags[0].file, "tools/bench_diff/main.cc");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(DepsLintCheck, IntraToolAndToolToSrcIncludesAreLegal) {
  std::vector<SourceFile> files = {
      {"tools/bench_diff/main.cc",
       "#include \"tools/bench_diff/bench_diff.h\"\n"
       "#include \"report/json.h\"\n"},
  };
  EXPECT_TRUE(CheckLayering(files).empty());
}

TEST(DepsLintCheck, FormatDiagnosticShape) {
  Diagnostic d{"src/sim/x.cc", 3, "layer", "msg"};
  EXPECT_EQ(FormatDiagnostic(d), "src/sim/x.cc:3: [layer] msg");
}

}  // namespace
}  // namespace depslint
}  // namespace ppa
