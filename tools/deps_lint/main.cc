// deps_lint: enforces the include-layering contract (DESIGN.md §14) over
// the C++ sources. Run from CMake/ctest as
//   deps_lint --root <repo_root> [relative paths...]
// With no explicit paths it checks src/, tests/, bench/, examples/, and
// tools/. Exits 0 iff the quoted-include graph respects the layer DAG and
// is acyclic. See tools/deps_lint/deps_lint.h for the rule list.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/deps_lint/deps_lint.h"

namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

/// Repo-relative '/'-separated path string.
std::string RelPath(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

bool IsExcluded(const std::string& rel) {
  // Fixture files are intentionally full of violations.
  return rel.find("testdata/") != std::string::npos ||
         rel.find("build") == 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--help") {
      std::cout << "usage: deps_lint [--root <dir>] [paths...]\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    paths = {"src", "tests", "bench", "examples", "tools"};
  }

  std::vector<ppa::depslint::SourceFile> files;
  for (const std::string& p : paths) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    std::vector<fs::path> found;
    if (fs::is_directory(abs)) {
      for (const auto& entry : fs::recursive_directory_iterator(abs)) {
        if (entry.is_regular_file() && HasLintableExtension(entry.path()) &&
            !IsExcluded(RelPath(entry.path(), root))) {
          found.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(abs)) {
      found.push_back(abs);
    } else {
      std::cerr << "deps_lint: no such file or directory: " << abs << "\n";
      return 2;
    }
    // Directory iteration order is OS-dependent; sort for stable output.
    std::sort(found.begin(), found.end());
    for (const fs::path& f : found) {
      std::ifstream in(f, std::ios::binary);
      if (!in) {
        std::cerr << "deps_lint: cannot read " << f << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      files.push_back({RelPath(f, root), buf.str()});
    }
  }

  int failures = 0;
  for (const ppa::depslint::Diagnostic& d :
       ppa::depslint::CheckLayering(files)) {
    std::cerr << ppa::depslint::FormatDiagnostic(d) << "\n";
    ++failures;
  }
  if (failures > 0) {
    std::cerr << "deps_lint: " << failures << " finding(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "deps_lint: OK (" << files.size() << " files)\n";
  return 0;
}
