#ifndef PPA_TOOLS_DEPS_LINT_DEPS_LINT_H_
#define PPA_TOOLS_DEPS_LINT_DEPS_LINT_H_

#include <string>
#include <string_view>
#include <vector>

namespace ppa {
namespace depslint {

/// One source file handed to the checker: its repo-relative path (with
/// '/' separators) and full text. The checker is a pure function of the
/// file set, so tests can run it on in-memory trees.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One layering finding, formatted like a compiler diagnostic.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Formats a diagnostic as "file:line: [rule] message".
[[nodiscard]] std::string FormatDiagnostic(const Diagnostic& d);

/// The layer rank of a src/ module name ("common", "planner", ...), or -1
/// when the module is not in the layering contract (DESIGN.md §14).
/// Lower ranks are lower layers; an include edge is legal only when its
/// target module has a strictly lower rank (or is the same module).
[[nodiscard]] int ModuleRank(std::string_view module);

/// The module a repo-relative path belongs to: the directory under src/
/// ("src/planner/..." -> "planner"), with src/report/json.* carved out as
/// its own low-layer "json" module (the JSON value type predates the
/// experiment-report layer and everything serializes through it). Paths
/// outside src/ return "" — they sit above the DAG and may include
/// anything.
[[nodiscard]] std::string ModuleOf(std::string_view path);

/// The tool a path belongs to: the directory under tools/
/// ("tools/deps_lint/main.cc" -> "deps_lint"). "" for paths outside
/// tools/. Tools are standalone checkers: a file of one tool must not
/// include another tool's headers (the tool-isolation rule).
[[nodiscard]] std::string ToolOf(std::string_view path);

/// Checks the whole file set against the include-layering contract.
/// Rules:
///   layer           a src/ file includes a module whose rank is not
///                   strictly lower than its own (includes same-rank
///                   siblings and src -> bench/tests/tools edges).
///   unknown-module  a src/ file, or a project header it includes, sits
///                   in a directory the rank table does not know; the
///                   table in deps_lint.cc must grow with the codebase.
///   cycle           the quoted-include graph over the given files has a
///                   cycle (reported once per cycle, at the back edge).
///   tool-isolation  a tools/<a>/ file includes a tools/<b>/ header:
///                   tools are standalone; shared code belongs in src/.
/// Diagnostics are sorted by file, then line.
[[nodiscard]] std::vector<Diagnostic> CheckLayering(
    const std::vector<SourceFile>& files);

}  // namespace depslint
}  // namespace ppa

#endif  // PPA_TOOLS_DEPS_LINT_DEPS_LINT_H_
