#include "tools/deps_lint/deps_lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace ppa {
namespace depslint {
namespace {

/// One quoted #include directive found in a file.
struct IncludeEdge {
  int line = 0;        // 1-based
  std::string target;  // the path between the quotes
};

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string Trim(std::string_view s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string_view::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\r");
  return std::string(s.substr(b, e - b + 1));
}

/// Extracts the quoted #include directives of a file. Angle includes are
/// system/third-party headers and carry no layering obligations;
/// commented-out directives are skipped.
std::vector<IncludeEdge> ParseIncludes(std::string_view content) {
  std::vector<IncludeEdge> edges;
  int lineno = 0;
  size_t pos = 0;
  while (pos <= content.size()) {
    size_t nl = content.find('\n', pos);
    std::string_view raw =
        content.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    ++lineno;
    std::string line = Trim(raw);
    if (StartsWith(line, "#") &&
        line.find("include") != std::string::npos) {
      size_t open = line.find('"');
      if (open != std::string::npos) {
        size_t close = line.find('"', open + 1);
        if (close != std::string::npos) {
          edges.push_back({lineno, line.substr(open + 1, close - open - 1)});
        }
      }
    }
    if (nl == std::string_view::npos) {
      break;
    }
    pos = nl + 1;
  }
  return edges;
}

/// The module an include target ("common/logging.h") names, using the
/// same carve-outs as ModuleOf.
std::string TargetModuleOf(std::string_view include_path) {
  if (StartsWith(include_path, "report/json.")) {
    return "json";
  }
  size_t slash = include_path.find('/');
  if (slash == std::string_view::npos) {
    return "";  // top-level header; not part of the src DAG
  }
  return std::string(include_path.substr(0, slash));
}

/// Depth-first cycle search over the resolved file-level include graph.
/// Colors: 0 = unvisited, 1 = on the current path, 2 = done.
struct CycleFinder {
  const std::map<std::string, std::vector<IncludeEdge>>& graph;
  std::map<std::string, int> color;
  std::vector<std::string> path;
  std::vector<Diagnostic>* diags;

  /// Resolves an include target to a node of the graph, trying the raw
  /// path and the src/-rooted form (headers are included relative to -I
  /// src). Returns "" when the target is outside the analyzed set.
  std::string Resolve(const std::string& target) const {
    if (graph.count(target) != 0) {
      return target;
    }
    std::string under_src = "src/" + target;
    if (graph.count(under_src) != 0) {
      return under_src;
    }
    return "";
  }

  void Visit(const std::string& node) {
    color[node] = 1;
    path.push_back(node);
    for (const IncludeEdge& edge : graph.at(node)) {
      std::string next = Resolve(edge.target);
      if (next.empty()) {
        continue;
      }
      int c = color.count(next) != 0 ? color[next] : 0;
      if (c == 1) {
        // Back edge: the cycle is the path suffix from `next` to `node`.
        std::ostringstream chain;
        bool in_cycle = false;
        for (const std::string& p : path) {
          if (p == next) {
            in_cycle = true;
          }
          if (in_cycle) {
            chain << p << " -> ";
          }
        }
        chain << next;
        diags->push_back(
            {node, edge.line, "cycle",
             "include cycle: " + chain.str() +
                 "; break it with a forward declaration or by moving the "
                 "shared piece down a layer (DESIGN.md §14)"});
      } else if (c == 0) {
        Visit(next);
      }
    }
    path.pop_back();
    color[node] = 2;
  }
};

}  // namespace

std::string FormatDiagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

int ModuleRank(std::string_view module) {
  // The layering contract (DESIGN.md §14). An include edge is legal only
  // when the target rank is strictly lower than the source rank (or the
  // modules are equal): same-rank modules are independent siblings.
  static const std::map<std::string, int, std::less<>> kRanks = {
      {"common", 0},
      {"topology", 1}, {"json", 1},
      {"obs", 2},      {"fidelity", 2},
      {"af", 3},
      {"sim", 3},      {"engine", 3},   {"ft", 3},
      {"backend", 4},
      {"planner", 5},  {"runtime", 5},
      {"workloads", 6}, {"report", 6},
      {"exp", 7},
      {"service", 8},
      {"chaos", 9},
  };
  auto it = kRanks.find(module);
  return it == kRanks.end() ? -1 : it->second;
}

std::string ToolOf(std::string_view path) {
  if (!StartsWith(path, "tools/")) {
    return "";
  }
  std::string_view rest = path.substr(6);
  size_t slash = rest.find('/');
  if (slash == std::string_view::npos) {
    return "";  // a file directly under tools/ — not inside a tool
  }
  return std::string(rest.substr(0, slash));
}

std::string ModuleOf(std::string_view path) {
  if (!StartsWith(path, "src/")) {
    return "";
  }
  if (StartsWith(path, "src/report/json.")) {
    return "json";
  }
  std::string_view rest = path.substr(4);
  size_t slash = rest.find('/');
  if (slash == std::string_view::npos) {
    return "";  // a file directly under src/ (e.g. CMakeLists) — no module
  }
  return std::string(rest.substr(0, slash));
}

std::vector<Diagnostic> CheckLayering(const std::vector<SourceFile>& files) {
  std::vector<Diagnostic> diags;
  std::map<std::string, std::vector<IncludeEdge>> graph;
  for (const SourceFile& file : files) {
    graph[file.path] = ParseIncludes(file.content);
  }

  // Tool-isolation check: each tools/<name>/ directory is a standalone
  // checker; one tool including another couples their release cadence
  // and defeats the "pure library + CLI" pattern. Shared code belongs in
  // src/ (where the layer rules apply).
  for (const auto& [path, edges] : graph) {
    std::string tool = ToolOf(path);
    if (tool.empty()) {
      continue;
    }
    for (const IncludeEdge& edge : edges) {
      std::string target_tool = ToolOf(edge.target);
      if (!target_tool.empty() && target_tool != tool) {
        diags.push_back({path, edge.line, "tool-isolation",
                         "tools/" + tool + "/ must not include tools/" +
                             target_tool +
                             "/: tools are standalone; move shared code "
                             "into src/"});
      }
    }
  }

  // Layer / unknown-module checks: only src/ files carry obligations.
  for (const auto& [path, edges] : graph) {
    std::string module = ModuleOf(path);
    if (module.empty()) {
      continue;
    }
    int rank = ModuleRank(module);
    if (rank < 0) {
      diags.push_back(
          {path, 1, "unknown-module",
           "directory src/" + module + "/ is not in the layering contract; "
           "add it to the rank table in tools/deps_lint/deps_lint.cc and "
           "to DESIGN.md §14"});
      continue;
    }
    for (const IncludeEdge& edge : edges) {
      std::string target = TargetModuleOf(edge.target);
      if (target.empty()) {
        continue;
      }
      if (StartsWith(edge.target, "bench/") ||
          StartsWith(edge.target, "tests/") ||
          StartsWith(edge.target, "tools/") ||
          StartsWith(edge.target, "examples/")) {
        diags.push_back({path, edge.line, "layer",
                         "src/ must not depend on " + target +
                             "/: the library layers sit below the "
                             "binaries and tests that drive them"});
        continue;
      }
      if (target == module) {
        continue;
      }
      // Sim-isolation: the deterministic simulator is an implementation
      // detail of the sim execution backend. Only src/backend/ may include
      // sim/ headers; everything else (engine, ft, runtime, ...) must go
      // through backend::ExecutionBackend so the same code runs on real
      // threads. Emitted instead of the generic layer diagnostic.
      if (target == "sim" && module != "backend") {
        diags.push_back(
            {path, edge.line, "sim-isolation",
             "include of \"" + edge.target + "\": only src/backend/ may "
             "depend on the simulator; use backend::ExecutionBackend so "
             "the code stays backend-neutral (DESIGN.md §16)"});
        continue;
      }
      int target_rank = ModuleRank(target);
      if (target_rank < 0) {
        diags.push_back(
            {path, edge.line, "unknown-module",
             "include of \"" + edge.target + "\": module " + target +
                 " is not in the layering contract; add it to the rank "
                 "table in tools/deps_lint/deps_lint.cc"});
        continue;
      }
      if (target_rank >= rank) {
        std::ostringstream msg;
        msg << "illegal dependency " << module << " (layer " << rank
            << ") -> " << target << " (layer " << target_rank << "): ";
        msg << (target_rank == rank
                    ? "same-layer modules are independent siblings"
                    : "an include must point strictly down the layer DAG");
        msg << " (DESIGN.md §14)";
        diags.push_back({path, edge.line, "layer", msg.str()});
      }
    }
  }

  // Cycle check over the whole set (cycles are illegal even inside one
  // module, where the layer rule is silent).
  CycleFinder finder{graph, {}, {}, &diags};
  for (const auto& [path, edges] : graph) {
    (void)edges;
    if (finder.color.count(path) == 0 || finder.color[path] == 0) {
      finder.Visit(path);
    }
  }

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return a.file != b.file ? a.file < b.file : a.line < b.line;
            });
  return diags;
}

}  // namespace depslint
}  // namespace ppa
