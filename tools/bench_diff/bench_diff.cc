#include "tools/bench_diff/bench_diff.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

namespace ppa {
namespace benchdiff {
namespace {

/// The deterministic counters: a pure function of the simulated run, so
/// any change is a behavior change and gates exactly.
constexpr const char* kCounters[] = {"events_processed", "sink_records",
                                     "recoveries", "checkpoint_bytes",
                                     "checkpoints_skipped"};

/// The wall metrics with their bad direction: -1 means falling is bad
/// (throughput-like), +1 means rising is bad (cost-like).
struct WallMetric {
  const char* name;
  int bad_sign;
};
constexpr WallMetric kWallMetrics[] = {{"events_per_sec", -1},
                                       {"sim_wall_ratio", -1},
                                       {"wall_seconds", +1}};

bool IsCounter(std::string_view name) {
  for (const char* counter : kCounters) {
    if (name == counter) {
      return true;
    }
  }
  return false;
}

bool IsWallMetric(std::string_view name) {
  for (const WallMetric& metric : kWallMetrics) {
    if (name == metric.name) {
      return true;
    }
  }
  return false;
}

/// The canonical key of a cell: every scalar member that is neither a
/// counter nor a wall metric, in insertion order, as "name=value" pairs.
/// Nested members (e.g. a hot_spans table) never identify a cell.
std::string CellKey(const JsonValue& cell) {
  std::ostringstream key;
  bool first = true;
  for (const auto& [name, value] : cell.members()) {
    if (IsCounter(name) || IsWallMetric(name) || value.is_object() ||
        value.is_array()) {
      continue;
    }
    if (!first) {
      key << " ";
    }
    first = false;
    key << name << "=" << value.Serialize();
  }
  return key.str();
}

double RelChange(double baseline, double current) {
  if (baseline == 0.0) {
    return current == 0.0 ? 0.0 : (current > 0.0 ? 1.0 : -1.0);
  }
  return (current - baseline) / baseline;
}

std::string SuiteOf(const JsonValue& report) {
  const JsonValue* suite = report.Find("suite");
  return suite != nullptr && suite->is_string() ? suite->AsString() : "";
}

std::string CommitOf(const JsonValue& report) {
  const JsonValue* commit = report.Find("commit");
  return commit != nullptr && commit->is_string() ? commit->AsString() : "";
}

StatusOr<const JsonValue*> CellsOf(const JsonValue& report,
                                   const char* which) {
  if (!report.is_object()) {
    return InvalidArgument(std::string(which) +
                           " report is not a JSON object");
  }
  const JsonValue* cells = report.Find("cells");
  if (cells == nullptr || !cells->is_array()) {
    return InvalidArgument(std::string(which) +
                           " report has no \"cells\" array");
  }
  for (size_t i = 0; i < cells->size(); ++i) {
    if (!cells->at(i).is_object()) {
      return InvalidArgument(std::string(which) + " cell " +
                             std::to_string(i) + " is not an object");
    }
  }
  return cells;
}

/// Compares one matched cell pair and appends its field deltas.
void DiffCell(const std::string& key, const JsonValue& baseline,
              const JsonValue& current, const DiffOptions& options,
              DiffReport* report) {
  for (const char* counter : kCounters) {
    const JsonValue* old_value = baseline.Find(counter);
    const JsonValue* new_value = current.Find(counter);
    if (old_value == nullptr && new_value == nullptr) {
      continue;
    }
    FieldDelta delta;
    delta.cell = key;
    delta.field = counter;
    delta.deterministic = true;
    // A counter present on one side only is itself a mismatch.
    if (old_value == nullptr || new_value == nullptr ||
        !old_value->is_number() || !new_value->is_number()) {
      delta.baseline = old_value != nullptr && old_value->is_number()
                           ? old_value->AsDouble()
                           : 0.0;
      delta.current = new_value != nullptr && new_value->is_number()
                          ? new_value->AsDouble()
                          : 0.0;
      delta.regression = true;
    } else {
      delta.baseline = old_value->AsDouble();
      delta.current = new_value->AsDouble();
      delta.regression = old_value->AsInt() != new_value->AsInt();
    }
    delta.rel_change = RelChange(delta.baseline, delta.current);
    if (delta.regression) {
      ++report->deterministic_mismatches;
    }
    report->deltas.push_back(std::move(delta));
  }
  for (const WallMetric& metric : kWallMetrics) {
    const JsonValue* old_value = baseline.Find(metric.name);
    const JsonValue* new_value = current.Find(metric.name);
    // Wall metrics are optional (--no_wall runs omit them): compare only
    // when both sides measured.
    if (old_value == nullptr || new_value == nullptr ||
        !old_value->is_number() || !new_value->is_number()) {
      continue;
    }
    FieldDelta delta;
    delta.cell = key;
    delta.field = metric.name;
    delta.baseline = old_value->AsDouble();
    delta.current = new_value->AsDouble();
    delta.rel_change = RelChange(delta.baseline, delta.current);
    delta.regression =
        metric.bad_sign * delta.rel_change > options.wall_tolerance;
    if (delta.regression) {
      ++report->wall_regressions;
    }
    report->deltas.push_back(std::move(delta));
  }
}

std::string FormatValue(const FieldDelta& delta, double value) {
  char buf[64];
  if (delta.deterministic) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", value);
  }
  return buf;
}

std::string FormatDelta(const FieldDelta& delta) {
  if (delta.deterministic) {
    return delta.regression ? "MISMATCH" : "=";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", delta.rel_change * 100.0);
  return buf;
}

}  // namespace

StatusOr<DiffReport> DiffBenchReports(const JsonValue& baseline,
                                      const JsonValue& current,
                                      const DiffOptions& options) {
  if (options.wall_tolerance < 0.0) {
    return InvalidArgument("wall_tolerance must be non-negative");
  }
  PPA_ASSIGN_OR_RETURN(const JsonValue* old_cells,
                       CellsOf(baseline, "baseline"));
  PPA_ASSIGN_OR_RETURN(const JsonValue* new_cells,
                       CellsOf(current, "current"));

  DiffReport report;
  report.baseline_suite = SuiteOf(baseline);
  report.current_suite = SuiteOf(current);
  report.baseline_commit = CommitOf(baseline);
  report.current_commit = CommitOf(current);
  report.wall_tolerance = options.wall_tolerance;
  report.fail_on_wall = options.fail_on_wall;

  std::map<std::string, const JsonValue*> current_by_key;
  for (size_t i = 0; i < new_cells->size(); ++i) {
    const JsonValue& cell = new_cells->at(i);
    if (!current_by_key.emplace(CellKey(cell), &cell).second) {
      return InvalidArgument("current report has duplicate cell key \"" +
                             CellKey(cell) + "\"");
    }
  }
  std::map<std::string, bool> matched;  // key -> seen in baseline
  for (size_t i = 0; i < old_cells->size(); ++i) {
    const JsonValue& cell = old_cells->at(i);
    std::string key = CellKey(cell);
    if (!matched.emplace(key, true).second) {
      return InvalidArgument("baseline report has duplicate cell key \"" +
                             key + "\"");
    }
    auto it = current_by_key.find(key);
    if (it == current_by_key.end()) {
      report.only_in_baseline.push_back(key);
      continue;
    }
    DiffCell(key, cell, *it->second, options, &report);
  }
  // Current-side extras, in current file order for determinism.
  for (size_t i = 0; i < new_cells->size(); ++i) {
    std::string key = CellKey(new_cells->at(i));
    if (matched.count(key) == 0) {
      report.only_in_current.push_back(key);
    }
  }
  return report;
}

std::string DiffReportToMarkdown(const DiffReport& report) {
  std::ostringstream md;
  md << "# bench_diff: " << report.baseline_suite << " -> "
     << report.current_suite << "\n\n";
  if (!report.baseline_commit.empty() || !report.current_commit.empty()) {
    md << "commits: `" << report.baseline_commit << "` -> `"
       << report.current_commit << "`\n";
  }
  char tol[64];
  std::snprintf(tol, sizeof(tol), "%.1f%%", report.wall_tolerance * 100.0);
  md << "wall tolerance: " << tol << " ("
     << (report.fail_on_wall ? "gating" : "report-only") << ")\n\n";
  md << "| cell | field | baseline | current | delta | status |\n";
  md << "|---|---|---|---|---|---|\n";
  for (const FieldDelta& delta : report.deltas) {
    const char* status = !delta.regression        ? "ok"
                         : delta.deterministic    ? "FAIL"
                         : report.fail_on_wall    ? "FAIL"
                                                  : "warn";
    md << "| " << delta.cell << " | " << delta.field << " | "
       << FormatValue(delta, delta.baseline) << " | "
       << FormatValue(delta, delta.current) << " | " << FormatDelta(delta)
       << " | " << status << " |\n";
  }
  for (const std::string& key : report.only_in_baseline) {
    md << "\nFAIL: cell only in baseline: " << key << "\n";
  }
  for (const std::string& key : report.only_in_current) {
    md << "\nFAIL: cell only in current: " << key << "\n";
  }
  md << "\n" << report.deterministic_mismatches
     << " deterministic mismatch(es), " << report.wall_regressions
     << " wall regression(s), " << report.only_in_baseline.size()
     << "+" << report.only_in_current.size() << " unmatched cell(s)\n";
  md << "\nGATE: " << (report.gate_failed() ? "FAIL" : "PASS") << "\n";
  return md.str();
}

JsonValue DiffReportToJson(const DiffReport& report) {
  JsonValue json = JsonValue::Object();
  json.Set("baseline_suite", report.baseline_suite);
  json.Set("current_suite", report.current_suite);
  json.Set("baseline_commit", report.baseline_commit);
  json.Set("current_commit", report.current_commit);
  json.Set("wall_tolerance", report.wall_tolerance);
  json.Set("fail_on_wall", report.fail_on_wall);
  JsonValue deltas = JsonValue::Array();
  for (const FieldDelta& delta : report.deltas) {
    JsonValue entry = JsonValue::Object();
    entry.Set("cell", delta.cell);
    entry.Set("field", delta.field);
    entry.Set("baseline", delta.baseline);
    entry.Set("current", delta.current);
    entry.Set("rel_change", delta.rel_change);
    entry.Set("deterministic", delta.deterministic);
    entry.Set("regression", delta.regression);
    deltas.Append(std::move(entry));
  }
  json.Set("deltas", std::move(deltas));
  JsonValue only_old = JsonValue::Array();
  for (const std::string& key : report.only_in_baseline) {
    only_old.Append(key);
  }
  json.Set("only_in_baseline", std::move(only_old));
  JsonValue only_new = JsonValue::Array();
  for (const std::string& key : report.only_in_current) {
    only_new.Append(key);
  }
  json.Set("only_in_current", std::move(only_new));
  json.Set("deterministic_mismatches", report.deterministic_mismatches);
  json.Set("wall_regressions", report.wall_regressions);
  json.Set("gate_failed", report.gate_failed());
  return json;
}

}  // namespace benchdiff
}  // namespace ppa
