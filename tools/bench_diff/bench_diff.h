#ifndef PPA_TOOLS_BENCH_DIFF_BENCH_DIFF_H_
#define PPA_TOOLS_BENCH_DIFF_BENCH_DIFF_H_

#include <string>
#include <vector>

#include "common/status_or.h"
#include "report/json.h"

namespace ppa {
namespace benchdiff {

/// Comparison knobs. Deterministic counters always gate exactly; wall
/// metrics are report-only unless `fail_on_wall` is set, since wall time
/// depends on the machine the benchmark ran on.
struct DiffOptions {
  /// Maximum tolerated relative change of a wall metric in its bad
  /// direction (0.25 = 25%). Improvements never count as regressions.
  double wall_tolerance = 0.25;
  /// Make wall-metric regressions fail the gate too.
  bool fail_on_wall = false;
};

/// One compared field of one matched cell.
struct FieldDelta {
  /// Canonical cell key, e.g. "nodes=256 workers=192 total_tasks=...".
  std::string cell;
  std::string field;
  double baseline = 0.0;
  double current = 0.0;
  /// (current - baseline) / baseline; 0 when baseline is 0 and current
  /// is too, ±1 when baseline is 0 and current is not.
  double rel_change = 0.0;
  /// True for the exact-equality counters (events_processed,
  /// sink_records, recoveries), false for wall metrics.
  bool deterministic = false;
  /// Counter mismatch, or wall metric beyond tolerance in its bad
  /// direction.
  bool regression = false;
};

/// Outcome of diffing two BENCH_*.json reports.
struct DiffReport {
  std::string baseline_suite;
  std::string current_suite;
  std::string baseline_commit;
  std::string current_commit;
  /// Cell keys present on only one side. Any entry fails the gate:
  /// coverage changes are as load-bearing as counter changes.
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_current;
  /// Every compared field of every matched cell, in baseline cell order
  /// then field order — deterministic for fixed inputs.
  std::vector<FieldDelta> deltas;
  /// The options the diff ran with (echoed into the rendered reports).
  double wall_tolerance = 0.25;
  bool fail_on_wall = false;
  int deterministic_mismatches = 0;
  int wall_regressions = 0;

  /// True when the diff should fail a CI gate: any deterministic
  /// mismatch, any unmatched cell, or (with fail_on_wall) any wall
  /// regression.
  [[nodiscard]] bool gate_failed() const {
    return deterministic_mismatches > 0 || !only_in_baseline.empty() ||
           !only_in_current.empty() ||
           (fail_on_wall && wall_regressions > 0);
  }
};

/// Diffs two benchmark reports cell by cell. Cells match when their key
/// members — every scalar member that is neither a deterministic counter
/// nor a wall metric (e.g. nodes, tenants, sim_seconds) — are equal.
/// Counters must be exactly equal; wall metrics are compared against
/// `options.wall_tolerance` in their bad direction (events_per_sec and
/// sim_wall_ratio falling, wall_seconds rising) and skipped when absent
/// on either side (e.g. a --no_wall run). Fails on malformed reports
/// (no "cells" array, non-object cells, duplicate cell keys).
[[nodiscard]] StatusOr<DiffReport> DiffBenchReports(
    const JsonValue& baseline, const JsonValue& current,
    const DiffOptions& options);

/// Renders the diff as a markdown table plus a PASS/FAIL verdict line.
[[nodiscard]] std::string DiffReportToMarkdown(const DiffReport& report);

/// Serializes the diff (options, unmatched cells, per-field deltas,
/// verdict) for machine consumption.
[[nodiscard]] JsonValue DiffReportToJson(const DiffReport& report);

}  // namespace benchdiff
}  // namespace ppa

#endif  // PPA_TOOLS_BENCH_DIFF_BENCH_DIFF_H_
