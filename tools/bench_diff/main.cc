// bench_diff: the perf-trajectory regression gate (DESIGN.md §15).
// Compares two BENCH_*.json reports cell by cell: deterministic counters
// (events_processed, sink_records, recoveries) must match exactly; wall
// metrics (events_per_sec, sim_wall_ratio, wall_seconds) are checked
// against a relative tolerance in their bad direction and are report-only
// unless --fail_on_wall. Prints a markdown delta table to stdout.
//
// Usage:
//   bench_diff [options] <baseline.json> <current.json>
//     --wall_tolerance <frac>  relative wall-metric tolerance
//                              (default 0.25 = 25%)
//     --fail_on_wall           wall regressions fail the gate too
//     --json_out <file>        write the delta report as JSON
//     --markdown_out <file>    write the markdown table to a file too
//
// Exit code: 0 when the gate passes, 1 when it fails (counter mismatch,
// unmatched cells, or — with --fail_on_wall — a wall regression), 2 on
// usage or parse errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "tools/bench_diff/bench_diff.h"

namespace {

using namespace ppa;

StatusOr<JsonValue> LoadReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFound("cannot read '" + path + "'");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return JsonValue::Parse(contents.str());
}

bool WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  return static_cast<bool>(out);
}

int Run(int argc, char** argv) {
  benchdiff::DiffOptions options;
  std::string json_out, markdown_out;
  std::string baseline_path, current_path;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (std::strcmp(argv[i], "--wall_tolerance") == 0) {
      options.wall_tolerance = std::stod(need_value("--wall_tolerance"));
    } else if (std::strcmp(argv[i], "--fail_on_wall") == 0) {
      options.fail_on_wall = true;
    } else if (std::strcmp(argv[i], "--json_out") == 0) {
      json_out = need_value("--json_out");
    } else if (std::strcmp(argv[i], "--markdown_out") == 0) {
      markdown_out = need_value("--markdown_out");
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = argv[i];
    } else if (current_path.empty()) {
      current_path = argv[i];
    } else {
      std::fprintf(stderr, "too many arguments\n");
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_diff [options] <baseline.json> "
                 "<current.json>\n");
    return 2;
  }

  auto baseline = LoadReport(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }
  auto current = LoadReport(current_path);
  if (!current.ok()) {
    std::fprintf(stderr, "current: %s\n",
                 current.status().ToString().c_str());
    return 2;
  }
  auto diff = benchdiff::DiffBenchReports(*baseline, *current, options);
  if (!diff.ok()) {
    std::fprintf(stderr, "diff: %s\n", diff.status().ToString().c_str());
    return 2;
  }

  const std::string markdown = benchdiff::DiffReportToMarkdown(*diff);
  std::fputs(markdown.c_str(), stdout);
  if (!markdown_out.empty() && !WriteText(markdown_out, markdown)) {
    std::fprintf(stderr, "cannot write %s\n", markdown_out.c_str());
    return 2;
  }
  if (!json_out.empty() &&
      !WriteText(json_out,
                 benchdiff::DiffReportToJson(*diff).Pretty() + "\n")) {
    std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
    return 2;
  }
  return diff->gate_failed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
