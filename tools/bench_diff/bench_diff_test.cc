#include "tools/bench_diff/bench_diff.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace ppa {
namespace benchdiff {
namespace {

/// One benchmark cell in the BENCH_*.json schema.
JsonValue MakeCell(int nodes, int64_t events, int64_t sinks,
                   int64_t recoveries, double events_per_sec = -1.0,
                   double sim_wall_ratio = -1.0,
                   double wall_seconds = -1.0) {
  JsonValue cell = JsonValue::Object();
  cell.Set("nodes", nodes);
  cell.Set("sim_seconds", 30.0);
  cell.Set("events_processed", events);
  cell.Set("sink_records", sinks);
  cell.Set("recoveries", recoveries);
  if (events_per_sec >= 0.0) {
    cell.Set("events_per_sec", events_per_sec);
  }
  if (sim_wall_ratio >= 0.0) {
    cell.Set("sim_wall_ratio", sim_wall_ratio);
  }
  if (wall_seconds >= 0.0) {
    cell.Set("wall_seconds", wall_seconds);
  }
  return cell;
}

JsonValue MakeReport(std::vector<JsonValue> cells,
                     const std::string& commit = "abc") {
  JsonValue report = JsonValue::Object();
  report.Set("schema_version", 1);
  report.Set("suite", "scale_cluster");
  report.Set("commit", commit);
  JsonValue array = JsonValue::Array();
  for (JsonValue& cell : cells) {
    array.Append(std::move(cell));
  }
  report.Set("cells", std::move(array));
  return report;
}

TEST(BenchDiffTest, SelfCompareIsClean) {
  JsonValue report = MakeReport(
      {MakeCell(256, 1000, 100, 2, 5e6, 120.0, 0.5),
       MakeCell(1024, 4000, 400, 2, 4e6, 90.0, 2.0)});
  auto diff = DiffBenchReports(report, report, DiffOptions{});
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_EQ(diff->deterministic_mismatches, 0);
  EXPECT_EQ(diff->wall_regressions, 0);
  EXPECT_TRUE(diff->only_in_baseline.empty());
  EXPECT_TRUE(diff->only_in_current.empty());
  EXPECT_FALSE(diff->gate_failed());
  // 2 cells x (3 counters + 3 wall metrics).
  EXPECT_EQ(diff->deltas.size(), 12u);
}

TEST(BenchDiffTest, CounterChangeFailsGate) {
  JsonValue baseline = MakeReport({MakeCell(256, 1000, 100, 2)});
  JsonValue current = MakeReport({MakeCell(256, 1001, 100, 2)});
  auto diff = DiffBenchReports(baseline, current, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->deterministic_mismatches, 1);
  EXPECT_TRUE(diff->gate_failed());
  bool found = false;
  for (const FieldDelta& delta : diff->deltas) {
    if (delta.field == "events_processed") {
      found = true;
      EXPECT_TRUE(delta.deterministic);
      EXPECT_TRUE(delta.regression);
      EXPECT_DOUBLE_EQ(delta.baseline, 1000.0);
      EXPECT_DOUBLE_EQ(delta.current, 1001.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(BenchDiffTest, MissingCounterOnOneSideIsAMismatch) {
  JsonValue baseline = MakeReport({MakeCell(256, 1000, 100, 2)});
  JsonValue current = MakeReport({MakeCell(256, 1000, 100, 2)});
  // Drop "recoveries" from the current cell by rebuilding it without one.
  JsonValue cell = JsonValue::Object();
  cell.Set("nodes", 256);
  cell.Set("sim_seconds", 30.0);
  cell.Set("events_processed", static_cast<int64_t>(1000));
  cell.Set("sink_records", static_cast<int64_t>(100));
  current = MakeReport({std::move(cell)});
  auto diff = DiffBenchReports(baseline, current, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->deterministic_mismatches, 1);
  EXPECT_TRUE(diff->gate_failed());
}

TEST(BenchDiffTest, UnmatchedCellsFailGate) {
  JsonValue baseline = MakeReport(
      {MakeCell(256, 1000, 100, 2), MakeCell(1024, 4000, 400, 2)});
  JsonValue current = MakeReport(
      {MakeCell(256, 1000, 100, 2), MakeCell(4096, 9000, 900, 2)});
  auto diff = DiffBenchReports(baseline, current, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->only_in_baseline.size(), 1u);
  ASSERT_EQ(diff->only_in_current.size(), 1u);
  EXPECT_NE(diff->only_in_baseline[0].find("nodes=1024"), std::string::npos);
  EXPECT_NE(diff->only_in_current[0].find("nodes=4096"), std::string::npos);
  EXPECT_TRUE(diff->gate_failed());
  EXPECT_EQ(diff->deterministic_mismatches, 0);
}

TEST(BenchDiffTest, WallRegressionIsReportOnlyByDefault) {
  JsonValue baseline = MakeReport({MakeCell(256, 1000, 100, 2, 5e6)});
  JsonValue current = MakeReport({MakeCell(256, 1000, 100, 2, 2e6)});
  auto diff = DiffBenchReports(baseline, current, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->wall_regressions, 1);
  EXPECT_FALSE(diff->gate_failed());

  DiffOptions gating;
  gating.fail_on_wall = true;
  auto gated = DiffBenchReports(baseline, current, gating);
  ASSERT_TRUE(gated.ok());
  EXPECT_TRUE(gated->gate_failed());
}

TEST(BenchDiffTest, WallImprovementAndTolerantChangePass) {
  // +60% throughput (good direction) and wall_seconds -60% (good): no
  // regression no matter how large.
  JsonValue baseline =
      MakeReport({MakeCell(256, 1000, 100, 2, 5e6, 100.0, 1.0)});
  JsonValue faster =
      MakeReport({MakeCell(256, 1000, 100, 2, 8e6, 160.0, 0.4)});
  auto diff = DiffBenchReports(baseline, faster, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->wall_regressions, 0);

  // -10% throughput stays inside the default 25% tolerance.
  JsonValue slightly =
      MakeReport({MakeCell(256, 1000, 100, 2, 4.5e6, 90.0, 1.1)});
  auto small = DiffBenchReports(baseline, slightly, DiffOptions{});
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->wall_regressions, 0);
}

TEST(BenchDiffTest, WallSecondsRisingIsTheBadDirection) {
  JsonValue baseline =
      MakeReport({MakeCell(256, 1000, 100, 2, -1.0, -1.0, 1.0)});
  JsonValue slower =
      MakeReport({MakeCell(256, 1000, 100, 2, -1.0, -1.0, 2.0)});
  auto diff = DiffBenchReports(baseline, slower, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->wall_regressions, 1);
}

TEST(BenchDiffTest, AbsentWallMetricsAreSkipped) {
  // A --no_wall current run against a baseline with wall data: counters
  // still gate, wall rows are simply absent.
  JsonValue baseline =
      MakeReport({MakeCell(256, 1000, 100, 2, 5e6, 100.0, 1.0)});
  JsonValue no_wall = MakeReport({MakeCell(256, 1000, 100, 2)});
  auto diff = DiffBenchReports(baseline, no_wall, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->deltas.size(), 3u);
  EXPECT_EQ(diff->wall_regressions, 0);
  EXPECT_FALSE(diff->gate_failed());
}

TEST(BenchDiffTest, MalformedReportsAreRejected) {
  JsonValue not_a_report = JsonValue::Object();
  JsonValue ok = MakeReport({MakeCell(256, 1000, 100, 2)});
  EXPECT_FALSE(DiffBenchReports(not_a_report, ok, DiffOptions{}).ok());
  EXPECT_FALSE(DiffBenchReports(ok, not_a_report, DiffOptions{}).ok());
  // Duplicate cell keys make the match ambiguous.
  JsonValue dup = MakeReport(
      {MakeCell(256, 1000, 100, 2), MakeCell(256, 999, 100, 2)});
  EXPECT_FALSE(DiffBenchReports(dup, ok, DiffOptions{}).ok());
  EXPECT_FALSE(DiffBenchReports(ok, dup, DiffOptions{}).ok());
}

TEST(BenchDiffTest, MarkdownCarriesVerdictAndMismatchRows) {
  JsonValue baseline = MakeReport({MakeCell(256, 1000, 100, 2)}, "old");
  JsonValue current = MakeReport({MakeCell(256, 1000, 101, 2)}, "new");
  auto diff = DiffBenchReports(baseline, current, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  std::string md = DiffReportToMarkdown(*diff);
  EXPECT_NE(md.find("GATE: FAIL"), std::string::npos);
  EXPECT_NE(md.find("MISMATCH"), std::string::npos);
  EXPECT_NE(md.find("sink_records"), std::string::npos);
  EXPECT_NE(md.find("`old` -> `new`"), std::string::npos);

  auto clean = DiffBenchReports(baseline, baseline, DiffOptions{});
  ASSERT_TRUE(clean.ok());
  EXPECT_NE(DiffReportToMarkdown(*clean).find("GATE: PASS"),
            std::string::npos);
}

TEST(BenchDiffTest, JsonReportRoundTripsThroughTheParser) {
  JsonValue baseline = MakeReport({MakeCell(256, 1000, 100, 2, 5e6)});
  JsonValue current = MakeReport({MakeCell(256, 1001, 100, 2, 2e6)});
  auto diff = DiffBenchReports(baseline, current, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  JsonValue json = DiffReportToJson(*diff);
  auto parsed = JsonValue::Parse(json.Pretty());
  ASSERT_TRUE(parsed.ok());
  const JsonValue* failed = parsed->Find("gate_failed");
  ASSERT_NE(failed, nullptr);
  EXPECT_TRUE(failed->AsBool());
  const JsonValue* deltas = parsed->Find("deltas");
  ASSERT_NE(deltas, nullptr);
  EXPECT_EQ(deltas->size(), 4u);
}

TEST(BenchDiffTest, DeltasAreInBaselineCellThenFieldOrder) {
  JsonValue baseline = MakeReport(
      {MakeCell(1024, 4000, 400, 2), MakeCell(256, 1000, 100, 2)});
  auto diff = DiffBenchReports(baseline, baseline, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->deltas.size(), 6u);
  EXPECT_NE(diff->deltas[0].cell.find("nodes=1024"), std::string::npos);
  EXPECT_EQ(diff->deltas[0].field, "events_processed");
  EXPECT_EQ(diff->deltas[1].field, "sink_records");
  EXPECT_EQ(diff->deltas[2].field, "recoveries");
  EXPECT_NE(diff->deltas[3].cell.find("nodes=256"), std::string::npos);
}

}  // namespace
}  // namespace benchdiff
}  // namespace ppa
