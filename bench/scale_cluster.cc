// Cluster scalability: ONE job spread over 256/1024/4096 nodes with a
// correlated failure-domain drill mid-run — the first scale benchmark of
// the single-job engine (scale_service sweeps tenant count instead). Each
// cell builds a src -> mid -> sink topology sized to the cluster, assigns
// rack-style failure domains of 16 nodes, replicates every 8th mid task
// (kPpa), kills domain 0 at t=10s, and runs to t=30s. Deterministic
// counters (events_processed, sink_records, recoveries) gate the perf
// trajectory via tools/bench_diff; wall metrics track simulator
// throughput and are report-only.
//
// Usage: scale_cluster [--out <file>] [--no_wall] [shared driver flags]
//   --out <file>  where to write the JSON report
//                 (default BENCH_scale_cluster.json)
//   --no_wall     omit wall-clock fields from the report, making the file
//                 byte-identical across machines and --jobs counts (the
//                 CI determinism check compares two such runs)
//
// The shared --backend flag selects the execution substrate: sim
// (default) measures simulator throughput; threads runs the same cells on
// the real worker-pool backend, so events/sec is genuine wall-clock
// dispatch rate. The backend is part of every cell key, keeping the two
// trajectories separate in bench_diff.
//
// Cells run sequentially regardless of --jobs: each cell is wall-timed,
// and concurrent cells would contend and skew each other's clocks.

#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <utility>

#include "backend/execution_backend.h"
#include "bench/driver.h"
#include "common/wall_clock.h"
#include "exp/run_spec.h"
#include "obs/export.h"
#include "report/experiment_report.h"
#include "runtime/streaming_job.h"
#include "topology/serialize.h"

namespace {

using namespace ppa;

constexpr double kSimSeconds = 30.0;
constexpr double kFailureAtSeconds = 10.0;
/// Rack-style failure domains: 16 nodes per domain.
constexpr int kDomainSize = 16;
/// Every 8th mid task gets an active replica.
constexpr int kReplicaStride = 8;

/// src -> mid (one-to-one) -> sink (merge), with `width` src and mid
/// tasks each — the widest topology shape the engine supports without
/// shuffle skew dominating the measurement.
std::string WideSpec(int width) {
  std::string w = std::to_string(width);
  return "operator src " + w + " rate=4\n" +
         "operator mid " + w + "\n" +
         "operator sink 1\n" +
         "edge src mid one-to-one\n" +
         "edge mid sink merge\n";
}

struct Cell {
  int nodes = 0;
  int workers = 0;
  int standby = 0;
  int total_tasks = 0;
  int replicas = 0;
  int domains = 0;
  int64_t events_processed = 0;
  int64_t sink_records = 0;
  int64_t recoveries = 0;
  double wall_seconds = 0.0;
  JsonValue hot_spans;
};

Cell RunCell(int nodes, backend::BackendKind backend_kind,
             af::RecoveryMode recovery_mode) {
  const int workers = nodes * 3 / 4;
  const int width = workers / 2;

  JobConfig config = JobConfig::PpaDefaults();
  config.num_worker_nodes = workers;
  config.num_standby_nodes = nodes - workers;
  config.recovery_mode = recovery_mode;

  auto topo = ParseTopologySpec(WideSpec(width));
  PPA_CHECK_OK(topo.status());

  // The sim/wall ratio is the benchmark output; WallClockSeconds is the
  // allowlisted shim for exactly this meta-level measurement. With
  // --backend=threads the same wall metrics measure the real worker-pool
  // dispatch rate instead of the single-thread simulator.
  const double wall_start = WallClockSeconds();
  std::unique_ptr<backend::ExecutionBackend> be =
      backend::MakeBackend(backend_kind);
  StreamingJob job(*topo, config, JobRuntimeDeps(be.get()));
  PPA_CHECK_OK(exp::BindGenericWorkload(*topo, config, &job));
  for (int node = 0; node < nodes; ++node) {
    PPA_CHECK_OK(job.cluster().AssignDomain(node, node / kDomainSize));
  }
  // kPpa plan: every kReplicaStride-th mid task (operator 1 in spec
  // order) is actively replicated; everything else recovers passively.
  TaskSet plan(topo->num_tasks());
  int mid_index = 0;
  for (TaskId t = 0; t < topo->num_tasks(); ++t) {
    if (topo->task(t).op != 1) {
      continue;
    }
    if (mid_index % kReplicaStride == 0) {
      plan.Add(t);
    }
    ++mid_index;
  }
  PPA_CHECK_OK(job.SetActiveReplicaSet(plan));
  PPA_CHECK_OK(job.Start());

  be->RunUntil(TimePoint::Zero() + Duration::Seconds(kFailureAtSeconds));
  PPA_CHECK_OK(job.InjectDomainFailure(0));
  be->RunUntil(TimePoint::Zero() + Duration::Seconds(kSimSeconds));
  const double wall_end = WallClockSeconds();

  Cell cell;
  cell.nodes = nodes;
  cell.workers = workers;
  cell.standby = nodes - workers;
  cell.total_tasks = topo->num_tasks();
  cell.replicas = plan.size();
  cell.domains = (nodes + kDomainSize - 1) / kDomainSize;
  cell.events_processed = be->events_processed();
  cell.sink_records = static_cast<int64_t>(job.sink_records().size());
  cell.recoveries = static_cast<int64_t>(job.recovery_reports().size());
  cell.wall_seconds = wall_end - wall_start;
  // The hot-path table: where this cell's sim time actually went, ranked
  // by self time (deterministic — sim-time spans, no wall clock).
  cell.hot_spans = obs::HotSpansToJson(job.spans(), nullptr, 5);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppa;

  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);
  std::string out_path = "BENCH_scale_cluster.json";
  bool no_wall = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no_wall") == 0) {
      no_wall = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const int node_counts[] = {256, 1024, 4096};

  std::printf("scale_cluster: %.0fs simulated, domain 0 (%d nodes) fails "
              "at %.0fs\n",
              kSimSeconds, kDomainSize, kFailureAtSeconds);
  std::printf("%8s %8s %8s %10s %12s %12s %10s\n", "nodes", "tasks",
              "replicas", "events", "events/sec", "sim/wall", "wall (s)");

  exp::ProgressMeter* progress =
      driver.StartProgress(static_cast<int>(std::size(node_counts)),
                           "cell");
  JsonValue cells = JsonValue::Array();
  for (int nodes : node_counts) {
    const Cell cell =
        RunCell(nodes, driver.backend_kind(), driver.recovery_mode());
    if (progress != nullptr) {
      progress->Record(false);
    }
    const double events_per_sec =
        cell.wall_seconds > 0
            ? static_cast<double>(cell.events_processed) / cell.wall_seconds
            : 0.0;
    const double sim_wall_ratio =
        cell.wall_seconds > 0 ? kSimSeconds / cell.wall_seconds : 0.0;
    std::printf("%8d %8d %8d %10lld %12.0f %12.1f %10.3f\n", cell.nodes,
                cell.total_tasks, cell.replicas,
                static_cast<long long>(cell.events_processed),
                events_per_sec, sim_wall_ratio, cell.wall_seconds);

    JsonValue entry = JsonValue::Object();
    // Part of the bench_diff cell key: a sim cell and a threads cell are
    // different measurements and must never be diffed against each other;
    // same for exact vs approximate recovery.
    entry.Set("backend", driver.backend_name());
    entry.Set("recovery_mode", driver.recovery_mode_name());
    entry.Set("nodes", cell.nodes);
    entry.Set("workers", cell.workers);
    entry.Set("standby", cell.standby);
    entry.Set("total_tasks", cell.total_tasks);
    entry.Set("replicas", cell.replicas);
    entry.Set("domains", cell.domains);
    entry.Set("sim_seconds", kSimSeconds);
    entry.Set("events_processed", cell.events_processed);
    entry.Set("sink_records", cell.sink_records);
    entry.Set("recoveries", cell.recoveries);
    if (!no_wall) {
      entry.Set("wall_seconds", cell.wall_seconds);
      entry.Set("events_per_sec", events_per_sec);
      entry.Set("sim_wall_ratio", sim_wall_ratio);
    }
    entry.Set("hot_spans", std::move(cell.hot_spans));
    cells.Append(std::move(entry));
  }

  JsonValue report = JsonValue::Object();
  driver.StampBenchReport(&report, "scale_cluster");
  report.Set("benchmark", std::string("scale_cluster"));
  report.Set("sim_seconds", kSimSeconds);
  report.Set("failure_at_seconds", kFailureAtSeconds);
  report.Set("domain_size", kDomainSize);
  report.Set("replica_stride", kReplicaStride);
  report.Set("cells", std::move(cells));
  const Status written = WriteJsonFile(out_path, report);
  if (!written.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("report written to %s\n", out_path.c_str());
  driver.metrics().Add("scale_cluster", std::move(report));
  return driver.Finish("scale_cluster");
}
