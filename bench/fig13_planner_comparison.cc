// Reproduces Figure 13: worst-case OF and measured tentative accuracy of
// the plans produced by the optimal dynamic-programming planner (DP), the
// structure-aware planner (SA), and the structure-agnostic greedy planner,
// on Q1 and Q2. Reduced-parallelism variants of the queries keep the
// exponential DP tractable (Sec. IV-A; the paper likewise skips DP on the
// large random topologies of Fig. 14).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/accuracy_util.h"
#include "bench/bench_util.h"
#include "bench/driver.h"
#include "planner/planner.h"
#include "workloads/incident.h"
#include "workloads/topk.h"

namespace {

using namespace ppa;

JobConfig AccuracyJobConfig() {
  JobConfig config = bench::PaperJobConfig(FtMode::kPpa);
  config.num_worker_nodes = 25;
  config.num_standby_nodes = 25;
  config.checkpoint_interval = Duration::Seconds(10);
  config.recovery.replay_rate_tuples_per_sec = 150.0;
  config.recovery.task_restart_delay = Duration::Seconds(10);
  return config;
}

/// One (consumption, planner) cell. `planned` is false when the planner
/// refused the topology (DP beyond its exponential-search cap) — the
/// table shows n/a for that cell.
struct CellResult {
  bool planned = false;
  double of = -1;
  bench::AccuracyResult accuracy;
};

void RunQuery(const char* title, const char* tag, const Topology& topo,
              const bench::AccuracyExperiment& experiment,
              bench::Driver* driver) {
  const double consumptions[] = {0.2, 0.4, 0.6, 0.8};
  const PlannerKind kinds[] = {PlannerKind::kDynamicProgramming,
                               PlannerKind::kStructureAware,
                               PlannerKind::kGreedy};
  // Cell i: consumption i/3, planner i%3 (DP, SA, Greedy).
  const int cell_count = 12;
  std::vector<StatusOr<CellResult>> results =
      driver->Map<StatusOr<CellResult>>(
          cell_count,
          [&consumptions, &kinds, &topo,
           &experiment](int i) -> StatusOr<CellResult> {
            const double consumption = consumptions[i / 3];
            const int budget =
                static_cast<int>(consumption * topo.num_tasks() + 0.5);
            std::unique_ptr<Planner> planner = CreatePlanner(kinds[i % 3]);
            CellResult cell;
            auto plan = planner->Plan(PlanRequest(topo, budget));
            if (!plan.ok()) {
              return cell;  // DP may exceed its exponential-search cap.
            }
            cell.planned = true;
            cell.of = plan->output_fidelity;
            PPA_ASSIGN_OR_RETURN(
                cell.accuracy,
                bench::MeasureTentativeAccuracy(experiment,
                                                plan->replicated));
            return cell;
          });

  std::printf("%s (%d tasks)\n", title, topo.num_tasks());
  std::printf("%-12s", "consumption");
  for (const char* col : {"DP-OF", "SA-OF", "Greedy-OF", "DP-Acc", "SA-Acc",
                          "Greedy-Acc"}) {
    std::printf(" %10s", col);
  }
  std::printf("\n");

  for (int row = 0; row < 4; ++row) {
    const double consumption = consumptions[row];
    double of[3] = {-1, -1, -1};
    double acc[3] = {-1, -1, -1};
    for (int p = 0; p < 3; ++p) {
      StatusOr<CellResult>& result =
          results[static_cast<size_t>(row * 3 + p)];
      PPA_CHECK_OK(result.status());
      if (!result->planned) {
        continue;
      }
      of[p] = result->of;
      acc[p] = result->accuracy.accuracy;
      char label[64];
      std::snprintf(label, sizeof(label), "%s/%s/c%.1f", tag,
                    std::string(PlannerKindToString(kinds[p])).c_str(),
                    consumption);
      driver->metrics().Add(label, std::move(result->accuracy.metrics));
      driver->traces().Capture(std::move(result->accuracy.chrome_trace));
    }
    std::printf("%-12.1f", consumption);
    for (double v : {of[0], of[1], of[2], acc[0], acc[1], acc[2]}) {
      if (v < 0) {
        std::printf(" %10s", "n/a");
      } else {
        std::printf(" %10.3f", v);
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);

  // ------------------------------------------------------------- Q1 --
  WorldCupSource::Options source;
  source.tuples_per_batch_per_task = 500;
  source.url_population = 1000;
  auto q1 = MakeTopKWorkload(source, /*count_window_batches=*/15, /*k=*/100,
                             TopKParallelism::Reduced());
  PPA_CHECK_OK(q1.status());
  bench::AccuracyExperiment q1_exp;
  q1_exp.make_job = [&q1](backend::ExecutionBackend* be) {
    auto job = std::make_unique<StreamingJob>(q1->topo, AccuracyJobConfig(),
                                              JobRuntimeDeps(be));
    PPA_CHECK_OK(BindTopKWorkload(*q1, job.get()));
    return job;
  };
  q1_exp.accuracy = PerBatchSetAccuracy;
  q1_exp.stale_grace_batches = 16;
  RunQuery("Figure 13(a): Q1 top-100 aggregate query", "q1", q1->topo,
           q1_exp, &driver);

  // ------------------------------------------------------------- Q2 --
  IncidentSchedule::Options schedule_options;
  schedule_options.num_segments = 300;
  schedule_options.num_users = 30000;
  static IncidentSchedule schedule(schedule_options);
  auto q2 = MakeIncidentWorkload(schedule_options,
                                 /*location_rate_per_task=*/1000,
                                 IncidentParallelism::Reduced());
  PPA_CHECK_OK(q2.status());
  bench::AccuracyExperiment q2_exp;
  q2_exp.make_job = [&q2](backend::ExecutionBackend* be) {
    auto job = std::make_unique<StreamingJob>(q2->topo, AccuracyJobConfig(),
                                              JobRuntimeDeps(be));
    PPA_CHECK_OK(BindIncidentWorkload(*q2, &schedule, job.get()));
    return job;
  };
  q2_exp.accuracy = DistinctSetAccuracy;
  q2_exp.stale_grace_batches = 4;
  RunQuery("Figure 13(b): Q2 incident detection query", "q2", q2->topo,
           q2_exp, &driver);

  std::printf(
      "Expected shape (paper): SA tracks the optimal DP closely in both OF "
      "and measured\naccuracy; Greedy is clearly worse, especially at small "
      "budgets where its picks\ndo not form complete MC-trees.\n");
  return driver.Finish("fig13_planner_comparison");
}
