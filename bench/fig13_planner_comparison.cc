// Reproduces Figure 13: worst-case OF and measured tentative accuracy of
// the plans produced by the optimal dynamic-programming planner (DP), the
// structure-aware planner (SA), and the structure-agnostic greedy planner,
// on Q1 and Q2. Reduced-parallelism variants of the queries keep the
// exponential DP tractable (Sec. IV-A; the paper likewise skips DP on the
// large random topologies of Fig. 14).

#include <cstdio>
#include <memory>

#include "bench/accuracy_util.h"
#include "bench/bench_util.h"
#include "planner/dp_planner.h"
#include "planner/greedy_planner.h"
#include "planner/structure_aware_planner.h"
#include "workloads/incident.h"
#include "workloads/topk.h"

namespace {

using namespace ppa;

JobConfig AccuracyJobConfig() {
  JobConfig config = bench::PaperJobConfig(FtMode::kPpa);
  config.num_worker_nodes = 25;
  config.num_standby_nodes = 25;
  config.checkpoint_interval = Duration::Seconds(10);
  config.recovery.replay_rate_tuples_per_sec = 150.0;
  config.recovery.task_restart_delay = Duration::Seconds(10);
  return config;
}

void RunQuery(const char* title, const char* tag, const Topology& topo,
              const bench::AccuracyExperiment& experiment,
              bench::BenchMetricsSink* sink,
              bench::ChromeTraceSink* traces) {
  std::printf("%s (%d tasks)\n", title, topo.num_tasks());
  std::printf("%-12s", "consumption");
  for (const char* col : {"DP-OF", "SA-OF", "Greedy-OF", "DP-Acc", "SA-Acc",
                          "Greedy-Acc"}) {
    std::printf(" %10s", col);
  }
  std::printf("\n");

  DpPlanner dp;
  StructureAwarePlanner sa;
  GreedyPlanner greedy;
  Planner* planners[] = {&dp, &sa, &greedy};
  for (double consumption : {0.2, 0.4, 0.6, 0.8}) {
    const int budget =
        static_cast<int>(consumption * topo.num_tasks() + 0.5);
    double of[3] = {-1, -1, -1};
    double acc[3] = {-1, -1, -1};
    for (int p = 0; p < 3; ++p) {
      auto plan = planners[p]->Plan(topo, budget);
      if (!plan.ok()) {
        continue;  // DP may exceed its exponential-search cap.
      }
      of[p] = plan->output_fidelity;
      static const char* kPlannerNames[] = {"dp", "sa", "greedy"};
      char label[64];
      std::snprintf(label, sizeof(label), "%s/%s/c%.1f", tag,
                    kPlannerNames[p], consumption);
      auto accuracy = bench::MeasureTentativeAccuracy(
          experiment, plan->replicated, sink, label, traces);
      PPA_CHECK_OK(accuracy.status());
      acc[p] = *accuracy;
    }
    std::printf("%-12.1f", consumption);
    for (double v : {of[0], of[1], of[2], acc[0], acc[1], acc[2]}) {
      if (v < 0) {
        std::printf(" %10s", "n/a");
      } else {
        std::printf(" %10.3f", v);
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMetricsSink sink =
      bench::BenchMetricsSink::FromArgs(argc, argv);
  bench::ChromeTraceSink traces =
      bench::ChromeTraceSink::FromArgs(argc, argv);

  // ------------------------------------------------------------- Q1 --
  WorldCupSource::Options source;
  source.tuples_per_batch_per_task = 500;
  source.url_population = 1000;
  auto q1 = MakeTopKWorkload(source, /*count_window_batches=*/15, /*k=*/100,
                             TopKParallelism::Reduced());
  PPA_CHECK_OK(q1.status());
  bench::AccuracyExperiment q1_exp;
  q1_exp.make_job = [&q1](EventLoop* loop) {
    auto job = std::make_unique<StreamingJob>(q1->topo, AccuracyJobConfig(),
                                              loop);
    PPA_CHECK_OK(BindTopKWorkload(*q1, job.get()));
    return job;
  };
  q1_exp.accuracy = PerBatchSetAccuracy;
  q1_exp.stale_grace_batches = 16;
  RunQuery("Figure 13(a): Q1 top-100 aggregate query", "q1", q1->topo,
           q1_exp, &sink, &traces);

  // ------------------------------------------------------------- Q2 --
  IncidentSchedule::Options schedule_options;
  schedule_options.num_segments = 300;
  schedule_options.num_users = 30000;
  static IncidentSchedule schedule(schedule_options);
  auto q2 = MakeIncidentWorkload(schedule_options,
                                 /*location_rate_per_task=*/1000,
                                 IncidentParallelism::Reduced());
  PPA_CHECK_OK(q2.status());
  bench::AccuracyExperiment q2_exp;
  q2_exp.make_job = [&q2](EventLoop* loop) {
    auto job = std::make_unique<StreamingJob>(q2->topo, AccuracyJobConfig(),
                                              loop);
    PPA_CHECK_OK(BindIncidentWorkload(*q2, &schedule, job.get()));
    return job;
  };
  q2_exp.accuracy = DistinctSetAccuracy;
  q2_exp.stale_grace_batches = 4;
  RunQuery("Figure 13(b): Q2 incident detection query", "q2", q2->topo,
           q2_exp, &sink, &traces);

  std::printf(
      "Expected shape (paper): SA tracks the optimal DP closely in both OF "
      "and measured\naccuracy; Greedy is clearly worse, especially at small "
      "budgets where its picks\ndo not form complete MC-trees.\n");
  sink.Write("fig13_planner_comparison");
  traces.Write();
  return 0;
}
