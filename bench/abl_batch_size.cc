// Ablation A3: effect of the batch interval on recovery latency and
// checkpoint cost. The paper adopts batch processing for deterministic
// replay (Sec. V-B, citing Das et al. for batch sizing); this ablation
// shows the trade-off our engine inherits: shorter batches detect and
// bound loss at finer granularity but do not change replay volume, while
// the checkpoint-cost ratio is insensitive to batching.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/driver.h"

namespace {

using namespace ppa;

struct CellResult {
  double recovery_seconds = 0.0;
  double cpu_ratio = 0.0;
  JsonValue metrics;
  JsonValue chrome_trace;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);

  const double batch_intervals[] = {0.25, 0.5, 1.0, 2.0};
  const bool want_obs =
      driver.metrics().enabled() || driver.traces().enabled();
  std::vector<CellResult> results = driver.Map<CellResult>(
      static_cast<int>(std::size(batch_intervals)),
      [&batch_intervals, want_obs](int i) {
        const double batch_seconds = batch_intervals[i];
        // A single-node failure on the Fig. 6 workload, checkpoint mode.
        auto workload = MakeSyntheticRecoveryWorkload(
            /*rate_per_source_task=*/1000.0,
            /*window_batches=*/static_cast<int64_t>(10.0 / batch_seconds));
        PPA_CHECK_OK(workload.status());
        auto be = backend::MakeBackend(backend::BackendKind::kSim);
        JobConfig config = bench::PaperJobConfig(FtMode::kCheckpoint);
        config.batch_interval = Duration::Seconds(batch_seconds);
        config.checkpoint_interval = Duration::Seconds(15);
        StreamingJob job(workload->topo, config, JobRuntimeDeps(be.get()));
        PPA_CHECK_OK(BindSyntheticRecoveryWorkload(*workload, &job));
        auto nodes = PlaceSyntheticRecoveryWorkload(*workload, &job);
        PPA_CHECK_OK(nodes.status());
        PPA_CHECK_OK(job.Start());
        be->RunUntil(TimePoint::Zero() + Duration::Seconds(40.4));
        PPA_CHECK_OK(job.InjectNodeFailure((*nodes)[4]));
        be->RunUntil(TimePoint::Zero() + Duration::Seconds(70));
        PPA_CHECK(job.recovery_reports().size() == 1);
        CellResult cell;
        cell.recovery_seconds =
            job.recovery_reports()[0].TotalLatency().seconds();
        double ratio = 0;
        int counted = 0;
        for (OperatorId op :
             {workload->o1, workload->o2, workload->o3, workload->o4}) {
          for (TaskId t : workload->topo.op(op).tasks) {
            if (job.ProcessingCostUs(t) > 0) {
              ratio += job.CheckpointCostUs(t) / job.ProcessingCostUs(t);
              ++counted;
            }
          }
        }
        cell.cpu_ratio = counted > 0 ? ratio / counted : 0.0;
        if (want_obs) {
          cell.metrics = obs::MetricsToJson(job.metrics());
          cell.chrome_trace = bench::JobChromeTrace(job);
        }
        return cell;
      });

  std::printf(
      "Ablation A3: batch interval vs recovery latency / checkpoint cost\n");
  std::printf("%-16s %16s %16s\n", "batch interval", "recovery (s)",
              "cp CPU ratio");
  for (size_t i = 0; i < std::size(batch_intervals); ++i) {
    CellResult& cell = results[i];
    std::printf("%-16.2f %16.2f %16.3f\n", batch_intervals[i],
                cell.recovery_seconds, cell.cpu_ratio);
    char label[64];
    std::snprintf(label, sizeof(label), "batch%.2fs", batch_intervals[i]);
    driver.metrics().Add(label, std::move(cell.metrics));
    driver.traces().Capture(std::move(cell.chrome_trace));
  }
  std::printf(
      "\nExpected: replay volume (and hence latency) is set by the "
      "checkpoint age, not\nthe batch size; the ratio column stays nearly "
      "flat.\n");
  return driver.Finish("abl_batch_size");
}
