// Reproduces Figure 9: CPU cost of maintaining checkpoints relative to
// normal processing, as a function of the checkpoint interval (1/5/15/30 s)
// at 1000 and 2000 tuples/s per source task, window length 30 s.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace ppa;
  using bench::Fig6Options;
  using bench::RunFig6;

  bench::BenchMetricsSink sink =
      bench::BenchMetricsSink::FromArgs(argc, argv);
  bench::ChromeTraceSink traces =
      bench::ChromeTraceSink::FromArgs(argc, argv);

  std::printf(
      "Figure 9: checkpoint CPU / processing CPU ratio, window 30 s\n");
  std::printf("%-20s %16s %16s\n", "checkpoint interval", "1000 tuples/s",
              "2000 tuples/s");
  for (int interval : {1, 5, 15, 30}) {
    std::printf("%-20d", interval);
    for (double rate : {1000.0, 2000.0}) {
      Fig6Options options;
      options.mode = FtMode::kCheckpoint;
      options.rate_per_task = rate;
      options.window_batches = 30;
      options.checkpoint_interval = Duration::Seconds(interval);
      options.inject_failure = false;
      options.run_for_seconds = 90.0;
      auto result = RunFig6(options);
      if (!result.ok()) {
        std::printf(" %16s", result.status().ToString().c_str());
      } else {
        std::printf(" %16.3f", result->checkpoint_cpu_ratio);
        char label[64];
        std::snprintf(label, sizeof(label), "cp%ds/r%.0f", interval, rate);
        sink.Add(label, std::move(result->metrics));
        traces.Capture(std::move(result->chrome_trace));
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): the ratio rises sharply as the interval "
      "shrinks;\n1-second checkpoints are prohibitively expensive.\n");
  sink.Write("fig09_checkpoint_cost");
  traces.Write();
  return 0;
}
