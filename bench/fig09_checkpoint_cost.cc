// Reproduces Figure 9: CPU cost of maintaining checkpoints relative to
// normal processing, as a function of the checkpoint interval (1/5/15/30 s)
// at 1000 and 2000 tuples/s per source task, window length 30 s.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/driver.h"

int main(int argc, char** argv) {
  using namespace ppa;
  using bench::Fig6Options;
  using bench::Fig6Result;
  using bench::RunFig6;

  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);

  struct Cell {
    int interval;
    double rate;
  };
  std::vector<Cell> cells;
  for (int interval : {1, 5, 15, 30}) {
    for (double rate : {1000.0, 2000.0}) {
      cells.push_back(Cell{interval, rate});
    }
  }

  std::vector<StatusOr<Fig6Result>> results =
      driver.Map<StatusOr<Fig6Result>>(
          static_cast<int>(cells.size()), [&cells](int i) {
            const Cell& cell = cells[static_cast<size_t>(i)];
            Fig6Options options;
            options.mode = FtMode::kCheckpoint;
            options.rate_per_task = cell.rate;
            options.window_batches = 30;
            options.checkpoint_interval = Duration::Seconds(cell.interval);
            options.inject_failure = false;
            options.run_for_seconds = 90.0;
            return RunFig6(options);
          });

  std::printf(
      "Figure 9: checkpoint CPU / processing CPU ratio, window 30 s\n");
  std::printf("%-20s %16s %16s\n", "checkpoint interval", "1000 tuples/s",
              "2000 tuples/s");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    if (i % 2 == 0) {
      std::printf("%-20d", cell.interval);
    }
    StatusOr<Fig6Result>& result = results[i];
    if (!result.ok()) {
      std::printf(" %16s", result.status().ToString().c_str());
    } else {
      std::printf(" %16.3f", result->checkpoint_cpu_ratio);
      char label[64];
      std::snprintf(label, sizeof(label), "cp%ds/r%.0f", cell.interval,
                    cell.rate);
      driver.metrics().Add(label, std::move(result->metrics));
      driver.traces().Capture(std::move(result->chrome_trace));
    }
    if (i % 2 == 1) {
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected shape (paper): the ratio rises sharply as the interval "
      "shrinks;\n1-second checkpoints are prohibitively expensive.\n");
  return driver.Finish("fig09_checkpoint_cost");
}
