// Ablation A4: independent vs correlated failure models. The paper's
// motivation (Sec. I) is that planning tuned for independent single-node
// failures breaks down under correlated failures. This bench makes that
// concrete: two planners — the expected-fidelity planner (optimal for
// independent single failures) and the structure-aware planner (built for
// the correlated worst case) — evaluated under *both* objectives on 100
// random topologies.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/driver.h"
#include "common/random.h"
#include "fidelity/expected.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "planner/expected_fidelity_planner.h"
#include "planner/structure_aware_planner.h"
#include "topology/random_topology.h"

namespace {

using namespace ppa;

struct CellResult {
  double e_indep = 0.0;
  double e_sa = 0.0;
  double w_indep = 0.0;
  double w_sa = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ppa;

  // Planner-only bench: accepts --chrome_trace_out for tooling uniformity
  // and writes an empty (but valid) trace.
  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);
  const uint64_t seed = driver.seed_or(4242);

  RandomTopologyOptions opts;
  opts.min_operators = 5;
  opts.max_operators = 10;
  opts.min_parallelism = 1;
  opts.max_parallelism = 6;
  opts.join_fraction = 0.3;

  const double consumptions[] = {0.1, 0.2, 0.4, 0.6};
  const int kTrials = 100;
  // Cell i: consumption i / kTrials, trial i % kTrials. Trial t always
  // plans the same topology (seed DeriveSeed(seed, t)) at every
  // consumption level, mirroring the original per-consumption RNG reset.
  std::vector<CellResult> results = driver.Map<CellResult>(
      static_cast<int>(std::size(consumptions)) * kTrials,
      [&opts, &consumptions, seed](int i) {
        const double consumption = consumptions[i / kTrials];
        const int trial = i % kTrials;
        Rng rng(DeriveSeed(seed, static_cast<uint64_t>(trial)));
        auto topo = GenerateRandomTopology(opts, &rng);
        PPA_CHECK_OK(topo.status());
        const int budget =
            static_cast<int>(consumption * topo->num_tasks() + 0.5);
        // One failure expected per window, uniformly spread over tasks.
        std::vector<double> p(static_cast<size_t>(topo->num_tasks()),
                              0.9 / topo->num_tasks());
        ExpectedFidelityPlanner indep(p);
        StructureAwarePlanner sa;
        auto indep_plan = indep.Plan(PlanRequest(*topo, budget));
        auto sa_plan = sa.Plan(PlanRequest(*topo, budget));
        PPA_CHECK_OK(indep_plan.status());
        PPA_CHECK_OK(sa_plan.status());
        auto indep_expected =
            ExpectedFidelitySingleFailure(*topo, indep_plan->replicated, p);
        auto sa_expected =
            ExpectedFidelitySingleFailure(*topo, sa_plan->replicated, p);
        PPA_CHECK_OK(indep_expected.status());
        PPA_CHECK_OK(sa_expected.status());
        CellResult cell;
        cell.e_indep = *indep_expected;
        cell.e_sa = *sa_expected;
        cell.w_indep = indep_plan->output_fidelity;
        cell.w_sa = sa_plan->output_fidelity;
        return cell;
      });

  obs::MetricsRegistry registry;
  obs::Histogram* h_e_indep =
      driver.metrics().enabled()
          ? registry.histogram("planner.expected_of_indep")
          : nullptr;
  obs::Histogram* h_e_sa =
      driver.metrics().enabled()
          ? registry.histogram("planner.expected_of_sa")
          : nullptr;
  obs::Histogram* h_w_indep =
      driver.metrics().enabled()
          ? registry.histogram("planner.worst_of_indep")
          : nullptr;
  obs::Histogram* h_w_sa =
      driver.metrics().enabled()
          ? registry.histogram("planner.worst_of_sa")
          : nullptr;

  std::printf(
      "Ablation A4: planning for the wrong failure model (means over 100 "
      "random topologies)\n\n");
  std::printf("%-12s %14s %14s %14s %14s\n", "consumption", "E[OF]-indep",
              "E[OF]-SA", "worstOF-indep", "worstOF-SA");
  for (size_t c = 0; c < std::size(consumptions); ++c) {
    double e_indep = 0, e_sa = 0, w_indep = 0, w_sa = 0;
    for (int t = 0; t < kTrials; ++t) {
      const CellResult& cell =
          results[c * static_cast<size_t>(kTrials) +
                  static_cast<size_t>(t)];
      e_indep += cell.e_indep;
      e_sa += cell.e_sa;
      w_indep += cell.w_indep;
      w_sa += cell.w_sa;
      obs::Observe(h_e_indep, cell.e_indep);
      obs::Observe(h_e_sa, cell.e_sa);
      obs::Observe(h_w_indep, cell.w_indep);
      obs::Observe(h_w_sa, cell.w_sa);
    }
    std::printf("%-12.1f %14.3f %14.3f %14.3f %14.3f\n", consumptions[c],
                e_indep / kTrials, e_sa / kTrials, w_indep / kTrials,
                w_sa / kTrials);
  }
  std::printf(
      "\nExpected: under the independent objective (E[OF]) both planners "
      "are close —\nsingle failures are forgiving. Under the correlated "
      "worst case (worstOF) the\nindependent-optimal plan collapses while "
      "SA's structure-aware trees survive:\nthe reason PPA plans for "
      "correlated failures explicitly.\n");
  driver.metrics().Add("a4", obs::MetricsToJson(registry));
  return driver.Finish("abl_failure_models");
}
