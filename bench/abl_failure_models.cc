// Ablation A4: independent vs correlated failure models. The paper's
// motivation (Sec. I) is that planning tuned for independent single-node
// failures breaks down under correlated failures. This bench makes that
// concrete: two planners — the expected-fidelity planner (optimal for
// independent single failures) and the structure-aware planner (built for
// the correlated worst case) — evaluated under *both* objectives on 100
// random topologies.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "fidelity/expected.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "planner/expected_fidelity_planner.h"
#include "planner/structure_aware_planner.h"
#include "topology/random_topology.h"

int main(int argc, char** argv) {
  using namespace ppa;

  bench::BenchMetricsSink sink =
      bench::BenchMetricsSink::FromArgs(argc, argv);
  // Planner-only bench: accepts --chrome_trace_out for tooling uniformity
  // and writes an empty (but valid) trace.
  bench::ChromeTraceSink traces =
      bench::ChromeTraceSink::FromArgs(argc, argv);
  obs::MetricsRegistry registry;
  obs::Histogram* h_e_indep =
      sink.enabled() ? registry.histogram("planner.expected_of_indep")
                     : nullptr;
  obs::Histogram* h_e_sa =
      sink.enabled() ? registry.histogram("planner.expected_of_sa") : nullptr;
  obs::Histogram* h_w_indep =
      sink.enabled() ? registry.histogram("planner.worst_of_indep") : nullptr;
  obs::Histogram* h_w_sa =
      sink.enabled() ? registry.histogram("planner.worst_of_sa") : nullptr;

  std::printf(
      "Ablation A4: planning for the wrong failure model (means over 100 "
      "random topologies)\n\n");
  std::printf("%-12s %14s %14s %14s %14s\n", "consumption", "E[OF]-indep",
              "E[OF]-SA", "worstOF-indep", "worstOF-SA");

  RandomTopologyOptions opts;
  opts.min_operators = 5;
  opts.max_operators = 10;
  opts.min_parallelism = 1;
  opts.max_parallelism = 6;
  opts.join_fraction = 0.3;

  for (double consumption : {0.1, 0.2, 0.4, 0.6}) {
    Rng rng(4242);
    double e_indep = 0, e_sa = 0, w_indep = 0, w_sa = 0;
    const int kTrials = 100;
    for (int i = 0; i < kTrials; ++i) {
      auto topo = GenerateRandomTopology(opts, &rng);
      PPA_CHECK_OK(topo.status());
      const int budget =
          static_cast<int>(consumption * topo->num_tasks() + 0.5);
      // One failure expected per window, uniformly spread over tasks.
      std::vector<double> p(static_cast<size_t>(topo->num_tasks()),
                            0.9 / topo->num_tasks());
      ExpectedFidelityPlanner indep(p);
      StructureAwarePlanner sa;
      auto indep_plan = indep.Plan(*topo, budget);
      auto sa_plan = sa.Plan(*topo, budget);
      PPA_CHECK_OK(indep_plan.status());
      PPA_CHECK_OK(sa_plan.status());
      auto indep_expected =
          ExpectedFidelitySingleFailure(*topo, indep_plan->replicated, p);
      auto sa_expected =
          ExpectedFidelitySingleFailure(*topo, sa_plan->replicated, p);
      PPA_CHECK_OK(indep_expected.status());
      PPA_CHECK_OK(sa_expected.status());
      e_indep += *indep_expected;
      e_sa += *sa_expected;
      w_indep += indep_plan->output_fidelity;
      w_sa += sa_plan->output_fidelity;
      obs::Observe(h_e_indep, *indep_expected);
      obs::Observe(h_e_sa, *sa_expected);
      obs::Observe(h_w_indep, indep_plan->output_fidelity);
      obs::Observe(h_w_sa, sa_plan->output_fidelity);
    }
    std::printf("%-12.1f %14.3f %14.3f %14.3f %14.3f\n", consumption,
                e_indep / kTrials, e_sa / kTrials, w_indep / kTrials,
                w_sa / kTrials);
  }
  std::printf(
      "\nExpected: under the independent objective (E[OF]) both planners "
      "are close —\nsingle failures are forgiving. Under the correlated "
      "worst case (worstOF) the\nindependent-optimal plan collapses while "
      "SA's structure-aware trees survive:\nthe reason PPA plans for "
      "correlated failures explicitly.\n");
  sink.Add("a4", obs::MetricsToJson(registry));
  sink.Write("abl_failure_models");
  traces.Write();
  return 0;
}
