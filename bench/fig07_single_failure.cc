// Reproduces Figure 7: recovery latency of a single-node failure on the
// Fig. 6 synthetic workload, comparing active replication (5 s / 30 s
// replica sync), checkpointing (5 / 15 / 30 s intervals), and Storm-style
// source replay, across window intervals (10 s / 30 s) and source rates
// (1000 / 2000 tuples/s per source task).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/driver.h"

int main(int argc, char** argv) {
  using namespace ppa;
  using bench::Fig6Options;
  using bench::Fig6Result;
  using bench::RunFig6;

  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);

  struct Technique {
    const char* label;
    FtMode mode;
    Duration checkpoint_interval;
    Duration sync_interval;
  };
  const Technique techniques[] = {
      {"Active-5s", FtMode::kActiveReplication, Duration::Seconds(15),
       Duration::Seconds(5)},
      {"Active-30s", FtMode::kActiveReplication, Duration::Seconds(15),
       Duration::Seconds(30)},
      {"Checkpoint-5s", FtMode::kCheckpoint, Duration::Seconds(5),
       Duration::Seconds(5)},
      {"Checkpoint-15s", FtMode::kCheckpoint, Duration::Seconds(15),
       Duration::Seconds(5)},
      {"Checkpoint-30s", FtMode::kCheckpoint, Duration::Seconds(30),
       Duration::Seconds(5)},
      {"Storm", FtMode::kSourceReplay, Duration::Seconds(15),
       Duration::Seconds(5)},
  };

  struct Cell {
    const Technique* tech;
    int64_t window;
    double rate;
  };
  std::vector<Cell> cells;
  for (const Technique& tech : techniques) {
    for (int64_t window : {10, 30}) {
      for (double rate : {1000.0, 2000.0}) {
        cells.push_back(Cell{&tech, window, rate});
      }
    }
  }

  std::vector<StatusOr<Fig6Result>> results =
      driver.Map<StatusOr<Fig6Result>>(
          static_cast<int>(cells.size()), [&cells](int i) {
            const Cell& cell = cells[static_cast<size_t>(i)];
            Fig6Options options;
            options.mode = cell.tech->mode;
            options.rate_per_task = cell.rate;
            options.window_batches = cell.window;
            options.checkpoint_interval = cell.tech->checkpoint_interval;
            options.replica_sync_interval = cell.tech->sync_interval;
            options.correlated = false;
            return RunFig6(options);
          });

  std::printf("Figure 7: recovery latency of single node failure (seconds)\n");
  std::printf("%-15s %14s %14s %14s %14s\n", "technique", "win10,r1000",
              "win10,r2000", "win30,r1000", "win30,r2000");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    if (i % 4 == 0) {
      std::printf("%-15s", cell.tech->label);
    }
    StatusOr<Fig6Result>& result = results[i];
    if (!result.ok()) {
      std::printf(" %14s", result.status().ToString().c_str());
    } else {
      std::printf(" %14.2f", result->total_latency.seconds());
      char label[64];
      std::snprintf(label, sizeof(label), "%s/win%lld/r%.0f",
                    cell.tech->label, static_cast<long long>(cell.window),
                    cell.rate);
      driver.metrics().Add(label, std::move(result->metrics));
      driver.traces().Capture(std::move(result->chrome_trace));
    }
    if (i % 4 == 3) {
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected shape (paper): active << checkpoint; checkpoint latency "
      "grows with\ninterval and rate; Storm grows with window and rate and "
      "is the worst at 30s windows.\n");
  return driver.Finish("fig07_single_failure");
}
