// Reproduces Figure 12: does the Output Fidelity metric predict the actual
// quality of tentative outputs better than the Internal Completeness
// baseline? For each resource budget, the structure-aware planner
// optimizes once for OF and once for IC (by planning on a
// correlation-blind copy of the topology); the table reports the metric
// values and the measured tentative accuracy of both plans on Q1 (top-100
// over the WorldCup-style log) and Q2 (incident-detection join).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/accuracy_util.h"
#include "bench/bench_util.h"
#include "bench/driver.h"
#include "fidelity/metrics.h"
#include "planner/structure_aware_planner.h"
#include "workloads/incident.h"
#include "workloads/topk.h"

namespace {

using namespace ppa;

JobConfig AccuracyJobConfig() {
  JobConfig config = bench::PaperJobConfig(FtMode::kPpa);
  config.num_worker_nodes = 25;
  config.num_standby_nodes = 25;
  config.checkpoint_interval = Duration::Seconds(10);
  // Slow passive recovery: the tentative phase must span the whole
  // measurement window.
  config.recovery.replay_rate_tuples_per_sec = 150.0;
  config.recovery.task_restart_delay = Duration::Seconds(10);
  return config;
}

/// One (consumption, metric) cell: the planned metric value and the
/// measured tentative accuracy of the resulting plan.
struct CellResult {
  double metric_value = 0.0;
  bench::AccuracyResult accuracy;
};

void RunQuery(const char* title, const char* tag, const Topology& topo,
              const bench::AccuracyExperiment& experiment,
              bench::Driver* driver) {
  const double consumptions[] = {0.2, 0.4, 0.6, 0.8};
  // Cell i: consumption i/2; even = OF-optimized, odd = IC-optimized.
  const int cell_count = 8;
  std::vector<StatusOr<CellResult>> results =
      driver->Map<StatusOr<CellResult>>(
          cell_count,
          [&consumptions, &topo,
           &experiment](int i) -> StatusOr<CellResult> {
            const double consumption = consumptions[i / 2];
            const bool use_ic = (i % 2) == 1;
            const int budget =
                static_cast<int>(consumption * topo.num_tasks() + 0.5);
            StructureAwareOptions options;
            if (use_ic) {
              options.metric = LossModel::kInternalCompleteness;
            }
            StructureAwarePlanner planner(options);
            PPA_ASSIGN_OR_RETURN(ReplicationPlan plan,
                                 planner.Plan(PlanRequest(topo, budget)));
            CellResult cell;
            cell.metric_value =
                use_ic ? PlanInternalCompleteness(topo, plan.replicated)
                       : PlanOutputFidelity(topo, plan.replicated);
            PPA_ASSIGN_OR_RETURN(
                cell.accuracy,
                bench::MeasureTentativeAccuracy(experiment,
                                                plan.replicated));
            return cell;
          });

  std::printf("%s\n", title);
  std::printf("%-12s %8s %14s %8s %14s\n", "consumption", "OF",
              "OF-SA-Accuracy", "IC", "IC-SA-Accuracy");
  for (int i = 0; i < cell_count; i += 2) {
    const double consumption = consumptions[i / 2];
    PPA_CHECK_OK(results[static_cast<size_t>(i)].status());
    PPA_CHECK_OK(results[static_cast<size_t>(i + 1)].status());
    CellResult& of_cell = *results[static_cast<size_t>(i)];
    CellResult& ic_cell = *results[static_cast<size_t>(i + 1)];
    char of_label[64];
    std::snprintf(of_label, sizeof(of_label), "%s/of/c%.1f", tag,
                  consumption);
    char ic_label[64];
    std::snprintf(ic_label, sizeof(ic_label), "%s/ic/c%.1f", tag,
                  consumption);
    driver->metrics().Add(of_label, std::move(of_cell.accuracy.metrics));
    driver->traces().Capture(std::move(of_cell.accuracy.chrome_trace));
    driver->metrics().Add(ic_label, std::move(ic_cell.accuracy.metrics));
    driver->traces().Capture(std::move(ic_cell.accuracy.chrome_trace));
    std::printf("%-12.1f %8.3f %14.3f %8.3f %14.3f\n", consumption,
                of_cell.metric_value, of_cell.accuracy.accuracy,
                ic_cell.metric_value, ic_cell.accuracy.accuracy);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);

  // ------------------------------------------------------------- Q1 --
  WorldCupSource::Options source;
  source.tuples_per_batch_per_task = 500;
  source.url_population = 1000;
  auto q1 = MakeTopKWorkload(source, /*count_window_batches=*/15, /*k=*/100);
  PPA_CHECK_OK(q1.status());
  bench::AccuracyExperiment q1_exp;
  q1_exp.make_job = [&q1](backend::ExecutionBackend* be) {
    auto job = std::make_unique<StreamingJob>(q1->topo, AccuracyJobConfig(),
                                              JobRuntimeDeps(be));
    PPA_CHECK_OK(BindTopKWorkload(*q1, job.get()));
    return job;
  };
  q1_exp.accuracy = PerBatchSetAccuracy;
  q1_exp.stale_grace_batches = 16;  // Top-k freshness window + 1.
  RunQuery("Figure 12(a): Q1 top-100 aggregate query", "q1", q1->topo,
           q1_exp, &driver);

  // ------------------------------------------------------------- Q2 --
  IncidentSchedule::Options schedule_options;
  schedule_options.num_segments = 300;
  schedule_options.num_users = 30000;
  static IncidentSchedule schedule(schedule_options);
  auto q2 = MakeIncidentWorkload(schedule_options,
                                 /*location_rate_per_task=*/1000);
  PPA_CHECK_OK(q2.status());
  bench::AccuracyExperiment q2_exp;
  q2_exp.make_job = [&q2](backend::ExecutionBackend* be) {
    auto job = std::make_unique<StreamingJob>(q2->topo, AccuracyJobConfig(),
                                              JobRuntimeDeps(be));
    PPA_CHECK_OK(BindIncidentWorkload(*q2, &schedule, job.get()));
    return job;
  };
  q2_exp.accuracy = DistinctSetAccuracy;
  q2_exp.stale_grace_batches = 4;  // Join speed-freshness window + 1.
  RunQuery("Figure 12(b): Q2 incident detection query", "q2", q2->topo,
           q2_exp, &driver);

  std::printf(
      "Expected shape (paper): on Q1 both metrics predict accuracy "
      "reasonably; on Q2\nIC keeps rising with budget while the measured "
      "accuracy of IC-optimized plans\nstalls - IC ignores the join's "
      "stream correlation, OF does not.\n");
  return driver.Finish("fig12_metric_validation");
}
