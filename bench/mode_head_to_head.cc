// Recovery-mode head-to-head: exact PPA vs bounded-error approximate
// fault tolerance (src/af) vs the hybrid of both, on the Fig. 6 synthetic
// recovery workload under the Fig. 7 single-node and Fig. 8 correlated
// failure drills. Each cell runs the same topology, placement, failure
// time, and rate; only the recovery mode differs:
//   ppa     FtMode::kPpa with the structure-aware half-budget plan and
//           exact checkpoints everywhere (the paper's configuration).
//   approx  FtMode::kCheckpoint with RecoveryMode::kApprox: every task
//           may thin checkpoints within the error budget and recover by
//           fast-forwarding over the certified gap.
//   hybrid  FtMode::kPpa + RecoveryMode::kHybrid: the planner-selected
//           half stays exact behind active replicas; the rest thins.
// Deterministic counters (events_processed, sink_records, recoveries,
// checkpoint_bytes, checkpoints_skipped) gate the perf trajectory via
// tools/bench_diff; recovery latency, fidelity floor, and certificate
// stats are report-only context.
//
// Usage: mode_head_to_head [--out <file>] [--no_wall] [driver flags]
//   --out <file>  where to write the JSON report
//                 (default BENCH_mode_head_to_head.json)
//   --no_wall     omit wall-clock fields, making the report byte-identical
//                 across machines and --jobs counts (the CI determinism
//                 check compares two such runs)
//
// The binary self-checks the headline claim: on every correlated-drill
// rate, approx must persist strictly fewer checkpoint bytes than ppa
// (exit 1 otherwise) — thinning that saves nothing is a bug, not a mode.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "af/error_budget.h"
#include "backend/execution_backend.h"
#include "bench/driver.h"
#include "common/wall_clock.h"
#include "planner/structure_aware_planner.h"
#include "report/experiment_report.h"
#include "runtime/streaming_job.h"
#include "workloads/synthetic_recovery.h"

namespace {

using namespace ppa;

constexpr double kFailAtSeconds = 40.0;
constexpr double kRunForSeconds = 70.0;
constexpr int64_t kWindowBatches = 10;

struct ModeRow {
  const char* label;
  FtMode ft_mode;
  af::RecoveryMode recovery_mode;
};

constexpr ModeRow kModes[] = {
    {"ppa", FtMode::kPpa, af::RecoveryMode::kPpa},
    {"approx", FtMode::kCheckpoint, af::RecoveryMode::kApprox},
    {"hybrid", FtMode::kPpa, af::RecoveryMode::kHybrid},
};

struct CellSpec {
  const ModeRow* mode = nullptr;
  bool correlated = false;
  double rate = 1000.0;
};

struct CellResult {
  int64_t events_processed = 0;
  int64_t sink_records = 0;
  int64_t recoveries = 0;
  int64_t checkpoint_bytes = 0;
  int64_t checkpoints_skipped = 0;
  int64_t approx_recoveries = 0;
  int64_t forfeited_records = 0;
  double max_certified_loss = 0.0;
  double recovery_latency_s = 0.0;
  double min_output_fidelity = 1.0;
  double wall_seconds = 0.0;
  std::string error;
};

CellResult RunCell(const CellSpec& spec, backend::BackendKind backend_kind) {
  CellResult result;
  auto fail = [&result](const Status& status) {
    result.error = status.ToString();
    return result;
  };

  StatusOr<SyntheticRecoveryWorkload> workload =
      MakeSyntheticRecoveryWorkload(spec.rate, kWindowBatches);
  if (!workload.ok()) {
    return fail(workload.status());
  }
  const double wall_start = WallClockSeconds();
  std::unique_ptr<backend::ExecutionBackend> be =
      backend::MakeBackend(backend_kind);
  JobConfig config = JobConfig::CheckpointDefaults();
  config.ft_mode = spec.mode->ft_mode;
  config.recovery_mode = spec.mode->recovery_mode;
  config.window_batches = kWindowBatches;
  // A budget generous enough that steady-state skips actually happen at
  // these rates, while the certified-loss cap still gates which task sets
  // may be at risk simultaneously.
  config.error_budget.task_divergence_records = 2'000'000;
  config.error_budget.job_divergence_records = 20'000'000;
  config.error_budget.max_certified_loss = 0.9;

  StreamingJob job(workload->topo, config, JobRuntimeDeps(be.get()));
  if (Status s = BindSyntheticRecoveryWorkload(*workload, &job); !s.ok()) {
    return fail(s);
  }
  StatusOr<std::vector<int>> synthetic_nodes =
      PlaceSyntheticRecoveryWorkload(*workload, &job);
  if (!synthetic_nodes.ok()) {
    return fail(synthetic_nodes.status());
  }
  if (spec.mode->ft_mode == FtMode::kPpa) {
    // Both ppa and hybrid replicate the same structure-aware half-budget
    // plan, so the hybrid column isolates what thinning the *other* half
    // buys.
    StructureAwarePlanner planner;
    StatusOr<ReplicationPlan> plan = planner.Plan(
        PlanRequest(workload->topo, workload->topo.num_tasks() / 2));
    if (!plan.ok()) {
      return fail(plan.status());
    }
    if (Status s = job.SetActiveReplicaSet(plan->replicated); !s.ok()) {
      return fail(s);
    }
  }
  if (Status s = job.Start(); !s.ok()) {
    return fail(s);
  }
  be->RunUntil(TimePoint::Zero() + Duration::Seconds(kFailAtSeconds));
  if (spec.correlated) {
    for (int node : *synthetic_nodes) {
      if (Status s = job.InjectNodeFailure(node); !s.ok()) {
        return fail(s);
      }
    }
  } else {
    if (Status s = job.InjectNodeFailure((*synthetic_nodes)[4]); !s.ok()) {
      return fail(s);
    }
  }
  be->RunUntil(TimePoint::Zero() + Duration::Seconds(kRunForSeconds));

  result.events_processed = be->events_processed();
  result.sink_records = static_cast<int64_t>(job.sink_records().size());
  result.recoveries = static_cast<int64_t>(job.recovery_reports().size());
  result.checkpoint_bytes = job.CheckpointBytesWritten();
  result.checkpoints_skipped = job.CheckpointsSkipped();
  result.approx_recoveries =
      static_cast<int64_t>(job.approx_certificates().size());
  for (const af::ApproxCertificate& cert : job.approx_certificates()) {
    result.forfeited_records += cert.forfeited.records;
    result.max_certified_loss =
        std::max(result.max_certified_loss, cert.certified_loss);
  }
  if (!job.recovery_reports().empty()) {
    result.recovery_latency_s =
        job.recovery_reports()[0].TotalLatency().seconds();
  }
  for (const obs::FidelitySample& sample :
       job.fidelity_timeseries().samples()) {
    if (sample.failed_tasks > 0) {
      result.min_output_fidelity =
          std::min(result.min_output_fidelity, sample.output_fidelity);
    }
  }
  result.wall_seconds = WallClockSeconds() - wall_start;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppa;

  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);
  std::string out_path = "BENCH_mode_head_to_head.json";
  bool no_wall = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no_wall") == 0) {
      no_wall = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<CellSpec> cells;
  for (const ModeRow& mode : kModes) {
    for (bool correlated : {false, true}) {
      for (double rate : {1000.0, 2000.0}) {
        cells.push_back(CellSpec{&mode, correlated, rate});
      }
    }
  }

  const backend::BackendKind backend_kind = driver.backend_kind();
  std::vector<CellResult> results = driver.Map<CellResult>(
      static_cast<int>(cells.size()), [&cells, backend_kind](int i) {
        return RunCell(cells[static_cast<size_t>(i)], backend_kind);
      });

  std::printf("mode_head_to_head: fail at %.0fs, run to %.0fs (%s)\n",
              kFailAtSeconds, kRunForSeconds,
              driver.backend_name().c_str());
  std::printf("%-8s %10s %6s %12s %8s %10s %10s %8s\n", "mode",
              "intensity", "rate", "cp_bytes", "skipped", "recov_s",
              "min_OF", "forfeit");
  JsonValue cell_array = JsonValue::Array();
  bool any_error = false;
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellSpec& spec = cells[i];
    const CellResult& r = results[i];
    const char* intensity = spec.correlated ? "correlated" : "single";
    if (!r.error.empty()) {
      any_error = true;
      std::printf("%-8s %10s %6.0f %s\n", spec.mode->label, intensity,
                  spec.rate, r.error.c_str());
      continue;
    }
    std::printf("%-8s %10s %6.0f %12lld %8lld %10.2f %10.3f %8lld\n",
                spec.mode->label, intensity, spec.rate,
                static_cast<long long>(r.checkpoint_bytes),
                static_cast<long long>(r.checkpoints_skipped),
                r.recovery_latency_s, r.min_output_fidelity,
                static_cast<long long>(r.forfeited_records));

    JsonValue entry = JsonValue::Object();
    // The bench_diff cell key: recovery mode and backend partition the
    // trajectories; intensity/rate/window identify the drill.
    entry.Set("recovery_mode", std::string(spec.mode->label));
    entry.Set("backend", driver.backend_name());
    entry.Set("intensity", std::string(intensity));
    entry.Set("rate", spec.rate);
    entry.Set("window_batches", kWindowBatches);
    // Deterministic counters (gate exactly in bench_diff).
    entry.Set("events_processed", r.events_processed);
    entry.Set("sink_records", r.sink_records);
    entry.Set("recoveries", r.recoveries);
    entry.Set("checkpoint_bytes", r.checkpoint_bytes);
    entry.Set("checkpoints_skipped", r.checkpoints_skipped);
    // Report-only context.
    entry.Set("approx_recoveries", r.approx_recoveries);
    entry.Set("forfeited_records", r.forfeited_records);
    entry.Set("max_certified_loss", r.max_certified_loss);
    entry.Set("recovery_latency_s", r.recovery_latency_s);
    entry.Set("min_output_fidelity", r.min_output_fidelity);
    if (!no_wall) {
      entry.Set("wall_seconds", r.wall_seconds);
      entry.Set("events_per_sec",
                r.wall_seconds > 0
                    ? static_cast<double>(r.events_processed) /
                          r.wall_seconds
                    : 0.0);
    }
    cell_array.Append(std::move(entry));
  }
  if (any_error) {
    std::fprintf(stderr, "mode_head_to_head: cell errors above\n");
    return 1;
  }

  // Headline self-check: on the correlated drill, approximate mode must
  // persist strictly fewer checkpoint bytes than exact PPA at every rate.
  bool headline_ok = true;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (std::strcmp(cells[i].mode->label, "approx") != 0 ||
        !cells[i].correlated) {
      continue;
    }
    for (size_t j = 0; j < cells.size(); ++j) {
      if (std::strcmp(cells[j].mode->label, "ppa") == 0 &&
          cells[j].correlated && cells[j].rate == cells[i].rate &&
          results[i].checkpoint_bytes >= results[j].checkpoint_bytes) {
        std::fprintf(stderr,
                     "approx wrote %lld checkpoint bytes >= ppa's %lld at "
                     "rate %.0f (correlated)\n",
                     static_cast<long long>(results[i].checkpoint_bytes),
                     static_cast<long long>(results[j].checkpoint_bytes),
                     cells[i].rate);
        headline_ok = false;
      }
    }
  }
  if (!headline_ok) {
    return 1;
  }

  JsonValue report = JsonValue::Object();
  driver.StampBenchReport(&report, "mode_head_to_head");
  report.Set("benchmark", std::string("mode_head_to_head"));
  report.Set("fail_at_seconds", kFailAtSeconds);
  report.Set("run_for_seconds", kRunForSeconds);
  report.Set("cells", std::move(cell_array));
  const Status written = WriteJsonFile(out_path, report);
  if (!written.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("report written to %s\n", out_path.c_str());
  driver.metrics().Add("mode_head_to_head", std::move(report));
  return driver.Finish("mode_head_to_head");
}
