// Reproduces Figure 10: recovery latency of a correlated failure under PPA
// replication plans that consume different amounts of active-replication
// resources: PPA-1.0 (every task replicated), PPA-0.5 (half, chosen by the
// structure-aware planner), PPA-0 (purely passive). PPA-0.5-active is the
// recovery latency of just the actively replicated tasks in the PPA-0.5
// plan — the moment tentative outputs can start flowing.

#include <cstdio>

#include "bench/bench_util.h"
#include "planner/structure_aware_planner.h"

int main(int argc, char** argv) {
  using namespace ppa;
  using bench::Fig6Options;
  using bench::RunFig6;

  bench::BenchMetricsSink sink =
      bench::BenchMetricsSink::FromArgs(argc, argv);
  bench::ChromeTraceSink traces =
      bench::ChromeTraceSink::FromArgs(argc, argv);

  for (double rate : {1000.0, 2000.0}) {
    std::printf(
        "Figure 10%s: correlated-failure recovery latency (s), window 30 "
        "s, rate %.0f tuples/s\n",
        rate == 1000.0 ? "(a)" : "(b)", rate);
    std::printf("%-18s %12s %12s %12s\n", "plan", "cp=5s", "cp=15s",
                "cp=30s");

    // Plans are computed once per rate (rates do not change the topology
    // shape, but keep it faithful).
    auto workload = MakeSyntheticRecoveryWorkload(rate, 30);
    PPA_CHECK_OK(workload.status());
    const int n = workload->topo.num_tasks();
    StructureAwarePlanner planner;
    auto half_plan = planner.Plan(workload->topo, n / 2);
    PPA_CHECK_OK(half_plan.status());
    const TaskSet all = TaskSet::All(n);
    const TaskSet half = half_plan->replicated;
    const TaskSet none(n);

    struct PlanRow {
      const char* label;
      const TaskSet* active_set;
      bool report_active_only;
    };
    const PlanRow rows[] = {
        {"PPA-1.0", &all, false},
        {"PPA-0.5-active", &half, true},
        {"PPA-0.5", &half, false},
        {"PPA-0", &none, false},
    };
    for (const PlanRow& row : rows) {
      std::printf("%-18s", row.label);
      for (int interval : {5, 15, 30}) {
        Fig6Options options;
        options.mode = FtMode::kPpa;
        options.rate_per_task = rate;
        options.window_batches = 30;
        options.checkpoint_interval = Duration::Seconds(interval);
        options.correlated = true;
        options.active_set = row.active_set;
        options.run_for_seconds = 70.0;
        auto result = RunFig6(options);
        if (!result.ok()) {
          std::printf(" %12s", result.status().ToString().c_str());
        } else {
          const Duration latency = row.report_active_only
                                       ? result->active_latency
                                       : result->total_latency;
          std::printf(" %12.2f", latency.seconds());
          char label[64];
          std::snprintf(label, sizeof(label), "%s/cp%ds/r%.0f", row.label,
                        interval, rate);
          sink.Add(label, std::move(result->metrics),
                   std::move(result->fidelity));
          // Capture the partially-replicated plan: PPA-1.0 fails over
          // instantly and never degrades, while PPA-0.5 shows the paper's
          // story — a tentative window bridged by the active half.
          if (row.active_set == &half && !row.report_active_only) {
            traces.Capture(std::move(result->chrome_trace));
          }
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): PPA-1.0 < PPA-0.5 < PPA-0 overall; "
      "PPA-0.5-active is\nnearly as fast as PPA-1.0, so tentative outputs "
      "start up to an order of magnitude\nbefore full recovery completes.\n");
  sink.Write("fig10_ppa_recovery");
  traces.Write();
  return 0;
}
