// Reproduces Figure 10: recovery latency of a correlated failure under PPA
// replication plans that consume different amounts of active-replication
// resources: PPA-1.0 (every task replicated), PPA-0.5 (half, chosen by the
// structure-aware planner), PPA-0 (purely passive). PPA-0.5-active is the
// recovery latency of just the actively replicated tasks in the PPA-0.5
// plan — the moment tentative outputs can start flowing.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/driver.h"
#include "planner/structure_aware_planner.h"

int main(int argc, char** argv) {
  using namespace ppa;
  using bench::Fig6Options;
  using bench::Fig6Result;
  using bench::RunFig6;

  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);

  for (double rate : {1000.0, 2000.0}) {
    // Plans are computed once per rate (rates do not change the topology
    // shape, but keep it faithful).
    auto workload = MakeSyntheticRecoveryWorkload(rate, 30);
    PPA_CHECK_OK(workload.status());
    const int n = workload->topo.num_tasks();
    StructureAwarePlanner planner;
    auto half_plan = planner.Plan(PlanRequest(workload->topo, n / 2));
    PPA_CHECK_OK(half_plan.status());
    const TaskSet all = TaskSet::All(n);
    const TaskSet half = half_plan->replicated;
    const TaskSet none(n);

    struct PlanRow {
      const char* label;
      const TaskSet* active_set;
      bool report_active_only;
    };
    const PlanRow rows[] = {
        {"PPA-1.0", &all, false},
        {"PPA-0.5-active", &half, true},
        {"PPA-0.5", &half, false},
        {"PPA-0", &none, false},
    };

    struct Cell {
      const PlanRow* row;
      int interval;
    };
    std::vector<Cell> cells;
    for (const PlanRow& row : rows) {
      for (int interval : {5, 15, 30}) {
        cells.push_back(Cell{&row, interval});
      }
    }

    std::vector<StatusOr<Fig6Result>> results =
        driver.Map<StatusOr<Fig6Result>>(
            static_cast<int>(cells.size()), [&cells, rate](int i) {
              const Cell& cell = cells[static_cast<size_t>(i)];
              Fig6Options options;
              options.mode = FtMode::kPpa;
              options.rate_per_task = rate;
              options.window_batches = 30;
              options.checkpoint_interval =
                  Duration::Seconds(cell.interval);
              options.correlated = true;
              options.active_set = cell.row->active_set;
              options.run_for_seconds = 70.0;
              return RunFig6(options);
            });

    std::printf(
        "Figure 10%s: correlated-failure recovery latency (s), window 30 "
        "s, rate %.0f tuples/s\n",
        rate == 1000.0 ? "(a)" : "(b)", rate);
    std::printf("%-18s %12s %12s %12s\n", "plan", "cp=5s", "cp=15s",
                "cp=30s");
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& cell = cells[i];
      if (i % 3 == 0) {
        std::printf("%-18s", cell.row->label);
      }
      StatusOr<Fig6Result>& result = results[i];
      if (!result.ok()) {
        std::printf(" %12s", result.status().ToString().c_str());
      } else {
        const Duration latency = cell.row->report_active_only
                                     ? result->active_latency
                                     : result->total_latency;
        std::printf(" %12.2f", latency.seconds());
        char label[64];
        std::snprintf(label, sizeof(label), "%s/cp%ds/r%.0f",
                      cell.row->label, cell.interval, rate);
        driver.metrics().Add(label, std::move(result->metrics),
                             std::move(result->fidelity));
        // Capture the partially-replicated plan: PPA-1.0 fails over
        // instantly and never degrades, while PPA-0.5 shows the paper's
        // story — a tentative window bridged by the active half.
        if (cell.row->active_set == &half && !cell.row->report_active_only) {
          driver.traces().Capture(std::move(result->chrome_trace));
        }
      }
      if (i % 3 == 2) {
        std::printf("\n");
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): PPA-1.0 < PPA-0.5 < PPA-0 overall; "
      "PPA-0.5-active is\nnearly as fast as PPA-1.0, so tentative outputs "
      "start up to an order of magnitude\nbefore full recovery completes.\n");
  return driver.Finish("fig10_ppa_recovery");
}
