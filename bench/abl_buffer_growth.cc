// Ablation A5: output-buffer occupancy vs checkpoint interval. Upstream
// output buffers exist so failed tasks can replay (Sec. II-B); the
// checkpoint protocol trims them. This bench quantifies the memory the
// trimming protocol saves, and what running without checkpoints (Storm
// source replay) costs instead.

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using namespace ppa;

int64_t RunOne(FtMode mode, int interval_seconds,
               bench::BenchMetricsSink* sink,
               bench::ChromeTraceSink* traces, const char* label) {
  auto workload = MakeSyntheticRecoveryWorkload(1000.0, 30);
  PPA_CHECK_OK(workload.status());
  EventLoop loop;
  JobConfig config = bench::PaperJobConfig(mode);
  config.checkpoint_interval = Duration::Seconds(interval_seconds);
  StreamingJob job(workload->topo, config, &loop);
  PPA_CHECK_OK(BindSyntheticRecoveryWorkload(*workload, &job));
  PPA_CHECK_OK(PlaceSyntheticRecoveryWorkload(*workload, &job).status());
  PPA_CHECK_OK(job.Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(90));
  sink->Add(label, job);
  traces->Capture(bench::JobChromeTrace(job));
  return job.PeakBufferedTuples();
}

}  // namespace

int main(int argc, char** argv) {
  ppa::bench::BenchMetricsSink sink =
      ppa::bench::BenchMetricsSink::FromArgs(argc, argv);
  ppa::bench::ChromeTraceSink traces =
      ppa::bench::ChromeTraceSink::FromArgs(argc, argv);

  std::printf(
      "Ablation A5: peak upstream-buffer occupancy (tuples), window 30 s, "
      "1000 tuples/s, 90 s run\n");
  std::printf("%-24s %18s\n", "configuration", "peak buffered");
  for (int interval : {2, 5, 15, 30}) {
    char label[64];
    std::snprintf(label, sizeof(label), "checkpoint every %ds", interval);
    std::printf("%-24s %18lld\n", label,
                static_cast<long long>(RunOne(FtMode::kCheckpoint, interval,
                                              &sink, &traces, label)));
  }
  std::printf("%-24s %18lld\n", "source replay (Storm)",
              static_cast<long long>(RunOne(FtMode::kSourceReplay, 15, &sink,
                                            &traces, "source replay")));
  std::printf(
      "\nExpected: buffers grow linearly with the checkpoint interval "
      "(trimming waits\nfor downstream checkpoints); Storm's no-checkpoint "
      "mode must retain a full\nreplay window instead.\n");
  sink.Write("abl_buffer_growth");
  traces.Write();
  return 0;
}
