// Ablation A5: output-buffer occupancy vs checkpoint interval. Upstream
// output buffers exist so failed tasks can replay (Sec. II-B); the
// checkpoint protocol trims them. This bench quantifies the memory the
// trimming protocol saves, and what running without checkpoints (Storm
// source replay) costs instead.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/driver.h"

namespace {

using namespace ppa;

struct CellResult {
  int64_t peak_buffered = 0;
  JsonValue metrics;
  JsonValue chrome_trace;
};

CellResult RunOne(FtMode mode, int interval_seconds, bool want_obs) {
  auto workload = MakeSyntheticRecoveryWorkload(1000.0, 30);
  PPA_CHECK_OK(workload.status());
  auto be = backend::MakeBackend(backend::BackendKind::kSim);
  JobConfig config = bench::PaperJobConfig(mode);
  config.checkpoint_interval = Duration::Seconds(interval_seconds);
  StreamingJob job(workload->topo, config, JobRuntimeDeps(be.get()));
  PPA_CHECK_OK(BindSyntheticRecoveryWorkload(*workload, &job));
  PPA_CHECK_OK(PlaceSyntheticRecoveryWorkload(*workload, &job).status());
  PPA_CHECK_OK(job.Start());
  be->RunUntil(TimePoint::Zero() + Duration::Seconds(90));
  CellResult cell;
  cell.peak_buffered = job.PeakBufferedTuples();
  if (want_obs) {
    cell.metrics = obs::MetricsToJson(job.metrics());
    cell.chrome_trace = bench::JobChromeTrace(job);
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppa;

  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);

  const int intervals[] = {2, 5, 15, 30};
  const bool want_obs =
      driver.metrics().enabled() || driver.traces().enabled();
  // Cells 0-3: checkpoint mode per interval; cell 4: Storm source replay.
  std::vector<CellResult> results = driver.Map<CellResult>(
      5, [&intervals, want_obs](int i) {
        if (i < 4) {
          return RunOne(FtMode::kCheckpoint, intervals[i], want_obs);
        }
        return RunOne(FtMode::kSourceReplay, 15, want_obs);
      });

  std::printf(
      "Ablation A5: peak upstream-buffer occupancy (tuples), window 30 s, "
      "1000 tuples/s, 90 s run\n");
  std::printf("%-24s %18s\n", "configuration", "peak buffered");
  for (size_t i = 0; i < std::size(intervals); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "checkpoint every %ds",
                  intervals[i]);
    driver.metrics().Add(label, std::move(results[i].metrics));
    driver.traces().Capture(std::move(results[i].chrome_trace));
    std::printf("%-24s %18lld\n", label,
                static_cast<long long>(results[i].peak_buffered));
  }
  driver.metrics().Add("source replay", std::move(results[4].metrics));
  driver.traces().Capture(std::move(results[4].chrome_trace));
  std::printf("%-24s %18lld\n", "source replay (Storm)",
              static_cast<long long>(results[4].peak_buffered));
  std::printf(
      "\nExpected: buffers grow linearly with the checkpoint interval "
      "(trimming waits\nfor downstream checkpoints); Storm's no-checkpoint "
      "mode must retain a full\nreplay window instead.\n");
  return driver.Finish("abl_buffer_growth");
}
