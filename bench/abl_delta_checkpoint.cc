// Ablation A2: delta checkpoints (Hwang et al., cited Sec. VII) vs full
// checkpoints on the Fig. 6 workload. Deltas make short checkpoint
// intervals affordable — the knob Fig. 9 shows to be prohibitively
// expensive with full snapshots — at the price of a longer state-load
// chain during recovery.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/driver.h"

namespace {

using namespace ppa;

struct CellResult {
  double cpu_ratio = 0.0;
  double recovery_seconds = 0.0;
  JsonValue metrics;
  JsonValue chrome_trace;
};

CellResult RunOne(int interval_seconds, bool delta, bool want_obs) {
  auto workload = MakeSyntheticRecoveryWorkload(1000.0, 30);
  PPA_CHECK_OK(workload.status());
  auto be = backend::MakeBackend(backend::BackendKind::kSim);
  JobConfig config = bench::PaperJobConfig(FtMode::kCheckpoint);
  config.checkpoint_interval = Duration::Seconds(interval_seconds);
  config.delta_checkpoints = delta;
  config.max_delta_chain = 8;
  StreamingJob job(workload->topo, config, JobRuntimeDeps(be.get()));
  PPA_CHECK_OK(BindSyntheticRecoveryWorkload(*workload, &job));
  auto nodes = PlaceSyntheticRecoveryWorkload(*workload, &job);
  PPA_CHECK_OK(nodes.status());
  PPA_CHECK_OK(job.Start());
  be->RunUntil(TimePoint::Zero() + Duration::Seconds(40.4));
  PPA_CHECK_OK(job.InjectNodeFailure((*nodes)[4]));
  be->RunUntil(TimePoint::Zero() + Duration::Seconds(70));

  CellResult cell;
  PPA_CHECK(job.recovery_reports().size() == 1);
  cell.recovery_seconds = job.recovery_reports()[0].TotalLatency().seconds();
  double ratio = 0;
  int counted = 0;
  for (OperatorId op :
       {workload->o1, workload->o2, workload->o3, workload->o4}) {
    for (TaskId t : workload->topo.op(op).tasks) {
      if (job.ProcessingCostUs(t) > 0) {
        ratio += job.CheckpointCostUs(t) / job.ProcessingCostUs(t);
        ++counted;
      }
    }
  }
  cell.cpu_ratio = counted > 0 ? ratio / counted : 0.0;
  if (want_obs) {
    cell.metrics = obs::MetricsToJson(job.metrics());
    cell.chrome_trace = bench::JobChromeTrace(job);
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);

  const int intervals[] = {1, 5, 15};
  const bool want_obs =
      driver.metrics().enabled() || driver.traces().enabled();
  // Cell i: interval i/2; even = full checkpoints, odd = delta.
  std::vector<CellResult> results = driver.Map<CellResult>(
      6, [&intervals, want_obs](int i) {
        return RunOne(intervals[i / 2], (i % 2) == 1, want_obs);
      });

  std::printf(
      "Ablation A2: full vs delta checkpoints, window 30 s, 1000 "
      "tuples/s\n");
  std::printf("%-10s %12s %12s %14s %14s\n", "interval", "full ratio",
              "delta ratio", "full rec (s)", "delta rec (s)");
  for (size_t i = 0; i < std::size(intervals); ++i) {
    CellResult& full = results[i * 2];
    CellResult& delta = results[i * 2 + 1];
    for (CellResult* cell : {&full, &delta}) {
      char label[64];
      std::snprintf(label, sizeof(label), "%s/cp%ds",
                    cell == &delta ? "delta" : "full", intervals[i]);
      driver.metrics().Add(label, std::move(cell->metrics));
      driver.traces().Capture(std::move(cell->chrome_trace));
    }
    std::printf("%-10d %12.3f %12.3f %14.2f %14.2f\n", intervals[i],
                full.cpu_ratio, delta.cpu_ratio, full.recovery_seconds,
                delta.recovery_seconds);
  }
  std::printf(
      "\nExpected: delta checkpointing slashes the CPU ratio (it only "
      "serializes the\nwindow's fresh slices), making 1-second intervals "
      "practical; recovery latency\nstays comparable (shorter replay, "
      "slightly larger state-load chain).\n");
  return driver.Finish("abl_delta_checkpoint");
}
