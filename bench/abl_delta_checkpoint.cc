// Ablation A2: delta checkpoints (Hwang et al., cited Sec. VII) vs full
// checkpoints on the Fig. 6 workload. Deltas make short checkpoint
// intervals affordable — the knob Fig. 9 shows to be prohibitively
// expensive with full snapshots — at the price of a longer state-load
// chain during recovery.

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using namespace ppa;

struct Row {
  double cpu_ratio = 0.0;
  double recovery_seconds = 0.0;
};

Row RunOne(int interval_seconds, bool delta, bench::BenchMetricsSink* sink,
           bench::ChromeTraceSink* traces) {
  auto workload = MakeSyntheticRecoveryWorkload(1000.0, 30);
  PPA_CHECK_OK(workload.status());
  EventLoop loop;
  JobConfig config = bench::PaperJobConfig(FtMode::kCheckpoint);
  config.checkpoint_interval = Duration::Seconds(interval_seconds);
  config.delta_checkpoints = delta;
  config.max_delta_chain = 8;
  StreamingJob job(workload->topo, config, &loop);
  PPA_CHECK_OK(BindSyntheticRecoveryWorkload(*workload, &job));
  auto nodes = PlaceSyntheticRecoveryWorkload(*workload, &job);
  PPA_CHECK_OK(nodes.status());
  PPA_CHECK_OK(job.Start());
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(40.4));
  PPA_CHECK_OK(job.InjectNodeFailure((*nodes)[4]));
  loop.RunUntil(TimePoint::Zero() + Duration::Seconds(70));

  Row row;
  PPA_CHECK(job.recovery_reports().size() == 1);
  row.recovery_seconds = job.recovery_reports()[0].TotalLatency().seconds();
  double ratio = 0;
  int counted = 0;
  for (OperatorId op :
       {workload->o1, workload->o2, workload->o3, workload->o4}) {
    for (TaskId t : workload->topo.op(op).tasks) {
      if (job.ProcessingCostUs(t) > 0) {
        ratio += job.CheckpointCostUs(t) / job.ProcessingCostUs(t);
        ++counted;
      }
    }
  }
  row.cpu_ratio = counted > 0 ? ratio / counted : 0.0;
  char label[64];
  std::snprintf(label, sizeof(label), "%s/cp%ds", delta ? "delta" : "full",
                interval_seconds);
  sink->Add(label, job);
  traces->Capture(bench::JobChromeTrace(job));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMetricsSink sink =
      bench::BenchMetricsSink::FromArgs(argc, argv);
  bench::ChromeTraceSink traces =
      bench::ChromeTraceSink::FromArgs(argc, argv);

  std::printf(
      "Ablation A2: full vs delta checkpoints, window 30 s, 1000 "
      "tuples/s\n");
  std::printf("%-10s %12s %12s %14s %14s\n", "interval", "full ratio",
              "delta ratio", "full rec (s)", "delta rec (s)");
  for (int interval : {1, 5, 15}) {
    Row full = RunOne(interval, false, &sink, &traces);
    Row delta = RunOne(interval, true, &sink, &traces);
    std::printf("%-10d %12.3f %12.3f %14.2f %14.2f\n", interval,
                full.cpu_ratio, delta.cpu_ratio, full.recovery_seconds,
                delta.recovery_seconds);
  }
  std::printf(
      "\nExpected: delta checkpointing slashes the CPU ratio (it only "
      "serializes the\nwindow's fresh slices), making 1-second intervals "
      "practical; recovery latency\nstays comparable (shorter replay, "
      "slightly larger state-load chain).\n");
  sink.Write("abl_delta_checkpoint");
  traces.Write();
  return 0;
}
