#ifndef PPA_BENCH_DRIVER_H_
#define PPA_BENCH_DRIVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "af/error_budget.h"
#include "backend/execution_backend.h"
#include "bench/bench_util.h"
#include "exp/parallel_runner.h"
#include "exp/progress.h"
#include "report/json.h"

namespace ppa {
namespace bench {

/// Shared driver of every experiment binary: owns the flags all of them
/// understand, the metrics/trace sinks, and the parallel runner the
/// binary fans its independent runs across.
///
/// Flags (parsed and stripped by FromArgs, `--flag=value` and
/// `--flag value` forms):
///   --metrics_out <file>       write labeled metrics snapshots as JSON
///   --chrome_trace_out <file>  write a Chrome/Perfetto trace
///   --flight_record_out <file> write the first captured flight record
///                              (the job's bounded post-mortem event
///                              ring) as JSON
///   --progress                 print live completion tallies to stderr
///                              (observational only — stdout and every
///                              report stay byte-identical)
///   --jobs <n>                 worker threads for independent runs
///                              (default 1; 0 = all hardware threads).
///                              Results are byte-identical for any value.
///   --seed <n>                 base RNG seed of randomized experiments
///   --commit <sha>             source revision stamped into BENCH_*.json
///                              reports (default "unknown"; passed
///                              explicitly — binaries never shell out or
///                              read the environment)
///   --backend <sim|threads>    execution substrate for binaries that
///                              honour it (default sim). Stamped into
///                              BENCH_*.json headers and cell keys so
///                              bench_diff never cross-compares backends.
///   --recovery_mode <ppa|approx|hybrid>
///                              recovery mode (src/af) for binaries that
///                              honour it (default ppa). Stamped into
///                              BENCH_*.json headers and cell keys like
///                              --backend, so exact and approximate
///                              trajectories never cross-compare.
class Driver {
 public:
  /// Parses the shared flags and strips them from argv (updating *argc),
  /// so the binary's own flag handling never sees them.
  static Driver FromArgs(int* argc, char** argv);

  /// Worker threads to run on; always >= 1 (0 was resolved to the
  /// hardware thread count at parse time).
  [[nodiscard]] int jobs() const { return jobs_; }

  /// The --seed value, or `fallback` when the flag was absent.
  [[nodiscard]] uint64_t seed_or(uint64_t fallback) const {
    return has_seed_ ? seed_ : fallback;
  }

  /// The --commit value ("unknown" when the flag was absent).
  [[nodiscard]] const std::string& commit() const { return commit_; }

  /// The --backend value (BackendKind::kSim when the flag was absent).
  [[nodiscard]] backend::BackendKind backend_kind() const {
    return backend_;
  }

  /// The --backend value's flag spelling ("sim" / "threads") — the string
  /// StampBenchReport writes and binaries suffix into cell keys.
  [[nodiscard]] std::string backend_name() const {
    return backend::BackendKindToString(backend_);
  }

  /// The --recovery_mode value (af::RecoveryMode::kPpa when absent).
  [[nodiscard]] af::RecoveryMode recovery_mode() const {
    return recovery_mode_;
  }

  /// The --recovery_mode value's flag spelling ("ppa" / "approx" /
  /// "hybrid") — the string StampBenchReport writes and binaries suffix
  /// into cell keys.
  [[nodiscard]] std::string recovery_mode_name() const {
    return std::string(af::RecoveryModeToString(recovery_mode_));
  }

  /// A fresh backend of the --backend kind (default options).
  [[nodiscard]] std::unique_ptr<backend::ExecutionBackend> MakeBackend()
      const {
    return backend::MakeBackend(backend_);
  }

  /// Stamps the standard BENCH_*.json header onto a report so the perf
  /// trajectory is machine-diffable across PRs: `schema_version` (bumped
  /// only on incompatible shape changes), `suite` (the benchmark's
  /// stable name), `commit` (from --commit), and `backend` (from
  /// --backend — a sim report and a threads report are different
  /// trajectories, never diffed against each other). Every BENCH_*.json
  /// writer must call this before serializing.
  void StampBenchReport(JsonValue* report, std::string_view suite) const;

  /// The `schema_version` StampBenchReport writes.
  static constexpr int kBenchSchemaVersion = 1;

  /// Metrics sink (no-op unless --metrics_out was given).
  BenchMetricsSink& metrics() { return metrics_; }

  /// Trace sink (no-op unless --chrome_trace_out was given).
  ChromeTraceSink& traces() { return traces_; }

  /// Flight-record sink (no-op unless --flight_record_out was given).
  FlightRecordSink& flight() { return flight_; }

  /// True when --progress was given.
  [[nodiscard]] bool progress() const { return progress_; }

  /// With --progress: returns a fresh meter (owned by the driver,
  /// replacing any previous one) whose updates print
  /// "<label> <done>/<total> done (<failed> failed)" to stderr. Without
  /// the flag: nullptr — callers pass the meter to workers only when
  /// non-null. Progress is observational only; it never touches stdout
  /// or the sinks.
  exp::ProgressMeter* StartProgress(int total, std::string label);

  /// The runner independent runs execute on; created on first use with
  /// jobs() workers and reused for every subsequent Map.
  exp::ParallelRunner& runner();

  /// Shorthand for runner().Map: runs fn(0..count-1) across jobs()
  /// threads, results in index order. Mutate sinks/registries only from
  /// the ordered result pass, never inside fn.
  template <typename T>
  std::vector<T> Map(int count, const std::function<T(int)>& fn) {
    return runner().Map<T>(count, fn);
  }

  /// Writes all sinks; returns the process exit code (0 on success, 1
  /// when a sink could not be written).
  [[nodiscard]] int Finish(std::string_view benchmark);

 private:
  Driver() = default;

  int jobs_ = 1;
  bool has_seed_ = false;
  uint64_t seed_ = 0;
  bool progress_ = false;
  std::string commit_ = "unknown";
  backend::BackendKind backend_ = backend::BackendKind::kSim;
  af::RecoveryMode recovery_mode_ = af::RecoveryMode::kPpa;
  BenchMetricsSink metrics_;
  ChromeTraceSink traces_;
  FlightRecordSink flight_;
  std::unique_ptr<exp::ProgressMeter> meter_;
  std::unique_ptr<exp::ParallelRunner> runner_;
};

}  // namespace bench
}  // namespace ppa

#endif  // PPA_BENCH_DRIVER_H_
