// Reproduces Figure 14: output fidelity of the structure-aware (SA) and
// greedy planners on 100 random synthetic topologies per configuration,
// sweeping the active-replication budget. Four panels vary one topology
// dimension each: (a) task-workload skew, (b) operator parallelism,
// (c) structured vs full partitioning, (d) fraction of join operators.
// DP is omitted, as in the paper, because its complexity is prohibitive on
// these topologies.

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/driver.h"
#include "common/random.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "planner/greedy_planner.h"
#include "planner/structure_aware_planner.h"
#include "topology/random_topology.h"

namespace {

using namespace ppa;

constexpr int kTopologiesPerConfig = 100;
const double kConsumptions[] = {0.05, 0.1, 0.2, 0.4, 0.6, 0.8};

struct MeanOf {
  double sa = 0.0;
  double greedy = 0.0;
};

/// Per-topology OF of both planners at every consumption level.
struct TopoResult {
  std::array<double, std::size(kConsumptions)> sa;
  std::array<double, std::size(kConsumptions)> greedy;
};

/// Mean OF of SA and Greedy plans over kTopologiesPerConfig topologies at
/// each consumption level. Topology i draws its own RNG stream from
/// DeriveSeed(seed, i), so results do not depend on the order (or the
/// thread) topologies are planned on. When `registry` is given, every
/// plan's OF lands in the "planner.sa_of"/"planner.greedy_of" histograms,
/// recorded in topology order.
std::vector<MeanOf> Sweep(bench::Driver* driver,
                          const RandomTopologyOptions& options,
                          uint64_t seed, obs::MetricsRegistry* registry) {
  std::vector<TopoResult> per_topo = driver->Map<TopoResult>(
      kTopologiesPerConfig, [&options, seed](int i) {
        Rng rng(DeriveSeed(seed, static_cast<uint64_t>(i)));
        auto topo = GenerateRandomTopology(options, &rng);
        PPA_CHECK_OK(topo.status());
        StructureAwarePlanner sa;
        GreedyPlanner greedy;
        TopoResult result;
        for (size_t c = 0; c < std::size(kConsumptions); ++c) {
          const int budget = static_cast<int>(kConsumptions[c] *
                                                  topo->num_tasks() + 0.5);
          auto sa_plan = sa.Plan(PlanRequest(*topo, budget));
          auto greedy_plan = greedy.Plan(PlanRequest(*topo, budget));
          PPA_CHECK_OK(sa_plan.status());
          PPA_CHECK_OK(greedy_plan.status());
          result.sa[c] = sa_plan->output_fidelity;
          result.greedy[c] = greedy_plan->output_fidelity;
        }
        return result;
      });

  obs::Histogram* sa_of =
      registry != nullptr ? registry->histogram("planner.sa_of") : nullptr;
  obs::Histogram* greedy_of =
      registry != nullptr ? registry->histogram("planner.greedy_of")
                          : nullptr;
  obs::Counter* topologies =
      registry != nullptr ? registry->counter("planner.topologies") : nullptr;
  std::vector<MeanOf> means(std::size(kConsumptions));
  for (const TopoResult& result : per_topo) {
    obs::Add(topologies);
    for (size_t c = 0; c < std::size(kConsumptions); ++c) {
      means[c].sa += result.sa[c];
      means[c].greedy += result.greedy[c];
      obs::Observe(sa_of, result.sa[c]);
      obs::Observe(greedy_of, result.greedy[c]);
    }
  }
  for (MeanOf& m : means) {
    m.sa /= kTopologiesPerConfig;
    m.greedy /= kTopologiesPerConfig;
  }
  return means;
}

void Panel(const char* title, const char* label_a, const char* label_b,
           const RandomTopologyOptions& a, const RandomTopologyOptions& b,
           uint64_t seed, bench::Driver* driver) {
  bench::BenchMetricsSink* sink = &driver->metrics();
  obs::MetricsRegistry registry_a;
  obs::MetricsRegistry registry_b;
  const auto means_a =
      Sweep(driver, a, seed, sink->enabled() ? &registry_a : nullptr);
  const auto means_b =
      Sweep(driver, b, seed + 1, sink->enabled() ? &registry_b : nullptr);
  std::printf("%s\n", title);
  std::printf("%-12s %12s %12s %12s %12s\n", "consumption",
              (std::string("SA-") + label_a).c_str(),
              (std::string("Greedy-") + label_a).c_str(),
              (std::string("SA-") + label_b).c_str(),
              (std::string("Greedy-") + label_b).c_str());
  sink->Add(label_a, obs::MetricsToJson(registry_a));
  sink->Add(label_b, obs::MetricsToJson(registry_b));
  for (size_t c = 0; c < std::size(kConsumptions); ++c) {
    std::printf("%-12.2f %12.3f %12.3f %12.3f %12.3f\n", kConsumptions[c],
                means_a[c].sa, means_a[c].greedy, means_b[c].sa,
                means_b[c].greedy);
  }
  std::printf("\n");
}

RandomTopologyOptions Base() {
  RandomTopologyOptions options;
  options.min_operators = 5;
  options.max_operators = 10;
  options.min_parallelism = 1;
  options.max_parallelism = 10;
  options.kind = RandomTopologyOptions::Kind::kStructured;
  options.join_fraction = 0.0;
  options.skew = RandomTopologyOptions::WorkloadSkew::kUniform;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  // Planner-only bench: accepts --chrome_trace_out for tooling uniformity
  // and writes an empty (but valid) trace.
  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);
  const uint64_t base_seed = driver.seed_or(100);

  std::printf(
      "Figure 14: SA vs Greedy output fidelity on 100 random topologies "
      "per configuration\n\n");

  // (a) Workload skewness.
  RandomTopologyOptions zipf = Base();
  zipf.skew = RandomTopologyOptions::WorkloadSkew::kZipf;
  zipf.zipf_s = 0.1;
  Panel("Figure 14(a): workload skew (Zipf s=0.1 vs uniform)", "zipf",
        "uniform", zipf, Base(), base_seed, &driver);

  // (b) Degree of parallelization.
  RandomTopologyOptions high = Base();
  high.min_parallelism = 10;
  high.max_parallelism = 20;
  RandomTopologyOptions low = Base();
  low.min_parallelism = 1;
  low.max_parallelism = 10;
  Panel("Figure 14(b): parallelism (10-20 vs 1-10)", "para10-20",
        "para1-10", high, low, base_seed + 100, &driver);

  // (c) Structured vs full topologies.
  RandomTopologyOptions structured = Base();
  RandomTopologyOptions full = Base();
  full.kind = RandomTopologyOptions::Kind::kFull;
  Panel("Figure 14(c): structured vs full partitioning", "structure",
        "full", structured, full, base_seed + 200, &driver);

  // (d) Fraction of join operators.
  RandomTopologyOptions no_join = Base();
  RandomTopologyOptions half_join = Base();
  half_join.join_fraction = 0.5;
  Panel("Figure 14(d): join fraction (0 vs 50%)", "nojoin", "join50",
        no_join, half_join, base_seed + 300, &driver);

  std::printf(
      "Expected shape (paper): SA >= Greedy everywhere, with the largest "
      "gap at small\nbudgets; skew raises SA's OF; structured topologies "
      "score higher than full ones;\nmore joins lower OF.\n");
  return driver.Finish("fig14_random_topologies");
}
