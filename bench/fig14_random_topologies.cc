// Reproduces Figure 14: output fidelity of the structure-aware (SA) and
// greedy planners on 100 random synthetic topologies per configuration,
// sweeping the active-replication budget. Four panels vary one topology
// dimension each: (a) task-workload skew, (b) operator parallelism,
// (c) structured vs full partitioning, (d) fraction of join operators.
// DP is omitted, as in the paper, because its complexity is prohibitive on
// these topologies.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "planner/greedy_planner.h"
#include "planner/structure_aware_planner.h"
#include "topology/random_topology.h"

namespace {

using namespace ppa;

constexpr int kTopologiesPerConfig = 100;
const double kConsumptions[] = {0.05, 0.1, 0.2, 0.4, 0.6, 0.8};

struct MeanOf {
  double sa = 0.0;
  double greedy = 0.0;
};

/// Mean OF of SA and Greedy plans over kTopologiesPerConfig topologies at
/// each consumption level. When `registry` is given, every plan's OF lands
/// in the "planner.sa_of"/"planner.greedy_of" histograms.
std::vector<MeanOf> Sweep(const RandomTopologyOptions& options,
                          uint64_t seed, obs::MetricsRegistry* registry) {
  std::vector<MeanOf> means(std::size(kConsumptions));
  Rng rng(seed);
  StructureAwarePlanner sa;
  GreedyPlanner greedy;
  obs::Histogram* sa_of =
      registry != nullptr ? registry->histogram("planner.sa_of") : nullptr;
  obs::Histogram* greedy_of =
      registry != nullptr ? registry->histogram("planner.greedy_of")
                          : nullptr;
  obs::Counter* topologies =
      registry != nullptr ? registry->counter("planner.topologies") : nullptr;
  for (int i = 0; i < kTopologiesPerConfig; ++i) {
    auto topo = GenerateRandomTopology(options, &rng);
    PPA_CHECK_OK(topo.status());
    obs::Add(topologies);
    for (size_t c = 0; c < std::size(kConsumptions); ++c) {
      const int budget = static_cast<int>(kConsumptions[c] *
                                              topo->num_tasks() + 0.5);
      auto sa_plan = sa.Plan(*topo, budget);
      auto greedy_plan = greedy.Plan(*topo, budget);
      PPA_CHECK_OK(sa_plan.status());
      PPA_CHECK_OK(greedy_plan.status());
      means[c].sa += sa_plan->output_fidelity;
      means[c].greedy += greedy_plan->output_fidelity;
      obs::Observe(sa_of, sa_plan->output_fidelity);
      obs::Observe(greedy_of, greedy_plan->output_fidelity);
    }
  }
  for (MeanOf& m : means) {
    m.sa /= kTopologiesPerConfig;
    m.greedy /= kTopologiesPerConfig;
  }
  return means;
}

void Panel(const char* title, const char* label_a, const char* label_b,
           const RandomTopologyOptions& a, const RandomTopologyOptions& b,
           uint64_t seed, bench::BenchMetricsSink* sink) {
  std::printf("%s\n", title);
  std::printf("%-12s %12s %12s %12s %12s\n", "consumption",
              (std::string("SA-") + label_a).c_str(),
              (std::string("Greedy-") + label_a).c_str(),
              (std::string("SA-") + label_b).c_str(),
              (std::string("Greedy-") + label_b).c_str());
  obs::MetricsRegistry registry_a;
  obs::MetricsRegistry registry_b;
  const auto means_a =
      Sweep(a, seed, sink->enabled() ? &registry_a : nullptr);
  const auto means_b =
      Sweep(b, seed + 1, sink->enabled() ? &registry_b : nullptr);
  sink->Add(label_a, obs::MetricsToJson(registry_a));
  sink->Add(label_b, obs::MetricsToJson(registry_b));
  for (size_t c = 0; c < std::size(kConsumptions); ++c) {
    std::printf("%-12.2f %12.3f %12.3f %12.3f %12.3f\n", kConsumptions[c],
                means_a[c].sa, means_a[c].greedy, means_b[c].sa,
                means_b[c].greedy);
  }
  std::printf("\n");
}

RandomTopologyOptions Base() {
  RandomTopologyOptions options;
  options.min_operators = 5;
  options.max_operators = 10;
  options.min_parallelism = 1;
  options.max_parallelism = 10;
  options.kind = RandomTopologyOptions::Kind::kStructured;
  options.join_fraction = 0.0;
  options.skew = RandomTopologyOptions::WorkloadSkew::kUniform;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMetricsSink sink =
      bench::BenchMetricsSink::FromArgs(argc, argv);
  // Planner-only bench: accepts --chrome_trace_out for tooling uniformity
  // and writes an empty (but valid) trace.
  bench::ChromeTraceSink traces =
      bench::ChromeTraceSink::FromArgs(argc, argv);

  std::printf(
      "Figure 14: SA vs Greedy output fidelity on 100 random topologies "
      "per configuration\n\n");

  // (a) Workload skewness.
  RandomTopologyOptions zipf = Base();
  zipf.skew = RandomTopologyOptions::WorkloadSkew::kZipf;
  zipf.zipf_s = 0.1;
  Panel("Figure 14(a): workload skew (Zipf s=0.1 vs uniform)", "zipf",
        "uniform", zipf, Base(), /*seed=*/100, &sink);

  // (b) Degree of parallelization.
  RandomTopologyOptions high = Base();
  high.min_parallelism = 10;
  high.max_parallelism = 20;
  RandomTopologyOptions low = Base();
  low.min_parallelism = 1;
  low.max_parallelism = 10;
  Panel("Figure 14(b): parallelism (10-20 vs 1-10)", "para10-20",
        "para1-10", high, low, /*seed=*/200, &sink);

  // (c) Structured vs full topologies.
  RandomTopologyOptions structured = Base();
  RandomTopologyOptions full = Base();
  full.kind = RandomTopologyOptions::Kind::kFull;
  Panel("Figure 14(c): structured vs full partitioning", "structure",
        "full", structured, full, /*seed=*/300, &sink);

  // (d) Fraction of join operators.
  RandomTopologyOptions no_join = Base();
  RandomTopologyOptions half_join = Base();
  half_join.join_fraction = 0.5;
  Panel("Figure 14(d): join fraction (0 vs 50%)", "nojoin", "join50",
        no_join, half_join, /*seed=*/400, &sink);

  std::printf(
      "Expected shape (paper): SA >= Greedy everywhere, with the largest "
      "gap at small\nbudgets; skew raises SA's OF; structured topologies "
      "score higher than full ones;\nmore joins lower OF.\n");
  sink.Write("fig14_random_topologies");
  traces.Write();
  return 0;
}
