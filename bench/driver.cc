#include "bench/driver.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/thread_pool.h"

namespace ppa {
namespace bench {

Driver Driver::FromArgs(int* argc, char** argv) {
  Driver driver;
  std::string metrics_path;
  std::string trace_path;
  std::string flight_path;
  std::string jobs_value;
  std::string seed_value;
  std::string commit_value;
  std::string backend_value;
  std::string mode_value;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    auto match = [&](std::string_view flag, std::string* out) {
      if (arg.size() > flag.size() + 1 &&
          arg.substr(0, flag.size()) == flag && arg[flag.size()] == '=') {
        *out = std::string(arg.substr(flag.size() + 1));
        return true;
      }
      if (arg == flag && i + 1 < *argc) {
        *out = argv[++i];
        return true;
      }
      return false;
    };
    if (match("--metrics_out", &metrics_path) ||
        match("--chrome_trace_out", &trace_path) ||
        match("--flight_record_out", &flight_path)) {
      continue;
    }
    if (arg == "--progress") {
      driver.progress_ = true;
      continue;
    }
    if (match("--jobs", &jobs_value)) {
      driver.jobs_ = static_cast<int>(
          std::strtol(jobs_value.c_str(), nullptr, 10));
      continue;
    }
    if (match("--seed", &seed_value)) {
      driver.has_seed_ = true;
      driver.seed_ = std::strtoull(seed_value.c_str(), nullptr, 10);
      continue;
    }
    if (match("--commit", &commit_value)) {
      driver.commit_ = commit_value;
      continue;
    }
    if (match("--backend", &backend_value)) {
      StatusOr<backend::BackendKind> kind =
          backend::ParseBackendKind(backend_value);
      if (!kind.ok()) {
        std::fprintf(stderr, "--backend: %s\n",
                     kind.status().ToString().c_str());
        std::exit(2);
      }
      driver.backend_ = *kind;
      continue;
    }
    if (match("--recovery_mode", &mode_value)) {
      StatusOr<af::RecoveryMode> mode =
          af::RecoveryModeFromString(mode_value);
      if (!mode.ok()) {
        std::fprintf(stderr, "--recovery_mode: %s\n",
                     mode.status().ToString().c_str());
        std::exit(2);
      }
      driver.recovery_mode_ = *mode;
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  if (driver.jobs_ <= 0) {
    driver.jobs_ = ThreadPool::DefaultParallelism();
  }
  driver.metrics_ = BenchMetricsSink(metrics_path);
  driver.traces_ = ChromeTraceSink(trace_path);
  driver.flight_ = FlightRecordSink(flight_path);
  return driver;
}

exp::ProgressMeter* Driver::StartProgress(int total, std::string label) {
  if (!progress_) {
    return nullptr;
  }
  meter_ = std::make_unique<exp::ProgressMeter>();
  meter_->set_sink(
      [total, label = std::move(label)](exp::ProgressMeter::Snapshot s) {
        std::fprintf(stderr, "%s %d/%d done (%d failed)\n", label.c_str(),
                     s.done, total, s.failed);
      });
  return meter_.get();
}

void Driver::StampBenchReport(JsonValue* report,
                              std::string_view suite) const {
  report->Set("schema_version", kBenchSchemaVersion);
  report->Set("suite", std::string(suite));
  report->Set("commit", commit_);
  report->Set("backend", backend_name());
  report->Set("recovery_mode", recovery_mode_name());
}

exp::ParallelRunner& Driver::runner() {
  if (runner_ == nullptr) {
    exp::ParallelRunnerOptions options;
    options.jobs = jobs_;
    runner_ = std::make_unique<exp::ParallelRunner>(options);
  }
  return *runner_;
}

int Driver::Finish(std::string_view benchmark) {
  bool ok = metrics_.Write(benchmark);
  ok = traces_.Write() && ok;
  ok = flight_.Write() && ok;
  return ok ? 0 : 1;
}

}  // namespace bench
}  // namespace ppa
