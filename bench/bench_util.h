#ifndef PPA_BENCH_BENCH_UTIL_H_
#define PPA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "backend/execution_backend.h"
#include "common/status_or.h"
#include "obs/chrome_trace.h"
#include "obs/export.h"
#include "report/json.h"
#include "runtime/streaming_job.h"
#include "topology/task_set.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace bench {

/// Recovery cost model calibrated so the simulated latencies land in the
/// same range as the paper's EC2 measurements (see EXPERIMENTS.md):
/// a recovering task reprocesses ~2000 tuples/s, restarting on a standby
/// node costs ~1s, and neighbouring recoveries synchronize with a 250 ms
/// handshake.
inline RecoveryCostModel PaperCostModel() {
  return JobConfig::CheckpointDefaults().recovery;
}

/// Job configuration matching the paper's cluster setup: 5 s heartbeat
/// failure detection, 1 s batches (= the 1 s sliding step), 19 worker
/// nodes (4 source + 15 processing) and 15 standby nodes, CPU cost model
/// calibrated to reproduce Fig. 9's checkpoint-to-processing ratios.
inline JobConfig PaperJobConfig(FtMode mode) {
  JobConfig config = JobConfig::CheckpointDefaults();
  config.ft_mode = mode;
  return config;
}

/// One recovery experiment on the Fig. 6 workload.
struct Fig6Result {
  Duration total_latency;
  Duration active_latency;
  Duration passive_latency;
  /// Checkpoint CPU / processing CPU ratio, averaged over the synthetic
  /// tasks (Fig. 9).
  double checkpoint_cpu_ratio = 0.0;
  /// Metrics snapshot of the run (obs::MetricsToJson); the last
  /// repetition's snapshot when RunFig6 averages over several.
  JsonValue metrics;
  /// Chrome/Perfetto Trace Event Format document of the run (the last
  /// repetition's when averaging). Load in chrome://tracing or
  /// https://ui.perfetto.dev.
  JsonValue chrome_trace;
  /// OF/IC fidelity timeseries sampled during tentative windows
  /// (obs::FidelityTimeseriesToJson; empty array without failures).
  JsonValue fidelity;
};

/// Collects labeled metrics snapshots from benchmark runs and writes them
/// as one JSON document. Constructed with an empty path (the default when
/// the binary was invoked without `--metrics_out`, see bench::Driver),
/// every call is a no-op, so benchmark output is unchanged.
class BenchMetricsSink {
 public:
  BenchMetricsSink() = default;
  explicit BenchMetricsSink(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  /// Records one labeled snapshot (drop-in for a Fig6Result::metrics or
  /// any obs::MetricsToJson / obs::RunProfileToJson value).
  void Add(std::string label, JsonValue snapshot) {
    if (!enabled()) {
      return;
    }
    JsonValue run = JsonValue::Object();
    run.Set("label", std::move(label));
    run.Set("metrics", std::move(snapshot));
    runs_.Append(std::move(run));
  }

  /// Convenience: snapshot a live job's registry.
  void Add(std::string label, const StreamingJob& job) {
    if (enabled()) {
      Add(std::move(label), obs::MetricsToJson(job.metrics()));
    }
  }

  /// Records one labeled snapshot together with its fidelity timeseries
  /// (stored under "fidelity_timeseries" beside "metrics").
  void Add(std::string label, JsonValue snapshot, JsonValue fidelity) {
    if (!enabled()) {
      return;
    }
    JsonValue run = JsonValue::Object();
    run.Set("label", std::move(label));
    run.Set("metrics", std::move(snapshot));
    run.Set("fidelity_timeseries", std::move(fidelity));
    runs_.Append(std::move(run));
  }

  /// Writes {"benchmark":...,"runs":[...]} to the configured path.
  /// Returns false (after printing to stderr) if the file cannot be
  /// written; true otherwise, including when disabled.
  bool Write(std::string_view benchmark) {
    if (!enabled()) {
      return true;
    }
    JsonValue doc = JsonValue::Object();
    doc.Set("benchmark", std::string(benchmark));
    doc.Set("runs", std::move(runs_));
    runs_ = JsonValue::Array();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics to %s\n", path_.c_str());
      return false;
    }
    const std::string text = doc.Pretty();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("metrics snapshot written to %s\n", path_.c_str());
    return true;
  }

 private:
  std::string path_;
  JsonValue runs_ = JsonValue::Array();
};

/// Captures one Chrome/Perfetto trace from a benchmark run and writes it
/// to the configured path. One Trace Event document holds one timeline,
/// so the first captured run wins; constructed with an empty path (no
/// `--chrome_trace_out` flag, see bench::Driver) every call is a no-op.
/// Write() falls back to an empty (but valid) trace when no run captured
/// anything, so the flag always produces a loadable file.
class ChromeTraceSink {
 public:
  ChromeTraceSink() = default;
  explicit ChromeTraceSink(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }
  bool captured() const { return captured_; }

  /// Keeps `trace` (a Fig6Result::chrome_trace or
  /// obs::ChromeTraceToJson value) if none was captured yet.
  void Capture(JsonValue trace) {
    if (enabled() && !captured_) {
      trace_ = std::move(trace);
      captured_ = true;
    }
  }

  /// Writes the captured trace (or an empty valid one) to the configured
  /// path. Returns false after printing to stderr on filesystem errors;
  /// true otherwise, including when disabled.
  bool Write() {
    if (!enabled()) {
      return true;
    }
    if (!captured_) {
      trace_ = obs::EmptyChromeTrace();
    }
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write chrome trace to %s\n",
                   path_.c_str());
      return false;
    }
    const std::string text = trace_.Pretty();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("chrome trace written to %s (load in chrome://tracing or "
                "https://ui.perfetto.dev)\n",
                path_.c_str());
    return true;
  }

 private:
  std::string path_;
  bool captured_ = false;
  JsonValue trace_;
};

/// Captures one flight-record dump (a report::JobFlightRecordToJson /
/// obs::FlightRecordToJson value) and writes it to the configured path.
/// Mirrors ChromeTraceSink: one document holds one post-mortem, so the
/// first captured run wins; constructed with an empty path (no
/// `--flight_record_out` flag, see bench::Driver) every call is a no-op,
/// and Write() falls back to a valid empty record so the flag always
/// produces a parseable file.
class FlightRecordSink {
 public:
  FlightRecordSink() = default;
  explicit FlightRecordSink(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }
  bool captured() const { return captured_; }

  /// Keeps `record` if none was captured yet.
  void Capture(JsonValue record) {
    if (enabled() && !captured_) {
      record_ = std::move(record);
      captured_ = true;
    }
  }

  /// Writes the captured record (or an empty valid one) to the
  /// configured path. Returns false after printing to stderr on
  /// filesystem errors; true otherwise, including when disabled.
  bool Write() {
    if (!enabled()) {
      return true;
    }
    if (!captured_) {
      record_ = JsonValue::Object();
      record_.Set("capacity", 0);
      record_.Set("dropped", 0);
      record_.Set("recorded", 0);
      record_.Set("events", JsonValue::Array());
    }
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write flight record to %s\n",
                   path_.c_str());
      return false;
    }
    const std::string text = record_.Pretty();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("flight record written to %s\n", path_.c_str());
    return true;
  }

 private:
  std::string path_;
  bool captured_ = false;
  JsonValue record_;
};

/// Chrome/Perfetto trace of a live job, with task ids labeled through
/// the job's topology (drop-in argument for ChromeTraceSink::Capture).
inline JsonValue JobChromeTrace(const StreamingJob& job) {
  const Topology* topo = &job.topology();
  return obs::ChromeTraceToJson(job.trace(), &job.spans(),
                                [topo](int64_t t) {
                                  if (t < 0 || t >= topo->num_tasks()) {
                                    return std::to_string(t);
                                  }
                                  return topo->TaskLabel(
                                      static_cast<TaskId>(t));
                                });
}

struct Fig6Options {
  FtMode mode = FtMode::kCheckpoint;
  /// Per-source-task rate (the paper's 1000 / 2000 tuples/s).
  double rate_per_task = 1000.0;
  /// Window interval in batches (the paper's 10 s / 30 s).
  int64_t window_batches = 10;
  Duration checkpoint_interval = Duration::Seconds(15);
  Duration replica_sync_interval = Duration::Seconds(5);
  /// Correlated failure (all 15 synthetic nodes) vs a single node.
  bool correlated = false;
  /// Which synthetic node index (0..14) fails in the single-node case.
  int single_node_index = 4;
  /// PPA: subset of tasks with active replicas (nullptr = per mode).
  const TaskSet* active_set = nullptr;
  double fail_at_seconds = 40.0;
  double run_for_seconds = 70.0;
  /// Skip the failure entirely (Fig. 9 measures steady-state CPU).
  bool inject_failure = true;
  /// Latencies are averaged over this many failure instants spread across
  /// the technique's relevant period (checkpoint age / replica sync age is
  /// otherwise sampled at a single arbitrary phase).
  int repetitions = 3;
  /// Execution substrate the experiment runs on (bench::Driver's
  /// --backend flag; virtual-time results are backend-independent by the
  /// parity contract, but wall-clock cost is not).
  backend::BackendKind backend = backend::BackendKind::kSim;
};

namespace internal {

/// Runs one instance of the Fig. 6 experiment with a fixed failure time.
inline StatusOr<Fig6Result> RunFig6Once(const Fig6Options& options) {
  PPA_ASSIGN_OR_RETURN(
      SyntheticRecoveryWorkload workload,
      MakeSyntheticRecoveryWorkload(options.rate_per_task,
                                    options.window_batches));
  std::unique_ptr<backend::ExecutionBackend> be =
      backend::MakeBackend(options.backend);
  JobConfig config = PaperJobConfig(options.mode);
  config.checkpoint_interval = options.checkpoint_interval;
  config.replica_sync_interval = options.replica_sync_interval;
  config.window_batches = options.window_batches;
  StreamingJob job(workload.topo, config, JobRuntimeDeps(be.get()));
  PPA_RETURN_IF_ERROR(BindSyntheticRecoveryWorkload(workload, &job));
  PPA_ASSIGN_OR_RETURN(std::vector<int> synthetic_nodes,
                       PlaceSyntheticRecoveryWorkload(workload, &job));
  if (options.active_set != nullptr) {
    PPA_RETURN_IF_ERROR(job.SetActiveReplicaSet(*options.active_set));
  }
  PPA_RETURN_IF_ERROR(job.Start());
  be->RunUntil(TimePoint::Zero() +
               Duration::Seconds(options.fail_at_seconds));
  if (options.inject_failure) {
    if (options.correlated) {
      for (int node : synthetic_nodes) {
        PPA_RETURN_IF_ERROR(job.InjectNodeFailure(node));
      }
    } else {
      PPA_RETURN_IF_ERROR(job.InjectNodeFailure(
          synthetic_nodes[static_cast<size_t>(options.single_node_index)]));
    }
  }
  be->RunUntil(TimePoint::Zero() +
               Duration::Seconds(options.run_for_seconds));

  Fig6Result result;
  if (options.inject_failure) {
    if (job.recovery_reports().empty()) {
      return Internal("no recovery report produced");
    }
    const RecoveryReport& report = job.recovery_reports()[0];
    result.total_latency = report.TotalLatency();
    result.active_latency = report.ActiveLatency();
    result.passive_latency = report.PassiveLatency();
  }
  double ratio = 0.0;
  int counted = 0;
  for (OperatorId op : {workload.o1, workload.o2, workload.o3, workload.o4}) {
    for (TaskId t : workload.topo.op(op).tasks) {
      if (job.ProcessingCostUs(t) > 0) {
        ratio += job.CheckpointCostUs(t) / job.ProcessingCostUs(t);
        ++counted;
      }
    }
  }
  result.checkpoint_cpu_ratio = counted > 0 ? ratio / counted : 0.0;
  result.metrics = obs::MetricsToJson(job.metrics());
  result.chrome_trace = JobChromeTrace(job);
  const Topology* topo = &job.topology();
  result.fidelity = obs::FidelityTimeseriesToJson(
      job.fidelity_timeseries(), [topo](int64_t t) {
        if (t < 0 || t >= topo->num_tasks()) {
          return std::to_string(t);
        }
        return topo->TaskLabel(static_cast<TaskId>(t));
      });
  return result;
}

}  // namespace internal

/// Runs the Fig. 6 synthetic recovery workload, averaging the latencies
/// over `repetitions` failure phases.
inline StatusOr<Fig6Result> RunFig6(const Fig6Options& options) {
  if (!options.inject_failure || options.repetitions <= 1) {
    return internal::RunFig6Once(options);
  }
  // The period whose phase matters for this technique.
  Duration period = options.checkpoint_interval;
  if (options.mode == FtMode::kActiveReplication) {
    period = options.replica_sync_interval;
  } else if (options.mode == FtMode::kSourceReplay) {
    period = Duration::Seconds(5);  // Detection interval.
  }
  Fig6Result avg;
  double total = 0, active = 0, passive = 0, ratio = 0;
  for (int k = 0; k < options.repetitions; ++k) {
    Fig6Options rep = options;
    rep.fail_at_seconds = options.fail_at_seconds +
                          period.seconds() * (k + 0.33) /
                              options.repetitions;
    rep.run_for_seconds = options.run_for_seconds + period.seconds();
    PPA_ASSIGN_OR_RETURN(Fig6Result one, internal::RunFig6Once(rep));
    total += one.total_latency.seconds();
    active += one.active_latency.seconds();
    passive += one.passive_latency.seconds();
    ratio += one.checkpoint_cpu_ratio;
    avg.metrics = std::move(one.metrics);
    avg.chrome_trace = std::move(one.chrome_trace);
    avg.fidelity = std::move(one.fidelity);
  }
  const double n = options.repetitions;
  avg.total_latency = Duration::Seconds(total / n);
  avg.active_latency = Duration::Seconds(active / n);
  avg.passive_latency = Duration::Seconds(passive / n);
  avg.checkpoint_cpu_ratio = ratio / n;
  return avg;
}

/// Prints a markdown-ish table separator line for `widths`.
inline void PrintRule(const std::vector<int>& widths) {
  for (int w : widths) {
    std::printf("+");
    for (int i = 0; i < w + 2; ++i) {
      std::printf("-");
    }
  }
  std::printf("+\n");
}

}  // namespace bench
}  // namespace ppa

#endif  // PPA_BENCH_BENCH_UTIL_H_
