// Ablation A1: cost of MC-tree enumeration and of the three planners as
// the topology grows. The DP planner's exponential blow-up (Sec. IV-A) is
// the reason the structure-aware heuristic exists; this microbenchmark
// quantifies it. Uses google-benchmark.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "fidelity/mc_tree.h"
#include "planner/dp_planner.h"
#include "planner/greedy_planner.h"
#include "planner/structure_aware_planner.h"
#include "topology/random_topology.h"

namespace ppa {
namespace {

/// Deterministic topology for a given (operators, parallelism) size class.
Topology MakeTopology(int num_operators, int max_parallelism) {
  RandomTopologyOptions options;
  options.min_operators = num_operators;
  options.max_operators = num_operators;
  options.min_parallelism = 1;
  options.max_parallelism = max_parallelism;
  options.join_fraction = 0.5;
  Rng rng(1234);
  auto topo = GenerateRandomTopology(options, &rng);
  PPA_CHECK_OK(topo.status());
  return *std::move(topo);
}

void BM_EnumerateMcTrees(benchmark::State& state) {
  Topology topo = MakeTopology(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto trees = EnumerateMcTrees(topo);
    PPA_CHECK_OK(trees.status());
    benchmark::DoNotOptimize(trees->size());
  }
  state.counters["tasks"] = topo.num_tasks();
}
BENCHMARK(BM_EnumerateMcTrees)
    ->Args({4, 3})
    ->Args({6, 3})
    ->Args({8, 4})
    ->Args({10, 6});

void BM_DpPlanner(benchmark::State& state) {
  Topology topo = MakeTopology(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  const int budget = topo.num_tasks() / 2;
  DpPlanner planner;
  for (auto _ : state) {
    auto plan = planner.Plan(topo, budget);
    PPA_CHECK_OK(plan.status());
    benchmark::DoNotOptimize(plan->output_fidelity);
  }
  state.counters["tasks"] = topo.num_tasks();
}
BENCHMARK(BM_DpPlanner)->Args({4, 3})->Args({6, 3})->Args({8, 4});

void BM_StructureAwarePlanner(benchmark::State& state) {
  Topology topo = MakeTopology(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  const int budget = topo.num_tasks() / 2;
  StructureAwarePlanner planner;
  for (auto _ : state) {
    auto plan = planner.Plan(topo, budget);
    PPA_CHECK_OK(plan.status());
    benchmark::DoNotOptimize(plan->output_fidelity);
  }
  state.counters["tasks"] = topo.num_tasks();
}
BENCHMARK(BM_StructureAwarePlanner)
    ->Args({4, 3})
    ->Args({6, 3})
    ->Args({8, 4})
    ->Args({10, 6})
    ->Args({10, 16});

void BM_GreedyPlanner(benchmark::State& state) {
  Topology topo = MakeTopology(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  const int budget = topo.num_tasks() / 2;
  GreedyPlanner planner;
  for (auto _ : state) {
    auto plan = planner.Plan(topo, budget);
    PPA_CHECK_OK(plan.status());
    benchmark::DoNotOptimize(plan->output_fidelity);
  }
  state.counters["tasks"] = topo.num_tasks();
}
BENCHMARK(BM_GreedyPlanner)
    ->Args({4, 3})
    ->Args({6, 3})
    ->Args({8, 4})
    ->Args({10, 6})
    ->Args({10, 16});

}  // namespace
}  // namespace ppa

BENCHMARK_MAIN();
