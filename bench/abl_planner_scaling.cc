// Ablation A1: cost of MC-tree enumeration and of the three planners as
// the topology grows. The DP planner's exponential blow-up (Sec. IV-A) is
// the reason the structure-aware heuristic exists; this microbenchmark
// quantifies it. Uses google-benchmark.

#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "fidelity/mc_tree.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "planner/dp_planner.h"
#include "planner/greedy_planner.h"
#include "planner/structure_aware_planner.h"
#include "topology/random_topology.h"

namespace ppa {
namespace {

/// Deterministic topology for a given (operators, parallelism) size class.
Topology MakeTopology(int num_operators, int max_parallelism) {
  RandomTopologyOptions options;
  options.min_operators = num_operators;
  options.max_operators = num_operators;
  options.min_parallelism = 1;
  options.max_parallelism = max_parallelism;
  options.join_fraction = 0.5;
  Rng rng(1234);
  auto topo = GenerateRandomTopology(options, &rng);
  PPA_CHECK_OK(topo.status());
  return *std::move(topo);
}

void BM_EnumerateMcTrees(benchmark::State& state) {
  Topology topo = MakeTopology(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto trees = EnumerateMcTrees(topo);
    PPA_CHECK_OK(trees.status());
    benchmark::DoNotOptimize(trees->size());
  }
  state.counters["tasks"] = topo.num_tasks();
}
BENCHMARK(BM_EnumerateMcTrees)
    ->Args({4, 3})
    ->Args({6, 3})
    ->Args({8, 4})
    ->Args({10, 6});

void BM_DpPlanner(benchmark::State& state) {
  Topology topo = MakeTopology(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  const int budget = topo.num_tasks() / 2;
  DpPlanner planner;
  for (auto _ : state) {
    auto plan = planner.Plan(topo, budget);
    PPA_CHECK_OK(plan.status());
    benchmark::DoNotOptimize(plan->output_fidelity);
  }
  state.counters["tasks"] = topo.num_tasks();
}
BENCHMARK(BM_DpPlanner)->Args({4, 3})->Args({6, 3})->Args({8, 4});

void BM_StructureAwarePlanner(benchmark::State& state) {
  Topology topo = MakeTopology(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  const int budget = topo.num_tasks() / 2;
  StructureAwarePlanner planner;
  for (auto _ : state) {
    auto plan = planner.Plan(topo, budget);
    PPA_CHECK_OK(plan.status());
    benchmark::DoNotOptimize(plan->output_fidelity);
  }
  state.counters["tasks"] = topo.num_tasks();
}
BENCHMARK(BM_StructureAwarePlanner)
    ->Args({4, 3})
    ->Args({6, 3})
    ->Args({8, 4})
    ->Args({10, 6})
    ->Args({10, 16});

void BM_GreedyPlanner(benchmark::State& state) {
  Topology topo = MakeTopology(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  const int budget = topo.num_tasks() / 2;
  GreedyPlanner planner;
  for (auto _ : state) {
    auto plan = planner.Plan(topo, budget);
    PPA_CHECK_OK(plan.status());
    benchmark::DoNotOptimize(plan->output_fidelity);
  }
  state.counters["tasks"] = topo.num_tasks();
}
BENCHMARK(BM_GreedyPlanner)
    ->Args({4, 3})
    ->Args({6, 3})
    ->Args({8, 4})
    ->Args({10, 6})
    ->Args({10, 16});

/// MC-tree counts and task counts per size class — the structural numbers
/// behind the timing curves (timings themselves come from google-benchmark,
/// e.g. via --benchmark_out).
void FillScalingMetrics(obs::MetricsRegistry* registry) {
  obs::Histogram* tasks = registry->histogram("planner.topology_tasks");
  obs::Histogram* trees = registry->histogram("planner.mc_trees");
  obs::Counter* size_classes = registry->counter("planner.size_classes");
  const int sizes[][2] = {{4, 3}, {6, 3}, {8, 4}, {10, 6}, {10, 16}};
  for (const auto& size : sizes) {
    Topology topo = MakeTopology(size[0], size[1]);
    obs::Add(size_classes);
    obs::Observe(tasks, static_cast<double>(topo.num_tasks()));
    auto enumerated = EnumerateMcTrees(topo);
    if (enumerated.ok()) {
      obs::Observe(trees, static_cast<double>(enumerated->size()));
    }
  }
}

}  // namespace
}  // namespace ppa

int main(int argc, char** argv) {
  ppa::bench::BenchMetricsSink sink =
      ppa::bench::BenchMetricsSink::FromArgs(argc, argv);
  // Planner-only bench: accepts --chrome_trace_out for tooling uniformity
  // and writes an empty (but valid) trace.
  ppa::bench::ChromeTraceSink traces =
      ppa::bench::ChromeTraceSink::FromArgs(argc, argv);
  // google-benchmark rejects flags it does not know; strip ours first.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, 13) == "--metrics_out" ||
        arg.substr(0, 18) == "--chrome_trace_out") {
      if ((arg == "--metrics_out" || arg == "--chrome_trace_out") &&
          i + 1 < argc) {
        ++i;
      }
      continue;
    }
    args.push_back(argv[i]);
  }
  int benchmark_argc = static_cast<int>(args.size());
  benchmark::Initialize(&benchmark_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(benchmark_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (sink.enabled()) {
    ppa::obs::MetricsRegistry registry;
    ppa::FillScalingMetrics(&registry);
    sink.Add("size_classes", ppa::obs::MetricsToJson(registry));
    sink.Write("abl_planner_scaling");
  }
  traces.Write();
  return 0;
}
