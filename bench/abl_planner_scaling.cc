// Ablation A1: cost of MC-tree enumeration and of the three planners as
// the topology grows. The DP planner's exponential blow-up (Sec. IV-A) is
// the reason the structure-aware heuristic exists; this microbenchmark
// quantifies it. Uses google-benchmark.

#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "bench/driver.h"
#include "common/random.h"
#include "fidelity/mc_tree.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "planner/dp_planner.h"
#include "planner/greedy_planner.h"
#include "planner/structure_aware_planner.h"
#include "topology/random_topology.h"

namespace ppa {
namespace {

/// Deterministic topology for a given (operators, parallelism) size class.
Topology MakeTopology(int num_operators, int max_parallelism) {
  RandomTopologyOptions options;
  options.min_operators = num_operators;
  options.max_operators = num_operators;
  options.min_parallelism = 1;
  options.max_parallelism = max_parallelism;
  options.join_fraction = 0.5;
  Rng rng(1234);
  auto topo = GenerateRandomTopology(options, &rng);
  PPA_CHECK_OK(topo.status());
  return *std::move(topo);
}

void BM_EnumerateMcTrees(benchmark::State& state) {
  Topology topo = MakeTopology(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto trees = EnumerateMcTrees(topo);
    PPA_CHECK_OK(trees.status());
    benchmark::DoNotOptimize(trees->size());
  }
  state.counters["tasks"] = topo.num_tasks();
}
BENCHMARK(BM_EnumerateMcTrees)
    ->Args({4, 3})
    ->Args({6, 3})
    ->Args({8, 4})
    ->Args({10, 6});

void BM_DpPlanner(benchmark::State& state) {
  Topology topo = MakeTopology(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  const int budget = topo.num_tasks() / 2;
  DpPlanner planner;
  for (auto _ : state) {
    auto plan = planner.Plan(PlanRequest(topo, budget));
    PPA_CHECK_OK(plan.status());
    benchmark::DoNotOptimize(plan->output_fidelity);
  }
  state.counters["tasks"] = topo.num_tasks();
}
BENCHMARK(BM_DpPlanner)->Args({4, 3})->Args({6, 3})->Args({8, 4});

void BM_StructureAwarePlanner(benchmark::State& state) {
  Topology topo = MakeTopology(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  const int budget = topo.num_tasks() / 2;
  StructureAwarePlanner planner;
  for (auto _ : state) {
    auto plan = planner.Plan(PlanRequest(topo, budget));
    PPA_CHECK_OK(plan.status());
    benchmark::DoNotOptimize(plan->output_fidelity);
  }
  state.counters["tasks"] = topo.num_tasks();
}
BENCHMARK(BM_StructureAwarePlanner)
    ->Args({4, 3})
    ->Args({6, 3})
    ->Args({8, 4})
    ->Args({10, 6})
    ->Args({10, 16});

void BM_GreedyPlanner(benchmark::State& state) {
  Topology topo = MakeTopology(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  const int budget = topo.num_tasks() / 2;
  GreedyPlanner planner;
  for (auto _ : state) {
    auto plan = planner.Plan(PlanRequest(topo, budget));
    PPA_CHECK_OK(plan.status());
    benchmark::DoNotOptimize(plan->output_fidelity);
  }
  state.counters["tasks"] = topo.num_tasks();
}
BENCHMARK(BM_GreedyPlanner)
    ->Args({4, 3})
    ->Args({6, 3})
    ->Args({8, 4})
    ->Args({10, 6})
    ->Args({10, 16});

/// MC-tree counts and task counts per size class — the structural numbers
/// behind the timing curves (timings themselves come from google-benchmark,
/// e.g. via --benchmark_out).
void FillScalingMetrics(obs::MetricsRegistry* registry) {
  obs::Histogram* tasks = registry->histogram("planner.topology_tasks");
  obs::Histogram* trees = registry->histogram("planner.mc_trees");
  obs::Counter* size_classes = registry->counter("planner.size_classes");
  const int sizes[][2] = {{4, 3}, {6, 3}, {8, 4}, {10, 6}, {10, 16}};
  for (const auto& size : sizes) {
    Topology topo = MakeTopology(size[0], size[1]);
    obs::Add(size_classes);
    obs::Observe(tasks, static_cast<double>(topo.num_tasks()));
    auto enumerated = EnumerateMcTrees(topo);
    if (enumerated.ok()) {
      obs::Observe(trees, static_cast<double>(enumerated->size()));
    }
  }
}

}  // namespace
}  // namespace ppa

int main(int argc, char** argv) {
  // Timing microbenchmark: google-benchmark owns the execution (always
  // serial — wall-clock timings must not share cores), but the shared
  // driver still strips the common flags it would otherwise reject
  // (--jobs is accepted and ignored) and owns the sinks.
  // Planner-only bench: accepts --chrome_trace_out for tooling uniformity
  // and writes an empty (but valid) trace.
  ppa::bench::Driver driver = ppa::bench::Driver::FromArgs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (driver.metrics().enabled()) {
    ppa::obs::MetricsRegistry registry;
    ppa::FillScalingMetrics(&registry);
    driver.metrics().Add("size_classes",
                         ppa::obs::MetricsToJson(registry));
  }
  return driver.Finish("abl_planner_scaling");
}
