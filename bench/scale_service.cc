// Service scalability: N concurrent tenant jobs x M tasks per job on one
// shared cluster, with a correlated domain failure mid-run. Measures the
// simulator's throughput (processed events per wall second) and the
// sim-time/wall-time ratio as the multi-tenant ClusterService scales, and
// emits the repo's first BENCH_*.json so later PRs can track the perf
// trajectory.
//
// Usage: scale_service [--out <file>] [shared driver flags]
//   --out <file>  where to write the JSON report
//                 (default BENCH_scale_service.json)
//
// Cells run sequentially regardless of --jobs: each cell is wall-timed,
// and concurrent cells would contend and skew each other's clocks.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "backend/execution_backend.h"
#include "bench/driver.h"
#include "common/wall_clock.h"
#include "report/experiment_report.h"
#include "service/cluster_service.h"

namespace {

using namespace ppa;

constexpr double kSimSeconds = 120.0;
constexpr double kFailureAtSeconds = 30.0;

/// A chain of `tasks` single-task operators (the sweep varies job size,
/// not shape).
std::string ChainSpec(int tasks) {
  std::string spec = "operator op0 1 rate=100\n";
  for (int i = 1; i < tasks; ++i) {
    spec += "operator op" + std::to_string(i) + " 1\n";
    spec += "edge op" + std::to_string(i - 1) + " op" + std::to_string(i) +
            " one-to-one\n";
  }
  return spec;
}

struct Cell {
  int tenants = 0;
  int tasks_per_tenant = 0;
  int64_t events_processed = 0;
  int64_t sink_records = 0;
  int64_t recoveries = 0;
  double wall_seconds = 0.0;
};

Cell RunCell(int tenants, int tasks_per_tenant,
             backend::BackendKind backend_kind) {
  const int total_tasks = tenants * tasks_per_tenant;
  service::ServiceConfig config;
  config.worker_slots_per_node = 4;
  config.standby_slots_per_node = 4;
  config.num_worker_nodes = (total_tasks + 3) / 4 + 2;
  config.num_standby_nodes = (tenants + 3) / 4 + 1;

  // The sim/wall ratio is the benchmark output; WallClockSeconds is the
  // allowlisted shim for exactly this meta-level measurement.
  const double wall_start = WallClockSeconds();
  std::unique_ptr<backend::ExecutionBackend> be =
      backend::MakeBackend(backend_kind);
  service::ClusterService svc(config, be.get());
  for (int node = 0; node < config.num_worker_nodes + config.num_standby_nodes;
       ++node) {
    PPA_CHECK_OK(svc.AssignDomain(node, node / 4));
  }
  for (int i = 0; i < tenants; ++i) {
    service::TenantSpec spec;
    spec.topology_spec = ChainSpec(tasks_per_tenant);
    spec.replica_budget = 1;
    spec.priority = i % 4;
    spec.initial_plan = {1};
    PPA_CHECK_OK(svc.Submit(std::move(spec)).status());
  }
  be->RunUntil(TimePoint::Zero() + Duration::Seconds(kFailureAtSeconds));
  PPA_CHECK_OK(svc.InjectDomainFailure(0));
  be->RunUntil(TimePoint::Zero() + Duration::Seconds(kSimSeconds));
  const double wall_end = WallClockSeconds();

  Cell cell;
  cell.tenants = tenants;
  cell.tasks_per_tenant = tasks_per_tenant;
  cell.events_processed = be->events_processed();
  for (int id : svc.TenantIds()) {
    const StreamingJob* job = svc.job(id);
    if (job != nullptr) {
      cell.sink_records += static_cast<int64_t>(job->sink_records().size());
      cell.recoveries += static_cast<int64_t>(job->recovery_reports().size());
    }
  }
  cell.wall_seconds = wall_end - wall_start;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppa;

  bench::Driver driver = bench::Driver::FromArgs(&argc, argv);
  std::string out_path = "BENCH_scale_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const int tenant_counts[] = {1, 4, 16};
  const int task_counts[] = {3, 6};

  std::printf("scale_service: %.0fs simulated, domain failure at %.0fs\n",
              kSimSeconds, kFailureAtSeconds);
  std::printf("%8s %6s %10s %12s %12s %10s\n", "tenants", "tasks", "events",
              "events/sec", "sim/wall", "wall (s)");

  JsonValue cells = JsonValue::Array();
  for (int tenants : tenant_counts) {
    for (int tasks : task_counts) {
      const Cell cell = RunCell(tenants, tasks, driver.backend_kind());
      const double events_per_sec =
          cell.wall_seconds > 0
              ? static_cast<double>(cell.events_processed) / cell.wall_seconds
              : 0.0;
      const double sim_wall_ratio =
          cell.wall_seconds > 0 ? kSimSeconds / cell.wall_seconds : 0.0;
      std::printf("%8d %6d %10lld %12.0f %12.1f %10.3f\n", cell.tenants,
                  cell.tasks_per_tenant,
                  static_cast<long long>(cell.events_processed),
                  events_per_sec, sim_wall_ratio, cell.wall_seconds);

      JsonValue entry = JsonValue::Object();
      // Part of the bench_diff cell key (see scale_cluster).
      entry.Set("backend", driver.backend_name());
      entry.Set("recovery_mode", driver.recovery_mode_name());
      entry.Set("tenants", cell.tenants);
      entry.Set("tasks_per_tenant", cell.tasks_per_tenant);
      entry.Set("total_tasks", cell.tenants * cell.tasks_per_tenant);
      entry.Set("sim_seconds", kSimSeconds);
      entry.Set("events_processed", cell.events_processed);
      entry.Set("sink_records", cell.sink_records);
      entry.Set("recoveries", cell.recoveries);
      entry.Set("wall_seconds", cell.wall_seconds);
      entry.Set("events_per_sec", events_per_sec);
      entry.Set("sim_wall_ratio", sim_wall_ratio);
      cells.Append(std::move(entry));
    }
  }

  JsonValue report = JsonValue::Object();
  driver.StampBenchReport(&report, "scale_service");
  report.Set("benchmark", std::string("scale_service"));
  report.Set("sim_seconds", kSimSeconds);
  report.Set("failure_at_seconds", kFailureAtSeconds);
  report.Set("cells", std::move(cells));
  const Status written = WriteJsonFile(out_path, report);
  if (!written.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("report written to %s\n", out_path.c_str());
  driver.metrics().Add("scale_service", std::move(report));
  return driver.Finish("scale_service");
}
