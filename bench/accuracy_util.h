#ifndef PPA_BENCH_ACCURACY_UTIL_H_
#define PPA_BENCH_ACCURACY_UTIL_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "backend/execution_backend.h"
#include "bench/bench_util.h"
#include "common/status_or.h"
#include "runtime/streaming_job.h"
#include "workloads/accuracy.h"

namespace ppa {
namespace bench {

/// How a tentative-accuracy experiment is run and evaluated.
struct AccuracyExperiment {
  /// Builds and binds a job on the given backend; must be repeatable.
  std::function<std::unique_ptr<StreamingJob>(backend::ExecutionBackend*)>
      make_job;
  /// Accuracy functional: (test records, reference records, from, to).
  std::function<double(const std::vector<SinkRecord>&,
                       const std::vector<SinkRecord>&, int64_t, int64_t)>
      accuracy;
  double fail_at_seconds = 25.2;
  double run_for_seconds = 110.0;
  /// Tentative-output measurement starts this many batches after detection
  /// (stale pre-failure window state keeps accuracy artificially high
  /// until it expires).
  int64_t stale_grace_batches = 16;
};

/// Outcome of one tentative-accuracy measurement. Carrying the failure
/// run's observability documents (instead of writing them to sinks
/// in-place) keeps the measurement free of shared state, so independent
/// measurements can run on parallel workers and be recorded in a
/// deterministic order afterwards.
struct AccuracyResult {
  /// Tentative accuracy over the measured window.
  double accuracy = 0.0;
  /// Metrics snapshot of the failure run (obs::MetricsToJson).
  JsonValue metrics;
  /// Chrome/Perfetto trace of the failure run (JobChromeTrace).
  JsonValue chrome_trace;
};

/// Measured tentative accuracy of `plan` under a correlated failure of
/// every primary (sources included), against a failure-free reference
/// run.
inline StatusOr<AccuracyResult> MeasureTentativeAccuracy(
    const AccuracyExperiment& experiment, const TaskSet& plan) {
  // Reference run.
  std::unique_ptr<backend::ExecutionBackend> clean_be =
      backend::MakeBackend(backend::BackendKind::kSim);
  std::unique_ptr<StreamingJob> clean = experiment.make_job(clean_be.get());
  PPA_RETURN_IF_ERROR(clean->Start());
  clean_be->RunUntil(TimePoint::Zero() +
                     Duration::Seconds(experiment.run_for_seconds));

  // Failure run.
  std::unique_ptr<backend::ExecutionBackend> be =
      backend::MakeBackend(backend::BackendKind::kSim);
  std::unique_ptr<StreamingJob> job = experiment.make_job(be.get());
  PPA_RETURN_IF_ERROR(job->SetActiveReplicaSet(plan));
  PPA_RETURN_IF_ERROR(job->Start());
  be->RunUntil(TimePoint::Zero() +
               Duration::Seconds(experiment.fail_at_seconds));
  PPA_RETURN_IF_ERROR(job->InjectCorrelatedFailure(/*include_sources=*/true));
  be->RunUntil(TimePoint::Zero() +
               Duration::Seconds(experiment.run_for_seconds));
  if (job->recovery_reports().empty()) {
    return Internal("no recovery report");
  }
  const RecoveryReport& report = job->recovery_reports()[0];
  const int64_t batch_us = job->config().batch_interval.micros();
  const int64_t detect_batch = report.detection_time.micros() / batch_us;
  const int64_t passive_end =
      (report.detection_time + report.PassiveLatency()).micros() / batch_us;
  const int64_t from = detect_batch + experiment.stale_grace_batches;
  const int64_t to =
      std::min<int64_t>(passive_end - 1,
                        static_cast<int64_t>(experiment.run_for_seconds) - 2);
  if (to < from) {
    return Internal("tentative window too short; slow down recovery");
  }
  const auto timely =
      FilterTimely(job->sink_records(), job->config().batch_interval, 0);
  AccuracyResult result;
  result.accuracy =
      experiment.accuracy(timely, clean->sink_records(), from, to);
  result.metrics = obs::MetricsToJson(job->metrics());
  result.chrome_trace = JobChromeTrace(*job);
  return result;
}

}  // namespace bench
}  // namespace ppa

#endif  // PPA_BENCH_ACCURACY_UTIL_H_
