#ifndef PPA_OBS_FIDELITY_TIMESERIES_H_
#define PPA_OBS_FIDELITY_TIMESERIES_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"

namespace ppa {
namespace obs {

/// One OF/IC estimate taken when a sink delivered a batch while the
/// topology was (or had just stopped being) degraded. The estimates are
/// the paper's closed-form metrics evaluated against the set of
/// currently-failed primaries, so the series is the OF(t) curve behind
/// fig08/fig10's end-of-run scalar.
struct FidelitySample {
  TimePoint at;
  /// Batch index the sink delivered.
  int64_t batch = -1;
  /// Sink task that delivered it.
  int64_t sink_task = -1;
  /// Whether that delivery was flagged tentative.
  bool tentative = false;
  /// Output fidelity (Eq. 4) of the current failure set.
  double output_fidelity = 1.0;
  /// Internal completeness of the current failure set.
  double internal_completeness = 1.0;
  /// Number of failed (not yet restored) primary tasks.
  int64_t failed_tasks = 0;

  bool operator==(const FidelitySample&) const = default;
};

/// Append-only series of FidelitySamples. Sampling happens per delivered
/// sink batch during tentative windows (plus the closing stable batch,
/// so the curve visibly returns to 1.0); wholly-stable runs stay empty.
/// Like TraceLog, a disabled series drops samples at the recording site.
class FidelityTimeseries {
 public:
  FidelityTimeseries() = default;
  FidelityTimeseries(const FidelityTimeseries&) = delete;
  FidelityTimeseries& operator=(const FidelityTimeseries&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  void Record(const FidelitySample& sample) {
    if (enabled_) {
      samples_.push_back(sample);
    }
  }

  const std::vector<FidelitySample>& samples() const { return samples_; }
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Lowest output fidelity seen, or 1.0 when empty.
  double MinOutputFidelity() const {
    double min = 1.0;
    for (const FidelitySample& s : samples_) {
      min = s.output_fidelity < min ? s.output_fidelity : min;
    }
    return min;
  }

  void Clear() { samples_.clear(); }

 private:
  bool enabled_ = true;
  std::vector<FidelitySample> samples_;
};

}  // namespace obs
}  // namespace ppa

#endif  // PPA_OBS_FIDELITY_TIMESERIES_H_
