#ifndef PPA_OBS_SPAN_H_
#define PPA_OBS_SPAN_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/sim_time.h"

namespace ppa {
namespace obs {

/// What a sim-time span measures. Categories mirror the subsystems the
/// ROADMAP wants CPU attribution for; aggregation is per category.
enum class SpanCategory : uint8_t {
  /// Root span: one EventLoop::RunUntil / RunUntilIdle drive.
  kSimRun,
  /// One TaskRuntime::RunBatch on live input (modeled CPU cost).
  kBatchProcess,
  /// RunBatch replaying buffered backlog after a recovery.
  kReplay,
  /// One checkpoint capture (modeled fixed + per-state-tuple cost).
  kCheckpoint,
  /// Detection-to-restoration of one failed task.
  kRecovery,
  /// One replication-planner invocation during plan adaptation.
  kPlannerRun,
  /// Tentative-output reconciliation (shadow re-execution).
  kReconcile,
};

/// Number of SpanCategory enumerators (aggregate vectors index by it).
inline constexpr size_t kNumSpanCategories = 7;

/// Stable name of a span category (e.g. "batch-process").
std::string_view SpanCategoryToString(SpanCategory category);

/// One closed (or still-open) sim-time interval attributed to a
/// category and optionally a task. Spans nest: `parent` indexes the
/// enclosing span in SpanProfiler::spans() (-1 for roots) and
/// `child_total` accumulates time covered by direct children, so
/// Self() attributes each instant to exactly one span.
struct Span {
  SpanCategory category = SpanCategory::kSimRun;
  /// Task the span is attributed to, or -1 for job/loop-level spans.
  int64_t task = -1;
  TimePoint begin;
  TimePoint end;
  /// Index of the enclosing span in SpanProfiler::spans(), -1 for roots.
  int64_t parent = -1;
  /// Nesting depth (0 for roots).
  int32_t depth = 0;
  /// Total duration of direct children (for self-time accounting).
  Duration child_total = Duration::Zero();

  Duration Total() const { return end - begin; }
  Duration Self() const { return Total() - child_total; }
};

/// Per-category span aggregate.
struct SpanStats {
  int64_t count = 0;
  /// Sum of Total() — includes time spent in nested child spans.
  Duration total = Duration::Zero();
  /// Sum of Self() — each instant counted in exactly one category.
  Duration self = Duration::Zero();
};

/// Records nestable sim-time spans. Begin/End maintain a stack so spans
/// opened while another is open become its children; Record() attaches
/// an already-measured interval (e.g. a modeled checkpoint cost) as a
/// child of the currently open span. Storage is a flat vector in open
/// order, so identical runs produce identical span lists. Like TraceLog,
/// a disabled profiler drops everything at the recording site and
/// recording never schedules events, so profiling cannot perturb the
/// simulation.
class SpanProfiler {
 public:
  SpanProfiler() = default;
  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Opens a span at `at`; it stays open until the matching End().
  void Begin(TimePoint at, SpanCategory category, int64_t task = -1);
  /// Closes the innermost open span at `at` (clamped to its begin).
  void End(TimePoint at);
  /// Records a complete [begin, end] span, nested under the currently
  /// open span if any. Used when the duration is modeled rather than
  /// bracketed (checkpoint costs, scheduled recovery latencies).
  void Record(SpanCategory category, int64_t task, TimePoint begin,
              TimePoint end);

  /// All spans in open order. Spans still open have end == begin until
  /// their End() runs.
  const std::vector<Span>& spans() const { return spans_; }
  size_t size() const { return spans_.size(); }
  /// Number of currently open (un-Ended) spans.
  size_t open_depth() const { return open_stack_.size(); }

  /// Per-category {count, total, self}, indexed by SpanCategory value.
  /// Open spans contribute with their current zero-length extent.
  std::vector<SpanStats> AggregateByCategory() const;

  void Clear();

 private:
  bool enabled_ = true;
  std::vector<Span> spans_;
  /// Indices into spans_ of the currently open nesting chain.
  std::vector<size_t> open_stack_;
};

/// Null-safe helpers mirroring obs::Add/Set/Observe: instrumented
/// components hold a SpanProfiler* that is nullptr when observability
/// is off.
inline void BeginSpan(SpanProfiler* profiler, TimePoint at,
                      SpanCategory category, int64_t task = -1) {
  if (profiler != nullptr) {
    profiler->Begin(at, category, task);
  }
}
/// Null-safe SpanProfiler::End (no-op on nullptr).
inline void EndSpan(SpanProfiler* profiler, TimePoint at) {
  if (profiler != nullptr) {
    profiler->End(at);
  }
}
/// Null-safe SpanProfiler::Record (no-op on nullptr).
inline void RecordSpan(SpanProfiler* profiler, SpanCategory category,
                       int64_t task, TimePoint begin, TimePoint end) {
  if (profiler != nullptr) {
    profiler->Record(category, task, begin, end);
  }
}

}  // namespace obs
}  // namespace ppa

#endif  // PPA_OBS_SPAN_H_
