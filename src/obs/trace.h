#ifndef PPA_OBS_TRACE_H_
#define PPA_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "common/sim_time.h"

namespace ppa {
namespace obs {

/// Structured sim-time events recorded by the runtime. Payload fields `a`
/// and `b` are kind-specific (documented per enumerator) so an event is
/// five words and recording never allocates per event beyond vector
/// growth.
enum class TraceEventKind : uint8_t {
  /// A cluster node was killed. node = node id, a = primaries lost.
  kNodeFailure,
  /// A primary task copy died. task, node = hosting node.
  kTaskFailed,
  /// The master's heartbeat check noticed outstanding failures.
  /// a = failed tasks covered by this detection.
  kFailureDetected,
  /// A checkpoint was initiated. task, a = next_batch it covers.
  kCheckpointBegin,
  /// The checkpoint finished (modeled CPU cost later than begin).
  /// task, a = serialized bytes, b = modeled duration in microseconds.
  kCheckpointEnd,
  /// Recovery of one failed task was scheduled at detection.
  /// task, a = RecoveryKind as int, b = scheduled latency in micros.
  kRecoveryStart,
  /// The task is restored (replica promoted / checkpoint loaded +
  /// replayed). task, a = RecoveryKind as int.
  kRecoveryDone,
  /// A recovered task reprocessed its backlog up to the live batch
  /// frontier. task, a = frontier batch.
  kTaskCaughtUp,
  /// An active replica was created (initial placement or plan change).
  /// task, node = standby node.
  kReplicaActivated,
  /// An active replica left the plan. task.
  kReplicaDeactivated,
  /// A sink task delivered a batch of stable output to the user.
  /// task, a = batch index, b = tuple count.
  kSinkBatchStable,
  /// Same, but produced while part of the topology was failed (Sec. V-B
  /// tentative output). task, a = batch index, b = tuple count.
  kSinkBatchTentative,
  /// First tentative output of a degraded period. a = batch index.
  kTentativeWindowBegin,
  /// First stable output after every task recovered closed the degraded
  /// period. a = the window's last tentative batch.
  kTentativeWindowEnd,
  /// Tentative outputs were reconciled. a = missed outputs,
  /// b = spurious outputs.
  kReconcileDone,
  /// A previously failed cluster node came back. node = node id.
  kNodeRevived,
  /// The cross-job recovery arbiter (src/service) held this job's
  /// recovery behind higher-ranked tenants. a = hold in microseconds,
  /// b = failed tasks covered by the held detection.
  kRecoveryArbitrated,
  /// A due checkpoint was skipped under approximate fault tolerance
  /// (DESIGN.md §17): the error budget certified the drift, no blob was
  /// persisted, and upstream buffers may trim as if it had been taken.
  /// task, a = next_batch the skip covers, b = unpersisted records.
  kCheckpointSkipped,
  /// A task recovered from a thinned chain: restored the persisted
  /// coverage and fast-forwarded over the certified gap instead of
  /// replaying it. task, a = restored (persisted) batch, b = resumed
  /// (thinned-frontier) batch.
  kApproxRecovery,
  /// The divergence certificate of an approximate recovery. task,
  /// a = forfeited records, b = certified output-loss bound in
  /// parts-per-million.
  kDivergenceCertified,
};

/// Stable wire/name of a trace event kind (e.g. "node-failure").
std::string_view TraceEventKindToString(TraceEventKind kind);

/// One record of the append-only sim-time trace log.
struct TraceEvent {
  TimePoint at;
  /// Insertion sequence: total order even among same-instant events.
  uint64_t seq = 0;
  TraceEventKind kind = TraceEventKind::kNodeFailure;
  int64_t task = -1;
  int node = -1;
  int64_t a = 0;
  int64_t b = 0;

  bool operator==(const TraceEvent&) const = default;
};

/// Append-only log of sim-time trace events. Events carry the insertion
/// sequence number, so two events recorded at the same instant keep their
/// causal order (mirroring the event loop's same-instant FIFO guarantee).
/// Disabled logs drop events at the recording site. An optional capacity
/// bounds memory on long simulations: once full, each new event evicts
/// the oldest one (deterministically — eviction depends only on the
/// recorded sequence, never on allocation behavior) and `dropped()`
/// counts the evictions. Sequence numbers keep advancing across drops,
/// so surviving events retain their global order.
class TraceLog {
 public:
  TraceLog() = default;
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Caps the log at `capacity` events (0 = unbounded, the default).
  /// Shrinking below the current size evicts oldest-first immediately.
  void set_capacity(size_t capacity);
  size_t capacity() const { return capacity_; }
  /// Events evicted oldest-first to respect the capacity.
  uint64_t dropped() const { return dropped_; }

  /// Forwards every Record() call into `mirror` as well (nullptr
  /// detaches), *regardless of this log's enabled state* — the
  /// flight-recorder hookup: the main trace may be disabled
  /// (observability off) while the bounded post-mortem ring keeps
  /// recording. The mirror assigns its own sequence numbers and applies
  /// its own capacity/enabled policy. Not owned; must outlive this log.
  void set_mirror(TraceLog* mirror) { mirror_ = mirror; }
  TraceLog* mirror() const { return mirror_; }

  void Record(TimePoint at, TraceEventKind kind, int64_t task = -1,
              int node = -1, int64_t a = 0, int64_t b = 0);

  const std::deque<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  int64_t CountOf(TraceEventKind kind) const;
  std::vector<TraceEvent> OfKind(TraceEventKind kind) const;
  /// First event of `kind`, or nullptr.
  const TraceEvent* FirstOf(TraceEventKind kind) const;

  void Clear();

 private:
  bool enabled_ = true;
  size_t capacity_ = 0;
  uint64_t dropped_ = 0;
  uint64_t next_seq_ = 0;
  TraceLog* mirror_ = nullptr;
  std::deque<TraceEvent> events_;
};

}  // namespace obs
}  // namespace ppa

#endif  // PPA_OBS_TRACE_H_
