#include "obs/span.h"

#include "common/logging.h"

namespace ppa {
namespace obs {

std::string_view SpanCategoryToString(SpanCategory category) {
  switch (category) {
    case SpanCategory::kSimRun:
      return "sim-run";
    case SpanCategory::kBatchProcess:
      return "batch-process";
    case SpanCategory::kReplay:
      return "replay";
    case SpanCategory::kCheckpoint:
      return "checkpoint";
    case SpanCategory::kRecovery:
      return "recovery";
    case SpanCategory::kPlannerRun:
      return "planner-run";
    case SpanCategory::kReconcile:
      return "reconcile";
  }
  return "?";
}

void SpanProfiler::Begin(TimePoint at, SpanCategory category, int64_t task) {
  if (!enabled_) {
    return;
  }
  Span span;
  span.category = category;
  span.task = task;
  span.begin = at;
  span.end = at;
  if (!open_stack_.empty()) {
    span.parent = static_cast<int64_t>(open_stack_.back());
    span.depth = spans_[open_stack_.back()].depth + 1;
  }
  open_stack_.push_back(spans_.size());
  spans_.push_back(span);
}

void SpanProfiler::End(TimePoint at) {
  if (!enabled_) {
    return;
  }
  PPA_CHECK(!open_stack_.empty()) << "SpanProfiler::End without Begin";
  Span& span = spans_[open_stack_.back()];
  open_stack_.pop_back();
  span.end = at < span.begin ? span.begin : at;
  if (span.parent >= 0) {
    spans_[static_cast<size_t>(span.parent)].child_total += span.Total();
  }
}

void SpanProfiler::Record(SpanCategory category, int64_t task,
                          TimePoint begin, TimePoint end) {
  if (!enabled_) {
    return;
  }
  Span span;
  span.category = category;
  span.task = task;
  span.begin = begin;
  span.end = end < begin ? begin : end;
  if (!open_stack_.empty()) {
    span.parent = static_cast<int64_t>(open_stack_.back());
    span.depth = spans_[open_stack_.back()].depth + 1;
    spans_[open_stack_.back()].child_total += span.Total();
  }
  spans_.push_back(span);
}

std::vector<SpanStats> SpanProfiler::AggregateByCategory() const {
  std::vector<SpanStats> stats(kNumSpanCategories);
  for (const Span& span : spans_) {
    SpanStats& s = stats[static_cast<size_t>(span.category)];
    ++s.count;
    s.total += span.Total();
    s.self += span.Self();
  }
  return stats;
}

void SpanProfiler::Clear() {
  spans_.clear();
  open_stack_.clear();
}

}  // namespace obs
}  // namespace ppa
