#include "obs/export.h"

#include <algorithm>
#include <map>
#include <utility>

namespace ppa {
namespace obs {
namespace {

std::string LabelFor(const TaskLabeler& labeler, int64_t task) {
  if (task < 0) {
    return "";
  }
  return labeler != nullptr ? labeler(task) : std::to_string(task);
}

}  // namespace

JsonValue HistogramToJson(const Histogram& histogram) {
  JsonValue out = JsonValue::Object();
  out.Set("count", histogram.count());
  out.Set("sum", histogram.sum());
  out.Set("min", histogram.min());
  out.Set("max", histogram.max());
  out.Set("mean", histogram.Mean());
  out.Set("p50", histogram.Percentile(50));
  out.Set("p95", histogram.Percentile(95));
  out.Set("p99", histogram.Percentile(99));
  return out;
}

JsonValue MetricsToJson(const MetricsRegistry& registry) {
  JsonValue out = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, counter] : registry.counters()) {
    counters.Set(name, counter->value());
  }
  out.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, gauge] : registry.gauges()) {
    JsonValue g = JsonValue::Object();
    g.Set("value", gauge->value());
    g.Set("min", gauge->min());
    g.Set("max", gauge->max());
    g.Set("samples", gauge->samples());
    gauges.Set(name, std::move(g));
  }
  out.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, histogram] : registry.histograms()) {
    histograms.Set(name, HistogramToJson(*histogram));
  }
  out.Set("histograms", std::move(histograms));
  return out;
}

JsonValue TraceToJson(const TraceLog& trace, const TaskLabeler& labeler) {
  JsonValue out = JsonValue::Array();
  for (const TraceEvent& e : trace.events()) {
    JsonValue ev = JsonValue::Object();
    ev.Set("t_s", e.at.seconds());
    ev.Set("seq", static_cast<int64_t>(e.seq));
    ev.Set("kind", std::string(TraceEventKindToString(e.kind)));
    if (e.task >= 0) {
      ev.Set("task", LabelFor(labeler, e.task));
    }
    if (e.node >= 0) {
      ev.Set("node", e.node);
    }
    ev.Set("a", e.a);
    ev.Set("b", e.b);
    out.Append(std::move(ev));
  }
  return out;
}

JsonValue TimelinesToJson(const std::vector<RecoveryTimeline>& timelines,
                          const TaskLabeler& labeler) {
  JsonValue out = JsonValue::Array();
  for (const RecoveryTimeline& tl : timelines) {
    JsonValue t = JsonValue::Object();
    t.Set("task", LabelFor(labeler, tl.task));
    t.Set("recovery_kind", tl.recovery_kind);
    t.Set("failed_at_s", tl.failed_at.seconds());
    if (tl.detected) {
      t.Set("detected_at_s", tl.detected_at.seconds());
    }
    if (tl.restored) {
      t.Set("restored_at_s", tl.restored_at.seconds());
      t.Set("restore_latency_s", tl.RestoreLatency().seconds());
      t.Set("recovery_latency_s", tl.RecoveryLatency().seconds());
    }
    if (tl.caught_up) {
      t.Set("caught_up_at_s", tl.caught_up_at.seconds());
    }
    t.Set("complete", tl.caught_up);
    out.Append(std::move(t));
  }
  return out;
}

JsonValue TentativeWindowsToJson(
    const std::vector<TentativeWindow>& windows) {
  JsonValue out = JsonValue::Array();
  for (const TentativeWindow& w : windows) {
    JsonValue v = JsonValue::Object();
    v.Set("begin_s", w.begin.seconds());
    if (w.closed) {
      v.Set("end_s", w.end.seconds());
      v.Set("duration_s", (w.end - w.begin).seconds());
    }
    v.Set("first_batch", w.first_batch);
    v.Set("last_batch", w.last_batch);
    v.Set("closed", w.closed);
    out.Append(std::move(v));
  }
  return out;
}

JsonValue TraceStatsToJson(const TraceLog& trace) {
  JsonValue out = JsonValue::Object();
  out.Set("capacity", static_cast<int64_t>(trace.capacity()));
  out.Set("dropped", static_cast<int64_t>(trace.dropped()));
  out.Set("retained", static_cast<int64_t>(trace.size()));
  return out;
}

JsonValue SpansToJson(const SpanProfiler& spans, const TaskLabeler& labeler) {
  JsonValue out = JsonValue::Array();
  for (const Span& span : spans.spans()) {
    JsonValue s = JsonValue::Object();
    s.Set("category", std::string(SpanCategoryToString(span.category)));
    if (span.task >= 0) {
      s.Set("task", LabelFor(labeler, span.task));
    }
    s.Set("begin_s", span.begin.seconds());
    s.Set("end_s", span.end.seconds());
    s.Set("total_s", span.Total().seconds());
    s.Set("self_s", span.Self().seconds());
    s.Set("depth", span.depth);
    out.Append(std::move(s));
  }
  return out;
}

JsonValue SpanAggregateToJson(const SpanProfiler& spans) {
  const std::vector<SpanStats> stats = spans.AggregateByCategory();
  JsonValue out = JsonValue::Object();
  for (size_t i = 0; i < stats.size(); ++i) {
    JsonValue s = JsonValue::Object();
    s.Set("count", stats[i].count);
    s.Set("total_s", stats[i].total.seconds());
    s.Set("self_s", stats[i].self.seconds());
    out.Set(std::string(SpanCategoryToString(static_cast<SpanCategory>(i))),
            std::move(s));
  }
  return out;
}

JsonValue HotSpansToJson(const SpanProfiler& spans, const TaskLabeler& labeler,
                         size_t top_n) {
  struct HotStats {
    int64_t count = 0;
    Duration total = Duration::Zero();
    Duration self = Duration::Zero();
  };
  // std::map keeps (category, task) keys ordered, so equal-self-time
  // rows already sit in the deterministic tie-break order before the
  // stable sort by self time.
  std::map<std::pair<uint8_t, int64_t>, HotStats> by_site;
  for (const Span& span : spans.spans()) {
    HotStats& stats =
        by_site[{static_cast<uint8_t>(span.category), span.task}];
    ++stats.count;
    stats.total += span.Total();
    stats.self += span.Self();
  }
  std::vector<std::pair<std::pair<uint8_t, int64_t>, HotStats>> rows(
      by_site.begin(), by_site.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& lhs, const auto& rhs) {
                     return lhs.second.self > rhs.second.self;
                   });
  if (rows.size() > top_n) {
    rows.resize(top_n);
  }
  JsonValue out = JsonValue::Array();
  for (const auto& [site, stats] : rows) {
    JsonValue row = JsonValue::Object();
    row.Set("category", std::string(SpanCategoryToString(
                            static_cast<SpanCategory>(site.first))));
    if (site.second >= 0) {
      row.Set("task", LabelFor(labeler, site.second));
    }
    row.Set("count", stats.count);
    row.Set("total_s", stats.total.seconds());
    row.Set("self_s", stats.self.seconds());
    out.Append(std::move(row));
  }
  return out;
}

JsonValue FidelityTimeseriesToJson(const FidelityTimeseries& series,
                                   const TaskLabeler& labeler) {
  JsonValue out = JsonValue::Array();
  for (const FidelitySample& sample : series.samples()) {
    JsonValue s = JsonValue::Object();
    s.Set("t_s", sample.at.seconds());
    s.Set("batch", sample.batch);
    s.Set("sink", LabelFor(labeler, sample.sink_task));
    s.Set("tentative", sample.tentative);
    s.Set("output_fidelity", sample.output_fidelity);
    s.Set("internal_completeness", sample.internal_completeness);
    s.Set("failed_tasks", sample.failed_tasks);
    out.Append(std::move(s));
  }
  return out;
}

JsonValue RunProfileToJson(const MetricsRegistry& registry,
                           const TraceLog& trace, const TaskLabeler& labeler,
                           const SpanProfiler* spans,
                           const FidelityTimeseries* fidelity) {
  JsonValue out = JsonValue::Object();
  out.Set("metrics", MetricsToJson(registry));
  out.Set("recovery_timelines",
          TimelinesToJson(BuildRecoveryTimelines(trace), labeler));
  out.Set("tentative_windows",
          TentativeWindowsToJson(ExtractTentativeWindows(trace)));
  if (spans != nullptr) {
    out.Set("span_aggregate", SpanAggregateToJson(*spans));
    out.Set("hot_spans", HotSpansToJson(*spans, labeler));
    out.Set("spans", SpansToJson(*spans, labeler));
  }
  if (fidelity != nullptr) {
    out.Set("fidelity_timeseries",
            FidelityTimeseriesToJson(*fidelity, labeler));
  }
  out.Set("trace_stats", TraceStatsToJson(trace));
  out.Set("trace", TraceToJson(trace, labeler));
  return out;
}

}  // namespace obs
}  // namespace ppa
