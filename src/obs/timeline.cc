#include "obs/timeline.h"

#include <map>

namespace ppa {
namespace obs {

std::vector<RecoveryTimeline> BuildRecoveryTimelines(const TraceLog& trace) {
  std::vector<RecoveryTimeline> timelines;
  // Task -> index of its open (not yet caught-up) episode in `timelines`.
  std::map<int64_t, size_t> open;
  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case TraceEventKind::kTaskFailed: {
        RecoveryTimeline tl;
        tl.task = e.task;
        tl.failed_at = e.at;
        open[e.task] = timelines.size();
        timelines.push_back(tl);
        break;
      }
      case TraceEventKind::kRecoveryStart: {
        auto it = open.find(e.task);
        if (it != open.end()) {
          RecoveryTimeline& tl = timelines[it->second];
          tl.detected = true;
          tl.detected_at = e.at;
          tl.recovery_kind = e.a;
        }
        break;
      }
      case TraceEventKind::kRecoveryDone: {
        auto it = open.find(e.task);
        if (it != open.end()) {
          RecoveryTimeline& tl = timelines[it->second];
          tl.restored = true;
          tl.restored_at = e.at;
        }
        break;
      }
      case TraceEventKind::kDivergenceCertified: {
        auto it = open.find(e.task);
        if (it != open.end()) {
          RecoveryTimeline& tl = timelines[it->second];
          tl.approx = true;
          tl.forfeited_records = e.a;
          tl.certified_loss = static_cast<double>(e.b) / 1e6;
        }
        break;
      }
      case TraceEventKind::kTaskCaughtUp: {
        auto it = open.find(e.task);
        if (it != open.end()) {
          RecoveryTimeline& tl = timelines[it->second];
          tl.caught_up = true;
          tl.caught_up_at = e.at;
          open.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }
  return timelines;
}

std::vector<TentativeWindow> ExtractTentativeWindows(const TraceLog& trace) {
  std::vector<TentativeWindow> windows;
  bool in_window = false;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == TraceEventKind::kTentativeWindowBegin && !in_window) {
      TentativeWindow w;
      w.begin = e.at;
      w.first_batch = e.a;
      windows.push_back(w);
      in_window = true;
    } else if (e.kind == TraceEventKind::kTentativeWindowEnd && in_window) {
      windows.back().end = e.at;
      windows.back().last_batch = e.a;
      windows.back().closed = true;
      in_window = false;
    }
  }
  return windows;
}

}  // namespace obs
}  // namespace ppa
