#ifndef PPA_OBS_EXPORT_H_
#define PPA_OBS_EXPORT_H_

#include <functional>
#include <string>

#include "obs/fidelity_timeseries.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "report/json.h"

namespace ppa {
namespace obs {

/// Resolves a task id to a display label ("mid[1]"); nullptr falls back
/// to the numeric id.
using TaskLabeler = std::function<std::string(int64_t)>;

/// {"count":..,"sum":..,"min":..,"max":..,"mean":..,
///  "p50":..,"p95":..,"p99":..}
JsonValue HistogramToJson(const Histogram& histogram);

/// {"counters":{name:value,...},"gauges":{name:{...}},
///  "histograms":{name:HistogramToJson,...}} in name order.
JsonValue MetricsToJson(const MetricsRegistry& registry);

/// Array of {"t_s":..,"seq":..,"kind":..,"task":..,"node":..,"a":..,
/// "b":..}; tasks labeled through `labeler` when provided.
JsonValue TraceToJson(const TraceLog& trace,
                      const TaskLabeler& labeler = nullptr);

/// Array of per-episode timelines with phase timestamps and latencies.
JsonValue TimelinesToJson(const std::vector<RecoveryTimeline>& timelines,
                          const TaskLabeler& labeler = nullptr);

/// Array of {"begin_s":..,"end_s":..,"first_batch":..,"last_batch":..,
/// "closed":..}.
JsonValue TentativeWindowsToJson(const std::vector<TentativeWindow>& windows);

/// {"capacity":..,"dropped":..,"retained":..} — how much of the run the
/// trace ring actually kept. capacity 0 means unbounded; a non-zero
/// dropped count flags that trace-derived views (timelines, windows) saw
/// a truncated history.
JsonValue TraceStatsToJson(const TraceLog& trace);

/// Array of {"category":..,"task":..,"begin_s":..,"end_s":..,
/// "total_s":..,"self_s":..,"depth":..} in span-open order.
JsonValue SpansToJson(const SpanProfiler& spans,
                      const TaskLabeler& labeler = nullptr);

/// {"<category>":{"count":..,"total_s":..,"self_s":..},...} for every
/// span category (zeros included, in enum order).
JsonValue SpanAggregateToJson(const SpanProfiler& spans);

/// The hot-path table: spans aggregated per (category, task) and ranked
/// by self time descending (ties broken by category then task, so the
/// ranking is deterministic). At most `top_n` rows, each
/// {"category":..,"task":..,"count":..,"total_s":..,"self_s":..}; the
/// "task" key is omitted for taskless spans (e.g. the run root).
JsonValue HotSpansToJson(const SpanProfiler& spans,
                         const TaskLabeler& labeler = nullptr,
                         size_t top_n = 10);

/// Array of {"t_s":..,"batch":..,"sink":..,"tentative":..,
/// "output_fidelity":..,"internal_completeness":..,"failed_tasks":..}
/// — the OF(t)/IC(t) curve sampled per degraded sink delivery.
JsonValue FidelityTimeseriesToJson(const FidelityTimeseries& series,
                                   const TaskLabeler& labeler = nullptr);

/// The machine-readable profile of one run: metrics snapshot, recovery
/// timelines and tentative windows derived from the trace, the trace
/// itself, and — when provided — the span profile (with per-category
/// aggregate) and the fidelity timeseries.
JsonValue RunProfileToJson(const MetricsRegistry& registry,
                           const TraceLog& trace,
                           const TaskLabeler& labeler = nullptr,
                           const SpanProfiler* spans = nullptr,
                           const FidelityTimeseries* fidelity = nullptr);

}  // namespace obs
}  // namespace ppa

#endif  // PPA_OBS_EXPORT_H_
