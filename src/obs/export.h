#ifndef PPA_OBS_EXPORT_H_
#define PPA_OBS_EXPORT_H_

#include <functional>
#include <string>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "report/json.h"

namespace ppa {
namespace obs {

/// Resolves a task id to a display label ("mid[1]"); nullptr falls back
/// to the numeric id.
using TaskLabeler = std::function<std::string(int64_t)>;

/// {"count":..,"sum":..,"min":..,"max":..,"mean":..,
///  "p50":..,"p95":..,"p99":..}
JsonValue HistogramToJson(const Histogram& histogram);

/// {"counters":{name:value,...},"gauges":{name:{...}},
///  "histograms":{name:HistogramToJson,...}} in name order.
JsonValue MetricsToJson(const MetricsRegistry& registry);

/// Array of {"t_s":..,"seq":..,"kind":..,"task":..,"node":..,"a":..,
/// "b":..}; tasks labeled through `labeler` when provided.
JsonValue TraceToJson(const TraceLog& trace,
                      const TaskLabeler& labeler = nullptr);

/// Array of per-episode timelines with phase timestamps and latencies.
JsonValue TimelinesToJson(const std::vector<RecoveryTimeline>& timelines,
                          const TaskLabeler& labeler = nullptr);

/// Array of {"begin_s":..,"end_s":..,"first_batch":..,"last_batch":..,
/// "closed":..}.
JsonValue TentativeWindowsToJson(const std::vector<TentativeWindow>& windows);

/// The machine-readable profile of one run: metrics snapshot, recovery
/// timelines and tentative windows derived from the trace, and the trace
/// itself.
JsonValue RunProfileToJson(const MetricsRegistry& registry,
                           const TraceLog& trace,
                           const TaskLabeler& labeler = nullptr);

}  // namespace obs
}  // namespace ppa

#endif  // PPA_OBS_EXPORT_H_
