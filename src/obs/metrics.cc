#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace ppa {
namespace obs {

void Gauge::Set(double value) {
  if (samples_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  value_ = value;
  ++samples_;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  PPA_CHECK(!bounds_.empty()) << "histogram needs at least one bucket";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    PPA_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::DefaultBounds() {
  // Each edge is mantissa m in {1, 2, 5} times an exact power of ten.
  // Integer powers up to 1e9 are exact doubles, the products m * 10^e
  // stay below 2^53, and for negative exponents the correctly-rounded
  // division m / 10^-e yields the same double as the decimal literal —
  // unlike the former running `decade *= 10` product starting at 1e-3,
  // whose rounding error compounded across the 12 decades.
  std::vector<double> bounds;
  for (int exponent = -3; exponent <= 9; ++exponent) {
    double power = 1.0;
    for (int i = 0; i < (exponent < 0 ? -exponent : exponent); ++i) {
      power *= 10.0;
    }
    for (const double mantissa : {1.0, 2.0, 5.0}) {
      bounds.push_back(exponent < 0 ? mantissa / power : mantissa * power);
    }
  }
  return bounds;
}

void Histogram::Record(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const int64_t next = cumulative + counts_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate inside bucket i between its lower and upper bound,
      // clamped to the observed extremes (exact for the first and last
      // occupied buckets, conservative in between).
      double lo = i == 0 ? min_ : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : max_;
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (hi <= lo) {
        return lo;
      }
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts_[i]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return max_;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  auto& slot = counters_[std::string(name)];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  auto& slot = gauges_[std::string(name)];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  return histogram(name, Histogram::DefaultBounds());
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  auto& slot = histograms_[std::string(name)];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return slot.get();
}

}  // namespace obs
}  // namespace ppa
