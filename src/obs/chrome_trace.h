#ifndef PPA_OBS_CHROME_TRACE_H_
#define PPA_OBS_CHROME_TRACE_H_

#include "obs/export.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "report/json.h"

namespace ppa {
namespace obs {

/// Converts a run's TraceLog (+ optional span profile) into Chrome
/// Trace Event Format JSON, loadable by chrome://tracing and the
/// Perfetto UI. Track mapping: pid 0 is the job (control events,
/// tentative windows, loop/planner spans), pid 1 the cluster with one
/// thread per node, pid 2 the tasks with one thread per task. Trace
/// events become instant events, spans and closed tentative windows
/// become duration events; timestamps are sim-time microseconds. The
/// output is deterministic: metadata first (ids sorted), then spans in
/// open order, then windows, then instants in recorded order.
JsonValue ChromeTraceToJson(const TraceLog& trace,
                            const SpanProfiler* spans = nullptr,
                            const TaskLabeler& labeler = nullptr);

/// A valid Trace Event Format document with no events — what binaries
/// write when asked for a trace but no instrumented job ran.
JsonValue EmptyChromeTrace();

}  // namespace obs
}  // namespace ppa

#endif  // PPA_OBS_CHROME_TRACE_H_
