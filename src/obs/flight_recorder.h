#ifndef PPA_OBS_FLIGHT_RECORDER_H_
#define PPA_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "obs/trace.h"
#include "report/json.h"

namespace ppa {
namespace obs {

/// Always-on bounded post-mortem ring: the last `capacity` trace events
/// of a run, independent of the full TraceLog's enabled state. The full
/// trace is gated by JobConfig::observability and grows with the run;
/// the flight recorder is the black box that survives at scale — O(1)
/// memory, deterministic content (events carry only sim-time data), and
/// cheap enough to leave on everywhere. It is fed by attaching its ring
/// as the mirror of the run's main TraceLog (TraceLog::set_mirror), so
/// recording sites stay single-writer; when a chaos invariant fails or a
/// run is dumped via --flight_record_out, FlightRecordToJson serializes
/// the ring's last-N-events view of what the system was doing in the
/// moments before.
///
/// Ring discipline is TraceLog's: once full, each new event evicts the
/// oldest one deterministically and dropped() counts the evictions, so
/// two identical runs always dump byte-identical flight records.
class FlightRecorder {
 public:
  /// Default ring size: enough to cover several detection intervals of a
  /// busy job without ever mattering for memory.
  static constexpr size_t kDefaultCapacity = 256;

  /// A zero capacity disables recording entirely (the ring stays empty).
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The bounded ring; attach it as a TraceLog mirror to feed it.
  TraceLog& ring() { return ring_; }
  const TraceLog& ring() const { return ring_; }

  /// True when the recorder was constructed with a non-zero capacity.
  bool enabled() const { return ring_.enabled(); }
  size_t capacity() const { return ring_.capacity(); }
  /// Events evicted from the ring so far (silent-truncation visibility).
  uint64_t dropped() const { return ring_.dropped(); }
  /// Events currently retained.
  size_t size() const { return ring_.size(); }

  void Clear() { ring_.Clear(); }

 private:
  TraceLog ring_;
};

/// Serializes a flight record:
/// {"capacity":..,"dropped":..,"recorded":..,"events":[...]} where
/// `recorded` counts every event ever fed to the ring (retained +
/// dropped) and `events` is the retained tail in TraceToJson shape.
/// Tasks are labeled through `labeler` when provided. Contains only
/// sim-time data, so identical runs serialize byte-identically.
JsonValue FlightRecordToJson(
    const FlightRecorder& recorder,
    const std::function<std::string(int64_t)>& labeler = nullptr);

}  // namespace obs
}  // namespace ppa

#endif  // PPA_OBS_FLIGHT_RECORDER_H_
