#ifndef PPA_OBS_TIMELINE_H_
#define PPA_OBS_TIMELINE_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "obs/trace.h"

namespace ppa {
namespace obs {

/// One task's passage through the paper's recovery phases, derived from
/// the trace: failed -> detected (recovery scheduled) -> restored
/// (replica promoted / checkpoint restored + replayed) -> caught up with
/// the live batch frontier. A task that fails repeatedly yields one
/// timeline per episode.
struct RecoveryTimeline {
  int64_t task = -1;
  /// ppa::RecoveryKind as int (obs stays below ft in the layering);
  /// -1 until recovery is scheduled.
  int64_t recovery_kind = -1;
  TimePoint failed_at;
  TimePoint detected_at;
  TimePoint restored_at;
  TimePoint caught_up_at;
  bool detected = false;
  bool restored = false;
  bool caught_up = false;

  /// Approximate-recovery certificate (kDivergenceCertified /
  /// kApproxRecovery within this episode); inert for exact recoveries.
  bool approx = false;
  /// Records the thinned gap forfeited instead of replayed.
  int64_t forfeited_records = 0;
  /// Certified per-batch output-loss bound, in [0, 1].
  double certified_loss = 0.0;

  /// Failure to restoration; zero while incomplete.
  Duration RestoreLatency() const {
    return restored ? restored_at - failed_at : Duration::Zero();
  }
  /// Detection to restoration (the paper's recovery latency); zero while
  /// incomplete.
  Duration RecoveryLatency() const {
    return restored && detected ? restored_at - detected_at
                                : Duration::Zero();
  }
};

/// A span of degraded output: from the first tentative sink batch to the
/// first stable sink batch after every task recovered (open if the run
/// ended while degraded).
struct TentativeWindow {
  TimePoint begin;
  TimePoint end;
  int64_t first_batch = -1;
  /// Batch of the closing stable emission; -1 while open.
  int64_t last_batch = -1;
  bool closed = false;
};

/// Scans the trace in order and folds kTaskFailed / kRecoveryStart /
/// kRecoveryDone / kTaskCaughtUp into per-episode timelines, ordered by
/// failure time (insertion order for ties).
std::vector<RecoveryTimeline> BuildRecoveryTimelines(const TraceLog& trace);

/// Pairs kTentativeWindowBegin / kTentativeWindowEnd events into windows.
std::vector<TentativeWindow> ExtractTentativeWindows(const TraceLog& trace);

}  // namespace obs
}  // namespace ppa

#endif  // PPA_OBS_TIMELINE_H_
