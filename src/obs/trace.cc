#include "obs/trace.h"

namespace ppa {
namespace obs {

std::string_view TraceEventKindToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kNodeFailure:
      return "node-failure";
    case TraceEventKind::kTaskFailed:
      return "task-failed";
    case TraceEventKind::kFailureDetected:
      return "failure-detected";
    case TraceEventKind::kCheckpointBegin:
      return "checkpoint-begin";
    case TraceEventKind::kCheckpointEnd:
      return "checkpoint-end";
    case TraceEventKind::kRecoveryStart:
      return "recovery-start";
    case TraceEventKind::kRecoveryDone:
      return "recovery-done";
    case TraceEventKind::kTaskCaughtUp:
      return "task-caught-up";
    case TraceEventKind::kReplicaActivated:
      return "replica-activated";
    case TraceEventKind::kReplicaDeactivated:
      return "replica-deactivated";
    case TraceEventKind::kSinkBatchStable:
      return "sink-batch-stable";
    case TraceEventKind::kSinkBatchTentative:
      return "sink-batch-tentative";
    case TraceEventKind::kTentativeWindowBegin:
      return "tentative-window-begin";
    case TraceEventKind::kTentativeWindowEnd:
      return "tentative-window-end";
    case TraceEventKind::kReconcileDone:
      return "reconcile-done";
    case TraceEventKind::kNodeRevived:
      return "node-revived";
    case TraceEventKind::kRecoveryArbitrated:
      return "recovery-arbitrated";
    case TraceEventKind::kCheckpointSkipped:
      return "checkpoint-skipped";
    case TraceEventKind::kApproxRecovery:
      return "approx-recovery";
    case TraceEventKind::kDivergenceCertified:
      return "divergence-certified";
  }
  return "?";
}

void TraceLog::set_capacity(size_t capacity) {
  capacity_ = capacity;
  if (capacity_ == 0) {
    return;
  }
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

void TraceLog::Record(TimePoint at, TraceEventKind kind, int64_t task,
                      int node, int64_t a, int64_t b) {
  if (mirror_ != nullptr) {
    mirror_->Record(at, kind, task, node, a, b);
  }
  if (!enabled_) {
    return;
  }
  if (capacity_ > 0 && events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(TraceEvent{at, next_seq_++, kind, task, node, a, b});
}

int64_t TraceLog::CountOf(TraceEventKind kind) const {
  int64_t count = 0;
  for (const TraceEvent& e : events_) {
    count += e.kind == kind ? 1 : 0;
  }
  return count;
}

std::vector<TraceEvent> TraceLog::OfKind(TraceEventKind kind) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) {
      out.push_back(e);
    }
  }
  return out;
}

const TraceEvent* TraceLog::FirstOf(TraceEventKind kind) const {
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) {
      return &e;
    }
  }
  return nullptr;
}

void TraceLog::Clear() {
  events_.clear();
  next_seq_ = 0;
  dropped_ = 0;
}

}  // namespace obs
}  // namespace ppa
