#include "obs/flight_recorder.h"

#include "obs/export.h"

namespace ppa {
namespace obs {

FlightRecorder::FlightRecorder(size_t capacity) {
  ring_.set_enabled(capacity > 0);
  // With capacity 0 the ring is disabled outright; never leave a
  // zero-capacity (= unbounded) enabled ring behind.
  ring_.set_capacity(capacity);
}

JsonValue FlightRecordToJson(
    const FlightRecorder& recorder,
    const std::function<std::string(int64_t)>& labeler) {
  JsonValue out = JsonValue::Object();
  out.Set("capacity", static_cast<int64_t>(recorder.capacity()));
  out.Set("dropped", static_cast<int64_t>(recorder.dropped()));
  out.Set("recorded", static_cast<int64_t>(recorder.size() +
                                           recorder.dropped()));
  out.Set("events", TraceToJson(recorder.ring(), labeler));
  return out;
}

}  // namespace obs
}  // namespace ppa
