#include "obs/chrome_trace.h"

#include <set>
#include <string>

#include "obs/timeline.h"

namespace ppa {
namespace obs {
namespace {

// Track (pid) layout of the exported trace.
constexpr int kJobPid = 0;
constexpr int kClusterPid = 1;
constexpr int kTasksPid = 2;

std::string LabelFor(const TaskLabeler& labeler, int64_t task) {
  return labeler != nullptr ? labeler(task) : std::to_string(task);
}

JsonValue MetadataEvent(std::string_view name, int pid, int64_t tid,
                        std::string value) {
  JsonValue ev = JsonValue::Object();
  ev.Set("name", std::string(name));
  ev.Set("ph", "M");
  ev.Set("pid", pid);
  ev.Set("tid", tid);
  JsonValue args = JsonValue::Object();
  args.Set("name", std::move(value));
  ev.Set("args", std::move(args));
  return ev;
}

void AppendMetadata(const TraceLog& trace, const SpanProfiler* spans,
                    const TaskLabeler& labeler, JsonValue* events) {
  events->Append(MetadataEvent("process_name", kJobPid, 0, "job"));
  events->Append(MetadataEvent("process_name", kClusterPid, 0, "cluster"));
  events->Append(MetadataEvent("process_name", kTasksPid, 0, "tasks"));
  events->Append(MetadataEvent("thread_name", kJobPid, 0, "control"));
  std::set<int> nodes;
  std::set<int64_t> tasks;
  for (const TraceEvent& e : trace.events()) {
    if (e.node >= 0) {
      nodes.insert(e.node);
    }
    if (e.task >= 0) {
      tasks.insert(e.task);
    }
  }
  if (spans != nullptr) {
    for (const Span& span : spans->spans()) {
      if (span.task >= 0) {
        tasks.insert(span.task);
      }
    }
  }
  for (const int node : nodes) {
    events->Append(MetadataEvent("thread_name", kClusterPid, node,
                                 "node " + std::to_string(node)));
  }
  for (const int64_t task : tasks) {
    events->Append(
        MetadataEvent("thread_name", kTasksPid, task, LabelFor(labeler, task)));
  }
}

void AppendSpans(const SpanProfiler& spans, const TaskLabeler& labeler,
                 JsonValue* events) {
  for (const Span& span : spans.spans()) {
    JsonValue ev = JsonValue::Object();
    ev.Set("name", std::string(SpanCategoryToString(span.category)));
    ev.Set("cat", "span");
    ev.Set("ph", "X");
    ev.Set("ts", span.begin.micros());
    ev.Set("dur", span.Total().micros());
    if (span.task >= 0) {
      ev.Set("pid", kTasksPid);
      ev.Set("tid", span.task);
    } else {
      ev.Set("pid", kJobPid);
      ev.Set("tid", 0);
    }
    JsonValue args = JsonValue::Object();
    args.Set("self_us", span.Self().micros());
    args.Set("depth", span.depth);
    ev.Set("args", std::move(args));
    events->Append(std::move(ev));
  }
}

void AppendTentativeWindows(const TraceLog& trace, JsonValue* events) {
  for (const TentativeWindow& w : ExtractTentativeWindows(trace)) {
    if (!w.closed) {
      continue;  // The open window's begin instant is still in the trace.
    }
    JsonValue ev = JsonValue::Object();
    ev.Set("name", "tentative-window");
    ev.Set("cat", "window");
    ev.Set("ph", "X");
    ev.Set("ts", w.begin.micros());
    ev.Set("dur", (w.end - w.begin).micros());
    ev.Set("pid", kJobPid);
    ev.Set("tid", 0);
    JsonValue args = JsonValue::Object();
    args.Set("first_batch", w.first_batch);
    args.Set("last_batch", w.last_batch);
    ev.Set("args", std::move(args));
    events->Append(std::move(ev));
  }
}

void AppendInstants(const TraceLog& trace, const TaskLabeler& labeler,
                    JsonValue* events) {
  for (const TraceEvent& e : trace.events()) {
    JsonValue ev = JsonValue::Object();
    ev.Set("name", std::string(TraceEventKindToString(e.kind)));
    ev.Set("cat", "trace");
    ev.Set("ph", "i");
    ev.Set("ts", e.at.micros());
    if (e.task >= 0) {
      ev.Set("pid", kTasksPid);
      ev.Set("tid", e.task);
    } else if (e.node >= 0) {
      ev.Set("pid", kClusterPid);
      ev.Set("tid", e.node);
    } else {
      ev.Set("pid", kJobPid);
      ev.Set("tid", 0);
    }
    ev.Set("s", "t");
    JsonValue args = JsonValue::Object();
    args.Set("seq", static_cast<int64_t>(e.seq));
    if (e.task >= 0) {
      args.Set("task", LabelFor(labeler, e.task));
    }
    if (e.node >= 0) {
      args.Set("node", e.node);
    }
    args.Set("a", e.a);
    args.Set("b", e.b);
    ev.Set("args", std::move(args));
    events->Append(std::move(ev));
  }
}

}  // namespace

JsonValue ChromeTraceToJson(const TraceLog& trace, const SpanProfiler* spans,
                            const TaskLabeler& labeler) {
  JsonValue out = JsonValue::Object();
  out.Set("displayTimeUnit", "ms");
  JsonValue events = JsonValue::Array();
  AppendMetadata(trace, spans, labeler, &events);
  if (spans != nullptr) {
    AppendSpans(*spans, labeler, &events);
  }
  AppendTentativeWindows(trace, &events);
  AppendInstants(trace, labeler, &events);
  out.Set("traceEvents", std::move(events));
  return out;
}

JsonValue EmptyChromeTrace() {
  JsonValue out = JsonValue::Object();
  out.Set("displayTimeUnit", "ms");
  out.Set("traceEvents", JsonValue::Array());
  return out;
}

}  // namespace obs
}  // namespace ppa
