#ifndef PPA_OBS_METRICS_H_
#define PPA_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ppa {
namespace obs {

/// Monotonically increasing event count (tuples processed, checkpoints
/// taken, ...). Handles returned by MetricsRegistry are stable for the
/// registry's lifetime, so hot paths cache the pointer and pay one add.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Last-write-wins instantaneous value (queue depth, buffered tuples),
/// with min/max/sample bookkeeping so exports capture the envelope.
class Gauge {
 public:
  void Set(double value);

  double value() const { return value_; }
  double min() const { return min_; }
  double max() const { return max_; }
  int64_t samples() const { return samples_; }

 private:
  double value_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  int64_t samples_ = 0;
};

/// Fixed-bucket histogram over sim-time samples (checkpoint durations,
/// recovery latencies, tuples per batch). Buckets are defined by their
/// inclusive upper bounds plus an implicit overflow bucket; percentiles
/// interpolate linearly inside the bucket that crosses the target rank,
/// clamped to the observed min/max at the edges.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Default bounds: a 1-2-5 series spanning [1e-3, 1e9] — wide enough
  /// for microsecond costs, second-scale latencies, and tuple counts.
  static std::vector<double> DefaultBounds();

  void Record(double value);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// Estimated value at percentile `p` in [0, 100]. 0 when empty.
  double Percentile(double p) const;

  /// Inclusive upper bounds (without the overflow bucket).
  const std::vector<double>& bucket_upper_bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bucket_upper_bounds().size() + 1, the
  /// last entry being the overflow bucket.
  const std::vector<int64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Owner of all named metrics of one run. Names are dot-scoped
/// ("subsystem.metric", e.g. "checkpoint.duration_us"); requesting the
/// same name twice returns the same handle, and iteration is in name
/// order so exports are deterministic. Handles are never invalidated.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  /// With Histogram::DefaultBounds().
  Histogram* histogram(std::string_view name);
  /// `upper_bounds` is only consulted on first creation.
  Histogram* histogram(std::string_view name,
                       std::vector<double> upper_bounds);

  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms()
      const {
    return histograms_;
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Null-safe helpers: instrumented components keep plain handle pointers
/// (nullptr when observability is off) and call these unconditionally, so
/// the hot path costs one branch when disabled.
inline void Add(Counter* counter, int64_t delta = 1) {
  if (counter != nullptr) {
    counter->Increment(delta);
  }
}
/// Null-safe Gauge::Set (no-op on nullptr).
inline void Set(Gauge* gauge, double value) {
  if (gauge != nullptr) {
    gauge->Set(value);
  }
}
/// Null-safe Histogram::Record (no-op on nullptr).
inline void Observe(Histogram* histogram, double value) {
  if (histogram != nullptr) {
    histogram->Record(value);
  }
}

}  // namespace obs
}  // namespace ppa

#endif  // PPA_OBS_METRICS_H_
