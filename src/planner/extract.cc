#include "planner/extract.h"

#include <algorithm>

namespace ppa {

StatusOr<ExtractedTopology> ExtractSubTopology(
    const Topology& parent, const std::vector<OperatorId>& ops,
    const std::vector<std::pair<OperatorId, OperatorId>>& cut_edges) {
  if (ops.empty()) {
    return InvalidArgument("ExtractSubTopology: empty operator set");
  }
  std::vector<bool> included(static_cast<size_t>(parent.num_operators()),
                             false);
  for (OperatorId op : ops) {
    if (op < 0 || op >= parent.num_operators()) {
      return InvalidArgument("ExtractSubTopology: bad operator id");
    }
    included[static_cast<size_t>(op)] = true;
  }
  auto is_cut = [&](OperatorId from, OperatorId to) {
    return std::find(cut_edges.begin(), cut_edges.end(),
                     std::make_pair(from, to)) != cut_edges.end();
  };

  // Local operators follow the parent's topological order for determinism.
  std::vector<OperatorId> ordered;
  for (OperatorId op : parent.topo_order()) {
    if (included[static_cast<size_t>(op)]) {
      ordered.push_back(op);
    }
  }
  std::vector<OperatorId> local_of_parent_op(
      static_cast<size_t>(parent.num_operators()), kInvalidOperatorId);
  for (size_t i = 0; i < ordered.size(); ++i) {
    local_of_parent_op[static_cast<size_t>(ordered[i])] =
        static_cast<OperatorId>(i);
  }

  // Classify each included operator's input edges.
  struct OpPlanInfo {
    bool becomes_source = false;
    double kept_input_rate = 0.0;
    double parent_output_rate = 0.0;
  };
  std::vector<OpPlanInfo> info(ordered.size());
  for (size_t i = 0; i < ordered.size(); ++i) {
    const OperatorInfo& oi = parent.op(ordered[i]);
    for (TaskId t : oi.tasks) {
      info[i].parent_output_rate += parent.task(t).output_rate;
    }
    bool any_kept = false;
    for (OperatorId up : oi.upstream) {
      if (included[static_cast<size_t>(up)] && !is_cut(up, oi.id)) {
        any_kept = true;
      }
    }
    info[i].becomes_source = oi.upstream.empty() || !any_kept;
  }
  // Kept input rates (from parent substream rates).
  for (const Substream& s : parent.substreams()) {
    if (!included[static_cast<size_t>(s.from_op)] ||
        !included[static_cast<size_t>(s.to_op)] || is_cut(s.from_op, s.to_op)) {
      continue;
    }
    info[static_cast<size_t>(
            local_of_parent_op[static_cast<size_t>(s.to_op)])]
        .kept_input_rate += s.rate;
  }

  TopologyBuilder builder;
  for (size_t i = 0; i < ordered.size(); ++i) {
    const OperatorInfo& oi = parent.op(ordered[i]);
    double selectivity = oi.selectivity;
    if (!info[i].becomes_source && info[i].kept_input_rate > 0) {
      // Rescale so total output rate matches the parent even though part of
      // the input was severed.
      selectivity = info[i].parent_output_rate / info[i].kept_input_rate;
    }
    OperatorId local =
        builder.AddOperator(oi.name, oi.parallelism, oi.correlation,
                            info[i].becomes_source ? 1.0 : selectivity);
    (void)local;
    if (info[i].becomes_source) {
      builder.SetSourceRate(static_cast<OperatorId>(i),
                            info[i].parent_output_rate);
      for (int k = 0; k < oi.parallelism; ++k) {
        const double rate = parent.task(oi.tasks[static_cast<size_t>(k)])
                                .output_rate;
        builder.SetTaskWeight(static_cast<OperatorId>(i), k,
                              std::max(rate, 1e-12));
      }
    } else {
      for (int k = 0; k < oi.parallelism; ++k) {
        builder.SetTaskWeight(
            static_cast<OperatorId>(i), k,
            parent.task(oi.tasks[static_cast<size_t>(k)]).weight);
      }
    }
  }
  for (const StreamEdge& e : parent.edges()) {
    if (included[static_cast<size_t>(e.from)] &&
        included[static_cast<size_t>(e.to)] && !is_cut(e.from, e.to)) {
      // Skip edges into operators that became sources (possible when only a
      // subset of an operator's input edges was cut explicitly).
      if (info[static_cast<size_t>(
                  local_of_parent_op[static_cast<size_t>(e.to)])]
              .becomes_source) {
        continue;
      }
      builder.Connect(local_of_parent_op[static_cast<size_t>(e.from)],
                      local_of_parent_op[static_cast<size_t>(e.to)],
                      e.scheme);
    }
  }

  ExtractedTopology result;
  PPA_ASSIGN_OR_RETURN(result.topo, builder.Build());
  result.parent_op = ordered;
  result.parent_task.resize(static_cast<size_t>(result.topo.num_tasks()));
  result.local_task.assign(static_cast<size_t>(parent.num_tasks()),
                           kInvalidTaskId);
  for (size_t i = 0; i < ordered.size(); ++i) {
    const OperatorInfo& parent_oi = parent.op(ordered[i]);
    const OperatorInfo& local_oi =
        result.topo.op(static_cast<OperatorId>(i));
    for (int k = 0; k < parent_oi.parallelism; ++k) {
      const TaskId pt = parent_oi.tasks[static_cast<size_t>(k)];
      const TaskId lt = local_oi.tasks[static_cast<size_t>(k)];
      result.parent_task[static_cast<size_t>(lt)] = pt;
      result.local_task[static_cast<size_t>(pt)] = lt;
    }
  }
  for (const Substream& s : parent.substreams()) {
    const bool from_in = included[static_cast<size_t>(s.from_op)];
    const bool to_in = included[static_cast<size_t>(s.to_op)];
    if (from_in != to_in || (from_in && to_in && is_cut(s.from_op, s.to_op))) {
      result.cut_substreams.push_back(s);
    }
  }
  return result;
}

}  // namespace ppa
