#include "planner/dp_planner.h"

#include <algorithm>
#include <set>
#include <vector>

#include "fidelity/metrics.h"

namespace ppa {

StatusOr<ReplicationPlan> DpPlanner::Plan(const PlanRequest& request) {
  PPA_RETURN_IF_ERROR(ValidatePlanRequest(request));
  const Topology& topology = *request.topology;
  const size_t max_candidates = request.max_search_steps != 0
                                    ? request.max_search_steps
                                    : options_.max_candidate_plans;
  const int n = topology.num_tasks();
  const int budget = std::min(request.budget, n);

  PPA_ASSIGN_OR_RETURN(std::vector<TaskSet> trees,
                       EnumerateMcTrees(topology, options_.mc_tree));

  // Open plans, still eligible for expansion; closed plans are complete
  // candidates whose every useful expansion has already been enumerated.
  std::set<TaskSet> open;
  std::vector<TaskSet> closed;
  open.insert(TaskSet(n));

  for (int usage = 1; usage <= budget; ++usage) {
    std::vector<TaskSet> to_add;
    std::vector<TaskSet> to_remove;
    for (const TaskSet& plan : open) {
      const int dif = usage - plan.size();
      // Number of non-replicated tasks per not-yet-contained MC-tree.
      int max_nonrep = 0;
      for (const TaskSet& tree : trees) {
        const int nonrep = plan.CountMissing(tree);
        max_nonrep = std::max(max_nonrep, nonrep);
        if (nonrep == dif) {
          TaskSet expanded = plan;
          expanded.UnionWith(tree);
          to_add.push_back(std::move(expanded));
        }
      }
      if (dif >= max_nonrep) {
        // No remaining tree can absorb a larger headroom at later
        // iterations; the plan is final (Alg. 1 line 12).
        to_remove.push_back(plan);
      }
    }
    for (const TaskSet& plan : to_remove) {
      open.erase(plan);
      closed.push_back(plan);
    }
    for (TaskSet& plan : to_add) {
      open.insert(std::move(plan));
    }
    if (open.size() + closed.size() > max_candidates) {
      return ResourceExhausted("DP planner candidate set exceeded limit");
    }
  }

  ReplicationPlan best;
  best.replicated = TaskSet(n);
  best.output_fidelity = PlanOutputFidelity(topology, best.replicated);
  auto consider = [&](const TaskSet& plan) {
    const double of = PlanOutputFidelity(topology, plan);
    if (of > best.output_fidelity ||
        (of == best.output_fidelity &&
         plan.size() < best.replicated.size())) {
      best.replicated = plan;
      best.output_fidelity = of;
    }
  };
  for (const TaskSet& plan : open) {
    consider(plan);
  }
  for (const TaskSet& plan : closed) {
    consider(plan);
  }
  return best;
}

}  // namespace ppa
