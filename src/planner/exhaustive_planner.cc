#include "planner/exhaustive_planner.h"

#include <algorithm>

#include "fidelity/metrics.h"

namespace ppa {

StatusOr<ReplicationPlan> ExhaustivePlanner::Plan(
    const PlanRequest& request) {
  PPA_RETURN_IF_ERROR(ValidatePlanRequest(request));
  const Topology& topology = *request.topology;
  const int n = topology.num_tasks();
  if (n > max_tasks_) {
    return ResourceExhausted(
        "exhaustive planner refuses topologies beyond its task cap");
  }
  const int budget = std::min(request.budget, n);

  ReplicationPlan best;
  best.replicated = TaskSet(n);
  best.output_fidelity = PlanOutputFidelity(topology, best.replicated);
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    if (request.max_search_steps != 0 &&
        mask >= request.max_search_steps) {
      return ResourceExhausted(
          "exhaustive planner exceeded max_search_steps");
    }
    if (__builtin_popcountll(mask) > budget) {
      continue;
    }
    TaskSet plan(n);
    for (int i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) {
        plan.Add(static_cast<TaskId>(i));
      }
    }
    const double of = PlanOutputFidelity(topology, plan);
    if (of > best.output_fidelity ||
        (of == best.output_fidelity &&
         plan.size() < best.replicated.size())) {
      best.replicated = std::move(plan);
      best.output_fidelity = of;
    }
  }
  return best;
}

StatusOr<ReplicationPlan> RandomPlanner::Plan(const PlanRequest& request) {
  PPA_RETURN_IF_ERROR(ValidatePlanRequest(request));
  const Topology& topology = *request.topology;
  const int n = topology.num_tasks();
  const int budget = std::min(request.budget, n);
  std::vector<TaskId> tasks(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    tasks[static_cast<size_t>(i)] = static_cast<TaskId>(i);
  }
  Rng rng(seed_);
  rng.Shuffle(&tasks);
  ReplicationPlan plan;
  plan.replicated = TaskSet(n);
  for (int i = 0; i < budget; ++i) {
    plan.replicated.Add(tasks[static_cast<size_t>(i)]);
  }
  plan.output_fidelity = PlanOutputFidelity(topology, plan.replicated);
  return plan;
}

}  // namespace ppa
