#ifndef PPA_PLANNER_STRUCTURE_AWARE_PLANNER_H_
#define PPA_PLANNER_STRUCTURE_AWARE_PLANNER_H_

#include "fidelity/mc_tree.h"
#include "fidelity/metrics.h"
#include "planner/planner.h"

namespace ppa {

/// Options of the structure-aware planner.
struct StructureAwareOptions {
  /// Segment/fallback enumeration bound.
  McTreeEnumOptions mc_tree;
  /// When true (default), leftover budget that no sub-topology planner can
  /// spend on an OF improvement is used to replicate the individually most
  /// damaging remaining tasks anyway (active replicas still shorten their
  /// recovery even when they cannot raise worst-case OF).
  bool fill_budget = true;
  /// Plan-quality metric the search maximizes: the paper's OF, or the IC
  /// baseline (used to reproduce the Fig. 12 comparison).
  LossModel metric = LossModel::kOutputFidelity;
};

/// The structure-aware planner (Algorithm 5): decomposes the topology into
/// full and structured sub-topologies (Sec. IV-C3), plans each with its
/// dedicated incremental planner (Algorithms 3 and 4), and interleaves
/// their expansion steps by profit density — OF gain per replicated task —
/// until the budget is exhausted.
class StructureAwarePlanner : public Planner {
 public:
  explicit StructureAwarePlanner(StructureAwareOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "sa"; }

  /// Polynomial in the sub-planner expansions; ignores
  /// `request.max_search_steps`.
  StatusOr<ReplicationPlan> Plan(const PlanRequest& request) override;

 private:
  StructureAwareOptions options_;
};

}  // namespace ppa

#endif  // PPA_PLANNER_STRUCTURE_AWARE_PLANNER_H_
