#ifndef PPA_PLANNER_REPLICATION_PLAN_H_
#define PPA_PLANNER_REPLICATION_PLAN_H_

#include <string>

#include "topology/task_set.h"

namespace ppa {

/// A partially active replication plan (Sec. II-B): the subset P of tasks
/// that receive an active replica. All tasks are always passively
/// replicated; `output_fidelity` is the worst-case correlated-failure
/// objective of Definition 2, i.e. OF of the topology when every task
/// outside `replicated` fails.
struct ReplicationPlan {
  TaskSet replicated;
  double output_fidelity = 0.0;

  /// Number of actively replicated tasks (the consumed resource units).
  int resource_usage() const { return replicated.size(); }
};

}  // namespace ppa

#endif  // PPA_PLANNER_REPLICATION_PLAN_H_
