#include "planner/structure_aware_planner.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "fidelity/metrics.h"
#include "planner/decompose.h"
#include "planner/sub_planner.h"

namespace ppa {

StatusOr<ReplicationPlan> StructureAwarePlanner::Plan(
    const PlanRequest& request) {
  PPA_RETURN_IF_ERROR(ValidatePlanRequest(request));
  const Topology& topology = *request.topology;
  const int n = topology.num_tasks();
  const int budget = std::min(request.budget, n);

  PPA_ASSIGN_OR_RETURN(std::vector<SubTopology> subs,
                       DecomposeTopology(topology));

  // The global plan, shared by all sub-planners through their evaluators.
  TaskSet global_plan(n);
  const LossModel metric = options_.metric;
  auto evaluate_with = [&topology, &global_plan, metric](
                           const std::vector<TaskId>& local_add,
                           const std::vector<TaskId>& local_to_global) {
    TaskSet plan = global_plan;
    for (TaskId local : local_add) {
      plan.Add(local_to_global[static_cast<size_t>(local)]);
    }
    return PropagateInfoLoss(topology, plan.Complement(), metric)
        .output_fidelity;
  };

  std::vector<std::unique_ptr<SubTopologyPlanner>> planners;
  planners.reserve(subs.size());
  for (const SubTopology& sub : subs) {
    GlobalPlanEvaluator eval =
        [&evaluate_with, map = &sub.extracted.parent_task](
            const std::vector<TaskId>& local_add) {
          return evaluate_with(local_add, *map);
        };
    if (sub.is_full) {
      planners.push_back(std::make_unique<FullSubPlanner>(
          &sub.extracted.topo, std::move(eval)));
    } else {
      auto sp = std::make_unique<StructuredSubPlanner>(
          &sub.extracted.topo, std::move(eval), options_.mc_tree);
      PPA_RETURN_IF_ERROR(sp->Init());
      planners.push_back(std::move(sp));
    }
  }

  int usage = 0;
  auto commit = [&](size_t idx, const PlanStep& step) {
    usage += step.cost();
    for (TaskId local : step.add_tasks) {
      PPA_CHECK(global_plan.Add(
          subs[idx].extracted.parent_task[static_cast<size_t>(local)]));
    }
    planners[idx]->Commit(step);
    for (auto& planner : planners) {
      planner->Refresh();
    }
  };

  // Phase 1 (Alg. 5 lines 5-10): every sub-topology gets its initial plan
  // unconditionally — a sub-topology in isolation may gain nothing until
  // its neighbours are covered, but the Full partitionings between
  // sub-topologies guarantee that one initial selection per sub-topology
  // composes into complete MC-trees. Committed in descending density so a
  // tight budget is spent on the most productive sub-topologies first.
  {
    std::vector<bool> done(planners.size(), false);
    for (;;) {
      int best_idx = -1;
      std::optional<PlanStep> best_step;
      double best_density = 0.0;
      for (size_t i = 0; i < planners.size(); ++i) {
        if (done[i] || !planners[i]->NeedsInitialStep()) {
          continue;
        }
        PPA_ASSIGN_OR_RETURN(std::optional<PlanStep> step,
                             planners[i]->ProposeStep(budget - usage));
        if (!step.has_value()) {
          done[i] = true;  // Cannot afford its initial step.
          continue;
        }
        const double density = planners[i]->StepDensity(*step);
        if (best_idx < 0 || density > best_density ||
            (density == best_density &&
             step->cost() < best_step->cost())) {
          best_idx = static_cast<int>(i);
          best_density = density;
          best_step = std::move(step);
        }
      }
      if (best_idx < 0) {
        break;
      }
      commit(static_cast<size_t>(best_idx), *best_step);
      done[static_cast<size_t>(best_idx)] = true;
    }
  }

  // Phase 2 (Alg. 5 lines 11-18): interleave expansion steps by profit
  // density — global metric gain per replicated task — until no planner
  // proposes a profitable affordable step.
  for (;;) {
    int best_idx = -1;
    std::optional<PlanStep> best_step;
    double best_density = 0.0;
    for (size_t i = 0; i < planners.size(); ++i) {
      PPA_ASSIGN_OR_RETURN(std::optional<PlanStep> step,
                           planners[i]->ProposeStep(budget - usage));
      if (!step.has_value()) {
        continue;
      }
      const double density = planners[i]->StepDensity(*step);
      if (density <= 0.0) {
        continue;
      }
      if (best_idx < 0 || density > best_density) {
        best_idx = static_cast<int>(i);
        best_density = density;
        best_step = std::move(step);
      }
    }
    if (best_idx < 0) {
      break;
    }
    commit(static_cast<size_t>(best_idx), *best_step);
    PPA_CHECK(usage <= budget);
  }

  ReplicationPlan plan;
  plan.replicated = global_plan;

  // Optional top-up: spend leftover budget on the individually most
  // damaging tasks (ranked as in Alg. 2); this never lowers the metric and
  // makes the consumed resources match the requested budget.
  if (options_.fill_budget && plan.replicated.size() < budget) {
    struct Scored {
      TaskId task;
      double of_when_failed;
    };
    std::vector<Scored> scores;
    for (TaskId t = 0; t < n; ++t) {
      if (!plan.replicated.Contains(t)) {
        scores.push_back(Scored{t, SingleFailureOutputFidelity(topology, t)});
      }
    }
    std::stable_sort(scores.begin(), scores.end(),
                     [](const Scored& a, const Scored& b) {
                       if (a.of_when_failed != b.of_when_failed) {
                         return a.of_when_failed < b.of_when_failed;
                       }
                       return a.task < b.task;
                     });
    for (const Scored& s : scores) {
      if (plan.replicated.size() >= budget) {
        break;
      }
      plan.replicated.Add(s.task);
    }
  }

  plan.output_fidelity = PlanOutputFidelity(topology, plan.replicated);
  return plan;
}

}  // namespace ppa
