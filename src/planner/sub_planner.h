#ifndef PPA_PLANNER_SUB_PLANNER_H_
#define PPA_PLANNER_SUB_PLANNER_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status_or.h"
#include "fidelity/mc_tree.h"
#include "planner/units.h"
#include "topology/task_set.h"
#include "topology/topology.h"

namespace ppa {

/// Evaluates the quality (OF, or IC for the baseline comparison) of the
/// *global* plan extended with the given local tasks of this sub-topology.
/// The structure-aware driver owns the global plan and the id mapping;
/// passing {} evaluates the current global plan. Using the topology-wide
/// metric here is essential: a sub-topology's local metric cannot see that
/// e.g. a join's other input stream lives in a different sub-topology
/// (Sec. IV-C3 keeps sub-topology selections composable by cutting only at
/// Full partitionings).
using GlobalPlanEvaluator =
    std::function<double(const std::vector<TaskId>& local_add)>;

/// One incremental expansion of a sub-topology's replication plan.
struct PlanStep {
  /// Tasks newly added to the plan (ids local to the sub-topology).
  std::vector<TaskId> add_tasks;
  /// Global plan metric after committing.
  double new_of = 0.0;

  int cost() const { return static_cast<int>(add_tasks.size()); }
};

/// Incremental planner for a single sub-topology. The structure-aware
/// driver (Alg. 5) interleaves steps from several of these, always
/// committing the globally best profit-density step.
class SubTopologyPlanner {
 public:
  /// `topology` (the extracted sub-topology) must outlive the planner.
  SubTopologyPlanner(const Topology* topology, GlobalPlanEvaluator eval);
  virtual ~SubTopologyPlanner() = default;

  SubTopologyPlanner(const SubTopologyPlanner&) = delete;
  SubTopologyPlanner& operator=(const SubTopologyPlanner&) = delete;

  const Topology& topology() const { return *topology_; }
  /// Locally replicated tasks (sub-topology ids).
  const TaskSet& plan() const { return plan_; }
  /// Global plan metric as of the last Refresh/Commit.
  double plan_of() const { return plan_of_; }

  /// Global metric gain per resource unit of `step`.
  double StepDensity(const PlanStep& step) const {
    return step.cost() > 0 ? (step.new_of - plan_of_) / step.cost() : 0.0;
  }

  /// True until the first step was committed (the driver commits every
  /// sub-topology's initial step unconditionally, Alg. 5 lines 5-10).
  bool NeedsInitialStep() const { return plan_.empty(); }

  /// Proposes the next expansion using at most `max_cost` additional tasks;
  /// nullopt when no further (affordable) expansion exists.
  virtual StatusOr<std::optional<PlanStep>> ProposeStep(int max_cost) = 0;

  /// Commits a previously proposed step.
  void Commit(const PlanStep& step);

  /// Re-evaluates plan_of() against the current global plan (must be
  /// called on every planner after any planner commits).
  void Refresh() { plan_of_ = eval_({}); }

 protected:
  double Evaluate(const std::vector<TaskId>& local_add) const {
    return eval_(local_add);
  }

  const Topology* topology_;
  GlobalPlanEvaluator eval_;
  TaskSet plan_;
  double plan_of_;
};

/// Planner for *full* sub-topologies (Algorithm 4). Within each operator,
/// tasks are ranked by delta_ij — the OF gain of keeping task j alive while
/// the rest of operator i fails (evaluated on the sub-topology in
/// isolation); the first step replicates the best task of every operator
/// (one complete MC-tree of the full sub-topology), later steps add the
/// single task whose addition maximizes the global plan metric.
class FullSubPlanner : public SubTopologyPlanner {
 public:
  FullSubPlanner(const Topology* topology, GlobalPlanEvaluator eval);

  StatusOr<std::optional<PlanStep>> ProposeStep(int max_cost) override;

 private:
  /// Per operator, its tasks sorted by descending delta; consumed from the
  /// front as tasks enter the plan.
  std::vector<std::vector<TaskId>> ranked_;
};

/// Planner for *structured* sub-topologies (Algorithm 3). The topology is
/// split into units; each candidate expansion is either a single segment
/// that immediately raises the global plan metric, or a BFS-assembled set
/// of connected segments (one per visited unit) that completes an MC-tree.
/// The candidate with maximum profit density wins. A capped MC-tree
/// completion fallback rescues cases where the BFS cannot assemble a
/// profitable set; if even that fails and the plan is empty, the cheapest
/// segment set is proposed as the unconditional initial step.
class StructuredSubPlanner : public SubTopologyPlanner {
 public:
  /// Initialization splits units and enumerates segments; check Init().
  StructuredSubPlanner(const Topology* topology, GlobalPlanEvaluator eval,
                       McTreeEnumOptions mc_options = {});

  /// Status of unit splitting; ProposeStep fails if not OK.
  const Status& Init() const { return init_; }

  StatusOr<std::optional<PlanStep>> ProposeStep(int max_cost) override;

 private:
  /// Greedily assembles connected segments across units starting from
  /// segment `seed` of unit `unit_idx`, bounded by `max_cost` new tasks.
  TaskSet AssembleAcrossUnits(int unit_idx, const TaskSet& seed,
                              int max_cost) const;

  std::optional<PlanStep> MakeStep(const TaskSet& cg) const;

  Status init_;
  McTreeEnumOptions mc_options_;
  UnitSplit split_;
  /// Lazily enumerated full MC-trees for the completion fallback; nullopt
  /// until first needed, empty if enumeration was infeasible.
  mutable std::optional<std::vector<TaskSet>> fallback_trees_;
};

}  // namespace ppa

#endif  // PPA_PLANNER_SUB_PLANNER_H_
