#ifndef PPA_PLANNER_EXHAUSTIVE_PLANNER_H_
#define PPA_PLANNER_EXHAUSTIVE_PLANNER_H_

#include "common/random.h"
#include "planner/planner.h"

namespace ppa {

/// Ground-truth planner: enumerates every task subset of size <= budget
/// and keeps the best by worst-case OF. O(2^tasks) — refuses topologies
/// with more than `max_tasks` tasks. Exists as an oracle for tests and for
/// validating the DP planner (which must match it exactly).
class ExhaustivePlanner : public Planner {
 public:
  explicit ExhaustivePlanner(int max_tasks = 22) : max_tasks_(max_tasks) {}

  std::string_view name() const override { return "exhaustive"; }

  /// `request.max_search_steps`, when nonzero, caps the number of subsets
  /// examined (ResourceExhausted beyond it).
  StatusOr<ReplicationPlan> Plan(const PlanRequest& request) override;

 private:
  int max_tasks_;
};

/// Uniform-random baseline: replicates `budget` tasks drawn uniformly
/// without replacement. The floor every informed planner must beat in
/// benchmarks; deterministic for a given seed.
class RandomPlanner : public Planner {
 public:
  explicit RandomPlanner(uint64_t seed = 1) : seed_(seed) {}

  std::string_view name() const override { return "random"; }

  /// Linear; ignores `request.max_search_steps`.
  StatusOr<ReplicationPlan> Plan(const PlanRequest& request) override;

 private:
  uint64_t seed_;
};

}  // namespace ppa

#endif  // PPA_PLANNER_EXHAUSTIVE_PLANNER_H_
