#include "planner/greedy_planner.h"

#include <algorithm>
#include <vector>

#include "fidelity/metrics.h"

namespace ppa {

StatusOr<ReplicationPlan> GreedyPlanner::Plan(const PlanRequest& request) {
  PPA_RETURN_IF_ERROR(ValidatePlanRequest(request));
  const Topology& topology = *request.topology;
  const int n = topology.num_tasks();
  const int budget = std::min(request.budget, n);

  struct Scored {
    TaskId task;
    double of_when_failed;
  };
  std::vector<Scored> scores;
  scores.reserve(static_cast<size_t>(n));
  for (TaskId t = 0; t < n; ++t) {
    scores.push_back(Scored{t, SingleFailureOutputFidelity(topology, t)});
  }
  // Ascending OF: the most damaging tasks first (Alg. 2 line 5).
  std::stable_sort(scores.begin(), scores.end(),
                   [](const Scored& a, const Scored& b) {
                     if (a.of_when_failed != b.of_when_failed) {
                       return a.of_when_failed < b.of_when_failed;
                     }
                     return a.task < b.task;
                   });

  ReplicationPlan plan;
  plan.replicated = TaskSet(n);
  for (int i = 0; i < budget; ++i) {
    plan.replicated.Add(scores[static_cast<size_t>(i)].task);
  }
  plan.output_fidelity = PlanOutputFidelity(topology, plan.replicated);
  return plan;
}

}  // namespace ppa
