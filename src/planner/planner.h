#ifndef PPA_PLANNER_PLANNER_H_
#define PPA_PLANNER_PLANNER_H_

#include <memory>
#include <string_view>

#include "common/status_or.h"
#include "planner/replication_plan.h"
#include "topology/topology.h"

namespace ppa {

/// Interface of a partially-active-replication planner: given a topology
/// and a resource budget (number of tasks that may be actively replicated),
/// produce a plan maximizing worst-case tentative-output fidelity
/// (Definition 2).
class Planner {
 public:
  virtual ~Planner() = default;

  /// Short identifier used in logs and benchmark tables ("dp", "greedy",
  /// "sa").
  virtual std::string_view name() const = 0;

  /// Produces a plan using at most `budget` replicated tasks. `budget` may
  /// exceed the task count (it is clamped). The returned plan's
  /// `output_fidelity` is always freshly evaluated with
  /// PlanOutputFidelity().
  virtual StatusOr<ReplicationPlan> Plan(const Topology& topology,
                                         int budget) = 0;
};

/// The built-in planner kinds.
enum class PlannerKind {
  kDynamicProgramming,
  kGreedy,
  kStructureAware,
};

/// Creates a planner of the given kind with default options.
std::unique_ptr<Planner> CreatePlanner(PlannerKind kind);

}  // namespace ppa

#endif  // PPA_PLANNER_PLANNER_H_
