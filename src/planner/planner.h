#ifndef PPA_PLANNER_PLANNER_H_
#define PPA_PLANNER_PLANNER_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status_or.h"
#include "fidelity/mc_tree.h"
#include "fidelity/metrics.h"
#include "planner/replication_plan.h"
#include "topology/topology.h"

namespace ppa {

/// One planning request: the topology to protect, the resource budget
/// (number of tasks that may be actively replicated), and the
/// cross-planner execution limits. A value type so experiment specs can
/// carry, store, and replay requests verbatim.
struct PlanRequest {
  PlanRequest() = default;
  /// Convenience for the common call shape. `topology` must outlive the
  /// Plan() call.
  PlanRequest(const Topology& topology_in, int budget_in,
              uint64_t max_search_steps_in = 0)
      : topology(&topology_in),
        budget(budget_in),
        max_search_steps(max_search_steps_in) {}

  /// The topology to plan for. Never owned; must be non-null.
  const Topology* topology = nullptr;

  /// Replication budget. May exceed the task count (it is clamped);
  /// negative is rejected.
  int budget = 0;

  /// Deterministic planning deadline: planners whose search is
  /// super-linear abort with ResourceExhausted once they have considered
  /// this many candidates. 0 keeps each planner's constructor-time cap.
  /// A step budget — not wall-clock — so a request that fits the deadline
  /// on one machine fits it everywhere (reproducibility, DESIGN.md §10).
  /// Planners with polynomial searches (greedy, sa, expected, random)
  /// document that they ignore it.
  uint64_t max_search_steps = 0;
};

/// Validates the request's shape: non-null topology, non-negative budget.
[[nodiscard]] Status ValidatePlanRequest(const PlanRequest& request);

/// Interface of a partially-active-replication planner: given a plan
/// request (topology + budget, Definition 2), produce a plan maximizing
/// worst-case tentative-output fidelity.
class Planner {
 public:
  virtual ~Planner() = default;

  /// Short identifier used in logs and benchmark tables ("dp", "greedy",
  /// "sa").
  virtual std::string_view name() const = 0;

  /// Produces a plan using at most `request.budget` replicated tasks. The
  /// returned plan's `output_fidelity` is always freshly evaluated with
  /// PlanOutputFidelity().
  virtual StatusOr<ReplicationPlan> Plan(const PlanRequest& request) = 0;
};

/// The built-in planner kinds.
enum class PlannerKind {
  kDynamicProgramming,
  kGreedy,
  kStructureAware,
  kExhaustive,
  kRandom,
  kExpectedFidelity,
};

/// Stable short name of a planner kind ("dp", "greedy", "sa",
/// "exhaustive", "random", "expected") — round-trips through
/// PlannerKindFromString.
[[nodiscard]] std::string_view PlannerKindToString(PlannerKind kind);

/// Parses a planner kind from its PlannerKindToString name (also accepts
/// the spelled-out aliases "structure-aware" and "expected-fidelity").
/// InvalidArgument on unknown names, with the valid names in the message.
StatusOr<PlannerKind> PlannerKindFromString(std::string_view name);

/// Cross-planner construction options: the union of every built-in
/// planner's knobs, so CLIs and experiment specs configure any kind
/// through one value type. Each kind reads only its own fields.
struct PlannerOptions {
  /// MC-tree / segment enumeration bound (dp, sa).
  McTreeEnumOptions mc_tree;
  /// Candidate-plan cap of the exponential DP search (dp).
  size_t max_candidate_plans = size_t{1} << 22;
  /// Spend leftover budget on individually damaging tasks (sa).
  bool fill_budget = true;
  /// Plan-quality metric the search maximizes (sa).
  LossModel metric = LossModel::kOutputFidelity;
  /// Task-count ceiling of the exhaustive oracle (exhaustive).
  int exhaustive_max_tasks = 22;
  /// Seed of the uniform-random baseline (random).
  uint64_t seed = 1;
  /// Per-task failure probabilities; empty = uniform (expected).
  std::vector<double> failure_probabilities;
};

/// Creates a planner of the given kind with default options.
std::unique_ptr<Planner> CreatePlanner(PlannerKind kind);

/// Creates a planner of the given kind, configured from the fields of
/// `options` that apply to it.
std::unique_ptr<Planner> CreatePlanner(PlannerKind kind,
                                       const PlannerOptions& options);

}  // namespace ppa

#endif  // PPA_PLANNER_PLANNER_H_
