#ifndef PPA_PLANNER_EXTRACT_H_
#define PPA_PLANNER_EXTRACT_H_

#include <vector>

#include "common/status_or.h"
#include "topology/topology.h"

namespace ppa {

/// A standalone topology carved out of a parent topology, with id mappings
/// back to the parent. Operators whose upstream edges were all severed
/// become sources of the extracted topology; their source rates and task
/// weights are set so every task's output rate matches its rate in the
/// parent. Operators that keep only part of their input have their
/// selectivity rescaled for the same reason.
struct ExtractedTopology {
  Topology topo;
  /// Local operator id -> parent operator id.
  std::vector<OperatorId> parent_op;
  /// Local task id -> parent task id.
  std::vector<TaskId> parent_task;
  /// Parent task id -> local task id (kInvalidTaskId when absent).
  std::vector<TaskId> local_task;
  /// Parent-level substreams that were severed by the extraction (both
  /// endpoints may or may not be inside the extracted set); used to reason
  /// about connectivity across extraction boundaries.
  std::vector<Substream> cut_substreams;
};

/// Extracts the sub-topology induced by `ops` (parent operator ids).
/// `cut_edges` lists additional operator-level edges *inside* `ops` that
/// must be severed (used by unit splitting); pass {} for none.
StatusOr<ExtractedTopology> ExtractSubTopology(
    const Topology& parent, const std::vector<OperatorId>& ops,
    const std::vector<std::pair<OperatorId, OperatorId>>& cut_edges = {});

}  // namespace ppa

#endif  // PPA_PLANNER_EXTRACT_H_
