#ifndef PPA_PLANNER_EXPECTED_FIDELITY_PLANNER_H_
#define PPA_PLANNER_EXPECTED_FIDELITY_PLANNER_H_

#include <vector>

#include "planner/planner.h"

namespace ppa {

/// Planner for the *independent-failure* objective: maximize the expected
/// output fidelity when at most one task fails, task t with probability
/// `probabilities[t]` (uniform by default). Under that objective the
/// optimal plan is exactly the greedy ranking of Alg. 2 weighted by
/// failure probability — the expected-fidelity gain of replicating t is
/// p_t * (1 - OF(only t fails)), and gains are additive because at most
/// one failure occurs. This planner makes the paper's implicit dichotomy
/// concrete: the structure-agnostic greedy is *optimal* for independent
/// single failures, while the correlated worst case (Definition 2) needs
/// the MC-tree-aware planners.
class ExpectedFidelityPlanner : public Planner {
 public:
  /// Uniform failure probabilities.
  ExpectedFidelityPlanner() = default;
  /// Per-task failure probabilities (validated against the topology at
  /// Plan time).
  explicit ExpectedFidelityPlanner(std::vector<double> probabilities)
      : probabilities_(std::move(probabilities)) {}

  std::string_view name() const override { return "expected"; }

  /// The returned plan's `output_fidelity` is still the worst-case
  /// correlated OF (for comparability across planners); use
  /// ExpectedFidelitySingleFailure() for the objective value. Linear;
  /// ignores `request.max_search_steps`.
  StatusOr<ReplicationPlan> Plan(const PlanRequest& request) override;

 private:
  std::vector<double> probabilities_;
};

}  // namespace ppa

#endif  // PPA_PLANNER_EXPECTED_FIDELITY_PLANNER_H_
