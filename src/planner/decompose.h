#ifndef PPA_PLANNER_DECOMPOSE_H_
#define PPA_PLANNER_DECOMPOSE_H_

#include <vector>

#include "common/status_or.h"
#include "planner/extract.h"
#include "topology/topology.h"

namespace ppa {

/// One sub-topology produced by decomposition (Sec. IV-C3): either a *full*
/// sub-topology (every interior partitioning is Full) or a *structured* one
/// (no interior partitioning is Full; the sub-topology's output operators
/// may feed other sub-topologies through Full edges).
struct SubTopology {
  ExtractedTopology extracted;
  bool is_full = false;
};

/// Decomposes `topology` into sub-topologies by upstream DFS from the sink
/// operators: a sub-topology grows over upstream neighbours as long as the
/// connecting edge's scheme agrees with the sub-topology's type (Full edges
/// for full sub-topologies, non-Full for structured ones); a disagreeing
/// upstream operator seeds a new sub-topology. The first traversed edge
/// fixes an undecided type; a single-operator sub-topology defaults to
/// structured. Every operator lands in exactly one sub-topology.
StatusOr<std::vector<SubTopology>> DecomposeTopology(const Topology& topology);

}  // namespace ppa

#endif  // PPA_PLANNER_DECOMPOSE_H_
