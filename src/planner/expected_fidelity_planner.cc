#include "planner/expected_fidelity_planner.h"

#include <algorithm>

#include "fidelity/expected.h"
#include "fidelity/metrics.h"

namespace ppa {

StatusOr<ReplicationPlan> ExpectedFidelityPlanner::Plan(
    const PlanRequest& request) {
  PPA_RETURN_IF_ERROR(ValidatePlanRequest(request));
  const Topology& topology = *request.topology;
  const int n = topology.num_tasks();
  const int budget = std::min(request.budget, n);
  std::vector<double> probabilities = probabilities_;
  if (probabilities.empty()) {
    probabilities.assign(static_cast<size_t>(n),
                         1.0 / static_cast<double>(n));
  }
  if (static_cast<int>(probabilities.size()) != n) {
    return InvalidArgument("one failure probability per task required");
  }

  // Expected-fidelity gain of replicating t: p_t * damage(t). Gains are
  // additive under the at-most-one-failure model, so the top-R gains form
  // the optimal plan.
  const std::vector<double> importance = TaskImportance(topology);
  struct Scored {
    TaskId task;
    double gain;
  };
  std::vector<Scored> scored;
  scored.reserve(static_cast<size_t>(n));
  for (TaskId t = 0; t < n; ++t) {
    scored.push_back(Scored{t, probabilities[static_cast<size_t>(t)] *
                                   importance[static_cast<size_t>(t)]});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     if (a.gain != b.gain) {
                       return a.gain > b.gain;
                     }
                     return a.task < b.task;
                   });

  ReplicationPlan plan;
  plan.replicated = TaskSet(n);
  for (int i = 0; i < budget; ++i) {
    plan.replicated.Add(scored[static_cast<size_t>(i)].task);
  }
  plan.output_fidelity = PlanOutputFidelity(topology, plan.replicated);
  return plan;
}

}  // namespace ppa
