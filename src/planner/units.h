#ifndef PPA_PLANNER_UNITS_H_
#define PPA_PLANNER_UNITS_H_

#include <vector>

#include "common/status_or.h"
#include "fidelity/mc_tree.h"
#include "planner/extract.h"
#include "topology/task_set.h"
#include "topology/topology.h"

namespace ppa {

/// One unit of a structured topology (Sec. IV-C1) together with its
/// segments (the unit's MC-trees). Segments are expressed in the *parent*
/// topology's task-id space so planners can combine segments across units.
struct Unit {
  ExtractedTopology extracted;
  /// Each segment as a parent-id task set.
  std::vector<TaskSet> segments;
  /// Standalone output fidelity of each segment when the unit is treated as
  /// an independent topology (the ranking key of max_of() in Alg. 3).
  std::vector<double> segment_of;
};

/// Result of splitting a structured topology into units.
struct UnitSplit {
  std::vector<Unit> units;
  /// Parent-level substreams crossing unit boundaries.
  std::vector<Substream> cut_substreams;
  /// units[i] is adjacent to every unit in adjacency[i] (shares at least
  /// one cut substream).
  std::vector<std::vector<int>> adjacency;
  /// Parent task id -> unit index.
  std::vector<int> task_unit;
};

/// Splits a structured topology into units by severing the Merge input
/// edges of (a) operators that also have a Split-partitioned output and
/// (b) multi-input (join/union) operators — the two segment-explosion
/// situations of Sec. IV-C1. If segment enumeration still exceeds
/// `mc_options.max_trees`, falls back to severing *every* Merge edge.
StatusOr<UnitSplit> SplitStructuredTopology(
    const Topology& topology, const McTreeEnumOptions& mc_options = {});

}  // namespace ppa

#endif  // PPA_PLANNER_UNITS_H_
