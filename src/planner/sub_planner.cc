#include "planner/sub_planner.h"

#include <algorithm>
#include <deque>

#include "fidelity/metrics.h"

namespace ppa {

SubTopologyPlanner::SubTopologyPlanner(const Topology* topology,
                                       GlobalPlanEvaluator eval)
    : topology_(topology),
      eval_(std::move(eval)),
      plan_(topology->num_tasks()),
      plan_of_(eval_({})) {}

void SubTopologyPlanner::Commit(const PlanStep& step) {
  for (TaskId t : step.add_tasks) {
    PPA_CHECK(plan_.Add(t)) << "step adds already-replicated task";
  }
  plan_of_ = step.new_of;
}

FullSubPlanner::FullSubPlanner(const Topology* topology,
                               GlobalPlanEvaluator eval)
    : SubTopologyPlanner(topology, std::move(eval)) {
  // delta_ij: OF when all of operator i fails except task j, everything
  // else alive — evaluated on the sub-topology in isolation (Alg. 4
  // line 3); a static per-operator ranking.
  ranked_.resize(static_cast<size_t>(topology->num_operators()));
  for (const OperatorInfo& oi : topology->operators()) {
    struct Scored {
      TaskId task;
      double delta;
    };
    std::vector<Scored> scored;
    scored.reserve(oi.tasks.size());
    for (TaskId keep : oi.tasks) {
      TaskSet failed(topology->num_tasks());
      for (TaskId t : oi.tasks) {
        if (t != keep) {
          failed.Add(t);
        }
      }
      scored.push_back(Scored{keep, ComputeOutputFidelity(*topology, failed)});
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const Scored& a, const Scored& b) {
                       if (a.delta != b.delta) {
                         return a.delta > b.delta;
                       }
                       return a.task < b.task;
                     });
    auto& ranked = ranked_[static_cast<size_t>(oi.id)];
    for (const Scored& s : scored) {
      ranked.push_back(s.task);
    }
  }
}

StatusOr<std::optional<PlanStep>> FullSubPlanner::ProposeStep(int max_cost) {
  if (max_cost <= 0) {
    return std::optional<PlanStep>();
  }
  if (plan_.empty()) {
    // First step: one task per operator (the minimal complete MC-tree of a
    // full topology), best-ranked task of each.
    const int n_ops = topology_->num_operators();
    if (max_cost < n_ops) {
      return std::optional<PlanStep>();
    }
    PlanStep step;
    for (const auto& ranked : ranked_) {
      PPA_CHECK(!ranked.empty());
      step.add_tasks.push_back(ranked.front());
    }
    step.new_of = Evaluate(step.add_tasks);
    return std::optional<PlanStep>(std::move(step));
  }
  // Later steps: extend with the best remaining task of some operator
  // (Alg. 4 lines 10-16), judged by the global plan metric.
  std::optional<PlanStep> best;
  for (const auto& ranked : ranked_) {
    for (TaskId t : ranked) {
      if (plan_.Contains(t)) {
        continue;
      }
      PlanStep step;
      step.add_tasks.push_back(t);
      step.new_of = Evaluate(step.add_tasks);
      if (!best.has_value() || step.new_of > best->new_of) {
        best = std::move(step);
      }
      break;  // Only the operator's best remaining task is a candidate.
    }
  }
  return best;
}

StructuredSubPlanner::StructuredSubPlanner(const Topology* topology,
                                           GlobalPlanEvaluator eval,
                                           McTreeEnumOptions mc_options)
    : SubTopologyPlanner(topology, std::move(eval)),
      mc_options_(mc_options) {
  auto split = SplitStructuredTopology(*topology, mc_options_);
  if (!split.ok()) {
    init_ = split.status();
    return;
  }
  split_ = *std::move(split);
  init_ = OkStatus();
}

TaskSet StructuredSubPlanner::AssembleAcrossUnits(int unit_idx,
                                                  const TaskSet& seed,
                                                  int max_cost) const {
  TaskSet cg = seed;
  // BFS over unit adjacency (Alg. 3 lines 10-15): each visited unit
  // contributes its best segment connected to the current set (ranked by
  // the segment's standalone fidelity within its unit, "max_of").
  std::vector<bool> visited(split_.units.size(), false);
  visited[static_cast<size_t>(unit_idx)] = true;
  std::deque<int> queue;
  for (int nb : split_.adjacency[static_cast<size_t>(unit_idx)]) {
    queue.push_back(nb);
  }
  while (!queue.empty()) {
    const int uj = queue.front();
    queue.pop_front();
    if (visited[static_cast<size_t>(uj)]) {
      continue;
    }
    visited[static_cast<size_t>(uj)] = true;
    const Unit& unit = split_.units[static_cast<size_t>(uj)];
    // Segments of unit uj connected to cg through a cut substream.
    int best_seg = -1;
    for (size_t s = 0; s < unit.segments.size(); ++s) {
      const TaskSet& seg = unit.segments[s];
      bool connected = false;
      for (const Substream& cut : split_.cut_substreams) {
        if ((seg.Contains(cut.from) && cg.Contains(cut.to)) ||
            (seg.Contains(cut.to) && cg.Contains(cut.from))) {
          connected = true;
          break;
        }
      }
      if (!connected) {
        continue;
      }
      if (best_seg < 0 ||
          unit.segment_of[s] > unit.segment_of[static_cast<size_t>(best_seg)]) {
        best_seg = static_cast<int>(s);
      }
    }
    if (best_seg >= 0) {
      TaskSet extended = cg;
      extended.UnionWith(unit.segments[static_cast<size_t>(best_seg)]);
      if (plan_.CountMissing(extended) > max_cost) {
        break;  // Budget exceeded: stop the BFS (Alg. 3 line 15).
      }
      cg = std::move(extended);
    }
    for (int nb : split_.adjacency[static_cast<size_t>(uj)]) {
      if (!visited[static_cast<size_t>(nb)]) {
        queue.push_back(nb);
      }
    }
  }
  return cg;
}

std::optional<PlanStep> StructuredSubPlanner::MakeStep(
    const TaskSet& cg) const {
  PlanStep step;
  for (TaskId t : cg.ToVector()) {
    if (!plan_.Contains(t)) {
      step.add_tasks.push_back(t);
    }
  }
  if (step.add_tasks.empty()) {
    return std::nullopt;
  }
  step.new_of = Evaluate(step.add_tasks);
  return step;
}

StatusOr<std::optional<PlanStep>> StructuredSubPlanner::ProposeStep(
    int max_cost) {
  PPA_RETURN_IF_ERROR(init_);
  if (max_cost <= 0) {
    return std::optional<PlanStep>();
  }

  std::optional<PlanStep> best;
  double best_density = 0.0;
  auto consider = [&](std::optional<PlanStep> step) {
    if (!step.has_value() || step->cost() > max_cost) {
      return;
    }
    const double density = StepDensity(*step);
    if (density <= 0.0) {
      return;
    }
    if (!best.has_value() || density > best_density) {
      best_density = density;
      best = std::move(step);
    }
  };

  for (size_t u = 0; u < split_.units.size(); ++u) {
    const Unit& unit = split_.units[u];
    for (const TaskSet& seg : unit.segments) {
      if (seg.IsSubsetOf(plan_)) {
        continue;
      }
      // Does the segment alone already improve the plan (Alg. 3 line 9)?
      std::optional<PlanStep> alone = MakeStep(seg);
      if (alone.has_value() && alone->new_of > plan_of_) {
        consider(std::move(alone));
      } else {
        consider(
            MakeStep(AssembleAcrossUnits(static_cast<int>(u), seg, max_cost)));
      }
    }
  }

  if (best.has_value()) {
    return best;
  }

  // Completion fallback: cheapest full MC-tree whose replication improves
  // the plan within budget.
  if (!fallback_trees_.has_value()) {
    auto trees = EnumerateMcTrees(*topology_, mc_options_);
    fallback_trees_ = trees.ok() ? *std::move(trees) : std::vector<TaskSet>{};
  }
  std::optional<PlanStep> cheapest;
  auto consider_cheapest = [&](std::optional<PlanStep> step,
                               bool require_gain) {
    if (!step.has_value() || step->cost() > max_cost) {
      return;
    }
    if (require_gain && step->new_of <= plan_of_) {
      return;
    }
    if (!cheapest.has_value() || step->cost() < cheapest->cost() ||
        (step->cost() == cheapest->cost() &&
         step->new_of > cheapest->new_of)) {
      cheapest = std::move(step);
    }
  };
  for (const TaskSet& tree : *fallback_trees_) {
    consider_cheapest(MakeStep(tree), /*require_gain=*/true);
  }
  if (cheapest.has_value()) {
    return cheapest;
  }

  // Initial-step fallback: an empty plan must still propose *something*
  // (the driver commits every sub-topology's initial step regardless of
  // immediate gain — a sub-topology in isolation often gains nothing until
  // its neighbours are covered too). Propose the cheapest MC-tree, or the
  // cheapest single segment if tree enumeration was infeasible.
  if (plan_.empty()) {
    for (const TaskSet& tree : *fallback_trees_) {
      consider_cheapest(MakeStep(tree), /*require_gain=*/false);
    }
    if (!cheapest.has_value()) {
      for (const Unit& unit : split_.units) {
        for (const TaskSet& seg : unit.segments) {
          consider_cheapest(MakeStep(seg), /*require_gain=*/false);
        }
      }
    }
  }
  return cheapest;
}

}  // namespace ppa
