#ifndef PPA_PLANNER_GREEDY_PLANNER_H_
#define PPA_PLANNER_GREEDY_PLANNER_H_

#include "planner/planner.h"

namespace ppa {

/// The structure-agnostic greedy baseline (Algorithm 2): every task is
/// scored by the output fidelity of the topology when only that task fails;
/// the R tasks whose individual failure hurts the most (lowest OF) are
/// replicated. Ties break on lower task id for determinism.
///
/// As the paper observes, this ignores whether the chosen tasks form
/// complete MC-trees, so with small budgets its worst-case plan fidelity is
/// often zero (Sec. IV-B, Fig. 13/14).
class GreedyPlanner : public Planner {
 public:
  std::string_view name() const override { return "greedy"; }

  /// Polynomial search; ignores `request.max_search_steps`.
  StatusOr<ReplicationPlan> Plan(const PlanRequest& request) override;
};

}  // namespace ppa

#endif  // PPA_PLANNER_GREEDY_PLANNER_H_
