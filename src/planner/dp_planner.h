#ifndef PPA_PLANNER_DP_PLANNER_H_
#define PPA_PLANNER_DP_PLANNER_H_

#include "fidelity/mc_tree.h"
#include "planner/planner.h"

namespace ppa {

/// Options bounding the exhaustive search of the DP planner.
struct DpPlannerOptions {
  /// Passed through to MC-tree enumeration.
  McTreeEnumOptions mc_tree;
  /// Abort with ResourceExhausted once the candidate-plan set exceeds this
  /// size (the algorithm is O(2^T) in the MC-tree count, Sec. IV-A).
  size_t max_candidate_plans = size_t{1} << 22;
};

/// The optimal bottom-up dynamic-programming planner (Algorithm 1).
/// Candidate plans are unions of MC-trees grown one resource unit at a
/// time; a plan is expanded with every MC-tree whose non-replicated task
/// count exactly matches the available headroom, and retired when no
/// remaining tree can absorb the headroom. The best plan by worst-case OF
/// wins (Theorem 1: no plan with the same or lower usage beats it).
class DpPlanner : public Planner {
 public:
  explicit DpPlanner(DpPlannerOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "dp"; }

  /// `request.max_search_steps`, when nonzero, overrides
  /// `options_.max_candidate_plans` as the candidate-set cap.
  StatusOr<ReplicationPlan> Plan(const PlanRequest& request) override;

 private:
  DpPlannerOptions options_;
};

}  // namespace ppa

#endif  // PPA_PLANNER_DP_PLANNER_H_
