#include "planner/planner.h"

#include "planner/dp_planner.h"
#include "planner/exhaustive_planner.h"
#include "planner/expected_fidelity_planner.h"
#include "planner/greedy_planner.h"
#include "planner/structure_aware_planner.h"

namespace ppa {

Status ValidatePlanRequest(const PlanRequest& request) {
  if (request.topology == nullptr) {
    return InvalidArgument("plan request has no topology");
  }
  if (request.budget < 0) {
    return InvalidArgument("budget must be non-negative");
  }
  return OkStatus();
}

std::string_view PlannerKindToString(PlannerKind kind) {
  switch (kind) {
    case PlannerKind::kDynamicProgramming:
      return "dp";
    case PlannerKind::kGreedy:
      return "greedy";
    case PlannerKind::kStructureAware:
      return "sa";
    case PlannerKind::kExhaustive:
      return "exhaustive";
    case PlannerKind::kRandom:
      return "random";
    case PlannerKind::kExpectedFidelity:
      return "expected";
  }
  return "?";
}

StatusOr<PlannerKind> PlannerKindFromString(std::string_view name) {
  if (name == "dp") {
    return PlannerKind::kDynamicProgramming;
  }
  if (name == "greedy") {
    return PlannerKind::kGreedy;
  }
  if (name == "sa" || name == "structure-aware") {
    return PlannerKind::kStructureAware;
  }
  if (name == "exhaustive") {
    return PlannerKind::kExhaustive;
  }
  if (name == "random") {
    return PlannerKind::kRandom;
  }
  if (name == "expected" || name == "expected-fidelity") {
    return PlannerKind::kExpectedFidelity;
  }
  return InvalidArgument("unknown planner '" + std::string(name) +
                         "' (expected dp|greedy|sa|exhaustive|random|"
                         "expected)");
}

std::unique_ptr<Planner> CreatePlanner(PlannerKind kind) {
  return CreatePlanner(kind, PlannerOptions{});
}

std::unique_ptr<Planner> CreatePlanner(PlannerKind kind,
                                       const PlannerOptions& options) {
  switch (kind) {
    case PlannerKind::kDynamicProgramming: {
      DpPlannerOptions dp;
      dp.mc_tree = options.mc_tree;
      dp.max_candidate_plans = options.max_candidate_plans;
      return std::make_unique<DpPlanner>(dp);
    }
    case PlannerKind::kGreedy:
      return std::make_unique<GreedyPlanner>();
    case PlannerKind::kStructureAware: {
      StructureAwareOptions sa;
      sa.mc_tree = options.mc_tree;
      sa.fill_budget = options.fill_budget;
      sa.metric = options.metric;
      return std::make_unique<StructureAwarePlanner>(sa);
    }
    case PlannerKind::kExhaustive:
      return std::make_unique<ExhaustivePlanner>(
          options.exhaustive_max_tasks);
    case PlannerKind::kRandom:
      return std::make_unique<RandomPlanner>(options.seed);
    case PlannerKind::kExpectedFidelity:
      if (options.failure_probabilities.empty()) {
        return std::make_unique<ExpectedFidelityPlanner>();
      }
      return std::make_unique<ExpectedFidelityPlanner>(
          options.failure_probabilities);
  }
  return nullptr;
}

}  // namespace ppa
