#include "planner/planner.h"

#include "planner/dp_planner.h"
#include "planner/greedy_planner.h"
#include "planner/structure_aware_planner.h"

namespace ppa {

std::unique_ptr<Planner> CreatePlanner(PlannerKind kind) {
  switch (kind) {
    case PlannerKind::kDynamicProgramming:
      return std::make_unique<DpPlanner>();
    case PlannerKind::kGreedy:
      return std::make_unique<GreedyPlanner>();
    case PlannerKind::kStructureAware:
      return std::make_unique<StructureAwarePlanner>();
  }
  return nullptr;
}

}  // namespace ppa
