#include "planner/units.h"

#include <algorithm>
#include <numeric>

#include "fidelity/metrics.h"

namespace ppa {
namespace {

/// Union-find over operator ids.
class DisjointSets {
 public:
  explicit DisjointSets(int n) : parent_(static_cast<size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) { parent_[static_cast<size_t>(Find(a))] = Find(b); }

 private:
  std::vector<int> parent_;
};

using OpEdge = std::pair<OperatorId, OperatorId>;

/// The paper's cut rule: sever the Merge input edges of operators that have
/// a Split output or multiple input streams.
std::vector<OpEdge> PaperCutRule(const Topology& topology) {
  std::vector<OpEdge> cuts;
  for (const OperatorInfo& oi : topology.operators()) {
    bool has_merge_input = false;
    for (OperatorId up : oi.upstream) {
      auto scheme = topology.EdgeScheme(up, oi.id);
      if (scheme.ok() && *scheme == PartitionScheme::kMerge) {
        has_merge_input = true;
      }
    }
    if (!has_merge_input) {
      continue;
    }
    bool has_split_output = false;
    for (OperatorId down : oi.downstream) {
      auto scheme = topology.EdgeScheme(oi.id, down);
      if (scheme.ok() && *scheme == PartitionScheme::kSplit) {
        has_split_output = true;
      }
    }
    const bool multi_input = oi.upstream.size() >= 2;
    if (has_split_output || multi_input) {
      for (OperatorId up : oi.upstream) {
        auto scheme = topology.EdgeScheme(up, oi.id);
        if (scheme.ok() && *scheme == PartitionScheme::kMerge) {
          cuts.emplace_back(up, oi.id);
        }
      }
    }
  }
  return cuts;
}

/// Fallback: sever every Merge edge.
std::vector<OpEdge> AllMergeCutRule(const Topology& topology) {
  std::vector<OpEdge> cuts;
  for (const StreamEdge& e : topology.edges()) {
    if (e.scheme == PartitionScheme::kMerge) {
      cuts.emplace_back(e.from, e.to);
    }
  }
  return cuts;
}

StatusOr<UnitSplit> SplitWithCuts(const Topology& topology,
                                  const std::vector<OpEdge>& cuts,
                                  const McTreeEnumOptions& mc_options) {
  const int n = topology.num_operators();
  DisjointSets components(n);
  for (const StreamEdge& e : topology.edges()) {
    if (std::find(cuts.begin(), cuts.end(), OpEdge(e.from, e.to)) ==
        cuts.end()) {
      components.Union(e.from, e.to);
    }
  }
  // Group operators by component root, ordered by first appearance in topo
  // order for determinism.
  std::vector<std::vector<OperatorId>> groups;
  std::vector<int> group_of_root(static_cast<size_t>(n), -1);
  for (OperatorId op : topology.topo_order()) {
    const int root = components.Find(op);
    if (group_of_root[static_cast<size_t>(root)] == -1) {
      group_of_root[static_cast<size_t>(root)] =
          static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<size_t>(group_of_root[static_cast<size_t>(root)])]
        .push_back(op);
  }

  UnitSplit split;
  split.task_unit.assign(static_cast<size_t>(topology.num_tasks()), -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    // Cut edges internal to this group must be passed to the extractor.
    std::vector<OpEdge> internal_cuts;
    for (const OpEdge& c : cuts) {
      const bool from_in = std::find(groups[g].begin(), groups[g].end(),
                                     c.first) != groups[g].end();
      const bool to_in = std::find(groups[g].begin(), groups[g].end(),
                                   c.second) != groups[g].end();
      if (from_in && to_in) {
        internal_cuts.push_back(c);
      }
    }
    Unit unit;
    PPA_ASSIGN_OR_RETURN(
        unit.extracted,
        ExtractSubTopology(topology, groups[g], internal_cuts));
    PPA_ASSIGN_OR_RETURN(std::vector<TaskSet> local_segments,
                         EnumerateMcTrees(unit.extracted.topo, mc_options));
    unit.segments.reserve(local_segments.size());
    unit.segment_of.reserve(local_segments.size());
    for (const TaskSet& local : local_segments) {
      unit.segment_of.push_back(
          PlanOutputFidelity(unit.extracted.topo, local));
      TaskSet parent_ids(topology.num_tasks());
      for (TaskId lt : local.ToVector()) {
        parent_ids.Add(unit.extracted.parent_task[static_cast<size_t>(lt)]);
      }
      unit.segments.push_back(std::move(parent_ids));
    }
    for (TaskId lt = 0; lt < unit.extracted.topo.num_tasks(); ++lt) {
      split.task_unit[static_cast<size_t>(
          unit.extracted.parent_task[static_cast<size_t>(lt)])] =
          static_cast<int>(g);
    }
    split.units.push_back(std::move(unit));
  }

  // Cut substreams and unit adjacency.
  for (const Substream& s : topology.substreams()) {
    if (std::find(cuts.begin(), cuts.end(), OpEdge(s.from_op, s.to_op)) !=
        cuts.end()) {
      split.cut_substreams.push_back(s);
    }
  }
  split.adjacency.assign(split.units.size(), {});
  for (const Substream& s : split.cut_substreams) {
    const int a = split.task_unit[static_cast<size_t>(s.from)];
    const int b = split.task_unit[static_cast<size_t>(s.to)];
    if (a == b) {
      continue;
    }
    auto& adj_a = split.adjacency[static_cast<size_t>(a)];
    auto& adj_b = split.adjacency[static_cast<size_t>(b)];
    if (std::find(adj_a.begin(), adj_a.end(), b) == adj_a.end()) {
      adj_a.push_back(b);
    }
    if (std::find(adj_b.begin(), adj_b.end(), a) == adj_b.end()) {
      adj_b.push_back(a);
    }
  }
  return split;
}

}  // namespace

StatusOr<UnitSplit> SplitStructuredTopology(
    const Topology& topology, const McTreeEnumOptions& mc_options) {
  auto result = SplitWithCuts(topology, PaperCutRule(topology), mc_options);
  if (result.ok() ||
      result.status().code() != StatusCode::kResourceExhausted) {
    return result;
  }
  // Segment explosion: fall back to cutting every Merge edge.
  return SplitWithCuts(topology, AllMergeCutRule(topology), mc_options);
}

}  // namespace ppa
