#include "planner/decompose.h"

#include <algorithm>
#include <deque>
#include <optional>

namespace ppa {

StatusOr<std::vector<SubTopology>> DecomposeTopology(
    const Topology& topology) {
  const int n = topology.num_operators();
  std::vector<int> assignment(static_cast<size_t>(n), -1);
  std::vector<std::vector<OperatorId>> groups;
  std::vector<bool> group_is_full;

  // Start points: sink operators first (paper), then any operator that a
  // boundary pushed into the queue.
  std::deque<OperatorId> start_points(topology.sink_operators().begin(),
                                      topology.sink_operators().end());

  while (!start_points.empty()) {
    const OperatorId seed = start_points.front();
    start_points.pop_front();
    if (assignment[static_cast<size_t>(seed)] != -1) {
      continue;
    }
    const int group = static_cast<int>(groups.size());
    groups.emplace_back();
    group_is_full.push_back(false);
    std::optional<bool> type;  // true = full, false = structured

    std::vector<OperatorId> stack{seed};
    assignment[static_cast<size_t>(seed)] = group;
    groups[static_cast<size_t>(group)].push_back(seed);
    while (!stack.empty()) {
      const OperatorId cur = stack.back();
      stack.pop_back();
      for (OperatorId up : topology.op(cur).upstream) {
        if (assignment[static_cast<size_t>(up)] != -1) {
          continue;
        }
        PPA_ASSIGN_OR_RETURN(PartitionScheme scheme,
                             topology.EdgeScheme(up, cur));
        const bool edge_full = scheme == PartitionScheme::kFull;
        if (!type.has_value()) {
          type = edge_full;
          group_is_full[static_cast<size_t>(group)] = edge_full;
        }
        if (edge_full == *type) {
          assignment[static_cast<size_t>(up)] = group;
          groups[static_cast<size_t>(group)].push_back(up);
          stack.push_back(up);
        } else {
          start_points.push_back(up);
        }
      }
    }
  }

  // Safety net: any operator unreachable by upstream DFS from a sink (not
  // possible in a valid DAG whose every path ends at a sink, but cheap to
  // guard) becomes its own structured sub-topology.
  for (OperatorId op = 0; op < n; ++op) {
    if (assignment[static_cast<size_t>(op)] == -1) {
      groups.push_back({op});
      group_is_full.push_back(false);
    }
  }

  std::vector<SubTopology> result;
  result.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    SubTopology sub;
    sub.is_full = group_is_full[g];
    PPA_ASSIGN_OR_RETURN(sub.extracted,
                         ExtractSubTopology(topology, groups[g]));
    result.push_back(std::move(sub));
  }
  return result;
}

}  // namespace ppa
