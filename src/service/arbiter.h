#ifndef PPA_SERVICE_ARBITER_H_
#define PPA_SERVICE_ARBITER_H_

#include <vector>

#include "common/sim_time.h"
#include "report/json.h"

namespace ppa {
namespace service {

/// One tenant's stake in a recovery incident: it has unrecovered primary
/// failures and wants the shared standby pool's attention.
struct ArbitrationClaim {
  /// Tenant id (service-assigned, dense in submission order).
  int tenant = -1;
  /// The tenant's QoS priority (0 = most critical).
  int priority = 0;
  /// 1 - OF(failed tasks): the fraction of this tenant's output weight
  /// that stays degraded until its recovery completes.
  double fidelity_at_risk = 0.0;
  /// Number of unrecovered tasks backing the claim.
  int failed_tasks = 0;
};

/// The cross-job recovery-arbitration policy, as a deterministic total
/// order: priority ascending (critical tenants first), then
/// fidelity-at-risk descending (most-degraded output first), then tenant
/// id ascending. Pure and stable: equal claims keep their relative rank
/// by tenant id, so the order is identical on every run and worker count.
[[nodiscard]] std::vector<ArbitrationClaim> ArbitrationOrder(
    std::vector<ArbitrationClaim> claims);

/// The hold assigned to one ranked claim: rank * arbitration_slot, so the
/// top-ranked tenant recovers immediately and each following tenant waits
/// one more slot.
struct ArbitrationHold {
  ArbitrationClaim claim;
  Duration hold = Duration::Zero();
};

/// One arbitration incident: the instant it was decided and every claim
/// in rank order with its hold.
struct ArbitrationDecision {
  TimePoint at;
  std::vector<ArbitrationHold> order;
};

/// JSON object for one decision, with a stable field order (suitable for
/// byte-identity comparisons across worker counts).
[[nodiscard]] JsonValue ArbitrationDecisionToJson(
    const ArbitrationDecision& decision);

}  // namespace service
}  // namespace ppa

#endif  // PPA_SERVICE_ARBITER_H_
