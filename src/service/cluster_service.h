#ifndef PPA_SERVICE_CLUSTER_SERVICE_H_
#define PPA_SERVICE_CLUSTER_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "backend/execution_backend.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/status_or.h"
#include "report/json.h"
#include "runtime/node_pool.h"
#include "runtime/streaming_job.h"
#include "service/arbiter.h"
#include "service/tenant.h"

namespace ppa {
namespace service {

/// Shape and policy of the shared cluster the service manages.
struct ServiceConfig {
  /// Worker nodes of the shared pool (node ids [0, num_worker_nodes)).
  int num_worker_nodes = 16;
  /// Standby nodes of the shared pool.
  int num_standby_nodes = 8;
  /// Primary task copies one worker node can host (across all tenants).
  int worker_slots_per_node = 4;
  /// Active replicas one standby node can host (across all tenants).
  int standby_slots_per_node = 4;
  /// Recovery-arbitration slot: the tenant ranked i-th in an incident has
  /// its recovery completions held back by i * arbitration_slot.
  Duration arbitration_slot = Duration::Seconds(2);
  /// Queue submissions that do not fit right now (admitted later in
  /// (priority, arrival) order as capacity frees up); when false they are
  /// rejected instead.
  bool queue_when_full = true;

  /// InvalidArgument when any count/slot is non-positive (standbys may be
  /// zero) or the arbitration slot is negative.
  [[nodiscard]] Status Validate() const;
};

/// Service-level admission and incident counters (tenant-level metrics
/// live in each tenant job's own registry).
struct AdmissionStats {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t queued = 0;
  int64_t evicted = 0;
  int64_t degradations = 0;
  int64_t promotions = 0;
  int64_t arbitrations = 0;
  int64_t node_failures = 0;
  int64_t node_revivals = 0;
};

/// Multi-tenant control plane over one shared cluster (the paper studies
/// one job; production MPSPEs run many, and correlated failures cut
/// across them). The service owns a NodePool and the tenants' jobs, all
/// driven by one execution backend on one shared strand (the tenants of a
/// shared pool interleave exactly as the deterministic sim would — see
/// JobRuntimeDeps::strand):
///
///  - Admission control: Submit() validates a TenantSpec, rejects work
///    that can never fit (even on an empty, fully alive cluster), admits
///    what fits now, and queues the rest in (priority, arrival) order.
///  - Placement: primaries spread across the tenant's failure domains on
///    the least-loaded allowed alive workers; replicas go through the
///    tenant Cluster view's PlacementConstraints (budget ceiling,
///    affinity/anti-affinity, domain spreading).
///  - Failure propagation: Inject*Failure() fails nodes once in the
///    shared pool and notifies every running tenant, so one rack outage
///    hits all tenants placed there — the cross-job correlated failure.
///  - Recovery arbitration: each incident ranks the affected tenants by
///    (priority asc, fidelity-at-risk desc, tenant asc) and holds the
///    i-th tenant's recovery by i * arbitration_slot, serializing
///    recovery load on the shared standbys deterministically.
///  - Standby rebalancing: when failures shrink the standby pool below
///    the committed budgets, the least-important PPA tenants degrade to
///    passive-only; revivals re-promote the most important first, then
///    re-scan the admission queue.
///
/// Everything is deterministic: same specs + same event sequence on the
/// same backend reproduce identical traces, reports, and arbitration
/// logs.
class ClusterService {
 public:
  /// PPA_CHECK-fails on an invalid config. `backend` must outlive the
  /// service.
  ClusterService(ServiceConfig config, backend::ExecutionBackend* backend);

  ClusterService(const ClusterService&) = delete;
  ClusterService& operator=(const ClusterService&) = delete;

  const ServiceConfig& config() const { return config_; }
  /// The shared physical cluster.
  const NodePool& pool() const { return *pool_; }
  /// The strand the service and all its tenants run on. Drivers must
  /// schedule fault timelines onto this strand so service mutations stay
  /// serialized with (and deterministically ordered against) tenant work.
  uint64_t strand() const { return strand_; }

  /// Assigns a pool node to a failure domain (before or between
  /// admissions; placements already made are not migrated).
  Status AssignDomain(int node, int domain);

  /// Submits a tenant. Returns its id (dense, in submission order) when
  /// admitted or queued; InvalidArgument for malformed specs;
  /// ResourceExhausted when the job can never fit (or does not fit now
  /// and queueing is off). Rejected tenants are not recorded.
  StatusOr<int> Submit(TenantSpec spec);

  /// Evicts a tenant: a queued tenant is dropped; a running one is
  /// stopped, its placements released, and the freed capacity offered to
  /// degraded tenants and then the queue. Records stay readable.
  Status Evict(int tenant);

  /// Fails a pool node for every tenant at once, then runs one
  /// arbitration round and rebalances standby budgets.
  Status InjectNodeFailure(int node);

  /// Fails every alive node of a failure domain (one arbitration round
  /// for the whole incident — the correlated multi-tenant failure).
  Status InjectDomainFailure(int domain);

  /// Revives a failed node; re-promotes degraded tenants and re-scans the
  /// admission queue against the recovered capacity.
  Status ReviveNode(int node);

  /// Revives every failed node of a domain.
  Status ReviveDomain(int domain);

  /// Ids of every recorded tenant, ascending (includes evicted ones).
  [[nodiscard]] std::vector<int> TenantIds() const;

  /// Phase of a tenant; NotFound for unknown ids.
  [[nodiscard]] StatusOr<TenantPhase> PhaseOf(int tenant) const;

  /// The tenant's job; nullptr while queued, after a queued-tenant
  /// eviction, or for unknown ids. Evicted running tenants keep their
  /// (stopped) job readable.
  [[nodiscard]] const StreamingJob* job(int tenant) const;
  [[nodiscard]] StreamingJob* job(int tenant);

  /// The tenant's spec as submitted; nullptr for unknown ids.
  [[nodiscard]] const TenantSpec* spec(int tenant) const;

  /// The tenant's parsed topology; nullptr for unknown ids.
  [[nodiscard]] const Topology* topology(int tenant) const;

  /// Virtual time the tenant was (last) admitted.
  [[nodiscard]] StatusOr<TimePoint> AdmittedAt(int tenant) const;

  /// Arbitration holds the tenant's detections actually consumed.
  [[nodiscard]] int64_t HoldsApplied(int tenant) const;

  /// True when no running tenant has failed or recovering tasks.
  [[nodiscard]] bool AllRecovered() const;

  /// Every arbitration incident, in decision order.
  const std::vector<ArbitrationDecision>& arbitration_log() const {
    return arbitration_log_;
  }

  const AdmissionStats& stats() const { return stats_; }

  /// Service-wide report with a stable field order: shape, admission
  /// stats, one entry per tenant (phase, budget, placement, output and
  /// recovery counts), and the arbitration log. Byte-identical across
  /// runs of the same scenario.
  [[nodiscard]] JsonValue ReportToJson() const;

  /// Full observability profile of one tenant's job (metrics + trace +
  /// spans + fidelity timeseries); NotFound for unknown or never-admitted
  /// tenants.
  [[nodiscard]] StatusOr<JsonValue> TenantProfileToJson(int tenant) const;

 private:
  struct Tenant {
    int id = -1;
    TenantSpec spec;
    Topology topology;
    TenantPhase phase = TenantPhase::kQueued;
    /// Admission-queue tie-break within a priority class.
    uint64_t arrival = 0;
    std::unique_ptr<StreamingJob> job;
    TimePoint admitted_at;
    /// Hold assigned by the last arbitration round, consumed by the
    /// job's next detection.
    Duration pending_hold = Duration::Zero();
    int64_t holds_applied = 0;
  };

  /// True when `node` is ruled out for this tenant's primaries.
  [[nodiscard]] static bool WorkerExcluded(const TenantSpec& spec, int node);

  /// Free primary slots summed over alive workers the tenant allows.
  [[nodiscard]] int64_t FreeWorkerSlots(const TenantSpec& spec) const;
  /// Replica-slot capacity summed over every alive standby.
  [[nodiscard]] int64_t AliveStandbySlots() const;
  /// Replica budgets committed by tenants currently running undegraded.
  [[nodiscard]] int64_t CommittedStandbyBudget() const;

  /// Capacity check for admitting `t` right now.
  [[nodiscard]] bool FitsNow(const Tenant& t) const;
  /// Builds, places, binds, and starts the tenant's job. On failure the
  /// partial job is stopped and released; the tenant keeps its phase.
  [[nodiscard]] Status AdmitNow(Tenant& t);
  /// Spread-aware primary placement (see class comment).
  [[nodiscard]] Status PlaceTenantPrimaries(const Tenant& t,
                                            StreamingJob* job);
  /// Admits every queued tenant that fits, in (priority, arrival) order.
  void ScanQueue();

  /// Pool-level failure + per-tenant notification (no arbitration).
  void FailNodeInternal(int node);
  /// Ranks tenants with unrecovered tasks and assigns pending holds.
  void Arbitrate();
  /// Consumed by tenant jobs' RecoveryArbiter callbacks at detection.
  [[nodiscard]] Duration ConsumeHold(int tenant);
  /// Degrades / re-promotes tenants until committed budgets fit the alive
  /// standby pool.
  void RebalanceStandbys();
  void DegradeTenant(Tenant& t);
  void PromoteTenant(Tenant& t);

  ServiceConfig config_;
  backend::ExecutionBackend* backend_;
  /// The single strand the service and every tenant job share.
  uint64_t strand_;
  std::shared_ptr<NodePool> pool_;
  std::map<int, Tenant> tenants_;
  int next_tenant_id_ = 0;
  uint64_t next_arrival_ = 0;
  AdmissionStats stats_;
  std::vector<ArbitrationDecision> arbitration_log_;
};

}  // namespace service
}  // namespace ppa

#endif  // PPA_SERVICE_CLUSTER_SERVICE_H_
