#include "service/arbiter.h"

#include <algorithm>
#include <utility>

namespace ppa {
namespace service {

std::vector<ArbitrationClaim> ArbitrationOrder(
    std::vector<ArbitrationClaim> claims) {
  std::sort(claims.begin(), claims.end(),
            [](const ArbitrationClaim& a, const ArbitrationClaim& b) {
              if (a.priority != b.priority) {
                return a.priority < b.priority;
              }
              if (a.fidelity_at_risk != b.fidelity_at_risk) {
                return a.fidelity_at_risk > b.fidelity_at_risk;
              }
              return a.tenant < b.tenant;
            });
  return claims;
}

JsonValue ArbitrationDecisionToJson(const ArbitrationDecision& decision) {
  JsonValue root = JsonValue::Object();
  root.Set("t_s", decision.at.seconds());
  JsonValue order = JsonValue::Array();
  for (const ArbitrationHold& hold : decision.order) {
    JsonValue entry = JsonValue::Object();
    entry.Set("tenant", hold.claim.tenant);
    entry.Set("priority", hold.claim.priority);
    entry.Set("fidelity_at_risk", hold.claim.fidelity_at_risk);
    entry.Set("failed_tasks", hold.claim.failed_tasks);
    entry.Set("hold_s", hold.hold.seconds());
    order.Append(std::move(entry));
  }
  root.Set("order", std::move(order));
  return root;
}

}  // namespace service
}  // namespace ppa
