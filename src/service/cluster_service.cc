#include "service/cluster_service.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "common/logging.h"
#include "exp/run_spec.h"
#include "fidelity/metrics.h"
#include "report/experiment_report.h"
#include "topology/task_set.h"

namespace ppa {
namespace service {

namespace {

bool Contains(const std::vector<int>& nodes, int node) {
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

Status CheckNodeIds(const std::vector<int>& nodes, int lo, int hi,
                    const char* label) {
  for (int node : nodes) {
    if (node < lo || node >= hi) {
      return InvalidArgument(std::string(label) +
                             " references a node outside the pool");
    }
  }
  return OkStatus();
}

}  // namespace

Status ServiceConfig::Validate() const {
  if (num_worker_nodes <= 0) {
    return InvalidArgument("num_worker_nodes must be positive");
  }
  if (num_standby_nodes < 0) {
    return InvalidArgument("num_standby_nodes must be >= 0");
  }
  if (worker_slots_per_node <= 0) {
    return InvalidArgument("worker_slots_per_node must be positive");
  }
  if (standby_slots_per_node <= 0) {
    return InvalidArgument("standby_slots_per_node must be positive");
  }
  if (arbitration_slot < Duration::Zero()) {
    return InvalidArgument("arbitration_slot must be >= 0");
  }
  return OkStatus();
}

ClusterService::ClusterService(ServiceConfig config,
                               backend::ExecutionBackend* backend)
    : config_(config),
      backend_(backend),
      strand_(0),
      pool_(std::make_shared<NodePool>(config.num_worker_nodes,
                                       config.num_standby_nodes)) {
  PPA_CHECK_OK(config_.Validate());
  PPA_CHECK(backend_ != nullptr);
  strand_ = backend_->NewStrand();
}

Status ClusterService::AssignDomain(int node, int domain) {
  return pool_->AssignDomain(node, domain);
}

StatusOr<int> ClusterService::Submit(TenantSpec spec) {
  ++stats_.submitted;
  StatusOr<Topology> topology = ValidateTenantSpec(spec);
  if (!topology.ok()) {
    ++stats_.rejected;
    return topology.status();
  }

  // Affinity lists must name real nodes of the right class.
  Status ids = OkStatus();
  const int workers = pool_->num_workers();
  const int nodes = pool_->num_nodes();
  if (ids.ok()) ids = CheckNodeIds(spec.worker_affinity, 0, workers, "worker_affinity");
  if (ids.ok()) ids = CheckNodeIds(spec.worker_anti_affinity, 0, workers, "worker_anti_affinity");
  if (ids.ok()) ids = CheckNodeIds(spec.standby_affinity, workers, nodes, "standby_affinity");
  if (ids.ok()) ids = CheckNodeIds(spec.standby_anti_affinity, workers, nodes, "standby_anti_affinity");
  if (!ids.ok()) {
    ++stats_.rejected;
    return ids;
  }

  // Permanent infeasibility: reject jobs that could not fit even on an
  // empty, fully alive cluster.
  int allowed_workers = 0;
  for (int node = 0; node < workers; ++node) {
    if (!WorkerExcluded(spec, node)) {
      ++allowed_workers;
    }
  }
  if (topology.value().num_tasks() >
      static_cast<int64_t>(allowed_workers) * config_.worker_slots_per_node) {
    ++stats_.rejected;
    return ResourceExhausted("job has more tasks than the cluster can host");
  }
  int allowed_standbys = 0;
  for (int node = workers; node < nodes; ++node) {
    const bool in_affinity =
        spec.standby_affinity.empty() || Contains(spec.standby_affinity, node);
    if (in_affinity && !Contains(spec.standby_anti_affinity, node)) {
      ++allowed_standbys;
    }
  }
  if (spec.replica_budget > static_cast<int64_t>(allowed_standbys) *
                                config_.standby_slots_per_node) {
    ++stats_.rejected;
    return ResourceExhausted("replica_budget exceeds the standby pool");
  }

  const int id = next_tenant_id_++;
  Tenant t;
  t.id = id;
  t.spec = std::move(spec);
  if (t.spec.name.empty()) {
    t.spec.name = "tenant" + std::to_string(id);
  }
  t.topology = std::move(topology).value();
  t.arrival = next_arrival_++;
  auto [it, inserted] = tenants_.emplace(id, std::move(t));
  PPA_CHECK(inserted);
  Tenant& tenant = it->second;

  if (FitsNow(tenant)) {
    Status admitted = AdmitNow(tenant);
    if (!admitted.ok()) {
      tenants_.erase(it);
      --next_tenant_id_;
      --next_arrival_;
      ++stats_.rejected;
      return admitted;
    }
    ++stats_.admitted;
    return id;
  }
  if (!config_.queue_when_full) {
    tenants_.erase(it);
    --next_tenant_id_;
    --next_arrival_;
    ++stats_.rejected;
    return ResourceExhausted("cluster is full and queueing is disabled");
  }
  tenant.phase = TenantPhase::kQueued;
  ++stats_.queued;
  return id;
}

Status ClusterService::Evict(int tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return NotFound("unknown tenant");
  }
  Tenant& t = it->second;
  if (t.phase == TenantPhase::kEvicted) {
    return FailedPrecondition("tenant already evicted");
  }
  const bool was_running = t.job != nullptr;
  if (was_running) {
    t.job->Stop();
    t.job->cluster().ReleaseAllPlacements();
  }
  t.phase = TenantPhase::kEvicted;
  t.pending_hold = Duration::Zero();
  ++stats_.evicted;
  if (was_running) {
    RebalanceStandbys();
    ScanQueue();
  }
  return OkStatus();
}

Status ClusterService::InjectNodeFailure(int node) {
  if (node < 0 || node >= pool_->num_nodes()) {
    return InvalidArgument("node out of range");
  }
  if (!pool_->NodeAlive(node)) {
    return FailedPrecondition("node already failed");
  }
  FailNodeInternal(node);
  Arbitrate();
  RebalanceStandbys();
  return OkStatus();
}

Status ClusterService::InjectDomainFailure(int domain) {
  const std::vector<int> members = pool_->NodesInDomain(domain);
  if (members.empty()) {
    return NotFound("no nodes in domain");
  }
  bool any_alive = false;
  for (int node : members) {
    if (pool_->NodeAlive(node)) {
      any_alive = true;
      FailNodeInternal(node);
    }
  }
  if (!any_alive) {
    return FailedPrecondition("domain already failed");
  }
  Arbitrate();
  RebalanceStandbys();
  return OkStatus();
}

Status ClusterService::ReviveNode(int node) {
  if (node < 0 || node >= pool_->num_nodes()) {
    return InvalidArgument("node out of range");
  }
  if (pool_->NodeAlive(node)) {
    return FailedPrecondition("node is alive");
  }
  pool_->ReviveNode(node);
  ++stats_.node_revivals;
  for (auto& [id, t] : tenants_) {
    if (t.phase == TenantPhase::kRunning || t.phase == TenantPhase::kDegraded) {
      PPA_CHECK_OK(t.job->NotifyNodeRevived(node));
    }
  }
  RebalanceStandbys();
  ScanQueue();
  return OkStatus();
}

Status ClusterService::ReviveDomain(int domain) {
  const std::vector<int> members = pool_->NodesInDomain(domain);
  if (members.empty()) {
    return NotFound("no nodes in domain");
  }
  bool any_failed = false;
  for (int node : members) {
    if (!pool_->NodeAlive(node)) {
      any_failed = true;
      pool_->ReviveNode(node);
      ++stats_.node_revivals;
      for (auto& [id, t] : tenants_) {
        if (t.phase == TenantPhase::kRunning ||
            t.phase == TenantPhase::kDegraded) {
          PPA_CHECK_OK(t.job->NotifyNodeRevived(node));
        }
      }
    }
  }
  if (!any_failed) {
    return FailedPrecondition("domain fully alive");
  }
  RebalanceStandbys();
  ScanQueue();
  return OkStatus();
}

std::vector<int> ClusterService::TenantIds() const {
  std::vector<int> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, t] : tenants_) {
    ids.push_back(id);
  }
  return ids;
}

StatusOr<TenantPhase> ClusterService::PhaseOf(int tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return NotFound("unknown tenant");
  }
  return it->second.phase;
}

const StreamingJob* ClusterService::job(int tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.job.get();
}

StreamingJob* ClusterService::job(int tenant) {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.job.get();
}

const TenantSpec* ClusterService::spec(int tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second.spec;
}

const Topology* ClusterService::topology(int tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second.topology;
}

StatusOr<TimePoint> ClusterService::AdmittedAt(int tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.job == nullptr) {
    return NotFound("tenant was never admitted");
  }
  return it->second.admitted_at;
}

int64_t ClusterService::HoldsApplied(int tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.holds_applied;
}

bool ClusterService::AllRecovered() const {
  for (const auto& [id, t] : tenants_) {
    if ((t.phase == TenantPhase::kRunning ||
         t.phase == TenantPhase::kDegraded) &&
        !t.job->AllRecovered()) {
      return false;
    }
  }
  return true;
}

bool ClusterService::WorkerExcluded(const TenantSpec& spec, int node) {
  if (!spec.worker_affinity.empty() && !Contains(spec.worker_affinity, node)) {
    return true;
  }
  return Contains(spec.worker_anti_affinity, node);
}

int64_t ClusterService::FreeWorkerSlots(const TenantSpec& spec) const {
  int64_t free = 0;
  for (int node = 0; node < pool_->num_workers(); ++node) {
    if (!pool_->NodeAlive(node) || WorkerExcluded(spec, node)) {
      continue;
    }
    free += std::max<int64_t>(
        0, config_.worker_slots_per_node - pool_->PrimaryLoad(node));
  }
  return free;
}

int64_t ClusterService::AliveStandbySlots() const {
  int64_t slots = 0;
  for (int node = pool_->num_workers(); node < pool_->num_nodes(); ++node) {
    if (pool_->NodeAlive(node)) {
      slots += config_.standby_slots_per_node;
    }
  }
  return slots;
}

int64_t ClusterService::CommittedStandbyBudget() const {
  int64_t committed = 0;
  for (const auto& [id, t] : tenants_) {
    if (t.phase == TenantPhase::kRunning) {
      committed += t.spec.replica_budget;
    }
  }
  return committed;
}

bool ClusterService::FitsNow(const Tenant& t) const {
  if (FreeWorkerSlots(t.spec) < t.topology.num_tasks()) {
    return false;
  }
  return CommittedStandbyBudget() + t.spec.replica_budget <=
         AliveStandbySlots();
}

Status ClusterService::AdmitNow(Tenant& t) {
  auto job = std::make_unique<StreamingJob>(
      t.topology, t.spec.config, JobRuntimeDeps(backend_, pool_, strand_));
  PlacementConstraints constraints;
  constraints.replica_ceiling = t.spec.replica_budget;
  constraints.replica_affinity = t.spec.standby_affinity;
  constraints.replica_anti_affinity = t.spec.standby_anti_affinity;
  constraints.spread_replicas_across_domains =
      t.spec.spread_replicas_across_domains;
  job->cluster().SetConstraints(constraints);

  const int id = t.id;
  Status status = [&]() -> Status {
    PPA_RETURN_IF_ERROR(PlaceTenantPrimaries(t, job.get()));
    if (t.spec.bind) {
      PPA_RETURN_IF_ERROR(t.spec.bind(t.topology, t.spec.config, job.get()));
    } else {
      PPA_RETURN_IF_ERROR(
          exp::BindGenericWorkload(t.topology, t.spec.config, job.get()));
    }
    if (!t.spec.initial_plan.empty()) {
      TaskSet plan(static_cast<int>(t.topology.num_tasks()));
      for (TaskId task : t.spec.initial_plan) {
        plan.Add(task);
      }
      PPA_RETURN_IF_ERROR(job->SetActiveReplicaSet(plan));
    }
    PPA_RETURN_IF_ERROR(job->SetRecoveryArbiter(
        [this, id](const std::vector<TaskRecoverySpec>&) {
          return ConsumeHold(id);
        }));
    return job->Start();
  }();
  if (!status.ok()) {
    job->Stop();
    job->cluster().ReleaseAllPlacements();
    return status;
  }
  t.job = std::move(job);
  t.admitted_at = backend_->now();
  t.phase = TenantPhase::kRunning;
  return OkStatus();
}

Status ClusterService::PlaceTenantPrimaries(const Tenant& t,
                                            StreamingJob* job) {
  // Spread this tenant's primaries across failure domains: each task goes
  // to the allowed alive worker with a free slot whose domain hosts the
  // fewest of this tenant's primaries so far, breaking ties by least
  // global primary load, then lowest node id (strict improvements only,
  // matching the PlaceReplicaAuto determinism contract).
  std::map<int, int64_t> tenant_domain_load;
  const int64_t num_tasks = t.topology.num_tasks();
  for (TaskId task = 0; task < num_tasks; ++task) {
    int best = -1;
    int64_t best_domain_load = 0;
    int64_t best_load = 0;
    for (int node = 0; node < pool_->num_workers(); ++node) {
      if (!pool_->NodeAlive(node) || WorkerExcluded(t.spec, node)) {
        continue;
      }
      const int64_t load = pool_->PrimaryLoad(node);
      if (load >= config_.worker_slots_per_node) {
        continue;
      }
      const int64_t domain_load = tenant_domain_load[pool_->DomainOf(node)];
      if (best < 0 || domain_load < best_domain_load ||
          (domain_load == best_domain_load && load < best_load)) {
        best = node;
        best_domain_load = domain_load;
        best_load = load;
      }
    }
    if (best < 0) {
      return ResourceExhausted("no free worker slot for primary");
    }
    PPA_RETURN_IF_ERROR(job->cluster().PlacePrimary(task, best));
    ++tenant_domain_load[pool_->DomainOf(best)];
  }
  return OkStatus();
}

void ClusterService::ScanQueue() {
  std::vector<int> queued;
  for (const auto& [id, t] : tenants_) {
    if (t.phase == TenantPhase::kQueued) {
      queued.push_back(id);
    }
  }
  std::sort(queued.begin(), queued.end(), [this](int a, int b) {
    const Tenant& ta = tenants_.at(a);
    const Tenant& tb = tenants_.at(b);
    if (ta.spec.priority != tb.spec.priority) {
      return ta.spec.priority < tb.spec.priority;
    }
    return ta.arrival < tb.arrival;
  });
  for (int id : queued) {
    Tenant& t = tenants_.at(id);
    if (!FitsNow(t)) {
      continue;
    }
    Status admitted = AdmitNow(t);
    if (admitted.ok()) {
      ++stats_.admitted;
    } else {
      PPA_LOG(Warning) << "queued tenant " << id
                       << " failed admission: " << admitted.message();
      t.phase = TenantPhase::kEvicted;
      ++stats_.evicted;
    }
  }
}

void ClusterService::FailNodeInternal(int node) {
  pool_->FailNode(node);
  ++stats_.node_failures;
  for (auto& [id, t] : tenants_) {
    if (t.phase == TenantPhase::kRunning || t.phase == TenantPhase::kDegraded) {
      PPA_CHECK_OK(t.job->NotifyNodeFailed(node));
    }
  }
}

void ClusterService::Arbitrate() {
  std::vector<ArbitrationClaim> claims;
  for (auto& [id, t] : tenants_) {
    if (t.phase != TenantPhase::kRunning && t.phase != TenantPhase::kDegraded) {
      continue;
    }
    const TaskSet failed = t.job->UnrecoveredTasks();
    if (failed.empty()) {
      t.pending_hold = Duration::Zero();
      continue;
    }
    ArbitrationClaim claim;
    claim.tenant = id;
    claim.priority = t.spec.priority;
    claim.fidelity_at_risk = 1.0 - ComputeOutputFidelity(t.topology, failed);
    claim.failed_tasks = static_cast<int>(failed.ToVector().size());
    claims.push_back(claim);
  }
  if (claims.empty()) {
    return;
  }
  const std::vector<ArbitrationClaim> order = ArbitrationOrder(std::move(claims));
  ArbitrationDecision decision;
  decision.at = backend_->now();
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const Duration hold =
        config_.arbitration_slot * static_cast<int64_t>(rank);
    tenants_.at(order[rank].tenant).pending_hold = hold;
    decision.order.push_back(ArbitrationHold{order[rank], hold});
  }
  arbitration_log_.push_back(std::move(decision));
  ++stats_.arbitrations;
}

Duration ClusterService::ConsumeHold(int tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Duration::Zero();
  }
  const Duration hold = it->second.pending_hold;
  it->second.pending_hold = Duration::Zero();
  if (hold > Duration::Zero()) {
    ++it->second.holds_applied;
  }
  return hold;
}

void ClusterService::RebalanceStandbys() {
  const int64_t slots = AliveStandbySlots();
  int64_t committed = CommittedStandbyBudget();

  // Shed load: degrade the least important running PPA tenants (highest
  // priority number, then highest id) until the committed budgets fit.
  while (committed > slots) {
    int victim = -1;
    for (auto& [id, t] : tenants_) {
      if (t.phase != TenantPhase::kRunning ||
          t.spec.config.ft_mode != FtMode::kPpa || t.spec.replica_budget <= 0) {
        continue;
      }
      if (victim < 0) {
        victim = id;
        continue;
      }
      const Tenant& incumbent = tenants_.at(victim);
      if (t.spec.priority > incumbent.spec.priority ||
          (t.spec.priority == incumbent.spec.priority && id > victim)) {
        victim = id;
      }
    }
    if (victim < 0) {
      PPA_LOG(Warning) << "standby pool oversubscribed by "
                       << committed - slots
                       << " replicas with no degradable tenant";
      break;
    }
    Tenant& t = tenants_.at(victim);
    committed -= t.spec.replica_budget;
    DegradeTenant(t);
  }

  // Reclaim: re-promote the most important degraded tenants first.
  std::vector<int> degraded;
  for (const auto& [id, t] : tenants_) {
    if (t.phase == TenantPhase::kDegraded) {
      degraded.push_back(id);
    }
  }
  std::sort(degraded.begin(), degraded.end(), [this](int a, int b) {
    const Tenant& ta = tenants_.at(a);
    const Tenant& tb = tenants_.at(b);
    if (ta.spec.priority != tb.spec.priority) {
      return ta.spec.priority < tb.spec.priority;
    }
    return a < b;
  });
  for (int id : degraded) {
    Tenant& t = tenants_.at(id);
    if (committed + t.spec.replica_budget > slots) {
      continue;
    }
    committed += t.spec.replica_budget;
    PromoteTenant(t);
  }
}

void ClusterService::DegradeTenant(Tenant& t) {
  PlacementConstraints constraints = t.job->cluster().constraints();
  constraints.replica_ceiling = 0;
  t.job->cluster().SetConstraints(constraints);
  const TaskSet none(static_cast<int>(t.topology.num_tasks()));
  Status applied = t.job->ApplyActiveReplicaSet(none);
  if (!applied.ok()) {
    PPA_LOG(Warning) << "degrading tenant " << t.id
                     << " failed: " << applied.message();
  }
  t.phase = TenantPhase::kDegraded;
  ++stats_.degradations;
}

void ClusterService::PromoteTenant(Tenant& t) {
  PlacementConstraints constraints = t.job->cluster().constraints();
  constraints.replica_ceiling = t.spec.replica_budget;
  t.job->cluster().SetConstraints(constraints);
  t.phase = TenantPhase::kRunning;
  if (!t.spec.initial_plan.empty()) {
    TaskSet plan(static_cast<int>(t.topology.num_tasks()));
    for (TaskId task : t.spec.initial_plan) {
      plan.Add(task);
    }
    Status applied = t.job->ApplyActiveReplicaSet(plan);
    if (!applied.ok()) {
      PPA_LOG(Warning) << "re-promoting tenant " << t.id
                       << " failed: " << applied.message();
    }
  }
  ++stats_.promotions;
}

JsonValue ClusterService::ReportToJson() const {
  JsonValue root = JsonValue::Object();

  JsonValue shape = JsonValue::Object();
  shape.Set("workers", config_.num_worker_nodes);
  shape.Set("standbys", config_.num_standby_nodes);
  shape.Set("worker_slots_per_node", config_.worker_slots_per_node);
  shape.Set("standby_slots_per_node", config_.standby_slots_per_node);
  shape.Set("arbitration_slot_s", config_.arbitration_slot.seconds());
  root.Set("service", std::move(shape));

  JsonValue admission = JsonValue::Object();
  admission.Set("submitted", stats_.submitted);
  admission.Set("admitted", stats_.admitted);
  admission.Set("rejected", stats_.rejected);
  admission.Set("queued", stats_.queued);
  admission.Set("evicted", stats_.evicted);
  admission.Set("degradations", stats_.degradations);
  admission.Set("promotions", stats_.promotions);
  admission.Set("arbitrations", stats_.arbitrations);
  admission.Set("node_failures", stats_.node_failures);
  admission.Set("node_revivals", stats_.node_revivals);
  root.Set("admission", std::move(admission));

  JsonValue tenants = JsonValue::Array();
  for (const auto& [id, t] : tenants_) {
    JsonValue entry = JsonValue::Object();
    entry.Set("tenant", id);
    entry.Set("name", t.spec.name);
    entry.Set("phase", std::string(TenantPhaseToString(t.phase)));
    entry.Set("priority", t.spec.priority);
    entry.Set("replica_budget", t.spec.replica_budget);
    entry.Set("tasks", t.topology.num_tasks());
    entry.Set("ft_mode", std::string(FtModeToString(t.spec.config.ft_mode)));
    if (t.job != nullptr) {
      entry.Set("admitted_at_s", t.admitted_at.seconds());
      entry.Set("placed_replicas", t.job->cluster().PlacedReplicas());
      entry.Set("sink_records",
                static_cast<int64_t>(t.job->sink_records().size()));
      entry.Set("recoveries",
                static_cast<int64_t>(t.job->recovery_reports().size()));
      entry.Set("holds_applied", t.holds_applied);
      entry.Set("all_recovered", t.job->AllRecovered());
    }
    tenants.Append(std::move(entry));
  }
  root.Set("tenants", std::move(tenants));

  JsonValue arbitration = JsonValue::Array();
  for (const ArbitrationDecision& decision : arbitration_log_) {
    arbitration.Append(ArbitrationDecisionToJson(decision));
  }
  root.Set("arbitration", std::move(arbitration));
  return root;
}

StatusOr<JsonValue> ClusterService::TenantProfileToJson(int tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.job == nullptr) {
    return NotFound("tenant was never admitted");
  }
  return JobProfileToJson(*it->second.job);
}

}  // namespace service
}  // namespace ppa
