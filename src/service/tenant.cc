#include "service/tenant.h"

#include <set>
#include <string>
#include <utility>

#include "topology/serialize.h"

namespace ppa {
namespace service {

std::string_view TenantPhaseToString(TenantPhase phase) {
  switch (phase) {
    case TenantPhase::kQueued:
      return "queued";
    case TenantPhase::kRunning:
      return "running";
    case TenantPhase::kDegraded:
      return "degraded";
    case TenantPhase::kEvicted:
      return "evicted";
  }
  return "?";
}

namespace {

Status ValidateNodeList(const std::vector<int>& nodes, const char* label) {
  for (int node : nodes) {
    if (node < 0) {
      return InvalidArgument(std::string(label) + " contains a negative node id");
    }
  }
  return OkStatus();
}

}  // namespace

StatusOr<Topology> ValidateTenantSpec(const TenantSpec& spec) {
  PPA_ASSIGN_OR_RETURN(Topology topology,
                       ParseTopologySpec(spec.topology_spec));
  PPA_RETURN_IF_ERROR(spec.config.Validate());
  if (spec.replica_budget < 0) {
    return InvalidArgument("replica_budget must be >= 0");
  }
  if (spec.priority < 0) {
    return InvalidArgument("priority must be >= 0");
  }
  PPA_RETURN_IF_ERROR(ValidateNodeList(spec.worker_affinity, "worker_affinity"));
  PPA_RETURN_IF_ERROR(
      ValidateNodeList(spec.worker_anti_affinity, "worker_anti_affinity"));
  PPA_RETURN_IF_ERROR(
      ValidateNodeList(spec.standby_affinity, "standby_affinity"));
  PPA_RETURN_IF_ERROR(
      ValidateNodeList(spec.standby_anti_affinity, "standby_anti_affinity"));
  std::set<TaskId> seen;
  for (TaskId t : spec.initial_plan) {
    if (t < 0 || t >= topology.num_tasks()) {
      return InvalidArgument("initial_plan task out of range");
    }
    if (!seen.insert(t).second) {
      return InvalidArgument("initial_plan lists a task twice");
    }
  }
  if (static_cast<int>(spec.initial_plan.size()) > spec.replica_budget) {
    return InvalidArgument("initial_plan exceeds replica_budget");
  }
  switch (spec.config.ft_mode) {
    case FtMode::kPpa:
      break;
    case FtMode::kActiveReplication:
      if (spec.replica_budget < topology.num_tasks()) {
        return InvalidArgument(
            "active replication needs replica_budget >= num_tasks");
      }
      break;
    case FtMode::kNone:
    case FtMode::kCheckpoint:
    case FtMode::kSourceReplay:
      if (!spec.initial_plan.empty()) {
        return InvalidArgument(
            "initial_plan requires ppa or active-replication ft_mode");
      }
      break;
  }
  return topology;
}

}  // namespace service
}  // namespace ppa
