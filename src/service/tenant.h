#ifndef PPA_SERVICE_TENANT_H_
#define PPA_SERVICE_TENANT_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "runtime/config.h"
#include "runtime/streaming_job.h"
#include "topology/topology.h"

namespace ppa {
namespace service {

/// Lifecycle phase of a tenant inside the multi-tenant ClusterService.
enum class TenantPhase {
  /// Submitted and accepted, waiting for capacity.
  kQueued,
  /// Admitted: the tenant's job runs with its full replica budget.
  kRunning,
  /// Running, but the standby pool shrank below the committed budgets and
  /// the recovery arbiter degraded this tenant to passive-only fault
  /// tolerance (replicas deactivated, ceiling zero) until capacity
  /// returns.
  kDegraded,
  /// Stopped and released (explicit eviction, or admission failed after
  /// queueing). Terminal.
  kEvicted,
};

/// Stable name of a tenant phase (e.g. "running").
std::string_view TenantPhaseToString(TenantPhase phase);

/// Everything one tenant submits to the ClusterService: the query, the job
/// configuration, the replica budget it wants from the shared standby
/// pool, its QoS priority, and optional placement constraints layered
/// over the shared cluster.
struct TenantSpec {
  /// Display name; the service substitutes "tenant<id>" when empty.
  std::string name;
  /// Topology in ParseTopologySpec() syntax.
  std::string topology_spec;
  /// Job configuration. Cluster-shape fields are overridden by the
  /// service's shared pool.
  JobConfig config = JobConfig::PpaDefaults();
  /// Active replicas this tenant may hold at once, committed against the
  /// shared standby pool at admission and enforced as a placement ceiling
  /// while running.
  int replica_budget = 0;
  /// QoS priority: 0 is most critical. Orders admission-queue scans,
  /// recovery arbitration, and degradation victim selection.
  int priority = 0;
  /// Tasks that get an active replica at admission (the PPA plan).
  std::vector<TaskId> initial_plan;
  /// If non-empty, primaries may only land on these worker nodes.
  std::vector<int> worker_affinity;
  /// Primaries never land on these worker nodes.
  std::vector<int> worker_anti_affinity;
  /// If non-empty, replicas may only land on these standby nodes.
  std::vector<int> standby_affinity;
  /// Replicas never land on these standby nodes.
  std::vector<int> standby_anti_affinity;
  /// Spread this tenant's replicas across failure domains (and its
  /// primaries, which the service always spreads).
  bool spread_replicas_across_domains = true;
  /// Operator/source bindings; exp::BindGenericWorkload when unset.
  using BindFn =
      std::function<Status(const Topology&, const JobConfig&, StreamingJob*)>;
  BindFn bind;
};

/// Validates a spec's self-contained fields (topology syntax, config,
/// budget/priority signs, plan membership, fault-tolerance-mode fit) and
/// returns the parsed topology. Node-id ranges of the affinity lists are
/// cluster-shape-dependent and checked by ClusterService::Submit instead.
[[nodiscard]] StatusOr<Topology> ValidateTenantSpec(const TenantSpec& spec);

}  // namespace service
}  // namespace ppa

#endif  // PPA_SERVICE_TENANT_H_
