#ifndef PPA_FT_CHECKPOINT_H_
#define PPA_FT_CHECKPOINT_H_

#include <map>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status_or.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "topology/types.h"

namespace ppa {

/// One task checkpoint held on the standby nodes (Sec. II-B): the task's
/// serialized computation state plus output buffer, the batch frontier it
/// represents, and accounting metadata.
struct TaskCheckpoint {
  TaskId task = kInvalidTaskId;
  /// The task's next_batch at snapshot time: the checkpoint covers all
  /// batches < `next_batch`.
  int64_t next_batch = 0;
  std::string blob;
  /// Number of tuples in the operator state (full checkpoints) or carried
  /// by the delta (drives load-time modeling).
  int64_t state_tuples = 0;
  TimePoint taken_at = TimePoint::Zero();
  /// False: full (base) checkpoint; true: incremental delta on top of the
  /// preceding chain element (the delta-checkpoint optimization of Hwang
  /// et al., cited in Sec. VII).
  bool is_delta = false;
};

/// The standby nodes' checkpoint storage. Each task holds a *chain*: one
/// base (full) checkpoint optionally followed by incremental deltas, in
/// order. Recovery restores the base and applies each delta.
class CheckpointStore {
 public:
  /// Stores a full checkpoint, replacing the task's whole chain.
  /// `modeled_cost` is the capture's modeled CPU time; with a span
  /// profiler attached it records a checkpoint span starting at the
  /// checkpoint's taken_at.
  void Put(TaskCheckpoint checkpoint,
           Duration modeled_cost = Duration::Zero());

  /// Appends a delta to the task's chain; fails if no base exists or the
  /// delta regresses the covered batch. `modeled_cost` as for Put().
  Status PutDelta(TaskCheckpoint checkpoint,
                  Duration modeled_cost = Duration::Zero());

  /// Latest chain element of `task` (base or delta), or nullptr.
  [[nodiscard]] const TaskCheckpoint* Latest(TaskId task) const;

  /// The task's full chain (base first), or nullptr if none.
  [[nodiscard]] const std::vector<TaskCheckpoint>* Chain(TaskId task) const;

  /// Number of deltas stacked on the base (0 = base only / none).
  [[nodiscard]] int64_t ChainDeltas(TaskId task) const;

  /// Total state tuples a recovery must load: base + every delta.
  [[nodiscard]] int64_t ChainStateTuples(TaskId task) const;

  /// The batch covered by `task`'s latest chain element: its recovery must
  /// replay batches >= this value. 0 if no checkpoint exists (replay from
  /// the beginning).
  [[nodiscard]] int64_t CoveredBatch(TaskId task) const;

  /// Records a *skipped* (thinned) checkpoint under approximate fault
  /// tolerance (DESIGN.md §17): no blob is persisted, but upstream
  /// buffers may be trimmed as if the task had checkpointed at
  /// `next_batch`. The frontier is monotone and is superseded once a
  /// persisted chain element covers it.
  void NoteSkipped(TaskId task, int64_t next_batch);

  /// The thinned coverage frontier of `task`: the highest next_batch a
  /// skipped checkpoint certified. 0 when the task never skipped.
  [[nodiscard]] int64_t SkippedFrontier(TaskId task) const;

  /// The batch upstream buffers may trim to for `task`:
  /// max(CoveredBatch, SkippedFrontier). Under exact recovery this
  /// equals CoveredBatch; under approximate recovery the gap
  /// [CoveredBatch, TrimBatch) is exactly what a failure forfeits.
  [[nodiscard]] int64_t TrimBatch(TaskId task) const;

  /// Number of tasks with at least one checkpoint.
  size_t size() const { return chains_.size(); }

  /// Total serialized bytes held on the standby nodes (all chains).
  /// O(1): maintained incrementally by Put/PutDelta, so per-checkpoint
  /// gauge updates stay cheap at thousands of tasks.
  int64_t TotalBlobBytes() const { return total_bytes_; }

  /// Drops everything (used between experiment repetitions).
  void Clear() {
    chains_.clear();
    skipped_frontier_.clear();
    total_bytes_ = 0;
    obs::Set(store_bytes_gauge_, 0.0);
  }

  /// Publishes "checkpoint.bytes" (per-checkpoint blob size histogram),
  /// the "checkpoint.full"/"checkpoint.delta"/"checkpoint.skipped"
  /// counters, the "checkpoint.store_blob_bytes" gauge (TotalBlobBytes
  /// after every Put/PutDelta/Clear), and the "checkpoint.chain_deltas"
  /// histogram (deltas a chain accumulated before a full checkpoint
  /// rebased it; skipped checkpoints are not chain elements and never
  /// inflate it) to `registry` (nullptr detaches).
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// Registers a span profiler (nullptr detaches): every Put/PutDelta
  /// with a non-zero modeled cost then records a per-task checkpoint
  /// span covering the capture.
  void AttachSpans(obs::SpanProfiler* spans) { spans_ = spans; }

 private:
  std::map<TaskId, std::vector<TaskCheckpoint>> chains_;
  /// Thinned coverage per task (NoteSkipped); kept outside the chains so
  /// chain length, state tuples, and byte accounting stay blob-exact.
  std::map<TaskId, int64_t> skipped_frontier_;
  /// Sum of blob sizes over all chains (incremental TotalBlobBytes).
  int64_t total_bytes_ = 0;
  obs::Histogram* bytes_histogram_ = nullptr;
  obs::Histogram* chain_deltas_histogram_ = nullptr;
  obs::Counter* full_counter_ = nullptr;
  obs::Counter* delta_counter_ = nullptr;
  obs::Counter* skipped_counter_ = nullptr;
  obs::Gauge* store_bytes_gauge_ = nullptr;
  obs::SpanProfiler* spans_ = nullptr;
};

}  // namespace ppa

#endif  // PPA_FT_CHECKPOINT_H_
