#include "ft/checkpoint.h"

#include "common/status.h"

namespace ppa {

void CheckpointStore::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    bytes_histogram_ = nullptr;
    chain_deltas_histogram_ = nullptr;
    full_counter_ = nullptr;
    delta_counter_ = nullptr;
    skipped_counter_ = nullptr;
    store_bytes_gauge_ = nullptr;
    return;
  }
  bytes_histogram_ = registry->histogram("checkpoint.bytes");
  chain_deltas_histogram_ = registry->histogram("checkpoint.chain_deltas");
  full_counter_ = registry->counter("checkpoint.full");
  delta_counter_ = registry->counter("checkpoint.delta");
  skipped_counter_ = registry->counter("checkpoint.skipped");
  store_bytes_gauge_ = registry->gauge("checkpoint.store_blob_bytes");
}

void CheckpointStore::Put(TaskCheckpoint checkpoint, Duration modeled_cost) {
  checkpoint.is_delta = false;
  obs::Observe(bytes_histogram_, static_cast<double>(checkpoint.blob.size()));
  obs::Add(full_counter_);
  if (modeled_cost > Duration::Zero()) {
    obs::RecordSpan(spans_, obs::SpanCategory::kCheckpoint, checkpoint.task,
                    checkpoint.taken_at, checkpoint.taken_at + modeled_cost);
  }
  auto& chain = chains_[checkpoint.task];
  if (!chain.empty()) {
    // How long the replaced chain got before this rebase.
    obs::Observe(chain_deltas_histogram_,
                 static_cast<double>(chain.size() - 1));
    for (const TaskCheckpoint& cp : chain) {
      total_bytes_ -= static_cast<int64_t>(cp.blob.size());
    }
  }
  total_bytes_ += static_cast<int64_t>(checkpoint.blob.size());
  obs::Set(store_bytes_gauge_, static_cast<double>(total_bytes_));
  chain.clear();
  chain.push_back(std::move(checkpoint));
}

Status CheckpointStore::PutDelta(TaskCheckpoint checkpoint,
                                 Duration modeled_cost) {
  auto it = chains_.find(checkpoint.task);
  if (it == chains_.end() || it->second.empty()) {
    return FailedPrecondition("delta checkpoint without a base");
  }
  if (checkpoint.next_batch < it->second.back().next_batch) {
    return InvalidArgument("delta checkpoint regresses coverage");
  }
  checkpoint.is_delta = true;
  obs::Observe(bytes_histogram_, static_cast<double>(checkpoint.blob.size()));
  obs::Add(delta_counter_);
  if (modeled_cost > Duration::Zero()) {
    obs::RecordSpan(spans_, obs::SpanCategory::kCheckpoint, checkpoint.task,
                    checkpoint.taken_at, checkpoint.taken_at + modeled_cost);
  }
  total_bytes_ += static_cast<int64_t>(checkpoint.blob.size());
  obs::Set(store_bytes_gauge_, static_cast<double>(total_bytes_));
  it->second.push_back(std::move(checkpoint));
  return OkStatus();
}

const TaskCheckpoint* CheckpointStore::Latest(TaskId task) const {
  auto it = chains_.find(task);
  if (it == chains_.end() || it->second.empty()) {
    return nullptr;
  }
  return &it->second.back();
}

const std::vector<TaskCheckpoint>* CheckpointStore::Chain(TaskId task) const {
  auto it = chains_.find(task);
  if (it == chains_.end() || it->second.empty()) {
    return nullptr;
  }
  return &it->second;
}

int64_t CheckpointStore::ChainDeltas(TaskId task) const {
  const std::vector<TaskCheckpoint>* chain = Chain(task);
  return chain == nullptr ? 0 : static_cast<int64_t>(chain->size()) - 1;
}

int64_t CheckpointStore::ChainStateTuples(TaskId task) const {
  const std::vector<TaskCheckpoint>* chain = Chain(task);
  if (chain == nullptr) {
    return 0;
  }
  int64_t total = 0;
  for (const TaskCheckpoint& cp : *chain) {
    total += cp.state_tuples;
  }
  return total;
}

int64_t CheckpointStore::CoveredBatch(TaskId task) const {
  const TaskCheckpoint* cp = Latest(task);
  return cp == nullptr ? 0 : cp->next_batch;
}

void CheckpointStore::NoteSkipped(TaskId task, int64_t next_batch) {
  int64_t& frontier = skipped_frontier_[task];
  if (next_batch > frontier) {
    frontier = next_batch;
  }
  obs::Add(skipped_counter_);
}

int64_t CheckpointStore::SkippedFrontier(TaskId task) const {
  auto it = skipped_frontier_.find(task);
  return it == skipped_frontier_.end() ? 0 : it->second;
}

int64_t CheckpointStore::TrimBatch(TaskId task) const {
  const int64_t covered = CoveredBatch(task);
  const int64_t skipped = SkippedFrontier(task);
  return skipped > covered ? skipped : covered;
}

}  // namespace ppa
