#ifndef PPA_FT_RECOVERY_MODEL_H_
#define PPA_FT_RECOVERY_MODEL_H_

#include <map>
#include <vector>

#include "common/sim_time.h"
#include "topology/topology.h"

namespace ppa {

/// Cost parameters of the recovery latency model. The model translates the
/// *amount of work* a recovery needs (tuples to replay, state to load,
/// synchronization hops) into virtual time; see DESIGN.md Sec. 3.1 for why
/// this substitution preserves the shape of the paper's Figures 7-10.
struct RecoveryCostModel {
  /// Rate at which a recovering task reprocesses replayed tuples.
  double replay_rate_tuples_per_sec = 50000.0;
  /// Rate at which a checkpoint's state is deserialized/loaded.
  double state_load_rate_tuples_per_sec = 200000.0;
  /// Scheduling/launch delay of restarting a task on a standby node.
  Duration task_restart_delay = Duration::Millis(800);
  /// Delay for an active replica to be promoted and re-subscribed.
  Duration replica_activation_delay = Duration::Millis(200);
  /// Per-upstream-dependency synchronization handshake during correlated
  /// recovery (Sec. V-B: neighbouring recoveries must synchronize).
  Duration sync_handshake_delay = Duration::Millis(250);
  /// Rate at which a promoted replica drains its buffered output to the
  /// downstream subscribers.
  double replica_resend_rate_tuples_per_sec = 100000.0;
};

/// How one failed task is recovered.
enum class RecoveryKind {
  /// Promote the task's active replica (PPA active part / pure active).
  kActiveReplica,
  /// Restore the latest checkpoint and replay upstream buffers (PPA
  /// passive part / pure checkpoint).
  kCheckpoint,
  /// Storm-style: rebuild from scratch by replaying source data through
  /// the topology.
  kSourceReplay,
};

/// Work description of one failed task's recovery.
struct TaskRecoverySpec {
  TaskId task = kInvalidTaskId;
  RecoveryKind kind = RecoveryKind::kCheckpoint;
  /// kCheckpoint/kSourceReplay: tuples this task must reprocess.
  int64_t replay_tuples = 0;
  /// kCheckpoint: tuples of operator state to load from the checkpoint.
  int64_t state_tuples = 0;
  /// kActiveReplica: buffered output tuples to resend downstream.
  int64_t resend_tuples = 0;
};

/// Per-task recovery completion offsets (relative to failure detection).
struct RecoverySchedule {
  std::map<TaskId, Duration> completion;

  /// Latest completion among all tasks (the paper's "recovery latency" of
  /// the failure as a whole). Zero if no task failed.
  [[nodiscard]] Duration MaxLatency() const;
  /// Latest completion among the given subset (e.g. PPA-0.5-active).
  [[nodiscard]] Duration MaxLatencyOf(const std::vector<TaskId>& tasks) const;
};

/// Computes recovery completion offsets for a set of simultaneously failed
/// tasks. The cascade honours synchronization: a checkpoint/source-replay
/// recovery can only replay once every *failed* upstream neighbour has
/// caught up, so
///   complete(t) = max(base(t), max over failed upstream u of
///                     complete(u) + sync_handshake) + replay_time(t)
/// with base(t) = restart_delay + state_load(t). Active-replica promotions
/// do not depend on upstream recovery (the replica is already caught up):
///   complete(t) = activation_delay + resend_time(t).
[[nodiscard]] RecoverySchedule ComputeRecoverySchedule(
    const Topology& topology, const std::vector<TaskRecoverySpec>& specs,
    const RecoveryCostModel& model);

}  // namespace ppa

#endif  // PPA_FT_RECOVERY_MODEL_H_
