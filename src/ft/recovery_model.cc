#include "ft/recovery_model.h"

#include <algorithm>

#include "common/logging.h"

namespace ppa {

Duration RecoverySchedule::MaxLatency() const {
  Duration max = Duration::Zero();
  for (const auto& [task, d] : completion) {
    (void)task;
    max = std::max(max, d);
  }
  return max;
}

Duration RecoverySchedule::MaxLatencyOf(const std::vector<TaskId>& tasks) const {
  Duration max = Duration::Zero();
  for (TaskId t : tasks) {
    auto it = completion.find(t);
    if (it != completion.end()) {
      max = std::max(max, it->second);
    }
  }
  return max;
}

RecoverySchedule ComputeRecoverySchedule(
    const Topology& topology, const std::vector<TaskRecoverySpec>& specs,
    const RecoveryCostModel& model) {
  RecoverySchedule schedule;
  std::map<TaskId, const TaskRecoverySpec*> by_task;
  for (const TaskRecoverySpec& spec : specs) {
    by_task[spec.task] = &spec;
  }
  auto seconds = [](double s) { return Duration::Seconds(s); };

  // Process tasks in topological order of their operators so that failed
  // upstream completion times are known before downstream ones.
  for (OperatorId op_id : topology.topo_order()) {
    for (TaskId t : topology.op(op_id).tasks) {
      auto it = by_task.find(t);
      if (it == by_task.end()) {
        continue;
      }
      const TaskRecoverySpec& spec = *it->second;
      Duration complete = Duration::Zero();
      switch (spec.kind) {
        case RecoveryKind::kActiveReplica: {
          complete = model.replica_activation_delay +
                     seconds(static_cast<double>(spec.resend_tuples) /
                             model.replica_resend_rate_tuples_per_sec);
          break;
        }
        case RecoveryKind::kCheckpoint:
        case RecoveryKind::kSourceReplay: {
          Duration base = model.task_restart_delay;
          if (spec.kind == RecoveryKind::kCheckpoint) {
            base += seconds(static_cast<double>(spec.state_tuples) /
                            model.state_load_rate_tuples_per_sec);
          }
          // Synchronization with failed upstream neighbours: replay can
          // only start when their data is reproduced.
          Duration upstream_ready = Duration::Zero();
          for (int si : topology.task(t).in_substreams) {
            const Substream& s = topology.substreams()[si];
            auto up = schedule.completion.find(s.from);
            if (up != schedule.completion.end()) {
              upstream_ready = std::max(
                  upstream_ready, up->second + model.sync_handshake_delay);
            }
          }
          complete = std::max(base, upstream_ready) +
                     seconds(static_cast<double>(spec.replay_tuples) /
                             model.replay_rate_tuples_per_sec);
          break;
        }
      }
      schedule.completion[t] = complete;
    }
  }
  PPA_CHECK(schedule.completion.size() == specs.size())
      << "duplicate or unknown tasks in recovery specs";
  return schedule;
}

}  // namespace ppa
