#include "fidelity/metrics.h"

#include <algorithm>

namespace ppa {

InfoLossResult PropagateInfoLoss(const Topology& topology,
                                 const TaskSet& failed, LossModel model) {
  InfoLossResult result;
  result.output_loss.assign(static_cast<size_t>(topology.num_tasks()), 0.0);

  // Scratch: per-input-stream accumulators, reused across tasks.
  // Keyed by upstream operator id.
  struct StreamAcc {
    OperatorId from_op;
    double rate_sum = 0.0;
    double weighted_loss = 0.0;
  };
  std::vector<StreamAcc> streams;

  for (OperatorId op_id : topology.topo_order()) {
    const OperatorInfo& oi = topology.op(op_id);
    const bool correlated =
        model == LossModel::kOutputFidelity &&
        oi.correlation == InputCorrelation::kCorrelated;
    for (TaskId t : oi.tasks) {
      if (failed.Contains(t)) {
        result.output_loss[static_cast<size_t>(t)] = 1.0;
        continue;
      }
      if (oi.upstream.empty()) {
        result.output_loss[static_cast<size_t>(t)] = 0.0;
        continue;
      }
      // Aggregate substream losses into per-input-stream losses (Eq. 1).
      streams.clear();
      for (int si : topology.task(t).in_substreams) {
        const Substream& s = topology.substreams()[si];
        auto it = std::find_if(streams.begin(), streams.end(),
                               [&](const StreamAcc& a) {
                                 return a.from_op == s.from_op;
                               });
        if (it == streams.end()) {
          streams.push_back(StreamAcc{s.from_op, 0.0, 0.0});
          it = streams.end() - 1;
        }
        const double loss = result.output_loss[static_cast<size_t>(s.from)];
        it->rate_sum += s.rate;
        it->weighted_loss += s.rate * loss;
      }
      double out_loss;
      if (correlated) {
        // Eq. 2: effective input is the product of the streams; the output
        // survives only on the surviving fraction of every stream.
        double survive = 1.0;
        for (const StreamAcc& a : streams) {
          const double stream_loss =
              a.rate_sum > 0 ? a.weighted_loss / a.rate_sum : 0.0;
          survive *= (1.0 - stream_loss);
        }
        out_loss = 1.0 - survive;
      } else {
        // Eq. 3: effective input is the union of the streams.
        double rate_total = 0.0;
        double loss_total = 0.0;
        for (const StreamAcc& a : streams) {
          rate_total += a.rate_sum;
          loss_total += a.weighted_loss;
        }
        out_loss = rate_total > 0 ? loss_total / rate_total : 0.0;
      }
      result.output_loss[static_cast<size_t>(t)] =
          std::clamp(out_loss, 0.0, 1.0);
    }
  }

  // Eq. 4 over all tasks of all output operators.
  double rate_sum = 0.0;
  double weighted_loss = 0.0;
  for (OperatorId sink : topology.sink_operators()) {
    for (TaskId t : topology.op(sink).tasks) {
      const double rate = topology.task(t).output_rate;
      rate_sum += rate;
      weighted_loss += rate * result.output_loss[static_cast<size_t>(t)];
    }
  }
  result.output_fidelity =
      rate_sum > 0 ? 1.0 - weighted_loss / rate_sum : 1.0;
  result.output_fidelity = std::clamp(result.output_fidelity, 0.0, 1.0);
  return result;
}

double ComputeOutputFidelity(const Topology& topology, const TaskSet& failed) {
  return PropagateInfoLoss(topology, failed, LossModel::kOutputFidelity)
      .output_fidelity;
}

double ComputeInternalCompleteness(const Topology& topology,
                                   const TaskSet& failed) {
  return PropagateInfoLoss(topology, failed, LossModel::kInternalCompleteness)
      .output_fidelity;
}

double PlanOutputFidelity(const Topology& topology,
                          const TaskSet& replicated) {
  return ComputeOutputFidelity(topology, replicated.Complement());
}

double PlanInternalCompleteness(const Topology& topology,
                                const TaskSet& replicated) {
  return ComputeInternalCompleteness(topology, replicated.Complement());
}

double SingleFailureOutputFidelity(const Topology& topology, TaskId task) {
  TaskSet failed(topology.num_tasks());
  failed.Add(task);
  return ComputeOutputFidelity(topology, failed);
}

StatusOr<Topology> MakeCorrelationBlindCopy(const Topology& topology) {
  TopologyBuilder builder;
  for (const OperatorInfo& oi : topology.operators()) {
    builder.AddOperator(oi.name, oi.parallelism,
                        InputCorrelation::kIndependent, oi.selectivity);
    for (int k = 0; k < oi.parallelism; ++k) {
      builder.SetTaskWeight(oi.id, k,
                            topology.task(oi.tasks[static_cast<size_t>(k)])
                                .weight);
    }
  }
  for (const StreamEdge& e : topology.edges()) {
    builder.Connect(e.from, e.to, e.scheme);
  }
  for (OperatorId src : topology.source_operators()) {
    double total = 0.0;
    for (TaskId t : topology.op(src).tasks) {
      total += topology.task(t).output_rate;
    }
    builder.SetSourceRate(src, total);
  }
  return builder.Build();
}

}  // namespace ppa
