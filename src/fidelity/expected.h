#ifndef PPA_FIDELITY_EXPECTED_H_
#define PPA_FIDELITY_EXPECTED_H_

#include <vector>

#include "common/random.h"
#include "common/status_or.h"
#include "topology/task_set.h"
#include "topology/topology.h"

namespace ppa {

/// Independent-failure model (Sec. II-B prepares for "both independent and
/// correlated failures"; Sec. IV optimizes the correlated worst case —
/// this header covers the other half). Each task fails independently with
/// a given probability during the exposure window; actively replicated
/// tasks ride through failures (their replica takes over in sub-second
/// time), so only non-replicated failures degrade tentative output.

/// Per-task single-failure damage: 1 - OF(only task t fails). The greedy
/// planner's ranking key (Alg. 2), exposed for diagnostics and for the
/// expected-fidelity computation below.
std::vector<double> TaskImportance(const Topology& topology);

/// Exact expected OF under at most one failure: with probability p_t task
/// t (alone) fails; replicated tasks contribute no loss. `probabilities`
/// must have one entry per task, sum <= 1 (the remainder is "no failure").
/// This is the objective the structure-agnostic greedy planner (Alg. 2)
/// optimizes *exactly* — see ExpectedFidelityPlanner.
StatusOr<double> ExpectedFidelitySingleFailure(
    const Topology& topology, const TaskSet& replicated,
    const std::vector<double>& probabilities);

/// Monte-Carlo expected OF when every task fails independently with
/// probability `probabilities[t]` (multiple simultaneous failures allowed;
/// replicated tasks never count as failed). Deterministic for a given
/// seed.
StatusOr<double> ExpectedFidelityIndependent(
    const Topology& topology, const TaskSet& replicated,
    const std::vector<double>& probabilities, int samples = 2000,
    uint64_t seed = 1);

}  // namespace ppa

#endif  // PPA_FIDELITY_EXPECTED_H_
