#include "fidelity/expected.h"

#include "fidelity/metrics.h"

namespace ppa {
namespace {

Status ValidateProbabilities(const Topology& topology,
                             const std::vector<double>& probabilities) {
  if (static_cast<int>(probabilities.size()) != topology.num_tasks()) {
    return InvalidArgument("one failure probability per task required");
  }
  for (double p : probabilities) {
    if (p < 0.0 || p > 1.0) {
      return InvalidArgument("failure probabilities must be in [0, 1]");
    }
  }
  return OkStatus();
}

}  // namespace

std::vector<double> TaskImportance(const Topology& topology) {
  std::vector<double> importance(static_cast<size_t>(topology.num_tasks()));
  for (TaskId t = 0; t < topology.num_tasks(); ++t) {
    importance[static_cast<size_t>(t)] =
        1.0 - SingleFailureOutputFidelity(topology, t);
  }
  return importance;
}

StatusOr<double> ExpectedFidelitySingleFailure(
    const Topology& topology, const TaskSet& replicated,
    const std::vector<double>& probabilities) {
  PPA_RETURN_IF_ERROR(ValidateProbabilities(topology, probabilities));
  if (replicated.universe_size() != topology.num_tasks()) {
    return InvalidArgument("plan universe mismatch");
  }
  double total_p = 0.0;
  double expected = 0.0;
  for (TaskId t = 0; t < topology.num_tasks(); ++t) {
    const double p = probabilities[static_cast<size_t>(t)];
    total_p += p;
    if (p == 0.0) {
      continue;
    }
    // Replicated tasks recover via their replica: no loss.
    expected += p * (replicated.Contains(t)
                         ? 1.0
                         : SingleFailureOutputFidelity(topology, t));
  }
  if (total_p > 1.0 + 1e-9) {
    return InvalidArgument(
        "single-failure model needs probabilities summing to <= 1");
  }
  expected += (1.0 - total_p) * 1.0;  // No failure: full fidelity.
  return expected;
}

StatusOr<double> ExpectedFidelityIndependent(
    const Topology& topology, const TaskSet& replicated,
    const std::vector<double>& probabilities, int samples, uint64_t seed) {
  PPA_RETURN_IF_ERROR(ValidateProbabilities(topology, probabilities));
  if (replicated.universe_size() != topology.num_tasks()) {
    return InvalidArgument("plan universe mismatch");
  }
  if (samples <= 0) {
    return InvalidArgument("samples must be positive");
  }
  Rng rng(seed);
  double total = 0.0;
  for (int s = 0; s < samples; ++s) {
    TaskSet failed(topology.num_tasks());
    for (TaskId t = 0; t < topology.num_tasks(); ++t) {
      if (!replicated.Contains(t) &&
          rng.NextBool(probabilities[static_cast<size_t>(t)])) {
        failed.Add(t);
      }
    }
    total += ComputeOutputFidelity(topology, failed);
  }
  return total / samples;
}

}  // namespace ppa
