#include "fidelity/mc_tree.h"

#include <algorithm>
#include <optional>

namespace ppa {
namespace {

/// Sorts and removes duplicate task sets.
void Dedupe(std::vector<TaskSet>* trees) {
  std::sort(trees->begin(), trees->end());
  trees->erase(std::unique(trees->begin(), trees->end()), trees->end());
}

class Enumerator {
 public:
  Enumerator(const Topology& topology, const McTreeEnumOptions& options)
      : topology_(topology),
        options_(options),
        memo_(static_cast<size_t>(topology.num_tasks())) {}

  /// The MC-(sub)trees whose sink vertex is `t`.
  StatusOr<const std::vector<TaskSet>*> TreesFor(TaskId t) {
    auto& slot = memo_[static_cast<size_t>(t)];
    if (slot.has_value()) {
      return &*slot;
    }
    const TaskInfo& ti = topology_.task(t);
    const OperatorInfo& oi = topology_.op(ti.op);
    std::vector<TaskSet> trees;
    if (oi.upstream.empty()) {
      TaskSet self(topology_.num_tasks());
      self.Add(t);
      trees.push_back(std::move(self));
    } else {
      // Group incoming substreams by upstream operator (= input stream).
      std::vector<OperatorId> stream_ops;
      std::vector<std::vector<TaskId>> stream_sources;
      for (int si : ti.in_substreams) {
        const Substream& s = topology_.substreams()[si];
        auto it = std::find(stream_ops.begin(), stream_ops.end(), s.from_op);
        size_t idx;
        if (it == stream_ops.end()) {
          stream_ops.push_back(s.from_op);
          stream_sources.emplace_back();
          idx = stream_ops.size() - 1;
        } else {
          idx = static_cast<size_t>(it - stream_ops.begin());
        }
        stream_sources[idx].push_back(s.from);
      }

      if (oi.correlation == InputCorrelation::kIndependent) {
        // One upstream path (from any stream) suffices for the task to
        // contribute output.
        for (const auto& sources : stream_sources) {
          for (TaskId up : sources) {
            PPA_ASSIGN_OR_RETURN(const std::vector<TaskSet>* up_trees,
                                 TreesFor(up));
            for (const TaskSet& tree : *up_trees) {
              TaskSet extended = tree;
              extended.Add(t);
              trees.push_back(std::move(extended));
              if (trees.size() > options_.max_trees) {
                return ResourceExhausted("MC-tree enumeration exceeded limit");
              }
            }
          }
        }
      } else {
        // Join: one upstream path per input stream (cross product).
        // Per-stream options first.
        std::vector<std::vector<TaskSet>> per_stream;
        per_stream.reserve(stream_sources.size());
        for (const auto& sources : stream_sources) {
          std::vector<TaskSet> opts;
          for (TaskId up : sources) {
            PPA_ASSIGN_OR_RETURN(const std::vector<TaskSet>* up_trees,
                                 TreesFor(up));
            opts.insert(opts.end(), up_trees->begin(), up_trees->end());
            if (opts.size() > options_.max_trees) {
              return ResourceExhausted("MC-tree enumeration exceeded limit");
            }
          }
          Dedupe(&opts);
          per_stream.push_back(std::move(opts));
        }
        // Cross product.
        TaskSet seed(topology_.num_tasks());
        seed.Add(t);
        trees.push_back(std::move(seed));
        for (const auto& opts : per_stream) {
          std::vector<TaskSet> next;
          next.reserve(trees.size() * opts.size());
          for (const TaskSet& partial : trees) {
            for (const TaskSet& opt : opts) {
              TaskSet merged = partial;
              merged.UnionWith(opt);
              next.push_back(std::move(merged));
              if (next.size() > options_.max_trees) {
                return ResourceExhausted("MC-tree enumeration exceeded limit");
              }
            }
          }
          trees = std::move(next);
        }
      }
    }
    Dedupe(&trees);
    if (trees.size() > options_.max_trees) {
      return ResourceExhausted("MC-tree enumeration exceeded limit");
    }
    slot = std::move(trees);
    return &*slot;
  }

 private:
  const Topology& topology_;
  const McTreeEnumOptions& options_;
  std::vector<std::optional<std::vector<TaskSet>>> memo_;
};

}  // namespace

StatusOr<std::vector<TaskSet>> EnumerateMcTreesForSink(
    const Topology& topology, TaskId sink_task,
    const McTreeEnumOptions& options) {
  if (sink_task < 0 || sink_task >= topology.num_tasks()) {
    return InvalidArgument("bad sink task id");
  }
  if (!topology.IsSinkTask(sink_task)) {
    return InvalidArgument("task is not a sink task");
  }
  Enumerator enumerator(topology, options);
  PPA_ASSIGN_OR_RETURN(const std::vector<TaskSet>* trees,
                       enumerator.TreesFor(sink_task));
  return *trees;
}

StatusOr<std::vector<TaskSet>> EnumerateMcTrees(
    const Topology& topology, const McTreeEnumOptions& options) {
  Enumerator enumerator(topology, options);
  std::vector<TaskSet> all;
  for (OperatorId sink : topology.sink_operators()) {
    for (TaskId t : topology.op(sink).tasks) {
      PPA_ASSIGN_OR_RETURN(const std::vector<TaskSet>* trees,
                           enumerator.TreesFor(t));
      all.insert(all.end(), trees->begin(), trees->end());
      if (all.size() > options.max_trees) {
        return ResourceExhausted("MC-tree enumeration exceeded limit");
      }
    }
  }
  Dedupe(&all);
  return all;
}

}  // namespace ppa
