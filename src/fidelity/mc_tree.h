#ifndef PPA_FIDELITY_MC_TREE_H_
#define PPA_FIDELITY_MC_TREE_H_

#include <vector>

#include "common/status_or.h"
#include "topology/task_set.h"
#include "topology/topology.h"

namespace ppa {

/// Options for MC-tree enumeration. The number of MC-trees is worst-case
/// exponential in the operator count (Sec. IV-A), so enumeration aborts
/// with ResourceExhausted once any task's tree count exceeds `max_trees`.
struct McTreeEnumOptions {
  size_t max_trees = size_t{1} << 20;
};

/// Enumerates every Minimal Complete Tree (Definition 1) of `topology`: a
/// minimal set of tasks — one sink task, and for each member one upstream
/// task per input stream if its operator is correlated-input, or one
/// upstream task overall if independent-input, down to source tasks — such
/// that the tree contributes to the final output iff all its tasks are
/// alive. Results are deduplicated and returned in a deterministic order.
StatusOr<std::vector<TaskSet>> EnumerateMcTrees(
    const Topology& topology, const McTreeEnumOptions& options = {});

/// Enumerates the MC-trees rooted at a specific sink task.
StatusOr<std::vector<TaskSet>> EnumerateMcTreesForSink(
    const Topology& topology, TaskId sink_task,
    const McTreeEnumOptions& options = {});

}  // namespace ppa

#endif  // PPA_FIDELITY_MC_TREE_H_
