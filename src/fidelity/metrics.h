#ifndef PPA_FIDELITY_METRICS_H_
#define PPA_FIDELITY_METRICS_H_

#include <vector>

#include "topology/task_set.h"
#include "topology/topology.h"

namespace ppa {

/// Result of propagating information loss through a topology for a given
/// failure set (Sec. III-A1).
struct InfoLossResult {
  /// Per-task output-stream information loss IL^out in [0, 1]; failed tasks
  /// have loss 1.
  std::vector<double> output_loss;
  /// Output fidelity of the topology (Eq. 4): the rate-weighted complement
  /// of the sink tasks' output loss.
  double output_fidelity = 1.0;
};

/// Controls how multi-stream inputs are combined during loss propagation.
enum class LossModel {
  /// The paper's OF model: honor each operator's InputCorrelation —
  /// correlated-input operators combine losses multiplicatively (Eq. 2),
  /// independent-input operators rate-average them (Eq. 3).
  kOutputFidelity,
  /// The Internal Completeness baseline of [Bellavista et al., EDBT'14] as
  /// characterized in Sec. VI-B: identical propagation except that stream
  /// correlation is ignored — every operator is treated as
  /// independent-input.
  kInternalCompleteness,
};

/// Propagates information loss through `topology` assuming every task in
/// `failed` produces no output, and returns per-task losses plus the output
/// fidelity. Rates are the topology's derived no-failure rates.
[[nodiscard]] InfoLossResult PropagateInfoLoss(
    const Topology& topology, const TaskSet& failed,
    LossModel model = LossModel::kOutputFidelity);

/// Output Fidelity (Eq. 4) under failure set `failed`.
[[nodiscard]] double ComputeOutputFidelity(const Topology& topology,
                                           const TaskSet& failed);

/// Internal Completeness baseline under failure set `failed`.
[[nodiscard]] double ComputeInternalCompleteness(const Topology& topology,
                                                 const TaskSet& failed);

/// The planning objective of Definition 2 (worst-case correlated failure):
/// the output fidelity of the partial topology formed by the actively
/// replicated tasks, i.e. OF with failure set M \ `replicated`.
[[nodiscard]] double PlanOutputFidelity(const Topology& topology,
                                        const TaskSet& replicated);

/// Same objective under the IC metric (used for Fig. 12's comparison).
[[nodiscard]] double PlanInternalCompleteness(const Topology& topology,
                                              const TaskSet& replicated);

/// Output fidelity when only `task` fails (the greedy planner's ranking
/// criterion, Alg. 2).
[[nodiscard]] double SingleFailureOutputFidelity(const Topology& topology,
                                                 TaskId task);

/// A copy of `topology` in which every operator is treated as
/// independent-input. Because IC is exactly OF computed without stream
/// correlation, running any OF-maximizing planner on the blind copy yields
/// an IC-maximizing plan for the original topology (used to reproduce the
/// OF-vs-IC comparison of Fig. 12).
StatusOr<Topology> MakeCorrelationBlindCopy(const Topology& topology);

}  // namespace ppa

#endif  // PPA_FIDELITY_METRICS_H_
