#include "report/experiment_report.h"

#include <cstdio>

#include "obs/chrome_trace.h"
#include "obs/export.h"

namespace ppa {

JsonValue TopologyToJson(const Topology& topology) {
  JsonValue root = JsonValue::Object();
  JsonValue operators = JsonValue::Array();
  for (const OperatorInfo& oi : topology.operators()) {
    JsonValue op = JsonValue::Object();
    op.Set("name", oi.name)
        .Set("parallelism", oi.parallelism)
        .Set("correlation",
             std::string(InputCorrelationToString(oi.correlation)))
        .Set("selectivity", oi.selectivity);
    JsonValue rates = JsonValue::Array();
    for (TaskId t : oi.tasks) {
      rates.Append(topology.task(t).output_rate);
    }
    op.Set("task_output_rates", std::move(rates));
    operators.Append(std::move(op));
  }
  root.Set("operators", std::move(operators));
  JsonValue edges = JsonValue::Array();
  for (const StreamEdge& e : topology.edges()) {
    JsonValue edge = JsonValue::Object();
    edge.Set("from", topology.op(e.from).name)
        .Set("to", topology.op(e.to).name)
        .Set("scheme", std::string(PartitionSchemeToString(e.scheme)));
    edges.Append(std::move(edge));
  }
  root.Set("edges", std::move(edges));
  root.Set("num_tasks", topology.num_tasks());
  return root;
}

JsonValue PlanToJson(const Topology& topology, const ReplicationPlan& plan) {
  JsonValue root = JsonValue::Object();
  root.Set("resource_usage", plan.resource_usage());
  root.Set("output_fidelity", plan.output_fidelity);
  JsonValue tasks = JsonValue::Array();
  for (TaskId t : plan.replicated.ToVector()) {
    tasks.Append(topology.TaskLabel(t));
  }
  root.Set("replicated_tasks", std::move(tasks));
  return root;
}

JsonValue RecoveryReportToJson(const Topology& topology,
                               const RecoveryReport& report) {
  JsonValue root = JsonValue::Object();
  root.Set("failure_time_s", report.failure_time.seconds());
  root.Set("detection_time_s", report.detection_time.seconds());
  root.Set("total_latency_s", report.TotalLatency().seconds());
  root.Set("active_latency_s", report.ActiveLatency().seconds());
  root.Set("passive_latency_s", report.PassiveLatency().seconds());
  JsonValue tasks = JsonValue::Array();
  for (const TaskRecoverySpec& spec : report.specs) {
    JsonValue entry = JsonValue::Object();
    entry.Set("task", topology.TaskLabel(spec.task));
    switch (spec.kind) {
      case RecoveryKind::kActiveReplica:
        entry.Set("kind", "active-replica");
        entry.Set("resend_tuples", spec.resend_tuples);
        break;
      case RecoveryKind::kCheckpoint:
        entry.Set("kind", "checkpoint");
        entry.Set("state_tuples", spec.state_tuples);
        entry.Set("replay_tuples", spec.replay_tuples);
        break;
      case RecoveryKind::kSourceReplay:
        entry.Set("kind", "source-replay");
        entry.Set("replay_tuples", spec.replay_tuples);
        break;
    }
    auto it = report.schedule.completion.find(spec.task);
    if (it != report.schedule.completion.end()) {
      entry.Set("latency_s", it->second.seconds());
    }
    tasks.Append(std::move(entry));
  }
  root.Set("tasks", std::move(tasks));
  return root;
}

JsonValue JobSummaryToJson(const StreamingJob& job) {
  const Topology& topology = job.topology();
  JsonValue root = JsonValue::Object();
  root.Set("ft_mode", std::string(FtModeToString(job.config().ft_mode)));
  root.Set("batch_interval_s", job.config().batch_interval.seconds());
  root.Set("checkpoint_interval_s",
           job.config().checkpoint_interval.seconds());
  root.Set("frontier_batch", job.frontier());
  root.Set("topology", TopologyToJson(topology));

  JsonValue tasks = JsonValue::Array();
  for (TaskId t = 0; t < topology.num_tasks(); ++t) {
    JsonValue entry = JsonValue::Object();
    entry.Set("task", topology.TaskLabel(t));
    entry.Set("processed_tuples", job.primary(t)->processed_tuples());
    entry.Set("emitted_tuples", job.primary(t)->emitted_tuples());
    entry.Set("processing_cost_us", job.ProcessingCostUs(t));
    entry.Set("checkpoint_cost_us", job.CheckpointCostUs(t));
    entry.Set("checkpoints", job.CheckpointCount(t));
    entry.Set("alive", job.primary(t)->alive());
    tasks.Append(std::move(entry));
  }
  root.Set("tasks", std::move(tasks));

  int64_t tentative = 0, corrections = 0;
  for (const SinkRecord& r : job.sink_records()) {
    tentative += r.tentative;
    corrections += r.correction;
  }
  JsonValue memory = JsonValue::Object();
  memory.Set("buffered_tuples_now", job.CurrentBufferedTuples());
  memory.Set("buffered_tuples_peak", job.PeakBufferedTuples());
  memory.Set("checkpoint_store_bytes",
             job.checkpoint_store().TotalBlobBytes());
  root.Set("memory", std::move(memory));

  JsonValue sink = JsonValue::Object();
  sink.Set("records", static_cast<int64_t>(job.sink_records().size()));
  sink.Set("tentative", tentative);
  sink.Set("corrections", corrections);
  root.Set("sink", std::move(sink));

  JsonValue recoveries = JsonValue::Array();
  for (const RecoveryReport& report : job.recovery_reports()) {
    recoveries.Append(RecoveryReportToJson(topology, report));
  }
  root.Set("recoveries", std::move(recoveries));
  return root;
}

namespace {

obs::TaskLabeler MakeTaskLabeler(const Topology* topology) {
  return [topology](int64_t task) {
    if (task < 0 || task >= topology->num_tasks()) {
      return std::to_string(task);
    }
    return topology->TaskLabel(static_cast<TaskId>(task));
  };
}

}  // namespace

JsonValue JobProfileToJson(const StreamingJob& job) {
  return obs::RunProfileToJson(job.metrics(), job.trace(),
                               MakeTaskLabeler(&job.topology()), &job.spans(),
                               &job.fidelity_timeseries());
}

JsonValue JobChromeTraceToJson(const StreamingJob& job) {
  return obs::ChromeTraceToJson(job.trace(), &job.spans(),
                                MakeTaskLabeler(&job.topology()));
}

JsonValue JobFlightRecordToJson(const StreamingJob& job) {
  return obs::FlightRecordToJson(job.flight_recorder(),
                                 MakeTaskLabeler(&job.topology()));
}

Status WriteJsonFile(const std::string& path, const JsonValue& value) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Internal("cannot open '" + path + "' for writing");
  }
  const std::string text = value.Pretty();
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Internal("short write to '" + path + "'");
  }
  return OkStatus();
}

}  // namespace ppa
