#ifndef PPA_REPORT_JSON_H_
#define PPA_REPORT_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status_or.h"

namespace ppa {

/// Minimal JSON document used to export experiment results for plotting
/// and to load chaos-repro artifacts back in. Supports the JSON value
/// kinds, preserves object insertion order, escapes strings correctly,
/// and serializes doubles with enough precision to round-trip. The
/// parser (JsonValue::Parse) accepts exactly what Serialize/Pretty emit
/// plus arbitrary standard JSON.
class JsonValue {
 public:
  /// null by default.
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}          // NOLINT
  JsonValue(int64_t i) : kind_(Kind::kInt), int_(i) {}         // NOLINT
  JsonValue(int i) : kind_(Kind::kInt), int_(i) {}             // NOLINT
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}    // NOLINT
  JsonValue(std::string s)                                     // NOLINT
      : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}      // NOLINT

  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }

  /// Parses a JSON document. Accepts anything Serialize/Pretty emit plus
  /// arbitrary standard JSON; rejects trailing garbage, trailing commas,
  /// comments, and documents nested deeper than an internal limit.
  [[nodiscard]] static StatusOr<JsonValue> Parse(std::string_view text);

  /// True iff this value is an object.
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  /// True iff this value is an array.
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  /// True iff this value is null.
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  /// True iff this value is a bool.
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  /// True iff this value is a number (integer or double).
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  /// True iff this value is a string.
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* Find(std::string_view key) const;
  /// Array element access; must be an array and `i < size()`.
  [[nodiscard]] const JsonValue& at(size_t i) const;
  /// Object members in insertion order; empty for non-objects.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const {
    return members_;
  }

  /// The bool payload; must be a bool.
  [[nodiscard]] bool AsBool() const;
  /// The numeric payload as an integer; must be a number (doubles
  /// truncate toward zero).
  [[nodiscard]] int64_t AsInt() const;
  /// The numeric payload as a double; must be a number.
  [[nodiscard]] double AsDouble() const;
  /// The string payload; must be a string.
  [[nodiscard]] const std::string& AsString() const;

  /// Sets a key on an object (last write wins but keeps first position);
  /// returns *this for chaining. Must be an object.
  JsonValue& Set(std::string_view key, JsonValue value);

  /// Appends to an array; returns *this for chaining. Must be an array.
  JsonValue& Append(JsonValue value);

  /// Number of members/elements; 0 for scalars.
  size_t size() const;

  /// Compact serialization ("{"a":1,...}").
  std::string Serialize() const;
  /// Pretty serialization with 2-space indentation.
  std::string Pretty() const;

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kObject, kArray };

  class Parser;

  void SerializeTo(std::string* out, int indent, int depth) const;
  static void EscapeTo(std::string* out, std::string_view s);

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> elements_;
};

}  // namespace ppa

#endif  // PPA_REPORT_JSON_H_
