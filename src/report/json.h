#ifndef PPA_REPORT_JSON_H_
#define PPA_REPORT_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ppa {

/// Minimal JSON document builder used to export experiment results for
/// plotting. Supports the JSON value kinds, preserves object insertion
/// order, escapes strings correctly, and serializes doubles with enough
/// precision to round-trip. Build-only (no parser): results flow out of
/// the simulator, never back in.
class JsonValue {
 public:
  /// null by default.
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}          // NOLINT
  JsonValue(int64_t i) : kind_(Kind::kInt), int_(i) {}         // NOLINT
  JsonValue(int i) : kind_(Kind::kInt), int_(i) {}             // NOLINT
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}    // NOLINT
  JsonValue(std::string s)                                     // NOLINT
      : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}      // NOLINT

  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }

  /// True iff this value is an object.
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  /// True iff this value is an array.
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }

  /// Sets a key on an object (last write wins but keeps first position);
  /// returns *this for chaining. Must be an object.
  JsonValue& Set(std::string_view key, JsonValue value);

  /// Appends to an array; returns *this for chaining. Must be an array.
  JsonValue& Append(JsonValue value);

  /// Number of members/elements; 0 for scalars.
  size_t size() const;

  /// Compact serialization ("{"a":1,...}").
  std::string Serialize() const;
  /// Pretty serialization with 2-space indentation.
  std::string Pretty() const;

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kObject, kArray };

  void SerializeTo(std::string* out, int indent, int depth) const;
  static void EscapeTo(std::string* out, std::string_view s);

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> elements_;
};

}  // namespace ppa

#endif  // PPA_REPORT_JSON_H_
