#include "report/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace ppa {

/// Recursive-descent parser over a string_view. Kept out of the header:
/// callers only see the static JsonValue::Parse entry point.
class JsonValue::Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    PPA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(/*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 96;

  StatusOr<JsonValue> ParseValue(int depth) {  // NOLINT(misc-no-recursion)
    if (depth > kMaxDepth) {
      return Error("JSON nested deeper than the supported limit");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of JSON input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        PPA_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        PPA_RETURN_IF_ERROR(Expect("true"));
        return JsonValue(true);
      case 'f':
        PPA_RETURN_IF_ERROR(Expect("false"));
        return JsonValue(false);
      case 'n':
        PPA_RETURN_IF_ERROR(Expect("null"));
        return JsonValue();
      default:
        return ParseNumber();
    }
  }

  StatusOr<JsonValue> ParseObject(int depth) {  // NOLINT(misc-no-recursion)
    ++pos_;  // consume '{'
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key in JSON object");
      }
      PPA_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after JSON object key");
      }
      ++pos_;
      PPA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object.Set(key, std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Error("unterminated JSON object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return object;
      }
      return Error("expected ',' or '}' in JSON object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {  // NOLINT(misc-no-recursion)
    ++pos_;  // consume '['
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      PPA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.Append(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Error("unterminated JSON array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return array;
      }
      return Error("expected ',' or ']' in JSON array");
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // consume '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) {
          break;
        }
        char escape = text_[pos_ + 1];
        pos_ += 2;
        switch (escape) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Error("truncated \\u escape in JSON string");
            }
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_ + static_cast<size_t>(i)];
              int digit;
              if (h >= '0' && h <= '9') {
                digit = h - '0';
              } else if (h >= 'a' && h <= 'f') {
                digit = h - 'a' + 10;
              } else if (h >= 'A' && h <= 'F') {
                digit = h - 'A' + 10;
              } else {
                return Error("invalid \\u escape in JSON string");
              }
              code = code * 16 + digit;
            }
            pos_ += 4;
            // UTF-8 encode the code point (surrogate pairs are passed
            // through as-is; the builder never emits them).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("invalid escape in JSON string");
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Error("unterminated JSON string");
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Error("invalid JSON number");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    if (!is_double) {
      long long i = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size()) {
        return JsonValue(static_cast<int64_t>(i));
      }
      // Fall through: out-of-range integers re-parse as doubles.
    }
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("invalid JSON number");
    }
    return JsonValue(d);
  }

  Status Expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("invalid JSON literal");
    }
    pos_ += literal.size();
    return OkStatus();
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status Error(std::string_view message) const {
    return InvalidArgument(std::string(message) + " (offset " +
                           std::to_string(pos_) + ")");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [existing, value] : members_) {
    if (existing == key) {
      return &value;
    }
  }
  return nullptr;
}

const JsonValue& JsonValue::at(size_t i) const {
  PPA_CHECK(kind_ == Kind::kArray) << "at on non-array JSON value";
  PPA_CHECK(i < elements_.size()) << "JSON array index out of range";
  return elements_[i];
}

bool JsonValue::AsBool() const {
  PPA_CHECK(kind_ == Kind::kBool) << "AsBool on non-bool JSON value";
  return bool_;
}

int64_t JsonValue::AsInt() const {
  PPA_CHECK(is_number()) << "AsInt on non-number JSON value";
  return kind_ == Kind::kInt ? int_ : static_cast<int64_t>(double_);
}

double JsonValue::AsDouble() const {
  PPA_CHECK(is_number()) << "AsDouble on non-number JSON value";
  return kind_ == Kind::kDouble ? double_ : static_cast<double>(int_);
}

const std::string& JsonValue::AsString() const {
  PPA_CHECK(kind_ == Kind::kString) << "AsString on non-string JSON value";
  return string_;
}

JsonValue& JsonValue::Set(std::string_view key, JsonValue value) {
  PPA_CHECK(kind_ == Kind::kObject) << "Set on non-object JSON value";
  for (auto& [existing, v] : members_) {
    if (existing == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::Append(JsonValue value) {
  PPA_CHECK(kind_ == Kind::kArray) << "Append on non-array JSON value";
  elements_.push_back(std::move(value));
  return *this;
}

size_t JsonValue::size() const {
  switch (kind_) {
    case Kind::kObject:
      return members_.size();
    case Kind::kArray:
      return elements_.size();
    default:
      return 0;
  }
}

void JsonValue::EscapeTo(std::string* out, std::string_view s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void JsonValue::SerializeTo(std::string* out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string pad_close =
      indent > 0 ? "\n" + std::string(static_cast<size_t>(indent * depth), ' ')
                 : "";
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      *out += buf;
      break;
    }
    case Kind::kDouble: {
      if (std::isfinite(double_)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        *out += buf;
      } else {
        *out += "null";  // JSON has no Inf/NaN.
      }
      break;
    }
    case Kind::kString:
      EscapeTo(out, string_);
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{";
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) {
          *out += ",";
        }
        first = false;
        *out += pad;
        EscapeTo(out, key);
        *out += indent > 0 ? ": " : ":";
        value.SerializeTo(out, indent, depth + 1);
      }
      *out += pad_close + "}";
      break;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[";
      bool first = true;
      for (const JsonValue& value : elements_) {
        if (!first) {
          *out += ",";
        }
        first = false;
        *out += pad;
        value.SerializeTo(out, indent, depth + 1);
      }
      *out += pad_close + "]";
      break;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string JsonValue::Pretty() const {
  std::string out;
  SerializeTo(&out, /*indent=*/2, /*depth=*/0);
  return out;
}

}  // namespace ppa
