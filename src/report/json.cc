#include "report/json.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace ppa {

JsonValue& JsonValue::Set(std::string_view key, JsonValue value) {
  PPA_CHECK(kind_ == Kind::kObject) << "Set on non-object JSON value";
  for (auto& [existing, v] : members_) {
    if (existing == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::Append(JsonValue value) {
  PPA_CHECK(kind_ == Kind::kArray) << "Append on non-array JSON value";
  elements_.push_back(std::move(value));
  return *this;
}

size_t JsonValue::size() const {
  switch (kind_) {
    case Kind::kObject:
      return members_.size();
    case Kind::kArray:
      return elements_.size();
    default:
      return 0;
  }
}

void JsonValue::EscapeTo(std::string* out, std::string_view s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void JsonValue::SerializeTo(std::string* out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string pad_close =
      indent > 0 ? "\n" + std::string(static_cast<size_t>(indent * depth), ' ')
                 : "";
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      *out += buf;
      break;
    }
    case Kind::kDouble: {
      if (std::isfinite(double_)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        *out += buf;
      } else {
        *out += "null";  // JSON has no Inf/NaN.
      }
      break;
    }
    case Kind::kString:
      EscapeTo(out, string_);
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{";
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) {
          *out += ",";
        }
        first = false;
        *out += pad;
        EscapeTo(out, key);
        *out += indent > 0 ? ": " : ":";
        value.SerializeTo(out, indent, depth + 1);
      }
      *out += pad_close + "}";
      break;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[";
      bool first = true;
      for (const JsonValue& value : elements_) {
        if (!first) {
          *out += ",";
        }
        first = false;
        *out += pad;
        value.SerializeTo(out, indent, depth + 1);
      }
      *out += pad_close + "]";
      break;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string JsonValue::Pretty() const {
  std::string out;
  SerializeTo(&out, /*indent=*/2, /*depth=*/0);
  return out;
}

}  // namespace ppa
