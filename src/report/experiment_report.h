#ifndef PPA_REPORT_EXPERIMENT_REPORT_H_
#define PPA_REPORT_EXPERIMENT_REPORT_H_

#include <string>

#include "common/status.h"
#include "planner/replication_plan.h"
#include "report/json.h"
#include "runtime/streaming_job.h"

namespace ppa {

/// JSON rendering of a topology: operators (name, parallelism, correlation,
/// selectivity, per-task rates) and edges.
JsonValue TopologyToJson(const Topology& topology);

/// JSON rendering of a replication plan: replicated task labels, resource
/// usage, and the worst-case OF.
JsonValue PlanToJson(const Topology& topology, const ReplicationPlan& plan);

/// JSON rendering of one recovery report: per-task recovery kind and
/// latency, plus the total/active/passive aggregates.
JsonValue RecoveryReportToJson(const Topology& topology,
                               const RecoveryReport& report);

/// Full job summary: configuration highlights, per-task processing and
/// checkpointing cost, sink-record counts (total/tentative/corrections),
/// and every recovery report. Everything a plotting script needs from one
/// experiment run.
JsonValue JobSummaryToJson(const StreamingJob& job);

/// Observability profile of the run (obs::RunProfileToJson with task ids
/// labeled through the job's topology): metrics snapshot, per-task
/// recovery timelines, tentative-output windows, the span profile, the
/// OF/IC fidelity timeseries, and the raw trace.
JsonValue JobProfileToJson(const StreamingJob& job);

/// Chrome/Perfetto Trace Event Format rendering of the job's trace and
/// span profile (obs::ChromeTraceToJson with topology task labels). Load
/// the written file in chrome://tracing or https://ui.perfetto.dev.
JsonValue JobChromeTraceToJson(const StreamingJob& job);

/// The job's flight record (obs::FlightRecordToJson with topology task
/// labels): the last config().flight_recorder_capacity trace events,
/// available even when observability is off. The post-mortem attachment
/// of chaos repros and --flight_record_out dumps.
JsonValue JobFlightRecordToJson(const StreamingJob& job);

/// Writes `value` pretty-printed to `path` (truncates). Filesystem errors
/// are returned as Internal.
Status WriteJsonFile(const std::string& path, const JsonValue& value);

}  // namespace ppa

#endif  // PPA_REPORT_EXPERIMENT_REPORT_H_
