#ifndef PPA_BACKEND_BOUNDED_QUEUE_H_
#define PPA_BACKEND_BOUNDED_QUEUE_H_

#include <cstddef>
#include <deque>
#include <utility>

#include "common/thread_annotations.h"

namespace ppa {
namespace backend {

/// Outcome of BoundedMpscQueue::Push.
enum class PushOutcome {
  /// Enqueued; a consumer drain is already claimed, nothing to do.
  kQueued,
  /// Enqueued AND the push claimed the drain: the caller must arrange for
  /// exactly one consumer to call Pop until it returns false.
  kMustDrain,
  /// The queue is closed; the item was dropped.
  kClosed,
};

/// A bounded multi-producer single-consumer mailbox with blocking
/// backpressure and a drain-claim handshake.
///
/// Any number of producers may Push concurrently; when the queue is at
/// capacity, Push blocks until a consumer makes room (that blocking IS
/// the backpressure contract of the threaded backend, DESIGN.md §16).
/// Consumption is single-threaded by construction: at most one drain is
/// "claimed" at a time. A Push that finds the queue unclaimed claims it
/// and returns kMustDrain — the caller then starts the one consumer
/// (e.g. submits a drain task to a thread pool). The consumer calls Pop
/// repeatedly; when the queue is empty Pop releases the claim and returns
/// false, atomically with the emptiness check, so a racing Push either
/// sees the item consumed or becomes the new claimant. Items therefore
/// come out in FIFO order with a happens-before edge from each Push to
/// its Pop.
template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Enqueues `item`, blocking while the queue is full. See PushOutcome.
  PushOutcome Push(T item) PPA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (items_.size() >= capacity_ && !closed_) {
      has_room_.Wait(&mu_);
    }
    if (closed_) {
      return PushOutcome::kClosed;
    }
    items_.push_back(std::move(item));
    if (!drain_claimed_) {
      drain_claimed_ = true;
      return PushOutcome::kMustDrain;
    }
    return PushOutcome::kQueued;
  }

  /// Dequeues the oldest item into `*out` and returns true. When the
  /// queue is empty — or closed, in which case leftover items are
  /// discarded unrun — releases the drain claim and returns false. Only
  /// the claimed consumer may call this.
  [[nodiscard]] bool Pop(T* out) PPA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (closed_) {
      items_.clear();
      drain_claimed_ = false;
      return false;
    }
    if (items_.empty()) {
      drain_claimed_ = false;
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    has_room_.NotifyAll();
    return true;
  }

  /// Closes the queue: blocked and future pushes return kClosed, and the
  /// next Pop discards whatever is still queued (a stopping backend must
  /// not run callbacks whose owners may already be tearing down).
  void Close() PPA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    closed_ = true;
    has_room_.NotifyAll();
  }

  /// Queued-but-unpopped item count (racy by nature; for tests/metrics).
  [[nodiscard]] size_t size() const PPA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;

  mutable Mutex mu_;
  /// Producers sleep here while the queue is at capacity.
  CondVar has_room_;
  /// FIFO payload; bounded at capacity_ by the Push wait loop.
  std::deque<T> items_ PPA_GUARDED_BY(mu_);
  /// True while some consumer owns the right to drain (see class doc).
  bool drain_claimed_ PPA_GUARDED_BY(mu_) = false;
  /// Once true, Push rejects; Pop keeps draining what is left.
  bool closed_ PPA_GUARDED_BY(mu_) = false;
};

}  // namespace backend
}  // namespace ppa

#endif  // PPA_BACKEND_BOUNDED_QUEUE_H_
