#ifndef PPA_BACKEND_THREADED_BACKEND_H_
#define PPA_BACKEND_THREADED_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "backend/bounded_queue.h"
#include "backend/execution_backend.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace ppa {
namespace obs {
class Counter;
}  // namespace obs

namespace backend {

/// Real-thread execution backend: a sharded worker pool (common/
/// thread_pool) fed through bounded MPSC mailboxes, with virtual-time
/// timers dispatched by a pump.
///
/// ## How parity with the simulator is kept (DESIGN.md §16)
///
/// Timers live in one ordered set keyed (firing time, schedule sequence)
/// — the exact order the deterministic EventLoop fires them. The pump
/// dispatches a timer of strand S only when
///
///   (a) its firing time is within the current drive's deadline, and
///   (b) S has no callback in flight, OR the timer fires at the same
///       instant as the one(s) already in flight for S.
///
/// (b) is sound because a callback running at time t can only schedule
/// at >= t with a larger sequence number, so nothing the in-flight work
/// produces can belong *before* an equal-time timer already dispatched;
/// equal-time timers of one strand land in the same FIFO mailbox in
/// sequence order. Each strand therefore executes exactly the
/// (time, sequence) order the simulator would use, while distinct strands
/// run in parallel across shards. Cross-strand interleaving is
/// unspecified — which is why a StreamingJob occupies a single strand.
///
/// ## Backpressure
///
/// Mailboxes are bounded (ThreadedBackendOptions::mailbox_capacity); the
/// pump blocks pushing into a full shard until its drain catches up, so a
/// slow shard throttles dispatch instead of growing an unbounded queue.
///
/// ## Pacing
///
/// With time_scale == 0 virtual time free-runs (a drive finishes as fast
/// as the machine allows). With time_scale > 0 the pump holds each timer
/// until `time_scale` wall-seconds per simulated second have elapsed
/// since the first dispatch, giving soft real-time playback.
///
/// ## Lifecycle
///
/// RunUntil / RunUntilIdle block the driver thread until the drive's work
/// has fully drained, so between drives no callback is executing and the
/// mailboxes are empty — that quiescence is what makes it safe to read
/// job state (sink records, metrics) from the driver between drives, and
/// to destroy the backend. Stop() (or the destructor) drops undispatched
/// timers and discards still-queued mailbox items without running them,
/// mirroring how destroying an EventLoop drops its queue; the backend is
/// unusable afterwards.
class ThreadedBackend final : public ExecutionBackend {
 public:
  explicit ThreadedBackend(const ThreadedBackendOptions& options = {});
  ~ThreadedBackend() override;

  BackendKind kind() const override { return BackendKind::kThreads; }
  TimePoint now() const override PPA_EXCLUDES(mu_);
  uint64_t NewStrand() override PPA_EXCLUDES(mu_);

  uint64_t ScheduleAfterOn(uint64_t strand, Duration delay,
                           std::function<void()> fn) override
      PPA_EXCLUDES(mu_);

  [[nodiscard]] bool Cancel(uint64_t id) override PPA_EXCLUDES(mu_);

  void RunUntil(TimePoint deadline) override PPA_EXCLUDES(mu_);
  void RunUntilIdle() override PPA_EXCLUDES(mu_);
  void Stop() override PPA_EXCLUDES(mu_);

  int64_t events_processed() const override PPA_EXCLUDES(mu_);
  size_t pending() const override PPA_EXCLUDES(mu_);

  void AttachMetrics(obs::MetricsRegistry* registry) override
      PPA_EXCLUDES(mu_);
  void AttachSpans(obs::SpanProfiler* spans) override PPA_EXCLUDES(mu_);

  /// Worker shards (mailbox lanes) in use.
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  /// Global timer order: (firing time, schedule sequence) ascending —
  /// identical to EventLoop's priority order, see class comment.
  struct TimerKey {
    int64_t at_us = 0;
    uint64_t seq = 0;
    bool operator<(const TimerKey& o) const {
      return at_us != o.at_us ? at_us < o.at_us : seq < o.seq;
    }
  };
  struct TimerEntry {
    uint64_t strand = 0;
    std::function<void()> fn;
  };
  /// One dispatched callback travelling through a shard mailbox.
  struct WorkItem {
    uint64_t strand = 0;
    TimePoint at;
    std::function<void()> fn;
  };
  /// Dispatch bookkeeping for one strand (see gating rule (b) above).
  struct StrandState {
    /// Callbacks dispatched but not yet completed.
    int outstanding = 0;
    /// Firing time of the most recently dispatched callback.
    TimePoint ts;
    /// Undispatched timers belonging to this strand.
    size_t timers = 0;
  };

  /// The pump: runs as a long-lived pool task, dispatching timers into
  /// shard mailboxes until Stop().
  void PumpLoop() PPA_EXCLUDES(mu_);
  /// Single consumer of one shard's mailbox (started via the drain-claim
  /// handshake, see bounded_queue.h).
  void DrainShard(size_t shard) PPA_EXCLUDES(mu_);
  /// First timer satisfying the dispatch gate, or timers_.end(). The scan
  /// inspects at most one timer per strand (later same-strand timers can
  /// never be dispatchable when the first is not).
  std::map<TimerKey, TimerEntry>::iterator FirstDispatchable()
      PPA_REQUIRES(mu_);
  /// Marks one completed callback and wakes the pump / driver.
  void FinishItem(uint64_t strand) PPA_EXCLUDES(mu_);

  const double time_scale_;
  /// Immutable after construction (the queues themselves synchronize
  /// internally); needs no guard.
  std::vector<std::unique_ptr<BoundedMpscQueue<WorkItem>>> shards_;
  /// Immutable after construction; ThreadPool is internally synchronized.
  std::unique_ptr<ThreadPool> pool_;

  mutable Mutex mu_;
  /// Wakes the pump: new timer, completion, drive start, or stop.
  CondVar timer_cv_;
  /// Wakes the driver (RunUntil/Stop) and anyone waiting for quiescence.
  CondVar done_cv_;
  /// Undispatched timers in global (time, sequence) order.
  std::map<TimerKey, TimerEntry> timers_ PPA_GUARDED_BY(mu_);
  /// Live (cancellable) timer ids -> firing time, for O(log n) Cancel.
  std::map<uint64_t, TimePoint> live_ PPA_GUARDED_BY(mu_);
  /// Per-strand dispatch state; entries are created on first use.
  std::map<uint64_t, StrandState> strands_ PPA_GUARDED_BY(mu_);
  /// Number of strands with at least one undispatched timer (lets the
  /// dispatch scan stop early).
  size_t pending_strands_ PPA_GUARDED_BY(mu_) = 0;
  /// Next schedule sequence / timer id (EventLoop also starts at 1).
  uint64_t next_seq_ PPA_GUARDED_BY(mu_) = 1;
  /// Next strand id NewStrand() mints (0 is the implicit default strand).
  uint64_t next_strand_ PPA_GUARDED_BY(mu_) = 1;
  /// Callbacks dispatched into mailboxes and not yet completed.
  int64_t in_flight_ PPA_GUARDED_BY(mu_) = 0;
  /// Completed callback count (events_processed()).
  int64_t events_processed_ PPA_GUARDED_BY(mu_) = 0;
  /// High-water mark of dispatched/driven virtual time — now() outside
  /// callbacks.
  TimePoint frontier_ PPA_GUARDED_BY(mu_);
  /// True while a RunUntil/RunUntilIdle drive is in progress; the pump
  /// dispatches nothing between drives (EventLoop parity).
  bool driving_ PPA_GUARDED_BY(mu_) = false;
  /// The active drive's dispatch ceiling (gate (a) in the class comment).
  TimePoint drive_deadline_ PPA_GUARDED_BY(mu_);
  bool stopped_ PPA_GUARDED_BY(mu_) = false;
  /// Set by the pump task on exit; Stop() waits for it before returning
  /// so the destructor never races the pump.
  bool pump_exited_ PPA_GUARDED_BY(mu_) = false;
  /// Wall/virtual anchor for pacing; latched at the first paced dispatch.
  bool anchored_ PPA_GUARDED_BY(mu_) = false;
  double anchor_wall_ PPA_GUARDED_BY(mu_) = 0.0;
  TimePoint anchor_sim_ PPA_GUARDED_BY(mu_);
  /// "backend.events_processed" when metrics are attached (increments are
  /// serialized by mu_; obs counters are not atomic).
  obs::Counter* events_counter_ PPA_GUARDED_BY(mu_) = nullptr;
  /// Stored but unused: spans would race across drain threads, so the
  /// threaded backend does not bracket drives (see AttachSpans contract).
  obs::SpanProfiler* spans_ PPA_GUARDED_BY(mu_) = nullptr;
};

}  // namespace backend
}  // namespace ppa

#endif  // PPA_BACKEND_THREADED_BACKEND_H_
