#include "backend/threaded_backend.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/wall_clock.h"
#include "obs/metrics.h"

namespace ppa {
namespace backend {
namespace {

// Virtual "now" for the callback currently executing on this worker, so
// now()/ScheduleAfterOn inside a callback see the callback's firing time
// exactly as they would inside the simulator. Keyed by backend so a
// stray read against a different backend falls back to its frontier.
thread_local const void* tls_backend = nullptr;
thread_local int64_t tls_now_us = 0;

}  // namespace

ThreadedBackend::ThreadedBackend(const ThreadedBackendOptions& options)
    : time_scale_(options.time_scale) {
  int shards = options.num_shards > 0
                   ? options.num_shards
                   : std::max(1, ThreadPool::DefaultParallelism() - 1);
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<BoundedMpscQueue<WorkItem>>(
        options.mailbox_capacity));
  }
  // One thread per shard plus one the pump occupies for its lifetime.
  pool_ = std::make_unique<ThreadPool>(shards + 1);
  pool_->Submit([this] { PumpLoop(); });
}

ThreadedBackend::~ThreadedBackend() {
  Stop();
  pool_.reset();  // drains the drain tasks, then joins
}

TimePoint ThreadedBackend::now() const {
  if (tls_backend == this) {
    return TimePoint::FromMicros(tls_now_us);
  }
  MutexLock lock(&mu_);
  return frontier_;
}

uint64_t ThreadedBackend::NewStrand() {
  MutexLock lock(&mu_);
  return next_strand_++;
}

uint64_t ThreadedBackend::ScheduleAfterOn(uint64_t strand, Duration delay,
                                          std::function<void()> fn) {
  if (delay < Duration::Zero()) {
    delay = Duration::Zero();  // clamp, matching EventLoop::ScheduleAfter
  }
  MutexLock lock(&mu_);
  TimePoint base =
      tls_backend == this ? TimePoint::FromMicros(tls_now_us) : frontier_;
  TimePoint at = base + delay;
  uint64_t seq = next_seq_++;
  timers_.emplace(TimerKey{at.micros(), seq},
                  TimerEntry{strand, std::move(fn)});
  live_.emplace(seq, at);
  if (strands_[strand].timers++ == 0) {
    ++pending_strands_;
  }
  timer_cv_.NotifyAll();
  return seq;
}

bool ThreadedBackend::Cancel(uint64_t id) {
  MutexLock lock(&mu_);
  auto live = live_.find(id);
  if (live == live_.end()) {
    return false;  // already ran, already cancelled, or never existed
  }
  auto timer = timers_.find(TimerKey{live->second.micros(), id});
  if (timer == timers_.end()) {
    return false;  // unreachable: live_ and timers_ move in lock step
  }
  if (--strands_[timer->second.strand].timers == 0) {
    --pending_strands_;
  }
  timers_.erase(timer);
  live_.erase(live);
  return true;
}

std::map<ThreadedBackend::TimerKey, ThreadedBackend::TimerEntry>::iterator
ThreadedBackend::FirstDispatchable() {
  if (!driving_) {
    return timers_.end();
  }
  std::set<uint64_t> gated;
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    TimePoint at = TimePoint::FromMicros(it->first.at_us);
    if (at > drive_deadline_) {
      return timers_.end();  // ordered by time: nothing further qualifies
    }
    uint64_t strand = it->second.strand;
    if (gated.count(strand) != 0) {
      continue;  // a later timer of a gated strand is never dispatchable
    }
    const StrandState& s = strands_[strand];
    if (s.outstanding == 0 || at == s.ts) {
      return it;
    }
    gated.insert(strand);
    if (gated.size() >= pending_strands_) {
      return timers_.end();  // every strand with timers is gated
    }
  }
  return timers_.end();
}

void ThreadedBackend::PumpLoop() {
  for (;;) {
    WorkItem item;
    size_t shard = 0;
    {
      MutexLock lock(&mu_);
      std::map<TimerKey, TimerEntry>::iterator it;
      for (;;) {
        if (stopped_) {
          pump_exited_ = true;
          done_cv_.NotifyAll();
          return;
        }
        it = FirstDispatchable();
        if (it == timers_.end()) {
          timer_cv_.Wait(&mu_);
          continue;
        }
        if (time_scale_ > 0.0) {
          if (!anchored_) {
            anchored_ = true;
            anchor_wall_ = WallClockSeconds();
            anchor_sim_ = TimePoint::FromMicros(it->first.at_us);
          }
          double target =
              anchor_wall_ +
              (TimePoint::FromMicros(it->first.at_us) - anchor_sim_)
                      .seconds() *
                  time_scale_;
          double wall = WallClockSeconds();
          if (wall < target) {
            // Sleep at most the remaining gap; an earlier timer may be
            // inserted meanwhile, so re-scan after every wakeup.
            (void)timer_cv_.WaitFor(&mu_, target - wall);
            continue;
          }
        }
        break;
      }
      item.strand = it->second.strand;
      item.at = TimePoint::FromMicros(it->first.at_us);
      item.fn = std::move(it->second.fn);
      live_.erase(it->first.seq);
      if (--strands_[item.strand].timers == 0) {
        --pending_strands_;
      }
      timers_.erase(it);
      StrandState& s = strands_[item.strand];
      ++s.outstanding;
      s.ts = item.at;
      ++in_flight_;
      if (frontier_ < item.at) {
        frontier_ = item.at;
      }
      shard = static_cast<size_t>(item.strand) % shards_.size();
    }
    // Outside the lock: a full mailbox blocks the pump here — that stall
    // is the backpressure contract (see class comment).
    uint64_t strand = item.strand;
    PushOutcome outcome = shards_[shard]->Push(std::move(item));
    if (outcome == PushOutcome::kClosed) {
      FinishItem(strand);  // stopping: undo the dispatch bookkeeping
      continue;
    }
    if (outcome == PushOutcome::kMustDrain) {
      pool_->Submit([this, shard] { DrainShard(shard); });
    }
  }
}

void ThreadedBackend::DrainShard(size_t shard) {
  WorkItem item;
  while (shards_[shard]->Pop(&item)) {
    tls_backend = this;
    tls_now_us = item.at.micros();
    item.fn();
    tls_backend = nullptr;
    item.fn = nullptr;  // release captures before signalling completion
    FinishItem(item.strand);
  }
}

void ThreadedBackend::FinishItem(uint64_t strand) {
  MutexLock lock(&mu_);
  --strands_[strand].outstanding;
  --in_flight_;
  ++events_processed_;
  if (events_counter_ != nullptr) {
    events_counter_->Increment();
  }
  timer_cv_.NotifyAll();
  done_cv_.NotifyAll();
}

void ThreadedBackend::RunUntil(TimePoint deadline) {
  MutexLock lock(&mu_);
  if (stopped_) {
    return;
  }
  driving_ = true;
  drive_deadline_ = deadline;
  timer_cv_.NotifyAll();
  for (;;) {
    bool work_left =
        in_flight_ > 0 ||
        (!timers_.empty() &&
         TimePoint::FromMicros(timers_.begin()->first.at_us) <= deadline);
    if (stopped_ || !work_left) {
      break;
    }
    done_cv_.Wait(&mu_);
  }
  driving_ = false;
  if (frontier_ < deadline) {
    frontier_ = deadline;  // EventLoop::RunUntil advances now() likewise
  }
}

void ThreadedBackend::RunUntilIdle() {
  MutexLock lock(&mu_);
  if (stopped_) {
    return;
  }
  driving_ = true;
  drive_deadline_ = TimePoint::Max();
  timer_cv_.NotifyAll();
  while (!stopped_ && (in_flight_ > 0 || !timers_.empty())) {
    done_cv_.Wait(&mu_);
  }
  driving_ = false;
}

void ThreadedBackend::Stop() {
  {
    MutexLock lock(&mu_);
    if (stopped_) {
      // Idempotent, but still wait out the pump for destructor safety.
      while (!pump_exited_) {
        done_cv_.Wait(&mu_);
      }
      return;
    }
    stopped_ = true;
    timers_.clear();
    live_.clear();
    for (auto& [strand, state] : strands_) {
      state.timers = 0;
    }
    pending_strands_ = 0;
    timer_cv_.NotifyAll();
    done_cv_.NotifyAll();
  }
  // Unblock a pump stuck pushing into a full mailbox and make the drains
  // discard queued items instead of running them.
  for (auto& shard : shards_) {
    shard->Close();
  }
  MutexLock lock(&mu_);
  while (!pump_exited_) {
    done_cv_.Wait(&mu_);
  }
}

int64_t ThreadedBackend::events_processed() const {
  MutexLock lock(&mu_);
  return events_processed_;
}

size_t ThreadedBackend::pending() const {
  MutexLock lock(&mu_);
  return live_.size();
}

void ThreadedBackend::AttachMetrics(obs::MetricsRegistry* registry) {
  MutexLock lock(&mu_);
  events_counter_ =
      registry == nullptr ? nullptr
                          : registry->counter("backend.events_processed");
}

void ThreadedBackend::AttachSpans(obs::SpanProfiler* spans) {
  MutexLock lock(&mu_);
  spans_ = spans;
}

}  // namespace backend
}  // namespace ppa
