#include "backend/execution_backend.h"
#include "backend/sim_backend.h"
#include "backend/threaded_backend.h"

namespace ppa {
namespace backend {

std::unique_ptr<ExecutionBackend> MakeBackend(
    BackendKind kind, const ThreadedBackendOptions& options) {
  switch (kind) {
    case BackendKind::kSim:
      return std::make_unique<SimBackend>();
    case BackendKind::kThreads:
      return std::make_unique<ThreadedBackend>(options);
  }
  return std::make_unique<SimBackend>();  // unreachable
}

}  // namespace backend
}  // namespace ppa
