#ifndef PPA_BACKEND_SIM_BACKEND_H_
#define PPA_BACKEND_SIM_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "backend/execution_backend.h"
#include "common/sim_time.h"
#include "sim/event_loop.h"

namespace ppa {
namespace backend {

/// The deterministic backend: a 1:1 adapter over sim::EventLoop. Every
/// call forwards unchanged, so a job driven through SimBackend produces
/// byte-identical output to one driven on a raw EventLoop — that identity
/// is itself a tested invariant (tests/backend_test.cc) because it is
/// what makes this backend the parity oracle for all others.
///
/// Strands are bookkeeping only: the simulator is single-threaded, and
/// the (time, insertion) order the EventLoop already enforces is exactly
/// the per-strand order the interface promises.
class SimBackend final : public ExecutionBackend {
 public:
  /// Owns a fresh EventLoop.
  SimBackend();

  /// Wraps an external loop the caller keeps owning (lets tests and
  /// transitional call sites share one loop between old and new APIs).
  explicit SimBackend(EventLoop* loop);

  ~SimBackend() override;

  BackendKind kind() const override { return BackendKind::kSim; }
  TimePoint now() const override { return loop_->now(); }
  uint64_t NewStrand() override { return next_strand_++; }

  uint64_t ScheduleAfterOn(uint64_t strand, Duration delay,
                           std::function<void()> fn) override {
    (void)strand;
    return loop_->ScheduleAfter(delay, std::move(fn));
  }

  [[nodiscard]] bool Cancel(uint64_t id) override {
    return loop_->Cancel(id);
  }

  void RunUntil(TimePoint deadline) override { loop_->RunUntil(deadline); }
  void RunUntilIdle() override { loop_->RunUntilIdle(); }
  void Stop() override {}  // nothing runs between drives; drop nothing

  int64_t events_processed() const override {
    return loop_->events_processed();
  }
  size_t pending() const override { return loop_->pending(); }

  void AttachMetrics(obs::MetricsRegistry* registry) override {
    loop_->AttachMetrics(registry);
  }
  void AttachSpans(obs::SpanProfiler* spans) override {
    loop_->AttachSpans(spans);
  }

  /// The wrapped loop (tests drive it directly to prove the adapter adds
  /// nothing).
  EventLoop* loop() { return loop_; }

 private:
  std::unique_ptr<EventLoop> owned_;  // null when wrapping an external loop
  EventLoop* loop_;
  uint64_t next_strand_ = 1;  // strand 0 always exists
};

}  // namespace backend
}  // namespace ppa

#endif  // PPA_BACKEND_SIM_BACKEND_H_
