#include "backend/execution_backend.h"

#include "common/status.h"

namespace ppa {
namespace backend {

ExecutionBackend::~ExecutionBackend() = default;

std::string BackendKindToString(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSim:
      return "sim";
    case BackendKind::kThreads:
      return "threads";
  }
  return "sim";  // unreachable; keeps non-exhaustive-switch warnings quiet
}

StatusOr<BackendKind> ParseBackendKind(std::string_view text) {
  if (text == "sim") {
    return BackendKind::kSim;
  }
  if (text == "threads") {
    return BackendKind::kThreads;
  }
  return InvalidArgument("unknown backend '" + std::string(text) +
                         "' (expected sim or threads)");
}

}  // namespace backend
}  // namespace ppa
