#include "backend/sim_backend.h"

namespace ppa {
namespace backend {

SimBackend::SimBackend()
    : owned_(std::make_unique<EventLoop>()), loop_(owned_.get()) {}

SimBackend::SimBackend(EventLoop* loop) : loop_(loop) {}

SimBackend::~SimBackend() = default;

}  // namespace backend
}  // namespace ppa
