#ifndef PPA_BACKEND_EXECUTION_BACKEND_H_
#define PPA_BACKEND_EXECUTION_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/sim_time.h"
#include "common/status_or.h"

namespace ppa {
namespace obs {
class MetricsRegistry;
class SpanProfiler;
}  // namespace obs

namespace backend {

/// Which execution substrate runs a job's events. kSim is the
/// deterministic discrete-event simulator (the correctness oracle for
/// every other backend); kThreads executes the same schedule on a real
/// worker pool with bounded mailboxes (DESIGN.md §16).
enum class BackendKind {
  kSim,
  kThreads,
};

/// "sim" or "threads" — the spelling of the shared `--backend=` flag and
/// of the "backend" key stamped into BENCH_*.json reports.
[[nodiscard]] std::string BackendKindToString(BackendKind kind);

/// Parses the `--backend=` flag spelling; kInvalidArgument on anything
/// other than "sim" or "threads".
[[nodiscard]] StatusOr<BackendKind> ParseBackendKind(std::string_view text);

/// Tuning knobs for backend::ThreadedBackend; every field has a usable
/// default so `MakeBackend(BackendKind::kThreads)` just works.
struct ThreadedBackendOptions {
  /// Worker shards (mailbox lanes). <= 0 means "hardware parallelism".
  int num_shards = 0;
  /// Bounded per-shard mailbox depth; producers block when the mailbox is
  /// full (backpressure, DESIGN.md §16).
  size_t mailbox_capacity = 1024;
  /// 0 runs virtual time as fast as the machine allows; a positive value
  /// paces dispatch so one simulated second takes `time_scale` wall
  /// seconds (1.0 = real time).
  double time_scale = 0.0;
};

/// The seam between job logic and the machinery that runs it: everything
/// above this interface (runtime, engine, ft, exp, ...) schedules work
/// against virtual time and never names the simulator or a thread.
///
/// ## Strands
///
/// A strand is an ordered execution domain. Two callbacks on the same
/// strand never run concurrently and always execute in exactly the order
/// the deterministic simulator would run them — ascending (time, schedule
/// sequence). Distinct strands may run in parallel on backends that have
/// real threads; the sim runs everything on the caller's thread. Each
/// StreamingJob lives on one strand, which is what makes the sim a
/// byte-exact oracle for the threaded backend (the parity contract,
/// DESIGN.md §16). Strand 0 always exists; NewStrand() mints more.
///
/// Ordering across *different* strands is deliberately unspecified beyond
/// the RunUntil horizon, so code on strand A must not schedule onto
/// strand B and expect sim-identical interleaving.
///
/// ## Driving
///
/// RunUntil / RunUntilIdle are called from the owning (driver) thread
/// only, never from inside a scheduled callback. Schedule/Cancel/now()
/// are safe from callbacks on any strand.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend();

  ExecutionBackend() = default;
  ExecutionBackend(const ExecutionBackend&) = delete;
  ExecutionBackend& operator=(const ExecutionBackend&) = delete;

  /// Which substrate this is (stamped into reports; never branch job
  /// logic on it).
  virtual BackendKind kind() const = 0;

  /// Current virtual time. Inside a callback this is the callback's
  /// firing time (exactly as in the simulator); outside it is the
  /// high-water mark the backend has run to.
  virtual TimePoint now() const = 0;

  /// Mints a fresh strand id (see class comment). Thread-safe.
  virtual uint64_t NewStrand() = 0;

  /// Schedules `fn` on `strand`, `delay` after now() (negative delays
  /// clamp to zero, matching the simulator). Returns an id usable with
  /// Cancel(). Safe from any strand's callbacks and from the driver.
  virtual uint64_t ScheduleAfterOn(uint64_t strand, Duration delay,
                                   std::function<void()> fn) = 0;

  /// Cancels a pending callback; false if it already ran, was already
  /// cancelled, or never existed.
  [[nodiscard]] virtual bool Cancel(uint64_t id) = 0;

  /// Runs every callback with firing time <= deadline, then advances
  /// now() to `deadline`. Blocks the driver thread until the work is
  /// drained. Driver thread only.
  virtual void RunUntil(TimePoint deadline) = 0;

  /// Runs callbacks until none are pending. Driver thread only.
  virtual void RunUntilIdle() = 0;

  /// Stops accepting and dispatching work: pending timers are dropped,
  /// already-dispatched callbacks finish. Idempotent; implied by the
  /// destructor.
  virtual void Stop() = 0;

  /// Number of callbacks executed so far.
  virtual int64_t events_processed() const = 0;

  /// Number of callbacks scheduled but not yet dispatched or cancelled.
  virtual size_t pending() const = 0;

  /// Publishes backend counters to `registry` (nullptr detaches).
  /// Recording never feeds back into scheduling, so attaching metrics
  /// cannot change a run.
  virtual void AttachMetrics(obs::MetricsRegistry* registry) = 0;

  /// Registers a span profiler (nullptr detaches). The sim brackets each
  /// drive in a root span; backends without a single execution thread may
  /// ignore the profiler rather than record racy spans.
  virtual void AttachSpans(obs::SpanProfiler* spans) = 0;

  /// Schedules on strand 0 — the single-job convenience spelling.
  uint64_t ScheduleAfter(Duration delay, std::function<void()> fn) {
    return ScheduleAfterOn(0, delay, std::move(fn));
  }

  /// Schedules `fn` on `strand` at absolute virtual time `at` (clamped to
  /// now(), matching EventLoop::Schedule).
  uint64_t ScheduleAt(uint64_t strand, TimePoint at,
                      std::function<void()> fn) {
    return ScheduleAfterOn(strand, at - now(), std::move(fn));
  }

  /// Posts `fn` to `strand` "now": it runs at the current virtual time,
  /// after everything already scheduled for that instant. Identical
  /// semantics on every backend (it is a zero-delay schedule), which is
  /// what keeps cross-backend parity byte-exact.
  void Post(uint64_t strand, std::function<void()> fn) {
    (void)ScheduleAfterOn(strand, Duration::Zero(), std::move(fn));
  }
};

/// Builds a backend of the requested kind; `options` only affects
/// kThreads.
[[nodiscard]] std::unique_ptr<ExecutionBackend> MakeBackend(
    BackendKind kind, const ThreadedBackendOptions& options = {});

}  // namespace backend
}  // namespace ppa

#endif  // PPA_BACKEND_EXECUTION_BACKEND_H_
