#ifndef PPA_EXP_RUN_SPEC_H_
#define PPA_EXP_RUN_SPEC_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "backend/execution_backend.h"
#include "common/random.h"
#include "common/status_or.h"
#include "exp/parallel_runner.h"
#include "planner/planner.h"
#include "report/json.h"
#include "runtime/config.h"
#include "runtime/scenario.h"
#include "runtime/streaming_job.h"

namespace ppa {
namespace exp {

/// Value-type description of one complete experiment: topology, job
/// configuration, operator bindings, failure scenario, planner choice, and
/// seed. A RunSpec is self-contained — executing it never reads ambient
/// state — so specs can be fanned across threads and always reproduce.
struct RunSpec {
  /// Identifies the run in results and JSON output.
  std::string label;
  /// Builds the run's topology. Receives the run's derived-seed RNG, so
  /// randomized topologies are reproducible and independent of the order
  /// runs execute in.
  std::function<StatusOr<Topology>(Rng*)> make_topology;
  /// Job configuration; validated before the job is constructed.
  JobConfig config;
  /// Custom operator/source bindings. When empty, BindGenericWorkload()
  /// attaches deterministic synthetic sources and sliding-window
  /// aggregates (the ppa_cli semantics).
  std::function<Status(const Topology&, StreamingJob*)> bind;
  /// Timed failure script executed while the job runs.
  std::vector<ScenarioEvent> scenario;
  /// Planner whose plan is activated as the job's replica set before the
  /// run starts; no planning when unset.
  std::optional<PlannerKind> planner;
  /// Options forwarded to CreatePlanner() when `planner` is set.
  PlannerOptions planner_options;
  /// Replication budget; negative means num_tasks / 2.
  int budget = -1;
  /// Base seed. RunAll() derives the per-run seed with
  /// DeriveSeed(seed, run_index).
  uint64_t seed = 1;
  /// Simulated duration of the run.
  double run_for_seconds = 60.0;
  /// Execution backend the run is driven on. The spec's *outputs* must
  /// not depend on it — that's the parity contract (exp/parity.h).
  backend::BackendKind backend = backend::BackendKind::kSim;
};

/// Outcome of one executed RunSpec.
struct RunResult {
  /// Copied from the spec.
  std::string label;
  /// Worst-case OF of the activated plan; 1.0 when no planner ran.
  double output_fidelity = 1.0;
  /// Replicas the activated plan consumed; 0 when no planner ran.
  int resource_usage = 0;
  /// Sink records the job emitted.
  size_t sink_records = 0;
  /// Recoveries the job completed.
  size_t recoveries = 0;
  /// Slowest recovery in seconds; 0 without failures.
  double max_recovery_latency_seconds = 0.0;
  /// Full job summary (JobSummaryToJson).
  JsonValue summary;
};

/// JSON object for one result, with a stable field order (suitable for
/// byte-identity comparisons across worker counts).
[[nodiscard]] JsonValue RunResultToJson(const RunResult& result);

/// JSON array of results in run order.
[[nodiscard]] JsonValue RunResultsToJson(const std::vector<RunResult>& results);

/// Binds the generic workload ppa_cli uses: deterministic synthetic
/// sources at each source operator's spec rate, sliding-window aggregates
/// (window = config.window_batches, the operator's spec selectivity)
/// everywhere else.
[[nodiscard]] Status BindGenericWorkload(const Topology& topology,
                                         const JobConfig& config,
                                         StreamingJob* job);

/// Executes one spec with the given derived seed: builds the topology,
/// validates the config, binds operators, optionally plans and activates a
/// replica set, schedules the scenario, and drives spec.backend for
/// spec.run_for_seconds of virtual time.
[[nodiscard]] StatusOr<RunResult> ExecuteRun(const RunSpec& spec,
                                             uint64_t derived_seed);

/// ExecuteRun plus the raw sink records the job emitted, for output
/// comparisons the aggregate RunResult is too coarse for (the parity
/// harness diffs these record-by-record).
struct ExecutedRun {
  RunResult result;
  std::vector<SinkRecord> sink_records;
};

/// Executes one spec and captures its sink output (see ExecutedRun).
[[nodiscard]] StatusOr<ExecutedRun> ExecuteRunCapture(const RunSpec& spec,
                                                      uint64_t derived_seed);

/// Executes every spec through the runner and returns results in spec
/// order. Run i executes with seed DeriveSeed(specs[i].seed, i), so the
/// result vector is identical for any worker count.
[[nodiscard]] StatusOr<std::vector<RunResult>> RunAll(
    ParallelRunner* runner, const std::vector<RunSpec>& specs);

}  // namespace exp
}  // namespace ppa

#endif  // PPA_EXP_RUN_SPEC_H_
