#ifndef PPA_EXP_PARALLEL_RUNNER_H_
#define PPA_EXP_PARALLEL_RUNNER_H_

#include <functional>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace ppa {
namespace exp {

/// Options of a ParallelRunner.
struct ParallelRunnerOptions {
  /// Worker threads to fan independent runs across. Values <= 1 run every
  /// mapped function inline on the calling thread (no pool is created).
  int jobs = 1;
};

/// Fans independent experiment runs across a work-stealing thread pool and
/// collects their results in submission order, so the output of a mapped
/// sweep is identical no matter how many workers execute it. The mapped
/// function must be self-contained per index: any shared state it touches
/// must be immutable or synchronized by the caller.
class ParallelRunner {
 public:
  explicit ParallelRunner(ParallelRunnerOptions options = {}) {
    if (options.jobs > 1) {
      pool_ = std::make_unique<ThreadPool>(options.jobs);
    }
  }

  /// Number of threads runs execute on (1 = inline on the caller).
  [[nodiscard]] int jobs() const {
    return pool_ != nullptr ? pool_->num_threads() : 1;
  }

  /// Runs `fn(0) .. fn(count - 1)` and returns their results indexed by
  /// argument — element i is always fn(i)'s result, regardless of the
  /// order workers finished. An exception raised by fn is captured on the
  /// worker and rethrown here for the lowest throwing index; later runs
  /// may still execute (the pool drains) but their results are dropped.
  template <typename T>
  std::vector<T> Map(int count, const std::function<T(int)>& fn) {
    PPA_CHECK(count >= 0);
    std::vector<T> results;
    results.reserve(static_cast<size_t>(count));
    if (pool_ == nullptr) {
      for (int i = 0; i < count; ++i) {
        results.push_back(fn(i));
      }
      return results;
    }
    std::vector<std::future<T>> futures;
    futures.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      // Each task owns a copy of fn so it stays valid even if this frame
      // unwinds while queued tasks are still draining.
      auto task = std::make_shared<std::packaged_task<T()>>(
          [fn, i] { return fn(i); });
      futures.push_back(task->get_future());
      pool_->Submit([task] { (*task)(); });
    }
    for (std::future<T>& future : futures) {
      results.push_back(future.get());
    }
    return results;
  }

 private:
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace exp
}  // namespace ppa

#endif  // PPA_EXP_PARALLEL_RUNNER_H_
