#include "exp/run_spec.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "backend/execution_backend.h"
#include "engine/operators.h"
#include "report/experiment_report.h"
#include "workloads/synthetic_recovery.h"

namespace ppa {
namespace exp {

Status BindGenericWorkload(const Topology& topology, const JobConfig& config,
                           StreamingJob* job) {
  for (const OperatorInfo& oi : topology.operators()) {
    if (oi.upstream.empty()) {
      double rate = 0;
      for (TaskId t : oi.tasks) {
        rate += topology.task(t).output_rate;
      }
      const int64_t per_task_batch = static_cast<int64_t>(
          rate / oi.parallelism * config.batch_interval.seconds());
      PPA_RETURN_IF_ERROR(
          job->BindSource(oi.id, [per_task_batch, id = oi.id] {
            return std::make_unique<SyntheticSource>(
                std::max<int64_t>(per_task_batch, 1), 256,
                static_cast<uint64_t>(id) + 1);
          }));
    } else {
      PPA_RETURN_IF_ERROR(job->BindOperator(
          oi.id, [window = config.window_batches, sel = oi.selectivity] {
            return std::make_unique<SlidingWindowAggregateOperator>(window,
                                                                   sel);
          }));
    }
  }
  return OkStatus();
}

StatusOr<RunResult> ExecuteRun(const RunSpec& spec, uint64_t derived_seed) {
  PPA_ASSIGN_OR_RETURN(ExecutedRun run,
                       ExecuteRunCapture(spec, derived_seed));
  return std::move(run.result);
}

StatusOr<ExecutedRun> ExecuteRunCapture(const RunSpec& spec,
                                        uint64_t derived_seed) {
  if (!spec.make_topology) {
    return InvalidArgument("RunSpec.make_topology is required");
  }
  PPA_RETURN_IF_ERROR(spec.config.Validate());
  Rng rng(derived_seed);
  PPA_ASSIGN_OR_RETURN(Topology topology, spec.make_topology(&rng));

  std::unique_ptr<backend::ExecutionBackend> be =
      backend::MakeBackend(spec.backend);
  StreamingJob job(topology, spec.config, JobRuntimeDeps(be.get()));
  if (spec.bind) {
    PPA_RETURN_IF_ERROR(spec.bind(topology, &job));
  } else {
    PPA_RETURN_IF_ERROR(BindGenericWorkload(topology, spec.config, &job));
  }

  RunResult result;
  result.label = spec.label;
  if (spec.planner.has_value()) {
    const int budget =
        spec.budget >= 0 ? spec.budget : topology.num_tasks() / 2;
    std::unique_ptr<Planner> planner =
        CreatePlanner(*spec.planner, spec.planner_options);
    PPA_ASSIGN_OR_RETURN(ReplicationPlan plan,
                         planner->Plan(PlanRequest(topology, budget)));
    result.output_fidelity = plan.output_fidelity;
    result.resource_usage = plan.resource_usage();
    PPA_RETURN_IF_ERROR(job.SetActiveReplicaSet(plan.replicated));
  }
  PPA_RETURN_IF_ERROR(job.Start());

  ScenarioRunner scenario(&job);
  if (!spec.scenario.empty()) {
    PPA_RETURN_IF_ERROR(scenario.Run(spec.scenario));
  }
  be->RunUntil(TimePoint::Zero() + Duration::Seconds(spec.run_for_seconds));
  PPA_RETURN_IF_ERROR(scenario.FirstError());

  result.sink_records = job.sink_records().size();
  result.recoveries = job.recovery_reports().size();
  for (const RecoveryReport& report : job.recovery_reports()) {
    result.max_recovery_latency_seconds =
        std::max(result.max_recovery_latency_seconds,
                 report.TotalLatency().seconds());
  }
  result.summary = JobSummaryToJson(job);
  ExecutedRun run;
  run.result = std::move(result);
  run.sink_records = job.sink_records();
  return run;
}

StatusOr<std::vector<RunResult>> RunAll(ParallelRunner* runner,
                                        const std::vector<RunSpec>& specs) {
  std::vector<StatusOr<RunResult>> raw =
      runner->Map<StatusOr<RunResult>>(
          static_cast<int>(specs.size()), [&specs](int i) {
            const RunSpec& spec = specs[static_cast<size_t>(i)];
            return ExecuteRun(spec,
                              DeriveSeed(spec.seed,
                                         static_cast<uint64_t>(i)));
          });
  std::vector<RunResult> results;
  results.reserve(raw.size());
  for (StatusOr<RunResult>& run : raw) {
    PPA_RETURN_IF_ERROR(run.status());
    results.push_back(*std::move(run));
  }
  return results;
}

JsonValue RunResultToJson(const RunResult& result) {
  JsonValue v = JsonValue::Object();
  v.Set("label", result.label);
  v.Set("output_fidelity", result.output_fidelity);
  v.Set("resource_usage", result.resource_usage);
  v.Set("sink_records", static_cast<int64_t>(result.sink_records));
  v.Set("recoveries", static_cast<int64_t>(result.recoveries));
  v.Set("max_recovery_latency_seconds",
        result.max_recovery_latency_seconds);
  v.Set("summary", result.summary);
  return v;
}

JsonValue RunResultsToJson(const std::vector<RunResult>& results) {
  JsonValue v = JsonValue::Array();
  for (const RunResult& result : results) {
    v.Append(RunResultToJson(result));
  }
  return v;
}

}  // namespace exp
}  // namespace ppa
