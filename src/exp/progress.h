#ifndef PPA_EXP_PROGRESS_H_
#define PPA_EXP_PROGRESS_H_

#include <functional>
#include <utility>

#include "common/thread_annotations.h"

namespace ppa {
namespace exp {

/// Thread-safe progress tally for a parallel sweep. Workers call
/// Record() as each mapped run finishes (in whatever order the pool
/// schedules them); an optional sink observes every update under the
/// meter's mutex, so progress lines from concurrent workers never
/// interleave. Progress is observational only — it must feed stderr or a
/// UI, never a result, because completion order is nondeterministic
/// while the sweep's *results* stay keyed to submission indices.
class ProgressMeter {
 public:
  /// One consistent view of the tally.
  struct Snapshot {
    int done = 0;
    int failed = 0;
  };

  ProgressMeter() = default;

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Installs the observer invoked (serialized, under the meter's lock)
  /// after every Record. Call before handing the meter to workers.
  void set_sink(std::function<void(Snapshot)> sink) PPA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    sink_ = std::move(sink);
  }

  /// Counts one finished run (and whether it failed), then notifies the
  /// sink. Safe to call from any worker thread.
  void Record(bool failed) PPA_EXCLUDES(mu_);

  /// Returns a consistent snapshot of the tally.
  [[nodiscard]] Snapshot snapshot() const PPA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return Snapshot{done_, failed_};
  }

 private:
  mutable Mutex mu_;
  int done_ PPA_GUARDED_BY(mu_) = 0;
  int failed_ PPA_GUARDED_BY(mu_) = 0;
  std::function<void(Snapshot)> sink_ PPA_GUARDED_BY(mu_);
};

}  // namespace exp
}  // namespace ppa

#endif  // PPA_EXP_PROGRESS_H_
