#include "exp/progress.h"

namespace ppa {
namespace exp {

void ProgressMeter::Record(bool failed) {
  MutexLock lock(&mu_);
  ++done_;
  if (failed) {
    ++failed_;
  }
  if (sink_ != nullptr) {
    sink_(Snapshot{done_, failed_});
  }
}

}  // namespace exp
}  // namespace ppa
