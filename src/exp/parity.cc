#include "exp/parity.h"

#include <sstream>
#include <utility>
#include <vector>

namespace ppa {
namespace exp {
namespace {

std::vector<SinkRecord> StableRecords(const std::vector<SinkRecord>& all) {
  std::vector<SinkRecord> stable;
  stable.reserve(all.size());
  for (const SinkRecord& r : all) {
    if (!r.tentative && !r.correction) {
      stable.push_back(r);
    }
  }
  return stable;
}

std::string DescribeRecord(const SinkRecord& r) {
  std::ostringstream os;
  os << "key=" << r.tuple.key << " value=" << r.tuple.value
     << " batch=" << r.tuple.batch << " seq=" << r.tuple.seq
     << " producer=" << r.tuple.producer
     << " emitted_at=" << r.emitted_at.micros() << "us"
     << " ingest_at=" << r.ingest_at.micros() << "us";
  return os.str();
}

bool SameRecord(const SinkRecord& a, const SinkRecord& b) {
  return a.tuple == b.tuple && a.emitted_at == b.emitted_at &&
         a.ingest_at == b.ingest_at;
}

}  // namespace

StatusOr<ParityReport> RunSpecParity(const RunSpec& spec,
                                     backend::BackendKind candidate,
                                     uint64_t derived_seed) {
  RunSpec baseline_spec = spec;
  baseline_spec.backend = backend::BackendKind::kSim;
  RunSpec candidate_spec = spec;
  candidate_spec.backend = candidate;

  PPA_ASSIGN_OR_RETURN(ExecutedRun baseline,
                       ExecuteRunCapture(baseline_spec, derived_seed));
  PPA_ASSIGN_OR_RETURN(ExecutedRun run,
                       ExecuteRunCapture(candidate_spec, derived_seed));

  ParityReport report;
  report.baseline_total = baseline.sink_records.size();
  report.candidate_total = run.sink_records.size();
  std::vector<SinkRecord> want = StableRecords(baseline.sink_records);
  std::vector<SinkRecord> got = StableRecords(run.sink_records);
  report.baseline_stable = want.size();
  report.candidate_stable = got.size();

  if (want.size() != got.size()) {
    std::ostringstream os;
    os << "stable record count differs: sim=" << want.size() << " "
       << backend::BackendKindToString(candidate) << "=" << got.size();
    report.mismatch = os.str();
    return report;
  }
  for (size_t i = 0; i < want.size(); ++i) {
    if (!SameRecord(want[i], got[i])) {
      std::ostringstream os;
      os << "stable record " << i << " differs: sim {"
         << DescribeRecord(want[i]) << "} vs "
         << backend::BackendKindToString(candidate) << " {"
         << DescribeRecord(got[i]) << "}";
      report.mismatch = os.str();
      return report;
    }
  }
  report.identical = true;
  return report;
}

}  // namespace exp
}  // namespace ppa
