#ifndef PPA_EXP_PARITY_H_
#define PPA_EXP_PARITY_H_

#include <cstdint>
#include <string>

#include "backend/execution_backend.h"
#include "common/status_or.h"
#include "exp/run_spec.h"

namespace ppa {
namespace exp {

/// Outcome of one cross-backend parity comparison (the oracle contract of
/// DESIGN.md §16): the candidate backend ran the same RunSpec as the
/// deterministic sim, and its *stable* sink output — every record that is
/// neither tentative nor a late correction — must match the sim's
/// record-for-record and field-for-field.
struct ParityReport {
  /// True when the candidate's stable output is identical to the sim's.
  bool identical = false;
  /// Stable / total record counts of the sim golden run.
  size_t baseline_stable = 0;
  size_t baseline_total = 0;
  /// Stable / total record counts of the candidate run.
  size_t candidate_stable = 0;
  size_t candidate_total = 0;
  /// Human-readable description of the first divergence; empty when
  /// identical.
  std::string mismatch;
};

/// Runs `spec` once on the deterministic sim and once on `candidate`,
/// with the same derived seed, and compares stable sink outputs (see
/// ParityReport). The spec's own `backend` field is ignored — this
/// harness picks both sides. Tentative records and corrections are
/// excluded: their content is stable-by-contract too, but their
/// *presence* depends on detection timing that recovery drills perturb;
/// the stable stream is the user-visible output the paper's guarantees
/// cover.
[[nodiscard]] StatusOr<ParityReport> RunSpecParity(
    const RunSpec& spec, backend::BackendKind candidate,
    uint64_t derived_seed);

}  // namespace exp
}  // namespace ppa

#endif  // PPA_EXP_PARITY_H_
