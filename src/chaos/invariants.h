#ifndef PPA_CHAOS_INVARIANTS_H_
#define PPA_CHAOS_INVARIANTS_H_

#include <string>
#include <string_view>
#include <vector>

#include "chaos/chaos_case.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "runtime/streaming_job.h"

namespace ppa {
namespace chaos {

/// One invariant failure found by an oracle. `invariant` is the oracle's
/// stable name; the minimizer shrinks schedules while preserving a
/// violation of the same invariant.
struct ChaosViolation {
  std::string invariant;
  std::string message;

  bool operator==(const ChaosViolation&) const = default;
};

/// Everything an invariant may inspect after a chaos run completed: the
/// case that was executed, the job it ran (trace, metrics, timelines,
/// sink records), the fault-free golden job of the same case run to the
/// same end time, and the scenario outcome statuses.
struct ChaosRunContext {
  const ChaosCase* chaos_case = nullptr;
  const StreamingJob* job = nullptr;
  const StreamingJob* golden = nullptr;
  /// Per-event statuses in execution order.
  const std::vector<Status>* event_outcomes = nullptr;
  /// Whether every scheduled event fired before the run ended.
  bool scenario_finished = false;
  /// Final sim time both jobs ran to.
  TimePoint end_time;
};

/// A system-level correctness oracle evaluated against a completed run.
/// Implementations append one ChaosViolation per distinct failure; an
/// empty append means the invariant held.
class Invariant {
 public:
  virtual ~Invariant() = default;

  /// Stable identifier ("exactly-once-stable", "liveness", ...).
  virtual std::string_view name() const = 0;

  /// Appends violations found in `context` to `violations`.
  virtual void Check(const ChaosRunContext& context,
                     std::vector<ChaosViolation>* violations) const = 0;
};

/// The built-in oracle catalog (see DESIGN.md §12 for the precise
/// statements):
///  - exactly-once-stable: stable non-correction output matches the
///    golden run per (sink, batch), outside the post-recovery window
///    guard; reconcile corrections match golden exactly.
///  - fidelity-bounds: every OF/IC sample is in [0, 1], and fidelity is
///    back at 1.0 once everything recovered and windows closed.
///  - liveness: every failed task's last episode restores and catches up
///    within a sim-time bound, and the job ends fully recovered.
///  - replica-budget: the count of live active replicas never exceeds
///    the case budget plus the number of currently-failed tasks (whose
///    replicas a plan swap must not tear down).
///  - timeline-sanity: recovery phases and tentative windows are
///    time-ordered; recovery reports carry no negative latency.
///  - error-budget: under recovery_mode=ppa no checkpoint is ever
///    skipped; under approx/hybrid every divergence certificate honors
///    the declared cap, and the golden-twin per-batch output deficit in
///    certified post-recovery windows never exceeds the certified OF
///    bound.
///  - event-sanity: every scenario event executed and resolved to an
///    acceptable status (OK, or the precondition rejections a random
///    schedule legitimately hits), never InvalidArgument/Internal.
/// The pointers are to function-local statics; never delete them.
const std::vector<const Invariant*>& BuiltinInvariants();

}  // namespace chaos
}  // namespace ppa

#endif  // PPA_CHAOS_INVARIANTS_H_
