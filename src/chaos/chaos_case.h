#ifndef PPA_CHAOS_CHAOS_CASE_H_
#define PPA_CHAOS_CHAOS_CASE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"
#include "report/json.h"
#include "runtime/config.h"
#include "runtime/scenario.h"
#include "topology/topology.h"

namespace ppa {
namespace chaos {

/// A self-contained chaos experiment: everything needed to reproduce one
/// randomized fault-injection run bit for bit — the topology (as its
/// ParseTopologySpec text), the job configuration scalars, the cluster
/// shape and failure-domain assignment, the initial replication plan, and
/// the event timeline. A ChaosCase round-trips through JSON, which is the
/// minimizer's repro artifact format (`chaos_hunt --replay <file>`).
struct ChaosCase {
  /// Seed the case was generated from (recorded for provenance; replaying
  /// a case never re-rolls any dice).
  uint64_t seed = 1;

  /// Topology as ParseTopologySpec() text (see topology/serialize.h).
  std::string topology_spec;

  /// Job configuration scalars (a subset of JobConfig that chaos varies;
  /// everything else comes from JobConfig::PpaDefaults()).
  double batch_interval_seconds = 1.0;
  double detection_interval_seconds = 5.0;
  double checkpoint_interval_seconds = 15.0;
  int num_worker_nodes = 4;
  int num_standby_nodes = 2;
  int64_t window_batches = 10;
  bool delta_checkpoints = false;

  /// Recovery mode of the run (src/af). kPpa replays exactly; kApprox /
  /// kHybrid thin checkpoints within the error budget below. Serialized
  /// optional-with-default, so pre-af repro JSONs keep parsing.
  af::RecoveryMode recovery_mode = af::RecoveryMode::kPpa;
  /// Per-task absolute divergence budget (ErrorBudgetSpec).
  int64_t af_task_divergence_records = 5000;
  /// Cap on the certified per-batch output-loss bound.
  double af_max_certified_loss = 0.25;

  /// Failure-domain id of each cluster node (dense, size = worker +
  /// standby nodes). Empty keeps the default singleton domains.
  std::vector<int> node_domains;

  /// Tasks actively replicated before the run starts.
  std::vector<TaskId> initial_plan;

  /// Replication budget the initial plan was drawn with (recorded so the
  /// replica-budget invariant knows the ceiling; plan swaps during the
  /// run are generated within the same budget).
  int budget = 0;

  /// The fault timeline.
  std::vector<ScenarioEvent> events;

  /// Simulated duration before the recovery grace period begins.
  double run_for_seconds = 60.0;

  bool operator==(const ChaosCase&) const = default;

  /// JobConfig::PpaDefaults() overridden with this case's scalars.
  [[nodiscard]] JobConfig ToJobConfig() const;
};

/// Serializes a case as a stable-field-order JSON object.
[[nodiscard]] JsonValue ChaosCaseToJson(const ChaosCase& chaos_case);

/// Inverse of ChaosCaseToJson.
[[nodiscard]] StatusOr<ChaosCase> ChaosCaseFromJson(const JsonValue& json);

/// Parses a case from JSON text (a serialized ChaosCaseToJson object).
[[nodiscard]] StatusOr<ChaosCase> ParseChaosCaseJson(std::string_view text);

}  // namespace chaos
}  // namespace ppa

#endif  // PPA_CHAOS_CHAOS_CASE_H_
