#ifndef PPA_CHAOS_MINIMIZER_H_
#define PPA_CHAOS_MINIMIZER_H_

#include <functional>
#include <string>
#include <vector>

#include "chaos/chaos_case.h"
#include "chaos/invariants.h"
#include "common/status_or.h"

namespace ppa {
namespace chaos {

/// Judges one candidate case: returns the violations its execution
/// produced (empty = the case passes). A returned error means the
/// candidate could not run at all; the minimizer treats that as "does
/// not reproduce" and keeps the previous case. The production oracle is
/// RunChaosCase with the built-in invariants; tests substitute fakes.
using CaseOracle =
    std::function<StatusOr<std::vector<ChaosViolation>>(const ChaosCase&)>;

/// Knobs of MinimizeFailingCase.
struct MinimizeOptions {
  /// Hard cap on oracle invocations across all phases; minimization
  /// returns the best case found when the budget runs out.
  int max_oracle_calls = 300;
};

/// Result of a minimization.
struct MinimizeResult {
  /// The smallest case found that still violates `invariant`.
  ChaosCase minimized;
  /// Name of the invariant preserved throughout shrinking (the first
  /// violation of the original case).
  std::string invariant;
  /// Oracle invocations spent.
  int oracle_calls = 0;
};

/// Shrinks `failing` to a smaller case that still violates the same
/// invariant, ddmin-style:
///  1. events: classic delta debugging over the timeline (drop chunks
///     and chunk complements at increasing granularity);
///  2. offsets: repeatedly halve event offsets toward zero (tighter
///     schedules are easier to read and re-simulate);
///  3. structure: drop initial-plan entries, shrink the cluster's
///     standby/worker surplus, halve operator parallelism in the
///     topology spec (skipped when events reference what would vanish),
///     and cut the run duration to just past the last event.
/// Every accepted step re-validates with the oracle, so the returned
/// case is guaranteed to still fail the same invariant.
/// InvalidArgument if `failing` does not fail the oracle at all.
[[nodiscard]] StatusOr<MinimizeResult> MinimizeFailingCase(
    const ChaosCase& failing, const CaseOracle& oracle,
    const MinimizeOptions& options = {});

/// The production oracle: RunChaosCase with BuiltinInvariants().
[[nodiscard]] CaseOracle BuiltinOracle();

}  // namespace chaos
}  // namespace ppa

#endif  // PPA_CHAOS_MINIMIZER_H_
