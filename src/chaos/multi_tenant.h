#ifndef PPA_CHAOS_MULTI_TENANT_H_
#define PPA_CHAOS_MULTI_TENANT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/campaign.h"
#include "chaos/generator.h"
#include "chaos/invariants.h"
#include "common/status_or.h"
#include "report/json.h"
#include "runtime/scenario.h"
#include "service/cluster_service.h"

namespace ppa {
namespace chaos {

/// One tenant of a multi-tenant chaos case.
struct TenantCase {
  /// Topology as ParseTopologySpec() text.
  std::string topology_spec;
  /// Replica budget committed against the shared standby pool.
  int replica_budget = 0;
  /// QoS priority (0 = most critical).
  int priority = 0;
  /// Tasks actively replicated at admission.
  std::vector<TaskId> initial_plan;
  /// If non-empty, primaries may only land on these worker nodes (lets
  /// scripted drills pin tenants into specific failure domains).
  std::vector<int> worker_affinity;

  bool operator==(const TenantCase&) const = default;
};

/// A self-contained multi-tenant chaos experiment: a shared-cluster shape,
/// 2-8 tenants with (possibly skewed) replica budgets and priorities, a
/// failure-domain assignment, and a service-level fault timeline. Like
/// ChaosCase it round-trips through JSON for replay.
struct MultiTenantCase {
  /// Seed the case was generated from (provenance only).
  uint64_t seed = 1;

  /// Shared-cluster shape (service::ServiceConfig).
  int num_worker_nodes = 8;
  int num_standby_nodes = 4;
  int worker_slots_per_node = 4;
  int standby_slots_per_node = 4;
  double arbitration_slot_seconds = 2.0;

  /// Job-configuration scalars shared by every tenant.
  double batch_interval_seconds = 1.0;
  double detection_interval_seconds = 5.0;
  double checkpoint_interval_seconds = 15.0;
  int64_t window_batches = 10;

  /// Failure-domain id per pool node (empty keeps singleton domains).
  std::vector<int> node_domains;

  std::vector<TenantCase> tenants;

  /// Service-level fault timeline. Only node/domain failures and revivals
  /// are meaningful at the service layer; other kinds are rejected.
  std::vector<ScenarioEvent> events;

  /// Simulated duration before the recovery grace period begins.
  double run_for_seconds = 60.0;

  bool operator==(const MultiTenantCase&) const = default;

  /// JobConfig::PpaDefaults() overridden with this case's scalars.
  [[nodiscard]] JobConfig ToJobConfig() const;
  /// The service shape this case runs on.
  [[nodiscard]] service::ServiceConfig ToServiceConfig() const;
};

/// Serializes a case as a stable-field-order JSON object.
[[nodiscard]] JsonValue MultiTenantCaseToJson(const MultiTenantCase& mt_case);

/// Inverse of MultiTenantCaseToJson.
[[nodiscard]] StatusOr<MultiTenantCase> MultiTenantCaseFromJson(
    const JsonValue& json);

/// Parses a case from JSON text.
[[nodiscard]] StatusOr<MultiTenantCase> ParseMultiTenantCaseJson(
    std::string_view text);

/// Outcome of one executed multi-tenant case.
struct MultiTenantRunReport {
  uint64_t seed = 0;
  size_t tenants_submitted = 0;
  /// Tenants admitted immediately at submission.
  size_t tenants_admitted = 0;
  /// Tenants that had to queue at submission.
  size_t tenants_queued = 0;
  size_t events_scheduled = 0;
  size_t events_executed = 0;
  /// Sink records summed over every admitted tenant.
  size_t sink_records = 0;
  /// Recoveries summed over every admitted tenant.
  size_t recoveries = 0;
  /// Arbitration incidents the service decided.
  size_t arbitrations = 0;
  /// Degradations/promotions the standby rebalancer performed.
  size_t degradations = 0;
  size_t promotions = 0;
  double end_seconds = 0.0;
  /// Per-tenant violations are prefixed "tenant <id>: ".
  std::vector<ChaosViolation> violations;
};

/// Executes one multi-tenant case deterministically:
///  1. builds a ClusterService from the case, assigns domains, submits
///     every tenant;
///  2. schedules the service-level fault timeline, runs for
///     `run_for_seconds`, then a bounded recovery grace and a quiet tail
///     (mirroring RunChaosCase), then reconciles every tenant;
///  3. replays a fault-free single-job golden twin per admitted tenant
///     and checks the per-job builtin invariants (exactly-once-stable,
///     fidelity-bounds, liveness, replica-budget, timeline-sanity)
///     against each tenant;
///  4. checks the service-level invariants: event-sanity over the
///     timeline outcomes, tenant-replica-budget (every tenant's placed
///     replicas respect its — possibly degraded-to-zero — ceiling), and
///     arbitration-order (the logged decisions match the deterministic
///     policy order with rank-proportional holds).
[[nodiscard]] StatusOr<MultiTenantRunReport> RunMultiTenantCase(
    const MultiTenantCase& mt_case);

/// Generates a random-but-valid multi-tenant case from `seed`: 2-8
/// tenants with small random topologies, Zipf-skewed replica budgets,
/// random priorities, a shared cluster that is sometimes deliberately
/// standby-starved, a random domain assignment, and a failure/revival
/// timeline drawn per `intensity` with a bias toward standby-killing
/// events (budget-starvation pressure). Pure function of
/// (intensity, seed).
[[nodiscard]] StatusOr<MultiTenantCase> GenerateMultiTenantCase(
    const ChaosIntensity& intensity, uint64_t seed);

/// Outcome of one multi-tenant campaign case.
struct MultiTenantCampaignCaseResult {
  int index = 0;
  uint64_t seed = 0;
  MultiTenantCase mt_case;
  std::string error;
  MultiTenantRunReport report;

  [[nodiscard]] bool failed() const {
    return !error.empty() || !report.violations.empty();
  }
};

/// Outcome of a whole multi-tenant campaign.
struct MultiTenantCampaignReport {
  CampaignOptions options;
  std::vector<MultiTenantCampaignCaseResult> results;
  int num_failed = 0;
  int num_violations = 0;
};

/// Runs `options.num_seeds` generated multi-tenant cases across
/// `options.jobs` threads (options.minimize is ignored — the minimizer is
/// single-job only). Results come back in index order, so the report is a
/// pure function of the options and byte-identical across jobs counts.
[[nodiscard]] StatusOr<MultiTenantCampaignReport> RunMultiTenantCampaign(
    const CampaignOptions& options);

/// Serializes a multi-tenant campaign report (stable field order, no
/// wall-clock data; failing cases embed the replayable case JSON).
[[nodiscard]] JsonValue MultiTenantCampaignReportToJson(
    const MultiTenantCampaignReport& report);

}  // namespace chaos
}  // namespace ppa

#endif  // PPA_CHAOS_MULTI_TENANT_H_
