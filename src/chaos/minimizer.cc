#include "chaos/minimizer.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "chaos/chaos_run.h"
#include "topology/serialize.h"

namespace ppa {
namespace chaos {
namespace {

/// Rewrites a topology spec with every operator's parallelism halved
/// (floored at 1). Weight lines whose task index no longer exists are
/// dropped. Returns the input unchanged when nothing can shrink.
std::string HalveParallelism(const std::string& spec) {
  std::istringstream in(spec);
  std::ostringstream out;
  std::map<std::string, int> new_parallelism;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::string word;
    tokens >> word;
    if (word == "operator") {
      std::string name;
      int parallelism = 0;
      if (tokens >> name >> parallelism) {
        const int halved = std::max(1, parallelism / 2);
        new_parallelism[name] = halved;
        out << "operator " << name << " " << halved;
        std::string rest;
        while (tokens >> rest) {
          out << " " << rest;
        }
        out << "\n";
        continue;
      }
    } else if (word == "weight") {
      std::string name;
      int index = 0;
      if (tokens >> name >> index) {
        auto it = new_parallelism.find(name);
        if (it != new_parallelism.end() && index >= it->second) {
          continue;  // The task this weight applied to no longer exists.
        }
      }
    }
    out << line << "\n";
  }
  return out.str();
}

/// Greatest task id a case's plan-bearing fields reference; -1 if none.
TaskId MaxTaskReference(const ChaosCase& chaos_case) {
  TaskId max_task = -1;
  for (TaskId t : chaos_case.initial_plan) {
    max_task = std::max(max_task, t);
  }
  for (const ScenarioEvent& event : chaos_case.events) {
    for (TaskId t : event.plan) {
      max_task = std::max(max_task, t);
    }
  }
  return max_task;
}

/// Greatest node id the case's events reference; -1 if none.
int MaxNodeReference(const ChaosCase& chaos_case) {
  int max_node = -1;
  for (const ScenarioEvent& event : chaos_case.events) {
    max_node = std::max(max_node, event.node);
  }
  return max_node;
}

class Shrinker {
 public:
  Shrinker(ChaosCase best, std::string invariant, const CaseOracle& oracle,
           const MinimizeOptions& options)
      : best_(std::move(best)),
        invariant_(std::move(invariant)),
        oracle_(oracle),
        options_(options) {}

  MinimizeResult Run() {
    DdminEvents();
    ShrinkOffsets();
    ShrinkStructure();
    // Structure shrinks can unlock further event drops (e.g. a revive of
    // a node that no longer matters); one more cheap pass.
    DdminEvents();
    MinimizeResult result;
    result.minimized = std::move(best_);
    result.invariant = std::move(invariant_);
    result.oracle_calls = oracle_calls_;
    return result;
  }

 private:
  bool FailsSame(const ChaosCase& candidate) {
    if (oracle_calls_ >= options_.max_oracle_calls) {
      return false;
    }
    ++oracle_calls_;
    StatusOr<std::vector<ChaosViolation>> violations = oracle_(candidate);
    if (!violations.ok()) {
      return false;  // A candidate that cannot run does not reproduce.
    }
    for (const ChaosViolation& violation : *violations) {
      if (violation.invariant == invariant_) {
        return true;
      }
    }
    return false;
  }

  bool Accept(const ChaosCase& candidate) {
    if (!FailsSame(candidate)) {
      return false;
    }
    best_ = candidate;
    return true;
  }

  /// Classic ddmin over the event list: at granularity n, try dropping
  /// each of n chunks; on success restart at coarser granularity, else
  /// refine until chunks are single events.
  void DdminEvents() {
    size_t n = 2;
    while (best_.events.size() >= 2 &&
           oracle_calls_ < options_.max_oracle_calls) {
      const size_t count = best_.events.size();
      n = std::min(n, count);
      const size_t chunk = (count + n - 1) / n;
      bool reduced = false;
      for (size_t start = 0; start < count; start += chunk) {
        ChaosCase candidate = best_;
        candidate.events.erase(
            candidate.events.begin() + static_cast<ptrdiff_t>(start),
            candidate.events.begin() +
                static_cast<ptrdiff_t>(std::min(start + chunk, count)));
        if (Accept(candidate)) {
          n = std::max<size_t>(2, n - 1);
          reduced = true;
          break;
        }
      }
      if (!reduced) {
        if (n >= count) {
          break;
        }
        n = std::min(n * 2, count);
      }
    }
  }

  /// Halves event offsets toward zero while the failure reproduces.
  void ShrinkOffsets() {
    bool changed = true;
    while (changed && oracle_calls_ < options_.max_oracle_calls) {
      changed = false;
      for (size_t i = 0; i < best_.events.size(); ++i) {
        const int64_t at = best_.events[i].at.micros();
        if (at == 0) {
          continue;
        }
        ChaosCase candidate = best_;
        candidate.events[i].at = Duration::Micros(at / 2);
        if (Accept(candidate)) {
          changed = true;
        }
      }
    }
  }

  void ShrinkStructure() {
    // Drop initial-plan entries one at a time.
    bool changed = true;
    while (changed && oracle_calls_ < options_.max_oracle_calls) {
      changed = false;
      for (size_t i = 0; i < best_.initial_plan.size(); ++i) {
        ChaosCase candidate = best_;
        candidate.initial_plan.erase(candidate.initial_plan.begin() +
                                     static_cast<ptrdiff_t>(i));
        if (Accept(candidate)) {
          changed = true;
          break;
        }
      }
    }
    // Cut the run to just past the last event.
    double last_event_seconds = 0.0;
    for (const ScenarioEvent& event : best_.events) {
      last_event_seconds = std::max(last_event_seconds, event.at.seconds());
    }
    const double floor_seconds = last_event_seconds + 10.0;
    if (best_.run_for_seconds > floor_seconds) {
      ChaosCase candidate = best_;
      candidate.run_for_seconds = floor_seconds;
      Accept(candidate);
    }
    // Shrink the cluster's surplus, never below what events reference.
    const int min_nodes = MaxNodeReference(best_) + 1;
    while (oracle_calls_ < options_.max_oracle_calls) {
      ChaosCase candidate = best_;
      if (candidate.num_standby_nodes > 1) {
        --candidate.num_standby_nodes;
      } else if (candidate.num_worker_nodes > 1) {
        --candidate.num_worker_nodes;
      } else {
        break;
      }
      if (candidate.num_worker_nodes + candidate.num_standby_nodes <
          min_nodes) {
        break;
      }
      if (!candidate.node_domains.empty()) {
        candidate.node_domains.resize(static_cast<size_t>(
            candidate.num_worker_nodes + candidate.num_standby_nodes));
      }
      if (!Accept(candidate)) {
        break;
      }
    }
    // Halve operator parallelism while the case's task references fit.
    while (oracle_calls_ < options_.max_oracle_calls) {
      ChaosCase candidate = best_;
      candidate.topology_spec = HalveParallelism(best_.topology_spec);
      if (candidate.topology_spec == best_.topology_spec) {
        break;
      }
      StatusOr<Topology> shrunk = ParseTopologySpec(candidate.topology_spec);
      if (!shrunk.ok() || MaxTaskReference(candidate) >= shrunk->num_tasks()) {
        break;
      }
      if (!Accept(candidate)) {
        break;
      }
    }
  }

  ChaosCase best_;
  std::string invariant_;
  const CaseOracle& oracle_;
  MinimizeOptions options_;
  int oracle_calls_ = 0;
};

}  // namespace

StatusOr<MinimizeResult> MinimizeFailingCase(const ChaosCase& failing,
                                             const CaseOracle& oracle,
                                             const MinimizeOptions& options) {
  PPA_ASSIGN_OR_RETURN(std::vector<ChaosViolation> baseline,
                       oracle(failing));
  if (baseline.empty()) {
    return InvalidArgument(
        "cannot minimize: the case does not violate any invariant");
  }
  Shrinker shrinker(failing, baseline[0].invariant, oracle, options);
  MinimizeResult result = shrinker.Run();
  result.oracle_calls += 1;  // The baseline call above.
  return result;
}

CaseOracle BuiltinOracle() {
  return [](const ChaosCase& chaos_case)
             -> StatusOr<std::vector<ChaosViolation>> {
    PPA_ASSIGN_OR_RETURN(ChaosRunReport report, RunChaosCase(chaos_case));
    return std::move(report.violations);
  };
}

}  // namespace chaos
}  // namespace ppa
