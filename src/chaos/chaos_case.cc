#include "chaos/chaos_case.h"

#include <utility>

namespace ppa {
namespace chaos {

JobConfig ChaosCase::ToJobConfig() const {
  JobConfig config = JobConfig::PpaDefaults();
  config.batch_interval = Duration::Seconds(batch_interval_seconds);
  config.detection_interval = Duration::Seconds(detection_interval_seconds);
  config.checkpoint_interval = Duration::Seconds(checkpoint_interval_seconds);
  config.num_worker_nodes = num_worker_nodes;
  config.num_standby_nodes = num_standby_nodes;
  config.window_batches = window_batches;
  config.delta_checkpoints = delta_checkpoints;
  config.recovery_mode = recovery_mode;
  config.error_budget.task_divergence_records = af_task_divergence_records;
  // The job budget scales with the per-task one so a handful of thinned
  // tasks never exhausts it by construction.
  config.error_budget.job_divergence_records = af_task_divergence_records * 10;
  config.error_budget.max_certified_loss = af_max_certified_loss;
  return config;
}

JsonValue ChaosCaseToJson(const ChaosCase& chaos_case) {
  JsonValue json = JsonValue::Object();
  json.Set("seed", static_cast<int64_t>(chaos_case.seed));
  json.Set("topology_spec", chaos_case.topology_spec);
  json.Set("batch_interval_seconds", chaos_case.batch_interval_seconds);
  json.Set("detection_interval_seconds",
           chaos_case.detection_interval_seconds);
  json.Set("checkpoint_interval_seconds",
           chaos_case.checkpoint_interval_seconds);
  json.Set("num_worker_nodes", chaos_case.num_worker_nodes);
  json.Set("num_standby_nodes", chaos_case.num_standby_nodes);
  json.Set("window_batches", chaos_case.window_batches);
  json.Set("delta_checkpoints", chaos_case.delta_checkpoints);
  json.Set("recovery_mode",
           std::string(af::RecoveryModeToString(chaos_case.recovery_mode)));
  json.Set("af_task_divergence_records",
           chaos_case.af_task_divergence_records);
  json.Set("af_max_certified_loss", chaos_case.af_max_certified_loss);
  JsonValue domains = JsonValue::Array();
  for (int domain : chaos_case.node_domains) {
    domains.Append(domain);
  }
  json.Set("node_domains", std::move(domains));
  JsonValue plan = JsonValue::Array();
  for (TaskId t : chaos_case.initial_plan) {
    plan.Append(static_cast<int64_t>(t));
  }
  json.Set("initial_plan", std::move(plan));
  json.Set("budget", chaos_case.budget);
  json.Set("events", ScenarioToJson(chaos_case.events));
  json.Set("run_for_seconds", chaos_case.run_for_seconds);
  return json;
}

namespace {

StatusOr<const JsonValue*> Require(const JsonValue& json, const char* key) {
  const JsonValue* value = json.Find(key);
  if (value == nullptr) {
    return InvalidArgument(std::string("chaos case is missing '") + key +
                           "'");
  }
  return value;
}

StatusOr<double> RequireNumber(const JsonValue& json, const char* key) {
  PPA_ASSIGN_OR_RETURN(const JsonValue* value, Require(json, key));
  if (!value->is_number()) {
    return InvalidArgument(std::string("'") + key + "' must be a number");
  }
  return value->AsDouble();
}

StatusOr<int64_t> RequireInt(const JsonValue& json, const char* key) {
  PPA_ASSIGN_OR_RETURN(const JsonValue* value, Require(json, key));
  if (!value->is_number()) {
    return InvalidArgument(std::string("'") + key + "' must be a number");
  }
  return value->AsInt();
}

}  // namespace

StatusOr<ChaosCase> ChaosCaseFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return InvalidArgument("chaos case must be a JSON object");
  }
  ChaosCase chaos_case;
  PPA_ASSIGN_OR_RETURN(int64_t seed, RequireInt(json, "seed"));
  chaos_case.seed = static_cast<uint64_t>(seed);
  PPA_ASSIGN_OR_RETURN(const JsonValue* spec,
                       Require(json, "topology_spec"));
  if (!spec->is_string()) {
    return InvalidArgument("'topology_spec' must be a string");
  }
  chaos_case.topology_spec = spec->AsString();
  PPA_ASSIGN_OR_RETURN(chaos_case.batch_interval_seconds,
                       RequireNumber(json, "batch_interval_seconds"));
  PPA_ASSIGN_OR_RETURN(chaos_case.detection_interval_seconds,
                       RequireNumber(json, "detection_interval_seconds"));
  PPA_ASSIGN_OR_RETURN(chaos_case.checkpoint_interval_seconds,
                       RequireNumber(json, "checkpoint_interval_seconds"));
  PPA_ASSIGN_OR_RETURN(int64_t workers,
                       RequireInt(json, "num_worker_nodes"));
  chaos_case.num_worker_nodes = static_cast<int>(workers);
  PPA_ASSIGN_OR_RETURN(int64_t standbys,
                       RequireInt(json, "num_standby_nodes"));
  chaos_case.num_standby_nodes = static_cast<int>(standbys);
  PPA_ASSIGN_OR_RETURN(chaos_case.window_batches,
                       RequireInt(json, "window_batches"));
  PPA_ASSIGN_OR_RETURN(const JsonValue* deltas,
                       Require(json, "delta_checkpoints"));
  if (!deltas->is_bool()) {
    return InvalidArgument("'delta_checkpoints' must be a bool");
  }
  chaos_case.delta_checkpoints = deltas->AsBool();
  // The af fields are optional with defaults: repro JSONs that predate
  // approximate fault tolerance parse as exact (kPpa) cases.
  if (const JsonValue* mode = json.Find("recovery_mode"); mode != nullptr) {
    if (!mode->is_string()) {
      return InvalidArgument("'recovery_mode' must be a string");
    }
    PPA_ASSIGN_OR_RETURN(chaos_case.recovery_mode,
                         af::RecoveryModeFromString(mode->AsString()));
  }
  if (json.Find("af_task_divergence_records") != nullptr) {
    PPA_ASSIGN_OR_RETURN(chaos_case.af_task_divergence_records,
                         RequireInt(json, "af_task_divergence_records"));
  }
  if (json.Find("af_max_certified_loss") != nullptr) {
    PPA_ASSIGN_OR_RETURN(chaos_case.af_max_certified_loss,
                         RequireNumber(json, "af_max_certified_loss"));
  }
  PPA_ASSIGN_OR_RETURN(const JsonValue* domains,
                       Require(json, "node_domains"));
  if (!domains->is_array()) {
    return InvalidArgument("'node_domains' must be an array");
  }
  for (size_t i = 0; i < domains->size(); ++i) {
    if (!domains->at(i).is_number()) {
      return InvalidArgument("'node_domains' entries must be ints");
    }
    chaos_case.node_domains.push_back(
        static_cast<int>(domains->at(i).AsInt()));
  }
  PPA_ASSIGN_OR_RETURN(const JsonValue* plan, Require(json, "initial_plan"));
  if (!plan->is_array()) {
    return InvalidArgument("'initial_plan' must be an array");
  }
  for (size_t i = 0; i < plan->size(); ++i) {
    if (!plan->at(i).is_number()) {
      return InvalidArgument("'initial_plan' entries must be task ids");
    }
    chaos_case.initial_plan.push_back(
        static_cast<TaskId>(plan->at(i).AsInt()));
  }
  PPA_ASSIGN_OR_RETURN(int64_t budget, RequireInt(json, "budget"));
  chaos_case.budget = static_cast<int>(budget);
  PPA_ASSIGN_OR_RETURN(const JsonValue* events, Require(json, "events"));
  PPA_ASSIGN_OR_RETURN(chaos_case.events, ScenarioFromJson(*events));
  PPA_ASSIGN_OR_RETURN(chaos_case.run_for_seconds,
                       RequireNumber(json, "run_for_seconds"));
  return chaos_case;
}

StatusOr<ChaosCase> ParseChaosCaseJson(std::string_view text) {
  PPA_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(text));
  return ChaosCaseFromJson(json);
}

}  // namespace chaos
}  // namespace ppa
