#include "chaos/campaign.h"

#include <utility>

#include "common/random.h"
#include "exp/parallel_runner.h"

namespace ppa {
namespace chaos {
namespace {

/// Generates, runs, and (optionally) minimizes case `index`. Never
/// fails: execution errors land in the result's `error` field so one
/// broken case cannot take down the campaign.
CampaignCaseResult RunOneCaseInner(const CampaignOptions& options,
                                   int index) {
  CampaignCaseResult result;
  result.index = index;
  result.seed = DeriveSeed(options.base_seed, static_cast<uint64_t>(index));
  StatusOr<ChaosCase> generated =
      GenerateChaosCase(options.intensity, result.seed);
  if (!generated.ok()) {
    result.error = "generate: " + generated.status().ToString();
    return result;
  }
  result.chaos_case = *std::move(generated);
  result.chaos_case.recovery_mode = options.recovery_mode;
  StatusOr<ChaosRunReport> report =
      RunChaosCase(result.chaos_case, BuiltinInvariants(), options.backend);
  if (!report.ok()) {
    result.error = "run: " + report.status().ToString();
    return result;
  }
  result.report = *std::move(report);
  if (!result.report.violations.empty() && options.minimize) {
    StatusOr<MinimizeResult> minimized =
        MinimizeFailingCase(result.chaos_case, BuiltinOracle());
    if (minimized.ok()) {
      result.has_minimized = true;
      result.minimized = std::move(minimized->minimized);
      result.minimized_invariant = std::move(minimized->invariant);
      result.minimize_oracle_calls = minimized->oracle_calls;
      // One deterministic rerun of the shrunk case to capture its own
      // post-mortem (the original case's flight record describes the
      // unshrunk timeline). The rerun stays on the sim, like the
      // minimizer oracle that produced the shrunk case.
      StatusOr<ChaosRunReport> rerun = RunChaosCase(result.minimized);
      if (rerun.ok()) {
        result.minimized_flight_record = std::move(rerun->flight_record);
      }
    }
  }
  return result;
}

/// RunOneCaseInner plus the progress tick: the tick happens on the
/// worker, in completion order, and never touches the result.
CampaignCaseResult RunOneCase(const CampaignOptions& options, int index) {
  CampaignCaseResult result = RunOneCaseInner(options, index);
  if (options.progress != nullptr) {
    options.progress->Record(result.failed());
  }
  return result;
}

JsonValue IntensityToJson(const ChaosIntensity& intensity) {
  JsonValue json = JsonValue::Object();
  json.Set("min_events", intensity.min_events);
  json.Set("max_events", intensity.max_events);
  json.Set("overlap_probability", intensity.overlap_probability);
  json.Set("failure_during_recovery_bias",
           intensity.failure_during_recovery_bias);
  json.Set("revive_probability", intensity.revive_probability);
  json.Set("plan_swap_probability", intensity.plan_swap_probability);
  json.Set("reconcile_probability", intensity.reconcile_probability);
  json.Set("domain_failure_fraction", intensity.domain_failure_fraction);
  json.Set("correlated_failure_fraction",
           intensity.correlated_failure_fraction);
  return json;
}

JsonValue CaseResultToJson(const CampaignCaseResult& result) {
  JsonValue json = JsonValue::Object();
  json.Set("index", result.index);
  json.Set("seed", static_cast<int64_t>(result.seed));
  json.Set("failed", result.failed());
  if (!result.error.empty()) {
    json.Set("error", result.error);
    json.Set("case", ChaosCaseToJson(result.chaos_case));
    return json;
  }
  json.Set("events_scheduled",
           static_cast<int64_t>(result.report.events_scheduled));
  json.Set("events_executed",
           static_cast<int64_t>(result.report.events_executed));
  json.Set("sink_records", static_cast<int64_t>(result.report.sink_records));
  json.Set("recoveries", static_cast<int64_t>(result.report.recoveries));
  json.Set("end_seconds", result.report.end_seconds);
  JsonValue violations = JsonValue::Array();
  for (const ChaosViolation& violation : result.report.violations) {
    JsonValue entry = JsonValue::Object();
    entry.Set("invariant", violation.invariant);
    entry.Set("message", violation.message);
    violations.Append(std::move(entry));
  }
  json.Set("violations", std::move(violations));
  if (result.failed()) {
    json.Set("case", ChaosCaseToJson(result.chaos_case));
    if (!result.report.flight_record.is_null()) {
      json.Set("flight_record", result.report.flight_record);
    }
    if (result.has_minimized) {
      JsonValue minimized = JsonValue::Object();
      minimized.Set("invariant", result.minimized_invariant);
      minimized.Set("oracle_calls", result.minimize_oracle_calls);
      minimized.Set("case", ChaosCaseToJson(result.minimized));
      if (!result.minimized_flight_record.is_null()) {
        minimized.Set("flight_record", result.minimized_flight_record);
      }
      json.Set("minimized", std::move(minimized));
    }
  }
  return json;
}

}  // namespace

StatusOr<CampaignReport> RunCampaign(const CampaignOptions& options) {
  if (options.num_seeds < 0) {
    return InvalidArgument("num_seeds must be non-negative");
  }
  if (options.jobs < 1) {
    return InvalidArgument("jobs must be at least 1");
  }
  exp::ParallelRunnerOptions runner_options;
  runner_options.jobs = options.jobs;
  exp::ParallelRunner runner(runner_options);
  CampaignReport report;
  report.options = options;
  report.results = runner.Map<CampaignCaseResult>(
      options.num_seeds,
      [&options](int index) { return RunOneCase(options, index); });
  for (const CampaignCaseResult& result : report.results) {
    if (result.failed()) {
      ++report.num_failed;
    }
    report.num_violations +=
        static_cast<int>(result.report.violations.size());
  }
  return report;
}

JsonValue CampaignReportToJson(const CampaignReport& report) {
  JsonValue json = JsonValue::Object();
  json.Set("base_seed", static_cast<int64_t>(report.options.base_seed));
  json.Set("num_seeds", report.options.num_seeds);
  json.Set("backend", backend::BackendKindToString(report.options.backend));
  json.Set("recovery_mode",
           std::string(af::RecoveryModeToString(
               report.options.recovery_mode)));
  json.Set("minimize", report.options.minimize);
  json.Set("intensity", IntensityToJson(report.options.intensity));
  json.Set("num_failed", report.num_failed);
  json.Set("num_violations", report.num_violations);
  JsonValue cases = JsonValue::Array();
  for (const CampaignCaseResult& result : report.results) {
    cases.Append(CaseResultToJson(result));
  }
  json.Set("cases", std::move(cases));
  return json;
}

}  // namespace chaos
}  // namespace ppa
