#ifndef PPA_CHAOS_CAMPAIGN_H_
#define PPA_CHAOS_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "backend/execution_backend.h"
#include "chaos/chaos_case.h"
#include "chaos/chaos_run.h"
#include "chaos/generator.h"
#include "chaos/minimizer.h"
#include "common/status_or.h"
#include "exp/progress.h"
#include "report/json.h"

namespace ppa {
namespace chaos {

/// Knobs of a chaos campaign.
struct CampaignOptions {
  /// Base of the per-case seed stream: case i runs with
  /// DeriveSeed(base_seed, i).
  uint64_t base_seed = 1;
  /// Cases to generate and execute.
  int num_seeds = 64;
  /// Generator preset shared by every case.
  ChaosIntensity intensity;
  /// Execution substrate every case runs on. The golden twin and the
  /// minimizer oracle always stay on the deterministic sim, so a threads
  /// campaign is a fault-injected parity sweep of the threaded backend.
  backend::BackendKind backend = backend::BackendKind::kSim;
  /// Recovery mode stamped into every generated case (src/af). Non-kPpa
  /// campaigns exercise checkpoint thinning, and the error-budget
  /// invariant holds the measured loss to the certified bound.
  af::RecoveryMode recovery_mode = af::RecoveryMode::kPpa;
  /// Shrink every failing case with MinimizeFailingCase. Minimization
  /// runs inside the mapped case so it parallelizes with the campaign.
  bool minimize = false;
  /// Worker threads; results are in submission order regardless, so a
  /// campaign report is byte-identical across jobs counts.
  int jobs = 1;
  /// Optional live progress tally, ticked once per finished case from
  /// whatever worker ran it (completion order, not index order). Purely
  /// observational: it never influences the report, which stays a pure
  /// function of the other options. Not owned; may be null.
  exp::ProgressMeter* progress = nullptr;
};

/// Outcome of one campaign case. `error` is non-empty when the case could
/// not execute at all (generator or runner error); otherwise `report`
/// holds the run and any invariant violations.
struct CampaignCaseResult {
  int index = 0;
  uint64_t seed = 0;
  /// The generated case (also the replayable repro when it failed).
  ChaosCase chaos_case;
  std::string error;
  ChaosRunReport report;
  /// Filled when the case violated an invariant and minimization was on
  /// and succeeded.
  bool has_minimized = false;
  ChaosCase minimized;
  std::string minimized_invariant;
  int minimize_oracle_calls = 0;
  /// Flight record of one rerun of the minimized case (JSON null when
  /// no minimized case exists or the rerun stopped failing), so the
  /// *shrunk* repro ships its own post-mortem too.
  JsonValue minimized_flight_record;

  /// True when the case either failed to execute or broke an invariant.
  [[nodiscard]] bool failed() const {
    return !error.empty() || !report.violations.empty();
  }
};

/// Outcome of a whole campaign.
struct CampaignReport {
  CampaignOptions options;
  /// One entry per case, indexed by case number.
  std::vector<CampaignCaseResult> results;
  /// Cases that broke an invariant or failed to execute.
  int num_failed = 0;
  /// Invariant violations summed over all cases.
  int num_violations = 0;
};

/// Runs `options.num_seeds` generated chaos cases across
/// `options.jobs` threads. Every case derives its own RNG stream from
/// (base_seed, index), and results come back in index order, so the
/// report is a pure function of the options. Fails only on invalid
/// options; per-case errors are recorded in the report instead.
[[nodiscard]] StatusOr<CampaignReport> RunCampaign(
    const CampaignOptions& options);

/// Serializes a campaign report. Passing cases contribute a compact
/// summary line; failing cases additionally embed the full replayable
/// case JSON (and the minimized one when present). Contains no
/// wall-clock data, so equal campaigns serialize byte-identically.
[[nodiscard]] JsonValue CampaignReportToJson(const CampaignReport& report);

}  // namespace chaos
}  // namespace ppa

#endif  // PPA_CHAOS_CAMPAIGN_H_
