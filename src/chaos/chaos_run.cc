#include "chaos/chaos_run.h"

#include <memory>
#include <utility>

#include "exp/run_spec.h"
#include "report/experiment_report.h"
#include "runtime/scenario.h"
#include "runtime/streaming_job.h"
#include "sim/event_loop.h"
#include "topology/serialize.h"

namespace ppa {
namespace chaos {
namespace {

/// Builds, binds, and configures a job for `chaos_case` but does not
/// start it. `replicate` selects whether the case's initial plan is
/// activated (the chaos run) or no replicas at all (the golden run).
StatusOr<std::unique_ptr<StreamingJob>> MakeJob(const ChaosCase& chaos_case,
                                                const Topology& topology,
                                                const JobConfig& config,
                                                EventLoop* loop,
                                                bool replicate) {
  auto job = std::make_unique<StreamingJob>(topology, config, loop);
  PPA_RETURN_IF_ERROR(
      exp::BindGenericWorkload(topology, config, job.get()));
  const int num_nodes = config.num_worker_nodes + config.num_standby_nodes;
  if (!chaos_case.node_domains.empty()) {
    if (static_cast<int>(chaos_case.node_domains.size()) != num_nodes) {
      return InvalidArgument("node_domains size does not match the cluster");
    }
    for (int node = 0; node < num_nodes; ++node) {
      PPA_RETURN_IF_ERROR(job->cluster().AssignDomain(
          node, chaos_case.node_domains[static_cast<size_t>(node)]));
    }
  }
  TaskSet plan(topology.num_tasks());
  if (replicate) {
    for (TaskId t : chaos_case.initial_plan) {
      if (t < 0 || t >= topology.num_tasks()) {
        return InvalidArgument("initial_plan task id out of range");
      }
      plan.Add(t);
    }
  }
  PPA_RETURN_IF_ERROR(job->SetActiveReplicaSet(plan));
  return job;
}

}  // namespace

StatusOr<ChaosRunReport> RunChaosCase(
    const ChaosCase& chaos_case,
    const std::vector<const Invariant*>& invariants) {
  PPA_ASSIGN_OR_RETURN(Topology topology,
                       ParseTopologySpec(chaos_case.topology_spec));
  const JobConfig config = chaos_case.ToJobConfig();
  PPA_RETURN_IF_ERROR(config.Validate());
  if (chaos_case.run_for_seconds <= 0) {
    return InvalidArgument("run_for_seconds must be positive");
  }

  EventLoop loop;
  PPA_ASSIGN_OR_RETURN(
      std::unique_ptr<StreamingJob> job,
      MakeJob(chaos_case, topology, config, &loop, /*replicate=*/true));
  PPA_RETURN_IF_ERROR(job->Start());

  ScenarioRunner scenario(job.get(), &loop);
  PPA_RETURN_IF_ERROR(scenario.Run(chaos_case.events));
  loop.RunUntil(TimePoint::Zero() +
                Duration::Seconds(chaos_case.run_for_seconds));

  // Recovery grace: a dense schedule may still be mid-recovery (or hold
  // unfired events) when the nominal duration ends. Liveness is judged
  // by the invariants, so give the system bounded room to settle rather
  // than failing every run that was cut short.
  const TimePoint grace_cap = loop.now() + Duration::Seconds(1800.0);
  while ((!scenario.finished() || !job->AllRecovered()) &&
         loop.now() < grace_cap) {
    loop.RunUntil(loop.now() + config.detection_interval);
  }
  // Quiet tail: a few more batches so the first post-recovery stable
  // emission closes the tentative window.
  loop.RunUntil(loop.now() + config.batch_interval * 5);

  if (job->AllRecovered()) {
    auto reconciled = job->ReconcileTentativeOutputs();
    if (!reconciled.ok() &&
        reconciled.status().code() != StatusCode::kFailedPrecondition) {
      return reconciled.status();
    }
  }
  const TimePoint end_time = loop.now();

  // The fault-free golden twin: same topology, config, bindings, and
  // domains, no replicas, no events, same end time.
  EventLoop golden_loop;
  PPA_ASSIGN_OR_RETURN(
      std::unique_ptr<StreamingJob> golden,
      MakeJob(chaos_case, topology, config, &golden_loop,
              /*replicate=*/false));
  PPA_RETURN_IF_ERROR(golden->Start());
  golden_loop.RunUntil(end_time);

  ChaosRunContext context;
  context.chaos_case = &chaos_case;
  context.job = job.get();
  context.golden = golden.get();
  context.event_outcomes = &scenario.outcomes();
  context.scenario_finished = scenario.finished();
  context.end_time = end_time;

  ChaosRunReport report;
  report.seed = chaos_case.seed;
  report.events_scheduled = chaos_case.events.size();
  report.events_executed = scenario.outcomes().size();
  report.sink_records = job->sink_records().size();
  report.recoveries = job->recovery_reports().size();
  report.end_seconds = end_time.seconds();
  for (const Invariant* invariant : invariants) {
    invariant->Check(context, &report.violations);
  }
  if (!report.violations.empty()) {
    // Attach the post-mortem: the flight recorder's bounded tail of
    // trace events leading up to the end of the failing run.
    report.flight_record = JobFlightRecordToJson(*job);
  }
  return report;
}

StatusOr<ChaosRunReport> RunChaosCase(const ChaosCase& chaos_case) {
  return RunChaosCase(chaos_case, BuiltinInvariants());
}

}  // namespace chaos
}  // namespace ppa
