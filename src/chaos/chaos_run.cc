#include "chaos/chaos_run.h"

#include <memory>
#include <utility>

#include "backend/execution_backend.h"
#include "exp/run_spec.h"
#include "report/experiment_report.h"
#include "runtime/scenario.h"
#include "runtime/streaming_job.h"
#include "topology/serialize.h"

namespace ppa {
namespace chaos {
namespace {

/// Builds, binds, and configures a job for `chaos_case` but does not
/// start it. `replicate` selects whether the case's initial plan is
/// activated (the chaos run) or no replicas at all (the golden run).
StatusOr<std::unique_ptr<StreamingJob>> MakeJob(
    const ChaosCase& chaos_case, const Topology& topology,
    const JobConfig& config, backend::ExecutionBackend* be, bool replicate) {
  auto job =
      std::make_unique<StreamingJob>(topology, config, JobRuntimeDeps(be));
  PPA_RETURN_IF_ERROR(
      exp::BindGenericWorkload(topology, config, job.get()));
  const int num_nodes = config.num_worker_nodes + config.num_standby_nodes;
  if (!chaos_case.node_domains.empty()) {
    if (static_cast<int>(chaos_case.node_domains.size()) != num_nodes) {
      return InvalidArgument("node_domains size does not match the cluster");
    }
    for (int node = 0; node < num_nodes; ++node) {
      PPA_RETURN_IF_ERROR(job->cluster().AssignDomain(
          node, chaos_case.node_domains[static_cast<size_t>(node)]));
    }
  }
  TaskSet plan(topology.num_tasks());
  if (replicate) {
    for (TaskId t : chaos_case.initial_plan) {
      if (t < 0 || t >= topology.num_tasks()) {
        return InvalidArgument("initial_plan task id out of range");
      }
      plan.Add(t);
    }
  }
  PPA_RETURN_IF_ERROR(job->SetActiveReplicaSet(plan));
  return job;
}

}  // namespace

StatusOr<ChaosRunReport> RunChaosCase(
    const ChaosCase& chaos_case,
    const std::vector<const Invariant*>& invariants,
    backend::BackendKind backend_kind) {
  PPA_ASSIGN_OR_RETURN(Topology topology,
                       ParseTopologySpec(chaos_case.topology_spec));
  const JobConfig config = chaos_case.ToJobConfig();
  PPA_RETURN_IF_ERROR(config.Validate());
  if (chaos_case.run_for_seconds <= 0) {
    return InvalidArgument("run_for_seconds must be positive");
  }

  std::unique_ptr<backend::ExecutionBackend> be =
      backend::MakeBackend(backend_kind);
  PPA_ASSIGN_OR_RETURN(
      std::unique_ptr<StreamingJob> job,
      MakeJob(chaos_case, topology, config, be.get(), /*replicate=*/true));
  PPA_RETURN_IF_ERROR(job->Start());

  ScenarioRunner scenario(job.get());
  PPA_RETURN_IF_ERROR(scenario.Run(chaos_case.events));
  be->RunUntil(TimePoint::Zero() +
               Duration::Seconds(chaos_case.run_for_seconds));

  // Recovery grace: a dense schedule may still be mid-recovery (or hold
  // unfired events) when the nominal duration ends. Liveness is judged
  // by the invariants, so give the system bounded room to settle rather
  // than failing every run that was cut short.
  const TimePoint grace_cap = be->now() + Duration::Seconds(1800.0);
  while ((!scenario.finished() || !job->AllRecovered()) &&
         be->now() < grace_cap) {
    be->RunUntil(be->now() + config.detection_interval);
  }
  // Quiet tail: a few more batches so the first post-recovery stable
  // emission closes the tentative window.
  be->RunUntil(be->now() + config.batch_interval * 5);

  if (job->AllRecovered()) {
    auto reconciled = job->ReconcileTentativeOutputs();
    if (!reconciled.ok() &&
        reconciled.status().code() != StatusCode::kFailedPrecondition) {
      return reconciled.status();
    }
  }
  const TimePoint end_time = be->now();

  // The fault-free golden twin: same topology, config, bindings, and
  // domains, no replicas, no events, same end time — always on the
  // deterministic sim, whatever substrate the chaos run used.
  std::unique_ptr<backend::ExecutionBackend> golden_be =
      backend::MakeBackend(backend::BackendKind::kSim);
  PPA_ASSIGN_OR_RETURN(
      std::unique_ptr<StreamingJob> golden,
      MakeJob(chaos_case, topology, config, golden_be.get(),
              /*replicate=*/false));
  PPA_RETURN_IF_ERROR(golden->Start());
  golden_be->RunUntil(end_time);

  ChaosRunContext context;
  context.chaos_case = &chaos_case;
  context.job = job.get();
  context.golden = golden.get();
  context.event_outcomes = &scenario.outcomes();
  context.scenario_finished = scenario.finished();
  context.end_time = end_time;

  ChaosRunReport report;
  report.seed = chaos_case.seed;
  report.events_scheduled = chaos_case.events.size();
  report.events_executed = scenario.outcomes().size();
  report.sink_records = job->sink_records().size();
  report.recoveries = job->recovery_reports().size();
  report.end_seconds = end_time.seconds();
  for (const Invariant* invariant : invariants) {
    invariant->Check(context, &report.violations);
  }
  if (!report.violations.empty()) {
    // Attach the post-mortem: the flight recorder's bounded tail of
    // trace events leading up to the end of the failing run.
    report.flight_record = JobFlightRecordToJson(*job);
  }
  return report;
}

StatusOr<ChaosRunReport> RunChaosCase(
    const ChaosCase& chaos_case,
    const std::vector<const Invariant*>& invariants) {
  return RunChaosCase(chaos_case, invariants, backend::BackendKind::kSim);
}

StatusOr<ChaosRunReport> RunChaosCase(const ChaosCase& chaos_case) {
  return RunChaosCase(chaos_case, BuiltinInvariants());
}

}  // namespace chaos
}  // namespace ppa
