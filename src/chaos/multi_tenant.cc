#include "chaos/multi_tenant.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "backend/execution_backend.h"
#include "common/random.h"
#include "exp/parallel_runner.h"
#include "exp/run_spec.h"
#include "topology/random_topology.h"
#include "topology/serialize.h"

namespace ppa {
namespace chaos {

JobConfig MultiTenantCase::ToJobConfig() const {
  JobConfig config = JobConfig::PpaDefaults();
  config.batch_interval = Duration::Seconds(batch_interval_seconds);
  config.detection_interval = Duration::Seconds(detection_interval_seconds);
  config.checkpoint_interval = Duration::Seconds(checkpoint_interval_seconds);
  config.num_worker_nodes = num_worker_nodes;
  config.num_standby_nodes = num_standby_nodes;
  config.window_batches = window_batches;
  return config;
}

service::ServiceConfig MultiTenantCase::ToServiceConfig() const {
  service::ServiceConfig config;
  config.num_worker_nodes = num_worker_nodes;
  config.num_standby_nodes = num_standby_nodes;
  config.worker_slots_per_node = worker_slots_per_node;
  config.standby_slots_per_node = standby_slots_per_node;
  config.arbitration_slot = Duration::Seconds(arbitration_slot_seconds);
  return config;
}

JsonValue MultiTenantCaseToJson(const MultiTenantCase& mt_case) {
  JsonValue json = JsonValue::Object();
  json.Set("seed", static_cast<int64_t>(mt_case.seed));
  json.Set("num_worker_nodes", mt_case.num_worker_nodes);
  json.Set("num_standby_nodes", mt_case.num_standby_nodes);
  json.Set("worker_slots_per_node", mt_case.worker_slots_per_node);
  json.Set("standby_slots_per_node", mt_case.standby_slots_per_node);
  json.Set("arbitration_slot_seconds", mt_case.arbitration_slot_seconds);
  json.Set("batch_interval_seconds", mt_case.batch_interval_seconds);
  json.Set("detection_interval_seconds", mt_case.detection_interval_seconds);
  json.Set("checkpoint_interval_seconds",
           mt_case.checkpoint_interval_seconds);
  json.Set("window_batches", mt_case.window_batches);
  JsonValue domains = JsonValue::Array();
  for (int domain : mt_case.node_domains) {
    domains.Append(domain);
  }
  json.Set("node_domains", std::move(domains));
  JsonValue tenants = JsonValue::Array();
  for (const TenantCase& tenant : mt_case.tenants) {
    JsonValue entry = JsonValue::Object();
    entry.Set("topology_spec", tenant.topology_spec);
    entry.Set("replica_budget", tenant.replica_budget);
    entry.Set("priority", tenant.priority);
    JsonValue plan = JsonValue::Array();
    for (TaskId t : tenant.initial_plan) {
      plan.Append(static_cast<int64_t>(t));
    }
    entry.Set("initial_plan", std::move(plan));
    JsonValue affinity = JsonValue::Array();
    for (int node : tenant.worker_affinity) {
      affinity.Append(static_cast<int64_t>(node));
    }
    entry.Set("worker_affinity", std::move(affinity));
    tenants.Append(std::move(entry));
  }
  json.Set("tenants", std::move(tenants));
  json.Set("events", ScenarioToJson(mt_case.events));
  json.Set("run_for_seconds", mt_case.run_for_seconds);
  return json;
}

namespace {

StatusOr<const JsonValue*> Require(const JsonValue& json, const char* key) {
  const JsonValue* value = json.Find(key);
  if (value == nullptr) {
    return InvalidArgument(std::string("multi-tenant case is missing '") +
                           key + "'");
  }
  return value;
}

StatusOr<double> RequireNumber(const JsonValue& json, const char* key) {
  PPA_ASSIGN_OR_RETURN(const JsonValue* value, Require(json, key));
  if (!value->is_number()) {
    return InvalidArgument(std::string("'") + key + "' must be a number");
  }
  return value->AsDouble();
}

StatusOr<int64_t> RequireInt(const JsonValue& json, const char* key) {
  PPA_ASSIGN_OR_RETURN(const JsonValue* value, Require(json, key));
  if (!value->is_number()) {
    return InvalidArgument(std::string("'") + key + "' must be a number");
  }
  return value->AsInt();
}

StatusOr<TenantCase> TenantCaseFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return InvalidArgument("tenant case must be a JSON object");
  }
  TenantCase tenant;
  PPA_ASSIGN_OR_RETURN(const JsonValue* spec,
                       Require(json, "topology_spec"));
  if (!spec->is_string()) {
    return InvalidArgument("'topology_spec' must be a string");
  }
  tenant.topology_spec = spec->AsString();
  PPA_ASSIGN_OR_RETURN(int64_t budget, RequireInt(json, "replica_budget"));
  tenant.replica_budget = static_cast<int>(budget);
  PPA_ASSIGN_OR_RETURN(int64_t priority, RequireInt(json, "priority"));
  tenant.priority = static_cast<int>(priority);
  PPA_ASSIGN_OR_RETURN(const JsonValue* plan, Require(json, "initial_plan"));
  if (!plan->is_array()) {
    return InvalidArgument("'initial_plan' must be an array");
  }
  for (size_t i = 0; i < plan->size(); ++i) {
    if (!plan->at(i).is_number()) {
      return InvalidArgument("'initial_plan' entries must be task ids");
    }
    tenant.initial_plan.push_back(static_cast<TaskId>(plan->at(i).AsInt()));
  }
  PPA_ASSIGN_OR_RETURN(const JsonValue* affinity,
                       Require(json, "worker_affinity"));
  if (!affinity->is_array()) {
    return InvalidArgument("'worker_affinity' must be an array");
  }
  for (size_t i = 0; i < affinity->size(); ++i) {
    if (!affinity->at(i).is_number()) {
      return InvalidArgument("'worker_affinity' entries must be node ids");
    }
    tenant.worker_affinity.push_back(
        static_cast<int>(affinity->at(i).AsInt()));
  }
  return tenant;
}

}  // namespace

StatusOr<MultiTenantCase> MultiTenantCaseFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return InvalidArgument("multi-tenant case must be a JSON object");
  }
  MultiTenantCase mt_case;
  PPA_ASSIGN_OR_RETURN(int64_t seed, RequireInt(json, "seed"));
  mt_case.seed = static_cast<uint64_t>(seed);
  PPA_ASSIGN_OR_RETURN(int64_t workers, RequireInt(json, "num_worker_nodes"));
  mt_case.num_worker_nodes = static_cast<int>(workers);
  PPA_ASSIGN_OR_RETURN(int64_t standbys,
                       RequireInt(json, "num_standby_nodes"));
  mt_case.num_standby_nodes = static_cast<int>(standbys);
  PPA_ASSIGN_OR_RETURN(int64_t worker_slots,
                       RequireInt(json, "worker_slots_per_node"));
  mt_case.worker_slots_per_node = static_cast<int>(worker_slots);
  PPA_ASSIGN_OR_RETURN(int64_t standby_slots,
                       RequireInt(json, "standby_slots_per_node"));
  mt_case.standby_slots_per_node = static_cast<int>(standby_slots);
  PPA_ASSIGN_OR_RETURN(mt_case.arbitration_slot_seconds,
                       RequireNumber(json, "arbitration_slot_seconds"));
  PPA_ASSIGN_OR_RETURN(mt_case.batch_interval_seconds,
                       RequireNumber(json, "batch_interval_seconds"));
  PPA_ASSIGN_OR_RETURN(mt_case.detection_interval_seconds,
                       RequireNumber(json, "detection_interval_seconds"));
  PPA_ASSIGN_OR_RETURN(mt_case.checkpoint_interval_seconds,
                       RequireNumber(json, "checkpoint_interval_seconds"));
  PPA_ASSIGN_OR_RETURN(mt_case.window_batches,
                       RequireInt(json, "window_batches"));
  PPA_ASSIGN_OR_RETURN(const JsonValue* domains,
                       Require(json, "node_domains"));
  if (!domains->is_array()) {
    return InvalidArgument("'node_domains' must be an array");
  }
  for (size_t i = 0; i < domains->size(); ++i) {
    if (!domains->at(i).is_number()) {
      return InvalidArgument("'node_domains' entries must be ints");
    }
    mt_case.node_domains.push_back(
        static_cast<int>(domains->at(i).AsInt()));
  }
  PPA_ASSIGN_OR_RETURN(const JsonValue* tenants, Require(json, "tenants"));
  if (!tenants->is_array()) {
    return InvalidArgument("'tenants' must be an array");
  }
  for (size_t i = 0; i < tenants->size(); ++i) {
    PPA_ASSIGN_OR_RETURN(TenantCase tenant,
                         TenantCaseFromJson(tenants->at(i)));
    mt_case.tenants.push_back(std::move(tenant));
  }
  PPA_ASSIGN_OR_RETURN(const JsonValue* events, Require(json, "events"));
  PPA_ASSIGN_OR_RETURN(mt_case.events, ScenarioFromJson(*events));
  PPA_ASSIGN_OR_RETURN(mt_case.run_for_seconds,
                       RequireNumber(json, "run_for_seconds"));
  return mt_case;
}

StatusOr<MultiTenantCase> ParseMultiTenantCaseJson(std::string_view text) {
  PPA_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(text));
  return MultiTenantCaseFromJson(json);
}

namespace {

/// Rejects timeline kinds the service layer cannot execute (plan swaps
/// and reconciles are per-tenant operations; correlated failures need a
/// single job's placement to resolve).
Status ValidateTimeline(const std::vector<ScenarioEvent>& events) {
  for (size_t i = 0; i < events.size(); ++i) {
    switch (events[i].kind) {
      case ScenarioEvent::Kind::kNodeFailure:
      case ScenarioEvent::Kind::kDomainFailure:
      case ScenarioEvent::Kind::kReviveNode:
      case ScenarioEvent::Kind::kReviveDomain:
        break;
      default:
        return InvalidArgument(
            "event " + std::to_string(i) +
            ": service timelines support only node/domain failures and "
            "revivals");
    }
    if (events[i].at < Duration::Zero()) {
      return InvalidArgument("event " + std::to_string(i) +
                             " has a negative offset");
    }
  }
  return OkStatus();
}

/// The single-job ChaosCase the per-job builtin invariants read their
/// scalars (window guard, budget ceiling, liveness bound) from when
/// applied to one tenant of a multi-tenant run.
ChaosCase TenantShim(const MultiTenantCase& mt_case, const TenantCase& tenant) {
  ChaosCase shim;
  shim.seed = mt_case.seed;
  shim.topology_spec = tenant.topology_spec;
  shim.batch_interval_seconds = mt_case.batch_interval_seconds;
  shim.detection_interval_seconds = mt_case.detection_interval_seconds;
  shim.checkpoint_interval_seconds = mt_case.checkpoint_interval_seconds;
  shim.num_worker_nodes = mt_case.num_worker_nodes;
  shim.num_standby_nodes = mt_case.num_standby_nodes;
  shim.window_batches = mt_case.window_batches;
  shim.initial_plan = tenant.initial_plan;
  shim.budget = tenant.replica_budget;
  shim.run_for_seconds = mt_case.run_for_seconds;
  return shim;
}

/// Service-level event-sanity: every scheduled event fired, and resolved
/// to a status a random schedule may legitimately produce.
void CheckEventSanity(const std::vector<Status>& outcomes, size_t scheduled,
                      std::vector<ChaosViolation>* violations) {
  if (outcomes.size() < scheduled) {
    violations->push_back(
        {"event-sanity", "not every scheduled service event executed"});
  }
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const StatusCode code = outcomes[i].code();
    const bool acceptable = code == StatusCode::kOk ||
                            code == StatusCode::kFailedPrecondition ||
                            code == StatusCode::kNotFound ||
                            code == StatusCode::kResourceExhausted;
    if (!acceptable) {
      violations->push_back({"event-sanity",
                             "event " + std::to_string(i) + " resolved to " +
                                 outcomes[i].ToString()});
    }
  }
}

/// End-state per-tenant ceiling: placed replicas never exceed the
/// tenant's budget (zero while degraded) plus its currently-failed tasks
/// (whose replicas may be the recovery path).
void CheckTenantBudgets(service::ClusterService* svc,
                        std::vector<ChaosViolation>* violations) {
  for (int id : svc->TenantIds()) {
    StreamingJob* job = svc->job(id);
    if (job == nullptr || job->stopped()) {
      continue;
    }
    const service::TenantSpec* spec = svc->spec(id);
    const service::TenantPhase phase = svc->PhaseOf(id).value();
    const int64_t budget = phase == service::TenantPhase::kDegraded
                               ? 0
                               : spec->replica_budget;
    const int64_t failed =
        static_cast<int64_t>(job->UnrecoveredTasks().ToVector().size());
    const int64_t placed =
        static_cast<int64_t>(job->cluster().PlacedReplicas());
    if (placed > budget + failed) {
      violations->push_back(
          {"tenant-replica-budget",
           "tenant " + std::to_string(id) + " holds " +
               std::to_string(placed) + " placed replicas, ceiling " +
               std::to_string(budget) + " + " + std::to_string(failed) +
               " failed tasks"});
    }
  }
}

/// Every logged arbitration decision must match the deterministic policy
/// order with rank-proportional holds.
void CheckArbitrationOrder(const service::ClusterService& svc,
                           Duration slot,
                           std::vector<ChaosViolation>* violations) {
  const std::vector<service::ArbitrationDecision>& log =
      svc.arbitration_log();
  for (size_t d = 0; d < log.size(); ++d) {
    const service::ArbitrationDecision& decision = log[d];
    std::vector<service::ArbitrationClaim> claims;
    claims.reserve(decision.order.size());
    for (const service::ArbitrationHold& hold : decision.order) {
      claims.push_back(hold.claim);
    }
    const std::vector<service::ArbitrationClaim> expected =
        service::ArbitrationOrder(claims);
    for (size_t i = 0; i < decision.order.size(); ++i) {
      if (decision.order[i].claim.tenant != expected[i].tenant) {
        violations->push_back(
            {"arbitration-order",
             "decision " + std::to_string(d) + " ranks tenant " +
                 std::to_string(decision.order[i].claim.tenant) + " at " +
                 std::to_string(i) + " but the policy puts tenant " +
                 std::to_string(expected[i].tenant) + " there"});
        break;
      }
      const Duration want = slot * static_cast<int64_t>(i);
      if (decision.order[i].hold != want) {
        violations->push_back(
            {"arbitration-order",
             "decision " + std::to_string(d) + " holds rank " +
                 std::to_string(i) + " for " +
                 std::to_string(decision.order[i].hold.seconds()) +
                 "s, expected " + std::to_string(want.seconds()) + "s"});
        break;
      }
    }
  }
}

}  // namespace

StatusOr<MultiTenantRunReport> RunMultiTenantCase(
    const MultiTenantCase& mt_case) {
  if (mt_case.tenants.empty()) {
    return InvalidArgument("multi-tenant case has no tenants");
  }
  if (mt_case.run_for_seconds <= 0) {
    return InvalidArgument("run_for_seconds must be positive");
  }
  PPA_RETURN_IF_ERROR(ValidateTimeline(mt_case.events));
  const JobConfig config = mt_case.ToJobConfig();
  PPA_RETURN_IF_ERROR(config.Validate());
  const service::ServiceConfig service_config = mt_case.ToServiceConfig();
  PPA_RETURN_IF_ERROR(service_config.Validate());

  std::unique_ptr<backend::ExecutionBackend> be =
      backend::MakeBackend(backend::BackendKind::kSim);
  service::ClusterService svc(service_config, be.get());
  const int num_nodes =
      service_config.num_worker_nodes + service_config.num_standby_nodes;
  if (!mt_case.node_domains.empty()) {
    if (static_cast<int>(mt_case.node_domains.size()) != num_nodes) {
      return InvalidArgument("node_domains size does not match the cluster");
    }
    for (int node = 0; node < num_nodes; ++node) {
      PPA_RETURN_IF_ERROR(svc.AssignDomain(
          node, mt_case.node_domains[static_cast<size_t>(node)]));
    }
  }

  MultiTenantRunReport report;
  report.seed = mt_case.seed;
  report.tenants_submitted = mt_case.tenants.size();
  std::vector<int> ids;
  ids.reserve(mt_case.tenants.size());
  for (const TenantCase& tenant : mt_case.tenants) {
    service::TenantSpec spec;
    spec.topology_spec = tenant.topology_spec;
    spec.config = config;
    spec.replica_budget = tenant.replica_budget;
    spec.priority = tenant.priority;
    spec.initial_plan = tenant.initial_plan;
    spec.worker_affinity = tenant.worker_affinity;
    PPA_ASSIGN_OR_RETURN(const int id, svc.Submit(std::move(spec)));
    ids.push_back(id);
    PPA_ASSIGN_OR_RETURN(const service::TenantPhase phase, svc.PhaseOf(id));
    if (phase == service::TenantPhase::kQueued) {
      ++report.tenants_queued;
    } else {
      ++report.tenants_admitted;
    }
  }

  std::vector<Status> outcomes;
  outcomes.reserve(mt_case.events.size());
  for (const ScenarioEvent& event : mt_case.events) {
    // Service mutations run on the service's own strand so they stay
    // serialized with tenant work in deterministic (time, seq) order.
    (void)be->ScheduleAt(svc.strand(), TimePoint::Zero() + event.at,
                         [&svc, &outcomes, event] {
      switch (event.kind) {
        case ScenarioEvent::Kind::kNodeFailure:
          outcomes.push_back(svc.InjectNodeFailure(event.node));
          break;
        case ScenarioEvent::Kind::kDomainFailure:
          outcomes.push_back(svc.InjectDomainFailure(event.domain));
          break;
        case ScenarioEvent::Kind::kReviveNode:
          outcomes.push_back(svc.ReviveNode(event.node));
          break;
        case ScenarioEvent::Kind::kReviveDomain:
          outcomes.push_back(svc.ReviveDomain(event.domain));
          break;
        default:
          outcomes.push_back(
              Unimplemented("unsupported service-level event"));
          break;
      }
    });
  }
  report.events_scheduled = mt_case.events.size();

  be->RunUntil(TimePoint::Zero() +
               Duration::Seconds(mt_case.run_for_seconds));
  // Recovery grace + quiet tail, mirroring RunChaosCase: bounded room for
  // unfired events and in-flight recoveries, then a few more batches so
  // the first post-recovery stable emission closes the tentative windows.
  const TimePoint grace_cap = be->now() + Duration::Seconds(1800.0);
  while ((outcomes.size() < mt_case.events.size() || !svc.AllRecovered()) &&
         be->now() < grace_cap) {
    be->RunUntil(be->now() + config.detection_interval);
  }
  be->RunUntil(be->now() + config.batch_interval * 5);

  for (const int id : ids) {
    StreamingJob* job = svc.job(id);
    if (job == nullptr || job->stopped() || !job->AllRecovered()) {
      continue;
    }
    auto reconciled = job->ReconcileTentativeOutputs();
    if (!reconciled.ok() &&
        reconciled.status().code() != StatusCode::kFailedPrecondition) {
      return reconciled.status();
    }
  }
  const TimePoint end_time = be->now();
  report.events_executed = outcomes.size();
  report.end_seconds = end_time.seconds();
  report.arbitrations = svc.arbitration_log().size();
  report.degradations = static_cast<size_t>(svc.stats().degradations);
  report.promotions = static_cast<size_t>(svc.stats().promotions);

  // Per-tenant oracle pass: a fault-free golden twin per admitted tenant
  // (fresh loop, no replicas, run for the tenant's own admitted-to-end
  // span — batch contents depend only on the batch index, so the grouped
  // (task, batch) comparison aligns regardless of cluster shape), then
  // the per-job builtin invariants minus event-sanity (the service owns
  // the timeline, so event outcomes are judged once below).
  for (size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    const StreamingJob* job = svc.job(id);
    if (job == nullptr) {
      continue;  // Still queued: never produced output.
    }
    report.sink_records += job->sink_records().size();
    report.recoveries += job->recovery_reports().size();
    if (job->stopped()) {
      // No evict events exist at this layer, so a stopped job means
      // admission double-charged capacity and gave up on a queued tenant.
      report.violations.push_back(
          {"admission-sanity", "tenant " + std::to_string(id) +
                                   " was evicted during the run"});
      continue;
    }
    PPA_ASSIGN_OR_RETURN(const TimePoint admitted_at, svc.AdmittedAt(id));
    const Topology* topology = svc.topology(id);
    std::unique_ptr<backend::ExecutionBackend> golden_be =
        backend::MakeBackend(backend::BackendKind::kSim);
    auto golden = std::make_unique<StreamingJob>(
        *topology, config, JobRuntimeDeps(golden_be.get()));
    PPA_RETURN_IF_ERROR(
        exp::BindGenericWorkload(*topology, config, golden.get()));
    PPA_RETURN_IF_ERROR(
        golden->SetActiveReplicaSet(TaskSet(topology->num_tasks())));
    PPA_RETURN_IF_ERROR(golden->Start());
    golden_be->RunUntil(TimePoint::Zero() + (end_time - admitted_at));

    const ChaosCase shim = TenantShim(mt_case, mt_case.tenants[i]);
    ChaosRunContext context;
    context.chaos_case = &shim;
    context.job = job;
    context.golden = golden.get();
    context.event_outcomes = &outcomes;
    context.scenario_finished = outcomes.size() == mt_case.events.size();
    context.end_time = end_time;
    std::vector<ChaosViolation> tenant_violations;
    for (const Invariant* invariant : BuiltinInvariants()) {
      if (invariant->name() == "event-sanity") {
        continue;
      }
      invariant->Check(context, &tenant_violations);
    }
    for (ChaosViolation& violation : tenant_violations) {
      violation.message =
          "tenant " + std::to_string(id) + ": " + violation.message;
      report.violations.push_back(std::move(violation));
    }
  }

  CheckEventSanity(outcomes, mt_case.events.size(), &report.violations);
  CheckTenantBudgets(&svc, &report.violations);
  CheckArbitrationOrder(svc, service_config.arbitration_slot,
                        &report.violations);
  return report;
}

StatusOr<MultiTenantCase> GenerateMultiTenantCase(
    const ChaosIntensity& intensity, uint64_t seed) {
  if (intensity.min_events < 0 ||
      intensity.max_events < intensity.min_events) {
    return InvalidArgument("bad chaos intensity event range");
  }
  Rng rng(seed);
  MultiTenantCase mt_case;
  mt_case.seed = seed;

  const int num_tenants = static_cast<int>(rng.NextInt(2, 8));
  RandomTopologyOptions topo_options;
  topo_options.min_operators = 2;
  topo_options.max_operators = 4;
  topo_options.min_parallelism = 1;
  topo_options.max_parallelism = 2;
  topo_options.join_fraction = 0.25;
  topo_options.source_rate = 40.0;
  topo_options.selectivity = 0.8;

  // Zipf-skewed budgets: most tenants get little or no replication while
  // a few hog the standby pool — the interesting starvation regime.
  const ZipfGenerator budget_zipf(5, 1.2);
  int total_tasks = 0;
  int total_budget = 0;
  int max_budget = 0;
  for (int i = 0; i < num_tenants; ++i) {
    TenantCase tenant;
    PPA_ASSIGN_OR_RETURN(Topology topology,
                         GenerateRandomTopology(topo_options, &rng));
    tenant.topology_spec = ToSpec(topology);
    const int num_tasks = topology.num_tasks();
    total_tasks += num_tasks;
    tenant.priority = static_cast<int>(rng.NextInt(0, 3));
    tenant.replica_budget =
        std::min(num_tasks, static_cast<int>(budget_zipf.Sample(&rng)));
    total_budget += tenant.replica_budget;
    max_budget = std::max(max_budget, tenant.replica_budget);
    std::vector<TaskId> tasks(static_cast<size_t>(num_tasks));
    for (int t = 0; t < num_tasks; ++t) {
      tasks[static_cast<size_t>(t)] = t;
    }
    rng.Shuffle(&tasks);
    tasks.resize(static_cast<size_t>(tenant.replica_budget));
    std::sort(tasks.begin(), tasks.end());
    tenant.initial_plan = std::move(tasks);
    mt_case.tenants.push_back(std::move(tenant));
  }

  // Workers always fit every tenant eventually; standbys are deliberately
  // undersized ~40% of the time (still fitting the largest single budget,
  // so starvation shows up as queueing and degradation, not permanent
  // rejection).
  mt_case.worker_slots_per_node = static_cast<int>(rng.NextInt(2, 4));
  mt_case.num_worker_nodes =
      (total_tasks + mt_case.worker_slots_per_node - 1) /
          mt_case.worker_slots_per_node +
      static_cast<int>(rng.NextInt(1, 3));
  mt_case.standby_slots_per_node = static_cast<int>(rng.NextInt(2, 4));
  const bool starved = rng.NextBool(0.4);
  const int standby_capacity =
      starved ? std::max({1, max_budget,
                          static_cast<int>(0.6 * total_budget)})
              : total_budget + static_cast<int>(rng.NextInt(0, 4));
  mt_case.num_standby_nodes =
      std::max(1, (standby_capacity + mt_case.standby_slots_per_node - 1) /
                      mt_case.standby_slots_per_node);
  const int num_nodes =
      mt_case.num_worker_nodes + mt_case.num_standby_nodes;

  mt_case.arbitration_slot_seconds =
      static_cast<double>(rng.NextInt(1, 4));
  mt_case.window_batches = rng.NextInt(5, 15);
  mt_case.checkpoint_interval_seconds =
      static_cast<double>(rng.NextInt(5, 20));

  const int num_domains = static_cast<int>(rng.NextInt(2, 4));
  mt_case.node_domains.resize(static_cast<size_t>(num_nodes));
  for (int node = 0; node < num_nodes; ++node) {
    mt_case.node_domains[static_cast<size_t>(node)] =
        static_cast<int>(rng.NextUint64(static_cast<uint64_t>(num_domains)));
  }

  // Generator-side dead-node bookkeeping, as in GenerateChaosCase: a
  // stale guess only yields an acceptable FailedPrecondition outcome.
  std::vector<bool> dead(static_cast<size_t>(num_nodes), false);
  auto dead_nodes = [&dead] {
    std::vector<int> nodes;
    for (size_t node = 0; node < dead.size(); ++node) {
      if (dead[node]) {
        nodes.push_back(static_cast<int>(node));
      }
    }
    return nodes;
  };

  const int num_events = static_cast<int>(
      rng.NextInt(intensity.min_events, intensity.max_events));
  const double detection = mt_case.detection_interval_seconds;
  double cursor = 5.0 + rng.NextDouble() * 10.0;
  for (int i = 0; i < num_events; ++i) {
    if (i > 0) {
      if (rng.NextBool(intensity.overlap_probability)) {
        // Same instant: races through the loop's same-tick FIFO.
      } else if (rng.NextBool(intensity.failure_during_recovery_bias)) {
        cursor += 0.5 + rng.NextDouble() * (detection + 5.0);
      } else {
        cursor += detection + 5.0 + rng.NextDouble() * 20.0;
      }
    }
    ScenarioEvent event;
    event.at = Duration::Seconds(cursor);
    const double draw = rng.NextDouble();
    if (draw < intensity.revive_probability && !dead_nodes().empty()) {
      const std::vector<int> candidates = dead_nodes();
      if (rng.NextBool(0.3)) {
        event.kind = ScenarioEvent::Kind::kReviveDomain;
        const int node = candidates[rng.NextUint64(candidates.size())];
        event.domain = mt_case.node_domains[static_cast<size_t>(node)];
        for (int n = 0; n < num_nodes; ++n) {
          if (mt_case.node_domains[static_cast<size_t>(n)] == event.domain) {
            dead[static_cast<size_t>(n)] = false;
          }
        }
      } else {
        event.kind = ScenarioEvent::Kind::kReviveNode;
        event.node = candidates[rng.NextUint64(candidates.size())];
        dead[static_cast<size_t>(event.node)] = false;
      }
    } else if (rng.NextDouble() < intensity.domain_failure_fraction +
                                      intensity.correlated_failure_fraction) {
      // Correlated mass is folded into domain failures: a domain outage IS
      // the cross-tenant correlated failure at this layer.
      event.kind = ScenarioEvent::Kind::kDomainFailure;
      event.domain = static_cast<int>(
          rng.NextUint64(static_cast<uint64_t>(num_domains)));
      for (int n = 0; n < num_nodes; ++n) {
        if (mt_case.node_domains[static_cast<size_t>(n)] == event.domain) {
          dead[static_cast<size_t>(n)] = true;
        }
      }
    } else {
      event.kind = ScenarioEvent::Kind::kNodeFailure;
      // Half the node kills target the standby pool: killing standbys is
      // what forces budget starvation and degradation cascades.
      if (rng.NextBool(0.5)) {
        event.node =
            mt_case.num_worker_nodes +
            static_cast<int>(rng.NextUint64(
                static_cast<uint64_t>(mt_case.num_standby_nodes)));
      } else {
        event.node = static_cast<int>(
            rng.NextUint64(static_cast<uint64_t>(num_nodes)));
      }
      dead[static_cast<size_t>(event.node)] = true;
    }
    mt_case.events.push_back(std::move(event));
  }

  mt_case.run_for_seconds =
      cursor + 30.0 + static_cast<double>(rng.NextInt(0, 15));
  return mt_case;
}

namespace {

/// Generates and runs case `index`. Never fails: execution errors land in
/// the result's `error` field so one broken case cannot take down the
/// campaign.
MultiTenantCampaignCaseResult RunOneMultiTenantCase(
    const CampaignOptions& options, int index) {
  MultiTenantCampaignCaseResult result;
  result.index = index;
  result.seed = DeriveSeed(options.base_seed, static_cast<uint64_t>(index));
  StatusOr<MultiTenantCase> generated =
      GenerateMultiTenantCase(options.intensity, result.seed);
  if (!generated.ok()) {
    result.error = "generate: " + generated.status().ToString();
    return result;
  }
  result.mt_case = *std::move(generated);
  StatusOr<MultiTenantRunReport> report = RunMultiTenantCase(result.mt_case);
  if (!report.ok()) {
    result.error = "run: " + report.status().ToString();
    return result;
  }
  result.report = *std::move(report);
  return result;
}

JsonValue MultiTenantCaseResultToJson(
    const MultiTenantCampaignCaseResult& result) {
  JsonValue json = JsonValue::Object();
  json.Set("index", result.index);
  json.Set("seed", static_cast<int64_t>(result.seed));
  json.Set("failed", result.failed());
  if (!result.error.empty()) {
    json.Set("error", result.error);
    json.Set("case", MultiTenantCaseToJson(result.mt_case));
    return json;
  }
  json.Set("tenants_submitted",
           static_cast<int64_t>(result.report.tenants_submitted));
  json.Set("tenants_admitted",
           static_cast<int64_t>(result.report.tenants_admitted));
  json.Set("tenants_queued",
           static_cast<int64_t>(result.report.tenants_queued));
  json.Set("events_scheduled",
           static_cast<int64_t>(result.report.events_scheduled));
  json.Set("events_executed",
           static_cast<int64_t>(result.report.events_executed));
  json.Set("sink_records", static_cast<int64_t>(result.report.sink_records));
  json.Set("recoveries", static_cast<int64_t>(result.report.recoveries));
  json.Set("arbitrations",
           static_cast<int64_t>(result.report.arbitrations));
  json.Set("degradations",
           static_cast<int64_t>(result.report.degradations));
  json.Set("promotions", static_cast<int64_t>(result.report.promotions));
  json.Set("end_seconds", result.report.end_seconds);
  JsonValue violations = JsonValue::Array();
  for (const ChaosViolation& violation : result.report.violations) {
    JsonValue entry = JsonValue::Object();
    entry.Set("invariant", violation.invariant);
    entry.Set("message", violation.message);
    violations.Append(std::move(entry));
  }
  json.Set("violations", std::move(violations));
  if (result.failed()) {
    json.Set("case", MultiTenantCaseToJson(result.mt_case));
  }
  return json;
}

JsonValue MultiTenantIntensityToJson(const ChaosIntensity& intensity) {
  JsonValue json = JsonValue::Object();
  json.Set("min_events", intensity.min_events);
  json.Set("max_events", intensity.max_events);
  json.Set("overlap_probability", intensity.overlap_probability);
  json.Set("failure_during_recovery_bias",
           intensity.failure_during_recovery_bias);
  json.Set("revive_probability", intensity.revive_probability);
  json.Set("domain_failure_fraction", intensity.domain_failure_fraction);
  json.Set("correlated_failure_fraction",
           intensity.correlated_failure_fraction);
  return json;
}

}  // namespace

StatusOr<MultiTenantCampaignReport> RunMultiTenantCampaign(
    const CampaignOptions& options) {
  if (options.num_seeds < 0) {
    return InvalidArgument("num_seeds must be non-negative");
  }
  if (options.jobs < 1) {
    return InvalidArgument("jobs must be at least 1");
  }
  exp::ParallelRunnerOptions runner_options;
  runner_options.jobs = options.jobs;
  exp::ParallelRunner runner(runner_options);
  MultiTenantCampaignReport report;
  report.options = options;
  report.results = runner.Map<MultiTenantCampaignCaseResult>(
      options.num_seeds, [&options](int index) {
        MultiTenantCampaignCaseResult result =
            RunOneMultiTenantCase(options, index);
        // Progress ticks on the worker in completion order; the report
        // itself stays a pure function of the options.
        if (options.progress != nullptr) {
          options.progress->Record(result.failed());
        }
        return result;
      });
  for (const MultiTenantCampaignCaseResult& result : report.results) {
    if (result.failed()) {
      ++report.num_failed;
    }
    report.num_violations +=
        static_cast<int>(result.report.violations.size());
  }
  return report;
}

JsonValue MultiTenantCampaignReportToJson(
    const MultiTenantCampaignReport& report) {
  JsonValue json = JsonValue::Object();
  json.Set("base_seed", static_cast<int64_t>(report.options.base_seed));
  json.Set("num_seeds", report.options.num_seeds);
  json.Set("intensity", MultiTenantIntensityToJson(report.options.intensity));
  json.Set("num_failed", report.num_failed);
  json.Set("num_violations", report.num_violations);
  JsonValue cases = JsonValue::Array();
  for (const MultiTenantCampaignCaseResult& result : report.results) {
    cases.Append(MultiTenantCaseResultToJson(result));
  }
  json.Set("cases", std::move(cases));
  return json;
}

}  // namespace chaos
}  // namespace ppa
