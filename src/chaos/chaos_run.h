#ifndef PPA_CHAOS_CHAOS_RUN_H_
#define PPA_CHAOS_CHAOS_RUN_H_

#include <cstdint>
#include <vector>

#include "backend/execution_backend.h"
#include "chaos/chaos_case.h"
#include "chaos/invariants.h"
#include "common/status_or.h"
#include "report/json.h"

namespace ppa {
namespace chaos {

/// Outcome of one executed chaos case. A non-empty `violations` means an
/// invariant broke; a returned error Status from RunChaosCase means the
/// case could not even be executed (bad spec, config, or a runtime error
/// outside the scenario path) — campaigns report both.
struct ChaosRunReport {
  uint64_t seed = 0;
  size_t events_scheduled = 0;
  size_t events_executed = 0;
  size_t sink_records = 0;
  size_t recoveries = 0;
  /// Final sim time the run (and its golden twin) reached, in seconds.
  double end_seconds = 0.0;
  std::vector<ChaosViolation> violations;
  /// The job's flight record (obs::FlightRecordToJson shape) — the last
  /// trace events before the end of the run — filled only when
  /// `violations` is non-empty, so every failing case ships its
  /// post-mortem. JSON null otherwise.
  JsonValue flight_record;
};

/// Executes one chaos case deterministically and checks `invariants`
/// against the completed run:
///  1. builds the job from the case (topology spec, config scalars,
///     domain assignment, initial plan) and schedules the event timeline;
///  2. runs for `run_for_seconds`, then keeps running in
///     detection-interval steps until the scenario drained and every task
///     recovered (capped at 1800 extra sim-seconds), then a short quiet
///     tail so the tentative window closes;
///  3. reconciles any outstanding tentative outputs;
///  4. replays a fault-free golden run of the same case to the same end
///     time and hands both jobs to the invariant oracles.
///
/// `backend_kind` selects the substrate the chaos run executes on; the
/// golden twin always runs on the deterministic sim, so running a case on
/// BackendKind::kThreads checks the threaded backend against the sim
/// oracle under fault injection (the parity contract, DESIGN.md §16).
[[nodiscard]] StatusOr<ChaosRunReport> RunChaosCase(
    const ChaosCase& chaos_case,
    const std::vector<const Invariant*>& invariants,
    backend::BackendKind backend_kind);

/// RunChaosCase on the deterministic sim.
[[nodiscard]] StatusOr<ChaosRunReport> RunChaosCase(
    const ChaosCase& chaos_case,
    const std::vector<const Invariant*>& invariants);

/// RunChaosCase against BuiltinInvariants() on the deterministic sim.
[[nodiscard]] StatusOr<ChaosRunReport> RunChaosCase(
    const ChaosCase& chaos_case);

}  // namespace chaos
}  // namespace ppa

#endif  // PPA_CHAOS_CHAOS_RUN_H_
