#include "chaos/invariants.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "af/error_budget.h"
#include "ft/recovery_model.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "topology/task_set.h"

namespace ppa {
namespace chaos {
namespace {

/// Stable (sink task, batch) output group: a multiset of (key, value)
/// pairs. `seq` is excluded on purpose — replica takeover lineages assign
/// different sequence numbers to identical data.
using OutputGroup = std::map<std::pair<std::string, int64_t>, int>;
using GroupKey = std::pair<TaskId, int64_t>;

std::map<GroupKey, OutputGroup> GroupStableRecords(const StreamingJob& job,
                                                   bool corrections) {
  std::map<GroupKey, OutputGroup> groups;
  for (const SinkRecord& record : job.sink_records()) {
    if (record.tentative || record.correction != corrections) {
      continue;
    }
    groups[{record.tuple.producer, record.tuple.batch}]
          [{record.tuple.key, record.tuple.value}]++;
  }
  return groups;
}

/// Batches whose stable output may legitimately differ from the golden
/// run: every batch the sink emitted while some task was failed or
/// catching up, plus the guard window after it, during which recovered
/// sliding windows still contain degraded batches (state pollution
/// persists for up to window_batches per operator level, and windows nest
/// across the topology's stages). Tentative marking alone is not enough:
/// between a failure and its heartbeat detection the sink keeps emitting
/// nominally-stable batches that silently miss the dead tasks'
/// contributions (Sec. V-B marks outputs tentative only from detection
/// on), so degradation is replayed from the trace's failure/caught-up
/// bracketing instead.
std::set<int64_t> DegradedBatches(const ChaosRunContext& context) {
  std::set<int64_t> degraded;
  std::set<int64_t> unhealthy;
  for (const obs::TraceEvent& e : context.job->trace().events()) {
    switch (e.kind) {
      case obs::TraceEventKind::kTaskFailed:
        unhealthy.insert(e.task);
        break;
      case obs::TraceEventKind::kTaskCaughtUp:
        unhealthy.erase(e.task);
        break;
      case obs::TraceEventKind::kSinkBatchStable:
        if (!unhealthy.empty()) {
          degraded.insert(e.a);
        }
        break;
      case obs::TraceEventKind::kSinkBatchTentative:
        degraded.insert(e.a);
        break;
      default:
        break;
    }
  }
  return degraded;
}

bool InGuardWindow(const std::set<int64_t>& degraded, int64_t guard,
                   int64_t batch) {
  // The nearest degraded batch at or before `batch` decides.
  auto it = degraded.upper_bound(batch);
  if (it == degraded.begin()) {
    return false;
  }
  --it;
  return batch - *it <= guard;
}

class ExactlyOnceStableInvariant : public Invariant {
 public:
  std::string_view name() const override { return "exactly-once-stable"; }

  void Check(const ChaosRunContext& context,
             std::vector<ChaosViolation>* violations) const override {
    const std::map<GroupKey, OutputGroup> golden =
        GroupStableRecords(*context.golden, /*corrections=*/false);
    const std::set<int64_t> degraded = DegradedBatches(context);
    const int64_t guard =
        context.chaos_case->window_batches *
        static_cast<int64_t>(context.job->topology().num_operators());

    const std::map<GroupKey, OutputGroup> stable =
        GroupStableRecords(*context.job, /*corrections=*/false);
    for (const auto& [key, group] : stable) {
      if (InGuardWindow(degraded, guard, key.second)) {
        continue;
      }
      CompareGroup(key, group, golden, "stable", violations);
    }

    // Reconcile corrections re-execute the degraded range on complete
    // inputs with an exact warm-up, so they must equal the golden output
    // with no guard exclusion at all.
    const std::map<GroupKey, OutputGroup> corrections =
        GroupStableRecords(*context.job, /*corrections=*/true);
    for (const auto& [key, group] : corrections) {
      CompareGroup(key, group, golden, "corrected", violations);
    }
  }

 private:
  void CompareGroup(const GroupKey& key, const OutputGroup& group,
                    const std::map<GroupKey, OutputGroup>& golden,
                    const char* label,
                    std::vector<ChaosViolation>* violations) const {
    const std::string where = std::string(label) + " sink output (task " +
                              std::to_string(key.first) + ", batch " +
                              std::to_string(key.second) + ")";
    auto it = golden.find(key);
    if (it == golden.end()) {
      violations->push_back(
          {std::string(name()),
           where + " has no counterpart in the fault-free golden run"});
      return;
    }
    if (group != it->second) {
      violations->push_back(
          {std::string(name()),
           where + " differs from the fault-free golden run"});
    }
  }
};

class FidelityBoundsInvariant : public Invariant {
 public:
  std::string_view name() const override { return "fidelity-bounds"; }

  void Check(const ChaosRunContext& context,
             std::vector<ChaosViolation>* violations) const override {
    const auto& samples = context.job->fidelity_timeseries().samples();
    for (const obs::FidelitySample& sample : samples) {
      if (sample.output_fidelity < 0.0 || sample.output_fidelity > 1.0 ||
          sample.internal_completeness < 0.0 ||
          sample.internal_completeness > 1.0) {
        violations->push_back(
            {std::string(name()),
             "OF/IC sample out of [0,1] at batch " +
                 std::to_string(sample.batch) + ": OF=" +
                 std::to_string(sample.output_fidelity) + " IC=" +
                 std::to_string(sample.internal_completeness)});
      }
    }
    // After full recovery with every tentative window closed, fidelity
    // must be back at 1.0 (the closing stable sample sees no failures).
    if (!context.job->AllRecovered() || samples.empty()) {
      return;
    }
    const std::vector<obs::TentativeWindow> windows =
        obs::ExtractTentativeWindows(context.job->trace());
    for (const obs::TentativeWindow& window : windows) {
      if (!window.closed) {
        return;  // Liveness reports unclosed windows separately.
      }
    }
    const obs::FidelitySample& last = samples.back();
    if (last.tentative || last.output_fidelity != 1.0 ||
        last.internal_completeness != 1.0) {
      violations->push_back(
          {std::string(name()),
           "fidelity did not return to 1.0 after full recovery: final "
           "sample has OF=" +
               std::to_string(last.output_fidelity) + " IC=" +
               std::to_string(last.internal_completeness)});
    }
  }
};

class LivenessInvariant : public Invariant {
 public:
  std::string_view name() const override { return "liveness"; }

  void Check(const ChaosRunContext& context,
             std::vector<ChaosViolation>* violations) const override {
    if (!context.job->AllRecovered()) {
      violations->push_back(
          {std::string(name()),
           "run ended with tasks still failed or recovering"});
    }
    // A task that failed repeatedly may leave earlier episodes without a
    // caught-up mark (a re-failure supersedes the catch-up); its final
    // episode must complete the full cycle within the bound.
    const std::vector<obs::RecoveryTimeline> timelines =
        obs::BuildRecoveryTimelines(context.job->trace());
    std::map<int64_t, const obs::RecoveryTimeline*> last_episode;
    for (const obs::RecoveryTimeline& timeline : timelines) {
      last_episode[timeline.task] = &timeline;
    }
    const Duration bound =
        Duration::Seconds(context.chaos_case->detection_interval_seconds) +
        Duration::Seconds(150.0);
    for (const auto& [task, timeline] : last_episode) {
      if (!timeline->restored || !timeline->caught_up) {
        violations->push_back(
            {std::string(name()),
             "task " + std::to_string(task) +
                 " never completed recovery (restored=" +
                 (timeline->restored ? "yes" : "no") + ", caught_up=" +
                 (timeline->caught_up ? "yes" : "no") + ")"});
        continue;
      }
      const Duration latency = timeline->caught_up_at - timeline->failed_at;
      if (latency > bound) {
        violations->push_back(
            {std::string(name()),
             "task " + std::to_string(task) + " took " +
                 std::to_string(latency.seconds()) +
                 "s from failure to caught-up (bound " +
                 std::to_string(bound.seconds()) + "s)"});
      }
    }
  }
};

class ReplicaBudgetInvariant : public Invariant {
 public:
  std::string_view name() const override { return "replica-budget"; }

  void Check(const ChaosRunContext& context,
             std::vector<ChaosViolation>* violations) const override {
    // Replay the trace: a replica slot opens at kReplicaActivated and
    // closes at kReplicaDeactivated or when recovery promotes it to
    // primary. Plan swaps must keep the replicas of currently-failed
    // tasks (they may be the recovery path), so the enforced ceiling is
    // budget + #failed.
    const int64_t budget = context.chaos_case->budget;
    int64_t running = 0;
    std::set<int64_t> failed;
    for (const obs::TraceEvent& e : context.job->trace().events()) {
      switch (e.kind) {
        case obs::TraceEventKind::kReplicaActivated:
          ++running;
          break;
        case obs::TraceEventKind::kReplicaDeactivated:
          --running;
          break;
        case obs::TraceEventKind::kTaskFailed:
          failed.insert(e.task);
          break;
        case obs::TraceEventKind::kRecoveryDone:
          if (e.a == static_cast<int64_t>(RecoveryKind::kActiveReplica)) {
            --running;
          }
          failed.erase(e.task);
          break;
        default:
          break;
      }
      if (running < 0) {
        violations->push_back(
            {std::string(name()),
             "replica accounting went negative at t=" +
                 std::to_string(e.at.seconds()) + "s"});
        return;
      }
      if (running > budget + static_cast<int64_t>(failed.size())) {
        violations->push_back(
            {std::string(name()),
             std::to_string(running) + " active replicas at t=" +
                 std::to_string(e.at.seconds()) +
                 "s exceeds budget " + std::to_string(budget) + " + " +
                 std::to_string(failed.size()) + " failed tasks"});
        return;
      }
    }
  }
};

class TimelineSanityInvariant : public Invariant {
 public:
  std::string_view name() const override { return "timeline-sanity"; }

  void Check(const ChaosRunContext& context,
             std::vector<ChaosViolation>* violations) const override {
    for (const obs::RecoveryTimeline& timeline :
         obs::BuildRecoveryTimelines(context.job->trace())) {
      const std::string task = "task " + std::to_string(timeline.task);
      if (timeline.detected && timeline.detected_at < timeline.failed_at) {
        violations->push_back(
            {std::string(name()), task + " detected before it failed"});
      }
      if (timeline.restored && timeline.detected &&
          timeline.restored_at < timeline.detected_at) {
        violations->push_back(
            {std::string(name()), task + " restored before detection"});
      }
      if (timeline.caught_up && timeline.restored &&
          timeline.caught_up_at < timeline.restored_at) {
        violations->push_back(
            {std::string(name()), task + " caught up before restoration"});
      }
    }
    for (const obs::TentativeWindow& window :
         obs::ExtractTentativeWindows(context.job->trace())) {
      if (window.closed &&
          (window.end < window.begin || window.last_batch < window.first_batch)) {
        violations->push_back(
            {std::string(name()),
             "tentative window closes before it opens (batches " +
                 std::to_string(window.first_batch) + ".." +
                 std::to_string(window.last_batch) + ")"});
      }
    }
    for (const RecoveryReport& report : context.job->recovery_reports()) {
      if (report.detection_time < report.failure_time ||
          report.TotalLatency() < Duration::Zero()) {
        violations->push_back(
            {std::string(name()),
             "recovery report with negative latency at t=" +
                 std::to_string(report.failure_time.seconds()) +
                 "s"});
      }
    }
  }
};

class ErrorBudgetInvariant : public Invariant {
 public:
  std::string_view name() const override { return "error-budget"; }

  void Check(const ChaosRunContext& context,
             std::vector<ChaosViolation>* violations) const override {
    const auto& certs = context.job->approx_certificates();
    const int64_t skipped = context.job->trace().CountOf(
        obs::TraceEventKind::kCheckpointSkipped);
    if (context.chaos_case->recovery_mode == af::RecoveryMode::kPpa) {
      // Exact mode must be exactly the pre-af engine: no thinning, no
      // approximate recoveries, ever.
      if (skipped > 0) {
        violations->push_back(
            {std::string(name()),
             std::to_string(skipped) +
                 " checkpoints skipped under recovery_mode=ppa"});
      }
      if (!certs.empty()) {
        violations->push_back(
            {std::string(name()),
             std::to_string(certs.size()) +
                 " approximate recoveries under recovery_mode=ppa"});
      }
      return;
    }
    // Every certificate honors the declared cap.
    const double cap = context.chaos_case->af_max_certified_loss;
    for (const af::ApproxCertificate& cert : certs) {
      if (cert.certified_loss > cap + 1e-9) {
        violations->push_back(
            {std::string(name()),
             "task " + std::to_string(cert.task) +
                 " certified loss " + std::to_string(cert.certified_loss) +
                 " exceeds the declared cap " + std::to_string(cap)});
      }
    }
    if (certs.empty()) {
      return;
    }
    // Golden-twin comparison: in the post-recovery region that an
    // approximate recovery polluted (the guard window after its resume
    // point), the measured per-batch output deficit must stay within the
    // certified OF bound of the forfeiting tasks. Batches emitted while
    // tasks were failed or catching up degrade for exact-PPA reasons and
    // are excluded, as is guard slop not attributable to any certificate.
    const std::map<GroupKey, OutputGroup> golden =
        GroupStableRecords(*context.golden, /*corrections=*/false);
    const std::map<GroupKey, OutputGroup> stable =
        GroupStableRecords(*context.job, /*corrections=*/false);
    const std::set<int64_t> degraded = DegradedBatches(context);
    const int64_t guard =
        context.chaos_case->window_batches *
        static_cast<int64_t>(context.job->topology().num_operators());
    const int num_tasks = context.job->topology().num_tasks();
    for (const auto& [key, golden_group] : golden) {
      const int64_t batch = key.second;
      if (degraded.count(batch) > 0) {
        continue;
      }
      TaskSet forfeiters(num_tasks);
      bool certified = false;
      for (const af::ApproxCertificate& cert : certs) {
        if (batch >= cert.resumed_batch &&
            batch <= cert.resumed_batch + guard) {
          forfeiters.Add(static_cast<TaskId>(cert.task));
          certified = true;
        }
      }
      if (!certified) {
        continue;  // Exact regions are exactly-once-stable's job.
      }
      int64_t golden_tuples = 0;
      for (const auto& [tuple, count] : golden_group) {
        golden_tuples += count;
      }
      int64_t faulty_tuples = 0;
      auto it = stable.find(key);
      if (it != stable.end()) {
        for (const auto& [tuple, count] : it->second) {
          faulty_tuples += count;
        }
      }
      if (golden_tuples <= 0 || faulty_tuples >= golden_tuples) {
        continue;
      }
      const double deficit =
          1.0 - static_cast<double>(faulty_tuples) /
                    static_cast<double>(golden_tuples);
      const double allowed =
          af::CertifiedLossBound(context.job->topology(), forfeiters);
      // Small relative tolerance plus an absolute couple-of-tuples slack:
      // integer batch boundaries make tiny deficits unavoidable noise.
      if (deficit > allowed + 0.05 && golden_tuples - faulty_tuples > 2) {
        violations->push_back(
            {std::string(name()),
             "sink task " + std::to_string(key.first) + " batch " +
                 std::to_string(batch) + " lost " +
                 std::to_string(deficit) +
                 " of its golden output; certified bound was " +
                 std::to_string(allowed)});
      }
    }
  }
};

class EventSanityInvariant : public Invariant {
 public:
  std::string_view name() const override { return "event-sanity"; }

  void Check(const ChaosRunContext& context,
             std::vector<ChaosViolation>* violations) const override {
    if (!context.scenario_finished) {
      violations->push_back(
          {std::string(name()),
           "not every scheduled scenario event executed"});
    }
    const std::vector<Status>& outcomes = *context.event_outcomes;
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const StatusCode code = outcomes[i].code();
      // Random schedules legitimately hit precondition rejections (a
      // revive racing a failure, a reconcile with nothing degraded, an
      // exhaustive planner over its step cap). Anything else means the
      // generator emitted garbage or the runtime broke.
      const bool acceptable = code == StatusCode::kOk ||
                              code == StatusCode::kFailedPrecondition ||
                              code == StatusCode::kNotFound ||
                              code == StatusCode::kResourceExhausted;
      if (!acceptable) {
        violations->push_back(
            {std::string(name()),
             "event " + std::to_string(i) + " resolved to " +
                 outcomes[i].ToString()});
      }
    }
  }
};

}  // namespace

const std::vector<const Invariant*>& BuiltinInvariants() {
  static const ExactlyOnceStableInvariant exactly_once;
  static const FidelityBoundsInvariant fidelity_bounds;
  static const LivenessInvariant liveness;
  static const ReplicaBudgetInvariant replica_budget;
  static const TimelineSanityInvariant timeline_sanity;
  static const ErrorBudgetInvariant error_budget;
  static const EventSanityInvariant event_sanity;
  static const std::vector<const Invariant*> all = {
      &exactly_once,    &fidelity_bounds,  &liveness,    &replica_budget,
      &timeline_sanity, &error_budget,     &event_sanity,
  };
  return all;
}

}  // namespace chaos
}  // namespace ppa
