#ifndef PPA_CHAOS_GENERATOR_H_
#define PPA_CHAOS_GENERATOR_H_

#include <string_view>

#include "chaos/chaos_case.h"
#include "common/random.h"
#include "common/status_or.h"

namespace ppa {
namespace chaos {

/// Tunable knobs of the fault-schedule generator. Presets trade schedule
/// density (how many events, how tightly they overlap) against run cost.
struct ChaosIntensity {
  /// Event count is drawn uniformly from [min_events, max_events].
  int min_events = 4;
  int max_events = 10;

  /// Probability that an event is scheduled at exactly the same instant
  /// as the previous one (same-tick races through the event loop's FIFO).
  double overlap_probability = 0.15;

  /// Probability that an event lands inside the detection/recovery window
  /// of the previous failure instead of well after it — the
  /// failure-during-recovery schedules humans rarely write.
  double failure_during_recovery_bias = 0.3;

  /// Per-event kind weights (normalized at draw time). Failures make up
  /// the remaining mass.
  double revive_probability = 0.2;
  double plan_swap_probability = 0.15;
  double reconcile_probability = 0.1;
  /// Among failure draws: fraction that kill a whole domain and fraction
  /// that kill every primary-hosting node at once.
  double domain_failure_fraction = 0.25;
  double correlated_failure_fraction = 0.1;

  /// Low-churn preset: few, well-separated failures.
  [[nodiscard]] static ChaosIntensity Low();
  /// Default preset.
  [[nodiscard]] static ChaosIntensity Medium();
  /// Dense schedules that overlap failures with recoveries aggressively.
  [[nodiscard]] static ChaosIntensity High();
};

/// Parses an intensity preset name ("low", "medium", "high").
[[nodiscard]] StatusOr<ChaosIntensity> ChaosIntensityFromString(
    std::string_view name);

/// Generates a random-but-valid chaos case from `seed`: a random topology
/// (3-6 operators, parallelism 1-3), a cluster sized to it with a random
/// failure-domain assignment, an initial replication plan produced by a
/// randomly chosen planner under a random budget, and an event timeline
/// drawn per `intensity` (node/domain/correlated failures, revivals, plan
/// swaps across all six planners, reconciles). Pure function of
/// (intensity, seed): equal arguments yield equal cases.
[[nodiscard]] StatusOr<ChaosCase> GenerateChaosCase(
    const ChaosIntensity& intensity, uint64_t seed);

}  // namespace chaos
}  // namespace ppa

#endif  // PPA_CHAOS_GENERATOR_H_
