#include "chaos/generator.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "planner/planner.h"
#include "topology/random_topology.h"
#include "topology/serialize.h"

namespace ppa {
namespace chaos {

ChaosIntensity ChaosIntensity::Low() {
  ChaosIntensity intensity;
  intensity.min_events = 2;
  intensity.max_events = 5;
  intensity.overlap_probability = 0.05;
  intensity.failure_during_recovery_bias = 0.1;
  return intensity;
}

ChaosIntensity ChaosIntensity::Medium() { return ChaosIntensity(); }

ChaosIntensity ChaosIntensity::High() {
  ChaosIntensity intensity;
  intensity.min_events = 10;
  intensity.max_events = 20;
  intensity.overlap_probability = 0.3;
  intensity.failure_during_recovery_bias = 0.5;
  intensity.domain_failure_fraction = 0.35;
  intensity.correlated_failure_fraction = 0.15;
  return intensity;
}

StatusOr<ChaosIntensity> ChaosIntensityFromString(std::string_view name) {
  if (name == "low") {
    return ChaosIntensity::Low();
  }
  if (name == "medium") {
    return ChaosIntensity::Medium();
  }
  if (name == "high") {
    return ChaosIntensity::High();
  }
  return InvalidArgument("unknown chaos intensity '" + std::string(name) +
                         "' (expected low, medium, or high)");
}

namespace {

/// Draws a planner kind uniformly; every one of the six planners gets
/// exercised across a campaign.
PlannerKind DrawPlannerKind(Rng* rng) {
  constexpr PlannerKind kKinds[] = {
      PlannerKind::kDynamicProgramming, PlannerKind::kGreedy,
      PlannerKind::kStructureAware,     PlannerKind::kExhaustive,
      PlannerKind::kRandom,             PlannerKind::kExpectedFidelity,
  };
  return kKinds[rng->NextUint64(std::size(kKinds))];
}

/// Plans a replica set for `topology` under `budget` with a randomly
/// drawn planner and returns the chosen task ids in ascending order.
StatusOr<std::vector<TaskId>> DrawPlan(const Topology& topology, int budget,
                                       Rng* rng) {
  PlannerOptions options;
  options.seed = rng->Next();
  std::unique_ptr<Planner> planner =
      CreatePlanner(DrawPlannerKind(rng), options);
  PPA_ASSIGN_OR_RETURN(ReplicationPlan plan,
                       planner->Plan(PlanRequest(topology, budget)));
  std::vector<TaskId> tasks;
  for (TaskId t = 0; t < topology.num_tasks(); ++t) {
    if (plan.replicated.Contains(t)) {
      tasks.push_back(t);
    }
  }
  return tasks;
}

}  // namespace

StatusOr<ChaosCase> GenerateChaosCase(const ChaosIntensity& intensity,
                                      uint64_t seed) {
  if (intensity.min_events < 0 || intensity.max_events < intensity.min_events) {
    return InvalidArgument("bad chaos intensity event range");
  }
  Rng rng(seed);
  ChaosCase chaos_case;
  chaos_case.seed = seed;

  RandomTopologyOptions topo_options;
  topo_options.min_operators = 3;
  topo_options.max_operators = 6;
  topo_options.min_parallelism = 1;
  topo_options.max_parallelism = 3;
  topo_options.join_fraction = 0.25;
  topo_options.source_rate = 40.0;
  topo_options.selectivity = 0.8;
  PPA_ASSIGN_OR_RETURN(Topology topology,
                       GenerateRandomTopology(topo_options, &rng));
  chaos_case.topology_spec = ToSpec(topology);
  const int num_tasks = topology.num_tasks();

  chaos_case.num_worker_nodes =
      std::max(4, num_tasks) + static_cast<int>(rng.NextUint64(3));
  chaos_case.num_standby_nodes =
      std::max(2, num_tasks / 2) + static_cast<int>(rng.NextUint64(3));
  const int num_nodes =
      chaos_case.num_worker_nodes + chaos_case.num_standby_nodes;
  chaos_case.window_batches = rng.NextInt(5, 15);
  chaos_case.delta_checkpoints = rng.NextBool(0.5);
  chaos_case.checkpoint_interval_seconds =
      static_cast<double>(rng.NextInt(5, 20));

  const int num_domains = static_cast<int>(rng.NextInt(2, 4));
  chaos_case.node_domains.resize(static_cast<size_t>(num_nodes));
  for (int node = 0; node < num_nodes; ++node) {
    chaos_case.node_domains[static_cast<size_t>(node)] =
        static_cast<int>(rng.NextUint64(static_cast<uint64_t>(num_domains)));
  }

  chaos_case.budget =
      static_cast<int>(rng.NextInt(1, std::max(1, num_tasks / 2)));
  PPA_ASSIGN_OR_RETURN(chaos_case.initial_plan,
                       DrawPlan(topology, chaos_case.budget, &rng));

  // Generator-side liveness bookkeeping: which nodes the schedule has
  // probably killed so far, so revivals usually target a dead node. The
  // runtime remains the source of truth (correlated failures depend on
  // placement), so a stale guess only yields an acceptable
  // FailedPrecondition outcome, never an invalid event.
  std::vector<bool> dead(static_cast<size_t>(num_nodes), false);
  auto dead_nodes = [&dead] {
    std::vector<int> nodes;
    for (size_t node = 0; node < dead.size(); ++node) {
      if (dead[node]) {
        nodes.push_back(static_cast<int>(node));
      }
    }
    return nodes;
  };

  const int num_events = static_cast<int>(
      rng.NextInt(intensity.min_events, intensity.max_events));
  const double detection = chaos_case.detection_interval_seconds;
  double cursor = 5.0 + rng.NextDouble() * 10.0;
  for (int i = 0; i < num_events; ++i) {
    if (i > 0) {
      if (rng.NextBool(intensity.overlap_probability)) {
        // Same instant: races through the loop's same-tick FIFO.
      } else if (rng.NextBool(intensity.failure_during_recovery_bias)) {
        cursor += 0.5 + rng.NextDouble() * (detection + 5.0);
      } else {
        cursor += detection + 5.0 + rng.NextDouble() * 20.0;
      }
    }
    ScenarioEvent event;
    event.at = Duration::Seconds(cursor);
    const double draw = rng.NextDouble();
    const double revive_cut = intensity.revive_probability;
    const double plan_cut = revive_cut + intensity.plan_swap_probability;
    const double reconcile_cut = plan_cut + intensity.reconcile_probability;
    if (draw < revive_cut && !dead_nodes().empty()) {
      const std::vector<int> candidates = dead_nodes();
      if (rng.NextBool(0.3)) {
        event.kind = ScenarioEvent::Kind::kReviveDomain;
        const int node =
            candidates[rng.NextUint64(candidates.size())];
        event.domain = chaos_case.node_domains[static_cast<size_t>(node)];
        for (int n = 0; n < num_nodes; ++n) {
          if (chaos_case.node_domains[static_cast<size_t>(n)] ==
              event.domain) {
            dead[static_cast<size_t>(n)] = false;
          }
        }
      } else {
        event.kind = ScenarioEvent::Kind::kReviveNode;
        event.node = candidates[rng.NextUint64(candidates.size())];
        dead[static_cast<size_t>(event.node)] = false;
      }
    } else if (draw < plan_cut) {
      event.kind = ScenarioEvent::Kind::kApplyPlan;
      const int swap_budget = static_cast<int>(
          rng.NextInt(0, chaos_case.budget));
      PPA_ASSIGN_OR_RETURN(event.plan,
                           DrawPlan(topology, swap_budget, &rng));
    } else if (draw < reconcile_cut) {
      event.kind = ScenarioEvent::Kind::kReconcile;
    } else {
      const double failure_draw = rng.NextDouble();
      if (failure_draw < intensity.correlated_failure_fraction) {
        event.kind = ScenarioEvent::Kind::kCorrelatedFailure;
        event.include_sources = rng.NextBool(0.3);
        // Placement is round-robin over workers, so assume all workers go.
        for (int n = 0; n < chaos_case.num_worker_nodes; ++n) {
          dead[static_cast<size_t>(n)] = true;
        }
      } else if (failure_draw < intensity.correlated_failure_fraction +
                                    intensity.domain_failure_fraction) {
        event.kind = ScenarioEvent::Kind::kDomainFailure;
        event.domain = static_cast<int>(
            rng.NextUint64(static_cast<uint64_t>(num_domains)));
        for (int n = 0; n < num_nodes; ++n) {
          if (chaos_case.node_domains[static_cast<size_t>(n)] ==
              event.domain) {
            dead[static_cast<size_t>(n)] = true;
          }
        }
      } else {
        event.kind = ScenarioEvent::Kind::kNodeFailure;
        event.node =
            static_cast<int>(rng.NextUint64(static_cast<uint64_t>(num_nodes)));
        dead[static_cast<size_t>(event.node)] = true;
      }
    }
    chaos_case.events.push_back(std::move(event));
  }

  chaos_case.run_for_seconds =
      cursor + 30.0 + static_cast<double>(rng.NextInt(0, 15));
  return chaos_case;
}

}  // namespace chaos
}  // namespace ppa
