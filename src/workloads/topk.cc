#include "workloads/topk.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "engine/operators.h"
#include "engine/serde.h"

namespace ppa {

TopKOperator::TopKOperator(int k, int64_t freshness_batches)
    : k_(k), freshness_batches_(freshness_batches) {}

void TopKOperator::ProcessBatch(BatchContext* ctx,
                                const std::vector<Tuple>& inputs) {
  const int64_t b = ctx->batch_index();
  for (const Tuple& t : inputs) {
    Entry& e = latest_[t.key];
    e.value = t.value;
    e.last_batch = b;
  }
  // Evict stale keys.
  for (auto it = latest_.begin(); it != latest_.end();) {
    if (it->second.last_batch <= b - freshness_batches_) {
      it = latest_.erase(it);
    } else {
      ++it;
    }
  }
  // Emit the current top k, ordered by value desc then key asc (total
  // order => deterministic).
  std::vector<std::pair<std::string, int64_t>> entries;
  entries.reserve(latest_.size());
  for (const auto& [key, e] : latest_) {
    entries.emplace_back(key, e.value);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b2) {
              if (a.second != b2.second) {
                return a.second > b2.second;
              }
              return a.first < b2.first;
            });
  const size_t limit = std::min(entries.size(), static_cast<size_t>(k_));
  for (size_t i = 0; i < limit; ++i) {
    ctx->Emit(entries[i].first, entries[i].second);
  }
}

StatusOr<std::string> TopKOperator::SnapshotState() {
  BinaryWriter w;
  w.PutU64(latest_.size());
  for (const auto& [key, e] : latest_) {
    w.PutString(key);
    w.PutI64(e.value);
    w.PutI64(e.last_batch);
  }
  return std::move(w).data();
}

Status TopKOperator::RestoreState(const std::string& snapshot) {
  BinaryReader r(snapshot);
  latest_.clear();
  PPA_ASSIGN_OR_RETURN(uint64_t n, r.GetU64());
  for (uint64_t i = 0; i < n; ++i) {
    PPA_ASSIGN_OR_RETURN(std::string key, r.GetString());
    Entry e;
    PPA_ASSIGN_OR_RETURN(e.value, r.GetI64());
    PPA_ASSIGN_OR_RETURN(e.last_batch, r.GetI64());
    latest_.emplace(std::move(key), e);
  }
  if (!r.exhausted()) {
    return InvalidArgument("trailing bytes in top-k snapshot");
  }
  return OkStatus();
}

void TopKOperator::Reset() { latest_.clear(); }

int64_t TopKOperator::StateSizeTuples() const {
  return static_cast<int64_t>(latest_.size());
}

WorldCupSource::WorldCupSource(const Options& options)
    : options_(options),
      zipf_(static_cast<size_t>(options.url_population), options.zipf_s) {}

std::vector<Tuple> WorldCupSource::NextBatch(int64_t batch_index,
                                             int task_index) {
  Rng rng(options_.seed ^
          Mix64(static_cast<uint64_t>(batch_index) * 888888877u +
                static_cast<uint64_t>(task_index)));
  int64_t volume = options_.tuples_per_batch_per_task;
  if (options_.rate_wave_amplitude > 0.0 &&
      options_.rate_wave_period_batches > 0) {
    const double phase =
        static_cast<double>(batch_index) /
            static_cast<double>(options_.rate_wave_period_batches) +
        static_cast<double>(task_index) * 0.125;
    volume = std::max<int64_t>(
        1, static_cast<int64_t>(
               static_cast<double>(volume) *
               (1.0 + options_.rate_wave_amplitude *
                          std::sin(phase * 2.0 * 3.14159265358979))));
  }
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(volume));
  for (int64_t i = 0; i < volume; ++i) {
    Tuple t;
    t.key = "url" + std::to_string(zipf_.Sample(&rng));
    t.value = 1;
    out.push_back(std::move(t));
  }
  return out;
}

StatusOr<TopKWorkload> MakeTopKWorkload(
    const WorldCupSource::Options& source_options,
    int64_t count_window_batches, int k,
    const TopKParallelism& parallelism) {
  TopKWorkload w;
  w.source_options = source_options;
  w.count_window_batches = count_window_batches;
  w.k = k;
  TopologyBuilder b;
  w.source = b.AddOperator("log", parallelism.source);
  w.count = b.AddOperator("count", parallelism.count,
                          InputCorrelation::kIndependent, 0.3);
  w.merge = b.AddOperator("merge", parallelism.merge,
                          InputCorrelation::kIndependent, 0.5);
  w.top = b.AddOperator("top", 1, InputCorrelation::kIndependent, 0.5);
  b.Connect(w.source, w.count, PartitionScheme::kFull);
  b.Connect(w.count, w.merge, PartitionScheme::kFull);
  b.Connect(w.merge, w.top, parallelism.merge >= 2 ? PartitionScheme::kMerge
                                                   : PartitionScheme::kOneToOne);
  b.SetSourceRate(
      w.source,
      static_cast<double>(source_options.tuples_per_batch_per_task) *
          parallelism.source);
  PPA_ASSIGN_OR_RETURN(w.topo, b.Build());
  return w;
}

Status BindTopKWorkload(const TopKWorkload& workload, StreamingJob* job) {
  PPA_RETURN_IF_ERROR(job->BindSource(workload.source, [opts =
                                                            workload
                                                                .source_options] {
    return std::make_unique<WorldCupSource>(opts);
  }));
  PPA_RETURN_IF_ERROR(job->BindOperator(
      workload.count, [window = workload.count_window_batches] {
        return std::make_unique<WindowedKeyCountOperator>(window);
      }));
  PPA_RETURN_IF_ERROR(job->BindOperator(
      workload.merge, [k = workload.k, window = workload.count_window_batches] {
        // Partial stage keeps 2k candidates so the global stage has slack.
        return std::make_unique<TopKOperator>(2 * k, window);
      }));
  PPA_RETURN_IF_ERROR(job->BindOperator(
      workload.top, [k = workload.k, window = workload.count_window_batches] {
        return std::make_unique<TopKOperator>(k, window);
      }));
  return OkStatus();
}

}  // namespace ppa
