#ifndef PPA_WORKLOADS_INCIDENT_H_
#define PPA_WORKLOADS_INCIDENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status_or.h"
#include "engine/operator.h"
#include "runtime/streaming_job.h"
#include "topology/topology.h"

namespace ppa {

/// Deterministic description of the Q2 synthetic navigation scenario
/// (Sec. VI-B): users distributed over road segments by a Zipf(0.5)
/// distribution, incidents arriving every `incident_period_batches` on a
/// population-weighted random segment, each jamming its segment for
/// `jam_batches` and making every user on it file a report.
/// Both sources and the ground-truth evaluation derive everything from the
/// same schedule, so runs are reproducible.
class IncidentSchedule {
 public:
  struct Options {
    int num_segments = 1000;
    int num_users = 100000;
    double zipf_s = 0.5;
    int64_t incident_period_batches = 2;
    int64_t jam_batches = 8;
    uint64_t seed = 7;
  };

  explicit IncidentSchedule(const Options& options);

  const Options& options() const { return options_; }

  /// Number of users on segment `s`.
  int Population(int segment) const {
    return population_[static_cast<size_t>(segment)];
  }

  /// Incident index starting exactly at `batch`, or -1.
  int64_t IncidentStartingAt(int64_t batch) const;

  /// The segment hit by incident `incident`.
  int SegmentOfIncident(int64_t incident) const;

  /// True if `segment` is jammed during `batch`.
  bool Jammed(int segment, int64_t batch) const;

  /// Incident ids whose jam window covers [from_batch, to_batch].
  std::vector<int64_t> IncidentsIn(int64_t from_batch, int64_t to_batch) const;

 private:
  Options options_;
  std::vector<int> population_;
  ZipfGenerator segment_zipf_;
};

/// User-location stream (20 000 records/s in the paper, split across the
/// source's tasks): (segment key, current speed).
class LocationSource : public SourceFunction {
 public:
  LocationSource(const IncidentSchedule* schedule,
                 int64_t tuples_per_batch_per_task, uint64_t seed);

  std::vector<Tuple> NextBatch(int64_t batch_index, int task_index) override;

 private:
  const IncidentSchedule* schedule_;
  int64_t tuples_per_batch_per_task_;
  uint64_t seed_;
  ZipfGenerator user_zipf_;
};

/// User-reported incident stream: all users of a hit segment report in the
/// incident's start batch, split across the source's tasks. Reports share
/// the segment key of the location stream (so the join is co-partitioned)
/// and carry `kIncidentValueBase + incident_id` as value.
class IncidentReportSource : public SourceFunction {
 public:
  static constexpr int64_t kIncidentValueBase = 1'000'000;

  IncidentReportSource(const IncidentSchedule* schedule, int parallelism);

  std::vector<Tuple> NextBatch(int64_t batch_index, int task_index) override;

 private:
  const IncidentSchedule* schedule_;
  int parallelism_;
};

/// O1: per-segment average speed over a short sliding window; emits
/// (segment, avg_speed_x100).
class SegmentSpeedOperator : public OperatorFunction {
 public:
  explicit SegmentSpeedOperator(int64_t window_batches);

  void ProcessBatch(BatchContext* ctx,
                    const std::vector<Tuple>& inputs) override;
  StatusOr<std::string> SnapshotState() override;
  Status RestoreState(const std::string& snapshot) override;
  void Reset() override;
  int64_t StateSizeTuples() const override;

 private:
  struct Slice {
    int64_t batch = 0;
    std::map<std::string, std::pair<int64_t, int64_t>> sum_count;
  };
  int64_t window_batches_;
  std::vector<Slice> slices_;
};

/// O2: combines duplicate user reports into distinct incident events
/// (first occurrence of each (segment, incident) in the window).
class DistinctIncidentOperator : public OperatorFunction {
 public:
  explicit DistinctIncidentOperator(int64_t window_batches);

  void ProcessBatch(BatchContext* ctx,
                    const std::vector<Tuple>& inputs) override;
  StatusOr<std::string> SnapshotState() override;
  Status RestoreState(const std::string& snapshot) override;
  void Reset() override;
  int64_t StateSizeTuples() const override;

 private:
  int64_t window_batches_;
  std::map<std::string, int64_t> seen_;  // "segment|incident" -> last batch
};

/// O3 (join, correlated input): matches distinct incidents against the
/// segment speed stream; once a pending incident's segment speed falls
/// below `jam_threshold_x100`, emits ("inc<id>", segment).
class IncidentJoinOperator : public OperatorFunction {
 public:
  /// Speed observations expire after `speed_freshness_batches` so that a
  /// pending incident is only matched against a *current* jam, never a
  /// stale pre-outage observation.
  IncidentJoinOperator(int64_t pending_batches, int64_t jam_threshold_x100,
                       int64_t speed_freshness_batches = 3);

  void ProcessBatch(BatchContext* ctx,
                    const std::vector<Tuple>& inputs) override;
  StatusOr<std::string> SnapshotState() override;
  Status RestoreState(const std::string& snapshot) override;
  void Reset() override;
  int64_t StateSizeTuples() const override;

 private:
  int64_t pending_batches_;
  int64_t jam_threshold_x100_;
  int64_t speed_freshness_batches_;
  std::map<std::string, int64_t> latest_speed_;  // segment -> speed x100
  std::map<std::string, int64_t> speed_batch_;   // segment -> observed batch
  /// "segment|incident" -> batch the report arrived.
  std::map<std::string, int64_t> pending_;
};

/// O4: deduplicating aggregator; forwards each incident alarm once.
class AlarmDedupOperator : public OperatorFunction {
 public:
  explicit AlarmDedupOperator(int64_t window_batches);

  void ProcessBatch(BatchContext* ctx,
                    const std::vector<Tuple>& inputs) override;
  StatusOr<std::string> SnapshotState() override;
  Status RestoreState(const std::string& snapshot) override;
  void Reset() override;
  int64_t StateSizeTuples() const override;

 private:
  int64_t window_batches_;
  std::map<std::string, int64_t> seen_;
};

/// Q2: loc(8) --full--> speed(8) --full--> join(4) <--full-- distinct(2)
/// <--full-- inc(2); join(4) --merge--> alarm(1). The join operator is
/// correlated-input.
struct IncidentWorkload {
  Topology topo;
  OperatorId loc_source = kInvalidOperatorId;
  OperatorId inc_source = kInvalidOperatorId;
  OperatorId speed = kInvalidOperatorId;
  OperatorId distinct = kInvalidOperatorId;
  OperatorId join = kInvalidOperatorId;
  OperatorId alarm = kInvalidOperatorId;
  IncidentSchedule::Options schedule_options;
  int64_t location_rate_per_task = 2500;
  int64_t speed_window_batches = 3;
  int64_t pending_batches = 10;
  int64_t jam_threshold_x100 = 2000;
};

/// Parallelism of the Q2 stages; the reduced preset keeps the optimal DP
/// planner tractable.
struct IncidentParallelism {
  int loc_source = 8;
  int inc_source = 2;
  int speed = 8;
  int distinct = 2;
  int join = 4;

  static IncidentParallelism Reduced() {
    return IncidentParallelism{4, 2, 4, 2, 2};
  }
};

/// Builds the Q2 incident-detection topology plus its operator bindings
/// and accuracy bookkeeping (Sec. VI-B).
StatusOr<IncidentWorkload> MakeIncidentWorkload(
    const IncidentSchedule::Options& schedule_options = {},
    int64_t location_rate_per_task = 2500,
    const IncidentParallelism& parallelism = {});

/// Binds the workload; `schedule` must outlive the job.
Status BindIncidentWorkload(const IncidentWorkload& workload,
                            const IncidentSchedule* schedule,
                            StreamingJob* job);

}  // namespace ppa

#endif  // PPA_WORKLOADS_INCIDENT_H_
